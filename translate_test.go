package rlm

import (
	"testing"

	"repro/internal/fabric"
	"repro/internal/itc99"
	"repro/internal/sim"
	"repro/internal/template"
)

// The template-cache test suite: warm loads and relocation-by-translation
// against the cell-by-cell replica path.

func newCachedSys(t *testing.T, cap int) *System {
	t.Helper()
	s, err := New(WithDevice(fabric.XCV50), WithPort(SelectMAP),
		WithTemplateCache(&template.Policy{Capacity: cap}))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// deviceFrames reads every configuration frame of the device.
func deviceFrames(t *testing.T, dev *fabric.Device) [][]uint32 {
	t.Helper()
	var out [][]uint32
	for _, col := range dev.Columns() {
		for minor := 0; minor < col.Frames; minor++ {
			f, err := dev.ReadFrame(col.Major, minor)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, f)
		}
	}
	return out
}

func tmplFramesEqual(a, b [][]uint32) (int, int, bool) {
	if len(a) != len(b) {
		return -1, -1, false
	}
	for i := range a {
		for w := range a[i] {
			if a[i][w] != b[i][w] {
				return i, w, false
			}
		}
	}
	return 0, 0, true
}

func stepDesign(t *testing.T, s *System, name string, cycles int, seed uint64) {
	t.Helper()
	d, ok := s.Design(name)
	if !ok {
		t.Fatalf("design %q not loaded", name)
	}
	ls, err := sim.NewLockStep(d)
	if err != nil {
		t.Fatal(err)
	}
	rng := seed
	for i := 0; i < cycles; i++ {
		in := make([]bool, len(d.NL.Inputs()))
		for k := range in {
			rng = rng*6364136223846793005 + 1442695040888963407
			in[k] = rng>>40&1 == 1
		}
		if err := ls.Step(in); err != nil {
			t.Fatalf("%s cycle %d: %v", name, i, err)
		}
	}
}

func genCfg(name string, seed uint64, style itc99.Style) itc99.GenConfig {
	cfg := itc99.GenConfig{
		Name: name, Inputs: 4, Outputs: 3, Seed: seed, Style: style,
	}
	if style == itc99.GatedClock {
		cfg.CEFraction = 0.5
	}
	// Sized for a 4x4 region at moderate fill, so interior routing is very
	// likely to stay region-contained.
	return cfg.SizedTo(4*4*fabric.CellsPerCLB, 0.3)
}

// TestWarmLoadHit: a cold load captures a template; re-loading a
// structurally identical netlist (different names) at a same-shape region
// takes the warm path, and the warm design is functionally correct.
func TestWarmLoadHit(t *testing.T) {
	s := newCachedSys(t, 8)
	events, cancel := s.Subscribe(64)
	defer cancel()

	r := fabric.Rect{Row: 2, Col: 3, H: 4, W: 4}
	if _, err := s.Load(itc99.Generate(genCfg("a", 11, itc99.FreeRunning)), r); err != nil {
		t.Fatal(err)
	}
	st, ok := s.TemplateStats()
	if !ok {
		t.Fatal("cache reported disabled")
	}
	if st.Misses != 1 || st.Stores != 1 || st.Hits != 0 {
		t.Fatalf("after cold load: %+v", st)
	}
	stepDesign(t, s, "a", 30, 1)
	if err := s.Unload("a"); err != nil {
		t.Fatal(err)
	}
	// Same circuit, different task name (as a scheduler would name it).
	if _, err := s.Load(itc99.Generate(genCfg("b", 11, itc99.FreeRunning)), r); err != nil {
		t.Fatal(err)
	}
	st, _ = s.TemplateStats()
	if st.Hits != 1 {
		t.Fatalf("warm load not served from cache: %+v", st)
	}
	stepDesign(t, s, "b", 30, 2)

	var sawStored, sawMiss, sawHit bool
	for {
		select {
		case e := <-events:
			switch e.Kind {
			case TemplateStored:
				sawStored = true
			case TemplateMiss:
				sawMiss = true
			case TemplateHit:
				sawHit = true
			}
			_ = e.String()
			continue
		default:
		}
		break
	}
	if !sawStored || !sawMiss || !sawHit {
		t.Fatalf("events stored=%v miss=%v hit=%v", sawStored, sawMiss, sawHit)
	}
}

// TestWarmLoadDifferentRegionSameShape: the image is translation-invariant,
// so a warm load lands at any region of the cached shape.
func TestWarmLoadDifferentRegionSameShape(t *testing.T) {
	s := newCachedSys(t, 8)
	rA := fabric.Rect{Row: 1, Col: 2, H: 4, W: 4}
	rB := fabric.Rect{Row: 9, Col: 15, H: 4, W: 4}
	if _, err := s.Load(itc99.Generate(genCfg("a", 23, itc99.GatedClock)), rA); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Load(itc99.Generate(genCfg("b", 23, itc99.GatedClock)), rB); err != nil {
		t.Fatal(err)
	}
	st, _ := s.TemplateStats()
	if st.Hits != 1 {
		t.Fatalf("second load should hit: %+v", st)
	}
	stepDesign(t, s, "a", 25, 3)
	stepDesign(t, s, "b", 25, 4)
	if err := s.Unload("a"); err != nil {
		t.Fatal(err)
	}
	if err := s.Unload("b"); err != nil {
		t.Fatal(err)
	}
}

// TestTranslateMoveProperty is the correctness spine of the template
// subsystem, randomised over design styles, seeds and region pairs:
//
//  1. the translated move's cell configuration at the target is
//     bit-identical to the replica path's;
//  2. the moved design is functionally equivalent (lock-step against the
//     golden model);
//  3. the translated move's full device state is frame-bit-identical to an
//     unload followed by a warm load at the target — translation IS
//     unload+warmload, minus the cost;
//  4. the translated move is TCK-cycle-accounted (application cycles match
//     the port time its stream consumed) and strictly cheaper than the
//     replica path in both cycles and frames written.
func TestTranslateMoveProperty(t *testing.T) {
	// Async-style circuits can oscillate in the golden model for some input
	// sequences, which would abort the lock-step equivalence check for
	// reasons unrelated to relocation; stick to the clocked styles here
	// (the latch path is covered by the relocate package's own tests).
	styles := []itc99.Style{itc99.FreeRunning, itc99.GatedClock}
	regions := []struct{ a, b fabric.Rect }{
		{fabric.Rect{Row: 2, Col: 2, H: 4, W: 4}, fabric.Rect{Row: 10, Col: 16, H: 4, W: 4}},
		{fabric.Rect{Row: 0, Col: 0, H: 4, W: 4}, fabric.Rect{Row: 8, Col: 10, H: 4, W: 4}},
		{fabric.Rect{Row: 5, Col: 4, H: 4, W: 4}, fabric.Rect{Row: 5, Col: 6, H: 4, W: 4}}, // overlapping
	}
	translated, replicaCompared := 0, 0
	for i, seed := range []uint64{101, 202, 303, 404, 505, 606} {
		style := styles[i%len(styles)]
		reg := regions[i%len(regions)]
		cfg := genCfg("p", seed, style)

		// System T: cold load at A, translated move to B.
		sysT := newCachedSys(t, 4)
		if _, err := sysT.Load(itc99.Generate(cfg), reg.a); err != nil {
			t.Fatal(err)
		}
		if st, _ := sysT.TemplateStats(); st.Stores != 1 {
			// The design routed outside its region: not translation-safe,
			// nothing to test here (the move below would just replicate).
			t.Logf("seed %d style %v: not captured, skipping", seed, style)
			continue
		}
		cyc0 := sysT.Stats().ClockCycles
		frames0 := sysT.Engine().Tool.FramesWritten()
		el0 := sysT.Port().Elapsed()
		if err := sysT.Move("p", reg.b); err != nil {
			t.Fatalf("seed %d: translated move: %v", seed, err)
		}
		st, _ := sysT.TemplateStats()
		if st.Translations != 1 {
			t.Fatalf("seed %d: move not translated: %+v", seed, st)
		}
		translated++
		cycT := sysT.Stats().ClockCycles - cyc0
		framesT := sysT.Engine().Tool.FramesWritten() - frames0
		elT := sysT.Port().Elapsed() - el0

		// (4a) TCK accounting: the cycles charged cover exactly the port
		// time of this operation's stream (integer truncation and the
		// minimum-one-cycle wait allow a tiny slack).
		expect := int(elT * sysT.Engine().AppClockHz)
		if diff := cycT - expect; diff < 0 || diff > 2 {
			t.Fatalf("seed %d: translated move charged %d cycles for %.2g s of port time (expect ~%d)",
				seed, cycT, elT, expect)
		}

		// (2) Functional equivalence after the move, from reset.
		stepDesign(t, sysT, "p", 30, seed)
		// stepDesign builds fresh simulators; the device frames are not
		// affected, so the bit-identity checks below stay valid.

		// System R: same load, replica move. The replica path routes its
		// transfer cone through free resources only and can fail where
		// translation succeeds (that asymmetry is the point of the cache);
		// such a case still exercises checks 2-4a and the warm-load identity.
		sysR := newSys(t)
		if _, err := sysR.Load(itc99.Generate(cfg), reg.a); err != nil {
			t.Fatal(err)
		}
		cyc0 = sysR.Stats().ClockCycles
		frames0 = sysR.Engine().Tool.FramesWritten()
		if err := sysR.Move("p", reg.b); err != nil {
			t.Logf("seed %d: replica path itself cannot do this move (%v); skipping replica comparison", seed, err)
		} else {
			replicaCompared++
			cycR := sysR.Stats().ClockCycles - cyc0
			framesR := sysR.Engine().Tool.FramesWritten() - frames0

			// (1) Cell slabs at the target are bit-identical.
			for _, c := range reg.b.Coords() {
				for cell := 0; cell < fabric.CellsPerCLB; cell++ {
					ref := fabric.CellRef{Coord: c, Cell: cell}
					ccT := sysT.Device().ReadCell(ref)
					ccR := sysR.Device().ReadCell(ref)
					if ccT != ccR {
						t.Fatalf("seed %d: cell %v differs: translated %+v, replica %+v",
							seed, ref, ccT, ccR)
					}
				}
			}

			// (4b) Translation is strictly cheaper.
			if cycT >= cycR {
				t.Fatalf("seed %d: translated move cost %d cycles, replica %d", seed, cycT, cycR)
			}
			if framesT >= framesR {
				t.Fatalf("seed %d: translated move wrote %d frames, replica %d", seed, framesT, framesR)
			}
		}

		// (3) Translated move == unload + warm load at the target,
		// frame-bit-identical across the whole device.
		sysW := newCachedSys(t, 4)
		if _, err := sysW.Load(itc99.Generate(cfg), reg.a); err != nil {
			t.Fatal(err)
		}
		if err := sysW.Unload("p"); err != nil {
			t.Fatal(err)
		}
		if _, err := sysW.Load(itc99.Generate(cfg), reg.b); err != nil {
			t.Fatal(err)
		}
		if st, _ := sysW.TemplateStats(); st.Hits != 1 {
			t.Fatalf("seed %d: reference reload not warm: %+v", seed, st)
		}
		fi, w, eq := tmplFramesEqual(deviceFrames(t, sysT.Device()), deviceFrames(t, sysW.Device()))
		if !eq {
			t.Fatalf("seed %d: translated device differs from unload+warmload at frame %d word %d",
				seed, fi, w)
		}
	}
	if translated < 4 {
		t.Fatalf("only %d/6 cases exercised translation; tighten the generator config", translated)
	}
	if replicaCompared < 3 {
		t.Fatalf("only %d/6 cases compared against the replica path", replicaCompared)
	}
}

// TestTranslateRAMFallsBack: RAM designs must take the replica path, which
// itself refuses on-line RAM relocation — cache on and cache off agree.
func TestTranslateRAMFallsBack(t *testing.T) {
	cfg := genCfg("r", 77, itc99.FreeRunning)
	cfg.RAMs = 1
	cfg = cfg.SizedTo(4*4*fabric.CellsPerCLB, 0.3)
	rA := fabric.Rect{Row: 2, Col: 2, H: 4, W: 4}
	rB := fabric.Rect{Row: 10, Col: 12, H: 4, W: 4}

	sysC := newCachedSys(t, 4)
	if _, err := sysC.Load(itc99.Generate(cfg), rA); err != nil {
		t.Fatal(err)
	}
	errC := sysC.Move("r", rB)

	sysO := newSys(t)
	if _, err := sysO.Load(itc99.Generate(cfg), rA); err != nil {
		t.Fatal(err)
	}
	errO := sysO.Move("r", rB)

	if (errC == nil) != (errO == nil) {
		t.Fatalf("cache-on move err %v, cache-off %v", errC, errO)
	}
	if st, _ := sysC.TemplateStats(); st.Translations != 0 {
		t.Fatalf("RAM design was translated: %+v", st)
	}
}

// TestCacheOffUnchanged: WithTemplateCache(nil) is bit-identical to a
// system built without the option, across load/move/unload.
func TestCacheOffUnchanged(t *testing.T) {
	run := func(opts ...Option) ([][]uint32, int, *System) {
		s, err := New(append([]Option{WithDevice(fabric.XCV50), WithPort(SelectMAP)}, opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		cfg := genCfg("u", 31, itc99.GatedClock)
		rA := fabric.Rect{Row: 1, Col: 1, H: 4, W: 4}
		rB := fabric.Rect{Row: 8, Col: 14, H: 4, W: 4}
		if _, err := s.Load(itc99.Generate(cfg), rA); err != nil {
			t.Fatal(err)
		}
		if err := s.Move("u", rB); err != nil {
			t.Fatal(err)
		}
		return deviceFrames(t, s.Device()), s.Stats().ClockCycles, s
	}
	fa, ca, sa := run()
	fb, cb, sb := run(WithTemplateCache(nil))
	if _, ok := sa.TemplateStats(); ok {
		t.Fatal("plain system reports a cache")
	}
	if _, ok := sb.TemplateStats(); ok {
		t.Fatal("WithTemplateCache(nil) reports a cache")
	}
	if fi, w, eq := tmplFramesEqual(fa, fb); !eq {
		t.Fatalf("frames differ at %d word %d", fi, w)
	}
	if ca != cb {
		t.Fatalf("cycles differ: %d vs %d", ca, cb)
	}
}

// TestDefragUsesTranslation: Defragment's moves route through the same
// choke point and get translated when the cache holds the design.
func TestDefragUsesTranslation(t *testing.T) {
	s := newCachedSys(t, 8)
	events, cancel := s.Subscribe(256)
	defer cancel()
	// Three same-shape designs with a hole between them.
	mk := func(name string, seed uint64) itc99.GenConfig { return genCfg(name, seed, itc99.FreeRunning) }
	r := func(col int) fabric.Rect { return fabric.Rect{Row: 6, Col: col, H: 4, W: 4} }
	for i, name := range []string{"d0", "d1", "d2"} {
		if _, err := s.Load(itc99.Generate(mk(name, uint64(40+i))), r(i*5)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Unload("d1"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Defragment(DefragPolicy{}); err != nil {
		t.Fatal(err)
	}
	st, _ := s.TemplateStats()
	if st.Translations == 0 {
		t.Fatalf("defragmentation performed no translated moves: %+v", st)
	}
	var sawTranslated bool
	for {
		select {
		case e := <-events:
			if e.Kind == DesignTranslated {
				sawTranslated = true
			}
			continue
		default:
		}
		break
	}
	if !sawTranslated {
		t.Fatal("no DesignTranslated event observed")
	}
	for _, name := range s.Designs() {
		stepDesign(t, s, name, 20, 9)
	}
}
