package rlm

import (
	"time"

	"repro/internal/bitstream"
	"repro/internal/fabric"
	"repro/internal/template"
)

// PortKind selects the configuration interface.
type PortKind uint8

const (
	// BoundaryScan is the paper's IEEE 1149.1 port (default 20 MHz TCK).
	BoundaryScan PortKind = iota
	// SelectMAP is a byte-parallel port (default 50 MHz), for the
	// interface-comparison ablation.
	SelectMAP
)

// config collects the construction parameters; it is only reachable through
// the With* functional options.
type config struct {
	device       fabric.Preset
	port         PortKind
	clockHz      float64
	appClockHz   float64
	serialCommit bool
	portFactory  func(*bitstream.Controller) bitstream.Port
	tmplPolicy   *template.Policy
	journalPath  string
	retry        *RetryPolicy
	scrubEvery   time.Duration
	scrubBatch   int
	journalRot   int64
	health       *HealthPolicy
	stallTimeout time.Duration
	compress     bool
	portWidth    int
}

// Option configures a System at construction time.
type Option func(*config)

// WithDevice selects the device preset (default fabric.XCV200).
func WithDevice(p fabric.Preset) Option {
	return func(c *config) { c.device = p }
}

// WithPort selects the configuration interface (default BoundaryScan).
func WithPort(k PortKind) Option {
	return func(c *config) { c.port = k }
}

// WithClock sets the configuration-port clock in Hz (0 = port default:
// 20 MHz TCK for Boundary-Scan, 50 MHz for SelectMAP).
func WithClock(hz float64) Option {
	return func(c *config) { c.clockHz = hz }
}

// WithAppClock sets the application clock in Hz, used to convert port
// transport time into elapsed application cycles during relocation waits.
func WithAppClock(hz float64) Option {
	return func(c *config) { c.appClockHz = hz }
}

// WithSerialCommit disables the two-stage commit pipeline: every partial
// bitstream is delivered synchronously before the next operation plans.
// Configuration memory and cycle accounting are bit-identical either way
// (the property the pipeline tests pin down); serial mode exists for that
// comparison and for debugging.
func WithSerialCommit() Option {
	return func(c *config) { c.serialCommit = true }
}

// WithTemplateCache enables the content-addressed template cache: cold
// loads capture their pre-routed, translation-invariant frame image; a
// later Load of a netlist hashing to the same circuit and region shape
// takes the warm path (frame splicing plus boundary-net routing, zero
// interior place/route), and whole-design relocations of cached designs
// become address translation plus a boundary patch instead of cell-by-cell
// replication. A nil policy leaves the cache off — behaviour is then
// bit-identical to a system built without this option.
//
// Note the semantic trade the paper's replica path does not make: a
// translated relocation re-initialises the design's storage elements at the
// target (the frame image carries configuration, not state), whereas the
// cell-by-cell procedure transfers live state. Designs whose state must
// survive a move should be run on a cache-off system; RAM-bearing designs
// always fall back to the replica path (which itself refuses them).
func WithTemplateCache(p *template.Policy) Option {
	return func(c *config) { c.tmplPolicy = p }
}

// WithJournal enables the durable operation journal at the given path: every
// mutating facade operation writes its intent, frame pre-images and post
// state ahead of the configuration port, so a host crash at any point can be
// reconciled against the device readback with rlm.Recover. New refuses a
// path that already holds journal history (journal.ErrExists, wrapped) —
// recover from it instead of truncating it.
func WithJournal(path string) Option {
	return func(c *config) { c.journalPath = path }
}

// WithPortModel substitutes a custom configuration port built over the
// system's controller — fault-injection harnesses wrap the stock ports this
// way (internal/faultport is the stock wrapper). A system built this way
// journals its port kind as "custom"; rlm.Recover of such a journal needs
// the factory passed again as a recover option (the journal cannot persist
// a closure) and falls back to Boundary-Scan when it is not.
func WithPortModel(factory func(*bitstream.Controller) bitstream.Port) Option {
	return func(c *config) { c.portFactory = factory }
}

// WithRetryPolicy arms the facade's fault-tolerance ladder: when an
// operation's harvest surfaces a transport fault, the frames of the
// operation are re-delivered from the host shadow up to MaxRetries times
// (with doubling backoff), escalating to readback-verify; only when every
// attempt fails does the operation roll back — and frames that failed the
// verify are quarantined, with resident designs evacuated. Without this
// option any transport fault strictly rolls the operation back (the
// pre-PR-8 behaviour).
func WithRetryPolicy(p RetryPolicy) Option {
	return func(c *config) { c.retry = &p }
}

// WithScrubber starts the background configuration-memory scrubber: every
// interval, a maintenance pass readback-compares a batch of frames against
// the golden shadow content (the same bits the journal's dirty-frame digests
// attest) and rewrites any frame that silently diverged (the SEU model),
// emitting ScrubRepair events. The scrubber yields to foreground work — a
// pass is skipped while an operation's stream is in flight — and its
// transport traffic is compensated out of the port's cycle accounting
// (reported as Stats.ScrubSeconds instead). Stop it with System.Close.
// batchFrames bounds the frames checked per pass (0 = a default of 32).
func WithScrubber(interval time.Duration, batchFrames int) Option {
	return func(c *config) { c.scrubEvery, c.scrubBatch = interval, batchFrames }
}

// WithHealthPolicy arms the per-column health lifecycle (healthy → suspect
// → quarantined → probation → healthy): foreground faults drive an EWMA
// error rate that marks columns suspect, repeated scrub repairs of one
// frame condemn its column preemptively, the scrubber probes quarantined
// columns with test patterns and releases those that pass back into the
// logic space, and Load/Plan fail fast with ErrDegraded once healthy
// capacity falls below the policy's watermark. Without this option (or
// with the zero policy) behaviour is the legacy one: quarantine is
// permanent and admission is never gated. Like WithRetryPolicy the policy
// is not journaled — pass it again when recovering with rlm.Recover.
func WithHealthPolicy(p HealthPolicy) Option {
	return func(c *config) { c.health = &p }
}

// WithStallTimeout arms the stall watchdog: a harvest of the background
// configuration stream that does not complete within d fails with a typed
// ErrPortStalled instead of hanging the facade, feeding the retry ladder
// (when armed) like any transport fault. 0 (the default) disables the
// watchdog. Not journaled — pass it again when recovering.
func WithStallTimeout(d time.Duration) Option {
	return func(c *config) { c.stallTimeout = d }
}

// WithCompression switches the configuration port to compressed write
// streams: each delivered frame is diffed against its last-sent baseline and
// only the changed word runs ship (partial-frame delta packets), repeated
// identical payloads within one coalesced burst collapse into a single
// multi-frame write, and frames whose content did not change are elided
// entirely. Verification stays CRC-only on this hot path — the full
// readback-verify remains the escalation tier of WithRetryPolicy's ladder,
// and re-deliveries and scrubber repairs ship deltas too. Configuration
// memory is frame-bit-identical to uncompressed delivery (the property tests
// pin it); only the transport time and Traffic counters change. The port
// kind and compression flag are journaled, so rlm.Recover rebuilds a
// compressed system compressed.
func WithCompression() Option {
	return func(c *config) { c.compress = true }
}

// WithPortWidth sets the SelectMAP data-port width in bits: 8 (the default,
// one byte per clock), 16 or 32. A wider port moves proportionally more of
// each word per clock, modelling the parallel-port members of the family.
// Only valid together with WithPort(SelectMAP); New fails otherwise.
func WithPortWidth(bits int) Option {
	return func(c *config) { c.portWidth = bits }
}

// WithJournalRotation enables automatic journal compaction: after a commit
// seal, if the journal file exceeds limitBytes it is compacted in place
// (journal.Compact — the sealed history collapses into one Init + state
// snapshot) and appending resumes on the compacted file. Off by default:
// rotation rewrites the file, which breaks byte-offset-based external
// observers of a live journal; opt in for long-running systems.
func WithJournalRotation(limitBytes int64) Option {
	return func(c *config) { c.journalRot = limitBytes }
}
