package rlm

import (
	"fmt"
	"testing"

	"repro/internal/bitstream"
	"repro/internal/fabric"
	"repro/internal/itc99"
)

// maskTransport zeroes everything that legitimately depends on how many
// words crossed the configuration port — cycle counters, traffic, transport
// seconds and the tick cursor the port waits advance — so a compressed run
// can be bit-compared against an uncompressed one. Frames and all host
// book-keeping stay in the comparison: compressed delivery must change only
// the wire format, never the outcome.
func maskTransport(st hostState) hostState {
	st.cycles = 0
	st.traffic = bitstream.Traffic{}
	st.lastTick = 0
	st.stats.PortSeconds = 0
	st.stats.ClockCycles = 0
	return st
}

func portCycles(s *System) uint64 {
	return s.Port().(interface{ Cycles() uint64 }).Cycles()
}

// TestCompressedDeliveryBitIdentical is the compression layer's headline
// property: delta/MFWR stream encoding is an encoding, not a behaviour — a
// full facade workout (loads, moves, transactional plans, staged moves,
// defragmentation) on a compressed system leaves frames and every piece of
// host book-keeping bit-identical to an uncompressed twin's, its TCK
// accounting is deterministic (pipelined == serial), the retry ladder
// re-delivers compressed streams to a fault-free-identical state, and a
// crash at any journal boundary recovers (the journal init record carries
// the compression mode). Run with -race.
func TestCompressedDeliveryBitIdentical(t *testing.T) {
	t.Run("vs-uncompressed", func(t *testing.T) {
		plain, err := New(WithDevice(fabric.TestDevice))
		if err != nil {
			t.Fatal(err)
		}
		comp, err := New(WithDevice(fabric.TestDevice), WithCompression())
		if err != nil {
			t.Fatal(err)
		}
		crashScript(t, plain)
		crashScript(t, comp)
		if diffs := diffStates(maskTransport(captureState(comp)), maskTransport(captureState(plain))); len(diffs) > 0 {
			t.Fatalf("compressed run diverges from uncompressed twin (%d diffs): %s", len(diffs), diffs[0])
		}
		pt, ct := plain.Traffic(), comp.Traffic()
		if ct.FramesDelivered != pt.FramesDelivered {
			t.Fatalf("frame deliveries diverged: compressed %d, plain %d", ct.FramesDelivered, pt.FramesDelivered)
		}
		// The compressed twin's uncompressed-baseline counter must predict the
		// plain twin's shipped words exactly — same updates, same streams.
		if ct.FullWords != pt.WordsShifted {
			t.Fatalf("baseline accounting diverged: compressed FullWords %d, plain shipped %d", ct.FullWords, pt.WordsShifted)
		}
		if ct.WordsShifted >= pt.WordsShifted {
			t.Fatalf("compression shipped no fewer words: %d vs %d", ct.WordsShifted, pt.WordsShifted)
		}
		if r := ct.CompressionRatio(); r <= 1 {
			t.Fatalf("compression ratio %.3f, want > 1 (%+v)", r, ct)
		}
		if cc, pc := portCycles(comp), portCycles(plain); cc >= pc {
			t.Fatalf("compressed run cost no fewer TCK cycles: %d vs %d", cc, pc)
		}
	})

	t.Run("tck-deterministic", func(t *testing.T) {
		// Transport time is accounted at enqueue, so compressed pipelined and
		// serial-commit delivery must agree cycle for cycle — and word for
		// word: the encoder sees identical update lists either way.
		pipe, err := New(WithDevice(fabric.TestDevice), WithCompression())
		if err != nil {
			t.Fatal(err)
		}
		serial, err := New(WithDevice(fabric.TestDevice), WithCompression(), WithSerialCommit())
		if err != nil {
			t.Fatal(err)
		}
		crashScript(t, pipe)
		crashScript(t, serial)
		comparePipelinedSerial(t, "compressed", pipe, serial)
		if pt, st := pipe.Traffic(), serial.Traffic(); pt != st {
			t.Fatalf("traffic diverged: pipelined %+v, serial %+v", pt, st)
		}
	})

	t.Run("fault-injection", func(t *testing.T) {
		// Transient transport faults under compression: the retry ladder's
		// re-deliveries also ship deltas (against the confirmed baseline), the
		// maintenance traffic is compensated out, and the result — including
		// the traffic counters, which are NOT masked here — is bit-identical
		// to a compressed fault-free twin's.
		clean, err := New(WithDevice(fabric.TestDevice), WithCompression())
		if err != nil {
			t.Fatal(err)
		}
		crashScript(t, clean)
		want := maskFaultStats(captureState(clean))
		budgets := []int{0, 1, 3, 8, 21, 55, 144}
		if testing.Short() {
			budgets = []int{0, 3, 21}
		}
		detected := 0
		for _, budget := range budgets {
			t.Run(fmt.Sprintf("budget-%d", budget), func(t *testing.T) {
				sys, flaky := faultSystem(t, 7, WithCompression(),
					WithRetryPolicy(RetryPolicy{MaxRetries: 2, VerifyAfter: 2}))
				flaky.TripAfter(budget)
				crashScript(t, sys)
				st := sys.Stats()
				if st.RetriesExhausted != 0 {
					t.Fatalf("transient fault exhausted retries: %+v", st)
				}
				detected += st.FaultsDetected
				if diffs := diffStates(maskFaultStats(captureState(sys)), want); len(diffs) > 0 {
					t.Fatalf("faulty compressed run diverges from fault-free twin: %s", diffs[0])
				}
			})
		}
		if detected == 0 {
			t.Fatal("no budget tripped a fault: the injection never exercised the retry ladder")
		}
	})

	t.Run("crash-recovery", func(t *testing.T) {
		// The full crash-torture property with compression on: a crash at
		// every journal boundary — including mid-stream "delivered" points —
		// recovers to the twin's state, with the journal init record alone
		// carrying the compression mode into the rebuilt system.
		runCrashConsistency(t, WithCompression())
	})
}

// TestCompressionFig7TCKDrop pins the acceptance floor of the compression
// layer: the Fig. 7 defragmentation workout (two scattered designs loaded
// and compacted) over Boundary-Scan must cost at least 2x fewer simulated
// TCK cycles with delta/MFWR encoding on. Deterministic — the same seeds and
// placements every run.
func TestCompressionFig7TCKDrop(t *testing.T) {
	nl1 := itc99.Generate(itc99.GenConfig{
		Name: "gen1", Inputs: 3, Outputs: 2, FFs: 6, LUTs: 12,
		Seed: 99, Style: itc99.FreeRunning,
	})
	nl2 := itc99.Generate(itc99.GenConfig{
		Name: "gen2", Inputs: 3, Outputs: 2, FFs: 6, LUTs: 12,
		Seed: 98, Style: itc99.FreeRunning,
	})
	run := func(opts ...Option) uint64 {
		sys, err := New(append([]Option{WithDevice(fabric.XCV50), WithPort(BoundaryScan)}, opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sys.Load(nl1, fabric.Rect{Row: 2, Col: 6, H: 4, W: 4}); err != nil {
			t.Fatal(err)
		}
		if _, err := sys.Load(nl2, fabric.Rect{Row: 8, Col: 6, H: 4, W: 4}); err != nil {
			t.Fatal(err)
		}
		rep, err := sys.Defragment(DefragPolicy{})
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Moves) == 0 || rep.CellsRelocated == 0 {
			t.Fatalf("no physical compaction happened: %+v", rep)
		}
		return portCycles(sys)
	}
	plain := run()
	comp := run(WithCompression())
	if comp*2 > plain {
		t.Fatalf("compression saved less than 2x TCK: %d compressed vs %d plain (%.2fx)",
			comp, plain, float64(plain)/float64(comp))
	}
	t.Logf("Fig.7 workout TCK: %d plain, %d compressed (%.2fx)", plain, comp, float64(plain)/float64(comp))
}
