package rlm

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/fabric"
	"repro/internal/itc99"
)

// TestNWCornerBoxInKnownLimitation pins the ROADMAP's "West-edge routing
// congestion" limitation: a design placed at the NW corner with dense
// neighbours to its east and south-east cannot be relocated out — its
// pad-entry nets (all input pads bind to the west edge from position 0)
// plus the neighbours' routing box the replica connections in, and the
// relocation fails with a routing error and rolls back. An identical
// design placed in the interior relocates fine, and best-effort
// Defragment falls back cleanly (skips what it cannot slide) instead of
// failing the pass.
//
// This is a KNOWN LIMITATION, not desired behaviour: when a future PR
// improves the router or the pad binding (e.g. spreading input pads near
// the design's region), the "corner" case below is the one expectation to
// flip — see ROADMAP "West-edge routing congestion".
func TestNWCornerBoxInKnownLimitation(t *testing.T) {
	load := func(sys *System, name string, seed uint64, ffs, luts int, rect fabric.Rect) error {
		nl := itc99.Generate(itc99.GenConfig{
			Name: name, Inputs: 4, Outputs: 4, FFs: ffs, LUTs: luts, Seed: seed,
			Style: itc99.GatedClock, CEFraction: 0.75,
		})
		_, err := sys.Load(nl, rect)
		return err
	}
	// boxIn loads the two dense neighbours that wall the NW corner off.
	boxIn := func(t *testing.T, sys *System) {
		t.Helper()
		if err := load(sys, "east", 8, 18, 36, fabric.Rect{Row: 0, Col: 3, H: 3, W: 5}); err != nil {
			t.Fatalf("loading east neighbour: %v", err)
		}
		if err := load(sys, "diag", 10, 18, 36, fabric.Rect{Row: 3, Col: 3, H: 5, W: 5}); err != nil {
			t.Fatalf("loading diagonal neighbour: %v", err)
		}
	}

	cases := []struct {
		name     string
		at       fabric.Rect
		wantMove bool // whether Move out of the region must succeed
	}{
		// The corner case asserts the CURRENT limitation; flip wantMove to
		// true when the router/pad-binding PR lands.
		{name: "corner", at: fabric.Rect{Row: 0, Col: 0, H: 3, W: 3}, wantMove: false},
		{name: "interior", at: fabric.Rect{Row: 10, Col: 8, H: 3, W: 3}, wantMove: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sys, err := New(WithDevice(fabric.XCV50), WithPort(SelectMAP))
			if err != nil {
				t.Fatal(err)
			}
			if err := load(sys, tc.name, 7, 12, 24, tc.at); err != nil {
				t.Fatalf("loading %s design: %v", tc.name, err)
			}
			boxIn(t, sys)
			target := fabric.Rect{Row: 12, Col: 18, H: 3, W: 3}
			err = sys.Move(tc.name, target)
			if tc.wantMove {
				if err != nil {
					t.Fatalf("interior design failed to relocate: %v", err)
				}
				if r, _ := sys.Region(tc.name); r != target {
					t.Fatalf("moved design at %v, want %v", r, target)
				}
				return
			}
			if err == nil {
				t.Fatal("NW-corner design relocated — the west-edge box-in limitation " +
					"has been fixed; update this test and the ROADMAP item")
			}
			// The failure must be a routing failure rolled back cleanly: the
			// design keeps its region and every design stays resident.
			if r, _ := sys.Region(tc.name); r != tc.at {
				t.Errorf("after failed move the design sits at %v, want %v", r, tc.at)
			}
			if got := len(sys.Designs()); got != 3 {
				t.Errorf("%d designs resident after rollback, want 3", got)
			}
			// Best-effort defragmentation must fall back (skip the boxed-in
			// design) rather than fail the pass.
			rep, err := sys.Defragment(DefragPolicy{})
			if err != nil {
				t.Fatalf("best-effort Defragment did not fall back: %v", err)
			}
			for _, mv := range rep.Moves {
				if mv.Design == tc.name {
					t.Errorf("defragment moved the boxed-in corner design: %+v", mv)
				}
			}
			if r, _ := sys.Region(tc.name); r != tc.at {
				t.Errorf("defragment displaced the corner design to %v", r)
			}
		})
	}
}

// TestWestPadExhaustionUnderLoad pins the second half of the ROADMAP item:
// input pads all bind to the west edge from position 0, so under load the
// pad pool exhausts long before the logic space does — placements then
// fail physically even though the book-keeping grid still has room. The
// future pad-binding PR (spread pads near the design's region, use all
// four edges) flips this expectation.
func TestWestPadExhaustionUnderLoad(t *testing.T) {
	sys, err := New(WithDevice(fabric.XCV50), WithPort(SelectMAP))
	if err != nil {
		t.Fatal(err)
	}
	// XCV50: 16 rows x 2 pads per west edge tile = 32 input pads. Designs
	// with 6 inputs each exhaust the pool after 5 loads.
	var padErr error
	loaded := 0
	for i := 0; ; i++ {
		nl := itc99.Generate(itc99.GenConfig{
			Name: fmt.Sprintf("d%d", i), Inputs: 6, Outputs: 2, FFs: 6, LUTs: 10,
			Seed: uint64(30 + i), Style: itc99.FreeRunning,
		})
		if _, err := sys.Load(nl, fabric.Rect{}); err != nil {
			padErr = err
			break
		}
		loaded++
		if loaded > 10 {
			t.Fatal("west pad pool never exhausted — pad binding improved; " +
				"update this test and the ROADMAP item")
		}
	}
	if padErr == nil {
		t.Fatal("loads kept succeeding — pad binding improved; " +
			"update this test and the ROADMAP item")
	}
	if errors.Is(padErr, ErrNoSpace) || sys.Area().Utilisation() > 0.5 {
		t.Skipf("logic space was the binding constraint (%v, util %.2f) — "+
			"pads no longer exhaust first", padErr, sys.Area().Utilisation())
	}
}
