package rlm

import (
	"fmt"

	"repro/internal/area"
	"repro/internal/fabric"
	"repro/internal/itc99"
	"repro/internal/rearrange"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

// FabricSpace backs the scheduling simulator with a live System: every
// placed task is a real generated design — sized to the task's allocated
// region and shaped by its workload profile (free-running or gated-clock
// style, distributed-RAM usage, I/O counts) — loaded, routed and run on
// the simulated fabric, and every rearrangement physically relocates
// running designs through the configuration port. With verify set, all
// resident designs run in lock-step against their golden models for every
// application clock cycle that elapses during a relocation — the paper's
// transparency claim checked under the whole workload.
type FabricSpace struct {
	sys    *System
	group  *sim.Group
	verify bool
	seq    int
	names  map[int]string // allocation id -> design name
	rng    uint64
}

var _ sched.Space = (*FabricSpace)(nil)

// NewFabricSpace wraps a System as a sched.Space. With verify set it hooks
// the engine's application clock so every cycle that elapses during a
// relocation steps all resident designs against their golden models.
func NewFabricSpace(sys *System, verify bool) *FabricSpace {
	f := &FabricSpace{sys: sys, verify: verify, names: map[int]string{}, rng: 0x5EED}
	if verify {
		f.group = sim.NewGroup(sys.Device())
		sys.Engine().Clock = f.step
	}
	return f
}

// System returns the live system behind the space (stats, events, port).
func (f *FabricSpace) System() *System { return f.sys }

// Group returns the lock-step verification group (nil unless verify was
// set): every resident design paired with its golden model.
func (f *FabricSpace) Group() *sim.Group { return f.group }

// Manager exposes the system's area book-keeping.
func (f *FabricSpace) Manager() *area.Manager { return f.sys.Area() }

// Place loads a generated design shaped by the task's profile and sized to
// the allocated rect: the profile's fill factor targets a fraction of the
// region's logic cells, so a 10x10 task really carries ~100+ nodes of
// logic, not a token fixed-shape netlist.
func (f *FabricSpace) Place(t workload.Task, rect fabric.Rect) (int, error) {
	f.seq++
	name := fmt.Sprintf("t%04d", f.seq)
	nl := itc99.Generate(t.GenConfig(name, rect.Area()*fabric.CellsPerCLB))
	d, err := f.sys.Load(nl, rect)
	if err != nil {
		return 0, err
	}
	id, ok := f.sys.Allocation(name)
	if !ok {
		return 0, fmt.Errorf("rlm: %s loaded but not allocated", name)
	}
	if f.verify {
		if _, err := f.group.Add(d); err != nil {
			_ = f.sys.Unload(name)
			return 0, err
		}
	}
	f.names[id] = name
	return id, nil
}

// Remove unloads a placed task's design.
func (f *FabricSpace) Remove(id int) error {
	name, ok := f.names[id]
	if !ok {
		return fmt.Errorf("rlm: unknown allocation %d", id)
	}
	// Unload first: if it fails and rolls back, the design is still
	// resident and must stay under lock-step verification.
	if err := f.sys.Unload(name); err != nil {
		return err
	}
	if f.verify {
		kept := f.group.Members[:0]
		for _, m := range f.group.Members {
			if m.Design.Name != name {
				kept = append(kept, m)
			}
		}
		f.group.Members = kept
	}
	delete(f.names, id)
	return nil
}

// Rearrange executes the planner's book-keeping moves for real: each step
// relocates a live design CLB by CLB while it runs. It reports the CLB
// area of the steps that completed — a mid-plan failure (a RAM column, a
// boxed-in route) leaves the earlier relocations committed, and that work
// was really paid for through the configuration port.
func (f *FabricSpace) Rearrange(p *rearrange.Plan) (int, error) {
	moved := 0
	for _, st := range p.Steps {
		name, ok := f.names[st.ID]
		if !ok {
			return moved, fmt.Errorf("rlm: allocation %d backs no design", st.ID)
		}
		if err := f.sys.Move(name, st.To); err != nil {
			return moved, err
		}
		moved += st.From.Area()
	}
	return moved, nil
}

// step advances every resident design one application clock cycle with
// fresh random inputs, checking each against its golden model.
func (f *FabricSpace) step(cycles int) error {
	for i := 0; i < cycles; i++ {
		inputs := make([][]bool, len(f.group.Members))
		for k, m := range f.group.Members {
			in := make([]bool, len(m.Design.NL.Inputs()))
			for j := range in {
				f.rng = f.rng*6364136223846793005 + 1442695040888963407
				in[j] = f.rng>>40&1 == 1
			}
			inputs[k] = in
		}
		if err := f.group.Step(inputs); err != nil {
			return err
		}
	}
	return nil
}
