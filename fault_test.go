package rlm

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/bitstream"
	"repro/internal/fabric"
	"repro/internal/faultport"
	"repro/internal/jtag"
)

// faultSystem builds a system on a fault-injecting port, returning the
// wrapper for fault-plan control.
func faultSystem(t *testing.T, seed uint64, extra ...Option) (*System, *faultport.Port) {
	t.Helper()
	var flaky *faultport.Port
	opts := append([]Option{
		WithDevice(fabric.TestDevice),
		WithPortModel(func(ctrl *bitstream.Controller) bitstream.Port {
			flaky = faultport.New(jtag.NewPort(ctrl, jtag.DefaultTCKHz), seed)
			return flaky
		}),
	}, extra...)
	sys, err := New(opts...)
	if err != nil {
		t.Fatal(err)
	}
	return sys, flaky
}

// maskFaultStats zeroes the counters the fault layer owns, so a faulty run
// can be bit-compared against a fault-free twin: everything else — frames,
// book-keeping, TCK cycles, tick cursor — must still be identical.
func maskFaultStats(st hostState) hostState {
	st.stats.FaultsDetected = 0
	st.stats.FaultRetries = 0
	st.stats.RetrySeconds = 0
	return st
}

// TestChaosRetryBitIdenticalToFaultFree is the degradation ladder's first
// rung, as a chaos property: a transient transport fault injected after any
// frame budget must be absorbed by the retry ladder — every facade operation
// of the scripted workout still succeeds, and the final configuration image,
// host book-keeping and cycle accounting are bit-identical to a fault-free
// twin's (the retry traffic is compensated out). Run with -race.
func TestChaosRetryBitIdenticalToFaultFree(t *testing.T) {
	clean, err := New(WithDevice(fabric.TestDevice))
	if err != nil {
		t.Fatal(err)
	}
	crashScript(t, clean)
	want := maskFaultStats(captureState(clean))

	budgets := []int{0, 1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144, 233, 377}
	if testing.Short() {
		budgets = []int{0, 3, 21, 144}
	}
	detected := 0
	for _, budget := range budgets {
		t.Run(fmt.Sprintf("budget-%d", budget), func(t *testing.T) {
			sys, flaky := faultSystem(t, 7, WithRetryPolicy(RetryPolicy{MaxRetries: 2, VerifyAfter: 2}))
			events, cancel := sys.Subscribe(256)
			defer cancel()
			flaky.TripAfter(budget)
			crashScript(t, sys) // every op must succeed; the script fatals otherwise
			st := sys.Stats()
			if st.RetriesExhausted != 0 {
				t.Fatalf("transient fault exhausted retries: %+v", st)
			}
			detected += st.FaultsDetected
			if st.FaultsDetected > 0 {
				if st.FaultRetries == 0 {
					t.Fatalf("fault detected but never retried: %+v", st)
				}
				cancel()
				sawRetryOK := false
				for e := range events {
					if e.Kind == RetrySucceeded {
						sawRetryOK = true
					}
				}
				if !sawRetryOK {
					t.Fatal("fault detected but no RetrySucceeded event published")
				}
			}
			if diffs := diffStates(maskFaultStats(captureState(sys)), want); len(diffs) > 0 {
				t.Fatalf("faulty run diverges from fault-free twin: %s", diffs[0])
			}
		})
	}
	if detected == 0 {
		t.Fatal("no budget ever tripped a fault; the chaos sweep tested nothing")
	}
}

// condemnColumns arms persistent write failures on every frame of the CLB
// columns carrying the given array columns, returning the condemned frame
// count.
func condemnColumns(t *testing.T, dev *fabric.Device, flaky *faultport.Port, cols ...int) int {
	t.Helper()
	n := 0
	for _, c := range cols {
		major := dev.MajorOfArrayCol(c)
		col, ok := dev.ColumnByMajor(major)
		if !ok || col.Kind != fabric.ColCLB {
			t.Fatalf("array col %d: no CLB configuration column", c)
		}
		for minor := 0; minor < col.Frames; minor++ {
			flaky.FailFrames(fabric.FrameAddr{Major: major, Minor: minor})
			n++
		}
	}
	return n
}

// TestPersistentFaultQuarantinesAndEvacuates is the ladder's last rung:
// a persistent per-frame write failure survives every retry, the operation
// fails typed (ErrRetriesExhausted) and rolls back, the condemned columns
// are quarantined out of the logic space, and the design resident on them
// is evacuated to healthy space — after which explicit placement into the
// condemned columns is refused (ErrQuarantined) and auto-placement avoids
// them.
func TestPersistentFaultQuarantinesAndEvacuates(t *testing.T) {
	sys, flaky := faultSystem(t, 11, WithRetryPolicy(RetryPolicy{MaxRetries: 2, VerifyAfter: 1}))
	home := fabric.Rect{Row: 0, Col: 0, H: 2, W: 2}
	if _, err := sys.Load(mkCounter("vic"), home); err != nil {
		t.Fatal(err)
	}
	events, cancel := sys.Subscribe(256)
	defer cancel()

	condemned := condemnColumns(t, sys.Device(), flaky, 0, 1)
	err := sys.Move("vic", fabric.Rect{Row: 4, Col: 0, H: 2, W: 2})
	if !errors.Is(err, ErrRetriesExhausted) {
		t.Fatalf("move across condemned columns: %v, want ErrRetriesExhausted", err)
	}

	st := sys.Stats()
	if st.RetriesExhausted != 1 || st.FaultsDetected == 0 {
		t.Fatalf("ladder counters: %+v", st)
	}
	if st.FramesQuarantined != condemned {
		t.Fatalf("FramesQuarantined = %d, want %d (both columns, whole)", st.FramesQuarantined, condemned)
	}
	if st.DesignsEvacuated != 1 {
		t.Fatalf("DesignsEvacuated = %d, want 1", st.DesignsEvacuated)
	}
	if !sys.Area().QuarantineOverlaps(home) {
		t.Fatal("condemned columns not quarantined in the area manager")
	}
	region, ok := sys.Region("vic")
	if !ok {
		t.Fatal("design lost by the evacuation")
	}
	if sys.Area().QuarantineOverlaps(region) {
		t.Fatalf("design evacuated onto quarantined space: %v", region)
	}

	cancel()
	saw := map[EventKind]int{}
	var evac Event
	for e := range events {
		saw[e.Kind]++
		if e.Kind == DesignEvacuated {
			evac = e
		}
	}
	for _, k := range []EventKind{FaultDetected, RetriesExhausted, FrameQuarantined, DesignEvacuated} {
		if saw[k] == 0 {
			t.Errorf("event %v never published (saw %v)", k, saw)
		}
	}
	if evac.Design != "vic" || evac.Region != region {
		t.Errorf("DesignEvacuated = %+v, want vic -> %v", evac, region)
	}

	// Explicit placement into the condemned columns is refused before any
	// frame streams; a busy-region error would be misleading (the space can
	// never free up).
	if _, err := sys.Load(mkCounter("x"), fabric.Rect{Row: 6, Col: 0, H: 2, W: 2}); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("load into quarantined columns: %v, want ErrQuarantined", err)
	}
	// Auto-placement must route around the mask.
	d, err := sys.Load(mkCounter("auto"), fabric.Rect{})
	if err != nil {
		t.Fatalf("auto-placed load after quarantine: %v", err)
	}
	if sys.Area().QuarantineOverlaps(d.Region) {
		t.Fatalf("auto-placement chose quarantined space: %v", d.Region)
	}
	// The evacuated design is still live: it moves on healthy fabric.
	if err := sys.Move("vic", fabric.Rect{Row: 0, Col: 8, H: 2, W: 2}); err != nil {
		t.Fatalf("post-evacuation move: %v", err)
	}
}

// TestScrubRepairsSilentCorruption: a silent SEU — readback diverges from
// the golden shadow with no transport error — is found and repaired by one
// scrub pass, the repair is observable (report, Stats, event), and the scrub
// traffic is compensated out of the foreground cycle accounting.
func TestScrubRepairsSilentCorruption(t *testing.T) {
	sys, flaky := faultSystem(t, 23)
	if _, err := sys.Load(mkCounter("c1"), fabric.Rect{Row: 0, Col: 0, H: 2, W: 2}); err != nil {
		t.Fatal(err)
	}
	events, cancel := sys.Subscribe(64)
	defer cancel()

	addr := fabric.FrameAddr{Major: sys.Device().MajorOfArrayCol(0), Minor: 1}
	want, ok := sys.Engine().Tool.Shadow().Frame(addr)
	if !ok {
		t.Fatalf("frame %v missing from shadow", addr)
	}
	flaky.FlipBit(addr, 2, 7)
	if got, err := flaky.ReadFrame(addr); err != nil || frameWordsEqual(got, want) {
		t.Fatalf("SEU not visible on readback (err %v)", err)
	}

	cycles0 := flaky.Cycles()
	rep, err := sys.Scrub(0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Skipped || rep.FramesChecked == 0 {
		t.Fatalf("scrub pass did not run: %+v", rep)
	}
	if len(rep.Repairs) != 1 || rep.Repairs[0] != addr {
		t.Fatalf("repairs = %v, want [%v]", rep.Repairs, addr)
	}
	st := sys.Stats()
	if st.ScrubRepairs != 1 || st.ScrubChecked != rep.FramesChecked || st.ScrubSeconds <= 0 {
		t.Fatalf("scrub stats: %+v", st)
	}
	if flaky.Cycles() != cycles0 {
		t.Fatalf("scrub traffic leaked into foreground accounting: %d -> %d", cycles0, flaky.Cycles())
	}
	if got, err := flaky.ReadFrame(addr); err != nil || !frameWordsEqual(got, want) {
		t.Fatalf("frame not repaired (err %v)", err)
	}
	// A second pass over the repaired memory finds nothing.
	rep2, err := sys.Scrub(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep2.Repairs) != 0 {
		t.Fatalf("second pass repaired again: %v", rep2.Repairs)
	}
	cancel()
	sawRepair := false
	for e := range events {
		if e.Kind == ScrubRepair && e.Frame == addr {
			sawRepair = true
		}
	}
	if !sawRepair {
		t.Fatal("no ScrubRepair event published")
	}
}

// TestBackgroundScrubberRepairsUnderLoad runs the WithScrubber goroutine
// against concurrent foreground relocations (the stream-in-flight gate) and
// checks an injected SEU is repaired in the background. Run with -race.
func TestBackgroundScrubberRepairsUnderLoad(t *testing.T) {
	sys, flaky := faultSystem(t, 31, WithScrubber(200*time.Microsecond, 16))
	defer sys.Close()
	if _, err := sys.Load(mkCounter("c1"), fabric.Rect{Row: 0, Col: 0, H: 2, W: 2}); err != nil {
		t.Fatal(err)
	}
	flaky.FlipBit(fabric.FrameAddr{Major: sys.Device().MajorOfArrayCol(4), Minor: 0}, 1, 3)

	// Foreground churn while the scrubber sweeps.
	a := fabric.Rect{Row: 4, Col: 6, H: 2, W: 2}
	b := fabric.Rect{Row: 0, Col: 8, H: 2, W: 2}
	cur := fabric.Rect{Row: 0, Col: 0, H: 2, W: 2}
	deadline := time.Now().Add(10 * time.Second)
	for sys.Stats().ScrubRepairs == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("scrubber never repaired the SEU: %+v", sys.Stats())
		}
		next := a
		if cur == a {
			next = b
		}
		if err := sys.Move("c1", next); err != nil {
			t.Fatalf("foreground move: %v", err)
		}
		cur = next
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sys.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
}

// TestCrashDuringRetryRecovers simulates a host crash inside the retry
// ladder — after the fault was detected, before the re-delivery attempt —
// and recovers from the journal prefix plus the delivered-frame mirror. The
// in-flight operation must roll back to the previous committed boundary,
// and the journal ends sealed and consistent.
func TestCrashDuringRetryRecovers(t *testing.T) {
	dir := t.TempDir()
	jpath := filepath.Join(dir, "op.journal")
	var flaky *faultport.Port
	sys, err := New(WithDevice(fabric.TestDevice),
		WithJournal(jpath),
		WithRetryPolicy(RetryPolicy{MaxRetries: 2, VerifyAfter: 2}),
		WithPortModel(func(ctrl *bitstream.Controller) bitstream.Port {
			flaky = faultport.New(jtag.NewPort(ctrl, jtag.DefaultTCKHz), 3)
			return flaky
		}))
	if err != nil {
		t.Fatal(err)
	}
	mirror := map[fabric.FrameAddr][]uint32{}
	sys.onDelivered = func(updates []bitstream.FrameUpdate) {
		for _, u := range updates {
			mirror[u.Addr] = append([]uint32(nil), u.Data...)
		}
	}
	if _, err := sys.Load(mkCounter("c1"), fabric.Rect{Row: 0, Col: 0, H: 2, W: 2}); err != nil {
		t.Fatal(err)
	}
	oracle := captureState(sys)

	var capture *crashPoint
	sys.crashHook = func(stage string) {
		if stage != "retry" || capture != nil {
			return
		}
		data, err := os.ReadFile(jpath)
		if err != nil {
			t.Fatalf("reading journal at retry boundary: %v", err)
		}
		if off := sys.jrnl.j.Offset(); int64(len(data)) > off {
			data = data[:off]
		}
		capture = &crashPoint{stage: stage, jdata: append([]byte(nil), data...), frames: cloneFrames(mirror)}
	}
	flaky.TripAfter(0)
	// The live (uncrashed) system absorbs the transient via the ladder.
	if err := sys.Move("c1", fabric.Rect{Row: 4, Col: 4, H: 2, W: 2}); err != nil {
		t.Fatalf("move should have survived the transient: %v", err)
	}
	if capture == nil {
		t.Fatal("retry boundary never fired")
	}

	path := filepath.Join(dir, "crash-retry.journal")
	if err := os.WriteFile(path, capture.jdata, 0o644); err != nil {
		t.Fatal(err)
	}
	rec, rep, err := Recover(deviceFromFrames(t, capture.frames), path)
	if err != nil {
		t.Fatalf("recover from mid-retry crash: %v", err)
	}
	if rep.Action != "rolled-back" {
		t.Fatalf("action = %q, want rolled-back (retry window has no post state)", rep.Action)
	}
	if diffs := diffStates(captureState(rec), oracle); len(diffs) > 0 {
		t.Fatalf("recovered state diverges from pre-op boundary: %s", diffs[0])
	}
	// The recovered system is live and journals on.
	if err := rec.Move("c1", fabric.Rect{Row: 6, Col: 8, H: 2, W: 2}); err != nil {
		t.Fatalf("post-recovery move: %v", err)
	}
}

// TestRecoverWithCustomPortModel: a system journaled over WithPortModel
// records port kind "custom"; Recover re-passed the factory must rebuild
// onto the same port model with the accounting restored, and without the
// factory it falls back to the default Boundary-Scan port instead of
// failing.
func TestRecoverWithCustomPortModel(t *testing.T) {
	dir := t.TempDir()
	jpath := filepath.Join(dir, "op.journal")
	var flaky *faultport.Port
	factory := func(ctrl *bitstream.Controller) bitstream.Port {
		flaky = faultport.New(jtag.NewPort(ctrl, jtag.DefaultTCKHz), 5)
		return flaky
	}
	sys, err := New(WithDevice(fabric.TestDevice), WithJournal(jpath), WithPortModel(factory))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Load(mkCounter("c1"), fabric.Rect{Row: 0, Col: 0, H: 2, W: 2}); err != nil {
		t.Fatal(err)
	}
	if err := sys.Move("c1", fabric.Rect{Row: 4, Col: 6, H: 2, W: 2}); err != nil {
		t.Fatal(err)
	}
	want := captureState(sys)

	rec, rep, err := Recover(deviceFromFrames(t, dumpFrames(sys.dev)), jpath, WithPortModel(factory))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Action != "clean" {
		t.Fatalf("action = %q, want clean", rep.Action)
	}
	if p, ok := rec.Port().(*faultport.Port); !ok || p != flaky {
		t.Fatal("recover did not build onto the re-passed port factory")
	}
	if diffs := diffStates(captureState(rec), want); len(diffs) > 0 {
		t.Fatalf("recovered state diverges (accounting restored through the custom port): %s", diffs[0])
	}

	// Without the factory the port kind falls back; recovery still succeeds
	// and the non-cycle state still matches.
	rec2, _, err := Recover(deviceFromFrames(t, dumpFrames(sys.dev)), jpath)
	if err != nil {
		t.Fatal(err)
	}
	if _, isFault := rec2.Port().(*faultport.Port); isFault {
		t.Fatal("factory-less recovery should fall back to the default port")
	}
	if _, ok := rec2.Design("c1"); !ok {
		t.Fatal("factory-less recovery lost the design")
	}
}

// TestJournalRotationCompacts: with WithJournalRotation armed, the journal
// file is compacted in place after commit seals, so a long-running workout's
// journal stays bounded while recovery still lands on the exact final state.
func TestJournalRotationCompacts(t *testing.T) {
	dir := t.TempDir()

	plain, err := New(WithDevice(fabric.TestDevice), WithJournal(filepath.Join(dir, "plain.journal")))
	if err != nil {
		t.Fatal(err)
	}
	crashScript(t, plain)
	plainInfo, err := os.Stat(filepath.Join(dir, "plain.journal"))
	if err != nil {
		t.Fatal(err)
	}

	jpath := filepath.Join(dir, "rot.journal")
	sys, err := New(WithDevice(fabric.TestDevice), WithJournal(jpath), WithJournalRotation(8192))
	if err != nil {
		t.Fatal(err)
	}
	shrank := false
	var prevBegin int64 = -1
	sys.crashHook = func(stage string) {
		if stage != "begin" {
			return
		}
		off := sys.jrnl.j.Offset()
		if prevBegin >= 0 && off < prevBegin {
			shrank = true
		}
		prevBegin = off
	}
	crashScript(t, sys)
	want := captureState(sys)
	if !shrank {
		t.Fatal("rotation never compacted the journal (threshold never crossed?)")
	}
	rotInfo, err := os.Stat(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if rotInfo.Size() >= plainInfo.Size() {
		t.Fatalf("rotated journal (%d bytes) not smaller than unrotated (%d bytes)",
			rotInfo.Size(), plainInfo.Size())
	}

	rec, rep, err := Recover(deviceFromFrames(t, dumpFrames(sys.dev)), jpath)
	if err != nil {
		t.Fatalf("recover from rotated journal: %v", err)
	}
	if rep.Action != "clean" {
		t.Fatalf("action = %q, want clean", rep.Action)
	}
	if diffs := diffStates(captureState(rec), want); len(diffs) > 0 {
		t.Fatalf("recovered state diverges after rotation: %s", diffs[0])
	}
}
