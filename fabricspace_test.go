package rlm

import (
	"errors"
	"testing"

	"repro/internal/fabric"
	"repro/internal/itc99"
	"repro/internal/relocate"
	"repro/internal/sched"
	"repro/internal/workload"
)

// TestFabricSpaceLockStepAcrossRelocation extends the gated-clock
// coverage of TestPlaceGatedClockDesign to scenario-generated designs:
// with verify on, a gated-clock profile task and a RAM profile task are
// placed as real region-sized designs, the gated design is physically
// relocated while both keep running, and every application clock cycle
// that elapses during the relocation is checked bit-identical against the
// golden models. The RAM design must refuse relocation (the engine's
// LUT/RAM rule) without disturbing the residents.
func TestFabricSpaceLockStepAcrossRelocation(t *testing.T) {
	sys, err := New(WithDevice(fabric.XCV50), WithPort(BoundaryScan))
	if err != nil {
		t.Fatal(err)
	}
	space := NewFabricSpace(sys, true)

	gated := workload.Task{
		ID: 1, H: 4, W: 4,
		Profile: workload.Profile{
			Style: itc99.GatedClock, CEFraction: 0.75, FillFactor: 0.35,
			Inputs: 3, Outputs: 3, Seed: 77,
		},
	}
	ram := workload.Task{
		ID: 2, H: 3, W: 3,
		Profile: workload.Profile{
			Style: itc99.FreeRunning, FillFactor: 0.30, RAMs: 2,
			Inputs: 2, Outputs: 2, Seed: 78,
		},
	}
	gid, err := space.Place(gated, fabric.Rect{Row: 2, Col: 2, H: 4, W: 4})
	if err != nil {
		t.Fatalf("placing gated task: %v", err)
	}
	// The RAM design sits in columns disjoint from the gated design's
	// source and target columns: any relocation whose frames touch a
	// RAM column is refused outright (the ErrRAMInColumn rule).
	rid, err := space.Place(ram, fabric.Rect{Row: 12, Col: 20, H: 3, W: 3})
	if err != nil {
		t.Fatalf("placing RAM task: %v", err)
	}
	// The generated designs really carry the profiled structure.
	gd, ok := sys.Design("t0001")
	if !ok {
		t.Fatal("gated design not resident")
	}
	if st := gd.NL.Stats(); st.FFs < 2 || st.LUTs < 2 {
		t.Fatalf("gated design too small: %v", st)
	}
	rd, ok := sys.Design("t0002")
	if !ok {
		t.Fatal("RAM design not resident")
	}
	if st := rd.NL.Stats(); st.RAMs != 2 {
		t.Fatalf("RAM design has %d RAMs, want 2", st.RAMs)
	}

	// Warm the residents up: a freshly configured FF reads Z until its
	// first clock edge, so run a few verified cycles before comparing
	// fabric state against the golden models.
	if err := space.step(4); err != nil {
		t.Fatalf("warm-up cycles diverged: %v", err)
	}

	// The RAM design cannot be relocated on-line at all — either the moved
	// cell is itself a LUT/RAM (ErrRAMRelocation) or the relocation's
	// frames touch a column holding one (ErrRAMInColumn) — and the refusal
	// must leave both residents bit-identical to their golden models.
	err = sys.Move("t0002", fabric.Rect{Row: 2, Col: 14, H: 3, W: 3})
	if !errors.Is(err, relocate.ErrRAMRelocation) && !errors.Is(err, relocate.ErrRAMInColumn) {
		t.Fatalf("moving the RAM design: err = %v, want a RAM-relocation refusal", err)
	}
	if err := space.Group().CheckState(); err != nil {
		t.Fatalf("state mismatch after refused RAM move: %v", err)
	}

	// Once the RAM task departs, the gated design can relocate: while its
	// columns hold RAM, ANY relocation whose frames or rerouted nets touch
	// them is refused (that is the divergence the ram-heavy scenario
	// measures), so the departure is what frees the fabric again.
	if err := space.Remove(rid); err != nil {
		t.Fatalf("removing RAM task: %v", err)
	}
	if got := len(space.Group().Members); got != 1 {
		t.Fatalf("verify group has %d members after removal, want 1", got)
	}

	// Relocate the gated design across the device while it runs. The
	// engine's clock hook steps every resident design in lock-step against
	// its golden model for each application cycle of the relocation
	// interval; any divergence fails the move.
	if err := sys.Move("t0001", fabric.Rect{Row: 10, Col: 8, H: 4, W: 4}); err != nil {
		t.Fatalf("relocating gated design under lock-step verify: %v", err)
	}
	if sys.Stats().CellsRelocated == 0 {
		t.Fatal("no cells were physically relocated")
	}
	if sys.Stats().ClockCycles == 0 {
		t.Fatal("no application cycles elapsed during the relocation — " +
			"lock-step verification never ran")
	}
	// And the resident still matches its golden state bit for bit.
	if err := space.Group().CheckState(); err != nil {
		t.Fatalf("state mismatch after relocation: %v", err)
	}

	// Departures unload cleanly and leave the verify group consistent.
	if err := space.Remove(gid); err != nil {
		t.Fatalf("removing gated task: %v", err)
	}
	if got := len(space.Group().Members); got != 0 {
		t.Fatalf("verify group has %d members after removal, want 0", got)
	}
}

// TestScenarioMatrixDivergence is the short-mode scenario-matrix lane:
// every named scenario runs its profiled stream on a live fabric with
// lock-step verification on, against the book-keeping twin, and the
// divergence report must stay internally consistent. Under -race this is
// the acceptance gate for the whole scenario subsystem.
func TestScenarioMatrixDivergence(t *testing.T) {
	n := 16
	if testing.Short() {
		n = 6
	}
	physFailures := 0
	for _, sc := range sched.ScenarioMatrix(1, n, 1.0) {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			sys, err := New(WithDevice(fabric.XCV50), WithPort(BoundaryScan))
			if err != nil {
				t.Fatal(err)
			}
			space := NewFabricSpace(sys, true)
			d := sched.RunScenario(sc, space)
			if d.Scenario != sc.Name {
				t.Errorf("report names scenario %q", d.Scenario)
			}
			for side, m := range map[string]sched.Metrics{"book": d.Book, "fabric": d.Fabric} {
				placed := m.Placed + m.PlacedAfterRearrange + m.PlacedAfterWait
				if m.Submitted != n || placed+m.Rejected != m.Submitted {
					t.Errorf("%s accounting broken: %+v", side, m)
				}
			}
			if d.Book.PhysicalPlaceFailures != 0 {
				t.Errorf("book-keeping run reported physical failures: %+v", d.Book)
			}
			if got := d.Book.AllocationRate - d.Fabric.AllocationRate; got != d.AllocationGap {
				t.Errorf("AllocationGap %f inconsistent with metrics (%f)", d.AllocationGap, got)
			}
			// Everything placed on the fabric departed again (minus removals
			// that failed and rolled back, which stay resident by design).
			if got := len(sys.Designs()); got != d.Fabric.FailedRemovals {
				t.Errorf("%d designs resident at end, want %d", got, d.Fabric.FailedRemovals)
			}
			physFailures += d.PhysicalPlaceFailures
		})
	}
	if !testing.Short() && physFailures == 0 {
		t.Error("no scenario diverged physically — the matrix no longer exercises " +
			"fabric reality (RAM columns, pad pressure); re-tune the scenarios")
	}
}
