package rlm

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/health"
)

// This file glues the per-column health lifecycle (internal/health) into
// the facade: the tracker decides WHEN a column changes state from the
// evidence the retry ladder and the scrubber feed it; the code here owns
// the side effects — masking and unmasking frames and logic space,
// evacuating residents, journaling the transition, publishing events and
// counting Stats. See fault.go for the evidence from foreground faults and
// scrub.go for scrub/probe evidence.

// HealthPolicy is the threshold set driving the health lifecycle; see
// WithHealthPolicy. The zero value reproduces the legacy permanent
// quarantine.
type HealthPolicy = health.Policy

// ColumnHealth is one entry of the per-column health ledger System.Health
// returns.
type ColumnHealth = health.Column

// Health states of a column, re-exported for callers inspecting the
// ledger.
const (
	ColumnHealthy     = health.Healthy
	ColumnSuspect     = health.Suspect
	ColumnQuarantined = health.Quarantined
	ColumnProbation   = health.Probation
)

// DefaultHealthPolicy returns the stock lifecycle thresholds.
func DefaultHealthPolicy() HealthPolicy { return health.DefaultPolicy() }

// Health returns the per-column health ledger, sorted by column major.
// Columns that never produced evidence are absent (implicitly healthy).
func (s *System) Health() []ColumnHealth {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.health.Columns()
}

// Capacity returns the current logic-space capacity census.
func (s *System) Capacity() Capacity {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.capacityLocked()
}

// capacityLocked builds the census: quarantined CLBs are masked out of the
// area manager; probation columns are in service (and counted healthy).
func (s *System) capacityLocked() Capacity {
	total := s.dev.Rows * s.dev.Cols
	quar := s.area.QuarantinedCLBs()
	prob := 0
	for _, major := range s.health.MajorsIn(health.Probation) {
		if col, ok := s.dev.ColumnByMajor(major); ok && col.Kind == fabric.ColCLB {
			prob += s.dev.Rows
		}
	}
	return Capacity{HealthyCLBs: total - quar, QuarantinedCLBs: quar, ProbationCLBs: prob}
}

// admitLocked is the degraded-mode admission gate: with a watermark
// configured, a Load (direct or inside a Plan) fails fast with ErrDegraded
// while healthy capacity is below watermark × total.
func (s *System) admitLocked() error {
	pol := s.health.Policy()
	if pol.DegradedBelow <= 0 {
		return nil
	}
	cap := s.capacityLocked()
	total := s.dev.Rows * s.dev.Cols
	if float64(cap.HealthyCLBs) < pol.DegradedBelow*float64(total) {
		return fmt.Errorf("%w: %d/%d CLBs healthy (watermark %.0f%%)",
			ErrDegraded, cap.HealthyCLBs, total, 100*pol.DegradedBelow)
	}
	return nil
}

// applyHealthChangesLocked performs the side effects of tracker decisions.
// record mirrors quarantineFramesLocked's convention: recovery re-applies
// journaled state with record off so Stats are not double-counted.
func (s *System) applyHealthChangesLocked(changes []*health.Change, record bool) {
	masked := false
	for _, ch := range changes {
		if ch == nil {
			continue
		}
		switch ch.To {
		case health.Suspect:
			if record {
				s.engine.Stats.ColumnsSuspected++
				s.publish(Event{Kind: FrameSuspect, Frame: fabric.FrameAddr{Major: ch.Major}})
			}
		case health.Quarantined:
			// Preemptive condemnation (scrub evidence) or a probation
			// column's one-strike return: mask the column and evacuate.
			if s.quarantineFramesLocked([]fabric.FrameAddr{{Major: ch.Major}}, record) {
				s.evacuateLocked()
				masked = true
			}
		case health.Probation:
			// Released from quarantine: unmask the column.
			s.releaseColumnLocked(ch.Major, record)
			masked = true
		case health.Healthy:
			if ch.From == health.Probation && record {
				s.publish(Event{Kind: CapacityChanged, Capacity: s.capacityLocked()})
			}
		}
	}
	if masked {
		// The quarantine mask moved outside any journaled operation; seal
		// it now so a crash before the next op cannot lose it.
		s.journalHealthLocked()
	}
}

// releaseColumnLocked returns a quarantined column to service: every minor
// frame re-enters port delivery, and (for CLB columns) the logic space is
// unmasked so placements may cover it again.
func (s *System) releaseColumnLocked(major int, record bool) {
	col, ok := s.dev.ColumnByMajor(major)
	if !ok {
		return
	}
	for minor := 0; minor < col.Frames; minor++ {
		fa := fabric.FrameAddr{Major: major, Minor: minor}
		if !s.quarantined[fa] {
			continue
		}
		delete(s.quarantined, fa)
		s.engine.Tool.UnquarantineFrame(fa)
	}
	if col.Kind == fabric.ColCLB {
		s.area.Unquarantine(fabric.Rect{Row: 0, Col: col.ArrayCol, H: s.dev.Rows, W: 1})
	}
	if record {
		s.engine.Stats.QuarantinesReleased++
		s.publish(Event{Kind: QuarantineReleased, Frame: fabric.FrameAddr{Major: major}})
		s.publish(Event{Kind: CapacityChanged, Capacity: s.capacityLocked()})
	}
}

// journalHealthLocked seals the current health/quarantine state into the
// journal as a standalone committed mini-operation. Health transitions
// driven by the scrubber or a post-abort sweep happen outside any journaled
// operation, and until now were only persisted by the NEXT committed op's
// Post record — a crash in between would recover a stale mask. The mini-op
// closes that window: Begin("health") + Post(full state) + Commit, with no
// frame deliveries of its own. No-op without a journal, inside an active
// operation (its Post will carry the state), or during recovery replay.
func (s *System) journalHealthLocked() {
	js := s.jrnl
	if js == nil || js.active || s.restoring {
		return
	}
	snap, err := s.checkpointLocked()
	if err != nil {
		return
	}
	defer s.releaseCheckpointLocked(snap)
	if err := s.journalBeginLocked(snap, "health", "", fabric.Rect{}, ""); err != nil {
		return
	}
	if err := s.journalCommitLocked(); err != nil {
		s.journalAbortLocked()
	}
}
