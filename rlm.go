// Package rlm (run-time logic management) is the public facade of the
// reproduction of Gericota et al., "Run-Time Management of Logic Resources
// on Reconfigurable Systems" (DATE 2003): a complete software model of a
// Virtex-class partially reconfigurable FPGA together with the paper's
// contribution — dynamic relocation of active CLBs and routing, on-line
// defragmentation, and the rearrangement-and-programming tool built on a
// JBits-style bitstream API over a Boundary-Scan configuration port.
//
// A System owns the device, its configuration port, the relocation engine
// and the area book-keeping. Designs (technology-mapped netlists) are
// loaded into rectangular regions, run cycle-accurately, and can be moved
// — whole or CLB by CLB — while they keep running.
package rlm

import (
	"fmt"
	"sort"

	"repro/internal/area"
	"repro/internal/bitstream"
	"repro/internal/fabric"
	"repro/internal/jtag"
	"repro/internal/netlist"
	"repro/internal/place"
	"repro/internal/relocate"
	"repro/internal/route"
)

// PortKind selects the configuration interface.
type PortKind uint8

const (
	// BoundaryScan is the paper's IEEE 1149.1 port (default 20 MHz TCK).
	BoundaryScan PortKind = iota
	// SelectMAP is a byte-parallel port (default 50 MHz), for the
	// interface-comparison ablation.
	SelectMAP
)

// Options configures a System.
type Options struct {
	Device fabric.Preset
	Port   PortKind
	// ClockHz is the configuration port clock (0 = port default).
	ClockHz float64
	// AppClockHz is the application clock used to convert port time into
	// elapsed cycles during relocation waits.
	AppClockHz float64
}

// System is the live reconfigurable platform: device, configuration port,
// relocation engine, and area management.
type System struct {
	Dev    *fabric.Device
	Ctrl   *bitstream.Controller
	Port   bitstream.Port
	Engine *relocate.Engine
	Area   *area.Manager

	router  *route.Router
	pads    map[fabric.PadRef]bool
	designs map[string]*place.Design
	regions map[string]int // design name -> area allocation id
}

// New builds a system.
func New(opts Options) (*System, error) {
	if opts.Device.Rows == 0 {
		opts.Device = fabric.XCV200
	}
	dev := fabric.NewDevice(opts.Device)
	ctrl := bitstream.NewController(dev)
	var port bitstream.Port
	switch opts.Port {
	case SelectMAP:
		hz := opts.ClockHz
		if hz == 0 {
			hz = 50e6
		}
		port = bitstream.NewParallelPort(ctrl, hz)
	default:
		hz := opts.ClockHz
		if hz == 0 {
			hz = jtag.DefaultTCKHz
		}
		port = jtag.NewPort(ctrl, hz)
	}
	eng, err := relocate.NewEngine(dev, port)
	if err != nil {
		return nil, err
	}
	if opts.AppClockHz > 0 {
		eng.AppClockHz = opts.AppClockHz
	}
	return &System{
		Dev:     dev,
		Ctrl:    ctrl,
		Port:    port,
		Engine:  eng,
		Area:    area.NewManagerFor(dev),
		router:  route.NewRouter(dev),
		pads:    map[fabric.PadRef]bool{},
		designs: map[string]*place.Design{},
		regions: map[string]int{},
	}, nil
}

// Designs lists loaded design names.
func (s *System) Designs() []string {
	out := make([]string, 0, len(s.designs))
	for name := range s.designs {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Design returns a loaded design.
func (s *System) Design(name string) (*place.Design, bool) {
	d, ok := s.designs[name]
	return d, ok
}

// Load places a netlist into a region (auto-sized when region is zero) and
// registers it with the area manager.
func (s *System) Load(nl *netlist.Netlist, region fabric.Rect) (*place.Design, error) {
	if _, dup := s.designs[nl.Name]; dup {
		return nil, fmt.Errorf("rlm: design %q already loaded", nl.Name)
	}
	if region.Area() == 0 {
		var ok bool
		region, ok = s.findRegion(nl)
		if !ok {
			return nil, fmt.Errorf("rlm: no region available for %q", nl.Name)
		}
	}
	d, err := place.Place(s.Dev, nl, place.Options{
		Region:      region,
		ReservePads: s.pads,
		Router:      s.router,
	})
	if err != nil {
		return nil, err
	}
	for _, p := range d.PadOf {
		s.pads[p] = true
	}
	id, err := s.Area.AllocateAt(region)
	if err != nil {
		return nil, err
	}
	s.designs[nl.Name] = d
	s.regions[nl.Name] = id
	// Checkpoint the recovery shadow: the tool now holds a complete copy
	// of the configuration including the new design.
	if err := s.Engine.Tool.Sync(); err != nil {
		return nil, err
	}
	return d, nil
}

// findRegion auto-sizes and places a region using the area manager.
func (s *System) findRegion(nl *netlist.Netlist) (fabric.Rect, bool) {
	proto, err := place.AutoRegion(s.Dev, nl, 0, 0, 0.4)
	if err != nil {
		return fabric.Rect{}, false
	}
	return s.Area.FindPlacement(proto.H, proto.W, area.BestFit)
}

// Unload decommissions a design: all its routing and cells are released
// through the configuration port, its pads disabled, its region freed.
func (s *System) Unload(name string) error {
	d, ok := s.designs[name]
	if !ok {
		return fmt.Errorf("rlm: unknown design %q", name)
	}
	// Release routing from every signal source (cell outputs, input pads).
	srcs := make([]fabric.NodeID, 0, len(d.SourceOf))
	for _, src := range d.SourceOf {
		srcs = append(srcs, src)
	}
	sort.Slice(srcs, func(i, j int) bool { return srcs[i] < srcs[j] })
	for _, src := range srcs {
		if err := s.Engine.ReleaseTree(src); err != nil {
			return err
		}
	}
	// Clear cells.
	for _, ref := range d.OccupiedCells() {
		if err := s.Engine.ClearCell(ref); err != nil {
			return err
		}
	}
	// Disable pads.
	for _, p := range d.PadOf {
		if err := s.Engine.ClearPad(p); err != nil {
			return err
		}
		delete(s.pads, p)
	}
	s.Area.Free(s.regions[name])
	delete(s.designs, name)
	delete(s.regions, name)
	// The shared router's occupancy is stale; rebuild it.
	s.rebuildRouter()
	return nil
}

func (s *System) rebuildRouter() {
	s.router = route.NewRouter(s.Dev)
	for _, d := range s.designs {
		s.router.Block(d.UsedNodes()...)
	}
}

// Move relocates a whole design to a new region of identical shape, CLB by
// CLB, while it runs. Overlapping source/target regions are handled by
// ordering the moves along the displacement vector (the paper's staged
// relocation).
func (s *System) Move(name string, to fabric.Rect) error {
	d, ok := s.designs[name]
	if !ok {
		return fmt.Errorf("rlm: unknown design %q", name)
	}
	from := d.Region
	if to.H != from.H || to.W != from.W {
		return fmt.Errorf("rlm: target %v does not match region %v", to, from)
	}
	coords := from.Coords()
	// Order so that targets are vacated before they are needed.
	sort.Slice(coords, func(i, j int) bool {
		a, b := coords[i], coords[j]
		if to.Row != from.Row {
			if to.Row < from.Row { // moving up: top rows first
				if a.Row != b.Row {
					return a.Row < b.Row
				}
			} else {
				if a.Row != b.Row {
					return a.Row > b.Row
				}
			}
		}
		if to.Col < from.Col {
			return a.Col < b.Col
		}
		return a.Col > b.Col
	})
	dr, dc := to.Row-from.Row, to.Col-from.Col
	for _, c := range coords {
		occupied := false
		for cell := 0; cell < fabric.CellsPerCLB; cell++ {
			if s.Dev.ReadCell(fabric.CellRef{Coord: c, Cell: cell}).InUse() {
				occupied = true
				break
			}
		}
		if !occupied {
			continue
		}
		dst := fabric.Coord{Row: c.Row + dr, Col: c.Col + dc}
		if _, err := s.Engine.RelocateCLB(c, dst); err != nil {
			return fmt.Errorf("rlm: moving %s CLB %v: %w", name, c, err)
		}
		for cell := 0; cell < fabric.CellsPerCLB; cell++ {
			d.Rebind(fabric.CellRef{Coord: c, Cell: cell}, fabric.CellRef{Coord: dst, Cell: cell})
		}
	}
	d.Region = to
	if err := s.Area.Move(s.regions[name], to); err != nil {
		return err
	}
	s.rebuildRouter()
	return nil
}

// MoveStaged relocates a design like Move, but bounds the displacement of
// each stage to maxStep CLBs (Chebyshev distance), hopping through
// intermediate regions. The paper: "the relocation of a complete function
// may take place in several stages, to avoid an excessive increase in path
// delays during the relocation interval". Every intermediate region must be
// free.
func (s *System) MoveStaged(name string, to fabric.Rect, maxStep int) error {
	d, ok := s.designs[name]
	if !ok {
		return fmt.Errorf("rlm: unknown design %q", name)
	}
	if maxStep < 1 {
		maxStep = 1
	}
	for d.Region != to {
		cur := d.Region
		dr := clampStep(to.Row-cur.Row, maxStep)
		dc := clampStep(to.Col-cur.Col, maxStep)
		next := fabric.Rect{Row: cur.Row + dr, Col: cur.Col + dc, H: cur.H, W: cur.W}
		if err := s.Move(name, next); err != nil {
			return fmt.Errorf("rlm: staged move via %v: %w", next, err)
		}
	}
	return nil
}

func clampStep(d, max int) int {
	if d > max {
		return max
	}
	if d < -max {
		return -max
	}
	return d
}

// Recover restores the device to the tool's shadow copy of the
// configuration by streaming a full recovery bitstream through the
// configuration controller — the paper's failure-recovery path ("the
// program always keeps a complete copy of the current configuration,
// enabling system recovery in case of failure").
func (s *System) Recover() error {
	words := s.Engine.Tool.Shadow().RecoveryBitstream()
	return s.Ctrl.Feed(words...)
}

// Fragmentation reports the current logic-space fragmentation.
func (s *System) Fragmentation() float64 { return s.Area.Fragmentation() }

// Stats returns the relocation engine statistics.
func (s *System) Stats() relocate.Stats { return s.Engine.Stats }
