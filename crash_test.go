package rlm

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/bitstream"
	"repro/internal/fabric"
	"repro/internal/itc99"
	"repro/internal/journal"
	"repro/internal/relocate"
)

// hostState is everything the crash-consistency property compares: the full
// configuration image plus all host book-keeping and accounting.
type hostState struct {
	frames   map[fabric.FrameAddr][]uint32
	designs  map[string]string
	regions  map[string]int
	pads     string
	areaMap  string
	allocs   string
	stats    relocate.Stats
	cycles   uint64
	traffic  bitstream.Traffic
	lastTick float64
}

func dumpFrames(dev *fabric.Device) map[fabric.FrameAddr][]uint32 {
	out := map[fabric.FrameAddr][]uint32{}
	for major := 0; major < dev.NumMajors(); major++ {
		col, ok := dev.ColumnByMajor(major)
		if !ok {
			continue
		}
		for minor := 0; minor < col.Frames; minor++ {
			fr, err := dev.ReadFrame(major, minor)
			if err != nil {
				continue
			}
			out[fabric.FrameAddr{Major: major, Minor: minor}] = fr
		}
	}
	return out
}

func captureState(s *System) hostState {
	st := hostState{
		frames:   dumpFrames(s.dev),
		designs:  map[string]string{},
		regions:  map[string]int{},
		areaMap:  s.area.String(),
		stats:    s.engine.Stats,
		lastTick: s.engine.LastTick(),
	}
	// PlanSeconds is wall-clock host time, and the overlapped/serial
	// counters depend on how far the background shift-out happened to get
	// when planning started — all three journal and recover faithfully, but
	// two runs of the same script legitimately differ, so the twin
	// comparison masks them. Everything else is bit-compared.
	st.stats.PlanSeconds = 0
	st.stats.OverlappedOps = 0
	st.stats.SerialFallbacks = 0
	for name, d := range s.designs {
		st.designs[name] = fmt.Sprintf("%v|%v|%v|%v", d.Region, d.CellOf, d.PadOf, d.SourceOf)
		st.regions[name] = s.regions[name]
	}
	st.pads = fmt.Sprint(s.pads)
	al, next := s.area.Export()
	st.allocs = fmt.Sprintf("%v next=%d", al, next)
	if cp, ok := s.port.(cyclePort); ok {
		st.cycles = cp.Cycles()
	}
	if tp, ok := s.port.(bitstream.CompressPort); ok {
		st.traffic = tp.Traffic()
	}
	return st
}

func diffStates(got, want hostState) []string {
	var diffs []string
	for addr, w := range want.frames {
		g, ok := got.frames[addr]
		if !ok || !frameWordsEqual(g, w) {
			diffs = append(diffs, fmt.Sprintf("frame %v differs", addr))
		}
	}
	for addr := range got.frames {
		if _, ok := want.frames[addr]; !ok {
			diffs = append(diffs, fmt.Sprintf("extra frame %v", addr))
		}
	}
	if len(got.designs) != len(want.designs) {
		diffs = append(diffs, fmt.Sprintf("designs: got %v, want %v", keys(got.designs), keys(want.designs)))
	}
	for name, w := range want.designs {
		if got.designs[name] != w {
			diffs = append(diffs, fmt.Sprintf("design %q book-keeping differs:\n got %s\nwant %s", name, got.designs[name], w))
		}
		if got.regions[name] != want.regions[name] {
			diffs = append(diffs, fmt.Sprintf("design %q alloc id %d, want %d", name, got.regions[name], want.regions[name]))
		}
	}
	if got.pads != want.pads {
		diffs = append(diffs, fmt.Sprintf("pads: got %s, want %s", got.pads, want.pads))
	}
	if got.areaMap != want.areaMap {
		diffs = append(diffs, fmt.Sprintf("area map:\n%s\nwant:\n%s", got.areaMap, want.areaMap))
	}
	if got.allocs != want.allocs {
		diffs = append(diffs, fmt.Sprintf("allocs: got %s, want %s", got.allocs, want.allocs))
	}
	if got.stats != want.stats {
		diffs = append(diffs, fmt.Sprintf("stats: got %+v, want %+v", got.stats, want.stats))
	}
	if got.cycles != want.cycles {
		diffs = append(diffs, fmt.Sprintf("port cycles: got %d, want %d", got.cycles, want.cycles))
	}
	if got.traffic != want.traffic {
		diffs = append(diffs, fmt.Sprintf("port traffic: got %+v, want %+v", got.traffic, want.traffic))
	}
	if got.lastTick != want.lastTick {
		diffs = append(diffs, fmt.Sprintf("last tick: got %v, want %v", got.lastTick, want.lastTick))
	}
	return diffs
}

func keys(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// crashPoint is one simulated crash: the journal bytes that had reached
// stable storage and the configuration the port had delivered to the fabric.
type crashPoint struct {
	stage  string
	seq    uint64
	jdata  []byte
	frames map[fabric.FrameAddr][]uint32
}

func cloneFrames(src map[fabric.FrameAddr][]uint32) map[fabric.FrameAddr][]uint32 {
	out := make(map[fabric.FrameAddr][]uint32, len(src))
	for a, w := range src {
		out[a] = append([]uint32(nil), w...)
	}
	return out
}

func deviceFromFrames(t *testing.T, frames map[fabric.FrameAddr][]uint32) *fabric.Device {
	t.Helper()
	dev := fabric.NewDevice(fabric.TestDevice)
	for addr, words := range frames {
		if err := dev.WriteFrame(addr.Major, addr.Minor, words); err != nil {
			t.Fatalf("rebuilding device frame %v: %v", addr, err)
		}
	}
	return dev
}

// crashScript is the deterministic facade workout both twins run: every
// journaled operation kind appears (load, move, plan, move-staged,
// defragmentation slides, unload via plan).
func crashScript(t *testing.T, s *System) {
	t.Helper()
	b01, err := itc99.Get("b01")
	if err != nil {
		t.Fatal(err)
	}
	b02, err := itc99.Get("b02")
	if err != nil {
		t.Fatal(err)
	}
	steps := []func() error{
		func() error { _, err := s.Load(b01, fabric.Rect{Row: 0, Col: 0, H: 4, W: 4}); return err },
		func() error { _, err := s.Load(mkCounter("c1"), fabric.Rect{Row: 0, Col: 8, H: 2, W: 2}); return err },
		func() error { _, err := s.Load(b02, fabric.Rect{Row: 4, Col: 0, H: 4, W: 4}); return err },
		func() error { return s.Move("c1", fabric.Rect{Row: 6, Col: 10, H: 2, W: 2}) },
		func() error {
			return s.Plan().
				Unload("b01").
				Move("b02", fabric.Rect{Row: 0, Col: 4, H: 4, W: 4}).
				Commit()
		},
		func() error { return s.MoveStaged("c1", fabric.Rect{Row: 0, Col: 10, H: 2, W: 2}, 3) },
		func() error { _, err := s.Defragment(DefragPolicy{}); return err },
	}
	for i, step := range steps {
		if err := step(); err != nil {
			t.Fatalf("script step %d: %v", i, err)
		}
	}
}

// TestCrashConsistency is the tentpole property test: a journaled system is
// "crashed" at every journal/flush boundary of a full facade workout, each
// crash is recovered from the journal prefix plus the port-delivered
// configuration, and the reconciled system must be bit-identical — frames,
// book-keeping, TCK accounting — to a never-crashed twin at the operation
// boundary the decision table selects. Run with -race.
func TestCrashConsistency(t *testing.T) {
	runCrashConsistency(t)
}

// runCrashConsistency is the crash-torture body, parameterised so variants
// (e.g. compressed delivery) can run the identical property with extra
// options on both twins. Recover reads no options: everything it needs to
// rebuild — including the extra options' effects — must come from the
// journal's init record.
func runCrashConsistency(t *testing.T, extra ...Option) {
	dir := t.TempDir()

	// The never-crashed twin: journaled too (identical code path), its state
	// captured at every commit seal, keyed by operation sequence number.
	twin, err := New(append([]Option{WithDevice(fabric.TestDevice),
		WithJournal(filepath.Join(dir, "twin.journal"))}, extra...)...)
	if err != nil {
		t.Fatal(err)
	}
	oracle := map[uint64]hostState{0: captureState(twin)}
	twin.crashHook = func(stage string) {
		if stage == "commit" {
			oracle[twin.jrnl.seq] = captureState(twin)
		}
	}
	crashScript(t, twin)
	final := captureState(twin)

	// The crash victim: mirror every delivered frame (the harness's model of
	// what the real fabric holds) and capture journal prefix + mirror at
	// every boundary.
	jpath := filepath.Join(dir, "op.journal")
	sys, err := New(append([]Option{WithDevice(fabric.TestDevice), WithJournal(jpath)}, extra...)...)
	if err != nil {
		t.Fatal(err)
	}
	mirror := map[fabric.FrameAddr][]uint32{}
	sys.onDelivered = func(updates []bitstream.FrameUpdate) {
		for _, u := range updates {
			mirror[u.Addr] = append([]uint32(nil), u.Data...)
		}
	}
	var captures []crashPoint
	sys.crashHook = func(stage string) {
		data, err := os.ReadFile(jpath)
		if err != nil {
			t.Fatalf("reading journal at %s boundary: %v", stage, err)
		}
		if off := sys.jrnl.j.Offset(); int64(len(data)) > off {
			data = data[:off]
		}
		captures = append(captures, crashPoint{
			stage:  stage,
			seq:    sys.jrnl.seq,
			jdata:  append([]byte(nil), data...),
			frames: cloneFrames(mirror),
		})
	}
	crashScript(t, sys)
	if len(captures) == 0 {
		t.Fatal("no crash boundaries fired")
	}

	stages := map[string]int{}
	actions := map[string]int{}
	for i, cp := range captures {
		stages[cp.stage]++
		path := filepath.Join(dir, fmt.Sprintf("crash-%03d.journal", i))
		if err := os.WriteFile(path, cp.jdata, 0o644); err != nil {
			t.Fatal(err)
		}
		dev := deviceFromFrames(t, cp.frames)
		rec, rep, err := Recover(dev, path)
		if err != nil {
			t.Fatalf("capture %d (%s, seq %d): recover: %v", i, cp.stage, cp.seq, err)
		}
		var wantAction string
		var want hostState
		switch cp.stage {
		case "post":
			wantAction, want = "rolled-forward", oracle[cp.seq]
		case "commit":
			wantAction, want = "clean", oracle[cp.seq]
		case "begin", "undo", "delivered":
			wantAction, want = "rolled-back", oracle[cp.seq-1]
		default:
			t.Fatalf("capture %d: unknown stage %q", i, cp.stage)
		}
		if rep.Action != wantAction {
			t.Errorf("capture %d (%s, seq %d): action %q, want %q", i, cp.stage, cp.seq, rep.Action, wantAction)
		}
		actions[rep.Action]++
		if diffs := diffStates(captureState(rec), want); len(diffs) > 0 {
			t.Fatalf("capture %d (%s, seq %d, %s): recovered state diverges from twin:\n%s",
				i, cp.stage, cp.seq, rep.Action, diffs[0])
		}
		// Recovery leaves the journal sealed: a second recovery (idempotence)
		// must be clean and land on the same state.
		dev2 := deviceFromFrames(t, dumpFrames(rec.dev))
		rec2, rep2, err := Recover(dev2, path)
		if err != nil {
			t.Fatalf("capture %d: re-recover: %v", i, err)
		}
		if rep2.Action != "clean" {
			t.Errorf("capture %d: re-recover action %q, want clean", i, rep2.Action)
		}
		if diffs := diffStates(captureState(rec2), want); len(diffs) > 0 {
			t.Fatalf("capture %d: re-recovered state diverges: %s", i, diffs[0])
		}
	}
	// The decision table must have been exercised both ways.
	if actions["rolled-forward"] == 0 || actions["rolled-back"] == 0 {
		t.Fatalf("decision table not fully exercised: %v (stages %v)", actions, stages)
	}
	// And the uncrashed victim ends bit-identical to the twin.
	if diffs := diffStates(captureState(sys), final); len(diffs) > 0 {
		t.Fatalf("victim and twin diverge without any crash: %s", diffs[0])
	}
}

// TestRecoverContinuesJournaling recovers the final state of a scripted run
// and checks the recovered system is live: further operations journal onto
// the sealed file with correct sequence numbering and survive a re-recovery.
func TestRecoverContinuesJournaling(t *testing.T) {
	dir := t.TempDir()
	jpath := filepath.Join(dir, "op.journal")
	sys, err := New(WithDevice(fabric.TestDevice), WithJournal(jpath))
	if err != nil {
		t.Fatal(err)
	}
	crashScript(t, sys)
	want := captureState(sys)

	dev := deviceFromFrames(t, dumpFrames(sys.dev))
	rec, rep, err := Recover(dev, jpath)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Action != "clean" {
		t.Fatalf("action = %q, want clean", rep.Action)
	}
	if diffs := diffStates(captureState(rec), want); len(diffs) > 0 {
		t.Fatalf("recovered state diverges: %s", diffs[0])
	}
	if _, err := rec.Load(mkCounter("after"), fabric.Rect{Row: 6, Col: 0, H: 2, W: 2}); err != nil {
		t.Fatalf("post-recovery load: %v", err)
	}
	// The continued journal recovers again, with the new op committed.
	dev2 := deviceFromFrames(t, dumpFrames(rec.dev))
	rec2, rep2, err := Recover(dev2, jpath)
	if err != nil {
		t.Fatalf("second recovery: %v", err)
	}
	if rep2.Action != "clean" {
		t.Errorf("second recovery action = %q, want clean", rep2.Action)
	}
	if _, ok := rec2.Design("after"); !ok {
		t.Error("post-recovery op lost by second recovery")
	}
	if rep2.Seq <= rep.Seq {
		t.Errorf("sequence did not advance: %d -> %d", rep.Seq, rep2.Seq)
	}
}

// TestRecoverTornTail tears the journal mid-record at a post boundary: the
// post state is lost, so recovery must fall back to roll-back.
func TestRecoverTornTail(t *testing.T) {
	dir := t.TempDir()
	jpath := filepath.Join(dir, "op.journal")
	sys, err := New(WithDevice(fabric.TestDevice), WithJournal(jpath))
	if err != nil {
		t.Fatal(err)
	}
	mirror := map[fabric.FrameAddr][]uint32{}
	sys.onDelivered = func(updates []bitstream.FrameUpdate) {
		for _, u := range updates {
			mirror[u.Addr] = append([]uint32(nil), u.Data...)
		}
	}
	oracle := map[uint64]hostState{0: captureState(sys)}
	var atPost *crashPoint
	sys.crashHook = func(stage string) {
		if stage == "commit" {
			oracle[sys.jrnl.seq] = captureState(sys)
		}
		if stage != "post" || atPost != nil || sys.jrnl.seq != 2 {
			return
		}
		data, err := os.ReadFile(jpath)
		if err != nil {
			t.Fatalf("reading journal: %v", err)
		}
		atPost = &crashPoint{seq: sys.jrnl.seq, jdata: append([]byte(nil), data...), frames: cloneFrames(mirror)}
	}
	crashScript(t, sys)
	if atPost == nil {
		t.Fatal("post boundary of op 2 never fired")
	}
	// Tear the final (post) record's payload.
	path := filepath.Join(dir, "torn.journal")
	if err := os.WriteFile(path, atPost.jdata[:len(atPost.jdata)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	rec, rep, err := Recover(deviceFromFrames(t, atPost.frames), path)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Action != "rolled-back" {
		t.Errorf("action = %q, want rolled-back (post record torn away)", rep.Action)
	}
	if diffs := diffStates(captureState(rec), oracle[atPost.seq-1]); len(diffs) > 0 {
		t.Fatalf("recovered state diverges from pre-op twin: %s", diffs[0])
	}
}

// TestRecoverTypedErrors covers the refusal paths: empty journal, mid-file
// corruption, device-geometry mismatch, and a journal whose committed designs
// the device readback no longer shows.
func TestRecoverTypedErrors(t *testing.T) {
	dir := t.TempDir()
	jpath := filepath.Join(dir, "op.journal")
	sys, err := New(WithDevice(fabric.TestDevice), WithJournal(jpath))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Load(mkCounter("c1"), fabric.Rect{Row: 0, Col: 0, H: 2, W: 2}); err != nil {
		t.Fatal(err)
	}
	goodDev := deviceFromFrames(t, dumpFrames(sys.dev))

	t.Run("empty", func(t *testing.T) {
		empty := filepath.Join(dir, "empty.journal")
		if err := os.WriteFile(empty, nil, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, err := Recover(goodDev, empty); !errors.Is(err, journal.ErrEmpty) {
			t.Errorf("empty journal: %v, want ErrEmpty", err)
		}
	})
	t.Run("corrupt", func(t *testing.T) {
		data, err := os.ReadFile(jpath)
		if err != nil {
			t.Fatal(err)
		}
		data[len(journal.Magic)+10] ^= 0x01 // inside the init record's payload
		bad := filepath.Join(dir, "corrupt.journal")
		if err := os.WriteFile(bad, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, err := Recover(goodDev, bad); !errors.Is(err, journal.ErrChecksum) {
			t.Errorf("corrupt journal: %v, want ErrChecksum", err)
		}
	})
	t.Run("geometry-mismatch", func(t *testing.T) {
		wrong := fabric.NewDevice(fabric.XCV50)
		if _, _, err := Recover(wrong, jpath); !errors.Is(err, ErrDeviceMismatch) {
			t.Errorf("wrong device: %v, want ErrDeviceMismatch", err)
		}
	})
	t.Run("design-vanished", func(t *testing.T) {
		// Same geometry, but the fabric shows none of the journaled design's
		// cells (e.g. the device was power-cycled while the host was down).
		blank := fabric.NewDevice(fabric.TestDevice)
		if _, _, err := Recover(blank, jpath); !errors.Is(err, ErrDeviceMismatch) {
			t.Errorf("blank device: %v, want ErrDeviceMismatch", err)
		}
	})
	t.Run("journal-exists", func(t *testing.T) {
		if _, err := New(WithDevice(fabric.TestDevice), WithJournal(jpath)); !errors.Is(err, journal.ErrExists) {
			t.Errorf("New over history: %v, want ErrExists", err)
		}
	})
}
