package rlm

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/area"
	"repro/internal/bitstream"
	"repro/internal/fabric"
	"repro/internal/health"
)

// This file is the facade's transport fault-tolerance ladder. With a
// RetryPolicy armed, the ladder installs itself as the frame tool's Retry
// delegate: every transport fault of the batched pipeline surfaces at a
// Tool.AwaitStream — an operation's end-of-op harvest, the stage gate's
// serial drain, or the engine's disjointness fallback — and the delegate
// re-delivers the unharvested frames from the host shadow (the paper's
// complete configuration copy), escalating to per-frame readback-verify.
// Only when every attempt fails does the operation roll back — and the
// frames the final verify condemned are quarantined: masked out of the
// frame tool's delivery, their columns masked out of the area manager's
// logic space, and resident designs evacuated to healthy space.
//
// The write-through staging model makes the re-delivery set well-defined
// even though the port cannot say WHICH burst failed (its drain continues
// past errors and counts failed bursts completed): the shadow and device
// model take every write at stage time, so re-delivering the whole
// unharvested superset re-sends correct final content, and re-sending an
// already-delivered frame is a glitch-free identical rewrite.

// RetryPolicy bounds the fault-tolerance ladder WithRetryPolicy arms.
type RetryPolicy struct {
	// MaxRetries is the number of re-delivery attempts after a transport
	// fault before the operation is failed (and rolled back).
	MaxRetries int
	// Backoff is the wait before the first retry, doubling per attempt.
	// Zero retries immediately — what the deterministic tests use.
	Backoff time.Duration
	// VerifyAfter escalates re-delivery to per-frame readback-verify from
	// this attempt number on (1 verifies every retry; 0 defaults to 2, so
	// the first retry is a cheap blind re-send and persistent faults are
	// caught on the second).
	VerifyAfter int
}

// DefaultRetryPolicy is a sensible production ladder: three attempts, one
// millisecond initial backoff, readback-verify from the second attempt.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxRetries: 3, Backoff: time.Millisecond, VerifyAfter: 2}
}

// armRetryLadder installs the ladder as the frame tool's Retry delegate
// (newSystem calls it when WithRetryPolicy was given).
func (s *System) armRetryLadder() {
	if s.retry == nil || s.retry.MaxRetries <= 0 {
		return
	}
	s.engine.Tool.Retry = s.retryDeliveryLocked
}

// finishOpLocked is the success epilogue shared by every journaled facade
// operation: harvest the batched stream (the retry ladder fires inside the
// await when armed), then seal the commit. The caller rolls back and seals
// an abort when it returns an error.
func (s *System) finishOpLocked(cp *checkpoint) error {
	if err := s.engine.Tool.Flush(); err != nil {
		return err
	}
	if err := s.engine.Tool.AwaitStream(); err != nil {
		return err
	}
	return s.journalCommitLocked()
}

// finishLoadLocked is Load's epilogue. Without a journal and without a
// retry policy, Load keeps the two-stage commit pipeline: the burst goes on
// shifting out in the background after Load returns, and a stale transport
// error surfaces at the next operation's drain — safe under write-through
// staging, and the overlap is the pipeline's point. With either armed the
// op needs a harvest point of its own (the journal's commit barrier, or a
// fault boundary the ladder can own), so it finishes like every other.
func (s *System) finishLoadLocked(cp *checkpoint) error {
	if s.jrnl == nil && (s.retry == nil || s.retry.MaxRetries <= 0) {
		return nil
	}
	return s.finishOpLocked(cp)
}

// retryDeliveryLocked is the bounded re-delivery ladder, installed as the
// frame tool's Retry delegate: cause surfaced at an AwaitStream and addrs is
// the unharvested frame set. It runs under the operation's lock (every tool
// call path holds it). On success the operation proceeds as if the fault
// never happened (the retry traffic is compensated out of the foreground
// accounting). On exhaustion a final readback-verify condemns the frames
// that still fail, parks them in s.pendingBad for the failed operation's
// post-rollback quarantine sweep, and the returned error wraps
// ErrRetriesExhausted.
func (s *System) retryDeliveryLocked(cause error, addrs []fabric.FrameAddr) error {
	pol := *s.retry
	s.engine.Stats.FaultsDetected++
	s.publish(Event{Kind: FaultDetected, Err: cause})
	s.noteFaultEvidenceLocked(addrs)
	verifyFrom := pol.VerifyAfter
	if verifyFrom <= 0 {
		verifyFrom = 2
	}
	updates := s.redeliverySetLocked(addrs)
	backoff := pol.Backoff
	err := cause
	for attempt := 1; attempt <= pol.MaxRetries; attempt++ {
		if backoff > 0 {
			time.Sleep(backoff)
			backoff *= 2
		}
		s.crash("retry")
		s.engine.Stats.FaultRetries++
		err = s.compensatePort(&s.engine.Stats.RetrySeconds, func() error {
			return s.redeliver(updates, attempt >= verifyFrom)
		})
		if err == nil {
			s.publish(Event{Kind: RetrySucceeded, Steps: attempt})
			return nil
		}
	}
	s.engine.Stats.RetriesExhausted++
	var bad []fabric.FrameAddr
	_ = s.compensatePort(&s.engine.Stats.RetrySeconds, func() error {
		var verr error
		bad, verr = s.verifyFrames(updates)
		return verr
	})
	s.pendingBad = append(s.pendingBad, bad...)
	err = fmt.Errorf("%w after %d attempt(s): %v", ErrRetriesExhausted, pol.MaxRetries, err)
	s.publish(Event{Kind: RetriesExhausted, Steps: pol.MaxRetries, Err: err})
	return err
}

// noteFaultEvidenceLocked feeds a transport fault into the health tracker's
// per-column error rate, one observation per distinct column of the
// unharvested set. The only transition fault evidence can drive is
// healthy → suspect (advisory, no masking), so applying the changes here —
// inside an active operation — never touches the journal.
func (s *System) noteFaultEvidenceLocked(addrs []fabric.FrameAddr) {
	seen := make(map[int]bool)
	var changes []*health.Change
	for _, a := range addrs {
		if seen[a.Major] {
			continue
		}
		seen[a.Major] = true
		changes = append(changes, s.health.NoteFault(a.Major))
	}
	s.applyHealthChangesLocked(changes, true)
}

// redeliverySetLocked builds the sorted re-delivery set from the unharvested
// frames, minus quarantined memory, each with its current (golden) shadow
// content. Each update carries the tool's confirmed baseline as its delta
// Prev, so a compressed port re-ships exactly the runs the failed burst was
// carrying instead of whole frames.
func (s *System) redeliverySetLocked(unharvested []fabric.FrameAddr) []bitstream.FrameUpdate {
	addrs := append([]fabric.FrameAddr(nil), unharvested...)
	sort.Slice(addrs, func(i, j int) bool {
		if addrs[i].Major != addrs[j].Major {
			return addrs[i].Major < addrs[j].Major
		}
		return addrs[i].Minor < addrs[j].Minor
	})
	updates := make([]bitstream.FrameUpdate, 0, len(addrs))
	for _, a := range addrs {
		if s.quarantined[a] {
			continue
		}
		if data, ok := s.engine.Tool.Shadow().Frame(a); ok {
			u := bitstream.FrameUpdate{Addr: a, Data: data}
			if prev, ok := s.engine.Tool.ConfirmedBaseline(a); ok {
				u.Prev = prev
			}
			updates = append(updates, u)
		}
	}
	return updates
}

// redeliver re-sends the set synchronously (no background stream: the retry
// must know the outcome), readback-verifying each frame when asked. An empty
// set means the fault belonged to a burst whose frames all committed already
// — under write-through staging the device content is correct and there is
// nothing to re-send, so the retry trivially succeeds.
func (s *System) redeliver(updates []bitstream.FrameUpdate, verify bool) error {
	if len(updates) == 0 {
		return nil
	}
	if err := s.port.WriteUpdates(updates); err != nil {
		return err
	}
	if !verify {
		return nil
	}
	_, err := s.verifyFrames(updates)
	return err
}

// verifyFrames reads each frame back through the port and compares against
// the intended content, returning the frames that diverge (or fail to read).
func (s *System) verifyFrames(updates []bitstream.FrameUpdate) ([]fabric.FrameAddr, error) {
	var bad []fabric.FrameAddr
	for _, u := range updates {
		got, err := s.port.ReadFrame(u.Addr)
		if err != nil || !frameWordsEqual(got, u.Data) {
			bad = append(bad, u.Addr)
		}
	}
	if len(bad) > 0 {
		return bad, fmt.Errorf("rlm: %d frame(s) failed readback-verify", len(bad))
	}
	return nil, nil
}

// compensatePort runs fn and moves the transport time it consumed off the
// port's counters into acc: the fault layer's traffic is reported separately
// (Stats.RetrySeconds / Stats.ScrubSeconds) so the foreground accounting
// stays bit-identical to a fault-free twin's — the same convention Recover
// uses for its reconciliation traffic.
func (s *System) compensatePort(acc *float64, fn func() error) error {
	e0 := s.port.Elapsed()
	cp, hasCycles := s.port.(cyclePort)
	var c0 uint64
	if hasCycles {
		c0 = cp.Cycles()
	}
	tp, hasTraffic := s.port.(bitstream.CompressPort)
	var t0 bitstream.Traffic
	if hasTraffic {
		t0 = tp.Traffic()
	}
	err := fn()
	*acc += s.port.Elapsed() - e0
	if hasCycles {
		cp.RestoreCycles(c0)
	}
	if hasTraffic {
		// Maintenance re-deliveries and repairs are compensated out of the
		// write-traffic counters too, keeping Traffic bit-identical to a
		// fault-free twin's.
		tp.RestoreTraffic(t0)
	}
	return err
}

// quarantineSweepLocked consumes the verified-bad frames a failed operation
// left in s.pendingBad — after its rollback and abort seal, so the sweep's
// own journaled operations (evacuations) open on a sealed journal. No-op
// when nothing is pending.
func (s *System) quarantineSweepLocked() {
	bad := s.pendingBad
	s.pendingBad = nil
	if len(bad) == 0 {
		return
	}
	if s.quarantineFramesLocked(bad, true) {
		s.evacuateLocked()
		// The mask changed outside any journaled op (the failed op already
		// sealed its abort); seal the new mask so a crash cannot lose it.
		s.journalHealthLocked()
	}
}

// quarantineFramesLocked condemns the full configuration column of every
// given frame: a frame carries bits of every row of its column, so finer
// masking could still route live logic through the bad memory. The frame
// tool stops delivering to the frames, CLB columns are masked out of the
// area manager's logic space, and — when record is set — events are
// published and Stats counted. Recovery re-applies a journaled mask with
// record off (the journaled Stats already counted it). Returns whether any
// new frame was quarantined.
func (s *System) quarantineFramesLocked(bad []fabric.FrameAddr, record bool) bool {
	added := false
	for _, addr := range bad {
		if s.quarantined == nil {
			s.quarantined = make(map[fabric.FrameAddr]bool)
		}
		if s.quarantined[addr] {
			continue
		}
		col, ok := s.dev.ColumnByMajor(addr.Major)
		if !ok {
			continue
		}
		for minor := 0; minor < col.Frames; minor++ {
			fa := fabric.FrameAddr{Major: addr.Major, Minor: minor}
			if s.quarantined[fa] {
				continue
			}
			s.quarantined[fa] = true
			s.engine.Tool.QuarantineFrame(fa)
			if record {
				s.engine.Stats.FramesQuarantined++
			}
		}
		if col.Kind == fabric.ColCLB {
			s.area.Quarantine(fabric.Rect{Row: 0, Col: col.ArrayCol, H: s.dev.Rows, W: 1})
		}
		// Keep the health ledger in lockstep with the mask (the Change is
		// discarded: the masking side effects are exactly this code).
		s.health.Condemn(addr.Major)
		added = true
		if record {
			s.publish(Event{Kind: FrameQuarantined, Frame: addr})
			s.publish(Event{Kind: CapacityChanged, Capacity: s.capacityLocked()})
		}
	}
	return added
}

// evacuateLocked relocates every design whose region now overlaps
// quarantined logic space to healthy space, best-effort and in name order.
// Each evacuation is its own journaled operation; a fault during one engages
// the ladder like any other delivery, but a failed evacuation never sweeps
// again from its own error path (sweeps run only from top-level operation
// epilogues), so the quarantine cannot recurse. A design with no healthy
// placement stays where it is (its configuration is still host-coherent;
// only its physical substrate is suspect), which the caller's event stream
// makes observable.
func (s *System) evacuateLocked() {
	names := make([]string, 0, len(s.designs))
	for name := range s.designs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		d := s.designs[name]
		if !s.area.QuarantineOverlaps(d.Region) {
			continue
		}
		from := d.Region
		to, ok := s.area.FindPlacement(d.Region.H, d.Region.W, area.BestFit)
		if !ok {
			continue
		}
		if err := s.evacuateOneLocked(name, to); err == nil {
			s.engine.Stats.DesignsEvacuated++
			s.publish(Event{Kind: DesignEvacuated, Design: name, From: from, Region: to})
		}
	}
}

// evacuateOneLocked performs one evacuation move as a self-contained
// journaled operation.
func (s *System) evacuateOneLocked(name string, to fabric.Rect) error {
	snap, err := s.checkpointLocked()
	if err != nil {
		return err
	}
	defer s.releaseCheckpointLocked(snap)
	if err := s.journalBeginLocked(snap, "evacuate", name, to, ""); err != nil {
		return err
	}
	err = s.moveRaw(name, to)
	if err == nil {
		err = s.engine.Tool.Flush()
	}
	if err == nil {
		err = s.engine.Tool.AwaitStream()
	}
	if err == nil {
		err = s.journalCommitLocked()
	}
	if err != nil {
		s.restoreLocked(snap, err)
		s.journalAbortLocked()
		return err
	}
	return nil
}
