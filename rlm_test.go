package rlm

import (
	"testing"

	"repro/internal/fabric"
	"repro/internal/itc99"
	"repro/internal/netlist"
	"repro/internal/sim"
)

func newSys(t *testing.T) *System {
	t.Helper()
	s, err := New(WithDevice(fabric.XCV50), WithPort(SelectMAP))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestLoadRunUnload(t *testing.T) {
	s := newSys(t)
	nl, err := itc99.Get("b01")
	if err != nil {
		t.Fatal(err)
	}
	d, err := s.Load(nl, fabric.Rect{})
	if err != nil {
		t.Fatal(err)
	}
	ls, err := sim.NewLockStep(d)
	if err != nil {
		t.Fatal(err)
	}
	rng := uint64(5)
	for i := 0; i < 50; i++ {
		in := make([]bool, len(nl.Inputs()))
		for k := range in {
			rng = rng*6364136223846793005 + 1442695040888963407
			in[k] = rng>>40&1 == 1
		}
		if err := ls.Step(in); err != nil {
			t.Fatalf("cycle %d: %v", i, err)
		}
	}
	if got := s.Designs(); len(got) != 1 || got[0] != "b01" {
		t.Errorf("Designs() = %v", got)
	}
	if err := s.Unload("b01"); err != nil {
		t.Fatal(err)
	}
	// The device must be completely clean again.
	for row := 0; row < s.Device().Rows; row++ {
		for col := 0; col < s.Device().Cols; col++ {
			c := fabric.Coord{Row: row, Col: col}
			for cell := 0; cell < fabric.CellsPerCLB; cell++ {
				if s.Device().ReadCell(fabric.CellRef{Coord: c, Cell: cell}).InUse() {
					t.Fatalf("cell %v/%d still configured after unload", c, cell)
				}
			}
			for local := 0; local < fabric.NodeSlots; local++ {
				if fabric.IsLocalSink(local) && s.Device().PIPMask(c, local) != 0 {
					t.Fatalf("PIPs at %v/%d survive unload", c, local)
				}
			}
		}
	}
	if s.Area().FreeCLBs() != s.Device().Rows*s.Device().Cols {
		t.Error("area not fully freed")
	}
}

func TestLoadDuplicateRejected(t *testing.T) {
	s := newSys(t)
	nl, _ := itc99.Get("b02")
	if _, err := s.Load(nl, fabric.Rect{}); err != nil {
		t.Fatal(err)
	}
	nl2, _ := itc99.Get("b02")
	if _, err := s.Load(nl2, fabric.Rect{}); err == nil {
		t.Error("duplicate design accepted")
	}
}

func TestMoveDesignWhileRunning(t *testing.T) {
	s := newSys(t)
	nl := netlist.New("mover")
	a := nl.Input("a")
	b := nl.Input("b")
	x := nl.LUT("x", fabric.LUTXor2, a, b)
	ff := nl.FF("r", x, netlist.None, false)
	nl.Output("q", ff)
	d, err := s.Load(nl, fabric.Rect{Row: 2, Col: 2, H: 1, W: 1})
	if err != nil {
		t.Fatal(err)
	}
	ls, err := sim.NewLockStep(d)
	if err != nil {
		t.Fatal(err)
	}
	// Keep the design running during the move.
	rng := uint64(17)
	step := func(n int) error {
		for i := 0; i < n; i++ {
			rng = rng*6364136223846793005 + 1442695040888963407
			if err := ls.Step([]bool{rng>>40&1 == 1, rng>>41&1 == 1}); err != nil {
				return err
			}
		}
		return nil
	}
	if err := step(10); err != nil {
		t.Fatal(err)
	}
	s.Engine().Clock = func(cycles int) error { return step(cycles) }
	if err := s.Move("mover", fabric.Rect{Row: 9, Col: 9, H: 1, W: 1}); err != nil {
		t.Fatalf("move: %v", err)
	}
	if err := step(30); err != nil {
		t.Fatalf("post-move divergence: %v", err)
	}
	if err := ls.CheckState(); err != nil {
		t.Fatal(err)
	}
	if d.Region != (fabric.Rect{Row: 9, Col: 9, H: 1, W: 1}) {
		t.Errorf("region not updated: %v", d.Region)
	}
	// Old CLB free, area manager consistent.
	if s.Area().Occupied(fabric.Coord{Row: 2, Col: 2}) {
		t.Error("old region still booked")
	}
	if !s.Area().Occupied(fabric.Coord{Row: 9, Col: 9}) {
		t.Error("new region not booked")
	}
}

func TestMoveOverlappingRegions(t *testing.T) {
	// Staged move one column to the right: source and target overlap.
	s := newSys(t)
	nl := netlist.New("slider")
	a := nl.Input("a")
	l1 := nl.LUT("l1", fabric.LUTBuf, a)
	l2 := nl.LUT("l2", fabric.LUTInv, l1)
	nl.Output("y", l2)
	d, err := s.Load(nl, fabric.Rect{Row: 4, Col: 4, H: 1, W: 2})
	if err != nil {
		t.Fatal(err)
	}
	ls, err := sim.NewLockStep(d)
	if err != nil {
		t.Fatal(err)
	}
	rng := uint64(23)
	s.Engine().Clock = func(cycles int) error {
		for i := 0; i < cycles; i++ {
			rng = rng*6364136223846793005 + 1442695040888963407
			if err := ls.Step([]bool{rng>>40&1 == 1}); err != nil {
				return err
			}
		}
		return nil
	}
	if err := ls.Step([]bool{true}); err != nil {
		t.Fatal(err)
	}
	if err := s.Move("slider", fabric.Rect{Row: 4, Col: 5, H: 1, W: 2}); err != nil {
		t.Fatalf("overlapping move: %v", err)
	}
	for i := 0; i < 20; i++ {
		if err := ls.Step([]bool{i%2 == 0}); err != nil {
			t.Fatalf("post-move: %v", err)
		}
	}
}

func TestMoveRejectsShapeMismatch(t *testing.T) {
	s := newSys(t)
	nl, _ := itc99.Get("b02")
	if _, err := s.Load(nl, fabric.Rect{Row: 0, Col: 0, H: 4, W: 4}); err != nil {
		t.Fatal(err)
	}
	if err := s.Move("b02", fabric.Rect{Row: 8, Col: 8, H: 3, W: 4}); err == nil {
		t.Error("shape mismatch accepted")
	}
}

func TestTwoDesignsAndFragmentation(t *testing.T) {
	s := newSys(t)
	nlA, _ := itc99.Get("b01")
	nlB, _ := itc99.Get("b06")
	if _, err := s.Load(nlA, fabric.Rect{Row: 0, Col: 0, H: 4, W: 4}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Load(nlB, fabric.Rect{Row: 6, Col: 6, H: 4, W: 4}); err != nil {
		t.Fatal(err)
	}
	if f := s.Fragmentation(); f <= 0 {
		t.Errorf("two scattered designs but fragmentation = %f", f)
	}
	if len(s.Designs()) != 2 {
		t.Error("designs lost")
	}
}

func TestRecoveryAfterCorruption(t *testing.T) {
	s := newSys(t)
	nl, err := itc99.Get("b01")
	if err != nil {
		t.Fatal(err)
	}
	d, err := s.Load(nl, fabric.Rect{Row: 2, Col: 2, H: 4, W: 4})
	if err != nil {
		t.Fatal(err)
	}
	run := func(tag string) {
		t.Helper()
		ls, err := sim.NewLockStep(d)
		if err != nil {
			t.Fatal(err)
		}
		rng := uint64(55)
		for i := 0; i < 40; i++ {
			in := make([]bool, len(nl.Inputs()))
			for k := range in {
				rng = rng*6364136223846793005 + 1442695040888963407
				in[k] = rng>>40&1 == 1
			}
			if err := ls.Step(in); err != nil {
				t.Fatalf("%s: %v", tag, err)
			}
		}
	}
	run("before corruption")
	// A fault clobbers several configuration frames of the design's
	// columns (single-event upset, botched reconfiguration, ...).
	garbage := make([]uint32, s.Device().FrameWords())
	for i := range garbage {
		garbage[i] = 0xDEADBEEF
	}
	for col := 2; col < 6; col++ {
		major := s.Device().MajorOfArrayCol(col)
		for m := 0; m < 8; m++ {
			if err := s.Device().WriteFrame(major, m, garbage); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Recovery restores the shadowed configuration.
	if err := s.Recover(); err != nil {
		t.Fatalf("recover: %v", err)
	}
	run("after recovery")
}

func TestMoveStaged(t *testing.T) {
	s := newSys(t)
	nl := netlist.New("stager")
	a := nl.Input("a")
	l := nl.LUT("l", fabric.LUTInv, a)
	ff := nl.FF("r", l, netlist.None, true)
	nl.Output("q", ff)
	d, err := s.Load(nl, fabric.Rect{Row: 1, Col: 1, H: 1, W: 1})
	if err != nil {
		t.Fatal(err)
	}
	ls, err := sim.NewLockStep(d)
	if err != nil {
		t.Fatal(err)
	}
	rng := uint64(61)
	s.Engine().Clock = func(cycles int) error {
		for i := 0; i < cycles; i++ {
			rng = rng*6364136223846793005 + 1442695040888963407
			if err := ls.Step([]bool{rng>>40&1 == 1}); err != nil {
				return err
			}
		}
		return nil
	}
	if err := ls.Step([]bool{true}); err != nil {
		t.Fatal(err)
	}
	// Long diagonal move in 4-CLB hops.
	if err := s.MoveStaged("stager", fabric.Rect{Row: 14, Col: 20, H: 1, W: 1}, 4); err != nil {
		t.Fatalf("staged move: %v", err)
	}
	if d.Region != (fabric.Rect{Row: 14, Col: 20, H: 1, W: 1}) {
		t.Errorf("region = %v", d.Region)
	}
	for i := 0; i < 20; i++ {
		if err := ls.Step([]bool{i%3 == 0}); err != nil {
			t.Fatalf("post staged move: %v", err)
		}
	}
	if err := ls.CheckState(); err != nil {
		t.Fatal(err)
	}
	// More cells were relocated than a direct move would need (stages).
	if s.Stats().CellsRelocated < 3 {
		t.Errorf("staged move relocated only %d cells", s.Stats().CellsRelocated)
	}
}
