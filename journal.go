package rlm

import (
	"fmt"
	"hash/crc32"
	"sort"

	"repro/internal/bitstream"
	"repro/internal/fabric"
	"repro/internal/journal"
	"repro/internal/netlist"
)

// sysJournal is the facade's write-ahead journal state. Each mutating facade
// operation journals Begin (intent) right after its checkpoint arms, Undo
// records (frame pre-images from the checkpoint's copy-on-write snapshot)
// before every flush delivers frames through the port, Post (the complete
// host book-keeping plus dirty-frame digests) once the operation's stream
// has fully shifted out, and a Commit or Abort seal. Recovery (rlm.Recover)
// reconciles an unsealed tail against device readback.
type sysJournal struct {
	j      *journal.Journal
	seq    uint64
	active bool
	op     string
	cp     *checkpoint
	// seen dedups undo records per operation: one pre-image per frame, the
	// first one journaled (which is the checkpoint-epoch content — retries
	// inside one op re-dirty frames without changing their epoch image).
	seen map[fabric.FrameAddr]bool
	// path/rotate drive opt-in journal rotation (WithJournalRotation): after
	// a commit seal, a file past rotate bytes is compacted in place. path is
	// empty when the journal was attached without a known file path.
	path   string
	rotate int64
}

// sysBarrier adapts the System to the frame tool's flush-ordering barrier.
type sysBarrier struct{ s *System }

// PreDeliver journals the pre-image of every not-yet-covered frame of the
// delivery and forces the records to stable storage — the write-ahead
// contract: by the time the port can have changed the device, the journal
// can undo it.
func (b sysBarrier) PreDeliver(addrs []fabric.FrameAddr) error {
	s := b.s
	js := s.jrnl
	if js == nil || !js.active || s.restoring {
		return nil
	}
	wrote := false
	for _, addr := range addrs {
		if js.seen[addr] {
			continue
		}
		pre, ok := js.cp.snap.Preimage(addr)
		if !ok {
			// The frame did not change since the checkpoint epoch (an
			// identical rewrite); nothing to undo.
			continue
		}
		js.seen[addr] = true
		if err := js.j.Append(journal.RecUndo, journal.Undo{Seq: js.seq, Addr: addr, Words: pre}); err != nil {
			return err
		}
		wrote = true
	}
	if wrote {
		if err := js.j.Sync(); err != nil {
			return err
		}
		s.crash("undo")
	}
	return nil
}

// Delivered mirrors the delivered configuration out to the crash-torture
// hook (the harness maintains a "what the fabric holds" device from exactly
// these notifications).
func (b sysBarrier) Delivered(updates []bitstream.FrameUpdate) {
	s := b.s
	if s.onDelivered != nil {
		s.onDelivered(updates)
	}
	s.crash("delivered")
}

// crash invokes the crash-simulation hook (tests only; nil in production).
func (s *System) crash(stage string) {
	if s.crashHook != nil {
		s.crashHook(stage)
	}
}

// attachJournalLocked wires an open journal into the system: barrier on the
// frame tool, recovery notifications on.
func (s *System) attachJournal(j *journal.Journal, seq uint64) {
	s.jrnl = &sysJournal{j: j, seq: seq}
	s.engine.Tool.SetBarrier(sysBarrier{s})
}

// journalInit appends the opening record of a fresh journal.
func (s *System) journalInit(cfg *config) error {
	portKind := "jtag"
	switch {
	case cfg.portFactory != nil:
		portKind = "custom"
	case cfg.port == SelectMAP:
		portKind = "selectmap"
	}
	init := journal.Init{
		Preset:     s.dev.Name,
		Rows:       s.dev.Rows,
		Cols:       s.dev.Cols,
		Port:       portKind,
		ClockHz:    cfg.clockHz,
		AppClockHz: cfg.appClockHz,
		Serial:     cfg.serialCommit,
		Compress:   cfg.compress,
		PortWidth:  cfg.portWidth,
	}
	if err := s.jrnl.j.Append(journal.RecInit, init); err != nil {
		return err
	}
	return s.jrnl.j.Sync()
}

// journalBeginLocked opens one journaled operation over an armed checkpoint.
// Returns nil (no-op) on an unjournaled system. An error means the intent
// could not be made durable; the caller must fail the operation before any
// physical work.
func (s *System) journalBeginLocked(cp *checkpoint, op, design string, region fabric.Rect, detail string) error {
	js := s.jrnl
	if js == nil {
		return nil
	}
	js.seq++
	js.active = true
	js.op = op
	js.cp = cp
	js.seen = make(map[fabric.FrameAddr]bool)
	err := js.j.Append(journal.RecBegin, journal.Begin{
		Seq: js.seq, Op: op, Design: design, Region: region, Detail: detail,
	})
	if err == nil {
		err = js.j.Sync()
	}
	if err != nil {
		js.active = false
		return fmt.Errorf("rlm: journaling %s: %w", op, err)
	}
	s.crash("begin")
	return nil
}

// journalCommitLocked seals the active operation as committed: any straggler
// frames flush (their undo records journal through the barrier), the stream
// drains, then the full post-operation state and the dirty-frame digests
// land, then the commit seal. An error leaves the operation unsealed; the
// caller rolls back physically and seals with journalAbortLocked, keeping
// journal and fabric in agreement.
func (s *System) journalCommitLocked() error {
	js := s.jrnl
	if js == nil || !js.active {
		return nil
	}
	if err := s.engine.Tool.Flush(); err != nil {
		return err
	}
	if err := s.engine.Tool.AwaitStream(); err != nil {
		return err
	}
	state := s.journalStateLocked()
	state.Seq = js.seq
	dirty := js.cp.snap.Frames()
	digests := make([]journal.FrameDigest, 0, len(dirty))
	for _, addr := range dirty {
		if s.quarantined[addr] {
			// Condemned memory reads back garbage; a digest over it could
			// never match and would force recovery into a spurious roll-back.
			continue
		}
		data, ok := s.engine.Tool.Shadow().Frame(addr)
		if !ok {
			return fmt.Errorf("rlm: journal digest: frame %v missing from shadow", addr)
		}
		digests = append(digests, journal.FrameDigest{Addr: addr, CRC: crcFrame(data)})
	}
	err := js.j.Append(journal.RecPost, journal.Post{Seq: js.seq, State: state, Dirty: digests})
	if err == nil {
		err = js.j.Sync()
	}
	if err != nil {
		return fmt.Errorf("rlm: journaling post state: %w", err)
	}
	s.crash("post")
	err = js.j.Append(journal.RecCommit, journal.Seal{Seq: js.seq})
	if err == nil {
		err = js.j.Sync()
	}
	if err != nil {
		return fmt.Errorf("rlm: sealing commit: %w", err)
	}
	js.active = false
	js.cp = nil
	js.seen = nil
	s.crash("commit")
	s.maybeRotateLocked()
	return nil
}

// maybeRotateLocked compacts the journal file in place once it has grown
// past the opt-in rotation threshold. It runs only on a freshly sealed
// commit — never with an open tail, so the file Compact sees is sealed by
// construction. Best-effort: a failed compaction keeps appending to the
// original file; a failed reopen leaves the journal closed, so the next
// journaled operation fails with a typed error instead of losing records
// silently.
func (s *System) maybeRotateLocked() {
	js := s.jrnl
	if js == nil || js.rotate <= 0 || js.path == "" || js.j.Offset() < js.rotate {
		return
	}
	validLen := js.j.Offset()
	js.j.Close()
	if n, err := journal.Compact(js.path); err == nil {
		validLen = n
	}
	if j, err := journal.OpenAppend(js.path, validLen); err == nil {
		js.j = j
	}
}

// journalAbortLocked seals the active operation as rolled back (the physical
// rollback has already run). Best-effort: a failing abort append leaves the
// tail unsealed, which recovery resolves to the same roll-back outcome.
func (s *System) journalAbortLocked() {
	js := s.jrnl
	if js == nil || !js.active {
		return
	}
	if err := js.j.Append(journal.RecAbort, journal.Seal{Seq: js.seq}); err == nil {
		_ = js.j.Sync()
	}
	js.active = false
	js.cp = nil
	js.seen = nil
	s.crash("abort")
}

func crcFrame(words []uint32) uint32 {
	buf := make([]byte, 4*len(words))
	for i, w := range words {
		buf[4*i] = byte(w)
		buf[4*i+1] = byte(w >> 8)
		buf[4*i+2] = byte(w >> 16)
		buf[4*i+3] = byte(w >> 24)
	}
	return crc32.ChecksumIEEE(buf)
}

// cyclePort is the optional port capability journal recovery needs to make
// transport accounting crash-transparent.
type cyclePort interface {
	Cycles() uint64
	RestoreCycles(uint64)
}

// journalStateLocked serialises the complete host book-keeping.
func (s *System) journalStateLocked() journal.State {
	st := journal.State{
		Stats:    s.engine.Stats,
		LastTick: s.engine.LastTick(),
	}
	if cp, ok := s.port.(cyclePort); ok {
		st.PortCycles = cp.Cycles()
	}
	if tp, ok := s.port.(bitstream.CompressPort); ok {
		t := tp.Traffic()
		st.WordsShifted = t.WordsShifted
		st.FullWords = t.FullWords
		st.FramesDelivered = t.FramesDelivered
	}
	names := make([]string, 0, len(s.designs))
	for name := range s.designs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		d := s.designs[name]
		ds := journal.DesignState{
			Name:     name,
			Region:   d.Region,
			Alloc:    s.regions[name],
			Nodes:    append([]netlist.Node(nil), d.NL.Nodes...),
			CellOf:   d.CellOf,
			PadOf:    d.PadOf,
			SourceOf: d.SourceOf,
			Nets:     d.Nets,
		}
		st.Designs = append(st.Designs, ds)
	}
	for p := range s.pads {
		st.Pads = append(st.Pads, p)
	}
	sort.Slice(st.Pads, func(i, j int) bool {
		a, b := st.Pads[i], st.Pads[j]
		if a.Side != b.Side {
			return a.Side < b.Side
		}
		if a.Pos != b.Pos {
			return a.Pos < b.Pos
		}
		return a.K < b.K
	})
	st.Allocs = make([]journal.Alloc, 0)
	allocs, next := s.area.Export()
	for _, a := range allocs {
		st.Allocs = append(st.Allocs, journal.Alloc{ID: a.ID, Rect: a.Rect})
	}
	st.NextAlloc = next
	for addr := range s.quarantined {
		st.Quarantined = append(st.Quarantined, addr)
	}
	sort.Slice(st.Quarantined, func(i, j int) bool {
		a, b := st.Quarantined[i], st.Quarantined[j]
		if a.Major != b.Major {
			return a.Major < b.Major
		}
		return a.Minor < b.Minor
	})
	for _, c := range s.health.Columns() {
		st.Health = append(st.Health, journal.ColumnHealth{
			Major:       c.Major,
			State:       uint8(c.State),
			Rate:        c.Rate,
			CleanProbes: c.CleanProbes,
			CleanChecks: c.CleanChecks,
			Probes:      c.Probes,
			ProbeFails:  c.ProbeFails,
			Repairs:     c.Repairs,
		})
	}
	return st
}
