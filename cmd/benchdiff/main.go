// Command benchdiff turns `go test -bench` output into a stable JSON
// document and compares two such documents, failing on time regressions.
// The CI bench lane uses it to gate merges against BENCH_baseline.json:
//
//	go test -run '^$' -bench . -benchmem ./... | tee bench.txt
//	benchdiff parse bench.txt > BENCH_ci.json
//	benchdiff compare -baseline BENCH_baseline.json -current BENCH_ci.json
//
// compare exits non-zero when any benchmark present in both documents got
// slower (ns/op) by more than the -max-regress fraction. Benchmarks missing
// on either side are reported but never fail the gate, so adding or
// retiring a benchmark does not need a lockstep baseline update.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one benchmark result.
type Benchmark struct {
	Pkg         string             `json:"pkg"`
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BPerOp      float64            `json:"b_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Doc is the JSON document benchdiff reads and writes.
type Doc struct {
	Schema     int         `json:"schema"`
	GoVersion  string      `json:"go"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "parse":
		cmdParse(os.Args[2:])
	case "compare":
		cmdCompare(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  benchdiff parse <bench-output.txt>            # JSON to stdout
  benchdiff compare -baseline <a.json> -current <b.json>
                    [-max-regress 0.20] [-max-mem-regress 0.30]
                    [-ns-informational]`)
	os.Exit(2)
}

func cmdParse(args []string) {
	fs := flag.NewFlagSet("parse", flag.ExitOnError)
	_ = fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	doc, err := Parse(f)
	if err != nil {
		fatal(err)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fatal(err)
	}
}

// Parse reads `go test -bench` output from r.
func Parse(r io.Reader) (*Doc, error) {
	doc := &Doc{Schema: 1, GoVersion: runtime.Version()}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "pkg: ") {
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg: "))
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		b, ok := parseLine(pkg, line)
		if ok {
			doc.Benchmarks = append(doc.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.Slice(doc.Benchmarks, func(i, j int) bool {
		if doc.Benchmarks[i].Pkg != doc.Benchmarks[j].Pkg {
			return doc.Benchmarks[i].Pkg < doc.Benchmarks[j].Pkg
		}
		return doc.Benchmarks[i].Name < doc.Benchmarks[j].Name
	})
	return doc, nil
}

// parseLine handles one result line:
//
//	BenchmarkName-8   100   12345 ns/op   6.8 ms/CLB   678 B/op   9 allocs/op
func parseLine(pkg, line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	name := fields[0]
	// Strip the -GOMAXPROCS suffix so documents from different runners align.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Pkg: pkg, Name: name, Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BPerOp = v
		case "allocs/op":
			b.AllocsPerOp = v
		default:
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[unit] = v
		}
	}
	return b, b.NsPerOp > 0
}

func cmdCompare(args []string) {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	baseline := fs.String("baseline", "", "baseline JSON document")
	current := fs.String("current", "", "current JSON document")
	maxRegress := fs.Float64("max-regress", 0.20, "maximum allowed ns/op regression fraction")
	maxMemRegress := fs.Float64("max-mem-regress", 0.30, "maximum allowed B/op and allocs/op regression fraction (deterministic metrics; gated only above the noise floors)")
	nsInformational := fs.Bool("ns-informational", false,
		"report ns/op regressions without failing the gate — for shared CI runners, "+
			"where wall-clock is noisy but B/op and allocs/op are deterministic")
	_ = fs.Parse(args)
	if *baseline == "" || *current == "" {
		usage()
	}
	base, err := load(*baseline)
	if err != nil {
		fatal(err)
	}
	cur, err := load(*current)
	if err != nil {
		fatal(err)
	}
	baseBy := index(base)
	curBy := index(cur)
	// An empty or fully-disjoint current run means the benchmarks did not
	// actually execute (harness broken, wrong file) — that must not read
	// as "no regressions".
	if len(curBy) == 0 {
		fatal(fmt.Errorf("current document %s contains no benchmarks", *current))
	}
	if len(baseBy) > 0 {
		matched := 0
		for key := range baseBy {
			if _, ok := curBy[key]; ok {
				matched++
			}
		}
		if matched == 0 {
			fatal(fmt.Errorf("no benchmark of baseline %s appears in current %s — nothing was compared", *baseline, *current))
		}
	}

	gating, informational := compareDocs(baseBy, curBy, *maxRegress, *maxMemRegress, *nsInformational, os.Stdout)
	if len(informational) > 0 {
		fmt.Fprintf(os.Stderr, "\n%d ns/op regression(s) over %.0f%% (informational, shared-runner wall-clock is not gated):\n",
			len(informational), *maxRegress*100)
		for _, r := range informational {
			fmt.Fprintln(os.Stderr, "  "+r)
		}
	}
	if len(gating) > 0 {
		fmt.Fprintf(os.Stderr, "\n%d benchmark(s) regressed past the gate:\n", len(gating))
		for _, r := range gating {
			fmt.Fprintln(os.Stderr, "  "+r)
		}
		os.Exit(1)
	}
}

// compareDocs renders the comparison table to w and returns the regressions
// that gate the merge and, with nsInformational, the wall-clock regressions
// that are only reported. Memory metrics (B/op, allocs/op) are deterministic
// and always gate; ns/op gates only when nsInformational is false.
func compareDocs(baseBy, curBy map[string]Benchmark, maxRegress, maxMemRegress float64, nsInformational bool, w io.Writer) (gating, informational []string) {
	for _, key := range sortedKeys(baseBy) {
		b := baseBy[key]
		c, ok := curBy[key]
		if !ok {
			fmt.Fprintf(w, "gone     %-50s (in baseline only)\n", key)
			continue
		}
		ratio := c.NsPerOp / b.NsPerOp
		status := "ok      "
		if ratio > 1+maxRegress {
			msg := fmt.Sprintf("%s: %.0f -> %.0f ns/op (%+.1f%%)", key, b.NsPerOp, c.NsPerOp, (ratio-1)*100)
			if nsInformational {
				status = "SLOWER  "
				informational = append(informational, msg)
			} else {
				status = "REGRESS "
				gating = append(gating, msg)
			}
		} else if ratio < 1-maxRegress {
			status = "faster  "
		}
		// Memory metrics are deterministic, so they gate tightly too — but
		// only above a noise floor, where a fixed-overhead wiggle cannot
		// trip the fraction. The floor applies to either side: a benchmark
		// ballooning from a tiny baseline must still trip the gate.
		if memRegressed(b.BPerOp, c.BPerOp, 1024, maxMemRegress) {
			status = "REGRESS "
			gating = append(gating, fmt.Sprintf("%s: %.0f -> %.0f B/op", key, b.BPerOp, c.BPerOp))
		}
		if memRegressed(b.AllocsPerOp, c.AllocsPerOp, 100, maxMemRegress) {
			status = "REGRESS "
			gating = append(gating, fmt.Sprintf("%s: %.0f -> %.0f allocs/op", key, b.AllocsPerOp, c.AllocsPerOp))
		}
		fmt.Fprintf(w, "%s %-50s %12.0f -> %12.0f ns/op (%+.1f%%)\n",
			status, key, b.NsPerOp, c.NsPerOp, (ratio-1)*100)
		// Custom metrics (ms_per_clb, overlap_ratio, frames/move, ...) ride
		// along as informational columns: they carry through the comparison
		// so a PR's table shows how they moved, but they never gate — their
		// meaning (and whether bigger is better) is benchmark-specific.
		for _, name := range metricNames(b.Metrics, c.Metrics) {
			bv, bok := b.Metrics[name]
			cv, cok := c.Metrics[name]
			switch {
			case bok && cok:
				fmt.Fprintf(w, "metric   %-50s %12.4g -> %12.4g %s (informational)\n",
					key, bv, cv, name)
			case cok:
				fmt.Fprintf(w, "metric   %-50s %27.4g %s (new, informational)\n", key, cv, name)
			default:
				fmt.Fprintf(w, "metric   %-50s %s gone (was %.4g, informational)\n", key, name, bv)
			}
		}
	}
	for _, key := range sortedKeys(curBy) {
		if _, ok := baseBy[key]; !ok {
			fmt.Fprintf(w, "new      %-50s %12.0f ns/op\n", key, curBy[key].NsPerOp)
		}
	}
	return gating, informational
}

// memRegressed reports whether a deterministic memory metric regressed past
// the allowed fraction, ignoring values where both sides sit under the
// noise floor.
func memRegressed(baseline, current, floor, maxFraction float64) bool {
	if baseline < floor && current < floor {
		return false
	}
	if baseline <= 0 {
		return current >= floor
	}
	return current > baseline*(1+maxFraction)
}

func load(path string) (*Doc, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc Doc
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &doc, nil
}

func index(doc *Doc) map[string]Benchmark {
	out := make(map[string]Benchmark, len(doc.Benchmarks))
	for _, b := range doc.Benchmarks {
		out[b.Pkg+"."+b.Name] = b
	}
	return out
}

// metricNames returns the sorted union of two custom-metric maps.
func metricNames(a, b map[string]float64) []string {
	if len(a) == 0 && len(b) == 0 {
		return nil
	}
	seen := map[string]bool{}
	var names []string
	for k := range a {
		if !seen[k] {
			seen[k] = true
			names = append(names, k)
		}
	}
	for k := range b {
		if !seen[k] {
			seen[k] = true
			names = append(names, k)
		}
	}
	sort.Strings(names)
	return names
}

func sortedKeys(m map[string]Benchmark) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(1)
}
