package main

import (
	"io"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkFig7Defrag             	       3	 342258198 ns/op	41498688 B/op	  175270 allocs/op
BenchmarkTab226msRelocationTime-8 	       2	 931431967 ns/op	         6.889 ms/CLB	105803816 B/op	  404479 allocs/op
PASS
ok  	repro	9.192s
pkg: repro/internal/route
BenchmarkRoute-8   	    1000	     12345 ns/op
`

func TestParse(t *testing.T) {
	doc, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(doc.Benchmarks))
	}
	by := index(doc)
	fig7, ok := by["repro.BenchmarkFig7Defrag"]
	if !ok {
		t.Fatal("Fig7 missing")
	}
	if fig7.NsPerOp != 342258198 || fig7.BPerOp != 41498688 || fig7.AllocsPerOp != 175270 {
		t.Fatalf("Fig7 fields: %+v", fig7)
	}
	tab, ok := by["repro.BenchmarkTab226msRelocationTime"]
	if !ok {
		t.Fatal("Tab226 missing (GOMAXPROCS suffix not stripped?)")
	}
	if tab.Metrics["ms/CLB"] != 6.889 {
		t.Fatalf("Tab226 custom metric: %+v", tab.Metrics)
	}
	if _, ok := by["repro/internal/route.BenchmarkRoute"]; !ok {
		t.Fatal("per-package attribution lost")
	}
}

func TestParseLineRejectsGarbage(t *testing.T) {
	if _, ok := parseLine("p", "BenchmarkBroken 12"); ok {
		t.Fatal("accepted truncated line")
	}
	if _, ok := parseLine("p", "BenchmarkBroken x 1 ns/op"); ok {
		t.Fatal("accepted non-numeric iterations")
	}
}

func bench(ns, b, allocs float64) Benchmark {
	return Benchmark{Pkg: "p", Name: "B", Iterations: 1, NsPerOp: ns, BPerOp: b, AllocsPerOp: allocs}
}

func TestCompareDocsGatesMemoryTightly(t *testing.T) {
	base := map[string]Benchmark{"p.B": bench(1000, 100000, 1000)}
	// 15% B/op growth trips a 10% mem gate even though ns/op is flat.
	cur := map[string]Benchmark{"p.B": bench(1000, 115000, 1000)}
	gating, info := compareDocs(base, cur, 0.20, 0.10, true, io.Discard)
	if len(gating) != 1 || !strings.Contains(gating[0], "B/op") {
		t.Fatalf("B/op regression not gated: %v", gating)
	}
	if len(info) != 0 {
		t.Fatalf("unexpected informational findings: %v", info)
	}
}

func TestCompareDocsNsInformational(t *testing.T) {
	base := map[string]Benchmark{"p.B": bench(1000, 100000, 1000)}
	cur := map[string]Benchmark{"p.B": bench(2000, 100000, 1000)} // 2x slower, same memory
	gating, info := compareDocs(base, cur, 0.20, 0.10, true, io.Discard)
	if len(gating) != 0 {
		t.Fatalf("ns/op regression gated despite -ns-informational: %v", gating)
	}
	if len(info) != 1 || !strings.Contains(info[0], "ns/op") {
		t.Fatalf("ns/op regression not reported informationally: %v", info)
	}
	// Without the flag the same regression gates.
	gating, info = compareDocs(base, cur, 0.20, 0.10, false, io.Discard)
	if len(gating) != 1 || len(info) != 0 {
		t.Fatalf("ns/op regression should gate without the flag: gating %v, info %v", gating, info)
	}
}

func TestMemRegressedNoiseFloor(t *testing.T) {
	if memRegressed(50, 90, 100, 0.10) {
		t.Fatal("both sides under the floor must not gate")
	}
	if !memRegressed(50, 200, 100, 0.10) {
		t.Fatal("ballooning past the floor must gate")
	}
	if memRegressed(100000, 105000, 1024, 0.10) {
		t.Fatal("5% growth under a 10% gate must pass")
	}
	if !memRegressed(100000, 120000, 1024, 0.10) {
		t.Fatal("20% growth past a 10% gate must fail")
	}
}

func TestCompareDocsCarriesCustomMetrics(t *testing.T) {
	withMetrics := func(b Benchmark, m map[string]float64) Benchmark {
		b.Metrics = m
		return b
	}
	base := map[string]Benchmark{
		"p.B": withMetrics(bench(1000, 1000, 10), map[string]float64{"ms_per_clb": 9.4, "gone_metric": 1}),
	}
	// overlap_ratio is new, ms_per_clb moved 10x, gone_metric disappeared —
	// none of it may gate; all of it must appear in the rendered table.
	cur := map[string]Benchmark{
		"p.B": withMetrics(bench(1000, 1000, 10), map[string]float64{"ms_per_clb": 0.9, "overlap_ratio": 0.46}),
	}
	var out strings.Builder
	gating, info := compareDocs(base, cur, 0.20, 0.10, true, &out)
	if len(gating) != 0 || len(info) != 0 {
		t.Fatalf("custom metrics must not gate or warn: gating %v, info %v", gating, info)
	}
	text := out.String()
	for _, want := range []string{"ms_per_clb", "overlap_ratio", "gone_metric", "informational"} {
		if !strings.Contains(text, want) {
			t.Fatalf("comparison output missing %q:\n%s", want, text)
		}
	}
}

// TestTemplateCacheMetricsRideThrough pins the template-cache bench lane:
// BenchmarkLoadWarmVsCold reports tmpl_hit_rate and warm_ms_per_load as
// custom units, and both must survive parse and render through compare as
// informational columns — a warm-path slowdown shows up in the PR table
// without the wall-clock gate deciding whether a cache policy change is
// acceptable.
func TestTemplateCacheMetricsRideThrough(t *testing.T) {
	in := "pkg: repro\n" +
		"BenchmarkLoadWarmVsCold/cold-8 20 34495721 ns/op 34.45 cold_ms_per_load\n" +
		"BenchmarkLoadWarmVsCold/warm-8 20 2402152 ns/op 0.9524 tmpl_hit_rate 2.400 warm_ms_per_load\n"
	doc, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	by := index(doc)
	warm, ok := by["repro.BenchmarkLoadWarmVsCold/warm"]
	if !ok {
		t.Fatalf("warm lane missing: %v", sortedKeys(by))
	}
	if warm.Metrics["tmpl_hit_rate"] != 0.9524 || warm.Metrics["warm_ms_per_load"] != 2.4 {
		t.Fatalf("warm metrics mis-parsed: %v", warm.Metrics)
	}
	if cold := by["repro.BenchmarkLoadWarmVsCold/cold"]; cold.Metrics["cold_ms_per_load"] != 34.45 {
		t.Fatalf("cold metric mis-parsed: %v", cold.Metrics)
	}
	// A later run where the hit rate collapses and warm loads slow down: the
	// movement renders in the table, but only the ns/op gate may fail the run.
	cur := map[string]Benchmark{}
	for k, b := range by {
		c := b
		if k == "repro.BenchmarkLoadWarmVsCold/warm" {
			c.Metrics = map[string]float64{"tmpl_hit_rate": 0.10, "warm_ms_per_load": 30.1}
		}
		cur[k] = c
	}
	var out strings.Builder
	gating, info := compareDocs(by, cur, 0.20, 0.30, false, &out)
	if len(gating) != 0 || len(info) != 0 {
		t.Fatalf("metric movement must not gate: gating %v, info %v", gating, info)
	}
	text := out.String()
	for _, want := range []string{"tmpl_hit_rate", "warm_ms_per_load", "cold_ms_per_load", "informational"} {
		if !strings.Contains(text, want) {
			t.Fatalf("comparison output missing %q:\n%s", want, text)
		}
	}
}

func TestParseCustomMetricUnits(t *testing.T) {
	in := "pkg: repro\nBenchmarkTab226msRelocationTime-8 1 400000000 ns/op 6.86 ms/CLB 9.42 ms_per_clb 0.46 overlap_ratio\n"
	doc, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Benchmarks) != 1 {
		t.Fatalf("parsed %d benchmarks", len(doc.Benchmarks))
	}
	m := doc.Benchmarks[0].Metrics
	if m["ms_per_clb"] != 9.42 || m["overlap_ratio"] != 0.46 || m["ms/CLB"] != 6.86 {
		t.Fatalf("metrics mis-parsed: %v", m)
	}
}

// TestRecoverMetricsRideThrough pins the crash-recovery bench lane:
// BenchmarkRecoverFromJournal reports recover_ms and frames_checked as
// custom units, and both must survive parse and render through compare as
// informational columns — a recovery slowdown shows up in the PR table
// without gating the run.
func TestRecoverMetricsRideThrough(t *testing.T) {
	in := "pkg: repro\n" +
		"BenchmarkRecoverFromJournal-8 31 5018286 ns/op 33.00 frames_checked 5.018 recover_ms\n"
	doc, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	by := index(doc)
	rec, ok := by["repro.BenchmarkRecoverFromJournal"]
	if !ok {
		t.Fatalf("recover lane missing: %v", sortedKeys(by))
	}
	if rec.Metrics["recover_ms"] != 5.018 || rec.Metrics["frames_checked"] != 33 {
		t.Fatalf("recover metrics mis-parsed: %v", rec.Metrics)
	}
	// Recovery cost triples in a later run: the movement renders in the
	// table but must never gate — recover_ms is informational by design.
	cur := map[string]Benchmark{}
	for k, b := range by {
		c := b
		c.Metrics = map[string]float64{"recover_ms": 15.3, "frames_checked": 33}
		cur[k] = c
	}
	var out strings.Builder
	gating, info := compareDocs(by, cur, 0.20, 0.10, false, &out)
	if len(gating) != 0 || len(info) != 0 {
		t.Fatalf("recover_ms movement must not gate: gating %v, info %v", gating, info)
	}
	text := out.String()
	for _, want := range []string{"recover_ms", "frames_checked", "informational"} {
		if !strings.Contains(text, want) {
			t.Fatalf("comparison output missing %q:\n%s", want, text)
		}
	}
}

// TestBandwidthMetricsRideThrough pins the configuration-bandwidth bench
// lane: the per-transport sub-benchmarks report words_shifted,
// compression_ratio and tck_per_frame as custom units, and all three must
// survive parse and render through compare as informational columns — a
// compression-ratio collapse shows up in the PR table without gating the
// run.
func TestBandwidthMetricsRideThrough(t *testing.T) {
	in := "pkg: repro\n" +
		"BenchmarkFig7Defrag/BoundaryScan-8 5 143353881 ns/op 1.000 compression_ratio 978.2 tck_per_frame 56924 words_shifted\n" +
		"BenchmarkFig7Defrag/BoundaryScan-compressed-8 5 143261360 ns/op 5.450 compression_ratio 180.3 tck_per_frame 10445 words_shifted\n"
	doc, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	by := index(doc)
	comp, ok := by["repro.BenchmarkFig7Defrag/BoundaryScan-compressed"]
	if !ok {
		t.Fatalf("compressed lane missing: %v", sortedKeys(by))
	}
	if comp.Metrics["compression_ratio"] != 5.45 || comp.Metrics["words_shifted"] != 10445 ||
		comp.Metrics["tck_per_frame"] != 180.3 {
		t.Fatalf("compressed-lane metrics mis-parsed: %v", comp.Metrics)
	}
	if plain := by["repro.BenchmarkFig7Defrag/BoundaryScan"]; plain.Metrics["compression_ratio"] != 1 {
		t.Fatalf("plain-lane metrics mis-parsed: %v", plain.Metrics)
	}
	// The ratio collapses to 1 in a later run (the encoder regressed to
	// full-frame shipping): the movement renders but must never gate.
	cur := map[string]Benchmark{}
	for k, b := range by {
		c := b
		if k == "repro.BenchmarkFig7Defrag/BoundaryScan-compressed" {
			c.Metrics = map[string]float64{"compression_ratio": 1.0, "words_shifted": 56924, "tck_per_frame": 978.2}
		}
		cur[k] = c
	}
	var out strings.Builder
	gating, info := compareDocs(by, cur, 0.20, 0.10, false, &out)
	if len(gating) != 0 || len(info) != 0 {
		t.Fatalf("bandwidth metric movement must not gate: gating %v, info %v", gating, info)
	}
	text := out.String()
	for _, want := range []string{"words_shifted", "compression_ratio", "tck_per_frame", "informational"} {
		if !strings.Contains(text, want) {
			t.Fatalf("comparison output missing %q:\n%s", want, text)
		}
	}
}
