package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkFig7Defrag             	       3	 342258198 ns/op	41498688 B/op	  175270 allocs/op
BenchmarkTab226msRelocationTime-8 	       2	 931431967 ns/op	         6.889 ms/CLB	105803816 B/op	  404479 allocs/op
PASS
ok  	repro	9.192s
pkg: repro/internal/route
BenchmarkRoute-8   	    1000	     12345 ns/op
`

func TestParse(t *testing.T) {
	doc, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(doc.Benchmarks))
	}
	by := index(doc)
	fig7, ok := by["repro.BenchmarkFig7Defrag"]
	if !ok {
		t.Fatal("Fig7 missing")
	}
	if fig7.NsPerOp != 342258198 || fig7.BPerOp != 41498688 || fig7.AllocsPerOp != 175270 {
		t.Fatalf("Fig7 fields: %+v", fig7)
	}
	tab, ok := by["repro.BenchmarkTab226msRelocationTime"]
	if !ok {
		t.Fatal("Tab226 missing (GOMAXPROCS suffix not stripped?)")
	}
	if tab.Metrics["ms/CLB"] != 6.889 {
		t.Fatalf("Tab226 custom metric: %+v", tab.Metrics)
	}
	if _, ok := by["repro/internal/route.BenchmarkRoute"]; !ok {
		t.Fatal("per-package attribution lost")
	}
}

func TestParseLineRejectsGarbage(t *testing.T) {
	if _, ok := parseLine("p", "BenchmarkBroken 12"); ok {
		t.Fatal("accepted truncated line")
	}
	if _, ok := parseLine("p", "BenchmarkBroken x 1 ns/op"); ok {
		t.Fatal("accepted non-numeric iterations")
	}
}
