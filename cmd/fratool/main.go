// Command fratool is the "FPGA Rearrangement and Programming tool" of the
// paper's §4 as a CLI: it loads designs, generates the partial configuration
// files that implement relocations (from source/destination CLB coordinates,
// exactly as the paper describes), applies them through a simulated
// Boundary-Scan interface, and reports frame counts and reconfiguration
// times. A full shadow copy of the configuration is kept for recovery.
//
// Usage:
//
//	fratool -device XCV200 -design b03 -from R3C4 -to R10C12
//	fratool -device XCV50  -design b01 -move-region 8,8
//	fratool -device XCV50  -design b01 -move-region 8,8 -port selectmap -width 32 -compress
//	fratool -list-benchmarks
//
// The trace subcommand batch-ingests recorded schedsim task traces
// (see schedsim -record): it validates each input, prints a summary, and
// with -o merges them into one arrival-ordered trace for replay:
//
//	fratool trace night1.trace night2.trace
//	fratool trace -o merged.trace night1.trace night2.trace
//
// The journal subcommand maintains operation journals written by
// rlm.WithJournal: compact collapses a sealed journal's history into its
// Init record plus one state snapshot (refusing torn or unsealed files —
// those belong to rlm.Recover):
//
//	fratool journal compact ops.journal more.journal
//
// The health subcommand prints the per-column health ledger the journal's
// last committed state carries (the self-healing layer's column states,
// error rates and probe history), plus the quarantined frame mask:
//
//	fratool health ops.journal
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	rlm "repro"
	"repro/internal/fabric"
	"repro/internal/itc99"
	"repro/internal/journal"
	"repro/internal/jtag"
	"repro/internal/sim"
	"repro/internal/template"
	"repro/internal/workload"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "trace" {
		traceCmd(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "journal" {
		journalCmd(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "health" {
		healthCmd(os.Args[2:])
		return
	}
	var (
		deviceName = flag.String("device", "XCV200", "device preset: TEST12x8, XCV50, XCV200, XCV800")
		designName = flag.String("design", "", "ITC'99 benchmark to load (b01..b14)")
		fromCLB    = flag.String("from", "", "source CLB coordinate, e.g. R3C4")
		toCLB      = flag.String("to", "", "destination CLB coordinate, e.g. R10C12")
		moveRegion = flag.String("move-region", "", "move the whole design region to ROW,COL")
		planFile   = flag.String("plan", "", "placement-plan file: lines of 'RnCm -> RnCm' CLB moves")
		maxStep    = flag.Int("max-step", 0, "stage long moves into hops of at most this many CLBs (0 = direct)")
		tck        = flag.Float64("tck", jtag.DefaultTCKHz, "Boundary-Scan test clock frequency (Hz)")
		portName   = flag.String("port", "boundary-scan", "configuration port: boundary-scan | selectmap")
		portWidth  = flag.Int("width", 0, "SelectMAP data-port width in bits: 8, 16 or 32 (0 = 8; -port selectmap only)")
		compress   = flag.Bool("compress", false, "ship delta/MFWR-compressed configuration streams")
		verify     = flag.Bool("verify", true, "run the design in lock-step against its golden model during the relocation")
		tmpl       = flag.Bool("tmpl", false, "enable the pre-routed template cache: -move-region relocates by address translation when possible (requires -verify=false; translation resets design state)")
		list       = flag.Bool("list-benchmarks", false, "list available benchmark circuits")
		showMap    = flag.Bool("map", false, "print the occupancy map after the operation")
		progress   = flag.Bool("progress", true, "print the system's event stream while the tool works")
	)
	flag.Parse()

	if *list {
		for _, s := range itc99.Suite {
			fmt.Printf("%-4s %-34s in=%2d out=%2d ff=%3d lut=%4d style=%s\n",
				s.Name, s.Desc, s.Inputs, s.Outputs, s.FFs, s.LUTs, s.Style)
		}
		return
	}
	if *designName == "" {
		fmt.Fprintln(os.Stderr, "fratool: -design is required (see -list-benchmarks)")
		os.Exit(2)
	}

	preset, ok := fabric.PresetByName(*deviceName)
	if !ok {
		fail(fmt.Errorf("unknown device %q", *deviceName))
	}
	if *tmpl && *verify {
		fmt.Fprintln(os.Stderr, "fratool: -tmpl requires -verify=false (translation resets design state); template cache disabled")
		*tmpl = false
	}
	portKind := rlm.BoundaryScan
	switch *portName {
	case "boundary-scan":
	case "selectmap":
		portKind = rlm.SelectMAP
	default:
		fail(fmt.Errorf("unknown port %q (want boundary-scan or selectmap)", *portName))
	}
	opts := []rlm.Option{rlm.WithDevice(preset), rlm.WithPort(portKind), rlm.WithClock(*tck)}
	if *portWidth > 0 {
		opts = append(opts, rlm.WithPortWidth(*portWidth))
	}
	if *compress {
		opts = append(opts, rlm.WithCompression())
	}
	if *tmpl {
		opts = append(opts, rlm.WithTemplateCache(&template.Policy{}))
	}
	sys, err := rlm.New(opts...)
	fail(err)

	// Typed event stream: every load, CLB relocation and rearrangement the
	// system performs is reported as it happens.
	var evDone chan struct{}
	var evCancel func()
	if *progress {
		var ch <-chan rlm.Event
		ch, evCancel = sys.Subscribe(1024)
		evDone = make(chan struct{})
		go func() {
			defer close(evDone)
			for e := range ch {
				fmt.Println("  |", e)
			}
		}()
	}

	nl, err := itc99.Get(*designName)
	fail(err)
	design, err := sys.Load(nl, fabric.Rect{})
	fail(err)
	fmt.Printf("loaded %s into %v on %s (%d CLBs, %d nets)\n",
		design.Name, design.Region, preset.Name, design.Region.Area(), len(design.Nets))

	// Optional lock-step verification while the tool works.
	var ls *sim.LockStep
	rng := uint64(0xF00D)
	if *verify {
		ls, err = sim.NewLockStep(design)
		fail(err)
		step := func(n int) error {
			for i := 0; i < n; i++ {
				in := make([]bool, len(nl.Inputs()))
				for k := range in {
					rng = rng*6364136223846793005 + 1442695040888963407
					in[k] = rng>>40&1 == 1
				}
				if err := ls.Step(in); err != nil {
					return err
				}
			}
			return nil
		}
		fail(step(20))
		sys.Engine().Clock = step
	}

	switch {
	case *planFile != "":
		plan, err := readPlan(*planFile)
		fail(err)
		for _, mv := range plan {
			moves, err := sys.Engine().RelocateCLB(mv[0], mv[1])
			fail(err)
			for cell := 0; cell < fabric.CellsPerCLB; cell++ {
				design.Rebind(fabric.CellRef{Coord: mv[0], Cell: cell}, fabric.CellRef{Coord: mv[1], Cell: cell})
			}
			for _, m := range moves {
				fmt.Printf("plan: %v -> %v  frames=%d time=%.2f ms\n", m.From, m.To, m.Frames, m.Seconds*1e3)
			}
		}
	case *fromCLB != "" && *toCLB != "":
		from, err := parseCoord(*fromCLB)
		fail(err)
		to, err := parseCoord(*toCLB)
		fail(err)
		moves, err := sys.Engine().RelocateCLB(from, to)
		fail(err)
		for cell := 0; cell < fabric.CellsPerCLB; cell++ {
			design.Rebind(fabric.CellRef{Coord: from, Cell: cell}, fabric.CellRef{Coord: to, Cell: cell})
		}
		for _, mv := range moves {
			aux := "-"
			if mv.UsedAux {
				aux = mv.Aux.String()
			}
			fmt.Printf("relocated %v -> %v  frames=%-4d time=%6.2f ms  aux=%s  parallel-delay=%.2f ns\n",
				mv.From, mv.To, mv.Frames, mv.Seconds*1e3, aux, mv.MaxParallelDelayNs)
		}
	case *moveRegion != "":
		var row, col int
		if _, err := fmt.Sscanf(*moveRegion, "%d,%d", &row, &col); err != nil {
			fail(fmt.Errorf("bad -move-region %q: %v", *moveRegion, err))
		}
		to := design.Region
		to.Row, to.Col = row, col
		before := sys.Port().Elapsed()
		if *maxStep > 0 {
			fail(sys.MoveStaged(design.Name, to, *maxStep))
		} else {
			fail(sys.Move(design.Name, to))
		}
		fmt.Printf("moved %s to %v: %d cells, %.2f ms of %s traffic\n",
			design.Name, to, sys.Stats().CellsRelocated, (sys.Port().Elapsed()-before)*1e3, sys.Port().Name())
	default:
		fmt.Println("nothing to do: pass -from/-to or -move-region")
	}

	if *verify && ls != nil {
		fail(ls.CheckState())
		fmt.Println("lock-step verification: no output glitches, no state loss")
	}
	if evCancel != nil {
		evCancel()
		<-evDone
	}
	st := sys.Stats()
	fmt.Printf("totals: cells=%d aux-circuits=%d frames=%d port-time=%.2f ms (%s)\n",
		st.CellsRelocated, st.AuxCircuits, st.FramesWritten, st.PortSeconds*1e3, sys.Port().Name())
	tr := sys.Traffic()
	fmt.Printf("traffic: %d words shifted (%d uncompressed, %.2fx), %d frame deliveries\n",
		tr.WordsShifted, tr.FullWords, tr.CompressionRatio(), tr.FramesDelivered)
	if ts, ok := sys.TemplateStats(); ok {
		fmt.Printf("templates: %d stored, %d translated moves, %d fallbacks\n",
			ts.Stores, ts.Translations, ts.Fallbacks)
	}
	if *showMap {
		fmt.Print(sys.Map())
	}
}

// readPlan parses a placement-plan file: one "RnCm -> RnCm" move per line,
// '#' comments and blank lines ignored. This is the paper's "complete
// configuration file ... with a new placement" input path.
func readPlan(path string) ([][2]fabric.Coord, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var plan [][2]fabric.Coord
	for ln, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.Split(line, "->")
		if len(parts) != 2 {
			return nil, fmt.Errorf("plan line %d: want 'RnCm -> RnCm', got %q", ln+1, line)
		}
		from, err := parseCoord(strings.TrimSpace(parts[0]))
		if err != nil {
			return nil, fmt.Errorf("plan line %d: %v", ln+1, err)
		}
		to, err := parseCoord(strings.TrimSpace(parts[1]))
		if err != nil {
			return nil, fmt.Errorf("plan line %d: %v", ln+1, err)
		}
		plan = append(plan, [2]fabric.Coord{from, to})
	}
	return plan, nil
}

func parseCoord(s string) (fabric.Coord, error) {
	var c fabric.Coord
	if _, err := fmt.Sscanf(strings.ToUpper(s), "R%dC%d", &c.Row, &c.Col); err != nil {
		return c, fmt.Errorf("bad coordinate %q (want RnCm): %v", s, err)
	}
	return c, nil
}

// traceCmd is the batch-ingest path for recorded workload traces: validate
// and summarise every input, and with -o merge them (arrival-ordered,
// re-numbered) into a single trace schedsim -replay can consume. The merge
// semantics live in internal/workload (MergeTraces); this is only the CLI.
func traceCmd(args []string) {
	fs := flag.NewFlagSet("fratool trace", flag.ExitOnError)
	out := fs.String("o", "", "write the merged trace to this file (omit to only validate and summarise)")
	fs.Parse(args)
	if fs.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "fratool trace: no input traces (usage: fratool trace [-o merged.trace] FILE...)")
		os.Exit(2)
	}
	var traces []*workload.Trace
	for _, path := range fs.Args() {
		tr, err := workload.LoadTrace(path)
		fail(err)
		last := 0.0
		if n := len(tr.Tasks); n > 0 {
			last = tr.Tasks[n-1].Arrival
		}
		fmt.Printf("%-30s v%d %-12q %5d tasks over %8.1f s\n", path, tr.Version, tr.Label, len(tr.Tasks), last)
		traces = append(traces, tr)
	}
	if *out == "" {
		return
	}
	merged, err := workload.MergeTraces(traces...)
	fail(err)
	fail(workload.SaveTrace(*out, merged))
	fmt.Printf("merged %d traces -> %s (%d tasks)\n", len(traces), *out, len(merged.Tasks))
}

func journalCmd(args []string) {
	if len(args) == 0 || args[0] != "compact" {
		fmt.Fprintln(os.Stderr, "fratool journal: usage: fratool journal compact FILE...")
		os.Exit(2)
	}
	files := args[1:]
	if len(files) == 0 {
		fmt.Fprintln(os.Stderr, "fratool journal compact: no journal files given")
		os.Exit(2)
	}
	for _, path := range files {
		st, err := os.Stat(path)
		fail(err)
		before := st.Size()
		after, err := journal.Compact(path)
		fail(err)
		fmt.Printf("%-30s %8d -> %8d bytes (%.0f%%)\n",
			path, before, after, 100*float64(after)/float64(before))
	}
}

// healthCmd prints the health ledger of a journal's last committed state:
// one row per column that ever produced evidence, plus the quarantine mask
// summary. Works on live and compacted journals; an unsealed tail is
// reported but not reconciled (that is rlm.Recover's job).
func healthCmd(args []string) {
	if len(args) != 1 {
		fmt.Fprintln(os.Stderr, "fratool health: usage: fratool health JOURNAL")
		os.Exit(2)
	}
	log, err := journal.Scan(args[0])
	fail(err)
	rs, err := journal.Replay(log)
	fail(err)
	st := &rs.State
	fmt.Printf("%s: state seq %d, %d design(s), %d quarantined frame(s)\n",
		args[0], st.Seq, len(st.Designs), len(st.Quarantined))
	if rs.Tail != nil {
		fmt.Printf("  note: unsealed tail op %d (%s); the ledger below is the last committed state\n",
			rs.Tail.Begin.Seq, rs.Tail.Begin.Op)
	}
	if len(st.Health) == 0 {
		fmt.Println("  no health ledger: no column ever produced evidence")
		return
	}
	stateNames := []string{"healthy", "suspect", "quarantined", "probation"}
	fmt.Println("  column  state        rate    probes  fails  repairs  clean-probes  clean-checks")
	for _, h := range st.Health {
		name := fmt.Sprintf("state(%d)", h.State)
		if int(h.State) < len(stateNames) {
			name = stateNames[h.State]
		}
		fmt.Printf("  F%-5d  %-11s %6.4f  %6d  %5d  %7d  %12d  %12d\n",
			h.Major, name, h.Rate, h.Probes, h.ProbeFails, h.Repairs, h.CleanProbes, h.CleanChecks)
	}
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "fratool:", err)
		os.Exit(1)
	}
}
