package main

import (
	rlm "repro"
	"repro/internal/fabric"
)

// newFabricSpace builds a live System on the given device preset and wraps
// it as a sched.Space (see rlm.FabricSpace): every placed task is a real
// profile-shaped design sized to its allocated region, every rearrangement
// a physical relocation through the configuration port, with optional
// lock-step verification of all resident designs.
func newFabricSpace(preset fabric.Preset, verify bool) (*rlm.FabricSpace, error) {
	sys, err := rlm.New(rlm.WithDevice(preset), rlm.WithPort(rlm.BoundaryScan))
	if err != nil {
		return nil, err
	}
	return rlm.NewFabricSpace(sys, verify), nil
}
