package main

import (
	rlm "repro"
	"repro/internal/fabric"
	"repro/internal/template"
)

// newFabricSpace builds a live System on the given device preset and wraps
// it as a sched.Space (see rlm.FabricSpace): every placed task is a real
// profile-shaped design sized to its allocated region, every rearrangement
// a physical relocation through the configuration port, with optional
// lock-step verification of all resident designs. tmplCap > 0 enables the
// pre-routed template cache with that capacity; width > 0 switches to a
// wide SelectMAP port; compress ships delta/MFWR-encoded streams.
func newFabricSpace(preset fabric.Preset, verify bool, tmplCap, width int, compress bool) (*rlm.FabricSpace, error) {
	opts := []rlm.Option{rlm.WithDevice(preset), rlm.WithPort(rlm.BoundaryScan)}
	if width > 0 {
		opts = []rlm.Option{rlm.WithDevice(preset), rlm.WithPort(rlm.SelectMAP), rlm.WithPortWidth(width)}
	}
	if compress {
		opts = append(opts, rlm.WithCompression())
	}
	if tmplCap > 0 {
		opts = append(opts, rlm.WithTemplateCache(&template.Policy{Capacity: tmplCap}))
	}
	sys, err := rlm.New(opts...)
	if err != nil {
		return nil, err
	}
	return rlm.NewFabricSpace(sys, verify), nil
}
