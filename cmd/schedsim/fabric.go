package main

import (
	"fmt"

	rlm "repro"
	"repro/internal/area"
	"repro/internal/fabric"
	"repro/internal/itc99"
	"repro/internal/rearrange"
	"repro/internal/sim"
	"repro/internal/workload"
)

// fabricSpace backs the scheduler with a live rlm.System: every placed task
// is a real generated design loaded, routed and run on the simulated
// fabric, and every rearrangement physically relocates running designs
// through the configuration port. With verify set, all resident designs run
// in lock-step against their golden models for every application clock
// cycle that elapses during a relocation — the paper's transparency claim
// checked under the whole workload.
type fabricSpace struct {
	sys    *rlm.System
	group  *sim.Group
	verify bool
	seq    int
	names  map[int]string // allocation id -> design name
	rng    uint64
}

func newFabricSpace(preset fabric.Preset, verify bool) (*fabricSpace, error) {
	sys, err := rlm.New(rlm.WithDevice(preset), rlm.WithPort(rlm.BoundaryScan))
	if err != nil {
		return nil, err
	}
	f := &fabricSpace{sys: sys, verify: verify, names: map[int]string{}, rng: 0x5EED}
	if verify {
		f.group = sim.NewGroup(sys.Device())
		sys.Engine().Clock = f.step
	}
	return f, nil
}

func (f *fabricSpace) Manager() *area.Manager { return f.sys.Area() }

// Place loads a generated design sized for the task's footprint.
func (f *fabricSpace) Place(t workload.Task, rect fabric.Rect) (int, error) {
	f.seq++
	name := fmt.Sprintf("t%04d", f.seq)
	nl := itc99.Generate(itc99.GenConfig{
		Name: name, Inputs: 2, Outputs: 2,
		FFs: 4, LUTs: t.H + t.W,
		Seed: uint64(f.seq), Style: itc99.FreeRunning,
	})
	d, err := f.sys.Load(nl, rect)
	if err != nil {
		return 0, err
	}
	id, ok := f.sys.Allocation(name)
	if !ok {
		return 0, fmt.Errorf("schedsim: %s loaded but not allocated", name)
	}
	if f.verify {
		if _, err := f.group.Add(d); err != nil {
			_ = f.sys.Unload(name)
			return 0, err
		}
	}
	f.names[id] = name
	return id, nil
}

func (f *fabricSpace) Remove(id int) error {
	name, ok := f.names[id]
	if !ok {
		return fmt.Errorf("schedsim: unknown allocation %d", id)
	}
	// Unload first: if it fails and rolls back, the design is still
	// resident and must stay under lock-step verification.
	if err := f.sys.Unload(name); err != nil {
		return err
	}
	if f.verify {
		kept := f.group.Members[:0]
		for _, m := range f.group.Members {
			if m.Design.Name != name {
				kept = append(kept, m)
			}
		}
		f.group.Members = kept
	}
	delete(f.names, id)
	return nil
}

// Rearrange executes the planner's book-keeping moves for real: each step
// relocates a live design CLB by CLB while it runs.
func (f *fabricSpace) Rearrange(p *rearrange.Plan) error {
	for _, st := range p.Steps {
		name, ok := f.names[st.ID]
		if !ok {
			return fmt.Errorf("schedsim: allocation %d backs no design", st.ID)
		}
		if err := f.sys.Move(name, st.To); err != nil {
			return err
		}
	}
	return nil
}

// step advances every resident design one application clock cycle with
// fresh random inputs, checking each against its golden model.
func (f *fabricSpace) step(cycles int) error {
	for i := 0; i < cycles; i++ {
		inputs := make([][]bool, len(f.group.Members))
		for k, m := range f.group.Members {
			in := make([]bool, len(m.Design.NL.Inputs()))
			for j := range in {
				f.rng = f.rng*6364136223846793005 + 1442695040888963407
				in[j] = f.rng>>40&1 == 1
			}
			inputs[k] = in
		}
		if err := f.group.Step(inputs); err != nil {
			return err
		}
	}
	return nil
}
