// Command schedsim drives the run-time management experiments of the
// reproduction: the Fig. 1 temporal/spatial scheduling study and the
// defragmentation study (allocation rate and waiting time with and without
// on-line rearrangement).
//
// By default the defrag experiment runs against pure area book-keeping.
// With -fabric it drives a real rlm.System instead: every task is a live
// generated design loaded onto the simulated device, every rearrangement a
// physical relocation through the configuration port, with all resident
// designs verified in lock-step against their golden models throughout.
//
// The scenarios experiment runs the named scenario matrix (small / large /
// bimodal / gated-heavy / ram-heavy / corner-pressure): each scenario's
// task stream — with per-task design profiles and netlists sized to the
// allocated region — is executed on a live fabric AND on the pure
// book-keeping model, and the divergence between the two (physical
// placement failures, allocation and fragmentation gaps, relocation work)
// is reported per scenario.
//
// Usage:
//
//	schedsim -experiment fig1
//	schedsim -experiment defrag -rows 28 -cols 42 -tasks 500
//	schedsim -experiment defrag -fabric -device XCV50 -tasks 40 -events
//	schedsim -experiment scenarios -device XCV50 -tasks 30
//	schedsim -experiment scenarios -scenario ram-heavy -verify=false
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"

	rlm "repro"
	"repro/internal/area"
	"repro/internal/fabric"
	"repro/internal/rearrange"
	"repro/internal/sched"
	"repro/internal/workload"
)

func main() {
	var (
		experiment = flag.String("experiment", "defrag", "fig1 | defrag | policies | scenarios")
		rows       = flag.Int("rows", 28, "device rows (XCV200 = 28)")
		cols       = flag.Int("cols", 42, "device columns (XCV200 = 42)")
		tasks      = flag.Int("tasks", 0, "number of tasks (defrag; 0 = 400 book-keeping, 40 fabric)")
		seed       = flag.Uint64("seed", 1, "workload seed")
		load       = flag.Float64("load", 1.0, "arrival rate (tasks/s)")
		useFabric  = flag.Bool("fabric", false, "drive a real rlm.System instead of book-keeping (defrag)")
		deviceName = flag.String("device", "XCV50", "device preset for -fabric: TEST12x8, XCV50, XCV200, XCV800")
		verify     = flag.Bool("verify", true, "lock-step verify resident designs during relocations (-fabric)")
		events     = flag.Bool("events", false, "print the system's event stream (-fabric)")
		scenario   = flag.String("scenario", "", "run only the named scenario of the matrix (scenarios)")
		tmpl       = flag.Int("tmpl", 0, "template cache capacity: warm loads + relocation-by-translation (0 = off; -fabric/scenarios)")
		width      = flag.Int("width", 0, "use a wide SelectMAP port of this many data bits (8/16/32) instead of Boundary-Scan (0 = Boundary-Scan; -fabric/scenarios)")
		compress   = flag.Bool("compress", false, "ship delta/MFWR-compressed configuration streams (-fabric/scenarios)")
		pool       = flag.Int("pool", 0, "repeat-pool size: tasks draw shape+circuit from this many combos (0 = fresh draws)")
		record     = flag.String("record", "", "save the task stream to this trace file (defrag/policies)")
		replay     = flag.String("replay", "", "replay the task stream from this trace file instead of generating one (defrag/policies)")
	)
	flag.Parse()

	if *tmpl > 0 && *verify {
		// Translated relocations re-initialise storage elements (the replica
		// path transfers live state), so lock-step verification of resident
		// designs would flag every translated move as divergence.
		fmt.Fprintln(os.Stderr,
			"schedsim: -tmpl requires -verify=false (translation resets design state); template cache disabled")
		*tmpl = 0
	}

	switch *experiment {
	case "fig1":
		fig1(*rows, *cols, *seed)
	case "scenarios":
		if *tasks == 0 {
			*tasks = 30
		}
		preset, ok := fabric.PresetByName(*deviceName)
		if !ok {
			fmt.Fprintf(os.Stderr, "schedsim: unknown device %q\n", *deviceName)
			os.Exit(2)
		}
		scenarios(preset, *tasks, *seed, *load, *verify, *scenario, *tmpl, *width, *compress)
	case "defrag":
		if *tasks == 0 {
			*tasks = 400
			if *useFabric {
				*tasks = 40
			}
		}
		stream := resolveStream(*record, *replay, *tasks, *seed, *load, *pool)
		if *useFabric {
			preset, ok := fabric.PresetByName(*deviceName)
			if !ok {
				fmt.Fprintf(os.Stderr, "schedsim: unknown device %q\n", *deviceName)
				os.Exit(2)
			}
			defragFabric(preset, stream, *load, *verify, *events, *tmpl, *width, *compress)
		} else {
			defrag(*rows, *cols, stream, *load)
		}
	case "policies":
		if *tasks == 0 {
			*tasks = 400
		}
		policies(*rows, *cols, resolveStream(*record, *replay, *tasks, *seed, *load, *pool))
	default:
		fmt.Fprintf(os.Stderr, "schedsim: unknown experiment %q\n", *experiment)
		os.Exit(2)
	}
}

// fig1 reproduces the paper's Fig. 1 story: applications sharing the device
// in the temporal and spatial domains; swap-in-advance hides
// reconfiguration until parallelism exhausts the space.
func fig1(rows, cols int, seed uint64) {
	fmt.Println("Fig. 1 — temporal scheduling of applications (stall vs. parallelism)")
	fmt.Printf("%-6s %-12s %-12s %-12s %-12s %-10s\n",
		"apps", "stall(s)", "hidden", "stalled", "rearranged", "util")
	for _, planner := range []rearrange.Planner{rearrange.None{}, rearrange.LocalRepacking{}} {
		fmt.Printf("-- planner: %s\n", planner.Name())
		for apps := 1; apps <= 8; apps++ {
			w := workload.Flows(workload.FlowConfig{
				Seed: seed, Apps: apps, FnsPerApp: 6,
				MinSide: 4, MaxSide: 8, MeanDuration: 60,
			})
			m := sched.RunFlows(sched.FlowConfig{
				Rows: rows / 2, Cols: cols / 2, Policy: area.FirstFit,
				Planner: planner, PrefetchLead: 4,
			}, w)
			fmt.Printf("%-6d %-12.2f %-12d %-12d %-12d %-10.2f\n",
				apps, m.TotalStallSec, m.HiddenSwaps, m.StalledSwaps, m.RearrangedSwaps, m.MeanUtilisation)
		}
	}
}

func taskStreamConfig(tasks int, seed uint64, load float64, pool int) workload.Config {
	return workload.Config{
		Seed: seed, N: tasks,
		MeanInterarrival: 1.0 / load, MeanService: 6.0,
		MinSide: 3, MaxSide: 10, Dist: workload.Bimodal,
		RepeatPool: pool,
	}
}

// resolveStream produces the task stream for the defrag/policies experiments:
// generated from the CLI knobs, or replayed verbatim from a recorded trace
// (-replay, which then ignores -tasks/-seed/-pool), and optionally recorded
// to a trace file (-record) for later replay or batch ingest via
// "fratool trace".
func resolveStream(record, replay string, tasks int, seed uint64, load float64, pool int) []workload.Task {
	var stream []workload.Task
	var cfg *workload.Config
	if replay != "" {
		tr, err := workload.LoadTrace(replay)
		if err != nil {
			fmt.Fprintln(os.Stderr, "schedsim:", err)
			os.Exit(1)
		}
		stream, cfg = tr.Tasks, tr.Config
		fmt.Printf("replaying %d tasks from %s (%s)\n", len(stream), replay, tr.Label)
	} else {
		c := taskStreamConfig(tasks, seed, load, pool)
		stream, cfg = workload.Stream(c), &c
	}
	if record != "" {
		if err := workload.SaveTrace(record, workload.NewTrace("schedsim", cfg, stream)); err != nil {
			fmt.Fprintln(os.Stderr, "schedsim:", err)
			os.Exit(1)
		}
		fmt.Printf("recorded %d tasks to %s\n", len(stream), record)
	}
	return stream
}

func printMetricsHeader() {
	fmt.Printf("%-22s %-10s %-10s %-12s %-12s %-12s %-10s\n",
		"planner", "alloc", "immediate", "mean-wait", "frag(mean)", "frag(peak)", "moved-CLBs")
}

func printMetrics(planner rearrange.Planner, m sched.Metrics) {
	fmt.Printf("%-22s %-10.3f %-10.3f %-12.3f %-12.3f %-12.3f %-10d\n",
		planner.Name(), m.AllocationRate, m.ImmediateRate, m.MeanWaitSec,
		m.MeanFragmentation, m.PeakFragmentation, m.RelocatedCLBs)
}

// defrag reproduces the defragmentation study: allocation rate and waiting
// time for the same task stream with three rearrangement strategies.
func defrag(rows, cols int, stream []workload.Task, load float64) {
	fmt.Printf("Defragmentation study — %dx%d CLBs, %d tasks, load %.2f/s\n", rows, cols, len(stream), load)
	printMetricsHeader()
	for _, planner := range []rearrange.Planner{
		rearrange.None{}, rearrange.OrderedCompaction{}, rearrange.LocalRepacking{},
	} {
		s := sched.NewSimulator(sched.Config{
			Rows: rows, Cols: cols, Policy: area.FirstFit,
			Planner: planner, MaxWait: 20,
		})
		printMetrics(planner, s.Run(stream))
	}
}

// defragFabric runs the same schedule against a live System: real designs,
// real relocations, same Metrics schema.
func defragFabric(preset fabric.Preset, stream []workload.Task, load float64, verify, events bool, tmplCap, width int, compress bool) {
	fmt.Printf("Defragmentation study on live fabric — %s (%dx%d CLBs), %d tasks, load %.2f/s, verify=%v\n",
		preset.Name, preset.Rows, preset.Cols, len(stream), load, verify)
	printMetricsHeader()
	for _, planner := range []rearrange.Planner{
		rearrange.None{}, rearrange.LocalRepacking{},
	} {
		space, err := newFabricSpace(preset, verify, tmplCap, width, compress)
		if err != nil {
			fmt.Fprintln(os.Stderr, "schedsim:", err)
			os.Exit(1)
		}
		var wg sync.WaitGroup
		var cancel func()
		if events {
			var ch <-chan rlm.Event
			ch, cancel = space.System().Subscribe(1024)
			wg.Add(1)
			go func() {
				defer wg.Done()
				for e := range ch {
					fmt.Println("  event:", e)
				}
			}()
		}
		s := sched.NewSimulatorOn(sched.Config{
			Policy:  area.FirstFit,
			Planner: planner, MaxWait: 20,
		}, space)
		m := s.Run(stream)
		printMetrics(planner, m)
		st := space.System().Stats()
		fmt.Printf("  fabric: %d cells relocated, %d frames, %.1f ms of %s traffic, %d designs resident at end\n",
			st.CellsRelocated, st.FramesWritten, st.PortSeconds*1e3,
			space.System().Port().Name(), len(space.System().Designs()))
		printTraffic(space.System())
		printTemplateStats(space.System())
		if events {
			cancel()
			wg.Wait()
		}
	}
}

// scenarios runs the named scenario matrix: each scenario's profiled task
// stream is executed on a live fabric and on the pure book-keeping model,
// and the divergence between the two runs is reported per scenario.
func scenarios(preset fabric.Preset, tasks int, seed uint64, load float64, verify bool, only string, tmplCap, width int, compress bool) {
	matrix := sched.ScenarioMatrix(seed, tasks, load)
	if only != "" {
		sc, ok := sched.ScenarioByName(matrix, only)
		if !ok {
			fmt.Fprintf(os.Stderr, "schedsim: unknown scenario %q\n", only)
			os.Exit(2)
		}
		matrix = []sched.Scenario{sc}
	}
	fmt.Printf("Scenario-divergence study — %s (%dx%d CLBs), %d tasks/scenario, load %.2f/s, verify=%v\n",
		preset.Name, preset.Rows, preset.Cols, tasks, load, verify)
	fmt.Printf("%-16s %-11s %-11s %-9s %-9s %-10s %-10s %-10s\n",
		"scenario", "alloc-book", "alloc-fab", "rej-gap", "frag-gap", "phys-fail", "clb-gap", "reloc-s")
	for _, sc := range matrix {
		space, err := newFabricSpace(preset, verify, tmplCap, width, compress)
		if err != nil {
			fmt.Fprintln(os.Stderr, "schedsim:", err)
			os.Exit(1)
		}
		d := sched.RunScenario(sc, space)
		fmt.Printf("%-16s %-11.3f %-11.3f %-9.3f %-9.3f %-10d %-10d %-10.2f\n",
			d.Scenario, d.Book.AllocationRate, d.Fabric.AllocationRate,
			d.RejectionGap, d.FragmentationGap, d.PhysicalPlaceFailures,
			d.RelocatedCLBGap, d.Fabric.RearrangeSeconds)
		st := space.System().Stats()
		fmt.Printf("  fabric: %d cells relocated, %d frames, %.1f ms of %s traffic — %s\n",
			st.CellsRelocated, st.FramesWritten, st.PortSeconds*1e3,
			space.System().Port().Name(), sc.Desc)
		printTraffic(space.System())
		printTemplateStats(space.System())
	}
}

// printTraffic reports the configuration-bandwidth counters: stream words
// actually shipped against their uncompressed equivalent (the two are equal
// when compression is off).
func printTraffic(sys *rlm.System) {
	tr := sys.Traffic()
	fmt.Printf("  traffic: %d words shifted (%d uncompressed, %.2fx), %d frame deliveries\n",
		tr.WordsShifted, tr.FullWords, tr.CompressionRatio(), tr.FramesDelivered)
}

// printTemplateStats reports template-cache outcomes when the cache is on.
func printTemplateStats(sys *rlm.System) {
	st, ok := sys.TemplateStats()
	if !ok {
		return
	}
	fmt.Printf("  templates: %d hits / %d misses (%.0f%% warm), %d translated moves, %d fallbacks, %d evictions\n",
		st.Hits, st.Misses, 100*st.HitRate(), st.Translations, st.Fallbacks, st.Evictions)
}

// policies compares the allocation policies under one planner.
func policies(rows, cols int, stream []workload.Task) {
	fmt.Printf("Placement-policy study — %dx%d CLBs, %d tasks\n", rows, cols, len(stream))
	fmt.Printf("%-14s %-10s %-12s %-12s\n", "policy", "alloc", "mean-wait", "frag(mean)")
	for _, p := range []area.Policy{area.FirstFit, area.BestFit, area.BottomLeft} {
		s := sched.NewSimulator(sched.Config{
			Rows: rows, Cols: cols, Policy: p,
			Planner: rearrange.LocalRepacking{}, MaxWait: 20,
		})
		m := s.Run(stream)
		fmt.Printf("%-14s %-10.3f %-12.3f %-12.3f\n", p, m.AllocationRate, m.MeanWaitSec, m.MeanFragmentation)
	}
}
