// Command schedsim drives the run-time management experiments of the
// reproduction: the Fig. 1 temporal/spatial scheduling study and the
// defragmentation study (allocation rate and waiting time with and without
// on-line rearrangement).
//
// Usage:
//
//	schedsim -experiment fig1
//	schedsim -experiment defrag -rows 28 -cols 42 -tasks 500
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/area"
	"repro/internal/rearrange"
	"repro/internal/sched"
	"repro/internal/workload"
)

func main() {
	var (
		experiment = flag.String("experiment", "defrag", "fig1 | defrag | policies")
		rows       = flag.Int("rows", 28, "device rows (XCV200 = 28)")
		cols       = flag.Int("cols", 42, "device columns (XCV200 = 42)")
		tasks      = flag.Int("tasks", 400, "number of tasks (defrag)")
		seed       = flag.Uint64("seed", 1, "workload seed")
		load       = flag.Float64("load", 1.0, "arrival rate (tasks/s)")
	)
	flag.Parse()

	switch *experiment {
	case "fig1":
		fig1(*rows, *cols, *seed)
	case "defrag":
		defrag(*rows, *cols, *tasks, *seed, *load)
	case "policies":
		policies(*rows, *cols, *tasks, *seed, *load)
	default:
		fmt.Fprintf(os.Stderr, "schedsim: unknown experiment %q\n", *experiment)
		os.Exit(2)
	}
}

// fig1 reproduces the paper's Fig. 1 story: applications sharing the device
// in the temporal and spatial domains; swap-in-advance hides
// reconfiguration until parallelism exhausts the space.
func fig1(rows, cols int, seed uint64) {
	fmt.Println("Fig. 1 — temporal scheduling of applications (stall vs. parallelism)")
	fmt.Printf("%-6s %-12s %-12s %-12s %-12s %-10s\n",
		"apps", "stall(s)", "hidden", "stalled", "rearranged", "util")
	for _, planner := range []rearrange.Planner{rearrange.None{}, rearrange.LocalRepacking{}} {
		fmt.Printf("-- planner: %s\n", planner.Name())
		for apps := 1; apps <= 8; apps++ {
			w := workload.Flows(workload.FlowConfig{
				Seed: seed, Apps: apps, FnsPerApp: 6,
				MinSide: 4, MaxSide: 8, MeanDuration: 60,
			})
			m := sched.RunFlows(sched.FlowConfig{
				Rows: rows / 2, Cols: cols / 2, Policy: area.FirstFit,
				Planner: planner, PrefetchLead: 4,
			}, w)
			fmt.Printf("%-6d %-12.2f %-12d %-12d %-12d %-10.2f\n",
				apps, m.TotalStallSec, m.HiddenSwaps, m.StalledSwaps, m.RearrangedSwaps, m.MeanUtilisation)
		}
	}
}

// defrag reproduces the defragmentation study: allocation rate and waiting
// time for the same task stream with three rearrangement strategies.
func defrag(rows, cols, tasks int, seed uint64, load float64) {
	stream := workload.Stream(workload.Config{
		Seed: seed, N: tasks,
		MeanInterarrival: 1.0 / load, MeanService: 6.0,
		MinSide: 3, MaxSide: 10, Dist: workload.Bimodal,
	})
	fmt.Printf("Defragmentation study — %dx%d CLBs, %d tasks, load %.2f/s\n", rows, cols, tasks, load)
	fmt.Printf("%-22s %-10s %-10s %-12s %-12s %-12s %-10s\n",
		"planner", "alloc", "immediate", "mean-wait", "frag(mean)", "frag(peak)", "moved-CLBs")
	for _, planner := range []rearrange.Planner{
		rearrange.None{}, rearrange.OrderedCompaction{}, rearrange.LocalRepacking{},
	} {
		s := sched.NewSimulator(sched.Config{
			Rows: rows, Cols: cols, Policy: area.FirstFit,
			Planner: planner, MaxWait: 20,
		})
		m := s.Run(stream)
		fmt.Printf("%-22s %-10.3f %-10.3f %-12.3f %-12.3f %-12.3f %-10d\n",
			planner.Name(), m.AllocationRate, m.ImmediateRate, m.MeanWaitSec,
			m.MeanFragmentation, m.PeakFragmentation, m.RelocatedCLBs)
	}
}

// policies compares the allocation policies under one planner.
func policies(rows, cols, tasks int, seed uint64, load float64) {
	stream := workload.Stream(workload.Config{
		Seed: seed, N: tasks,
		MeanInterarrival: 1.0 / load, MeanService: 6.0,
		MinSide: 3, MaxSide: 10, Dist: workload.Bimodal,
	})
	fmt.Printf("Placement-policy study — %dx%d CLBs, %d tasks\n", rows, cols, tasks)
	fmt.Printf("%-14s %-10s %-12s %-12s\n", "policy", "alloc", "mean-wait", "frag(mean)")
	for _, p := range []area.Policy{area.FirstFit, area.BestFit, area.BottomLeft} {
		s := sched.NewSimulator(sched.Config{
			Rows: rows, Cols: cols, Policy: p,
			Planner: rearrange.LocalRepacking{}, MaxWait: 20,
		})
		m := s.Run(stream)
		fmt.Printf("%-14s %-10.3f %-12.3f %-12.3f\n", p, m.AllocationRate, m.MeanWaitSec, m.MeanFragmentation)
	}
}
