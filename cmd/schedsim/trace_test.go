package main

import (
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/area"
	"repro/internal/rearrange"
	"repro/internal/sched"
	"repro/internal/workload"
)

// TestReplayDeterminism is the acceptance property for -record/-replay: a
// recorded trace, replayed through the simulator, produces metrics identical
// to the run that recorded it.
func TestReplayDeterminism(t *testing.T) {
	cfg := taskStreamConfig(120, 7, 1.0, 0)
	stream := workload.Stream(cfg)
	path := filepath.Join(t.TempDir(), "defrag.trace")
	if err := workload.SaveTrace(path, workload.NewTrace("schedsim", &cfg, stream)); err != nil {
		t.Fatal(err)
	}
	tr, err := workload.LoadTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr.Tasks, stream) {
		t.Fatal("trace round trip altered the task stream")
	}
	run := func(tasks []workload.Task) sched.Metrics {
		s := sched.NewSimulator(sched.Config{
			Rows: 28, Cols: 42, Policy: area.FirstFit,
			Planner: rearrange.LocalRepacking{}, MaxWait: 20,
		})
		return s.Run(tasks)
	}
	live, replayed := run(stream), run(tr.Tasks)
	if live != replayed {
		t.Fatalf("replayed metrics diverge:\n live    %+v\n replay  %+v", live, replayed)
	}
}

// TestResolveStreamRecordReplay drives the CLI plumbing end to end: -record
// writes a trace that -replay then returns verbatim, ignoring the generator
// knobs.
func TestResolveStreamRecordReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "stream.trace")
	recorded := resolveStream(path, "", 50, 3, 2.0, 0)
	if len(recorded) != 50 {
		t.Fatalf("recorded %d tasks, want 50", len(recorded))
	}
	// Different knobs on replay must not matter: the trace wins.
	replayed := resolveStream("", path, 9999, 42, 0.1, 5)
	if !reflect.DeepEqual(replayed, recorded) {
		t.Fatal("replayed stream differs from the recorded one")
	}
}
