package main

import (
	"testing"

	"repro/internal/area"
	"repro/internal/fabric"
	"repro/internal/rearrange"
	"repro/internal/sched"
	"repro/internal/workload"
)

// TestFabricSpaceWorkload runs a small event-driven schedule against a live
// System: real designs loaded/unloaded/relocated, lock-step verified, and
// the same Metrics schema as the book-keeping mode.
func TestFabricSpaceWorkload(t *testing.T) {
	space, err := newFabricSpace(fabric.XCV50, true, 0, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	stream := workload.Stream(workload.Config{
		Seed: 1, N: 12,
		MeanInterarrival: 1.0, MeanService: 6.0,
		MinSide: 3, MaxSide: 10, Dist: workload.Bimodal,
	})
	s := sched.NewSimulatorOn(sched.Config{
		Policy:  area.FirstFit,
		Planner: rearrange.LocalRepacking{}, MaxWait: 20,
	}, space)
	m := s.Run(stream)
	if m.Submitted != 12 {
		t.Errorf("submitted = %d", m.Submitted)
	}
	placed := m.Placed + m.PlacedAfterRearrange + m.PlacedAfterWait
	if placed == 0 {
		t.Fatal("no task was ever placed on the fabric")
	}
	if placed+m.Rejected != m.Submitted {
		t.Errorf("accounting: placed %d + rejected %d != submitted %d",
			placed, m.Rejected, m.Submitted)
	}
	// All departures happened: the device is clean again.
	if got := len(space.System().Designs()); got != 0 {
		t.Errorf("%d designs still resident", got)
	}
	if free := space.System().Area().FreeCLBs(); free != 16*24 {
		t.Errorf("area not fully freed: %d", free)
	}
	// Real frames were streamed for the loads.
	if space.System().Stats().FramesWritten == 0 && space.System().Port().Elapsed() == 0 {
		t.Error("no configuration traffic reached the fabric")
	}
}

// TestFabricSpaceTemplateCache runs a repeat-heavy stream with the template
// cache enabled (verification off: translation resets design state) and
// checks the cache actually serves warm loads.
func TestFabricSpaceTemplateCache(t *testing.T) {
	space, err := newFabricSpace(fabric.XCV50, false, 16, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	stream := workload.Stream(workload.Config{
		Seed: 4, N: 16,
		MeanInterarrival: 1.0, MeanService: 6.0,
		MinSide: 3, MaxSide: 6, RepeatPool: 3,
	})
	s := sched.NewSimulatorOn(sched.Config{
		Policy:  area.FirstFit,
		Planner: rearrange.LocalRepacking{}, MaxWait: 20,
	}, space)
	m := s.Run(stream)
	if m.Placed+m.PlacedAfterRearrange+m.PlacedAfterWait == 0 {
		t.Fatal("no task was ever placed on the fabric")
	}
	st, ok := space.System().TemplateStats()
	if !ok {
		t.Fatal("template cache not enabled")
	}
	if st.Hits == 0 {
		t.Errorf("repeat pool of 3 over 16 tasks produced no warm load: %+v", st)
	}
	if got := len(space.System().Designs()); got != 0 {
		t.Errorf("%d designs still resident", got)
	}
}
