package rlm

import (
	"fmt"

	"repro/internal/area"
	"repro/internal/fabric"
	"repro/internal/rearrange"
)

// DefragPolicy parameterises an on-line defragmentation pass.
type DefragPolicy struct {
	// Planner proposes the rearrangement when a target region is
	// requested (NeedH/NeedW set); nil defaults to local repacking
	// (Diessel's method, the paper's reference [5]).
	Planner rearrange.Planner
	// NeedH/NeedW ask for a specific free H x W region. Both zero means
	// full compaction: every design slides west/north as far as it can,
	// consolidating all free space.
	NeedH, NeedW int
	// MaxStep, when positive, bounds each design's per-stage displacement
	// to MaxStep CLBs (Chebyshev), hopping through free intermediate
	// regions where possible (the paper's staged relocation). Steps whose
	// corridor is blocked fall back to a direct move.
	MaxStep int
}

// DesignMove records one design relocation performed by Defragment.
type DesignMove struct {
	Design   string
	From, To fabric.Rect
}

// DefragReport summarises a defragmentation pass.
type DefragReport struct {
	// Moves are the design relocations, in execution order.
	Moves []DesignMove
	// Freed is the contiguous region opened (the request for Need mode,
	// the largest free rectangle for full compaction).
	Freed fabric.Rect
	// CLBsMoved is the total booked CLB area relocated (the paper's
	// relocation cost unit); CellsRelocated counts the live logic cells
	// the engine actually streamed.
	CLBsMoved      int
	CellsRelocated int
	// FragBefore/FragAfter are the fragmentation measures around the pass.
	FragBefore, FragAfter float64
	// Attempts counts the candidate plans tried (rolled-back physical
	// failures included) before one succeeded.
	Attempts int
}

// Defragment consolidates free logic space by relocating live designs —
// while they keep running — according to the policy. This is the paper's
// closed loop: the rearrangement planner's book-keeping moves are executed
// for real by the relocation engine through the configuration port,
// transparently to the running functions.
//
// With Need set the pass is transactional: candidate plans are tried in
// order, each executed all-or-nothing (a physical mid-plan failure rolls
// the device and book-keeping back to the pre-pass checkpoint before the
// next candidate is tried); ErrNoSpace (wrapped) is returned when no plan
// frees the requested region. Without Need the pass is a best-effort full
// compaction: every design slides west/north as far as the space and the
// live routing allow, a slide that fails physically is rolled back on its
// own and skipped. A pass that needs no moves returns an empty report and
// touches nothing.
func (s *System) Defragment(pol DefragPolicy) (*DefragReport, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if pol.Planner == nil {
		pol.Planner = rearrange.LocalRepacking{}
	}
	if pol.NeedH > 0 && pol.NeedW > 0 {
		return s.defragNeedLocked(pol)
	}
	return s.defragCompactLocked(pol)
}

// defragNeedLocked frees a requested region transactionally, retrying
// alternative plans. A plan that is sound in the book-keeping can still
// fail physically (routing congestion at the chosen targets), so planners
// that can propose alternatives are asked for all of them.
func (s *System) defragNeedLocked(pol DefragPolicy) (*DefragReport, error) {
	rep := &DefragReport{FragBefore: s.area.Fragmentation()}
	var candidates []*rearrange.Plan
	if mp, ok := pol.Planner.(multiPlanner); ok {
		candidates = mp.Plans(s.area, pol.NeedH, pol.NeedW)
	} else if pl, ok := pol.Planner.Plan(s.area, pol.NeedH, pol.NeedW); ok {
		candidates = []*rearrange.Plan{pl}
	}
	if len(candidates) == 0 {
		return nil, fmt.Errorf("%w: planner %s frees no %dx%d region",
			ErrNoSpace, pol.Planner.Name(), pol.NeedH, pol.NeedW)
	}
	if len(candidates[0].Steps) == 0 {
		// The request already fits; nothing to move.
		rep.Freed = candidates[0].Target
		rep.FragAfter = rep.FragBefore
		return rep, nil
	}
	byID := s.namesByAllocationLocked()
	snap, err := s.checkpointLocked()
	if err != nil {
		return nil, err
	}
	defer s.releaseCheckpointLocked(snap)
	// One journal op spans every candidate: a rolled-back candidate's undo
	// records stay valid (its rollback restores the checkpoint state the
	// pre-images were taken against), so a crash anywhere in the retry loop
	// rolls back to the pre-pass configuration.
	if err := s.journalBeginLocked(snap, "defrag-need", "", fabric.Rect{H: pol.NeedH, W: pol.NeedW},
		fmt.Sprintf("planner=%s", pol.Planner.Name())); err != nil {
		return nil, err
	}
	var lastErr error
	for _, plan := range candidates {
		rep.Attempts++
		s.publish(Event{Kind: RearrangeStarted, Steps: len(plan.Steps)})
		cells0 := s.engine.Stats.CellsRelocated
		rep.Moves = rep.Moves[:0]
		rep.CLBsMoved = 0
		err := s.executeDefragPlanLocked(plan, byID, pol.MaxStep, rep)
		if err == nil {
			err = s.finishOpLocked(snap) // harvest before accepting the candidate
		}
		if err != nil {
			s.restoreLocked(snap, err)
			lastErr = err
			continue
		}
		rep.Freed = plan.Target
		rep.CellsRelocated = s.engine.Stats.CellsRelocated - cells0
		rep.FragAfter = s.area.Fragmentation()
		s.publish(Event{Kind: RearrangeFinished, Steps: len(plan.Steps), CLBs: rep.CellsRelocated})
		return rep, nil
	}
	s.journalAbortLocked()
	s.quarantineSweepLocked()
	return nil, fmt.Errorf("rlm: all %d rearrangement plans failed physically, last: %w",
		rep.Attempts, lastErr)
}

// defragCompactLocked slides every design west/north best-effort. Each
// slide is bracketed by a frame-granular snapshot: one that fails physically
// (the west columns double as the pad-entry routing corridor, so they
// congest first) is rolled back by replaying only the frames it dirtied and
// skipped while the rest of the pass continues. The snapshot is released the
// moment its slide completes, so exactly one checkpoint is alive at any
// point of the pass, its configuration side proportional to the slide's
// touched frames and its host side to the one design being slid — the
// checkpoint journals the slid design's tables first-touch and marks the
// area manager's undo log instead of cloning either.
//
// A slide that completed must NOT be rolled back later (no pass-level
// rollback-and-replay): relocation moves live state, and rewinding the
// configuration of a finished move would reset the restored cells to their
// power-up Init values while the running application holds live data.
// Rollback is therefore scoped to the failing slide, where the original
// cells still hold the state.
func (s *System) defragCompactLocked(pol DefragPolicy) (*DefragReport, error) {
	rep := &DefragReport{FragBefore: s.area.Fragmentation(), Attempts: 1}
	plan := rearrange.Compact(s.area)
	if len(plan.Steps) == 0 {
		rep.Freed = plan.Target
		rep.FragAfter = rep.FragBefore
		return rep, nil
	}
	byID := s.namesByAllocationLocked()
	s.publish(Event{Kind: RearrangeStarted, Steps: len(plan.Steps)})
	cells0 := s.engine.Stats.CellsRelocated
	for _, st := range plan.Steps {
		name, ok := byID[st.ID]
		if !ok {
			continue
		}
		// Earlier skipped slides can leave this step's target occupied.
		if !s.area.CanMove(st.ID, st.To) {
			continue
		}
		from := s.designs[name].Region
		snap, err := s.checkpointLocked()
		if err != nil {
			return nil, err
		}
		// Each slide is its own journal op: a completed slide must never be
		// rolled back (see above), so it seals individually.
		if err := s.journalBeginLocked(snap, "defrag-slide", name, st.To, ""); err != nil {
			s.releaseCheckpointLocked(snap)
			return nil, err
		}
		slideErr := s.defragStepLocked(name, st.To, pol.MaxStep)
		if slideErr == nil {
			// Each slide owns its checkpoint, so its stream is harvested
			// before the checkpoint is released (a later harvest could not
			// roll the slide back any more).
			slideErr = s.finishOpLocked(snap)
		}
		if slideErr != nil {
			rep.Attempts++
			s.restoreLocked(snap, fmt.Errorf("rlm: compaction slide %s -> %v: %w", name, st.To, slideErr))
			s.journalAbortLocked()
			s.quarantineSweepLocked()
		} else {
			rep.Moves = append(rep.Moves, DesignMove{Design: name, From: from, To: st.To})
			rep.CLBsMoved += from.Area()
		}
		s.releaseCheckpointLocked(snap)
	}
	rep.CellsRelocated = s.engine.Stats.CellsRelocated - cells0
	rep.Freed = s.area.MaxFreeRect()
	rep.FragAfter = s.area.Fragmentation()
	s.publish(Event{Kind: RearrangeFinished, Steps: len(rep.Moves), CLBs: rep.CellsRelocated})
	return rep, nil
}

func (s *System) namesByAllocationLocked() map[int]string {
	byID := make(map[int]string, len(s.regions))
	for name, id := range s.regions {
		byID[id] = name
	}
	return byID
}

// multiPlanner is implemented by planners that can propose fallback plans
// (rearrange.LocalRepacking).
type multiPlanner interface {
	Plans(m *area.Manager, h, w int) []*rearrange.Plan
}

// executeDefragPlanLocked runs one candidate plan's moves, accumulating
// into the report; the caller owns rollback.
func (s *System) executeDefragPlanLocked(plan *rearrange.Plan, byID map[int]string, maxStep int, rep *DefragReport) error {
	for _, st := range plan.Steps {
		name, ok := byID[st.ID]
		if !ok {
			return fmt.Errorf("%w: allocation %d backs no design", ErrUnknownDesign, st.ID)
		}
		if err := s.defragStepLocked(name, st.To, maxStep); err != nil {
			return fmt.Errorf("rlm: defragment step %s -> %v: %w", name, st.To, err)
		}
		rep.Moves = append(rep.Moves, DesignMove{Design: name, From: st.From, To: st.To})
		rep.CLBsMoved += st.From.Area()
	}
	return nil
}

// defragStepLocked executes one planned design move, staged when the
// policy asks for it and the hop corridor is free, direct otherwise.
func (s *System) defragStepLocked(name string, to fabric.Rect, maxStep int) error {
	d := s.designs[name]
	if maxStep > 0 {
		if hops, err := s.stagedHopsLocked(name, d.Region, to, maxStep); err == nil {
			for _, next := range hops {
				if err := s.moveRaw(name, next); err != nil {
					return err
				}
			}
			return nil
		}
	}
	return s.moveRaw(name, to)
}
