package rlm

import (
	"errors"
	"testing"

	"repro/internal/fabric"
	"repro/internal/itc99"
	"repro/internal/netlist"
	"repro/internal/sim"
)

// defragHarness loads designs in the XCV50's corners with a lock-step
// verification group, exactly the paper's §1 scenario.
type defragHarness struct {
	sys   *System
	group *sim.Group
	rng   uint64
}

func newDefragHarness(t *testing.T) *defragHarness {
	t.Helper()
	sys, err := New(WithDevice(fabric.XCV50), WithPort(BoundaryScan))
	if err != nil {
		t.Fatal(err)
	}
	h := &defragHarness{sys: sys, group: sim.NewGroup(sys.Device()), rng: 77}
	sys.Engine().Clock = h.step
	return h
}

func (h *defragHarness) load(t *testing.T, name string, region fabric.Rect, gen bool) {
	t.Helper()
	var nl *netlist.Netlist
	var err error
	if gen {
		nl = itc99.Generate(itc99.GenConfig{
			Name: name, Inputs: 3, Outputs: 2, FFs: 8, LUTs: 16,
			Seed: 99, Style: itc99.FreeRunning,
		})
	} else {
		nl, err = itc99.Get(name)
		if err != nil {
			t.Fatal(err)
		}
	}
	d, err := h.sys.Load(nl, region)
	if err != nil {
		t.Fatalf("loading %s: %v", name, err)
	}
	if _, err := h.group.Add(d); err != nil {
		t.Fatal(err)
	}
}

func (h *defragHarness) retire(t *testing.T, name string) {
	t.Helper()
	var kept []*sim.Member
	for _, m := range h.group.Members {
		if m.Design.Name != name {
			kept = append(kept, m)
		}
	}
	h.group.Members = kept
	if err := h.sys.Unload(name); err != nil {
		t.Fatal(err)
	}
}

func (h *defragHarness) step(cycles int) error {
	for i := 0; i < cycles; i++ {
		inputs := make([][]bool, len(h.group.Members))
		for k, m := range h.group.Members {
			in := make([]bool, len(m.Design.NL.Inputs()))
			for j := range in {
				h.rng = h.rng*6364136223846793005 + 1442695040888963407
				in[j] = h.rng>>40&1 == 1
			}
			inputs[k] = in
		}
		if err := h.group.Step(inputs); err != nil {
			return err
		}
	}
	return nil
}

// TestDefragmentEndToEnd is the acceptance scenario: several designs are
// loaded and run, some retire, free space is fragmented; one Defragment
// call relocates survivors on the live fabric so a previously unplaceable
// region fits — and every surviving design's simulated outputs stay
// golden-exact across the rearrangement (the paper's transparency claim).
func TestDefragmentEndToEnd(t *testing.T) {
	h := newDefragHarness(t)
	h.load(t, "b01", fabric.Rect{Row: 0, Col: 0, H: 5, W: 5}, false)
	h.load(t, "b02", fabric.Rect{Row: 0, Col: 19, H: 5, W: 5}, false)
	h.load(t, "b06", fabric.Rect{Row: 11, Col: 0, H: 5, W: 5}, false)
	h.load(t, "dsp", fabric.Rect{Row: 11, Col: 19, H: 5, W: 5}, true)
	if err := h.step(10); err != nil {
		t.Fatal(err)
	}
	h.retire(t, "b02")
	h.retire(t, "b06")

	const needH, needW = 11, 20
	if _, ok := h.sys.Area().FindPlacement(needH, needW, 0); ok {
		t.Fatal("scenario broken: the region already fits")
	}
	rep, err := h.sys.Defragment(DefragPolicy{NeedH: needH, NeedW: needW})
	if err != nil {
		t.Fatalf("defragment: %v", err)
	}
	// (a) the previously unplaceable region now fits.
	if _, ok := h.sys.Area().FindPlacement(needH, needW, 0); !ok {
		t.Fatal("defragmentation did not open the region")
	}
	// (b) surviving designs run on, outputs golden-exact, state intact.
	if err := h.step(30); err != nil {
		t.Fatalf("designs disturbed by defragmentation: %v", err)
	}
	if err := h.group.CheckState(); err != nil {
		t.Fatalf("state corrupted: %v", err)
	}
	if len(rep.Moves) == 0 || rep.CellsRelocated == 0 {
		t.Errorf("no real relocation happened: %+v", rep)
	}
	if rep.FragAfter >= rep.FragBefore {
		t.Errorf("fragmentation %f -> %f", rep.FragBefore, rep.FragAfter)
	}
}

// TestDefragmentCompaction exercises the full-compaction policy (no target
// region): scattered designs slide west/north while running.
func TestDefragmentCompaction(t *testing.T) {
	h := newDefragHarness(t)
	h.load(t, "gen1", fabric.Rect{Row: 2, Col: 6, H: 4, W: 4}, true)
	h.load(t, "gen2", fabric.Rect{Row: 8, Col: 6, H: 4, W: 4}, true)
	if err := h.step(10); err != nil {
		t.Fatal(err)
	}
	fragBefore := h.sys.Fragmentation()
	rep, err := h.sys.Defragment(DefragPolicy{})
	if err != nil {
		t.Fatalf("compaction: %v", err)
	}
	if len(rep.Moves) == 0 {
		t.Fatalf("nothing moved: %+v", rep)
	}
	if rep.FragAfter > fragBefore {
		t.Errorf("fragmentation grew: %f -> %f", fragBefore, rep.FragAfter)
	}
	if err := h.step(20); err != nil {
		t.Fatalf("designs disturbed by compaction: %v", err)
	}
	if err := h.group.CheckState(); err != nil {
		t.Fatal(err)
	}
	// The compacted layout packs toward the origin.
	r1, _ := h.sys.Region("gen1")
	r2, _ := h.sys.Region("gen2")
	if r1.Col+r1.Row >= 2+6 && r2.Col+r2.Row >= 8+6 {
		t.Errorf("no design moved toward the origin: gen1=%v gen2=%v", r1, r2)
	}
}

func TestDefragmentNoSpaceSentinel(t *testing.T) {
	h := newDefragHarness(t)
	h.load(t, "b01", fabric.Rect{Row: 0, Col: 0, H: 5, W: 5}, false)
	_, err := h.sys.Defragment(DefragPolicy{NeedH: 100, NeedW: 100})
	if !errors.Is(err, ErrNoSpace) {
		t.Errorf("want ErrNoSpace, got %v", err)
	}
}
