.PHONY: test race bench bench-baseline cover lint fuzz torture soak

test:
	go build ./... && go test ./...

race:
	go test -race ./...

# Mirrors the CI crash- and fault-torture steps (keep the -run patterns in
# sync with .github/workflows/ci.yml): journaled crash/recovery at every
# boundary, then the transport fault-tolerance properties under race.
torture:
	go test -race -run 'TestCrashConsistency|TestRecover|TestCompressedDelivery|TestCompressionFig7' repro
	go test -race -run 'TestChaosRetry|TestPersistentFault|TestScrub|TestBackgroundScrubber|TestCrashDuringRetry' repro

# The self-healing chaos soak at full length (CI runs the short-mode variant
# inside the fault-torture step): background scrubber + fault plan +
# defragmentation + mid-soak crash recovery, converging to a state
# bit-identical to a fault-free twin, under race.
soak:
	go test -race -run 'TestChaosSoakSelfHealing|TestChaosSoakCompressed|TestScrubPreemptiveQuarantine|TestStallWatchdog|TestDegradedAdmission|TestCloseUnderLoad' repro

# The exact command the CI bench lane runs (keep the two in sync: the
# regression gate compares like against like).
BENCH_CMD = go test -run '^$$' -bench . -benchmem -benchtime=100ms -timeout 30m ./...

bench:
	$(BENCH_CMD)

# Refresh the checked-in baseline after a PR that intentionally shifts
# performance. Run on an otherwise idle machine.
bench-baseline:
	$(BENCH_CMD) | tee bench.txt
	go run ./cmd/benchdiff parse bench.txt > BENCH_baseline.json
	rm -f bench.txt

# Mirrors the CI fuzz lane (keep the budgets in sync with
# .github/workflows/ci.yml): the checked-in seed corpus first as plain
# tests, then a budgeted fuzz of the facade-op driver and the journal
# scanner.
fuzz:
	go test -run 'Fuzz' repro repro/internal/journal repro/internal/bitstream
	go test -run '^$$' -fuzz 'FuzzFacadeOps' -fuzztime 60s -fuzzminimizetime 10s repro
	go test -run '^$$' -fuzz 'FuzzJournalScan' -fuzztime 30s -fuzzminimizetime 10s repro/internal/journal
	go test -run '^$$' -fuzz 'FuzzDeltaStream' -fuzztime 30s -fuzzminimizetime 10s repro/internal/bitstream

# Mirrors the CI lint lane; falls back to go vet when staticcheck is not on
# PATH (install: go install honnef.co/go/tools/cmd/staticcheck@2025.1.1).
lint:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not found, running go vet (see Makefile for install)"; \
		go vet ./...; \
	fi

# Enforces the same 75% floor as the CI coverage lane (keep in sync with
# .github/workflows/ci.yml).
cover:
	go test -coverprofile=cover.out ./...
	@go tool cover -func=cover.out | tail -1
	@total=$$(go tool cover -func=cover.out | tail -1 | awk '{print substr($$3, 1, length($$3)-1)}'); \
	awk -v t="$$total" 'BEGIN { if (t + 0 < 75.0) { print "coverage " t "% is below the 75% floor"; exit 1 } }'
