.PHONY: test race bench bench-baseline cover

test:
	go build ./... && go test ./...

race:
	go test -race ./...

# The exact command the CI bench lane runs (keep the two in sync: the
# regression gate compares like against like).
BENCH_CMD = go test -run '^$$' -bench . -benchmem -benchtime=100ms -timeout 30m ./...

bench:
	$(BENCH_CMD)

# Refresh the checked-in baseline after a PR that intentionally shifts
# performance. Run on an otherwise idle machine.
bench-baseline:
	$(BENCH_CMD) | tee bench.txt
	go run ./cmd/benchdiff parse bench.txt > BENCH_baseline.json
	rm -f bench.txt

cover:
	go test -coverprofile=cover.out ./...
	go tool cover -func=cover.out | tail -1
