package rlm

import (
	"fmt"

	"repro/internal/area"
	"repro/internal/bitstream"
	"repro/internal/fabric"
	"repro/internal/health"
	"repro/internal/journal"
	"repro/internal/netlist"
	"repro/internal/place"
)

// ErrDeviceMismatch re-exports the journal's readback-mismatch sentinel: the
// journal's state references configuration the device readback does not show
// (wrong device, or the fabric lost state while the host was down).
var ErrDeviceMismatch = journal.ErrDeviceMismatch

// RecoverReport describes what Recover did to reconcile the journal tail
// against the device.
type RecoverReport struct {
	// Action is "clean" (the journal ended on a seal), "rolled-forward"
	// (the tail's shift had fully landed: its post state was installed and
	// sealed committed) or "rolled-back" (the tail was undone frame by frame
	// from its journaled pre-images and sealed aborted).
	Action string
	// Seq is the operation sequence number the installed state corresponds
	// to (0 when nothing ever committed).
	Seq uint64
	// TailOp names the unsealed tail operation that was reconciled ("" for a
	// clean journal).
	TailOp string
	// FramesChecked counts the frames read back through the configuration
	// port for the digest comparison.
	FramesChecked int
	// FramesRestored counts the frames rewritten through the port by a
	// roll-back (0 for clean and rolled-forward recoveries).
	FramesRestored int
	// RecoverySeconds is the configuration-port transport time the
	// reconciliation itself consumed. It is reported here and NOT added to
	// the recovered system's accounting: the restored counters are the
	// never-crashed twin's, which is what makes recovery transparent to the
	// paper's cost model.
	RecoverySeconds float64
	// Designs lists the designs live in the recovered system.
	Designs []string
}

// Recover rebuilds a System from a crashed host's operation journal,
// reconciling the journal tail against the device readback. dev is the live
// device the crashed system was driving (in this reproduction the simulated
// fabric outlives the host model; a crash-torture harness hands in its
// mirror of everything the port delivered).
//
// The decision table:
//
//   - journal ends on a Commit/Abort seal → install the last committed
//     state; the device already matches it.
//   - unsealed tail WITH a Post record whose dirty-frame digests all match
//     the device readback → the shift completed before the crash: roll
//     forward (install the tail's post state, seal Commit).
//   - unsealed tail otherwise → the shift was interrupted: roll back by
//     rewriting every journaled pre-image the device diverges from, install
//     the last committed state, seal Abort.
//
// Either way the journal is left sealed and the returned System journals
// onto it, so recovery is idempotent and crash-safe itself. A journal whose
// committed state references designs the device readback no longer shows
// fails with ErrDeviceMismatch (wrapped), as does a device-geometry mismatch.
//
// Options are applied over the journal's recorded configuration; the journal
// records only the port KIND, so a system built with WithPortModel must pass
// the factory again to recover onto the same port model.
func Recover(dev *fabric.Device, journalPath string, opts ...Option) (*System, *RecoverReport, error) {
	log, err := journal.Scan(journalPath)
	if err != nil {
		return nil, nil, fmt.Errorf("rlm: scanning journal: %w", err)
	}
	rs, err := journal.Replay(log)
	if err != nil {
		return nil, nil, fmt.Errorf("rlm: replaying journal: %w", err)
	}
	if rs.Init.Preset != dev.Name || rs.Init.Rows != dev.Rows || rs.Init.Cols != dev.Cols {
		return nil, nil, fmt.Errorf("%w: journal for %s %dx%d, device is %s %dx%d",
			ErrDeviceMismatch, rs.Init.Preset, rs.Init.Rows, rs.Init.Cols, dev.Name, dev.Rows, dev.Cols)
	}
	cfg := configFromInit(rs.Init)
	for _, o := range opts {
		o(&cfg)
	}
	s, err := newSystem(&cfg, dev)
	if err != nil {
		return nil, nil, err
	}
	// Engine initialisation traffic is part of a fresh system's deterministic
	// accounting; remember it so a nothing-ever-committed recovery can rewind
	// the reconciliation traffic without losing it.
	var freshCycles uint64
	if cp, ok := s.port.(cyclePort); ok {
		freshCycles = cp.Cycles()
	}
	var freshTraffic bitstream.Traffic
	if tp, ok := s.port.(bitstream.CompressPort); ok {
		freshTraffic = tp.Traffic()
	}
	j, err := journal.OpenAppend(journalPath, rs.ValidLen)
	if err != nil {
		return nil, nil, fmt.Errorf("rlm: reopening journal: %w", err)
	}
	rep := &RecoverReport{Action: "clean"}
	target := rs.State
	if rs.Tail != nil {
		rep.TailOp = rs.Tail.Begin.Op
		forward := false
		if rs.Tail.Post != nil {
			forward, err = s.digestsMatch(rs.Tail.Post.Dirty, rep)
			if err != nil {
				j.Close()
				return nil, nil, err
			}
		}
		if forward {
			rep.Action = "rolled-forward"
			target = rs.Tail.Post.State
			err = sealTail(j, journal.RecCommit, rs.Tail.Begin.Seq)
		} else {
			rep.Action = "rolled-back"
			if err = s.applyUndo(rs.Tail.Undo, rep); err == nil {
				err = sealTail(j, journal.RecAbort, rs.Tail.Begin.Seq)
			}
		}
		if err != nil {
			j.Close()
			return nil, nil, err
		}
	}
	if err := s.installState(&target); err != nil {
		j.Close()
		return nil, nil, err
	}
	rep.Seq = target.Seq
	for _, ds := range target.Designs {
		rep.Designs = append(rep.Designs, ds.Name)
	}
	// Measure the reconciliation's own transport cost before the restored
	// counters overwrite it.
	rep.RecoverySeconds = s.port.Elapsed()
	if target.Seq > 0 {
		s.engine.RestoreAccounting(target.Stats, target.LastTick)
		if cp, ok := s.port.(cyclePort); ok {
			cp.RestoreCycles(target.PortCycles)
		}
		if tp, ok := s.port.(bitstream.CompressPort); ok {
			tp.RestoreTraffic(bitstream.Traffic{
				WordsShifted:    target.WordsShifted,
				FullWords:       target.FullWords,
				FramesDelivered: target.FramesDelivered,
			})
		}
	} else {
		if cp, ok := s.port.(cyclePort); ok {
			// Nothing ever committed: the journaled state is zero-valued, but a
			// fresh system's engine initialisation itself costs port cycles (the
			// never-crashed twin kept them). Rewind the reconciliation traffic
			// only, leaving the deterministic initialisation cost in place.
			cp.RestoreCycles(freshCycles)
		}
		if tp, ok := s.port.(bitstream.CompressPort); ok {
			tp.RestoreTraffic(freshTraffic)
		}
	}
	s.attachJournal(j, rs.LastSeq)
	s.jrnl.path = journalPath
	s.jrnl.rotate = cfg.journalRot
	s.startScrubber(cfg.scrubEvery, cfg.scrubBatch)
	return s, rep, nil
}

// configFromInit rebuilds the construction parameters the journal recorded.
func configFromInit(init journal.Init) config {
	var cfg config
	switch init.Port {
	case "selectmap":
		cfg.port = SelectMAP
	default:
		// "custom" without a re-supplied factory falls back to the default
		// Boundary-Scan port: recovery must not fail on a missing closure,
		// and the accounting is restored from the journal regardless.
		cfg.port = BoundaryScan
	}
	cfg.clockHz = init.ClockHz
	cfg.appClockHz = init.AppClockHz
	cfg.serialCommit = init.Serial
	cfg.compress = init.Compress
	cfg.portWidth = init.PortWidth
	return cfg
}

// digestsMatch compares the tail's dirty-frame digests against device
// readback through the configuration port.
func (s *System) digestsMatch(dirty []journal.FrameDigest, rep *RecoverReport) (bool, error) {
	for _, d := range dirty {
		data, err := s.port.ReadFrame(d.Addr)
		if err != nil {
			return false, fmt.Errorf("%w: reading frame %v: %v", ErrDeviceMismatch, d.Addr, err)
		}
		rep.FramesChecked++
		if crcFrame(data) != d.CRC {
			return false, nil
		}
	}
	return true, nil
}

// applyUndo rewrites every journaled pre-image the device diverges from,
// first record per frame wins (the writer dedups, so this is belt and
// braces).
func (s *System) applyUndo(undo []journal.Undo, rep *RecoverReport) error {
	done := make(map[fabric.FrameAddr]bool, len(undo))
	for _, u := range undo {
		if done[u.Addr] {
			continue
		}
		done[u.Addr] = true
		cur, err := s.port.ReadFrame(u.Addr)
		if err != nil {
			return fmt.Errorf("%w: reading frame %v: %v", ErrDeviceMismatch, u.Addr, err)
		}
		rep.FramesChecked++
		if frameWordsEqual(cur, u.Words) {
			continue
		}
		// The diverged readback is the restore's delta baseline: a compressed
		// port ships only the runs the interrupted shift actually changed.
		if err := s.port.WriteUpdates([]bitstream.FrameUpdate{{Addr: u.Addr, Data: u.Words, Prev: cur}}); err != nil {
			return fmt.Errorf("rlm: restoring frame %v: %w", u.Addr, err)
		}
		rep.FramesRestored++
	}
	return nil
}

func frameWordsEqual(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// sealTail appends and syncs the reconciliation seal.
func sealTail(j *journal.Journal, t journal.RecType, seq uint64) error {
	if err := j.Append(t, journal.Seal{Seq: seq}); err != nil {
		return fmt.Errorf("rlm: sealing recovered tail: %w", err)
	}
	if err := j.Sync(); err != nil {
		return fmt.Errorf("rlm: sealing recovered tail: %w", err)
	}
	return nil
}

// installState rebuilds the host book-keeping from a journaled state and
// validates it against the (already reconciled) device: every design the
// state claims must still show its cells in the readback.
func (s *System) installState(st *journal.State) error {
	for _, ds := range st.Designs {
		nl, err := netlist.FromNodes(ds.Name, ds.Nodes)
		if err != nil {
			return fmt.Errorf("%w: design %q: %v", journal.ErrMalformed, ds.Name, err)
		}
		for id, ref := range ds.CellOf {
			if !ds.Region.Contains(ref.Coord) {
				return fmt.Errorf("%w: design %q cell %v outside region %v",
					journal.ErrMalformed, ds.Name, ref, ds.Region)
			}
			if !s.dev.ReadCell(ref).InUse() {
				return fmt.Errorf("%w: design %q node %d expects cell %v, readback shows it empty",
					ErrDeviceMismatch, ds.Name, id, ref)
			}
		}
		d := &place.Design{
			Name:     ds.Name,
			Dev:      s.dev,
			NL:       nl,
			Region:   ds.Region,
			CellOf:   ds.CellOf,
			PadOf:    ds.PadOf,
			SourceOf: ds.SourceOf,
			Nets:     ds.Nets,
		}
		if d.CellOf == nil {
			d.CellOf = map[netlist.ID]fabric.CellRef{}
		}
		if d.PadOf == nil {
			d.PadOf = map[netlist.ID]fabric.PadRef{}
		}
		if d.SourceOf == nil {
			d.SourceOf = map[netlist.ID]fabric.NodeID{}
		}
		s.designs[ds.Name] = d
		s.regions[ds.Name] = ds.Alloc
	}
	for _, p := range st.Pads {
		s.pads[p] = true
	}
	// A zero-valued state (nothing ever committed) leaves the fresh area
	// manager alone; NextAlloc is 1 from the first commit on.
	if st.NextAlloc > 0 {
		allocs := make([]area.Alloc, 0, len(st.Allocs))
		for _, a := range st.Allocs {
			allocs = append(allocs, area.Alloc{ID: a.ID, Rect: a.Rect})
		}
		if err := s.area.Restore(allocs, st.NextAlloc); err != nil {
			return fmt.Errorf("%w: %v", journal.ErrMalformed, err)
		}
	}
	// Re-apply the journaled quarantine mask before anything else delivers
	// frames: the frame filter and the area mask are permanent, and the
	// journaled Stats already count the quarantine (record off).
	if len(st.Quarantined) > 0 {
		s.quarantineFramesLocked(st.Quarantined, false)
	}
	// Restore the health ledger on top of the mask: quarantineFramesLocked
	// already condemned the masked columns in the tracker (a backward-compat
	// default for journals without a ledger); a journaled ledger overrides it
	// with the exact states, rates and probe streaks.
	if len(st.Health) > 0 {
		cols := make([]health.Column, 0, len(st.Health))
		for _, h := range st.Health {
			cols = append(cols, health.Column{
				Major:       h.Major,
				State:       health.State(h.State),
				Rate:        h.Rate,
				CleanProbes: h.CleanProbes,
				CleanChecks: h.CleanChecks,
				Probes:      h.Probes,
				ProbeFails:  h.ProbeFails,
				Repairs:     h.Repairs,
			})
		}
		s.health.Restore(cols)
	}
	// Capture the reconciled device into the tool's shadow (the paper's
	// complete configuration copy) and rebuild routing occupancy from it.
	if err := s.engine.Tool.Sync(); err != nil {
		return err
	}
	s.rebuildRouterLocked()
	return nil
}
