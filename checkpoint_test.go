package rlm

import (
	"fmt"
	"testing"

	"repro/internal/fabric"
	"repro/internal/itc99"
)

// loadGrid loads n small generated designs onto a fresh XCV50 system.
func loadGrid(t testing.TB, n int) *System {
	t.Helper()
	sys, err := New(WithDevice(fabric.XCV50), WithPort(SelectMAP))
	if err != nil {
		t.Fatal(err)
	}
	slots := []fabric.Rect{
		{Row: 1, Col: 2, H: 4, W: 4}, {Row: 1, Col: 8, H: 4, W: 4},
		{Row: 1, Col: 14, H: 4, W: 4}, {Row: 6, Col: 2, H: 4, W: 4},
		{Row: 6, Col: 8, H: 4, W: 4}, {Row: 6, Col: 14, H: 4, W: 4},
		{Row: 11, Col: 2, H: 4, W: 4}, {Row: 11, Col: 8, H: 4, W: 4},
	}
	if n > len(slots) {
		t.Fatalf("loadGrid supports up to %d designs", len(slots))
	}
	for i := 0; i < n; i++ {
		nl := itc99.Generate(itc99.GenConfig{
			Name: fmt.Sprintf("d%d", i), Inputs: 2, Outputs: 1, FFs: 4, LUTs: 8,
			Seed: uint64(100 + i), Style: itc99.FreeRunning,
		})
		if _, err := sys.Load(nl, slots[i]); err != nil {
			t.Fatal(err)
		}
	}
	return sys
}

// TestCheckpointAllocsIndependentOfResidentDesigns pins the host-side
// O(change) contract for book-keeping checkpoints: a no-op operation (a
// staged move with zero hops) opens and releases a full checkpoint, and its
// allocation cost must not grow with the number of resident designs — the
// old checkpoint cloned the area grid plus every design's CellOf/SourceOf
// tables up front.
func TestCheckpointAllocsIndependentOfResidentDesigns(t *testing.T) {
	measure := func(designs int) float64 {
		sys := loadGrid(t, designs)
		region, ok := sys.Region("d0")
		if !ok {
			t.Fatal("d0 not loaded")
		}
		return testing.AllocsPerRun(200, func() {
			if err := sys.MoveStaged("d0", region, 1); err != nil {
				t.Fatal(err)
			}
		})
	}
	few := measure(2)
	many := measure(8)
	// Identical op, 4x the resident designs: the checkpoint must not scale
	// with them. Allow a small fixed wiggle for runtime noise.
	if many > few+8 {
		t.Errorf("checkpoint allocations scale with resident designs: %v allocs with 2 designs, %v with 8", few, many)
	}
	// Also pin the absolute cost: a no-op checkpoint is a handful of allocs
	// (snapshot struct + map, area mark, checkpoint struct). This matters
	// because BenchmarkCheckpoint's values sit below the CI mem gate's
	// noise floors — a reintroduced fixed per-checkpoint clone would slip
	// past benchdiff, so it must fail here instead.
	if many > 16 {
		t.Errorf("no-op checkpoint costs %v allocs, want a small constant (was 4 when pinned)", many)
	}
}
