package rlm

import (
	"fmt"

	"repro/internal/fabric"
)

// EventKind tags the typed events a System emits while it works.
type EventKind uint8

const (
	// DesignLoaded: a design was placed, routed and checkpointed.
	DesignLoaded EventKind = iota
	// DesignUnloaded: a design was decommissioned and its region freed.
	DesignUnloaded
	// DesignMoved: a whole design finished relocating to a new region.
	DesignMoved
	// CLBRelocated: one live CLB finished its two-phase relocation.
	CLBRelocated
	// RearrangeStarted: a defragmentation / rearrangement plan begins.
	RearrangeStarted
	// RearrangeFinished: the plan completed; Steps and CLBs are final.
	RearrangeFinished
	// Recovered: the system streamed a recovery bitstream, either on
	// request (Recover) or while rolling back a failed operation (Err is
	// then the failure that triggered the rollback).
	Recovered
	// TemplateHit: a Load found a pre-routed template and took the warm
	// path (frame splicing plus boundary routing; no interior place/route).
	TemplateHit
	// TemplateMiss: a Load with the template cache enabled found no entry
	// and fell through to the cold place-and-route path.
	TemplateMiss
	// TemplateStored: a cold load captured its design into the cache.
	TemplateStored
	// TemplateEvicted: the cache dropped an entry to make room; Design
	// holds the evicted key.
	TemplateEvicted
	// DesignTranslated: a whole-design relocation was served by address
	// translation (frame image re-targeted to the new columns plus a
	// boundary patch) instead of cell-by-cell replication.
	DesignTranslated
	// FaultDetected: a transport fault surfaced at an operation's harvest
	// point and the retry ladder is engaging (Err is the fault).
	FaultDetected
	// RetrySucceeded: a re-delivery attempt converged; Steps is the number
	// of attempts it took.
	RetrySucceeded
	// RetriesExhausted: every allowed re-delivery attempt failed; the
	// operation rolls back and persistently bad frames are quarantined.
	RetriesExhausted
	// FrameQuarantined: a configuration frame failed readback-verify
	// persistently and was masked out of the logic space (Frame names it).
	FrameQuarantined
	// DesignEvacuated: a design resident on newly-quarantined logic space
	// was relocated to healthy space (From -> Region).
	DesignEvacuated
	// ScrubRepair: the background scrubber found a frame diverging from the
	// golden shadow content and rewrote it (Frame names it).
	ScrubRepair
	// FrameSuspect: the health tracker's error rate for a column crossed
	// the suspect threshold (Frame.Major names the column). Advisory: the
	// column stays in service.
	FrameSuspect
	// QuarantineReleased: a quarantined column passed its probes and was
	// released back into the logic space on probation (Frame.Major names
	// the column).
	QuarantineReleased
	// ProbeFailed: a test-pattern probe of a quarantined column failed
	// (Frame names the frame that failed); the release streak resets.
	ProbeFailed
	// CapacityChanged: the healthy/quarantined/probation capacity split
	// moved (a column was condemned or released); Capacity carries the
	// new census.
	CapacityChanged
)

var eventKindNames = [...]string{
	"design-loaded", "design-unloaded", "design-moved", "clb-relocated",
	"rearrange-started", "rearrange-finished", "recovered",
	"template-hit", "template-miss", "template-stored", "template-evicted",
	"design-translated",
	"fault-detected", "retry-succeeded", "retries-exhausted",
	"frame-quarantined", "design-evacuated", "scrub-repair",
	"frame-suspect", "quarantine-released", "probe-failed",
	"capacity-changed",
}

func (k EventKind) String() string {
	if int(k) < len(eventKindNames) {
		return eventKindNames[k]
	}
	return fmt.Sprintf("event(%d)", k)
}

// Event is one observation from the run-time manager's event stream.
type Event struct {
	Kind   EventKind
	Design string      // design involved, when applicable
	Region fabric.Rect // design region after the event (load/unload/move)
	From   fabric.Rect // previous region (DesignMoved)
	// CLBFrom/CLBTo are the CLB coordinates of a CLBRelocated event.
	CLBFrom, CLBTo fabric.Coord
	Steps          int              // planned design moves (Rearrange*), or retry attempts
	CLBs           int              // CLBs physically relocated (RearrangeFinished)
	Frame          fabric.FrameAddr // frame involved (FrameQuarantined, ScrubRepair, health events)
	Capacity       Capacity         // capacity census (CapacityChanged)
	Err            error            // failure that triggered the event (Recovered, FaultDetected)
}

// Capacity is the logic-space capacity census a CapacityChanged event
// carries: CLBs in service and healthy, CLBs masked out by quarantine, and
// CLBs back in service on probation (counted inside HealthyCLBs too —
// probation columns take placements).
type Capacity struct {
	HealthyCLBs     int
	QuarantinedCLBs int
	ProbationCLBs   int
}

func (e Event) String() string {
	switch e.Kind {
	case DesignLoaded, DesignUnloaded:
		return fmt.Sprintf("%s %s %v", e.Kind, e.Design, e.Region)
	case DesignMoved, DesignTranslated:
		return fmt.Sprintf("%s %s %v -> %v", e.Kind, e.Design, e.From, e.Region)
	case TemplateHit, TemplateMiss, TemplateStored, TemplateEvicted:
		return fmt.Sprintf("%s %s", e.Kind, e.Design)
	case CLBRelocated:
		return fmt.Sprintf("%s %s %v -> %v", e.Kind, e.Design, e.CLBFrom, e.CLBTo)
	case RearrangeStarted:
		return fmt.Sprintf("%s steps=%d", e.Kind, e.Steps)
	case RearrangeFinished:
		return fmt.Sprintf("%s steps=%d clbs=%d", e.Kind, e.Steps, e.CLBs)
	case Recovered:
		if e.Err != nil {
			return fmt.Sprintf("%s after: %v", e.Kind, e.Err)
		}
		return e.Kind.String()
	case FaultDetected:
		return fmt.Sprintf("%s: %v", e.Kind, e.Err)
	case RetrySucceeded:
		return fmt.Sprintf("%s after %d attempt(s)", e.Kind, e.Steps)
	case RetriesExhausted:
		return fmt.Sprintf("%s after %d attempt(s): %v", e.Kind, e.Steps, e.Err)
	case FrameQuarantined, ScrubRepair:
		return fmt.Sprintf("%s F%d.%d", e.Kind, e.Frame.Major, e.Frame.Minor)
	case DesignEvacuated:
		return fmt.Sprintf("%s %s %v -> %v", e.Kind, e.Design, e.From, e.Region)
	case FrameSuspect, QuarantineReleased:
		return fmt.Sprintf("%s column F%d", e.Kind, e.Frame.Major)
	case ProbeFailed:
		return fmt.Sprintf("%s F%d.%d", e.Kind, e.Frame.Major, e.Frame.Minor)
	case CapacityChanged:
		return fmt.Sprintf("%s healthy=%d quarantined=%d probation=%d",
			e.Kind, e.Capacity.HealthyCLBs, e.Capacity.QuarantinedCLBs, e.Capacity.ProbationCLBs)
	}
	return e.Kind.String()
}

// Subscribe registers a new listener and returns its channel plus a cancel
// function. Events are delivered best-effort: when a listener's buffer is
// full the event is dropped for that listener rather than stalling a
// relocation mid-stream (the configuration port does not wait for
// observers). A buffer of 0 uses a sensible default.
func (s *System) Subscribe(buffer int) (<-chan Event, func()) {
	if buffer <= 0 {
		buffer = 64
	}
	ch := make(chan Event, buffer)
	s.subMu.Lock()
	id := s.nextSub
	s.nextSub++
	s.subs[id] = ch
	s.subMu.Unlock()
	cancel := func() {
		s.subMu.Lock()
		if _, ok := s.subs[id]; ok {
			delete(s.subs, id)
			close(ch)
		}
		s.subMu.Unlock()
	}
	return ch, cancel
}

// publish delivers an event to every subscriber without ever blocking.
func (s *System) publish(e Event) {
	s.subMu.Lock()
	for _, ch := range s.subs {
		select {
		case ch <- e:
		default: // listener too slow: drop rather than stall the port
		}
	}
	s.subMu.Unlock()
}
