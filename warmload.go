package rlm

import (
	"fmt"
	"sort"

	"repro/internal/fabric"
	"repro/internal/netlist"
	"repro/internal/place"
	"repro/internal/route"
	"repro/internal/template"
)

// This file is the facade side of the template cache: capturing a cold
// load's pre-routed image, splicing it back on a warm load, and serving
// whole-design relocations by address translation plus a boundary patch.
// Everything here is gated on s.tmpl != nil (WithTemplateCache); with the
// cache off none of these paths run and the system behaves exactly as
// before.

// boundaryGreedy is the A* heuristic weight for boundary-patch routing (see
// route.Router.Greedy). Warm loads and translations route a handful of pad
// nets over hard-blocked occupancy; the admissible heuristic would expand
// nearly the whole search box per sink hunting a delay-optimal path nobody
// needs, turning the O(frame-I/O) splice back into an O(region) search. Both
// paths use the same weight — the translated image plus its boundary patch
// must stay frame-bit-identical to an unload followed by a warm load.
const boundaryGreedy = 3

// TemplateStats returns the template cache statistics; ok is false when the
// cache is disabled.
func (s *System) TemplateStats() (template.Stats, bool) {
	if s.tmpl == nil {
		return template.Stats{}, false
	}
	return s.tmpl.Stats(), true
}

// captureTemplateLocked stores a freshly cold-loaded design's pre-routed
// image. Designs whose routing escapes their region (or that wire an input
// pad straight to an output pad) are not translation-safe and are skipped.
func (s *System) captureTemplateLocked(d *place.Design) {
	canon := d.NL.Canonical()
	key := template.KeyFor(s.dev, d.Region, canon.Digest)
	if s.tmpl.Contains(key) {
		return
	}
	tpl, ok := template.Capture(s.dev, d, canon)
	if !ok {
		return
	}
	for _, ev := range s.tmpl.Put(key, tpl) {
		s.publish(Event{Kind: TemplateEvicted, Design: ev.String()})
	}
	s.publish(Event{Kind: TemplateStored, Design: d.Name})
}

// allocPadLocked reserves the first free pad on a side, scanning in the
// placer's order so warm loads bind the same pads a cold load would.
func (s *System) allocPadLocked(side fabric.Dir) (fabric.PadRef, bool) {
	max := s.dev.Cols
	if side == fabric.West || side == fabric.East {
		max = s.dev.Rows
	}
	for pos := 0; pos < max; pos++ {
		for k := 0; k < fabric.PadsPerEdgeTile; k++ {
			p := fabric.PadRef{Side: side, Pos: pos, K: k}
			if !s.pads[p] {
				s.pads[p] = true
				return p, true
			}
		}
	}
	return fabric.PadRef{}, false
}

// templateBoundaryNets builds the routing problem for a template's boundary
// nets at a region: each primary input's pad to its interior pin sinks, and
// each interior output driver to its pad. Outputs sharing a driver merge
// into one net. The ordering matches the placer's, so the warm-load and
// translation paths route identically given identical occupancy.
func templateBoundaryNets(dev *fabric.Device, tpl *template.Template, region fabric.Rect,
	nl *netlist.Netlist, padOf map[netlist.ID]fabric.PadRef) []route.Net {
	var nets []route.Net
	for k, id := range nl.Inputs() {
		bi := tpl.Inputs[k]
		if len(bi.Sinks) == 0 {
			continue // input feeds nothing
		}
		sinks := make([]fabric.NodeID, len(bi.Sinks))
		for i, r := range bi.Sinks {
			sinks[i] = r.At(dev, region)
		}
		nets = append(nets, route.Net{
			Name:   nl.Nodes[id].Name,
			Source: dev.PadNodeID(padOf[id]),
			Sinks:  sinks,
		})
	}
	bySrc := map[fabric.NodeID]int{}
	for k, id := range nl.Outputs() {
		src := tpl.Outputs[k].Source.At(dev, region)
		pad := dev.PadNodeID(padOf[id])
		if i, ok := bySrc[src]; ok {
			nets[i].Sinks = append(nets[i].Sinks, pad)
			continue
		}
		bySrc[src] = len(nets)
		nets = append(nets, route.Net{
			Name:   nl.Nodes[id].Name,
			Source: src,
			Sinks:  []fabric.NodeID{pad},
		})
	}
	place.SortNets(nets)
	return nets
}

// tryWarmLoadLocked attempts the warm path for a load whose region has been
// validated and whose checkpoint is armed. Returns handled=false (and no
// error) on a cache miss or a clean pre-write fallback — the caller then
// runs the cold path. A non-nil error means the operation must roll back.
func (s *System) tryWarmLoadLocked(nl *netlist.Netlist, region fabric.Rect) (*place.Design, bool, error) {
	canon := nl.Canonical()
	key := template.KeyFor(s.dev, region, canon.Digest)
	tpl, ok := s.tmpl.Get(key)
	if !ok {
		s.publish(Event{Kind: TemplateMiss, Design: nl.Name})
		return nil, false, nil
	}
	// Drain any in-flight stream: the warm path reads the engine's occupancy
	// view, which must reflect all delivered frames.
	if err := s.engine.Tool.AwaitStream(); err != nil {
		return nil, false, err
	}
	// The image splices only into untouched interconnect: another design's
	// routing may legally pass through a region the area manager reports
	// free, and a single overlapping node means the pre-routed frames would
	// corrupt it.
	used := tpl.UsedAt(s.dev, region)
	occ := s.engine.OccupiedNodes()
	occSet := make(map[fabric.NodeID]bool, len(occ))
	for _, n := range occ {
		occSet[n] = true
	}
	for _, n := range used {
		if occSet[n] {
			s.tmpl.NoteFallback()
			return nil, false, nil
		}
	}
	// Bind pads (inputs west, outputs east — the placer's rule).
	padOf := map[netlist.ID]fabric.PadRef{}
	var newPads []fabric.PadRef
	releasePads := func() {
		for _, p := range newPads {
			delete(s.pads, p)
		}
	}
	bind := func(ids []netlist.ID, side fabric.Dir) bool {
		for _, id := range ids {
			p, ok := s.allocPadLocked(side)
			if !ok {
				return false
			}
			padOf[id] = p
			newPads = append(newPads, p)
		}
		return true
	}
	if !bind(nl.Inputs(), fabric.West) || !bind(nl.Outputs(), fabric.East) {
		releasePads()
		s.tmpl.NoteFallback()
		return nil, false, nil
	}
	// Route only the boundary nets, over ground-truth occupancy plus the
	// image — zero interior routing. The shared router is rebuilt from the
	// configuration memory either way, so a fallback leaves it coherent.
	bnets := templateBoundaryNets(s.dev, tpl, region, nl, padOf)
	s.router.Reset()
	s.router.Block(occ...)
	s.router.Block(used...)
	s.router.Greedy = boundaryGreedy
	routed, err := s.router.RouteDisjoint(bnets)
	s.router.Greedy = 0
	if err != nil {
		releasePads()
		s.rebuildRouterLocked()
		s.tmpl.NoteFallback()
		return nil, false, nil
	}
	// Commit through the designer path, exactly as a cold place-and-route
	// writes: the splice costs no port traffic, and Sync below adopts the
	// changed frames into the tool's shadow (the armed checkpoint covers
	// them if anything later fails).
	name := nl.Name
	s.noteUndoLocked(func(s *System) {
		delete(s.designs, name)
		delete(s.regions, name)
		for _, p := range newPads {
			delete(s.pads, p)
		}
	})
	for _, ci := range tpl.Cells {
		s.dev.WriteCell(ci.At.At(region), ci.Cfg)
	}
	interior := tpl.InteriorNets(s.dev, region, nl, canon)
	if err := route.Apply(s.dev, interior); err != nil {
		return nil, true, err
	}
	for _, id := range nl.Inputs() {
		s.dev.WritePad(padOf[id], fabric.PadConfig{Input: true})
	}
	if err := route.Apply(s.dev, routed); err != nil {
		return nil, true, err
	}
	// Re-bind the design's book-keeping through the canonical numbering:
	// this netlist may name and number its nodes differently from the one
	// the template was captured from.
	d := &place.Design{
		Name: name, Dev: s.dev, NL: nl, Region: region,
		CellOf:   map[netlist.ID]fabric.CellRef{},
		PadOf:    padOf,
		SourceOf: map[netlist.ID]fabric.NodeID{},
	}
	for _, cb := range tpl.CellOf {
		d.CellOf[canon.Order[cb.Canon]] = cb.At.At(region)
	}
	for _, sb := range tpl.SourceOf {
		d.SourceOf[canon.Order[sb.Canon]] = sb.At.At(s.dev, region)
	}
	for _, id := range nl.Inputs() {
		d.SourceOf[id] = s.dev.PadNodeID(padOf[id])
	}
	d.Nets = append(interior, routed...)
	id, err := s.area.AllocateAt(region)
	if err != nil {
		return nil, true, fmt.Errorf("%w: %v", ErrRegionBusy, err)
	}
	s.designs[name] = d
	s.regions[name] = id
	// Adopt the splice into the tool's shadow. The warm path knows its exact
	// footprint (the image cells, every routed node, the bound pads), so the
	// view updates by targeted deltas instead of the dirty-frame sweep — the
	// splice stays O(frame-I/O) on the host side too.
	cells := make([]fabric.CellRef, len(tpl.Cells))
	for i, ci := range tpl.Cells {
		cells[i] = ci.At.At(region)
	}
	seen := map[fabric.NodeID]bool{}
	var touched []fabric.NodeID
	for i := range d.Nets {
		for _, path := range d.Nets[i].Paths {
			for _, n := range path {
				if !seen[n] {
					seen[n] = true
					touched = append(touched, n)
				}
			}
		}
	}
	pads := make([]fabric.PadRef, 0, len(padOf))
	for _, p := range padOf {
		pads = append(pads, p)
	}
	if err := s.engine.Tool.SyncDeclared(cells, touched, pads); err != nil {
		return nil, true, err
	}
	s.rebuildRouterLocked()
	s.publish(Event{Kind: TemplateHit, Design: name, Region: region})
	s.publish(Event{Kind: DesignLoaded, Design: name, Region: region})
	return d, true, nil
}

// tryTranslateMoveLocked attempts to serve a validated whole-design move by
// address translation: release the design's current routing and cells, write
// the cached frame image at the target columns, and route only the boundary
// nets back to the design's existing pads. Returns handled=false (no error)
// when the move must fall back to cell-by-cell replication; a non-nil error
// means frames were written and the caller must roll back.
//
// Unlike the replica path, translation does not transfer live state: the
// design's storage elements re-initialise at the target (see
// WithTemplateCache). RAM designs always fall back.
func (s *System) tryTranslateMoveLocked(name string, to fabric.Rect) (bool, error) {
	d := s.designs[name]
	canon := d.NL.Canonical()
	key := template.KeyFor(s.dev, d.Region, canon.Digest)
	tpl, ok := s.tmpl.Lookup(key)
	if !ok || tpl.HasRAM() {
		s.tmpl.NoteFallback()
		return false, nil
	}
	if err := s.engine.Tool.AwaitStream(); err != nil {
		return false, err
	}
	from := d.Region
	// The design's current fabric footprint: the forward cones of every
	// signal source, the outputs of every occupied cell, and its pads. The
	// target conflict check and the boundary routing both exclude it — the
	// cut below frees it.
	srcs := make([]fabric.NodeID, 0, len(d.SourceOf))
	for _, src := range d.SourceOf {
		srcs = append(srcs, src)
	}
	sort.Slice(srcs, func(i, j int) bool { return srcs[i] < srcs[j] })
	own := map[fabric.NodeID]bool{}
	for _, src := range srcs {
		for _, n := range s.engine.ConeNodes(src) {
			own[n] = true
		}
	}
	for _, ref := range d.OccupiedCells() {
		own[s.dev.NodeIDAt(ref.Coord, fabric.LocalOutX(ref.Cell))] = true
		own[s.dev.NodeIDAt(ref.Coord, fabric.LocalOutXQ(ref.Cell))] = true
	}
	for _, p := range d.PadOf {
		own[s.dev.PadNodeID(p)] = true
	}
	targetUsed := tpl.UsedAt(s.dev, to)
	occ := s.engine.OccupiedNodes()
	foreign := make([]fabric.NodeID, 0, len(occ))
	for _, n := range occ {
		if !own[n] {
			foreign = append(foreign, n)
		}
	}
	foreignSet := make(map[fabric.NodeID]bool, len(foreign))
	for _, n := range foreign {
		foreignSet[n] = true
	}
	for _, n := range targetUsed {
		if foreignSet[n] {
			s.tmpl.NoteFallback()
			return false, nil
		}
	}
	// Route the boundary patch against post-cut occupancy, computed before a
	// single frame moves: everything foreign plus the translated image. The
	// same construction and ordering as the warm path, so an unload followed
	// by a warm load at the target produces bit-identical frames.
	bnets := templateBoundaryNets(s.dev, tpl, to, d.NL, d.PadOf)
	s.router.Reset()
	s.router.Block(foreign...)
	s.router.Block(targetUsed...)
	s.router.Greedy = boundaryGreedy
	routed, err := s.router.RouteDisjoint(bnets)
	s.router.Greedy = 0
	if err != nil {
		s.rebuildRouterLocked()
		s.tmpl.NoteFallback()
		return false, nil
	}
	// Foreign-RAM guard, mirroring the replica path's column check: every
	// column this move rewrites (cut, paste, boundary patch) must be free of
	// other designs' distributed RAM — a column rewrite would corrupt it.
	// The design itself has none (checked above).
	cols := map[int]bool{}
	addCol := func(c fabric.Coord) { cols[c.Col] = true }
	for c := 0; c < from.W; c++ {
		cols[from.Col+c] = true
	}
	for c := 0; c < to.W; c++ {
		cols[to.Col+c] = true
	}
	for n := range own {
		if c, _, ok := s.dev.SplitNode(n); ok {
			addCol(c)
		}
	}
	for _, n := range targetUsed {
		if c, _, ok := s.dev.SplitNode(n); ok {
			addCol(c)
		}
	}
	for i := range routed {
		for _, n := range routed[i].Tree {
			if c, _, ok := s.dev.SplitNode(n); ok {
				addCol(c)
			}
		}
	}
	for col := range cols {
		for row := 0; row < s.dev.Rows; row++ {
			for cell := 0; cell < fabric.CellsPerCLB; cell++ {
				cc := s.dev.ReadCell(fabric.CellRef{Coord: fabric.Coord{Row: row, Col: col}, Cell: cell})
				if cc.InUse() && cc.RAM {
					s.rebuildRouterLocked()
					s.tmpl.NoteFallback()
					return false, nil
				}
			}
		}
	}
	// Commit. Baseline the wait accounting first, so the cycles charged to
	// this relocation cover exactly its own port traffic.
	if err := s.engine.Tick(0); err != nil {
		return false, err
	}
	s.noteDesignLocked(d)
	oldNets := d.Nets
	s.noteUndoLocked(func(*System) { d.Nets = oldNets })
	interior := tpl.InteriorNets(s.dev, to, d.NL, canon)
	err = s.engine.Tool.InBatch(func() error {
		// Cut: release the routing and clear the cells through the port.
		// Pads keep their configuration; the boundary patch re-drives them.
		for _, src := range srcs {
			if err := s.engine.ReleaseTree(src); err != nil {
				return err
			}
		}
		for _, ref := range d.OccupiedCells() {
			if err := s.engine.ClearCell(ref); err != nil {
				return err
			}
		}
		// Paste: the translated cell image, then the interior and boundary
		// PIPs, deduplicated across shared path prefixes so each frame bit
		// is staged once.
		for _, ci := range tpl.Cells {
			if err := s.engine.Tool.WriteCell(ci.At.At(to), ci.Cfg); err != nil {
				return err
			}
		}
		type edge struct{ a, b fabric.NodeID }
		seen := map[edge]bool{}
		enable := func(path []fabric.NodeID) error {
			for i := 1; i < len(path); i++ {
				e := edge{path[i-1], path[i]}
				if seen[e] {
					continue
				}
				seen[e] = true
				if err := s.engine.Tool.SetPIP(e.a, e.b, true); err != nil {
					return err
				}
			}
			return nil
		}
		for i := range interior {
			for _, sink := range interior[i].Sinks {
				if err := enable(interior[i].Paths[sink]); err != nil {
					return err
				}
			}
		}
		for i := range routed {
			for _, sink := range routed[i].Sinks {
				if err := enable(routed[i].Paths[sink]); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		return false, err
	}
	if err := s.engine.Tool.AwaitStream(); err != nil {
		return false, err
	}
	if err := s.engine.Tick(1); err != nil {
		return false, err
	}
	// Host book-keeping: re-bind the tables through the canonical numbering
	// at the target region.
	newCellOf := make(map[netlist.ID]fabric.CellRef, len(d.CellOf))
	for _, cb := range tpl.CellOf {
		newCellOf[canon.Order[cb.Canon]] = cb.At.At(to)
	}
	newSourceOf := make(map[netlist.ID]fabric.NodeID, len(d.SourceOf))
	for _, sb := range tpl.SourceOf {
		newSourceOf[canon.Order[sb.Canon]] = sb.At.At(s.dev, to)
	}
	for _, id := range d.NL.Inputs() {
		newSourceOf[id] = s.dev.PadNodeID(d.PadOf[id])
	}
	d.CellOf = newCellOf
	d.SourceOf = newSourceOf
	d.Region = to
	d.Nets = append(interior, routed...)
	if err := s.area.Move(s.regions[name], to); err != nil {
		return false, err
	}
	s.rebuildRouterLocked()
	s.tmpl.NoteTranslation()
	s.publish(Event{Kind: DesignTranslated, Design: name, From: from, Region: to})
	s.publish(Event{Kind: DesignMoved, Design: name, From: from, Region: to})
	return true, nil
}
