package rlm

import (
	"errors"

	"repro/internal/relocate"
)

// Sentinel errors returned by the run-time manager. Every error that leaves
// the public API wraps one of these, so callers dispatch with errors.Is
// instead of matching strings.
var (
	// ErrNoSpace: no contiguous region satisfies the request, even after
	// the configured rearrangement policy was consulted.
	ErrNoSpace = errors.New("rlm: no region available")
	// ErrUnknownDesign: the named design is not resident.
	ErrUnknownDesign = errors.New("rlm: unknown design")
	// ErrDuplicateDesign: a design with that name is already resident.
	ErrDuplicateDesign = errors.New("rlm: design already loaded")
	// ErrRegionMismatch: the target rectangle's shape differs from the
	// design's current region (relocation preserves shape).
	ErrRegionMismatch = errors.New("rlm: target region does not match design shape")
	// ErrRegionBusy: the requested rectangle overlaps another allocation
	// (or, for staged moves, an intermediate hop does).
	ErrRegionBusy = errors.New("rlm: target region is not free")
	// ErrPlanInvalid: a transaction failed dry-run validation before any
	// frame was streamed; the system is untouched.
	ErrPlanInvalid = errors.New("rlm: plan fails dry-run validation")
	// ErrRetriesExhausted: a transport fault survived every re-delivery
	// attempt the retry policy allows; the operation rolled back and any
	// frames that failed readback-verify were quarantined.
	ErrRetriesExhausted = errors.New("rlm: delivery retries exhausted")
	// ErrQuarantined: the requested rectangle overlaps logic space that was
	// masked out after persistent configuration-frame failures.
	ErrQuarantined = errors.New("rlm: target region overlaps quarantined logic space")
	// ErrDegraded: healthy logic capacity is below the health policy's
	// admission watermark; Load and Plan fail fast instead of thrashing
	// placement retries on a mostly-condemned device.
	ErrDegraded = errors.New("rlm: healthy capacity below admission watermark")
)

// ErrPortStalled re-exports the frame tool's stall-watchdog sentinel: the
// configuration port failed to harvest an in-flight stream within the
// WithStallTimeout deadline. It surfaces wrapped in the same places any
// transport fault does (and feeds the retry ladder when one is armed).
var ErrPortStalled = relocate.ErrPortStalled
