package rlm

import (
	"sort"
	"time"

	"repro/internal/bitstream"
	"repro/internal/fabric"
	"repro/internal/health"
)

// This file is the configuration-memory scrubber: a maintenance pass that
// readback-compares frames against the golden shadow content — the same bits
// the journal's dirty-frame digests attest — and rewrites any frame that
// silently diverged (the single-event-upset model: a bit flips in the
// configuration memory with no transport error to announce it). The journal
// digests catch corruption of an operation's own frames at its commit
// boundary; the scrubber is the steady-state complement, sweeping the whole
// device round-robin between operations.

// ScrubReport summarises one scrub pass.
type ScrubReport struct {
	// FramesChecked counts the frames read back and compared this pass.
	FramesChecked int
	// Repairs lists the frames found diverging and rewritten.
	Repairs []fabric.FrameAddr
	// Skipped reports that the pass yielded without checking anything
	// because a foreground operation's stream was in flight (the frame-set
	// conflict gate: the scrubber must not race the port with a live burst).
	Skipped bool
}

// Scrub runs one scrub pass over at most maxFrames frames (0 sweeps the
// whole device), resuming round-robin where the previous pass stopped. The
// pass yields — returns with Skipped set — when a background stream is in
// flight. Scrub transport traffic is compensated out of the port's cycle
// accounting and reported as Stats.ScrubSeconds, so foreground accounting
// stays bit-identical to an unscrubbed twin's.
func (s *System) Scrub(maxFrames int) (*ScrubReport, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.scrubLocked(maxFrames)
}

func (s *System) scrubLocked(maxFrames int) (*ScrubReport, error) {
	rep := &ScrubReport{}
	if s.engine.Tool.StreamInFlight() {
		rep.Skipped = true
		return rep, nil
	}
	addrs := s.scrubAddrsLocked()
	if len(addrs) == 0 {
		return rep, nil
	}
	if maxFrames <= 0 || maxFrames > len(addrs) {
		maxFrames = len(addrs)
	}
	var changes []*health.Change
	err := s.compensatePort(&s.engine.Stats.ScrubSeconds, func() error {
		for i := 0; i < maxFrames; i++ {
			addr := addrs[s.scrubCursor%len(addrs)]
			s.scrubCursor = (s.scrubCursor + 1) % len(addrs)
			if s.quarantined[addr] {
				continue
			}
			want, ok := s.engine.Tool.Shadow().Frame(addr)
			if !ok {
				continue
			}
			got, err := s.port.ReadFrame(addr)
			if err != nil {
				return err
			}
			rep.FramesChecked++
			s.engine.Stats.ScrubChecked++
			if frameWordsEqual(got, want) {
				changes = append(changes, s.health.NoteClean(addr.Major))
				continue
			}
			// The diverged readback is the repair's delta baseline: on a
			// compressed port only the flipped word runs ship.
			if err := s.port.WriteUpdates([]bitstream.FrameUpdate{{Addr: addr, Data: want, Prev: got}}); err != nil {
				return err
			}
			rep.Repairs = append(rep.Repairs, addr)
			s.engine.Stats.ScrubRepairs++
			s.publish(Event{Kind: ScrubRepair, Frame: addr})
			changes = append(changes, s.health.NoteRepair(addr))
		}
		return nil
	})
	// Apply tracker decisions outside the compensate window: a preemptive
	// condemnation evacuates residents, and that traffic is a real foreground
	// relocation, not scrub overhead.
	s.applyHealthChangesLocked(changes, true)
	if err != nil {
		return rep, err
	}
	s.probeQuarantinedLocked()
	return rep, nil
}

// probeQuarantinedLocked is the release half of the health lifecycle: each
// quarantined column is exercised with a test pattern (write the bit-inverse
// of the golden content, read it back, restore golden, read that back), one
// probe per column per scrub pass. A column that accumulates the policy's
// streak of clean probes is released into probation. Probe traffic is
// compensated out of the port accounting as Stats.ProbeSeconds; probes only
// touch quarantined frames, which carry no live design.
func (s *System) probeQuarantinedLocked() {
	if s.health.Policy().ProbesToRelease <= 0 {
		return
	}
	majors := s.health.QuarantinedMajors()
	if len(majors) == 0 {
		return
	}
	var changes []*health.Change
	for _, major := range majors {
		col, ok := s.dev.ColumnByMajor(major)
		if !ok {
			continue
		}
		clean := true
		_ = s.compensatePort(&s.engine.Stats.ProbeSeconds, func() error {
			for minor := 0; minor < col.Frames; minor++ {
				fa := fabric.FrameAddr{Major: major, Minor: minor}
				golden, ok := s.engine.Tool.Shadow().Frame(fa)
				if !ok {
					continue
				}
				if !s.probeFrameLocked(fa, golden) {
					clean = false
					s.engine.Stats.ProbeFailures++
					s.publish(Event{Kind: ProbeFailed, Frame: fa})
					return nil // one bad frame fails the whole column probe
				}
			}
			return nil
		})
		s.engine.Stats.Probes++
		changes = append(changes, s.health.NoteProbe(major, clean))
	}
	// Probe writes bumped the device generation behind the frame tool's back
	// (they bypass staging on purpose: quarantined frames are masked out of
	// delivery). Reconcile before anything journals or checkpoints, so the
	// shadow's view and any crash-consistency mirror re-confirm the golden
	// content the probes restored.
	_ = s.engine.Tool.Sync()
	s.applyHealthChangesLocked(changes, true)
}

// probeFrameLocked runs the pattern test on one frame and reports whether it
// passed. The device model itself always accepts direct writes, so on any
// failure after the pattern write the golden content is restored through the
// device (bypassing the faulty transport) — the probe must never leave its
// test pattern behind where a later Sync would absorb it.
func (s *System) probeFrameLocked(fa fabric.FrameAddr, golden []uint32) bool {
	pattern := make([]uint32, len(golden))
	for i, w := range golden {
		pattern[i] = ^w
	}
	restore := func() { _ = s.dev.WriteFrame(fa.Major, fa.Minor, golden) }
	// A failed write delivers nothing: the device still holds golden.
	if err := s.port.WriteUpdates([]bitstream.FrameUpdate{{Addr: fa, Data: pattern}}); err != nil {
		return false
	}
	got, err := s.port.ReadFrame(fa)
	if err != nil || !frameWordsEqual(got, pattern) {
		restore()
		return false
	}
	if err := s.port.WriteUpdates([]bitstream.FrameUpdate{{Addr: fa, Data: golden}}); err != nil {
		restore()
		return false
	}
	got, err = s.port.ReadFrame(fa)
	if err != nil || !frameWordsEqual(got, golden) {
		// The restore write itself succeeded; only the readback lies.
		return false
	}
	return true
}

// scrubAddrsLocked returns the device's full frame address space in address
// order, built once and cached (the geometry never changes).
func (s *System) scrubAddrsLocked() []fabric.FrameAddr {
	if s.scrubAddrs != nil {
		return s.scrubAddrs
	}
	var addrs []fabric.FrameAddr
	for major := 0; major < s.dev.NumMajors(); major++ {
		col, ok := s.dev.ColumnByMajor(major)
		if !ok {
			continue
		}
		for minor := 0; minor < col.Frames; minor++ {
			addrs = append(addrs, fabric.FrameAddr{Major: major, Minor: minor})
		}
	}
	sort.Slice(addrs, func(i, j int) bool {
		if addrs[i].Major != addrs[j].Major {
			return addrs[i].Major < addrs[j].Major
		}
		return addrs[i].Minor < addrs[j].Minor
	})
	s.scrubAddrs = addrs
	return addrs
}

// startScrubber launches the background scrub goroutine WithScrubber asked
// for. Idempotent-safe at construction time only (called once from New or
// Recover, after the system is fully built).
func (s *System) startScrubber(interval time.Duration, batch int) {
	if interval <= 0 {
		return
	}
	if batch <= 0 {
		batch = 32
	}
	s.scrubStop = make(chan struct{})
	s.scrubDone = make(chan struct{})
	go func() {
		defer close(s.scrubDone)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-s.scrubStop:
				return
			case <-t.C:
				// Errors are not fatal to the scrubber: a pass that trips on
				// a transport fault simply retries next tick (a persistent
				// one is the retry ladder's business, on the foreground path).
				_, _ = s.Scrub(batch)
			}
		}
	}()
}

// Close stops the background scrubber (if one was started), waits for it to
// exit, and drains the in-flight background configuration stream — including
// any awaiter goroutine a stall watchdog abandoned — so no goroutine the
// system spawned outlives it. Safe to call on a system built without
// WithScrubber, and safe to call more than once. It does not close the
// journal — the journal's file lifetime follows the process, as before.
func (s *System) Close() error {
	s.closeOnce.Do(func() {
		if s.scrubStop != nil {
			close(s.scrubStop)
			<-s.scrubDone
		}
		s.mu.Lock()
		s.engine.Tool.HarvestPending()
		s.mu.Unlock()
	})
	return nil
}
