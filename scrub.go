package rlm

import (
	"sort"
	"time"

	"repro/internal/bitstream"
	"repro/internal/fabric"
)

// This file is the configuration-memory scrubber: a maintenance pass that
// readback-compares frames against the golden shadow content — the same bits
// the journal's dirty-frame digests attest — and rewrites any frame that
// silently diverged (the single-event-upset model: a bit flips in the
// configuration memory with no transport error to announce it). The journal
// digests catch corruption of an operation's own frames at its commit
// boundary; the scrubber is the steady-state complement, sweeping the whole
// device round-robin between operations.

// ScrubReport summarises one scrub pass.
type ScrubReport struct {
	// FramesChecked counts the frames read back and compared this pass.
	FramesChecked int
	// Repairs lists the frames found diverging and rewritten.
	Repairs []fabric.FrameAddr
	// Skipped reports that the pass yielded without checking anything
	// because a foreground operation's stream was in flight (the frame-set
	// conflict gate: the scrubber must not race the port with a live burst).
	Skipped bool
}

// Scrub runs one scrub pass over at most maxFrames frames (0 sweeps the
// whole device), resuming round-robin where the previous pass stopped. The
// pass yields — returns with Skipped set — when a background stream is in
// flight. Scrub transport traffic is compensated out of the port's cycle
// accounting and reported as Stats.ScrubSeconds, so foreground accounting
// stays bit-identical to an unscrubbed twin's.
func (s *System) Scrub(maxFrames int) (*ScrubReport, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.scrubLocked(maxFrames)
}

func (s *System) scrubLocked(maxFrames int) (*ScrubReport, error) {
	rep := &ScrubReport{}
	if s.engine.Tool.StreamInFlight() {
		rep.Skipped = true
		return rep, nil
	}
	addrs := s.scrubAddrsLocked()
	if len(addrs) == 0 {
		return rep, nil
	}
	if maxFrames <= 0 || maxFrames > len(addrs) {
		maxFrames = len(addrs)
	}
	err := s.compensatePort(&s.engine.Stats.ScrubSeconds, func() error {
		for i := 0; i < maxFrames; i++ {
			addr := addrs[s.scrubCursor%len(addrs)]
			s.scrubCursor = (s.scrubCursor + 1) % len(addrs)
			if s.quarantined[addr] {
				continue
			}
			want, ok := s.engine.Tool.Shadow().Frame(addr)
			if !ok {
				continue
			}
			got, err := s.port.ReadFrame(addr)
			if err != nil {
				return err
			}
			rep.FramesChecked++
			s.engine.Stats.ScrubChecked++
			if frameWordsEqual(got, want) {
				continue
			}
			if err := s.port.WriteUpdates([]bitstream.FrameUpdate{{Addr: addr, Data: want}}); err != nil {
				return err
			}
			rep.Repairs = append(rep.Repairs, addr)
			s.engine.Stats.ScrubRepairs++
			s.publish(Event{Kind: ScrubRepair, Frame: addr})
		}
		return nil
	})
	return rep, err
}

// scrubAddrsLocked returns the device's full frame address space in address
// order, built once and cached (the geometry never changes).
func (s *System) scrubAddrsLocked() []fabric.FrameAddr {
	if s.scrubAddrs != nil {
		return s.scrubAddrs
	}
	var addrs []fabric.FrameAddr
	for major := 0; major < s.dev.NumMajors(); major++ {
		col, ok := s.dev.ColumnByMajor(major)
		if !ok {
			continue
		}
		for minor := 0; minor < col.Frames; minor++ {
			addrs = append(addrs, fabric.FrameAddr{Major: major, Minor: minor})
		}
	}
	sort.Slice(addrs, func(i, j int) bool {
		if addrs[i].Major != addrs[j].Major {
			return addrs[i].Major < addrs[j].Major
		}
		return addrs[i].Minor < addrs[j].Minor
	})
	s.scrubAddrs = addrs
	return addrs
}

// startScrubber launches the background scrub goroutine WithScrubber asked
// for. Idempotent-safe at construction time only (called once from New or
// Recover, after the system is fully built).
func (s *System) startScrubber(interval time.Duration, batch int) {
	if interval <= 0 {
		return
	}
	if batch <= 0 {
		batch = 32
	}
	s.scrubStop = make(chan struct{})
	s.scrubDone = make(chan struct{})
	go func() {
		defer close(s.scrubDone)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-s.scrubStop:
				return
			case <-t.C:
				// Errors are not fatal to the scrubber: a pass that trips on
				// a transport fault simply retries next tick (a persistent
				// one is the retry ladder's business, on the foreground path).
				_, _ = s.Scrub(batch)
			}
		}
	}()
}

// Close stops the background scrubber (if one was started) and waits for it
// to exit. Safe to call on a system built without WithScrubber, and safe to
// call more than once. It does not close the journal — the journal's file
// lifetime follows the process, as before.
func (s *System) Close() error {
	s.closeOnce.Do(func() {
		if s.scrubStop != nil {
			close(s.scrubStop)
			<-s.scrubDone
		}
	})
	return nil
}
