// Package rlm (run-time logic management) is the public facade of the
// reproduction of Gericota et al., "Run-Time Management of Logic Resources
// on Reconfigurable Systems" (DATE 2003): a complete software model of a
// Virtex-class partially reconfigurable FPGA together with the paper's
// contribution — dynamic relocation of active CLBs and routing, on-line
// defragmentation, and the rearrangement-and-programming tool built on a
// JBits-style bitstream API over a Boundary-Scan configuration port.
//
// A System owns the device, its configuration port, the relocation engine
// and the area book-keeping. Designs (technology-mapped netlists) are
// loaded into rectangular regions, run cycle-accurately, and can be moved
// — whole or CLB by CLB — while they keep running.
//
// The facade is transactional: every mutating operation validates against
// the area book-keeping before a single frame is streamed, and rolls the
// device back to a pre-operation configuration checkpoint (the tool's
// recovery shadow) if the frame stream fails midway. Multi-operation
// transactions are built with System.Plan, on-line defragmentation with
// System.Defragment, and progress is observable through System.Subscribe.
// A System is safe for concurrent use: readers (Fragmentation, Stats,
// Designs, ...) may run while a relocation streams.
package rlm

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/area"
	"repro/internal/bitstream"
	"repro/internal/fabric"
	"repro/internal/health"
	"repro/internal/journal"
	"repro/internal/jtag"
	"repro/internal/netlist"
	"repro/internal/place"
	"repro/internal/relocate"
	"repro/internal/route"
	"repro/internal/template"
)

// System is the live reconfigurable platform: device, configuration port,
// relocation engine, and area management.
type System struct {
	mu sync.RWMutex

	dev    *fabric.Device
	ctrl   *bitstream.Controller
	port   bitstream.Port
	engine *relocate.Engine
	area   *area.Manager

	router  *route.Router
	pads    map[fabric.PadRef]bool
	designs map[string]*place.Design
	regions map[string]int // design name -> area allocation id

	// tmpl is the content-addressed template cache (nil = disabled): cold
	// loads capture pre-routed frame images, warm loads splice them back,
	// and relocations of cached designs go by address translation.
	tmpl *template.Store

	// cps is the stack of armed checkpoints; mutating operations journal
	// inverse host-book-keeping ops into each of them (first-touch, so a
	// checkpoint costs what the operation touches, not what is loaded).
	cps       []*checkpoint
	restoring bool // suppress journalling while a rollback replays the journal

	// jrnl is the durable operation journal (nil = journaling off); see
	// journal.go for the write-ahead protocol and recover.go for the crash
	// reconciliation path.
	jrnl *sysJournal

	// retry, when non-nil, arms the transport fault-tolerance ladder (see
	// fault.go): harvest faults re-deliver from the shadow instead of
	// immediately rolling the operation back.
	retry *RetryPolicy
	// health is the per-column health lifecycle tracker (see health.go).
	// Always non-nil; the zero policy keeps every automatic transition off,
	// reproducing the legacy permanent-quarantine behaviour.
	health *health.Tracker
	// quarantined is the set of configuration frames condemned after
	// persistent write failures — masked out of port delivery and (for CLB
	// columns) out of the area manager's logic space until the health
	// lifecycle's probe/release cycle (if armed) revives the column.
	quarantined map[fabric.FrameAddr]bool
	// pendingBad holds frames the retry ladder's final verify condemned,
	// consumed by quarantineSweepLocked after the failed op rolls back.
	pendingBad []fabric.FrameAddr

	// Scrubber state (see scrub.go): the cached frame address space, the
	// round-robin cursor, and the background goroutine's lifecycle.
	scrubAddrs  []fabric.FrameAddr
	scrubCursor int
	scrubStop   chan struct{}
	scrubDone   chan struct{}
	closeOnce   sync.Once
	// onDelivered observes every frame delivery (and rollback recovery
	// stream) — the crash-torture harness mirrors the fabric from it.
	onDelivered func([]bitstream.FrameUpdate)
	// crashHook, when set, fires at every journal/flush boundary with the
	// boundary's name; the harness snapshots journal prefix and mirror
	// there to simulate a crash.
	crashHook func(stage string)

	subMu   sync.Mutex
	subs    map[int]chan Event
	nextSub int
}

// New builds a system from functional options, e.g.
//
//	sys, err := rlm.New(rlm.WithDevice(fabric.XCV50), rlm.WithPort(rlm.BoundaryScan))
func New(opts ...Option) (*System, error) {
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.device.Rows == 0 {
		cfg.device = fabric.XCV200
	}
	dev := fabric.NewDevice(cfg.device)
	sys, err := newSystem(&cfg, dev)
	if err != nil {
		return nil, err
	}
	if cfg.journalPath != "" {
		j, err := journal.Create(cfg.journalPath)
		if err != nil {
			return nil, fmt.Errorf("rlm: opening journal: %w", err)
		}
		sys.attachJournal(j, 0)
		sys.jrnl.path = cfg.journalPath
		sys.jrnl.rotate = cfg.journalRot
		if err := sys.journalInit(&cfg); err != nil {
			j.Close()
			return nil, fmt.Errorf("rlm: initialising journal: %w", err)
		}
	}
	sys.startScrubber(cfg.scrubEvery, cfg.scrubBatch)
	return sys, nil
}

// newSystem builds a system over an existing device — New's body, shared
// with the journal-recovery constructor which brings its own device.
func newSystem(cfg *config, dev *fabric.Device) (*System, error) {
	ctrl := bitstream.NewController(dev)
	var port bitstream.Port
	switch {
	case cfg.portFactory != nil:
		port = cfg.portFactory(ctrl)
	case cfg.port == SelectMAP:
		hz := cfg.clockHz
		if hz == 0 {
			hz = 50e6
		}
		port = bitstream.NewParallelPort(ctrl, hz)
	default:
		hz := cfg.clockHz
		if hz == 0 {
			hz = jtag.DefaultTCKHz
		}
		port = jtag.NewPort(ctrl, hz)
	}
	if cfg.portWidth != 0 {
		switch cfg.portWidth {
		case 8, 16, 32:
		default:
			return nil, fmt.Errorf("rlm: WithPortWidth(%d): width must be 8, 16 or 32", cfg.portWidth)
		}
		pp, ok := port.(*bitstream.ParallelPort)
		if !ok {
			return nil, fmt.Errorf("rlm: WithPortWidth requires the SelectMAP port")
		}
		pp.WidthBits = cfg.portWidth
	}
	if cfg.compress {
		tp, ok := port.(bitstream.CompressPort)
		if !ok {
			return nil, fmt.Errorf("rlm: WithCompression: port %q does not support compressed streams", port.Name())
		}
		tp.SetCompress(true)
	}
	eng, err := relocate.NewEngine(dev, port)
	if err != nil {
		return nil, err
	}
	if cfg.appClockHz > 0 {
		eng.AppClockHz = cfg.appClockHz
	}
	eng.Tool.Serial = cfg.serialCommit
	eng.Tool.StallTimeout = cfg.stallTimeout
	var tmpl *template.Store
	if cfg.tmplPolicy != nil {
		tmpl = template.NewStore(*cfg.tmplPolicy)
	}
	sys := &System{
		dev:     dev,
		ctrl:    ctrl,
		port:    port,
		engine:  eng,
		area:    area.NewManagerFor(dev),
		router:  route.NewRouter(dev),
		pads:    map[fabric.PadRef]bool{},
		designs: map[string]*place.Design{},
		regions: map[string]int{},
		tmpl:    tmpl,
		retry:   cfg.retry,
		subs:    map[int]chan Event{},
	}
	hpol := health.Policy{}
	if cfg.health != nil {
		hpol = *cfg.health
	}
	sys.health = health.NewTracker(hpol)
	sys.armRetryLadder()
	return sys, nil
}

// Device returns the simulated device. The returned object is shared with
// the engine and any running simulations; treat it as read-mostly.
func (s *System) Device() *fabric.Device { return s.dev }

// Controller returns the configuration controller behind the port.
func (s *System) Controller() *bitstream.Controller { return s.ctrl }

// Port returns the configuration port.
func (s *System) Port() bitstream.Port { return s.port }

// Engine returns the relocation engine — the designer-level escape hatch
// for cell-grain operations (RelocateCell, Clock hookup, ablation knobs).
// Engine calls bypass the System's locking and book-keeping; prefer the
// System methods for anything the facade covers.
func (s *System) Engine() *relocate.Engine { return s.engine }

// Area returns the area manager (logic-space book-keeping). It is not
// synchronised with concurrent System mutations; for a consistent reading
// use Fragmentation, Utilisation or Map.
func (s *System) Area() *area.Manager { return s.area }

// Designs lists loaded design names.
func (s *System) Designs() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.designs))
	for name := range s.designs {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Design returns a loaded design.
func (s *System) Design(name string) (*place.Design, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	d, ok := s.designs[name]
	return d, ok
}

// Region returns the rectangle a design currently occupies.
func (s *System) Region(name string) (fabric.Rect, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	d, ok := s.designs[name]
	if !ok {
		return fabric.Rect{}, false
	}
	return d.Region, true
}

// Allocation returns the area-manager allocation id backing a design's
// region (rearrangement plans are expressed in allocation ids).
func (s *System) Allocation(name string) (int, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	id, ok := s.regions[name]
	return id, ok
}

// Fragmentation reports the current logic-space fragmentation.
func (s *System) Fragmentation() float64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.area.Fragmentation()
}

// Utilisation reports the fraction of CLBs allocated.
func (s *System) Utilisation() float64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.area.Utilisation()
}

// Map renders the occupancy grid ('.' free, letters by allocation).
func (s *System) Map() string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.area.String()
}

// Stats returns the relocation engine statistics.
func (s *System) Stats() relocate.Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.engine.Stats
}

// Traffic returns the port's configuration write-traffic counters (words
// actually shifted vs the uncompressed equivalent). Zero-valued on a custom
// port that does not implement bitstream.CompressPort.
func (s *System) Traffic() bitstream.Traffic {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if tp, ok := s.port.(bitstream.CompressPort); ok {
		return tp.Traffic()
	}
	return bitstream.Traffic{}
}

// Load places a netlist into a region (auto-sized when region is zero),
// registers it with the area manager and checkpoints the recovery shadow.
// On any failure the device configuration, pad bindings and book-keeping
// are restored to their pre-call state.
func (s *System) Load(nl *netlist.Netlist, region fabric.Rect) (*place.Design, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.loadLocked(nl, region)
}

func (s *System) loadLocked(nl *netlist.Netlist, region fabric.Rect) (*place.Design, error) {
	region, err := s.checkLoadLocked(nl, region)
	if err != nil {
		return nil, err
	}
	// Checkpoint so a partial placement (pads and cells are written before
	// routing can still fail) never leaks onto the fabric.
	snap, err := s.checkpointLocked()
	if err != nil {
		return nil, err
	}
	defer s.releaseCheckpointLocked(snap)
	if err := s.journalBeginLocked(snap, "load", nl.Name, region, ""); err != nil {
		return nil, err
	}
	if s.tmpl != nil {
		d, handled, err := s.tryWarmLoadLocked(nl, region)
		if err != nil {
			s.restoreLocked(snap, err)
			s.journalAbortLocked()
			return nil, err
		}
		if handled {
			if err := s.finishLoadLocked(snap); err != nil {
				s.restoreLocked(snap, err)
				s.journalAbortLocked()
				s.quarantineSweepLocked()
				return nil, err
			}
			return d, nil
		}
		// Cache miss (or clean pre-write fallback): cold path below.
	}
	d, err := s.loadRaw(nl, region)
	if err != nil {
		s.restoreLocked(snap, err)
		s.journalAbortLocked()
		s.quarantineSweepLocked()
		return nil, err
	}
	if s.tmpl != nil {
		s.captureTemplateLocked(d)
	}
	if err := s.finishLoadLocked(snap); err != nil {
		s.restoreLocked(snap, err)
		s.journalAbortLocked()
		s.quarantineSweepLocked()
		return nil, err
	}
	return d, nil
}

// checkLoadLocked validates a load and resolves an auto-sized region,
// touching nothing.
func (s *System) checkLoadLocked(nl *netlist.Netlist, region fabric.Rect) (fabric.Rect, error) {
	if _, dup := s.designs[nl.Name]; dup {
		return region, fmt.Errorf("%w: %q", ErrDuplicateDesign, nl.Name)
	}
	if err := s.admitLocked(); err != nil {
		return region, err
	}
	if region.Area() == 0 {
		var ok bool
		region, ok = s.findRegionLocked(nl)
		if !ok {
			return region, fmt.Errorf("%w: auto-sizing %q", ErrNoSpace, nl.Name)
		}
	} else if !s.area.Fits(region) {
		// Fail fast before anything touches the fabric; name the cause —
		// condemned logic space is permanent, a busy region is not.
		if s.area.QuarantineOverlaps(region) {
			return region, fmt.Errorf("%w: %v for %q", ErrQuarantined, region, nl.Name)
		}
		return region, fmt.Errorf("%w: %v for %q", ErrRegionBusy, region, nl.Name)
	}
	return region, nil
}

// loadRaw performs the placement and book-keeping; the caller has validated
// the load (region is concrete and free) and owns rollback. Any in-flight
// stream of an earlier operation drains first: placement shares the
// configuration path with the relocation streams (the development tool of
// the paper feeds the same port), and a pending transport failure must
// surface before new work piles on top of it.
func (s *System) loadRaw(nl *netlist.Netlist, region fabric.Rect) (*place.Design, error) {
	if err := s.engine.Tool.AwaitStream(); err != nil {
		return nil, err
	}
	// With the template cache on, route region-contained first so the result
	// is capturable; containment is strictly harder, so a failure falls back
	// to the unconstrained placement (which simply won't be cached). The
	// failed attempt wrote the same cells and pads the retry rewrites
	// identically, and no PIPs: routing fails before route.Apply.
	contain := s.tmpl != nil
	d, err := place.Place(s.dev, nl, place.Options{
		Region:      region,
		ReservePads: s.pads, // Place reserves into this map directly
		Router:      s.router,
		Contain:     contain,
	})
	if err != nil && contain {
		s.rebuildRouterLocked()
		d, err = place.Place(s.dev, nl, place.Options{
			Region:      region,
			ReservePads: s.pads,
			Router:      s.router,
		})
	}
	if err != nil {
		return nil, err // Place released its pad reservations itself
	}
	// Journal the inverse before anything else can fail: the pads are
	// reserved from here on, and the design may be half-registered.
	name := nl.Name
	s.noteUndoLocked(func(s *System) {
		delete(s.designs, name)
		delete(s.regions, name)
		for _, p := range d.PadOf {
			delete(s.pads, p)
		}
	})
	id, err := s.area.AllocateAt(region)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrRegionBusy, err)
	}
	s.designs[nl.Name] = d
	s.regions[nl.Name] = id
	// Checkpoint the recovery shadow: the tool now holds a complete copy
	// of the configuration including the new design.
	if err := s.engine.Tool.Sync(); err != nil {
		return nil, err
	}
	s.publish(Event{Kind: DesignLoaded, Design: nl.Name, Region: region})
	return d, nil
}

// findRegionLocked auto-sizes and places a region using the area manager.
func (s *System) findRegionLocked(nl *netlist.Netlist) (fabric.Rect, bool) {
	proto, err := place.AutoRegion(s.dev, nl, 0, 0, 0.4)
	if err != nil {
		return fabric.Rect{}, false
	}
	return s.area.FindPlacement(proto.H, proto.W, area.BestFit)
}

// Unload decommissions a design: all its routing and cells are released
// through the configuration port, its pads disabled, its region freed. A
// mid-stream engine failure rolls the device and book-keeping back to the
// pre-call state.
func (s *System) Unload(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.designs[name]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknownDesign, name)
	}
	snap, err := s.checkpointLocked()
	if err != nil {
		return err
	}
	defer s.releaseCheckpointLocked(snap)
	if err := s.journalBeginLocked(snap, "unload", name, s.designs[name].Region, ""); err != nil {
		return err
	}
	err = s.unloadRaw(name)
	if err == nil {
		// Harvest the batched stream before the checkpoint closes: a
		// transport failure of the background shift-out belongs to this
		// operation — the retry ladder engages here when armed.
		err = s.finishOpLocked(snap)
	}
	if err != nil {
		s.restoreLocked(snap, err)
		s.journalAbortLocked()
		s.quarantineSweepLocked()
		return fmt.Errorf("rlm: unloading %q: %w", name, err)
	}
	return nil
}

// unloadRaw performs the unload without checkpointing; the caller owns
// rollback. The router and area book-keeping are consistent on success. The
// engine writes run in one coalescing batch, so the whole decommission
// streams as a single partial bitstream instead of one per frame.
func (s *System) unloadRaw(name string) error {
	// The unload never rewrites the design's tables, so the inverse is just
	// re-registering the same object (the configuration side is the frame
	// snapshot's business).
	{
		d, id := s.designs[name], s.regions[name]
		s.noteUndoLocked(func(s *System) {
			s.designs[name] = d
			s.regions[name] = id
			for _, p := range d.PadOf {
				s.pads[p] = true
			}
		})
	}
	if err := s.unloadFabricBatched(name); err != nil {
		return err
	}
	d := s.designs[name]
	for _, p := range d.PadOf {
		delete(s.pads, p)
	}
	if err := s.area.Free(s.regions[name]); err != nil {
		return err
	}
	region := d.Region
	delete(s.designs, name)
	delete(s.regions, name)
	// The shared router's occupancy is stale; rebuild it.
	s.rebuildRouterLocked()
	s.publish(Event{Kind: DesignUnloaded, Design: name, Region: region})
	return nil
}

// unloadFabricBatched releases a design's routing, cells and pads through
// the configuration port as one batched stream.
func (s *System) unloadFabricBatched(name string) error {
	d := s.designs[name]
	return s.engine.Tool.InBatch(func() error {
		// Release routing from every signal source (cell outputs, input
		// pads).
		srcs := make([]fabric.NodeID, 0, len(d.SourceOf))
		for _, src := range d.SourceOf {
			srcs = append(srcs, src)
		}
		sort.Slice(srcs, func(i, j int) bool { return srcs[i] < srcs[j] })
		for _, src := range srcs {
			if err := s.engine.ReleaseTree(src); err != nil {
				return err
			}
		}
		// Clear cells.
		for _, ref := range d.OccupiedCells() {
			if err := s.engine.ClearCell(ref); err != nil {
				return err
			}
		}
		// Disable pads.
		for _, p := range d.PadOf {
			if err := s.engine.ClearPad(p); err != nil {
				return err
			}
		}
		return nil
	})
}

// rebuildRouterLocked rebuilds the shared router from the configuration
// memory itself — the ground truth — so occupancy never goes stale across
// relocations (per-design net lists do: they record the original routes).
// The router object is reused: Reset is O(1) and keeps the fanout cache.
func (s *System) rebuildRouterLocked() {
	s.router.Reset()
	s.router.Block(s.engine.OccupiedNodes()...)
}

// Move relocates a whole design to a new region of identical shape, CLB by
// CLB, while it runs. Overlapping source/target regions are handled by
// ordering the moves along the displacement vector (the paper's staged
// relocation). The target must be free in the area book-keeping before any
// frame is streamed; a mid-stream failure rolls everything back.
func (s *System) Move(name string, to fabric.Rect) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.moveLocked(name, to)
}

func (s *System) moveLocked(name string, to fabric.Rect) error {
	if err := s.checkMoveLocked(name, to); err != nil {
		return err
	}
	snap, err := s.checkpointLocked()
	if err != nil {
		return err
	}
	defer s.releaseCheckpointLocked(snap)
	if err := s.journalBeginLocked(snap, "move", name, to, ""); err != nil {
		return err
	}
	err = s.moveRaw(name, to)
	if err == nil {
		err = s.finishOpLocked(snap) // harvest before the checkpoint closes
	}
	if err != nil {
		s.restoreLocked(snap, err)
		s.journalAbortLocked()
		s.quarantineSweepLocked()
		return err
	}
	return nil
}

// checkMoveLocked validates a move without touching anything.
func (s *System) checkMoveLocked(name string, to fabric.Rect) error {
	d, ok := s.designs[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownDesign, name)
	}
	if to.H != d.Region.H || to.W != d.Region.W {
		return fmt.Errorf("%w: target %v, design %v", ErrRegionMismatch, to, d.Region)
	}
	if !s.area.CanMove(s.regions[name], to) {
		if s.area.QuarantineOverlaps(to) {
			return fmt.Errorf("%w: %v", ErrQuarantined, to)
		}
		return fmt.Errorf("%w: %v", ErrRegionBusy, to)
	}
	return nil
}

// moveRaw performs the physical relocation and book-keeping; the caller has
// validated the move and owns rollback. With the template cache enabled and
// a translation-safe image available, the move is served by address
// translation (frame image re-targeted plus a boundary patch); otherwise it
// falls through to the paper's cell-by-cell replication below.
func (s *System) moveRaw(name string, to fabric.Rect) error {
	if s.tmpl != nil {
		handled, err := s.tryTranslateMoveLocked(name, to)
		if err != nil {
			return err
		}
		if handled {
			return nil
		}
	}
	d := s.designs[name]
	// First-touch clone of the tables the relocation rewrites (Region,
	// CellOf, SourceOf) into every armed checkpoint.
	s.noteDesignLocked(d)
	from := d.Region
	coords := from.Coords()
	// Order so that targets are vacated before they are needed.
	sort.Slice(coords, func(i, j int) bool {
		a, b := coords[i], coords[j]
		if to.Row != from.Row {
			if to.Row < from.Row { // moving up: top rows first
				if a.Row != b.Row {
					return a.Row < b.Row
				}
			} else {
				if a.Row != b.Row {
					return a.Row > b.Row
				}
			}
		}
		if to.Col < from.Col {
			return a.Col < b.Col
		}
		return a.Col > b.Col
	})
	dr, dc := to.Row-from.Row, to.Col-from.Col
	for _, c := range coords {
		occupied := false
		for cell := 0; cell < fabric.CellsPerCLB; cell++ {
			if s.dev.ReadCell(fabric.CellRef{Coord: c, Cell: cell}).InUse() {
				occupied = true
				break
			}
		}
		if !occupied {
			continue
		}
		dst := fabric.Coord{Row: c.Row + dr, Col: c.Col + dc}
		if _, err := s.engine.RelocateCLB(c, dst); err != nil {
			return fmt.Errorf("rlm: moving %s CLB %v: %w", name, c, err)
		}
		for cell := 0; cell < fabric.CellsPerCLB; cell++ {
			d.Rebind(fabric.CellRef{Coord: c, Cell: cell}, fabric.CellRef{Coord: dst, Cell: cell})
		}
		s.publish(Event{Kind: CLBRelocated, Design: name, CLBFrom: c, CLBTo: dst})
	}
	d.Region = to
	if err := s.area.Move(s.regions[name], to); err != nil {
		return err
	}
	s.rebuildRouterLocked()
	s.publish(Event{Kind: DesignMoved, Design: name, From: from, Region: to})
	return nil
}

// MoveStaged relocates a design like Move, but bounds the displacement of
// each stage to maxStep CLBs (Chebyshev distance), hopping through
// intermediate regions. The paper: "the relocation of a complete function
// may take place in several stages, to avoid an excessive increase in path
// delays during the relocation interval". The whole hop corridor is
// validated against the area book-keeping before any frame is streamed;
// every intermediate region must be free.
func (s *System) MoveStaged(name string, to fabric.Rect, maxStep int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.moveStagedLocked(name, to, maxStep)
}

func (s *System) moveStagedLocked(name string, to fabric.Rect, maxStep int) error {
	d, ok := s.designs[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownDesign, name)
	}
	if to.H != d.Region.H || to.W != d.Region.W {
		return fmt.Errorf("%w: target %v, design %v", ErrRegionMismatch, to, d.Region)
	}
	hops, err := s.stagedHopsLocked(name, d.Region, to, maxStep)
	if err != nil {
		return err
	}
	snap, err := s.checkpointLocked()
	if err != nil {
		return err
	}
	defer s.releaseCheckpointLocked(snap)
	if err := s.journalBeginLocked(snap, "move-staged", name, to, fmt.Sprintf("maxStep=%d", maxStep)); err != nil {
		return err
	}
	for _, next := range hops {
		if err := s.moveRaw(name, next); err != nil {
			err = fmt.Errorf("rlm: staged move via %v: %w", next, err)
			s.restoreLocked(snap, err)
			s.journalAbortLocked()
			return err
		}
	}
	err = s.finishOpLocked(snap)
	if err != nil {
		s.restoreLocked(snap, err)
		s.journalAbortLocked()
		s.quarantineSweepLocked()
		return err
	}
	return nil
}

// stagedHopsLocked computes the hop sequence and dry-runs it on the live
// area manager under an undo-log mark (rewound before returning), so an
// occupied intermediate region is rejected before any frame is streamed —
// without cloning the grid.
func (s *System) stagedHopsLocked(name string, from, to fabric.Rect, maxStep int) (hops []fabric.Rect, err error) {
	if maxStep < 1 {
		maxStep = 1
	}
	id := s.regions[name]
	mk := s.area.Mark()
	defer func() {
		s.area.Rewind(mk)
		s.area.Release(mk)
	}()
	for cur := from; cur != to; {
		dr := clampStep(to.Row-cur.Row, maxStep)
		dc := clampStep(to.Col-cur.Col, maxStep)
		next := fabric.Rect{Row: cur.Row + dr, Col: cur.Col + dc, H: cur.H, W: cur.W}
		if err := s.area.Move(id, next); err != nil {
			return nil, fmt.Errorf("%w: staged hop %v: %v", ErrRegionBusy, next, err)
		}
		hops = append(hops, next)
		cur = next
	}
	return hops, nil
}

func clampStep(d, max int) int {
	if d > max {
		return max
	}
	if d < -max {
		return -max
	}
	return d
}

// Recover restores the device to the tool's shadow copy of the
// configuration by streaming a full recovery bitstream through the
// configuration controller — the paper's failure-recovery path ("the
// program always keeps a complete copy of the current configuration,
// enabling system recovery in case of failure").
func (s *System) Recover() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.engine.Tool.AwaitStream(); err != nil {
		return err
	}
	words := s.engine.Tool.Shadow().RecoveryBitstream()
	if err := s.ctrl.Feed(words...); err != nil {
		return err
	}
	if err := s.engine.Tool.Sync(); err != nil {
		return err
	}
	s.notifyShadowDelivered()
	s.publish(Event{Kind: Recovered})
	return nil
}

// notifyShadowDelivered reports the whole shadow configuration to the
// delivered-configuration observer after a full recovery bitstream.
func (s *System) notifyShadowDelivered() {
	if s.onDelivered == nil {
		return
	}
	var updates []bitstream.FrameUpdate
	for major := 0; major < s.dev.NumMajors(); major++ {
		col, ok := s.dev.ColumnByMajor(major)
		if !ok {
			continue
		}
		for minor := 0; minor < col.Frames; minor++ {
			addr := fabric.FrameAddr{Major: major, Minor: minor}
			if data, ok := s.engine.Tool.Shadow().Frame(addr); ok {
				updates = append(updates, bitstream.FrameUpdate{Addr: addr, Data: data})
			}
		}
	}
	s.onDelivered(updates)
}

// checkpoint captures everything a rollback needs, all of it copy-on-write:
// a frame-granular snapshot of the pre-operation configuration (pre-images
// are saved only for the frames the operation actually touches, reported by
// the engine's write path), an undo-log epoch on the area manager, and a
// journal of inverse host-book-keeping ops that mutations append first-touch
// — so opening a checkpoint copies nothing, and its eventual size is
// proportional to the designs the operation touches, not to every resident
// design. Checkpoints must be released when the operation ends, whichever
// way it ends — an unreleased snapshot would keep saving pre-images for
// every later operation.
type checkpoint struct {
	snap *bitstream.Snapshot
	mark area.Mark
	// undo holds inverse host ops, applied in reverse on restore. saved
	// tracks designs whose mutable state is already journalled, so repeated
	// relocations of one design cost one clone per checkpoint.
	undo     []func(*System)
	saved    map[*place.Design]bool
	released bool
}

// designState is the per-design mutable state a relocation rewrites.
type designState struct {
	region   fabric.Rect
	cellOf   map[netlist.ID]fabric.CellRef
	sourceOf map[netlist.ID]fabric.NodeID
}

func (s *System) checkpointLocked() (*checkpoint, error) {
	// BeginSnapshot syncs the shadow (it lags behind designer-path writes
	// until then) and opens the copy-on-write epoch; nothing is copied yet.
	snap, err := s.engine.Tool.BeginSnapshot()
	if err != nil {
		return nil, err
	}
	cp := &checkpoint{
		snap:  snap,
		mark:  s.area.Mark(),
		saved: map[*place.Design]bool{},
	}
	s.cps = append(s.cps, cp)
	return cp, nil
}

// noteUndoLocked journals an inverse host-book-keeping op into every armed
// checkpoint. No-op while a rollback is replaying journals, and no-op when
// no checkpoint is armed (engine-level callers manage their own recovery).
func (s *System) noteUndoLocked(fn func(*System)) {
	if s.restoring {
		return
	}
	for _, cp := range s.cps {
		cp.undo = append(cp.undo, fn)
	}
}

// noteDesignLocked journals a design's mutable state (region, cell and
// source tables) into each armed checkpoint that has not saved it yet. This
// is the host-side counterpart of the frame snapshot's copy-on-write: the
// tables are cloned on first touch, driven by the operations that actually
// rewrite them.
func (s *System) noteDesignLocked(d *place.Design) {
	if s.restoring {
		return
	}
	for _, cp := range s.cps {
		if cp.saved[d] {
			continue
		}
		cp.saved[d] = true
		st := designState{
			region:   d.Region,
			cellOf:   make(map[netlist.ID]fabric.CellRef, len(d.CellOf)),
			sourceOf: make(map[netlist.ID]fabric.NodeID, len(d.SourceOf)),
		}
		for id, ref := range d.CellOf {
			st.cellOf[id] = ref
		}
		for id, node := range d.SourceOf {
			st.sourceOf[id] = node
		}
		cp.undo = append(cp.undo, func(*System) {
			d.Region = st.region
			d.CellOf = st.cellOf
			d.SourceOf = st.sourceOf
		})
	}
}

// restoreLocked rolls the device and all book-keeping back to a checkpoint
// after a failed operation: the pre-images of exactly the frames the
// operation dirtied are streamed through the controller (the paper's
// recovery path, proportional to the change instead of the device), the
// area manager rewinds its undo log to the checkpoint's mark, and the host
// journal replays its inverse ops in reverse. The checkpoint itself stays
// armed — journal and dirty set emptied, mark kept — so one checkpoint can
// back several rollbacks; Defragment retries alternative plans against the
// same one. cause is reported on the event stream.
func (s *System) restoreLocked(cp *checkpoint, cause error) {
	// RecoveryWords syncs first, so designer-path writes (a half-placed
	// design) are part of the dirty set and cannot survive the rollback.
	words, wordsErr := s.engine.Tool.RecoveryWords(cp.snap)
	// The recovery stream bypasses the frame tool (it feeds the controller
	// directly), so the delivered-configuration observer is notified here
	// with the pre-images about to be restored — before CompleteRestore
	// drains the snapshot they live in.
	var restoredFrames []bitstream.FrameUpdate
	if s.onDelivered != nil && wordsErr == nil && len(words) > 0 {
		for _, addr := range cp.snap.Frames() {
			if pre, ok := cp.snap.Preimage(addr); ok {
				restoredFrames = append(restoredFrames, bitstream.FrameUpdate{Addr: addr, Data: pre})
			}
		}
	}
	var feedErr error
	if wordsErr == nil && len(words) > 0 {
		feedErr = s.ctrl.Feed(words...)
		if feedErr == nil && s.onDelivered != nil {
			s.onDelivered(restoredFrames)
		}
	}
	s.engine.Tool.CompleteRestore(cp.snap)
	if wordsErr != nil || feedErr != nil {
		// The partial recovery stream could not be built or delivered.
		// The shadow now holds the pre-operation state (CompleteRestore
		// rolled it back host-side), so stream the FULL recovery bitstream
		// — the paper's belt-and-braces path — and surface the failure on
		// the event alongside the original cause.
		recErr := wordsErr
		if recErr == nil {
			recErr = feedErr
		}
		_ = s.ctrl.Feed(s.engine.Tool.Shadow().RecoveryBitstream()...)
		_ = s.engine.Tool.Sync()
		s.notifyShadowDelivered()
		cause = fmt.Errorf("%w (partial recovery failed, full recovery streamed: %v)", cause, recErr)
	}
	// Area and host book-keeping rewind in place: Area() callers (e.g. a
	// scheduler driving this system) keep a valid pointer across rollbacks.
	s.area.Rewind(cp.mark)
	s.restoring = true
	for i := len(cp.undo) - 1; i >= 0; i-- {
		cp.undo[i](s)
	}
	s.restoring = false
	cp.undo = cp.undo[:0]
	clear(cp.saved)
	s.rebuildRouterLocked()
	s.publish(Event{Kind: Recovered, Err: cause})
}

// releaseCheckpointLocked retires a checkpoint at the end of its operation
// (success or final failure): the copy-on-write snapshot detaches and stops
// accumulating pre-images, the area mark is released, and the checkpoint
// leaves the armed stack. Safe to call after a restore — the snapshot
// survives rollbacks so retry loops can reuse it — and safe to call twice.
func (s *System) releaseCheckpointLocked(cp *checkpoint) {
	if cp.released {
		return
	}
	cp.released = true
	cp.snap.Release()
	s.area.Release(cp.mark)
	for i, c := range s.cps {
		if c == cp {
			s.cps = append(s.cps[:i], s.cps[i+1:]...)
			break
		}
	}
}
