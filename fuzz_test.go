package rlm

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/bitstream"
	"repro/internal/fabric"
	"repro/internal/faultport"
	"repro/internal/itc99"
	"repro/internal/journal"
	"repro/internal/jtag"
	"repro/internal/workload"
)

// fuzzOps caps the interpreted op stream so one fuzz execution stays cheap;
// fuzzDefrags additionally bounds full-compaction passes, the one op kind
// whose cost is a multiple of everything loaded so far.
const (
	fuzzOps     = 10
	fuzzDefrags = 2
)

// fuzzSeedFromTasks folds a workload task stream into fuzz input: the ISSUE's
// "seeded from exported traces" — arrival order, region shapes and service
// mix become the op stream the interpreter below replays.
func fuzzSeedFromTasks(sel, flk byte, tasks []workload.Task) []byte {
	out := []byte{sel, flk}
	for _, tk := range tasks {
		var op byte
		switch {
		case tk.H >= 4 && tk.W >= 4:
			op = 1 // big load
		case tk.Service > tk.Arrival:
			op = 0 // small load
		default:
			op = 2 // move
		}
		out = append(out, op, byte(tk.H*16+int(tk.Profile.Seed%8)), byte(tk.W*16+tk.ID%8))
	}
	return out
}

// FuzzFacadeOps interprets fuzz bytes as a random facade workout on a
// journaled system with an injectable flaky port and simulated crash points,
// then recovers one crash capture and checks the recovery invariants: no
// panic anywhere, only typed errors out of Recover, the recovered journal
// sealed, and the recovered book-keeping backed by device readback.
//
// Input layout: byte 0 selects the crash capture to recover, byte 1 encodes
// the fault injection (0 = healthy; low 3 bits = which op; bit 3 = fault
// class — clear for a transient stream trip with the high 4 bits as frame
// budget, set for the persistent/SEU plans with the high 4 bits picking the
// condemned column and the sub-mode), then 3 bytes per op. The op dispatch
// is code % 8: ops 0-5 are the facade workout, op 6 pulses a transport
// stall (the watchdog must absorb or surface it typed), op 7 heals the hurt
// frame and runs a scrub pass — the probe/release schedule, drawn from the
// same bytes.
func FuzzFacadeOps(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0, 0})                                  // one small load, recover first boundary
	f.Add([]byte{7, 0, 1, 0, 0, 0, 50, 100, 2, 10, 200})          // big+small load then move
	f.Add([]byte{3, 0x22, 0, 0, 0, 4, 90, 33, 5, 0, 0})           // staged move + defrag, port dies on op 2
	f.Add([]byte{11, 0x91, 1, 7, 7, 0, 60, 60, 3, 0, 0, 5, 1, 1}) // unload + defrag, late injection
	f.Add([]byte{4, 0x29, 1, 0, 0, 2, 40, 80, 0, 6, 6})           // persistent frame failure on op 1: retry, quarantine, evacuate
	f.Add([]byte{6, 0x3A, 0, 0, 0, 1, 2, 2, 2, 70, 10})           // silent SEU on op 2, scrubbed after the workout
	f.Add([]byte{2, 0, 6, 2, 0, 0, 10, 20, 6, 0, 0, 2, 30, 40})   // stall pulses around a load and a move
	f.Add([]byte{5, 0x29, 1, 0, 0, 2, 40, 80, 7, 6, 6})           // persistent fault, then heal-and-probe toward release
	f.Add(fuzzSeedFromTasks(5, 0, workload.Stream(workload.Config{Seed: 7, N: 6, MinSide: 2, MaxSide: 4})))
	f.Add(fuzzSeedFromTasks(9, 0x53, workload.Stream(workload.Config{Seed: 40, N: 8, MinSide: 2, MaxSide: 5, RAMFraction: 0.3})))

	f.Fuzz(fuzzFacadeRun)
}

// TestFuzzFacadeHeavyInput drives the fuzz body deterministically with the
// most work-amplifying input the interpreter admits — big loads, corner-to-
// corner staged moves, two bounded-step compactions — so the per-execution
// cost cap is regression-tested without -fuzz.
func TestFuzzFacadeHeavyInput(t *testing.T) {
	data := []byte{0, 0}
	data = append(data, 1, 0, 0) // b01 at 0,0
	data = append(data, 1, 1, 8) // b02 at 1,8
	for i := 0; i < 4; i++ {
		data = append(data, 4, byte(4*i), byte(255-32*i)) // staged moves
	}
	data = append(data, 5, 1, 0) // bounded-step full compactions
	data = append(data, 5, 1, 0)
	fuzzFacadeRun(t, data)
}

// fuzzFacadeRun is the fuzz body, named so deterministic tests can drive it
// with crafted inputs.
func fuzzFacadeRun(t *testing.T, data []byte) {
	{
		if len(data) < 2 {
			return
		}
		sel, flk, stream := data[0], data[1], data[2:]

		dir := t.TempDir()
		jpath := filepath.Join(dir, "op.journal")
		var flaky *faultport.Port
		sys, err := New(WithDevice(fabric.TestDevice), WithJournal(jpath),
			// The retry ladder runs inside the journal barrier, so crashes in
			// the "retry" stage are part of the capture set.
			WithRetryPolicy(RetryPolicy{MaxRetries: 2, VerifyAfter: 2}),
			// Aggressive health thresholds so short fuzz streams can reach
			// every lifecycle state; a short watchdog so op-6 stall pulses
			// surface through the ladder instead of hanging the run.
			WithHealthPolicy(HealthPolicy{Alpha: 0.5, SuspectAbove: 0.25,
				CondemnRepairs: 2, ProbesToRelease: 1, ProbationChecks: 2}),
			WithStallTimeout(time.Millisecond),
			WithPortModel(func(ctrl *bitstream.Controller) bitstream.Port {
				flaky = faultport.New(jtag.NewPort(ctrl, jtag.DefaultTCKHz), uint64(flk))
				return flaky
			}))
		if err != nil {
			t.Fatalf("new system: %v", err)
		}
		mirror := map[fabric.FrameAddr][]uint32{}
		sys.onDelivered = func(updates []bitstream.FrameUpdate) {
			for _, u := range updates {
				mirror[u.Addr] = append([]uint32(nil), u.Data...)
			}
		}
		// The journal is append-only while the system lives, so a crash
		// capture only needs the durable offset — the byte prefix is sliced
		// from one final read instead of re-reading the growing file at
		// every boundary.
		type fuzzCapture struct {
			stage  string
			seq    uint64
			off    int64
			frames map[fabric.FrameAddr][]uint32
		}
		var captures []fuzzCapture
		sys.crashHook = func(stage string) {
			if len(captures) >= 1024 {
				return
			}
			captures = append(captures, fuzzCapture{
				stage:  stage,
				seq:    sys.jrnl.seq,
				off:    sys.jrnl.j.Offset(),
				frames: cloneFrames(mirror),
			})
		}

		// Interpret the op stream. Facade errors (region busy, unknown
		// design, injected port failures, ...) are expected outcomes — the
		// invariants are "never panic" and "every crash point recovers".
		var loaded []string
		counters, defrags := 0, 0
		rows, cols := fabric.TestDevice.Rows, fabric.TestDevice.Cols
		pick := func(b byte) string { return loaded[int(b)%len(loaded)] }
		drop := func(name string) {
			for i, n := range loaded {
				if n == name {
					loaded = append(loaded[:i], loaded[i+1:]...)
					return
				}
			}
		}
		var hurtFrame fabric.FrameAddr
		persistent, seu := false, false
		for op := 0; op < fuzzOps && len(stream) >= 3; op++ {
			code, a, c := stream[0], stream[1], stream[2]
			stream = stream[3:]
			if flk != 0 && op == int(flk&7) {
				hi := int(flk >> 4)
				switch {
				case flk&0x08 == 0:
					flaky.TripAfter(hi)
				case hi%2 == 0: // persistent write failure in a derived column
					hurtFrame = fabric.FrameAddr{Major: hi / 2 % sys.Device().NumMajors(), Minor: int(a) % 2}
					flaky.FailFrames(hurtFrame)
					persistent = true
				default: // silent SEU, repaired by the scrub pass after the workout
					hurtFrame = fabric.FrameAddr{Major: hi / 2 % sys.Device().NumMajors(), Minor: 0}
					flaky.FlipBit(hurtFrame, int(c)%4, int(a)%32)
					seu = true
				}
			}
			switch code % 8 {
			case 0: // small counter load
				name := fmt.Sprintf("f%d", counters)
				counters++
				r := fabric.Rect{Row: int(a) % (rows - 1), Col: int(c) % (cols - 1), H: 2, W: 2}
				if _, err := sys.Load(mkCounter(name), r); err == nil {
					loaded = append(loaded, name)
				}
			case 1: // ITC'99 load (4x4)
				bench := "b01"
				if a&1 == 1 {
					bench = "b02"
				}
				nl, err := itc99.Get(bench)
				if err != nil {
					t.Fatal(err)
				}
				r := fabric.Rect{Row: int(a) % (rows - 3), Col: int(c) % (cols - 3), H: 4, W: 4}
				if _, err := sys.Load(nl, r); err == nil {
					loaded = append(loaded, bench)
				}
			case 2: // move
				if len(loaded) == 0 {
					continue
				}
				name := pick(a)
				from, ok := sys.Region(name)
				if !ok {
					continue
				}
				to := fabric.Rect{Row: int(a) % (rows - from.H + 1), Col: int(c) % (cols - from.W + 1), H: from.H, W: from.W}
				_ = sys.Move(name, to)
			case 3: // unload
				if len(loaded) == 0 {
					continue
				}
				name := pick(a)
				if err := sys.Unload(name); err == nil {
					drop(name)
				}
			case 4: // staged move
				if len(loaded) == 0 {
					continue
				}
				name := pick(a)
				from, ok := sys.Region(name)
				if !ok {
					continue
				}
				to := fabric.Rect{Row: int(c) % (rows - from.H + 1), Col: int(a) % (cols - from.W + 1), H: from.H, W: from.W}
				_ = sys.MoveStaged(name, to, 1+int(a%4))
			case 5: // defragment
				if defrags >= fuzzDefrags {
					continue
				}
				defrags++
				pol := DefragPolicy{}
				if a&1 == 1 {
					pol.MaxStep = 1 + int(c%3)
				}
				_, _ = sys.Defragment(pol)
			case 6: // transport stall pulse (0 disables)
				flaky.SetStall(time.Duration(a%5) * 500 * time.Microsecond)
			case 7: // heal the hurt frame and probe toward release
				flaky.HealFrames(hurtFrame)
				// The pass may trip an injected fault armed for this very
				// op — an expected outcome, like any facade error here.
				_, _ = sys.Scrub(0)
			}
			flaky.Disarm()
			if persistent {
				// Scope the persistent fault to its op, like the transient
				// trip: the quarantine it provoked (if the op tripped over
				// it) is already permanent system state.
				flaky.HealFrames(hurtFrame)
				persistent = false
			}
		}
		if seu {
			// The scrubber's half of the fault model: a silent flip must be
			// found and repaired without disturbing the journal.
			if _, err := sys.Scrub(0); err != nil {
				t.Fatalf("scrub after SEU: %v", err)
			}
		}
		if len(captures) == 0 {
			return
		}

		// Recover the selected crash capture against the mirrored fabric.
		cp := captures[int(sel)%len(captures)]
		jd, err := os.ReadFile(jpath)
		if err != nil {
			t.Fatal(err)
		}
		if int64(len(jd)) > cp.off {
			jd = jd[:cp.off]
		}
		path := filepath.Join(dir, "crash.journal")
		if err := os.WriteFile(path, jd, 0o644); err != nil {
			t.Fatal(err)
		}
		rec, rep, err := Recover(deviceFromFrames(t, cp.frames), path)
		if err != nil {
			// The capture came from a live journaled run, so recovery must
			// succeed; anything else is a real bug — but if it does fail, it
			// must at least fail typed.
			for _, want := range []error{ErrDeviceMismatch, journal.ErrMalformed, journal.ErrChecksum, journal.ErrEmpty, journal.ErrTorn} {
				if errors.Is(err, want) {
					t.Fatalf("capture %s/seq %d: recover refused its own journal: %v", cp.stage, cp.seq, err)
				}
			}
			t.Fatalf("capture %s/seq %d: recover failed untyped: %v", cp.stage, cp.seq, err)
		}
		switch cp.stage {
		case "post":
			if rep.Action == "clean" {
				t.Fatalf("capture %s/seq %d: unsealed tail recovered as clean", cp.stage, cp.seq)
			}
		case "commit", "abort":
			if rep.Action != "clean" {
				t.Fatalf("capture %s/seq %d: sealed journal recovered as %q", cp.stage, cp.seq, rep.Action)
			}
		case "begin", "undo", "delivered":
			if rep.Action != "rolled-back" {
				t.Fatalf("capture %s/seq %d: pre-post tail recovered as %q, want rolled-back", cp.stage, cp.seq, rep.Action)
			}
		}
		// Recovery seals the journal: it must rescan clean with no tail, and
		// the recovered book-keeping must be backed by device readback.
		log, err := journal.Scan(path)
		if err != nil || log.Torn {
			t.Fatalf("recovered journal rescans dirty: torn=%v err=%v", log != nil && log.Torn, err)
		}
		rs, err := journal.Replay(log)
		if err != nil {
			t.Fatalf("recovered journal replays dirty: %v", err)
		}
		if rs.Tail != nil {
			t.Fatalf("recovered journal still has an unsealed tail (op %d)", rs.Tail.Begin.Seq)
		}
		for _, name := range rec.Designs() {
			d, ok := rec.Design(name)
			if !ok {
				t.Fatalf("recovered design list names unknown design %q", name)
			}
			for id, ref := range d.CellOf {
				if !rec.Device().ReadCell(ref).InUse() {
					t.Fatalf("recovered design %q node %d claims empty cell %v", name, id, ref)
				}
			}
		}
		// The recovered system is live: one more operation must not panic
		// (region-busy failures are fine) and must leave the journal
		// replayable either way.
		_, _ = rec.Load(mkCounter("postfuzz"), fabric.Rect{Row: 0, Col: 0, H: 2, W: 2})
		if log, err := journal.Scan(path); err != nil {
			t.Fatalf("journal unscannable after post-recovery op: %v", err)
		} else if _, err := journal.Replay(log); err != nil {
			t.Fatalf("journal unreplayable after post-recovery op: %v", err)
		}
	}
}
