// Defrag demonstrates on-line defragmentation with the one-call API:
// several designs are loaded, some are retired, and System.Defragment
// relocates the survivors — while running — to consolidate the free space
// so a large incoming function fits. This is the paper's §1 scenario
// executed with real (simulated-fabric) relocations, not just book-keeping.
package main

import (
	"fmt"
	"log"

	rlm "repro"
	"repro/internal/fabric"
	"repro/internal/itc99"
	"repro/internal/netlist"
	"repro/internal/sim"
)

func main() {
	sys, err := rlm.New(rlm.WithDevice(fabric.XCV50), rlm.WithPort(rlm.BoundaryScan))
	if err != nil {
		log.Fatal(err)
	}

	// Watch the system work.
	events, cancel := sys.Subscribe(256)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for e := range events {
			fmt.Println("  |", e)
		}
	}()

	// Load four small designs in the device's corners.
	regions := []fabric.Rect{
		{Row: 0, Col: 0, H: 5, W: 5},
		{Row: 0, Col: 19, H: 5, W: 5},
		{Row: 11, Col: 0, H: 5, W: 5},
		{Row: 11, Col: 19, H: 5, W: 5},
	}
	group := sim.NewGroup(sys.Device())
	load := func(nlName string, i int, gen bool) {
		var nl *netlist.Netlist
		var err error
		if gen {
			nl = itc99.Generate(itc99.GenConfig{
				Name: nlName, Inputs: 3, Outputs: 2, FFs: 8, LUTs: 16,
				Seed: 99, Style: itc99.FreeRunning,
			})
		} else {
			nl, err = itc99.Get(nlName)
			if err != nil {
				log.Fatal(err)
			}
		}
		d, err := sys.Load(nl, regions[i])
		if err != nil {
			log.Fatalf("loading %s: %v", nlName, err)
		}
		if _, err := group.Add(d); err != nil {
			log.Fatal(err)
		}
	}
	load("b01", 0, false)
	load("b02", 1, false)
	load("b06", 2, false)
	load("dsp", 3, true)
	fmt.Printf("four designs resident:\n%s", sys.Map())
	fmt.Printf("fragmentation = %.3f, largest free rect = %v\n",
		sys.Fragmentation(), sys.Area().MaxFreeRect())

	// Keep everything running (and verified) during all that follows.
	rng := uint64(77)
	stepAll := func(cycles int) error {
		for i := 0; i < cycles; i++ {
			inputs := make([][]bool, len(group.Members))
			for k, m := range group.Members {
				in := make([]bool, len(m.Design.NL.Inputs()))
				for j := range in {
					rng = rng*6364136223846793005 + 1442695040888963407
					in[j] = rng>>40&1 == 1
				}
				inputs[k] = in
			}
			if err := group.Step(inputs); err != nil {
				return err
			}
		}
		return nil
	}
	sys.Engine().Clock = stepAll
	if err := stepAll(10); err != nil {
		log.Fatal(err)
	}

	// Two designs finish; their space frees but the rest is scattered.
	for _, retire := range []string{"b02", "b06"} {
		// Remove from the verification group first.
		var kept []*sim.Member
		for _, m := range group.Members {
			if m.Design.Name != retire {
				kept = append(kept, m)
			}
		}
		group.Members = kept
		if err := sys.Unload(retire); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("\nafter retiring b02 and b06:\n%s", sys.Map())
	fmt.Printf("fragmentation = %.3f, largest free rect = %v\n",
		sys.Fragmentation(), sys.Area().MaxFreeRect())

	// An incoming function needs an 11x20 region: free CLBs suffice but no
	// contiguous rectangle exists. One call defragments the device — the
	// planner decides which running designs to relocate and the engine
	// moves them while they keep running.
	const needH, needW = 11, 20
	if _, ok := sys.Area().FindPlacement(needH, needW, 0); ok {
		log.Fatal("scenario broken: the region already fits")
	}
	fmt.Printf("\nincoming function needs %dx%d: no contiguous space — defragmenting\n", needH, needW)

	rep, err := sys.Defragment(rlm.DefragPolicy{NeedH: needH, NeedW: needW})
	if err != nil {
		log.Fatalf("defragmenting: %v", err)
	}
	if err := stepAll(20); err != nil {
		log.Fatalf("designs disturbed by defragmentation: %v", err)
	}
	if err := group.CheckState(); err != nil {
		log.Fatalf("state corrupted: %v", err)
	}

	fmt.Printf("\nafter on-line defragmentation (%d designs relocated while running):\n%s",
		len(rep.Moves), sys.Map())
	fmt.Printf("fragmentation %.3f -> %.3f, freed %v (%d CLBs booked, %d live cells relocated)\n",
		rep.FragBefore, rep.FragAfter, rep.Freed, rep.CLBsMoved, rep.CellsRelocated)
	if rect, ok := sys.Area().FindPlacement(needH, needW, 0); ok {
		fmt.Printf("the %dx%d function now fits at %v\n", needH, needW, rect)
	} else {
		log.Fatal("defragmentation failed to open the region")
	}
	st := sys.Stats()
	fmt.Printf("\nrelocation cost: %d cells, %d frames, %.1f ms of %s traffic\n",
		st.CellsRelocated, st.FramesWritten, st.PortSeconds*1e3, sys.Port().Name())
	fmt.Println("running designs never glitched and kept all state (verified cycle by cycle)")
	cancel()
	<-done
}
