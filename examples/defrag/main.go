// Defrag demonstrates on-line defragmentation: several designs are loaded,
// some are retired, and the survivors are relocated — while running — to
// consolidate the free space so a large incoming function fits. This is the
// paper's §1 scenario executed with real (simulated-fabric) relocations,
// not just book-keeping.
package main

import (
	"fmt"
	"log"

	rlm "repro"
	"repro/internal/fabric"
	"repro/internal/itc99"
	"repro/internal/netlist"
	"repro/internal/sim"
)

func main() {
	sys, err := rlm.New(rlm.Options{Device: fabric.XCV50, Port: rlm.BoundaryScan})
	if err != nil {
		log.Fatal(err)
	}

	// Load four small designs in the device's corners.
	regions := []fabric.Rect{
		{Row: 0, Col: 0, H: 5, W: 5},
		{Row: 0, Col: 19, H: 5, W: 5},
		{Row: 11, Col: 0, H: 5, W: 5},
		{Row: 11, Col: 19, H: 5, W: 5},
	}
	group := sim.NewGroup(sys.Dev)
	load := func(nlName string, i int, gen bool) {
		var nl *netlist.Netlist
		var err error
		if gen {
			nl = itc99.Generate(itc99.GenConfig{
				Name: nlName, Inputs: 3, Outputs: 2, FFs: 8, LUTs: 16,
				Seed: 99, Style: itc99.FreeRunning,
			})
		} else {
			nl, err = itc99.Get(nlName)
			if err != nil {
				log.Fatal(err)
			}
		}
		d, err := sys.Load(nl, regions[i])
		if err != nil {
			log.Fatalf("loading %s: %v", nlName, err)
		}
		if _, err := group.Add(d); err != nil {
			log.Fatal(err)
		}
	}
	load("b01", 0, false)
	load("b02", 1, false)
	load("b06", 2, false)
	load("dsp", 3, true)
	fmt.Printf("four designs resident:\n%s", sys.Area.String())
	fmt.Printf("fragmentation = %.3f, largest free rect = %v\n",
		sys.Fragmentation(), sys.Area.MaxFreeRect())

	// Keep everything running (and verified) during all that follows.
	rng := uint64(77)
	stepAll := func(cycles int) error {
		for i := 0; i < cycles; i++ {
			inputs := make([][]bool, len(group.Members))
			for k, m := range group.Members {
				in := make([]bool, len(m.Design.NL.Inputs()))
				for j := range in {
					rng = rng*6364136223846793005 + 1442695040888963407
					in[j] = rng>>40&1 == 1
				}
				inputs[k] = in
			}
			if err := group.Step(inputs); err != nil {
				return err
			}
		}
		return nil
	}
	sys.Engine.Clock = stepAll
	if err := stepAll(10); err != nil {
		log.Fatal(err)
	}

	// Two designs finish; their space frees but the rest is scattered.
	for _, retire := range []string{"b02", "b06"} {
		// Remove from the verification group first.
		var kept []*sim.Member
		for _, m := range group.Members {
			if m.Design.Name != retire {
				kept = append(kept, m)
			}
		}
		group.Members = kept
		if err := sys.Unload(retire); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("\nafter retiring b02 and b06:\n%s", sys.Area.String())
	fmt.Printf("fragmentation = %.3f, largest free rect = %v\n",
		sys.Fragmentation(), sys.Area.MaxFreeRect())

	// An incoming function needs an 11x20 region: free CLBs suffice but no
	// contiguous rectangle exists. Defragment by moving "dsp" up beside
	// b01's row band — while both keep running.
	need := fabric.Rect{H: 11, W: 20}
	if _, ok := sys.Area.FindPlacement(need.H, need.W, 0); ok {
		log.Fatal("scenario broken: the region already fits")
	}
	fmt.Printf("\nincoming function needs %dx%d: no contiguous space — rearranging\n", need.H, need.W)

	if err := sys.Move("dsp", fabric.Rect{Row: 0, Col: 19, H: 5, W: 5}); err != nil {
		log.Fatalf("relocating dsp: %v", err)
	}
	if err := stepAll(20); err != nil {
		log.Fatalf("designs disturbed by defragmentation: %v", err)
	}
	if err := group.CheckState(); err != nil {
		log.Fatalf("state corrupted: %v", err)
	}

	fmt.Printf("\nafter on-line defragmentation (dsp relocated while running):\n%s", sys.Area.String())
	fmt.Printf("fragmentation = %.3f, largest free rect = %v\n",
		sys.Fragmentation(), sys.Area.MaxFreeRect())
	if rect, ok := sys.Area.FindPlacement(need.H, need.W, 0); ok {
		fmt.Printf("the %dx%d function now fits at %v\n", need.H, need.W, rect)
	} else {
		log.Fatal("defragmentation failed to open the region")
	}
	st := sys.Stats()
	fmt.Printf("\nrelocation cost: %d cells, %d frames, %.1f ms of %s traffic\n",
		st.CellsRelocated, st.FramesWritten, st.PortSeconds*1e3, sys.Port.Name())
	fmt.Println("running designs never glitched and kept all state (verified cycle by cycle)")
}
