// Videoswap reproduces the paper's Fig. 1 motivation at system level: a
// set-top-box-style platform where several applications (video decode,
// audio, comms) share one FPGA whose total resource demand exceeds 100% of
// the device, swapping functions in and out as their flows progress. With
// prefetch the reconfiguration interval rt hides behind execution; as
// parallelism grows the space runs out and stalls appear; on-line
// rearrangement wins them back.
package main

import (
	"fmt"

	"repro/internal/area"
	"repro/internal/rearrange"
	"repro/internal/sched"
	"repro/internal/workload"
)

func main() {
	// Three named applications with hand-written function chains, like the
	// paper's Appl.A/B/C.
	apps := []workload.App{
		{Name: "video", Functions: []workload.Fn{
			{Name: "demux", H: 6, W: 6, Duration: 40},
			{Name: "idct", H: 8, W: 8, Duration: 60},
			{Name: "motion", H: 7, W: 9, Duration: 55},
			{Name: "deblock", H: 6, W: 7, Duration: 45},
		}},
		{Name: "audio", Functions: []workload.Fn{
			{Name: "huffman", H: 4, W: 5, Duration: 30},
			{Name: "subband", H: 5, W: 5, Duration: 50},
			{Name: "window", H: 4, W: 4, Duration: 35},
			{Name: "mix", H: 5, W: 6, Duration: 40},
		}},
		{Name: "comms", Functions: []workload.Fn{
			{Name: "viterbi", H: 7, W: 7, Duration: 70},
			{Name: "crc", H: 3, W: 4, Duration: 25},
			{Name: "frame", H: 5, W: 7, Duration: 45},
			{Name: "cipher", H: 6, W: 6, Duration: 50},
		}},
	}
	total := 0
	for _, a := range apps {
		for _, f := range a.Functions {
			total += f.H * f.W
		}
	}
	const rows, cols = 14, 14
	fmt.Printf("device: %dx%d = %d CLBs; total demand of all functions: %d CLBs (%.0f%%)\n",
		rows, cols, rows*cols, total, 100*float64(total)/float64(rows*cols))
	fmt.Println("virtual hardware: the applications fit only because functions share the space over time")
	fmt.Println()

	for _, planner := range []rearrange.Planner{rearrange.None{}, rearrange.LocalRepacking{}} {
		m := sched.RunFlows(sched.FlowConfig{
			Rows: rows, Cols: cols, Policy: area.FirstFit,
			Planner: planner, PrefetchLead: 10,
		}, apps)
		fmt.Printf("planner=%-18s functions=%2d hidden=%2d stalled=%2d rearranged=%2d stall=%6.2fs util=%.2f\n",
			planner.Name(), m.FunctionsRun, m.HiddenSwaps, m.StalledSwaps,
			m.RearrangedSwaps, m.TotalStallSec, m.MeanUtilisation)
	}
	fmt.Println()
	fmt.Println("scaling parallelism (generated app mix, Fig. 1's 'degree of parallelism'):")
	fmt.Printf("%-6s %-14s %-14s\n", "apps", "stall none(s)", "stall repack(s)")
	for n := 2; n <= 7; n++ {
		gen := workload.Flows(workload.FlowConfig{
			Seed: 13, Apps: n, FnsPerApp: 6, MinSide: 4, MaxSide: 8, MeanDuration: 60,
		})
		run := func(p rearrange.Planner) sched.FlowMetrics {
			return sched.RunFlows(sched.FlowConfig{
				Rows: rows, Cols: cols, Policy: area.FirstFit,
				Planner: p, PrefetchLead: 4,
			}, gen)
		}
		a := run(rearrange.None{})
		b := run(rearrange.LocalRepacking{})
		fmt.Printf("%-6d %-14.2f %-14.2f\n", n, a.TotalStallSec, b.TotalStallSec)
	}
}
