// Quickstart: build a small sequential circuit, implement it on a simulated
// Virtex-class device, run it cycle-accurately against its golden model,
// and relocate one of its live CLBs through the Boundary-Scan port — all
// without the circuit missing a beat.
package main

import (
	"fmt"
	"log"

	rlm "repro"
	"repro/internal/fabric"
	"repro/internal/netlist"
	"repro/internal/sim"
)

func main() {
	// A 4-bit counter with enable: classic "function currently running".
	nl := netlist.New("counter4")
	en := nl.Input("en")
	carry := en
	for i := 0; i < 4; i++ {
		ff := nl.FF(fmt.Sprintf("q%d", i), netlist.None, netlist.None, false)
		x := nl.LUT(fmt.Sprintf("x%d", i), fabric.LUTXor2, ff, carry)
		nl.SetD(ff, x)
		if i < 3 {
			carry = nl.LUT(fmt.Sprintf("c%d", i), fabric.LUTAnd2, ff, carry)
		}
		nl.Output(fmt.Sprintf("o%d", i), ff)
	}

	sys, err := rlm.New(rlm.WithDevice(fabric.XCV50), rlm.WithPort(rlm.BoundaryScan))
	if err != nil {
		log.Fatal(err)
	}
	design, err := sys.Load(nl, fabric.Rect{Row: 2, Col: 2, H: 2, W: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("counter implemented in region %v of %s\n", design.Region, sys.Device().Name)

	// Run in lock-step with the golden model.
	ls, err := sim.NewLockStep(design)
	if err != nil {
		log.Fatal(err)
	}
	count := func(n int) {
		for i := 0; i < n; i++ {
			if err := ls.Step([]bool{true}); err != nil {
				log.Fatalf("cycle %d: %v", i, err)
			}
		}
	}
	count(5)
	fmt.Printf("after 5 cycles: count = %d (golden agrees every cycle)\n", readCount(ls, nl))

	// Relocate one live CLB while the counter keeps counting.
	sys.Engine().Clock = func(cycles int) error {
		for i := 0; i < cycles; i++ {
			if err := ls.Step([]bool{true}); err != nil {
				return err
			}
		}
		return nil
	}
	var from fabric.Coord
	for _, ref := range design.OccupiedCells() {
		from = ref.Coord
		break
	}
	to := fabric.Coord{Row: 10, Col: 10}
	moves, err := sys.Engine().RelocateCLB(from, to)
	if err != nil {
		log.Fatal(err)
	}
	for cell := 0; cell < fabric.CellsPerCLB; cell++ {
		design.Rebind(fabric.CellRef{Coord: from, Cell: cell}, fabric.CellRef{Coord: to, Cell: cell})
	}
	totalMs := 0.0
	frames := 0
	for _, mv := range moves {
		totalMs += mv.Seconds * 1e3
		frames += mv.Frames
	}
	fmt.Printf("relocated CLB %v -> %v while running: %d cells, %d frames, %.2f ms over %s\n",
		from, to, len(moves), frames, totalMs, sys.Port().Name())

	count(7)
	if err := ls.CheckState(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after 12 cycles total: count = %d — no glitch, no state loss\n", readCount(ls, nl))
}

func readCount(ls *sim.LockStep, nl *netlist.Netlist) int {
	v := 0
	for i, id := range nl.Outputs() {
		if ls.Fab.PadValue(ls.Design.PadOf[id]).Bool() {
			v |= 1 << i
		}
	}
	return v
}
