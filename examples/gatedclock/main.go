// Gatedclock demonstrates the heart of the paper's Fig. 3: relocating a
// flip-flop whose clock enable stays LOW for the whole relocation. The
// plain two-phase copy provably loses the state; the auxiliary relocation
// circuit (2:1 mux + OR gate in a nearby free CLB, controlled through the
// configuration memory) transfers it correctly.
package main

import (
	"fmt"
	"log"

	rlm "repro"
	"repro/internal/fabric"
	"repro/internal/netlist"
	"repro/internal/sim"
)

func buildSystem() (*rlm.System, *sim.LockStep, fabric.CellRef) {
	nl := netlist.New("gated")
	d := nl.Input("d")
	ce := nl.Input("ce")
	ff := nl.FF("r", d, ce, false)
	nl.Output("q", ff)

	sys, err := rlm.New(rlm.WithDevice(fabric.XCV50), rlm.WithPort(rlm.BoundaryScan))
	if err != nil {
		log.Fatal(err)
	}
	design, err := sys.Load(nl, fabric.Rect{Row: 3, Col: 3, H: 1, W: 1})
	if err != nil {
		log.Fatal(err)
	}
	ls, err := sim.NewLockStep(design)
	if err != nil {
		log.Fatal(err)
	}
	// Capture a 1, then hold CE low: the FF must remember the 1.
	if err := ls.Step([]bool{true, true}); err != nil {
		log.Fatal(err)
	}
	ffID, _ := nl.ByName("r")
	return sys, ls, design.CellOf[ffID]
}

func run(forcePlain bool) error {
	sys, ls, from := buildSystem()
	sys.Engine().ForcePlainProcedure = forcePlain
	toggle := false
	step := func(n int) error {
		for i := 0; i < n; i++ {
			toggle = !toggle
			// D keeps toggling, CE stays LOW: the state may not change.
			if err := ls.Step([]bool{toggle, false}); err != nil {
				return err
			}
		}
		return nil
	}
	if err := step(5); err != nil {
		return err
	}
	sys.Engine().Clock = step
	to := fabric.CellRef{Coord: fabric.Coord{Row: 10, Col: 10}, Cell: from.Cell}
	mv, err := sys.Engine().RelocateCell(from, to)
	if err != nil {
		return err
	}
	d, _ := sys.Design("gated")
	d.Rebind(from, to)
	if mv.UsedAux {
		fmt.Printf("  aux circuit in CLB %v, %d frames, %.2f ms\n", mv.Aux, mv.Frames, mv.Seconds*1e3)
	} else {
		fmt.Printf("  plain two-phase copy, %d frames, %.2f ms\n", mv.Frames, mv.Seconds*1e3)
	}
	if err := step(8); err != nil {
		return err
	}
	return ls.CheckState()
}

func main() {
	fmt.Println("relocating a gated-clock FF holding state=1 with CE low throughout:")
	fmt.Println("with auxiliary relocation circuit (paper's procedure):")
	if err := run(false); err != nil {
		log.Fatalf("  UNEXPECTED FAILURE: %v", err)
	}
	fmt.Println("  state preserved, no glitches — as the paper reports")

	fmt.Println("without it (naive two-phase copy, the paper's negative case):")
	if err := run(true); err != nil {
		fmt.Printf("  fails as predicted: %v\n", err)
	} else {
		log.Fatal("  unexpectedly survived — the ablation should fail")
	}
}
