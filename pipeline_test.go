package rlm

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/bitstream"
	"repro/internal/fabric"
	"repro/internal/faultport"
	"repro/internal/itc99"
	"repro/internal/jtag"
)

// comparePipelinedSerial asserts the two systems' configuration memories are
// bit-identical frame by frame and their Boundary-Scan cycle counters agree
// (transport time is accounted at enqueue, so pipelined and serial delivery
// must cost exactly the same simulated cycles).
func comparePipelinedSerial(t *testing.T, ctx string, pipe, serial *System) {
	t.Helper()
	pd, sd := pipe.Device(), serial.Device()
	for _, col := range pd.Columns() {
		for m := 0; m < col.Frames; m++ {
			pf, err := pd.ReadFrame(col.Major, m)
			if err != nil {
				t.Fatal(err)
			}
			sf, err := sd.ReadFrame(col.Major, m)
			if err != nil {
				t.Fatal(err)
			}
			for w := range pf {
				if pf[w] != sf[w] {
					t.Fatalf("%s: frame F%d.%d word %d: pipelined %#x, serial %#x",
						ctx, col.Major, m, w, pf[w], sf[w])
				}
			}
		}
	}
	pc := pipe.Port().(interface{ Cycles() uint64 }).Cycles()
	sc := serial.Port().(interface{ Cycles() uint64 }).Cycles()
	if pc != sc {
		t.Fatalf("%s: TCK cycles diverged: pipelined %d, serial %d", ctx, pc, sc)
	}
}

// TestPipelinedCommitBitIdenticalToSerial is the commit pipeline's
// correctness property: a randomized sequence of facade operations — loads,
// transactional plans (moves, staged moves, unloads), Need-mode and
// best-effort defragmentation — executed on a pipelined Boundary-Scan
// system and on a serial-commit twin must leave configuration memory
// bit-identical and the cycle accounting equal after every operation. The
// op mix mirrors the random-op generator of
// relocate.TestViewMatchesRescanUnderRandomOps, lifted to the facade's
// vocabulary. Run under -race this also exercises the background worker's
// synchronisation.
func TestPipelinedCommitBitIdenticalToSerial(t *testing.T) {
	pipe, err := New(WithDevice(fabric.XCV50), WithPort(BoundaryScan))
	if err != nil {
		t.Fatal(err)
	}
	serial, err := New(WithDevice(fabric.XCV50), WithPort(BoundaryScan), WithSerialCommit())
	if err != nil {
		t.Fatal(err)
	}
	both := func(op func(*System) error) (errPipe, errSerial error) {
		errPipe = op(pipe)
		errSerial = op(serial)
		return
	}

	rng := rand.New(rand.NewSource(20260726))
	slots := []fabric.Rect{
		{Row: 1, Col: 2, H: 4, W: 4}, {Row: 1, Col: 10, H: 4, W: 4},
		{Row: 1, Col: 18, H: 4, W: 4}, {Row: 7, Col: 2, H: 4, W: 4},
		{Row: 7, Col: 10, H: 4, W: 4}, {Row: 11, Col: 16, H: 4, W: 4},
	}
	spare := []fabric.Rect{
		{Row: 11, Col: 2, H: 4, W: 4}, {Row: 11, Col: 9, H: 4, W: 4},
	}
	resident := map[string]bool{}
	nextID := 0

	comparePipelinedSerial(t, "initial", pipe, serial)
	for step := 0; step < 40; step++ {
		ctx := ""
		switch k := rng.Intn(10); {
		case k < 3: // load into a free slot
			var free []fabric.Rect
			for _, s := range slots {
				if pipe.Area().Fits(s) {
					free = append(free, s)
				}
			}
			if len(free) == 0 {
				continue
			}
			region := free[rng.Intn(len(free))]
			style := itc99.FreeRunning
			if rng.Intn(2) == 0 {
				style = itc99.GatedClock
			}
			nl := itc99.Generate(itc99.GenConfig{
				Name: fmt.Sprintf("d%d", nextID), Inputs: 2, Outputs: 1,
				FFs: 3, LUTs: 6, Seed: uint64(500 + nextID), Style: style, CEFraction: 0.5,
			})
			nextID++
			ep, es := both(func(s *System) error { _, err := s.Load(nl, region); return err })
			if (ep == nil) != (es == nil) {
				t.Fatalf("step %d: load diverged: %v vs %v", step, ep, es)
			}
			if ep == nil {
				resident[nl.Name] = true
			}
			ctx = "load " + nl.Name
		case k < 6: // transactional plan: move one design to a spare slot and back
			name := pickResident(rng, resident)
			if name == "" {
				continue
			}
			cur, ok := pipe.Region(name)
			if !ok {
				continue
			}
			to := spare[rng.Intn(len(spare))]
			to.H, to.W = cur.H, cur.W
			staged := rng.Intn(2) == 0
			ep, es := both(func(s *System) error {
				p := s.Plan()
				if staged {
					p.MoveStaged(name, to, 2).MoveStaged(name, cur, 2)
				} else {
					p.Move(name, to).Move(name, cur)
				}
				return p.Commit()
			})
			if (ep == nil) != (es == nil) {
				t.Fatalf("step %d: plan diverged: %v vs %v", step, ep, es)
			}
			ctx = "plan-move " + name
		case k < 8: // unload
			name := pickResident(rng, resident)
			if name == "" {
				continue
			}
			ep, es := both(func(s *System) error { return s.Unload(name) })
			if (ep == nil) != (es == nil) {
				t.Fatalf("step %d: unload diverged: %v vs %v", step, ep, es)
			}
			if ep == nil {
				delete(resident, name)
			}
			ctx = "unload " + name
		default: // defragment (best-effort compaction; occasionally Need mode)
			pol := DefragPolicy{}
			if rng.Intn(3) == 0 {
				pol.NeedH, pol.NeedW = 6, 8
			}
			ep, es := both(func(s *System) error { _, err := s.Defragment(pol); return err })
			if (ep == nil) != (es == nil) {
				t.Fatalf("step %d: defragment diverged: %v vs %v", step, ep, es)
			}
			ctx = "defragment"
		}
		comparePipelinedSerial(t, fmt.Sprintf("step %d (%s)", step, ctx), pipe, serial)
	}
	if nextID == 0 {
		t.Fatal("op generator never loaded a design")
	}
}

func pickResident(rng *rand.Rand, resident map[string]bool) string {
	if len(resident) == 0 {
		return ""
	}
	names := make([]string, 0, len(resident))
	for n := range resident {
		names = append(names, n)
	}
	// Deterministic pick: map order is random, so sort by name first.
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	return names[rng.Intn(len(names))]
}

// TestPipelinedPlanRollsBackOnMidStreamFailure: a transport failure of a
// background shift-out must fail the whole transaction and roll device and
// book-keeping back to the pre-commit checkpoint — even though the failing
// burst was enqueued long before the error surfaced at a harvest point. The
// mid-stream fault comes from internal/faultport, the shared fault model
// (this test predates it and used its own flaky wrapper).
func TestPipelinedPlanRollsBackOnMidStreamFailure(t *testing.T) {
	var flaky *faultport.Port
	sys, err := New(WithDevice(fabric.XCV50),
		WithPortModel(func(ctrl *bitstream.Controller) bitstream.Port {
			flaky = faultport.New(jtag.NewPort(ctrl, jtag.DefaultTCKHz), 1)
			return flaky
		}))
	if err != nil {
		t.Fatal(err)
	}
	nl := itc99.Generate(itc99.GenConfig{
		Name: "vic", Inputs: 2, Outputs: 1, FFs: 4, LUTs: 8,
		Seed: 31, Style: itc99.FreeRunning,
	})
	home := fabric.Rect{Row: 2, Col: 2, H: 4, W: 4}
	away := fabric.Rect{Row: 9, Col: 12, H: 4, W: 4}
	if _, err := sys.Load(nl, home); err != nil {
		t.Fatal(err)
	}

	snapshot := readAllFrames(t, sys.Device())
	for _, budget := range []int{0, 2, 9, 25} {
		flaky.TripAfter(budget)
		err := sys.Plan().Move("vic", away).Move("vic", home).Commit()
		if err == nil {
			t.Fatalf("budget %d: commit survived the flaky port", budget)
		}
		flaky.Disarm() // the trip self-disarms; this also covers budgets past the plan's frame count
		if got := readAllFrames(t, sys.Device()); !framesEqual(got, snapshot) {
			t.Fatalf("budget %d: configuration not restored after rollback", budget)
		}
		if region, ok := sys.Region("vic"); !ok || region != home {
			t.Fatalf("budget %d: book-keeping not restored: %v %v", budget, region, ok)
		}
	}

	// The healed system completes the same plan (the round trip re-routes
	// the design's nets, so the configuration is functionally equivalent
	// rather than bit-identical to the original placement).
	if err := sys.Plan().Move("vic", away).Move("vic", home).Commit(); err != nil {
		t.Fatalf("post-recovery commit: %v", err)
	}
	if region, ok := sys.Region("vic"); !ok || region != home {
		t.Fatalf("post-recovery region: %v %v", region, ok)
	}
}

func readAllFrames(t *testing.T, dev *fabric.Device) [][]uint32 {
	t.Helper()
	var out [][]uint32
	for _, col := range dev.Columns() {
		for m := 0; m < col.Frames; m++ {
			f, err := dev.ReadFrame(col.Major, m)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, f)
		}
	}
	return out
}

func framesEqual(a, b [][]uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		for w := range a[i] {
			if a[i][w] != b[i][w] {
				return false
			}
		}
	}
	return true
}
