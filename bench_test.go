// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation (see DESIGN.md §4 and EXPERIMENTS.md). Each bench both
// exercises the relevant machinery per iteration and — once per run —
// prints the series the paper's figure illustrates.
package rlm

import (
	"fmt"
	"os"
	"sync"
	"testing"

	"repro/internal/area"
	"repro/internal/bitstream"
	"repro/internal/fabric"
	"repro/internal/itc99"
	"repro/internal/jtag"
	"repro/internal/netlist"
	"repro/internal/place"
	"repro/internal/rearrange"
	"repro/internal/relocate"
	"repro/internal/route"
	"repro/internal/sched"
	"repro/internal/template"
	"repro/internal/workload"
)

var printOnce sync.Map

func once(key string, f func()) {
	if _, loaded := printOnce.LoadOrStore(key, true); !loaded {
		f()
	}
}

// --- E1 / Fig. 1: temporal scheduling, stall vs parallelism --------------

func BenchmarkFig1Scheduling(b *testing.B) {
	run := func(apps int, p rearrange.Planner) sched.FlowMetrics {
		w := workload.Flows(workload.FlowConfig{
			Seed: 13, Apps: apps, FnsPerApp: 6, MinSide: 4, MaxSide: 8, MeanDuration: 60,
		})
		return sched.RunFlows(sched.FlowConfig{
			Rows: 14, Cols: 14, Policy: area.FirstFit, Planner: p, PrefetchLead: 4,
		}, w)
	}
	once("fig1", func() {
		fmt.Println("\nFig.1 series — application stall (s) vs degree of parallelism:")
		fmt.Printf("%-6s %-14s %-16s\n", "apps", "no-rearrange", "local-repacking")
		for n := 2; n <= 7; n++ {
			a := run(n, rearrange.None{})
			r := run(n, rearrange.LocalRepacking{})
			fmt.Printf("%-6d %-14.1f %-16.1f\n", n, a.TotalStallSec, r.TotalStallSec)
		}
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := run(4, rearrange.LocalRepacking{})
		if m.FunctionsRun == 0 {
			b.Fatal("no functions ran")
		}
	}
}

// pingPongSetup places a design and returns an engine plus a cell that can
// be relocated back and forth between its home and a free location.
func pingPongSetup(b *testing.B, circuit string, gated bool, port func(*fabric.Device) bitstream.Port) (*relocate.Engine, fabric.CellRef, fabric.CellRef) {
	b.Helper()
	dev := fabric.NewDevice(fabric.XCV50)
	nl, err := itc99.Get(circuit)
	if err != nil {
		b.Fatal(err)
	}
	region, err := place.AutoRegion(dev, nl, 2, 2, 0.35)
	if err != nil {
		b.Fatal(err)
	}
	d, err := place.Place(dev, nl, place.Options{Region: region})
	if err != nil {
		b.Fatal(err)
	}
	eng, err := relocate.NewEngine(dev, port(dev))
	if err != nil {
		b.Fatal(err)
	}
	eng.MaxCyclesPerWait = 0 // no simulation load in benches
	var from fabric.CellRef
	found := false
	for id, nd := range nl.Nodes {
		if nd.Kind != netlist.KindFF {
			continue
		}
		if gated != (nd.CE != netlist.None) {
			continue
		}
		if ref, ok := d.CellOf[netlist.ID(id)]; ok {
			from, found = ref, true
			break
		}
	}
	if !found {
		b.Fatal("no suitable cell")
	}
	spare := fabric.CellRef{Coord: fabric.Coord{Row: 12, Col: 12}, Cell: from.Cell}
	return eng, from, spare
}

func directBenchPort(dev *fabric.Device) bitstream.Port {
	return bitstream.NewParallelPort(bitstream.NewController(dev), 50e6)
}

func jtagBenchPort(dev *fabric.Device) bitstream.Port {
	return jtag.NewPort(bitstream.NewController(dev), jtag.DefaultTCKHz)
}

// selectMapBenchPort builds a SelectMAP port at the given data-pin width
// (8/16/32): the per-word clock cost is 32/width.
func selectMapBenchPort(width int) func(*fabric.Device) bitstream.Port {
	return func(dev *fabric.Device) bitstream.Port {
		p := bitstream.NewParallelPort(bitstream.NewController(dev), 50e6)
		p.WidthBits = width
		return p
	}
}

// compressBenchPort wraps a port constructor with delta/MFWR stream encoding
// switched on.
func compressBenchPort(mk func(*fabric.Device) bitstream.Port) func(*fabric.Device) bitstream.Port {
	return func(dev *fabric.Device) bitstream.Port {
		p := mk(dev)
		p.(bitstream.CompressPort).SetCompress(true)
		return p
	}
}

// reportTraffic attaches the configuration-bandwidth columns every transport
// lane reports: stream words actually shipped, the write-path compression
// ratio, and port clocks per delivered frame. All three ride through
// benchdiff as informational metrics.
func reportTraffic(b *testing.B, tr bitstream.Traffic, cycles uint64) {
	b.ReportMetric(float64(tr.WordsShifted), "words_shifted")
	b.ReportMetric(tr.CompressionRatio(), "compression_ratio")
	if tr.FramesDelivered > 0 {
		b.ReportMetric(float64(cycles)/float64(tr.FramesDelivered), "tck_per_frame")
	}
}

// --- E2 / Fig. 2: two-phase relocation of a free-running cell -------------

func BenchmarkFig2TwoPhaseRelocation(b *testing.B) {
	eng, home, spare := pingPongSetup(b, "b01", false, directBenchPort)
	locs := [2]fabric.CellRef{home, spare}
	b.ResetTimer()
	frames := 0
	for i := 0; i < b.N; i++ {
		mv, err := eng.RelocateCell(locs[i%2], locs[(i+1)%2])
		if err != nil {
			b.Fatal(err)
		}
		frames += mv.Frames
	}
	b.ReportMetric(float64(frames)/float64(b.N), "frames/move")
	once("fig2", func() {
		fmt.Printf("\nFig.2 — two-phase relocation (free-running FF): %.0f frames per move\n",
			float64(frames)/float64(b.N))
	})
}

// --- E3 / Fig. 3: gated-clock relocation via the aux circuit --------------

func BenchmarkFig3GatedClock(b *testing.B) {
	eng, home, spare := pingPongSetup(b, "b03", true, directBenchPort)
	locs := [2]fabric.CellRef{home, spare}
	b.ResetTimer()
	aux := 0
	frames := 0
	for i := 0; i < b.N; i++ {
		mv, err := eng.RelocateCell(locs[i%2], locs[(i+1)%2])
		if err != nil {
			b.Fatal(err)
		}
		if mv.UsedAux {
			aux++
		}
		frames += mv.Frames
	}
	if aux != b.N {
		b.Fatalf("aux circuit used %d/%d times", aux, b.N)
	}
	b.ReportMetric(float64(frames)/float64(b.N), "frames/move")
}

// --- E4 / Fig. 4: the procedure flow itself -------------------------------

func BenchmarkFig4Procedure(b *testing.B) {
	// Compare the frame cost of the plain and gated procedures (the extra
	// steps of Fig. 4 show up as extra frames and port time).
	measure := func(circuit string, gated bool) (frames float64, ms float64) {
		eng, home, spare := pingPongSetup(b, circuit, gated, jtagBenchPort)
		mv, err := eng.RelocateCell(home, spare)
		if err != nil {
			b.Fatal(err)
		}
		return float64(mv.Frames), mv.Seconds * 1e3
	}
	once("fig4", func() {
		pf, pt := measure("b01", false)
		gf, gt := measure("b03", true)
		fmt.Println("\nFig.4 — procedure cost over Boundary-Scan @ 20 MHz:")
		fmt.Printf("%-28s %-10s %-10s\n", "procedure", "frames", "ms")
		fmt.Printf("%-28s %-10.0f %-10.2f\n", "two-phase (free-running)", pf, pt)
		fmt.Printf("%-28s %-10.0f %-10.2f\n", "Fig.4 flow (gated, aux)", gf, gt)
	})
	eng, home, spare := pingPongSetup(b, "b03", true, directBenchPort)
	locs := [2]fabric.CellRef{home, spare}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.RelocateCell(locs[i%2], locs[(i+1)%2]); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E5 / Fig. 5: relocation of routing resources --------------------------

func BenchmarkFig5RouteRelocation(b *testing.B) {
	dev := fabric.NewDevice(fabric.XCV50)
	nl, err := itc99.Get("b01")
	if err != nil {
		b.Fatal(err)
	}
	region, _ := place.AutoRegion(dev, nl, 2, 2, 0.35)
	d, err := place.Place(dev, nl, place.Options{Region: region})
	if err != nil {
		b.Fatal(err)
	}
	eng, err := relocate.NewEngine(dev, directBenchPort(dev))
	if err != nil {
		b.Fatal(err)
	}
	eng.MaxCyclesPerWait = 0
	// A routed pin to bounce between alternative paths.
	var tile fabric.Coord
	local := -1
	for _, ref := range d.OccupiedCells() {
		for k := 0; k < fabric.LUTInputs; k++ {
			l := fabric.LocalPinI(ref.Cell, k)
			if dev.PIPMask(ref.Coord, l) != 0 {
				tile, local = ref.Coord, l
			}
		}
	}
	if local < 0 {
		b.Fatal("no routed pin")
	}
	b.ResetTimer()
	fuzzSum := 0.0
	for i := 0; i < b.N; i++ {
		mv, err := eng.RerouteSink(tile, local)
		if err != nil {
			b.Fatal(err)
		}
		fuzzSum += mv.FuzzinessNs()
	}
	b.ReportMetric(fuzzSum/float64(b.N), "fuzz-ns/move")
}

// --- E6 / Fig. 6: propagation-delay fuzziness ------------------------------

func BenchmarkFig6DelayFuzziness(b *testing.B) {
	dev := fabric.NewDevice(fabric.XCV200)
	once("fig6", func() {
		// Sweep: route a net straight, then via increasingly long detours;
		// fuzziness = |d_new - d_old|, parallel delay = max.
		fmt.Println("\nFig.6 — delay fuzziness while original and replica paths are paralleled:")
		fmt.Printf("%-14s %-12s %-12s %-12s %-12s\n", "detour(rows)", "d_old(ns)", "d_new(ns)", "parallel", "fuzziness")
		src := dev.NodeIDAt(fabric.Coord{Row: 14, Col: 5}, fabric.LocalOutX(0))
		dst := dev.NodeIDAt(fabric.Coord{Row: 14, Col: 30}, fabric.LocalPinI(0, 0))
		r := route.NewRouter(dev)
		direct, err := r.RouteAll([]route.Net{{Name: "d", Source: src, Sinks: []fabric.NodeID{dst}}})
		if err != nil {
			b.Fatal(err)
		}
		dOld := direct[0].DelayTo(dev, dst)
		for detour := 2; detour <= 12; detour += 2 {
			r2 := route.NewRouter(dev)
			// Block a wall forcing the detour. The wall is six columns
			// wide so hex wires cannot jump across it.
			for dr := -detour; dr <= detour; dr++ {
				row := 14 + dr
				if row < 0 || row >= dev.Rows {
					continue
				}
				for wc := 0; wc < 6; wc++ {
					for l := 0; l < fabric.NodeSlots; l++ {
						kind, _, _ := fabric.DecodeLocal(l)
						if kind == fabric.KindSingle || kind == fabric.KindHex {
							r2.Block(dev.NodeIDAt(fabric.Coord{Row: row, Col: 15 + wc}, l))
						}
					}
				}
			}
			alt, err := r2.RouteAll([]route.Net{{Name: "a", Source: src, Sinks: []fabric.NodeID{dst}}})
			if err != nil {
				continue
			}
			dNew := alt[0].DelayTo(dev, dst)
			par := dOld
			if dNew > par {
				par = dNew
			}
			fuzz := dNew - dOld
			if fuzz < 0 {
				fuzz = -fuzz
			}
			fmt.Printf("%-14d %-12.2f %-12.2f %-12.2f %-12.2f\n", detour, dOld, dNew, par, fuzz)
		}
	})
	src := dev.NodeIDAt(fabric.Coord{Row: 2, Col: 2}, fabric.LocalOutX(0))
	dst := dev.NodeIDAt(fabric.Coord{Row: 20, Col: 35}, fabric.LocalPinI(1, 1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := route.NewRouter(dev)
		nets, err := r.RouteAll([]route.Net{{Name: "n", Source: src, Sinks: []fabric.NodeID{dst}}})
		if err != nil {
			b.Fatal(err)
		}
		_ = nets[0].DelayTo(dev, dst)
	}
}

// --- E7 / §4: defragmentation study ---------------------------------------

func BenchmarkFig7Defrag(b *testing.B) {
	stream := workload.Stream(workload.Config{
		Seed: 7, N: 250, MeanInterarrival: 1 / 1.2, MeanService: 4.0,
		MinSide: 2, MaxSide: 6, Dist: workload.Bimodal,
	})
	run := func(p rearrange.Planner) sched.Metrics {
		s := sched.NewSimulator(sched.Config{
			Rows: 12, Cols: 12, Policy: area.FirstFit, Planner: p, MaxWait: 10,
		})
		return s.Run(stream)
	}
	once("fig7", func() {
		fmt.Println("\nDefragmentation study — allocation rate / waiting with on-line rearrangement:")
		fmt.Printf("%-22s %-10s %-12s %-12s %-12s\n", "planner", "alloc", "mean-wait", "frag(mean)", "moved-CLBs")
		for _, p := range []rearrange.Planner{
			rearrange.None{}, rearrange.OrderedCompaction{}, rearrange.LocalRepacking{},
		} {
			m := run(p)
			fmt.Printf("%-22s %-10.3f %-12.3f %-12.3f %-12d\n",
				p.Name(), m.AllocationRate, m.MeanWaitSec, m.MeanFragmentation, m.RelocatedCLBs)
		}
	})
	// Measured loop: the same study made physical — scattered designs are
	// loaded onto a live System and one best-effort compaction pass slides
	// them west/north through the configuration port. This is the path the
	// checkpointing machinery sits on (every load and every slide brackets a
	// configuration checkpoint), so allocations/op here track the rollback
	// state the run-time manager keeps per pass. The lanes sweep transport
	// (Boundary-Scan, wide SelectMAP) crossed with delta/MFWR compression;
	// the bandwidth columns ride through benchdiff informationally.
	nl1 := itc99.Generate(itc99.GenConfig{
		Name: "gen1", Inputs: 3, Outputs: 2, FFs: 6, LUTs: 12,
		Seed: 99, Style: itc99.FreeRunning,
	})
	nl2 := itc99.Generate(itc99.GenConfig{
		Name: "gen2", Inputs: 3, Outputs: 2, FFs: 6, LUTs: 12,
		Seed: 98, Style: itc99.FreeRunning,
	})
	for _, lane := range []struct {
		name string
		opts []Option
	}{
		{"BoundaryScan", []Option{WithPort(BoundaryScan)}},
		{"BoundaryScan-compressed", []Option{WithPort(BoundaryScan), WithCompression()}},
		{"SelectMAP8", []Option{WithPort(SelectMAP)}},
		{"SelectMAP32-compressed", []Option{WithPort(SelectMAP), WithPortWidth(32), WithCompression()}},
	} {
		b.Run(lane.name, func(b *testing.B) {
			var last *System
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sys, err := New(append([]Option{WithDevice(fabric.XCV50)}, lane.opts...)...)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := sys.Load(nl1, fabric.Rect{Row: 2, Col: 6, H: 4, W: 4}); err != nil {
					b.Fatal(err)
				}
				if _, err := sys.Load(nl2, fabric.Rect{Row: 8, Col: 6, H: 4, W: 4}); err != nil {
					b.Fatal(err)
				}
				rep, err := sys.Defragment(DefragPolicy{})
				if err != nil {
					b.Fatal(err)
				}
				if len(rep.Moves) == 0 || rep.CellsRelocated == 0 {
					b.Fatalf("no physical compaction happened: %+v", rep)
				}
				last = sys
			}
			b.StopTimer()
			reportTraffic(b, last.Traffic(), last.Port().(interface{ Cycles() uint64 }).Cycles())
		})
	}
}

// --- Scenario diversity: fabric-vs-book-keeping divergence ------------------

// BenchmarkSchedFabricDivergence runs the named scenario matrix — profiled
// task streams whose netlists are sized to their allocated regions — on a
// live System against the pure book-keeping twin, and reports where fabric
// reality diverges from the model. The measured loop runs the ram-heavy
// scenario (the largest divergence: immovable RAM cells pin their columns,
// so the fabric refuses rearrangements the grid model books as feasible);
// the divergence figures ride through benchdiff as informational columns.
func BenchmarkSchedFabricDivergence(b *testing.B) {
	const tasks = 30
	matrix := sched.ScenarioMatrix(1, tasks, 1.0)
	runScenario := func(name string) sched.Divergence {
		sc, ok := sched.ScenarioByName(matrix, name)
		if !ok {
			b.Fatalf("unknown scenario %q", name)
		}
		sys, err := New(WithDevice(fabric.XCV50), WithPort(BoundaryScan))
		if err != nil {
			b.Fatal(err)
		}
		return sched.RunScenario(sc, NewFabricSpace(sys, false))
	}
	once("divergence", func() {
		fmt.Println("\nScenario divergence — live fabric vs book-keeping, XCV50:")
		fmt.Printf("%-16s %-11s %-11s %-10s %-9s %-10s\n",
			"scenario", "alloc-book", "alloc-fab", "phys-fail", "clb-gap", "reloc-s-fab")
		for _, sc := range matrix {
			d := runScenario(sc.Name)
			fmt.Printf("%-16s %-11.3f %-11.3f %-10d %-9d %-10.2f\n",
				d.Scenario, d.Book.AllocationRate, d.Fabric.AllocationRate,
				d.PhysicalPlaceFailures, d.RelocatedCLBGap, d.Fabric.RearrangeSeconds)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	var last sched.Divergence
	for i := 0; i < b.N; i++ {
		last = runScenario("ram-heavy")
		if last.Fabric.Submitted != tasks {
			b.Fatalf("scenario did not run: %+v", last.Fabric)
		}
	}
	b.ReportMetric(last.AllocationGap, "alloc_gap")
	b.ReportMetric(float64(last.PhysicalPlaceFailures), "phys_fail")
	b.ReportMetric(float64(last.RelocatedCLBGap), "clb_gap")
}

// --- Host-side O(change): unload and checkpoint costs ----------------------

// BenchmarkUnload measures decommissioning one design through the
// configuration port. The engine's occupancy view is maintained
// incrementally from the tool's touched-reporting, so the B/op and
// allocs/op of an unload track the design's own routing and cells — run the
// two device sizes to verify they do NOT scale with the device (the old
// rescan-per-write path was O(cells x device)).
func BenchmarkUnload(b *testing.B) {
	for _, preset := range []fabric.Preset{fabric.XCV50, fabric.XCV800} {
		b.Run(preset.Name, func(b *testing.B) {
			sys, err := New(WithDevice(preset), WithPort(SelectMAP))
			if err != nil {
				b.Fatal(err)
			}
			nl := itc99.Generate(itc99.GenConfig{
				Name: "gen", Inputs: 3, Outputs: 2, FFs: 6, LUTs: 12,
				Seed: 99, Style: itc99.FreeRunning,
			})
			region := fabric.Rect{Row: 4, Col: 6, H: 4, W: 4}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				if _, err := sys.Load(nl, region); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if err := sys.Unload("gen"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLoadWarmVsCold gates the template cache: a warm Load (cache hit:
// stream the pre-routed image, route only boundary nets) against a cold Load
// (full place-and-route) of the same circuit on XCV50. The warm path must
// come in well under the cold one — the acceptance floor is 5x.
func BenchmarkLoadWarmVsCold(b *testing.B) {
	cfg := genCfg("gen", 11, itc99.FreeRunning)
	region := fabric.Rect{Row: 4, Col: 6, H: 4, W: 4}

	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			sys, err := New(WithDevice(fabric.XCV50), WithPort(SelectMAP),
				WithTemplateCache(&template.Policy{Capacity: 8}))
			if err != nil {
				b.Fatal(err)
			}
			nl := itc99.Generate(cfg)
			b.StartTimer()
			if _, err := sys.Load(nl, region); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.Elapsed().Milliseconds())/float64(b.N), "cold_ms_per_load")
	})

	b.Run("warm", func(b *testing.B) {
		sys, err := New(WithDevice(fabric.XCV50), WithPort(SelectMAP),
			WithTemplateCache(&template.Policy{Capacity: 8}))
		if err != nil {
			b.Fatal(err)
		}
		// Prime the cache: one cold load captures the template.
		if _, err := sys.Load(itc99.Generate(cfg), region); err != nil {
			b.Fatal(err)
		}
		if err := sys.Unload("gen"); err != nil {
			b.Fatal(err)
		}
		if st, _ := sys.TemplateStats(); st.Stores != 1 {
			b.Fatalf("priming load was not captured: %+v", st)
		}
		nl := itc99.Generate(cfg)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sys.Load(nl, region); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			if err := sys.Unload("gen"); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
		b.StopTimer()
		st, _ := sys.TemplateStats()
		if st.Hits != b.N {
			b.Fatalf("not every load was warm: %d/%d, %+v", st.Hits, b.N, st)
		}
		b.ReportMetric(float64(b.Elapsed().Milliseconds())/float64(b.N), "warm_ms_per_load")
		b.ReportMetric(st.HitRate(), "tmpl_hit_rate")
	})
}

// BenchmarkCheckpoint measures opening and releasing a run-time-manager
// checkpoint via a no-op operation (a staged move with zero hops), with
// several designs resident. Checkpoints are copy-on-write on both sides —
// frame snapshot and host book-keeping journal — so allocs/op here must not
// scale with the resident design count (the old path cloned the area grid
// plus every design's CellOf/SourceOf tables per checkpoint).
func BenchmarkCheckpoint(b *testing.B) {
	sys, err := New(WithDevice(fabric.XCV50), WithPort(SelectMAP))
	if err != nil {
		b.Fatal(err)
	}
	slots := []fabric.Rect{
		{Row: 1, Col: 2, H: 4, W: 4}, {Row: 1, Col: 8, H: 4, W: 4},
		{Row: 1, Col: 14, H: 4, W: 4}, {Row: 6, Col: 2, H: 4, W: 4},
		{Row: 6, Col: 8, H: 4, W: 4}, {Row: 6, Col: 14, H: 4, W: 4},
	}
	for i, slot := range slots {
		nl := itc99.Generate(itc99.GenConfig{
			Name: fmt.Sprintf("d%d", i), Inputs: 2, Outputs: 1, FFs: 4, LUTs: 8,
			Seed: uint64(100 + i), Style: itc99.FreeRunning,
		})
		if _, err := sys.Load(nl, slot); err != nil {
			b.Fatal(err)
		}
	}
	region, ok := sys.Region("d0")
	if !ok {
		b.Fatal("d0 not loaded")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sys.MoveStaged("d0", region, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Two-stage commit pipeline: multi-op transaction cost -------------------

// BenchmarkPlanCommit measures a three-op transaction (three design moves,
// ping-ponged between two region sets) through the Boundary-Scan port — the
// pipeline's home turf: op N+1 plans and routes while op N's partial
// bitstream shifts out, so wall-clock tracks the shift cycles, not host
// compute. overlap_ratio reports the fraction of relocations that started
// while a stream was in flight; host planning wall-clock is ms_per_clb's
// business in BenchmarkTab226msRelocationTime.
func BenchmarkPlanCommit(b *testing.B) {
	sys, err := New(WithDevice(fabric.XCV50), WithPort(BoundaryScan))
	if err != nil {
		b.Fatal(err)
	}
	homes := []fabric.Rect{
		{Row: 1, Col: 2, H: 4, W: 4}, {Row: 1, Col: 10, H: 4, W: 4}, {Row: 6, Col: 2, H: 4, W: 4},
	}
	aways := []fabric.Rect{
		{Row: 11, Col: 2, H: 4, W: 4}, {Row: 11, Col: 10, H: 4, W: 4}, {Row: 6, Col: 10, H: 4, W: 4},
	}
	names := []string{"p0", "p1", "p2"}
	for i, name := range names {
		nl := itc99.Generate(itc99.GenConfig{
			Name: name, Inputs: 2, Outputs: 1, FFs: 3, LUTs: 6,
			Seed: uint64(200 + i), Style: itc99.FreeRunning,
		})
		if _, err := sys.Load(nl, homes[i]); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		to := aways
		if i%2 == 1 {
			to = homes
		}
		if err := sys.Plan().
			Move(names[0], to[0]).
			Move(names[1], to[1]).
			Move(names[2], to[2]).
			Commit(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	st := sys.Stats()
	if st.CellsRelocated > 0 {
		b.ReportMetric(float64(st.OverlappedOps)/float64(st.CellsRelocated), "overlap_ratio")
	}
}

// --- E8 / §2 headline: 22.6 ms mean CLB relocation time --------------------

func BenchmarkTab226msRelocationTime(b *testing.B) {
	// The paper: "The average relocation time of each CLB implementing
	// synchronous gated-clock circuits is about 22.6 ms, when the Boundary
	// Scan infrastructure is used ... at a test clock frequency of 20 MHz"
	// (ITC'99 circuits on an XCV200). We relocate every occupied CLB of a
	// mapped gated-clock ITC'99 circuit through the Boundary-Scan model
	// and report the measured mean.
	// measure also reports the host-side planning cost (ms of wall-clock
	// spent in placement/routing per CLB) and the pipeline overlap ratio
	// (fraction of relocations that started executing while the previous
	// operation's bitstream was still shifting out) — the two numbers the
	// commit pipeline moves: planning now happens inside the shift window.
	measure := func(circuit string, mkPort func(*fabric.Device) bitstream.Port) (msPerCLB float64, clbs int, hostMsPerCLB, overlap float64, cycles uint64, tr bitstream.Traffic) {
		dev := fabric.NewDevice(fabric.XCV200)
		nl, err := itc99.Get(circuit)
		if err != nil {
			b.Fatal(err)
		}
		region, err := place.AutoRegion(dev, nl, 4, 4, 0.35)
		if err != nil {
			b.Fatal(err)
		}
		d, err := place.Place(dev, nl, place.Options{Region: region})
		if err != nil {
			b.Fatal(err)
		}
		port := mkPort(dev)
		eng, err := relocate.NewEngine(dev, port)
		if err != nil {
			b.Fatal(err)
		}
		eng.MaxCyclesPerWait = 0
		// Relocate every occupied CLB of the region far away.
		seen := map[fabric.Coord]bool{}
		totalSec := 0.0
		dstRow, dstCol := region.Row+region.H+3, region.Col
		for _, ref := range d.OccupiedCells() {
			if seen[ref.Coord] {
				continue
			}
			seen[ref.Coord] = true
			dst := fabric.Coord{Row: dstRow, Col: dstCol}
			dstCol += 2
			if dstCol >= dev.Cols-2 {
				dstCol = region.Col
				dstRow += 2
			}
			moves, err := eng.RelocateCLB(ref.Coord, dst)
			if err != nil {
				b.Fatal(err)
			}
			for cell := 0; cell < fabric.CellsPerCLB; cell++ {
				d.Rebind(fabric.CellRef{Coord: ref.Coord, Cell: cell}, fabric.CellRef{Coord: dst, Cell: cell})
			}
			for _, mv := range moves {
				totalSec += mv.Seconds
			}
			clbs++
			if clbs >= 24 { // enough CLBs for a stable mean
				break
			}
		}
		st := eng.Stats
		hostMsPerCLB = st.PlanSeconds * 1e3 / float64(clbs)
		if st.CellsRelocated > 0 {
			overlap = float64(st.OverlappedOps) / float64(st.CellsRelocated)
		}
		if cp, ok := port.(interface{ Cycles() uint64 }); ok {
			cycles = cp.Cycles()
		}
		if tp, ok := port.(bitstream.CompressPort); ok {
			tr = tp.Traffic()
		}
		return totalSec * 1e3 / float64(clbs), clbs, hostMsPerCLB, overlap, cycles, tr
	}
	once("e8", func() {
		fmt.Println("\nHeadline — mean CLB relocation time, gated-clock ITC'99 on XCV200, Boundary-Scan @ 20 MHz:")
		fmt.Printf("%-8s %-10s %-12s %-14s %-10s (paper: 22.6 ms)\n", "circuit", "CLBs", "ms/CLB", "host-ms/CLB", "overlap")
		for _, c := range []string{"b03", "b07", "b10"} {
			ms, n, hostMs, ov, _, _ := measure(c, jtagBenchPort)
			fmt.Printf("%-8s %-10d %-12.1f %-14.2f %-10.2f\n", c, n, ms, hostMs, ov)
		}
	})
	// One lane per transport, crossed with compression: the paper's headline
	// stays the Boundary-Scan lane's ms/CLB, the compressed lanes show what
	// the bandwidth layer buys, the SelectMAP lanes what a wide parallel port
	// buys on top. words_shifted/compression_ratio/tck_per_frame ride through
	// benchdiff informationally.
	for _, lane := range []struct {
		name string
		mk   func(*fabric.Device) bitstream.Port
	}{
		{"BoundaryScan", jtagBenchPort},
		{"BoundaryScan-compressed", compressBenchPort(jtagBenchPort)},
		{"SelectMAP8", directBenchPort},
		{"SelectMAP32-compressed", compressBenchPort(selectMapBenchPort(32))},
	} {
		b.Run(lane.name, func(b *testing.B) {
			var hostMs, overlap float64
			var cycles uint64
			var tr bitstream.Traffic
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ms, _, h, ov, cy, tf := measure("b03", lane.mk)
				b.ReportMetric(ms, "ms/CLB")
				hostMs, overlap, cycles, tr = h, ov, cy, tf
			}
			b.ReportMetric(hostMs, "ms_per_clb")
			b.ReportMetric(overlap, "overlap_ratio")
			reportTraffic(b, tr, cycles)
		})
	}
}

// --- Ablation: configuration port comparison --------------------------------

func BenchmarkAblationConfigPort(b *testing.B) {
	once("ports", func() {
		fmt.Println("\nAblation — configuration interface (same gated-cell relocation):")
		fmt.Printf("%-16s %-12s\n", "port", "ms/cell")
		for _, pk := range []struct {
			name string
			mk   func(*fabric.Device) bitstream.Port
		}{
			{"Boundary-Scan", jtagBenchPort},
			{"SelectMAP", directBenchPort},
		} {
			eng, home, spare := pingPongSetup(b, "b03", true, pk.mk)
			mv, err := eng.RelocateCell(home, spare)
			if err != nil {
				b.Fatal(err)
			}
			fmt.Printf("%-16s %-12.2f\n", pk.name, mv.Seconds*1e3)
		}
	})
	eng, home, spare := pingPongSetup(b, "b03", true, jtagBenchPort)
	locs := [2]fabric.CellRef{home, spare}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.RelocateCell(locs[i%2], locs[(i+1)%2]); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation: allocation policies ------------------------------------------

func BenchmarkAblationPolicies(b *testing.B) {
	stream := workload.Stream(workload.Config{
		Seed: 11, N: 200, MeanInterarrival: 1.0, MeanService: 6.0,
		MinSide: 3, MaxSide: 8, Dist: workload.Bimodal,
	})
	once("policies", func() {
		fmt.Println("\nAblation — allocation policy under local repacking:")
		fmt.Printf("%-14s %-10s %-12s\n", "policy", "alloc", "frag(mean)")
		for _, p := range []area.Policy{area.FirstFit, area.BestFit, area.BottomLeft} {
			s := sched.NewSimulator(sched.Config{
				Rows: 14, Cols: 14, Policy: p, Planner: rearrange.LocalRepacking{}, MaxWait: 15,
			})
			m := s.Run(stream)
			fmt.Printf("%-14s %-10.3f %-12.3f\n", p, m.AllocationRate, m.MeanFragmentation)
		}
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := sched.NewSimulator(sched.Config{
			Rows: 14, Cols: 14, Policy: area.BestFit, Planner: rearrange.LocalRepacking{}, MaxWait: 15,
		})
		s.Run(stream)
	}
}

// --- Ablation: device scaling ----------------------------------------------

func BenchmarkAblationDeviceScaling(b *testing.B) {
	// Frame length scales with device rows, so per-cell relocation time
	// grows with the device — the paper notes reconfiguration time depends
	// on the device and interface.
	measure := func(preset fabric.Preset) float64 {
		dev := fabric.NewDevice(preset)
		nl, err := itc99.Get("b01")
		if err != nil {
			b.Fatal(err)
		}
		region, err := place.AutoRegion(dev, nl, 2, 2, 0.35)
		if err != nil {
			b.Fatal(err)
		}
		d, err := place.Place(dev, nl, place.Options{Region: region})
		if err != nil {
			b.Fatal(err)
		}
		eng, err := relocate.NewEngine(dev, jtagBenchPort(dev))
		if err != nil {
			b.Fatal(err)
		}
		eng.MaxCyclesPerWait = 0
		var from fabric.CellRef
		for id, nd := range nl.Nodes {
			if nd.Kind == netlist.KindFF {
				if ref, ok := d.CellOf[netlist.ID(id)]; ok {
					from = ref
					break
				}
			}
		}
		to := fabric.CellRef{Coord: fabric.Coord{Row: dev.Rows - 3, Col: dev.Cols - 3}, Cell: from.Cell}
		mv, err := eng.RelocateCell(from, to)
		if err != nil {
			b.Fatal(err)
		}
		return mv.Seconds * 1e3
	}
	once("scaling", func() {
		fmt.Println("\nAblation — device scaling (same cell move, Boundary-Scan @ 20 MHz):")
		fmt.Printf("%-10s %-10s %-12s %-10s\n", "device", "CLBs", "frame-bits", "ms/cell")
		for _, p := range []fabric.Preset{fabric.XCV50, fabric.XCV200, fabric.XCV800} {
			dev := fabric.NewDevice(p)
			fmt.Printf("%-10s %-10d %-12d %-10.2f\n", p.Name, p.Rows*p.Cols, dev.FrameBits(), measure(p))
		}
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = measure(fabric.XCV50)
	}
}

// --- Durable state: crash recovery ---------------------------------------

// BenchmarkRecoverFromJournal measures host crash recovery end to end: a
// journaled facade workout is crashed at its last post boundary (shift
// landed, seal lost — the roll-forward case, which reads back every dirty
// frame for the digest comparison), and each iteration reconciles the
// journal tail against a rebuilt device and reinstates the full host state.
// recover_ms rides through benchdiff as an informational column.
func BenchmarkRecoverFromJournal(b *testing.B) {
	dir := b.TempDir()
	jpath := dir + "/op.journal"
	sys, err := New(WithDevice(fabric.TestDevice), WithJournal(jpath))
	if err != nil {
		b.Fatal(err)
	}
	mirror := map[fabric.FrameAddr][]uint32{}
	sys.onDelivered = func(updates []bitstream.FrameUpdate) {
		for _, u := range updates {
			mirror[u.Addr] = append([]uint32(nil), u.Data...)
		}
	}
	var crash *crashPoint
	sys.crashHook = func(stage string) {
		if stage != "post" {
			return
		}
		data, err := os.ReadFile(jpath)
		if err != nil {
			b.Fatal(err)
		}
		if off := sys.jrnl.j.Offset(); int64(len(data)) > off {
			data = data[:off]
		}
		crash = &crashPoint{stage: stage, seq: sys.jrnl.seq,
			jdata: append([]byte(nil), data...), frames: cloneFrames(mirror)}
	}
	b01, err := itc99.Get("b01")
	if err != nil {
		b.Fatal(err)
	}
	if _, err := sys.Load(b01, fabric.Rect{Row: 0, Col: 0, H: 4, W: 4}); err != nil {
		b.Fatal(err)
	}
	if _, err := sys.Load(mkCounter("c1"), fabric.Rect{Row: 0, Col: 8, H: 2, W: 2}); err != nil {
		b.Fatal(err)
	}
	if err := sys.Move("c1", fabric.Rect{Row: 6, Col: 10, H: 2, W: 2}); err != nil {
		b.Fatal(err)
	}
	if crash == nil {
		b.Fatal("no post boundary fired")
	}
	rebuild := func() (*fabric.Device, string) {
		path := dir + "/crash.journal"
		if err := os.WriteFile(path, crash.jdata, 0o644); err != nil {
			b.Fatal(err)
		}
		dev := fabric.NewDevice(fabric.TestDevice)
		for addr, words := range crash.frames {
			if err := dev.WriteFrame(addr.Major, addr.Minor, words); err != nil {
				b.Fatal(err)
			}
		}
		return dev, path
	}
	b.ReportAllocs()
	b.ResetTimer()
	var framesChecked int
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dev, path := rebuild()
		b.StartTimer()
		_, rep, err := Recover(dev, path)
		if err != nil {
			b.Fatal(err)
		}
		if rep.Action != "rolled-forward" {
			b.Fatalf("action = %q, want rolled-forward", rep.Action)
		}
		framesChecked = rep.FramesChecked
	}
	b.ReportMetric(b.Elapsed().Seconds()*1e3/float64(b.N), "recover_ms")
	b.ReportMetric(float64(framesChecked), "frames_checked")
}
