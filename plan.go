package rlm

import (
	"fmt"
	"strings"

	"repro/internal/area"
	"repro/internal/fabric"
	"repro/internal/netlist"
	"repro/internal/place"
)

// Plan is a transaction: an ordered sequence of load / unload / move
// operations that is dry-run against the area book-keeping as a whole
// before a single frame is streamed, and rolled back to the pre-commit
// configuration checkpoint if any step fails physically.
//
//	err := sys.Plan().
//		Unload("b02").
//		Move("dsp", fabric.Rect{Row: 0, Col: 19, H: 5, W: 5}).
//		Load(nl, fabric.Rect{Row: 5, Col: 0, H: 11, W: 20}).
//		Commit()
//
// A Plan is not safe for concurrent use and should be committed once.
type Plan struct {
	sys *System
	ops []planOp
}

type planOpKind uint8

const (
	opLoad planOpKind = iota
	opUnload
	opMove
	opMoveStaged
)

type planOp struct {
	kind    planOpKind
	nl      *netlist.Netlist
	name    string
	region  fabric.Rect
	maxStep int
}

func (op planOp) String() string {
	switch op.kind {
	case opLoad:
		return fmt.Sprintf("load %s %v", op.name, op.region)
	case opUnload:
		return fmt.Sprintf("unload %s", op.name)
	case opMove:
		return fmt.Sprintf("move %s -> %v", op.name, op.region)
	case opMoveStaged:
		return fmt.Sprintf("move-staged %s -> %v step<=%d", op.name, op.region, op.maxStep)
	}
	return "op?"
}

// Plan starts an empty transaction on the system.
func (s *System) Plan() *Plan { return &Plan{sys: s} }

// Load schedules placing a netlist (auto-sized region when zero).
func (p *Plan) Load(nl *netlist.Netlist, region fabric.Rect) *Plan {
	p.ops = append(p.ops, planOp{kind: opLoad, nl: nl, name: nl.Name, region: region})
	return p
}

// Unload schedules decommissioning a design.
func (p *Plan) Unload(name string) *Plan {
	p.ops = append(p.ops, planOp{kind: opUnload, name: name})
	return p
}

// Move schedules relocating a design to a new region of identical shape.
func (p *Plan) Move(name string, to fabric.Rect) *Plan {
	p.ops = append(p.ops, planOp{kind: opMove, name: name, region: to})
	return p
}

// MoveStaged schedules a staged relocation bounding each hop to maxStep.
func (p *Plan) MoveStaged(name string, to fabric.Rect, maxStep int) *Plan {
	p.ops = append(p.ops, planOp{kind: opMoveStaged, name: name, region: to, maxStep: maxStep})
	return p
}

// Ops returns the number of scheduled operations.
func (p *Plan) Ops() int { return len(p.ops) }

// Validate dry-runs the whole transaction against the current area
// book-keeping without touching the fabric. The returned error wraps
// ErrPlanInvalid plus the underlying sentinel for the failing operation.
func (p *Plan) Validate() error {
	p.sys.mu.RLock()
	defer p.sys.mu.RUnlock()
	return p.sys.validatePlanLocked(p.ops)
}

// Commit validates and then executes the transaction under the system
// lock. The whole plan is validated first (dry-run against the area
// book-keeping), then executed under a single frame-granular checkpoint
// covering the union of frames the ops touch, with the ops' frame writes
// coalesced: independent operations stream as one batched, sync/CRC-
// bracketed configuration between relocation wait points instead of one
// stream per frame. A validation failure leaves the system untouched; a
// physical mid-plan failure streams the pre-commit recovery frames and
// restores the book-keeping, so the commit is all-or-nothing either way.
func (p *Plan) Commit() error {
	s := p.sys
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.validatePlanLocked(p.ops); err != nil {
		return err
	}
	snap, err := s.checkpointLocked()
	if err != nil {
		return err
	}
	defer s.releaseCheckpointLocked(snap)
	if err := s.journalBeginLocked(snap, "plan", "", fabric.Rect{}, p.describe()); err != nil {
		return err
	}
	execErr := s.engine.Tool.InBatch(func() error {
		for i, op := range p.ops {
			if err := s.executeOpLocked(op); err != nil {
				return fmt.Errorf("rlm: plan op %d (%s): %w", i, op, err)
			}
		}
		return nil
	})
	if execErr == nil {
		// Harvest the pipelined shift-out before the commit is declared
		// done: ops overlapped their planning with earlier ops' streams,
		// and a transport failure anywhere in the plan fails the whole
		// transaction — unless the retry ladder re-delivers it.
		execErr = s.finishOpLocked(snap)
	}
	if execErr != nil {
		s.restoreLocked(snap, execErr)
		s.journalAbortLocked()
		s.quarantineSweepLocked()
		return execErr
	}
	return nil
}

// describe renders the op list for the journal's intent record.
func (p *Plan) describe() string {
	parts := make([]string, len(p.ops))
	for i, op := range p.ops {
		parts[i] = op.String()
	}
	return strings.Join(parts, "; ")
}

func (s *System) executeOpLocked(op planOp) error {
	switch op.kind {
	case opLoad:
		region, err := s.checkLoadLocked(op.nl, op.region)
		if err != nil {
			return err
		}
		_, err = s.loadRaw(op.nl, region)
		return err
	case opUnload:
		if _, ok := s.designs[op.name]; !ok {
			return fmt.Errorf("%w: %q", ErrUnknownDesign, op.name)
		}
		return s.unloadRaw(op.name)
	case opMove:
		if err := s.checkMoveLocked(op.name, op.region); err != nil {
			return err
		}
		return s.moveRaw(op.name, op.region)
	case opMoveStaged:
		d, ok := s.designs[op.name]
		if !ok {
			return fmt.Errorf("%w: %q", ErrUnknownDesign, op.name)
		}
		hops, err := s.stagedHopsLocked(op.name, d.Region, op.region, op.maxStep)
		if err != nil {
			return err
		}
		for _, next := range hops {
			if err := s.moveRaw(op.name, next); err != nil {
				return err
			}
		}
		return nil
	}
	return fmt.Errorf("rlm: unknown plan op")
}

// validatePlanLocked simulates the whole op sequence on a clone of the
// area manager plus shadow name/shape tables.
func (s *System) validatePlanLocked(ops []planOp) error {
	clone := s.area.Clone()
	ids := make(map[string]int, len(s.regions))
	shapes := make(map[string]fabric.Rect, len(s.designs))
	for name, id := range s.regions {
		ids[name] = id
	}
	for name, d := range s.designs {
		shapes[name] = d.Region
	}
	invalid := func(i int, op planOp, cause error) error {
		return fmt.Errorf("%w: op %d (%s): %w", ErrPlanInvalid, i, op, cause)
	}
	for i, op := range ops {
		switch op.kind {
		case opLoad:
			if op.nl == nil {
				return invalid(i, op, fmt.Errorf("nil netlist"))
			}
			if _, dup := shapes[op.name]; dup {
				return invalid(i, op, ErrDuplicateDesign)
			}
			// Degraded-mode admission: a plan that adds load is refused
			// outright while healthy capacity is below the watermark.
			if err := s.admitLocked(); err != nil {
				return invalid(i, op, err)
			}
			region := op.region
			if region.Area() == 0 {
				proto, err := place.AutoRegion(s.dev, op.nl, 0, 0, 0.4)
				if err != nil {
					return invalid(i, op, fmt.Errorf("%w: %v", ErrNoSpace, err))
				}
				var ok bool
				region, ok = clone.FindPlacement(proto.H, proto.W, area.BestFit)
				if !ok {
					return invalid(i, op, ErrNoSpace)
				}
			} else if !clone.Fits(region) {
				return invalid(i, op, ErrRegionBusy)
			}
			id, err := clone.AllocateAt(region)
			if err != nil {
				return invalid(i, op, ErrRegionBusy)
			}
			ids[op.name], shapes[op.name] = id, region
		case opUnload:
			id, ok := ids[op.name]
			if !ok {
				return invalid(i, op, ErrUnknownDesign)
			}
			if err := clone.Free(id); err != nil {
				return invalid(i, op, err)
			}
			delete(ids, op.name)
			delete(shapes, op.name)
		case opMove, opMoveStaged:
			id, ok := ids[op.name]
			if !ok {
				return invalid(i, op, ErrUnknownDesign)
			}
			cur := shapes[op.name]
			if op.region.H != cur.H || op.region.W != cur.W {
				return invalid(i, op, ErrRegionMismatch)
			}
			maxStep := op.maxStep
			if op.kind == opMove {
				// A direct move is a single unbounded hop.
				maxStep = 1 << 30
			} else if maxStep < 1 {
				maxStep = 1
			}
			for cur != op.region {
				dr := clampStep(op.region.Row-cur.Row, maxStep)
				dc := clampStep(op.region.Col-cur.Col, maxStep)
				next := fabric.Rect{Row: cur.Row + dr, Col: cur.Col + dc, H: cur.H, W: cur.W}
				if err := clone.Move(id, next); err != nil {
					return invalid(i, op, fmt.Errorf("%w: hop %v", ErrRegionBusy, next))
				}
				cur = next
			}
			shapes[op.name] = op.region
		}
	}
	return nil
}
