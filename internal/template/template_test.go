package template

import (
	"testing"

	"repro/internal/fabric"
	"repro/internal/itc99"
	"repro/internal/netlist"
	"repro/internal/place"
	"repro/internal/route"
)

// capture places a region-contained design and captures its template, or
// fails the test: the capture contract (interior routing stays inside the
// region) is exactly what place.Options.Contain delivers.
func capture(t *testing.T, cfg itc99.GenConfig, region fabric.Rect) (*fabric.Device, *place.Design, netlist.Canon, *Template) {
	t.Helper()
	dev := fabric.NewDevice(fabric.XCV50)
	nl := itc99.Generate(cfg)
	d, err := place.Place(dev, nl, place.Options{
		Region: region, Router: route.NewRouter(dev), Contain: true,
	})
	if err != nil {
		t.Fatalf("contained place: %v", err)
	}
	canon := nl.Canonical()
	tpl, ok := Capture(dev, d, canon)
	if !ok {
		t.Fatal("capture refused a region-contained design")
	}
	return dev, d, canon, tpl
}

func genCfg(seed uint64) itc99.GenConfig {
	cfg := itc99.GenConfig{Name: "gen", Inputs: 4, Outputs: 3, Seed: seed, Style: itc99.FreeRunning}
	return cfg.SizedTo(4*4*fabric.CellsPerCLB, 0.3)
}

func TestCaptureShape(t *testing.T) {
	region := fabric.Rect{Row: 4, Col: 6, H: 4, W: 4}
	dev, d, canon, tpl := capture(t, genCfg(11), region)
	if got := KeyFor(dev, region, canon.Digest); tpl.Key != got {
		t.Fatalf("key mismatch: %v vs %v", tpl.Key, got)
	}
	if s := tpl.Key.String(); s == "" {
		t.Fatal("empty key string")
	}
	distinct := map[fabric.CellRef]bool{}
	for _, ref := range d.CellOf {
		distinct[ref] = true
	}
	if len(tpl.Cells) != len(distinct) {
		t.Fatalf("image has %d cells, design occupies %d", len(tpl.Cells), len(distinct))
	}
	if len(tpl.Inputs) != len(d.NL.Inputs()) || len(tpl.Outputs) != len(d.NL.Outputs()) {
		t.Fatalf("boundary manifest %d in / %d out", len(tpl.Inputs), len(tpl.Outputs))
	}
	if tpl.HasRAM() {
		t.Fatal("FF/LUT design reports RAM")
	}
	// Every image coordinate is region-relative and in range.
	for _, ci := range tpl.Cells {
		if ci.At.DRow < 0 || ci.At.DRow >= region.H || ci.At.DCol < 0 || ci.At.DCol >= region.W {
			t.Fatalf("cell offset %+v outside a %dx%d shape", ci.At, region.H, region.W)
		}
	}
}

func TestUsedAtTranslates(t *testing.T) {
	region := fabric.Rect{Row: 4, Col: 6, H: 4, W: 4}
	dev, _, _, tpl := capture(t, genCfg(11), region)
	there := fabric.Rect{Row: 10, Col: 14, H: 4, W: 4}
	home := tpl.UsedAt(dev, region)
	moved := tpl.UsedAt(dev, there)
	if len(home) == 0 || len(home) != len(moved) {
		t.Fatalf("used sets: %d at home, %d translated", len(home), len(moved))
	}
	for _, n := range moved {
		c, _, ok := dev.SplitNode(n)
		if !ok || !there.Contains(c) {
			t.Fatalf("translated used node %d escapes the target region", n)
		}
	}
}

func TestInteriorNetsTranslate(t *testing.T) {
	region := fabric.Rect{Row: 4, Col: 6, H: 4, W: 4}
	dev, d, canon, tpl := capture(t, genCfg(17), region)
	there := fabric.Rect{Row: 1, Col: 2, H: 4, W: 4}
	nets := tpl.InteriorNets(dev, there, d.NL, canon)
	if len(nets) != len(tpl.Nets) {
		t.Fatalf("%d routed nets from %d image nets", len(nets), len(tpl.Nets))
	}
	for i := range nets {
		if nets[i].Name == "" {
			t.Fatal("interior net lost its name binding")
		}
		for _, sink := range nets[i].Sinks {
			path := nets[i].Paths[sink]
			if len(path) < 2 {
				t.Fatalf("net %s: degenerate path", nets[i].Name)
			}
			for _, n := range path {
				c, _, ok := dev.SplitNode(n)
				if !ok || !there.Contains(c) {
					t.Fatalf("net %s: translated path escapes the target region", nets[i].Name)
				}
			}
		}
	}
	// The translated image must apply cleanly to a fresh device: every PIP
	// of every path exists at the target columns (translation invariance of
	// the column-relative interconnect).
	for _, ci := range tpl.Cells {
		dev.WriteCell(ci.At.At(there), ci.Cfg)
	}
	if err := route.Apply(dev, nets); err != nil {
		t.Fatalf("translated interior nets did not apply: %v", err)
	}
}

func TestCaptureRAMDesign(t *testing.T) {
	cfg := genCfg(23)
	cfg.RAMs = 1
	cfg = cfg.SizedTo(4*4*fabric.CellsPerCLB, 0.3)
	region := fabric.Rect{Row: 2, Col: 3, H: 4, W: 4}
	_, _, _, tpl := capture(t, cfg, region)
	if !tpl.HasRAM() {
		t.Fatal("RAM design not flagged: translation must know to fall back")
	}
}
