package template

import (
	"testing"

	"repro/internal/netlist"
)

func key(b byte) Key {
	var d netlist.Digest
	d[0] = b
	return Key{Device: "XCV50", H: 4, W: 4, Digest: d}
}

func TestStoreLRUEviction(t *testing.T) {
	s := NewStore(Policy{Capacity: 2})
	k1, k2, k3 := key(1), key(2), key(3)
	if ev := s.Put(k1, &Template{}); ev != nil {
		t.Fatalf("unexpected eviction %v", ev)
	}
	if ev := s.Put(k2, &Template{}); ev != nil {
		t.Fatalf("unexpected eviction %v", ev)
	}
	// Touch k1 so k2 becomes the LRU victim.
	if _, ok := s.Get(k1); !ok {
		t.Fatal("k1 missing")
	}
	ev := s.Put(k3, &Template{})
	if len(ev) != 1 || ev[0] != k2 {
		t.Fatalf("evicted %v, want [k2]", ev)
	}
	if s.Len() != 2 {
		t.Fatalf("len %d after eviction", s.Len())
	}
	if s.Contains(k2) {
		t.Fatal("k2 still present")
	}
	if !s.Contains(k1) || !s.Contains(k3) {
		t.Fatal("k1/k3 missing")
	}
	st := s.Stats()
	if st.Stores != 3 || st.Evictions != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestStoreUnbounded(t *testing.T) {
	s := NewStore(Policy{})
	for b := 0; b < 50; b++ {
		if ev := s.Put(key(byte(b)), &Template{}); ev != nil {
			t.Fatalf("unbounded store evicted %v", ev)
		}
	}
	if s.Len() != 50 {
		t.Fatalf("len %d", s.Len())
	}
}

func TestStoreStatsAndHitRate(t *testing.T) {
	s := NewStore(Policy{Capacity: 4})
	if _, ok := s.Get(key(1)); ok {
		t.Fatal("phantom hit")
	}
	s.Put(key(1), &Template{})
	if _, ok := s.Get(key(1)); !ok {
		t.Fatal("miss after put")
	}
	if _, ok := s.Get(key(1)); !ok {
		t.Fatal("miss after put")
	}
	st := s.Stats()
	if st.Hits != 2 || st.Misses != 1 {
		t.Fatalf("stats %+v", st)
	}
	if got := st.HitRate(); got < 0.66 || got > 0.67 {
		t.Fatalf("hit rate %v", got)
	}
	if (Stats{}).HitRate() != 0 {
		t.Fatal("empty hit rate not zero")
	}
	s.NoteTranslation()
	s.NoteFallback()
	s.NoteFallback()
	st = s.Stats()
	if st.Translations != 1 || st.Fallbacks != 2 {
		t.Fatalf("stats %+v", st)
	}
}

// Lookup refreshes recency but never counts toward the hit rate: the hit
// rate means "fraction of loads served warm", not "moves that found an
// image".
func TestStoreLookupNoStats(t *testing.T) {
	s := NewStore(Policy{Capacity: 2})
	s.Put(key(1), &Template{})
	s.Put(key(2), &Template{})
	if _, ok := s.Lookup(key(1)); !ok {
		t.Fatal("lookup miss")
	}
	if _, ok := s.Lookup(key(9)); ok {
		t.Fatal("phantom lookup")
	}
	st := s.Stats()
	if st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("lookup counted in stats: %+v", st)
	}
	// The lookup refreshed k1: k2 is now the victim.
	if ev := s.Put(key(3), &Template{}); len(ev) != 1 || ev[0] != key(2) {
		t.Fatalf("evicted %v, want [k2]", ev)
	}
}

func TestStorePutReplace(t *testing.T) {
	s := NewStore(Policy{Capacity: 2})
	a, b := &Template{}, &Template{}
	s.Put(key(1), a)
	if ev := s.Put(key(1), b); ev != nil {
		t.Fatalf("replace evicted %v", ev)
	}
	if s.Len() != 1 {
		t.Fatalf("len %d after replace", s.Len())
	}
	got, _ := s.Get(key(1))
	if got != b {
		t.Fatal("replace did not update the entry")
	}
	if st := s.Stats(); st.Stores != 1 {
		t.Fatalf("replace counted as a store: %+v", st)
	}
}
