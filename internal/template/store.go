package template

import (
	"container/list"
	"sync"
)

// Policy configures a Store.
type Policy struct {
	// Capacity bounds the number of templates held; when full, the least
	// recently used entry is evicted. Zero or negative means unbounded.
	Capacity int
}

// Stats counts cache outcomes. Hits/Misses/Stores/Evictions are maintained
// by the store; Translations/Fallbacks are relocation outcomes noted by the
// run-time manager (a translated move, or a design that had to fall back to
// cell-by-cell replication).
type Stats struct {
	Hits, Misses, Stores, Evictions int
	Translations, Fallbacks         int
}

// HitRate returns hits / (hits + misses), or 0 before any lookup.
func (s Stats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

type entry struct {
	key Key
	t   *Template
}

// Store is a content-addressed template cache with LRU eviction. It is safe
// for concurrent use.
type Store struct {
	mu      sync.Mutex
	cap     int
	lru     *list.List // front = most recently used; values are *entry
	entries map[Key]*list.Element
	stats   Stats
}

// NewStore builds a store under the given policy.
func NewStore(p Policy) *Store {
	return &Store{cap: p.Capacity, lru: list.New(), entries: map[Key]*list.Element{}}
}

// Get looks a template up, counting a hit or miss and refreshing recency.
func (s *Store) Get(k Key) (*Template, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.entries[k]
	if !ok {
		s.stats.Misses++
		return nil, false
	}
	s.stats.Hits++
	s.lru.MoveToFront(el)
	return el.Value.(*entry).t, true
}

// Lookup is Get without the hit/miss accounting (recency still refreshes).
// The relocation path uses it, so the hit-rate statistic keeps meaning
// "fraction of loads served warm" rather than mixing in move lookups.
func (s *Store) Lookup(k Key) (*Template, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.entries[k]
	if !ok {
		return nil, false
	}
	s.lru.MoveToFront(el)
	return el.Value.(*entry).t, true
}

// Contains reports presence without touching stats or recency.
func (s *Store) Contains(k Key) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.entries[k]
	return ok
}

// Put stores a template, returning the keys evicted to make room.
func (s *Store) Put(k Key, t *Template) []Key {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.entries[k]; ok {
		el.Value.(*entry).t = t
		s.lru.MoveToFront(el)
		return nil
	}
	s.entries[k] = s.lru.PushFront(&entry{key: k, t: t})
	s.stats.Stores++
	var evicted []Key
	for s.cap > 0 && s.lru.Len() > s.cap {
		back := s.lru.Back()
		e := back.Value.(*entry)
		s.lru.Remove(back)
		delete(s.entries, e.key)
		s.stats.Evictions++
		evicted = append(evicted, e.key)
	}
	return evicted
}

// Len returns the number of cached templates.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lru.Len()
}

// Stats returns a snapshot of the counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// NoteTranslation records a relocation served by address translation.
func (s *Store) NoteTranslation() {
	s.mu.Lock()
	s.stats.Translations++
	s.mu.Unlock()
}

// NoteFallback records a relocation that fell back to cell replication.
func (s *Store) NoteFallback() {
	s.mu.Lock()
	s.stats.Fallbacks++
	s.mu.Unlock()
}
