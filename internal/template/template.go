// Package template implements a content-addressed store of pre-routed design
// templates. A template is captured from a placed-and-routed design whose
// interior routing is wholly contained in its region: because CLB frames are
// column-relative, the captured image is translation-invariant — the same
// cell words and PIP bits reproduce the design at any region of the same
// shape. The store keys images by canonical netlist digest plus region shape
// (plus device preset, since frame geometry is per-preset), so a repeated
// load of a popular design becomes frame splicing plus boundary-net routing
// instead of a full place-and-route, and a relocation of such a design
// becomes address translation plus a boundary patch instead of cell-by-cell
// replication.
package template

import (
	"fmt"
	"sort"

	"repro/internal/fabric"
	"repro/internal/netlist"
	"repro/internal/place"
	"repro/internal/route"
)

// Key identifies a template: what circuit, in what region shape, on what
// device family. The digest normalises node names and numbering away, so
// independently generated copies of the same circuit share a key.
type Key struct {
	Device string
	H, W   int
	Digest netlist.Digest
}

func (k Key) String() string {
	return fmt.Sprintf("%s/%dx%d/%s", k.Device, k.H, k.W, k.Digest.Short())
}

// KeyFor builds the store key of a netlist targeted at a region shape.
func KeyFor(dev *fabric.Device, region fabric.Rect, digest netlist.Digest) Key {
	return Key{Device: dev.Name, H: region.H, W: region.W, Digest: digest}
}

// RelNode addresses a tile-local routing node relative to a region origin.
type RelNode struct {
	DRow, DCol int
	Local      int
}

// At resolves the relative node against a concrete region origin.
func (r RelNode) At(dev *fabric.Device, region fabric.Rect) fabric.NodeID {
	return dev.NodeIDAt(fabric.Coord{Row: region.Row + r.DRow, Col: region.Col + r.DCol}, r.Local)
}

// RelCell addresses a logic cell relative to a region origin.
type RelCell struct {
	DRow, DCol, Cell int
}

// At resolves the relative cell against a concrete region origin.
func (r RelCell) At(region fabric.Rect) fabric.CellRef {
	return fabric.CellRef{
		Coord: fabric.Coord{Row: region.Row + r.DRow, Col: region.Col + r.DCol},
		Cell:  r.Cell,
	}
}

// CellImage is one configured cell of the image.
type CellImage struct {
	At  RelCell
	Cfg fabric.CellConfig
}

// IntPath is one source-to-sink path of an interior net.
type IntPath struct {
	Sink RelNode
	Path []RelNode // full path, source first, sink last
}

// IntNet is a fully region-contained routed net: its driver and every path
// to a pin sink lie inside the region. (A branch of the same driver feeding
// an output pad is boundary routing and lives in Outputs instead.)
type IntNet struct {
	Canon  int32 // canonical id of the driver node (for naming at load)
	Source RelNode
	Paths  []IntPath
}

// BoundaryIn describes one primary input's interior contract, indexed by
// input declaration position: the terminal pin sinks its freshly bound pad
// must be routed to at load time.
type BoundaryIn struct {
	Canon int32
	Sinks []RelNode
}

// BoundaryOut describes one primary output's interior contract, indexed by
// output declaration position: the interior driver node its freshly bound
// pad hangs off.
type BoundaryOut struct {
	Canon  int32
	Source RelNode
}

// CellBinding maps a canonical netlist id onto its image cell.
type CellBinding struct {
	Canon int32
	At    RelCell
}

// SourceBinding maps a canonical netlist id onto the interior node carrying
// its value (primary inputs are absent: their value source is the pad bound
// at load time).
type SourceBinding struct {
	Canon int32
	At    RelNode
}

// Template is a pre-routed, translation-invariant design image plus the
// boundary manifest and the book-keeping needed to re-bind it to a netlist
// that hashes the same.
type Template struct {
	Key Key

	Cells []CellImage
	Nets  []IntNet

	Inputs  []BoundaryIn
	Outputs []BoundaryOut

	CellOf   []CellBinding
	SourceOf []SourceBinding

	// used is every interior node the image occupies (sources, wires, pins),
	// sorted; the warm path conflict-checks its translation against the
	// engine's occupancy view before splicing a single frame.
	used []RelNode
}

// UsedAt translates the image's interior node set to a concrete region.
func (t *Template) UsedAt(dev *fabric.Device, region fabric.Rect) []fabric.NodeID {
	out := make([]fabric.NodeID, len(t.used))
	for i, r := range t.used {
		out[i] = r.At(dev, region)
	}
	return out
}

// relNodeOf converts an absolute node to region-relative form; ok is false
// for pads and for nodes whose tile lies outside the region.
func relNodeOf(dev *fabric.Device, region fabric.Rect, n fabric.NodeID) (RelNode, bool) {
	c, local, ok := dev.SplitNode(n)
	if !ok || !region.Contains(c) {
		return RelNode{}, false
	}
	return RelNode{DRow: c.Row - region.Row, DCol: c.Col - region.Col, Local: local}, true
}

// relPath converts a whole path; ok is false if any node escapes the region.
func relPath(dev *fabric.Device, region fabric.Rect, path []fabric.NodeID) ([]RelNode, bool) {
	out := make([]RelNode, len(path))
	for i, n := range path {
		r, ok := relNodeOf(dev, region, n)
		if !ok {
			return nil, false
		}
		out[i] = r
	}
	return out, true
}

// Capture extracts a template from a freshly placed design (d.Nets must
// describe the live routing — true immediately after place-and-route). It
// returns false when the design is not translation-safe: some interior path
// escapes its region, or an output is driven straight from an input pad.
func Capture(dev *fabric.Device, d *place.Design, canon netlist.Canon) (*Template, bool) {
	region := d.Region
	t := &Template{Key: KeyFor(dev, region, canon.Digest)}

	// Pad node -> output declaration position, for classifying pad sinks.
	outIDs := d.NL.Outputs()
	padOut := map[fabric.NodeID]int{}
	for k, id := range outIDs {
		if p, ok := d.PadOf[id]; ok {
			padOut[dev.PadNodeID(p)] = k
		}
	}
	inIDs := d.NL.Inputs()
	padIn := map[fabric.NodeID]int{}
	for k, id := range inIDs {
		if p, ok := d.PadOf[id]; ok {
			padIn[dev.PadNodeID(p)] = k
		}
	}

	t.Inputs = make([]BoundaryIn, len(inIDs))
	for k, id := range inIDs {
		t.Inputs[k].Canon = canon.Index[id]
	}
	t.Outputs = make([]BoundaryOut, len(outIDs))
	outBound := make([]bool, len(outIDs))
	for k, id := range outIDs {
		t.Outputs[k].Canon = canon.Index[id]
	}

	for i := range d.Nets {
		rn := &d.Nets[i]
		if k, ok := padIn[rn.Source]; ok {
			// Input net: pad-driven, re-routed at load. Record its interior
			// pin sinks; a pad sink here means an output wired straight to an
			// input, which has no interior driver to hang a template off.
			for _, sink := range rn.Sinks {
				if _, isPad := padOut[sink]; isPad {
					return nil, false
				}
				r, ok := relNodeOf(dev, region, sink)
				if !ok {
					return nil, false
				}
				t.Inputs[k].Sinks = append(t.Inputs[k].Sinks, r)
			}
			continue
		}
		src, ok := relNodeOf(dev, region, rn.Source)
		if !ok {
			return nil, false // driver outside its own region: not capturable
		}
		in := IntNet{Source: src}
		drv, ok := driverID(d, rn.Source)
		if !ok {
			return nil, false
		}
		in.Canon = canon.Index[drv]
		for _, sink := range rn.Sinks {
			if k, isPad := padOut[sink]; isPad {
				// Boundary branch: the pad-side path is re-routed at load;
				// only the interior driver is recorded.
				t.Outputs[k].Source = src
				outBound[k] = true
				continue
			}
			rp, ok := relPath(dev, region, rn.Paths[sink])
			if !ok {
				return nil, false // interior routing escapes the region
			}
			r, _ := relNodeOf(dev, region, sink)
			in.Paths = append(in.Paths, IntPath{Sink: r, Path: rp})
		}
		if len(in.Paths) > 0 {
			t.Nets = append(t.Nets, in)
		}
	}
	// Every output must have found an interior driver (outputs with no net at
	// all cannot happen: buildNets errors on a sink-less source only, and an
	// output IS a sink of its driver's net).
	for k := range t.Outputs {
		if !outBound[k] {
			return nil, false
		}
	}

	// Cells, in deterministic (row, col, cell) order.
	for _, ref := range d.OccupiedCells() {
		if !region.Contains(ref.Coord) {
			return nil, false
		}
		t.Cells = append(t.Cells, CellImage{
			At: RelCell{
				DRow: ref.Row - region.Row, DCol: ref.Col - region.Col, Cell: ref.Cell,
			},
			Cfg: dev.ReadCell(ref),
		})
	}

	// Canonical-id bindings.
	for id, ref := range d.CellOf {
		t.CellOf = append(t.CellOf, CellBinding{
			Canon: canon.Index[id],
			At:    RelCell{DRow: ref.Row - region.Row, DCol: ref.Col - region.Col, Cell: ref.Cell},
		})
	}
	sort.Slice(t.CellOf, func(i, j int) bool { return t.CellOf[i].Canon < t.CellOf[j].Canon })
	for id, src := range d.SourceOf {
		if d.NL.Nodes[id].Kind == netlist.KindInput {
			continue // pad source, re-bound at load
		}
		r, ok := relNodeOf(dev, region, src)
		if !ok {
			return nil, false
		}
		t.SourceOf = append(t.SourceOf, SourceBinding{Canon: canon.Index[id], At: r})
	}
	sort.Slice(t.SourceOf, func(i, j int) bool { return t.SourceOf[i].Canon < t.SourceOf[j].Canon })

	t.buildUsed()
	return t, true
}

// driverID finds the netlist node whose value a fabric source node carries.
func driverID(d *place.Design, src fabric.NodeID) (netlist.ID, bool) {
	for id, n := range d.SourceOf {
		if n == src && d.NL.Nodes[id].Kind != netlist.KindOutput {
			return id, true
		}
	}
	return 0, false
}

// buildUsed computes the sorted interior node set of the image: every node
// on an interior path plus the output nodes of every configured cell (a
// configured cell's outputs are occupancy even when unrouted).
func (t *Template) buildUsed() {
	seen := map[RelNode]bool{}
	add := func(r RelNode) {
		if !seen[r] {
			seen[r] = true
			t.used = append(t.used, r)
		}
	}
	for i := range t.Nets {
		add(t.Nets[i].Source)
		for _, p := range t.Nets[i].Paths {
			for _, r := range p.Path {
				add(r)
			}
		}
	}
	for _, ci := range t.Cells {
		add(RelNode{DRow: ci.At.DRow, DCol: ci.At.DCol, Local: fabric.LocalOutX(ci.At.Cell)})
		add(RelNode{DRow: ci.At.DRow, DCol: ci.At.DCol, Local: fabric.LocalOutXQ(ci.At.Cell)})
	}
	sort.Slice(t.used, func(i, j int) bool {
		a, b := t.used[i], t.used[j]
		if a.DRow != b.DRow {
			return a.DRow < b.DRow
		}
		if a.DCol != b.DCol {
			return a.DCol < b.DCol
		}
		return a.Local < b.Local
	})
}

// HasRAM reports whether the image configures any distributed RAM cell.
func (t *Template) HasRAM() bool {
	for _, ci := range t.Cells {
		if ci.Cfg.RAM {
			return true
		}
	}
	return false
}

// InteriorNets materialises the image's interior nets at a concrete region
// as routed nets (names resolved through the target netlist via the
// canonical order), ready to merge into a Design's net list.
func (t *Template) InteriorNets(dev *fabric.Device, region fabric.Rect, nl *netlist.Netlist, canon netlist.Canon) []route.RoutedNet {
	out := make([]route.RoutedNet, 0, len(t.Nets))
	for i := range t.Nets {
		in := &t.Nets[i]
		rn := route.RoutedNet{
			Net: route.Net{
				Name:   nl.Nodes[canon.Order[in.Canon]].Name,
				Source: in.Source.At(dev, region),
			},
			Paths: make(map[fabric.NodeID][]fabric.NodeID, len(in.Paths)),
		}
		seen := map[fabric.NodeID]bool{}
		for _, p := range in.Paths {
			sink := p.Sink.At(dev, region)
			rn.Sinks = append(rn.Sinks, sink)
			abs := make([]fabric.NodeID, len(p.Path))
			for j, r := range p.Path {
				abs[j] = r.At(dev, region)
				if !seen[abs[j]] {
					seen[abs[j]] = true
					rn.Tree = append(rn.Tree, abs[j])
				}
			}
			rn.Paths[sink] = abs
		}
		out = append(out, rn)
	}
	return out
}
