// Package place maps technology netlists onto the fabric: it packs LUT/FF
// pairs into logic cells (Virtex-style), assigns cells to CLBs inside a
// rectangular region, binds primary I/O to IOB pads, and drives the router.
// The result is a Design — the live object the simulator executes and the
// relocation engine rearranges.
package place

import (
	"fmt"
	"sort"

	"repro/internal/fabric"
	"repro/internal/netlist"
	"repro/internal/route"
)

// Design is a netlist implemented on the device: placement, pad binding and
// routed nets. It is the unit the paper's tool relocates and defragments.
type Design struct {
	Name string
	Dev  *fabric.Device
	NL   *netlist.Netlist
	// Region is the rectangle the logic was placed into.
	Region fabric.Rect
	// CellOf maps cell-occupying netlist nodes (LUT, FF, latch, const,
	// RAM) to their logic cell. A LUT packed with the FF it feeds shares
	// the FF's cell and has no entry of its own in Occupied beyond it.
	CellOf map[netlist.ID]fabric.CellRef
	// PadOf maps primary inputs and outputs to their pads.
	PadOf map[netlist.ID]fabric.PadRef
	// SourceOf maps each value-producing netlist node to the fabric node
	// that carries its value (cell output or input pad).
	SourceOf map[netlist.ID]fabric.NodeID
	// Nets are the routed signal nets.
	Nets []route.RoutedNet
}

// Options controls placement.
type Options struct {
	// Region places the design into this rectangle; the zero value
	// auto-sizes a region anchored at (0,0).
	Region fabric.Rect
	// Utilisation is the target fraction of logic cells used inside the
	// region when auto-sizing (default 0.5; lower is easier to route).
	Utilisation float64
	// InputSide and OutputSide select the pad edges (default West/East).
	InputSide, OutputSide fabric.Dir
	// ReservePads skips pads already used by other designs.
	ReservePads map[fabric.PadRef]bool
	// Router to use (shared across designs so occupancy accumulates); nil
	// builds a fresh one.
	Router *route.Router
	// Contain confines cell-driven routing to the design's region (boundary
	// branches to pads stay free): the resulting interior image is
	// translation-invariant and capturable as a template. Containment makes
	// routing strictly harder; callers should fall back to an unconstrained
	// placement when it fails.
	Contain bool
}

// cellsNeeded counts logic cells after LUT/FF packing.
func cellsNeeded(nl *netlist.Netlist) int {
	packed := packCells(nl)
	return len(packed)
}

// packedCell is one logic cell's worth of netlist nodes.
type packedCell struct {
	lut   netlist.ID // KindLUT/KindConst/KindRAM occupying the LUT, or None
	state netlist.ID // KindFF/KindLatch occupying the storage element, or None
}

// packCells groups netlist nodes into logic cells: an FF (or latch) packs
// with the LUT driving its D when that is legal; everything else gets its
// own cell.
func packCells(nl *netlist.Netlist) []packedCell {
	// Count LUT fanout to FFs: a LUT may host at most one FF.
	taken := map[netlist.ID]netlist.ID{} // LUT id -> FF id packed with it
	var cells []packedCell
	for id, nd := range nl.Nodes {
		if nd.Kind != netlist.KindFF && nd.Kind != netlist.KindLatch {
			continue
		}
		d := nd.D
		if d != netlist.None && nl.Nodes[d].Kind == netlist.KindLUT {
			if _, used := taken[d]; !used {
				taken[d] = netlist.ID(id)
				continue
			}
		}
	}
	for id, nd := range nl.Nodes {
		switch nd.Kind {
		case netlist.KindLUT, netlist.KindConst, netlist.KindRAM:
			pc := packedCell{lut: netlist.ID(id), state: netlist.None}
			if ff, ok := taken[netlist.ID(id)]; ok {
				pc.state = ff
			}
			cells = append(cells, pc)
		case netlist.KindFF, netlist.KindLatch:
			d := nd.D
			if d != netlist.None && nl.Nodes[d].Kind == netlist.KindLUT && taken[d] == netlist.ID(id) {
				continue // packed with its LUT
			}
			cells = append(cells, packedCell{lut: netlist.None, state: netlist.ID(id)})
		}
	}
	return cells
}

// AutoRegion returns a region sized for the netlist at the given utilisation
// anchored at the rectangle's (Row, Col).
func AutoRegion(dev *fabric.Device, nl *netlist.Netlist, row, col int, utilisation float64) (fabric.Rect, error) {
	if utilisation <= 0 || utilisation > 1 {
		utilisation = 0.5
	}
	need := cellsNeeded(nl)
	perCLB := int(float64(fabric.CellsPerCLB) * utilisation)
	if perCLB < 1 {
		perCLB = 1
	}
	clbs := (need + perCLB - 1) / perCLB
	if clbs < 1 {
		clbs = 1
	}
	// Near-square region.
	w := 1
	for w*w < clbs {
		w++
	}
	h := (clbs + w - 1) / w
	r := fabric.Rect{Row: row, Col: col, H: h, W: w}
	if r.Row+r.H > dev.Rows || r.Col+r.W > dev.Cols {
		return fabric.Rect{}, fmt.Errorf("place: design needs %v, exceeds device %dx%d", r, dev.Rows, dev.Cols)
	}
	return r, nil
}

// Place implements a netlist on the device and returns the Design. The
// device configuration (cells, PIPs, pads) is written through the
// designer-level path, as the traditional development tool would.
func Place(dev *fabric.Device, nl *netlist.Netlist, opts Options) (*Design, error) {
	if err := nl.Validate(); err != nil {
		return nil, err
	}
	if opts.Utilisation == 0 {
		opts.Utilisation = 0.5
	}
	if opts.InputSide == opts.OutputSide {
		opts.InputSide, opts.OutputSide = fabric.West, fabric.East
	}
	region := opts.Region
	if region.Area() == 0 {
		var err error
		region, err = AutoRegion(dev, nl, 0, 0, opts.Utilisation)
		if err != nil {
			return nil, err
		}
	}
	cells := packCells(nl)
	if region.Area()*fabric.CellsPerCLB < len(cells) {
		return nil, fmt.Errorf("place: %d cells exceed region %v capacity %d",
			len(cells), region, region.Area()*fabric.CellsPerCLB)
	}

	d := &Design{
		Name:     nl.Name,
		Dev:      dev,
		NL:       nl,
		Region:   region,
		CellOf:   map[netlist.ID]fabric.CellRef{},
		PadOf:    map[netlist.ID]fabric.PadRef{},
		SourceOf: map[netlist.ID]fabric.NodeID{},
	}

	// Pad reservations must be atomic: on any failure the pads this design
	// took are handed back, so a shared ReservePads map never leaks
	// reservations for a design that was not registered. (The device-side
	// writes of a failed placement are the caller's rollback problem — the
	// run-time manager covers them with a configuration checkpoint.)
	reserved := opts.ReservePads
	fail := func(err error) (*Design, error) {
		if reserved != nil {
			for _, p := range d.PadOf {
				delete(reserved, p)
			}
		}
		return nil, err
	}

	// Assign packed cells to CLB cells row-major inside the region,
	// spreading across CLBs first (better routability than filling each
	// CLB to 4/4 before moving on).
	coords := region.Coords()
	slot := 0
	assign := func() fabric.CellRef {
		ref := fabric.CellRef{Coord: coords[slot%len(coords)], Cell: slot / len(coords)}
		slot++
		return ref
	}
	for _, pc := range cells {
		ref := assign()
		if pc.lut != netlist.None {
			d.CellOf[pc.lut] = ref
		}
		if pc.state != netlist.None {
			d.CellOf[pc.state] = ref
		}
	}

	// Bind pads.
	if err := d.bindPads(opts); err != nil {
		return fail(err)
	}

	// Write cell configurations and compute value sources.
	if err := d.configureCells(); err != nil {
		return fail(err)
	}

	// Build and route nets.
	nets, err := d.buildNets()
	if err != nil {
		return fail(err)
	}
	if opts.Contain {
		containNets(dev, nets, region)
	}
	router := opts.Router
	if router == nil {
		router = route.NewRouter(dev)
	}
	routed, err := router.RouteAll(nets)
	if err != nil {
		return fail(err)
	}
	if err := route.Apply(dev, routed); err != nil {
		return fail(err)
	}
	d.Nets = routed
	return d, nil
}

func (d *Design) bindPads(opts Options) error {
	used := opts.ReservePads
	if used == nil {
		used = map[fabric.PadRef]bool{}
	}
	alloc := func(side fabric.Dir) (fabric.PadRef, error) {
		max := d.Dev.Cols
		if side == fabric.West || side == fabric.East {
			max = d.Dev.Rows
		}
		for pos := 0; pos < max; pos++ {
			for k := 0; k < fabric.PadsPerEdgeTile; k++ {
				p := fabric.PadRef{Side: side, Pos: pos, K: k}
				if !used[p] {
					used[p] = true
					return p, nil
				}
			}
		}
		return fabric.PadRef{}, fmt.Errorf("place: out of pads on side %v", side)
	}
	for _, id := range d.NL.Inputs() {
		p, err := alloc(opts.InputSide)
		if err != nil {
			return err
		}
		d.PadOf[id] = p
		d.Dev.WritePad(p, fabric.PadConfig{Input: true})
		d.SourceOf[id] = d.Dev.PadNodeID(p)
	}
	for _, id := range d.NL.Outputs() {
		p, err := alloc(opts.OutputSide)
		if err != nil {
			return err
		}
		d.PadOf[id] = p
		// Output driver enabled when the net is applied.
	}
	return nil
}

// configureCells writes each occupied cell's configuration and records the
// fabric node carrying each netlist node's value.
func (d *Design) configureCells() error {
	// Group node->cell by cell.
	type occupants struct{ lut, state netlist.ID }
	byCell := map[fabric.CellRef]*occupants{}
	for id, ref := range d.CellOf {
		oc := byCell[ref]
		if oc == nil {
			oc = &occupants{lut: netlist.None, state: netlist.None}
			byCell[ref] = oc
		}
		switch d.NL.Nodes[id].Kind {
		case netlist.KindLUT, netlist.KindConst, netlist.KindRAM:
			oc.lut = id
		case netlist.KindFF, netlist.KindLatch:
			oc.state = id
		}
	}
	for ref, oc := range byCell {
		cc := fabric.CellConfig{Used: true}
		if oc.lut != netlist.None {
			nd := d.NL.Nodes[oc.lut]
			switch nd.Kind {
			case netlist.KindLUT:
				cc.LUT = fabric.ExpandLUT(nd.LUT, len(nd.Ins))
			case netlist.KindConst:
				if nd.LUT&1 == 1 {
					cc.LUT = fabric.LUTConst1
				} else {
					cc.LUT = fabric.LUTConst0
				}
			case netlist.KindRAM:
				cc.RAM = true
				cc.CEUsed = true // write enable on CE pin
			}
			d.SourceOf[oc.lut] = d.Dev.NodeIDAt(ref.Coord, fabric.LocalOutX(ref.Cell))
		}
		if oc.state != netlist.None {
			nd := d.NL.Nodes[oc.state]
			cc.FF = true
			cc.Init = nd.Init
			cc.Latch = nd.Kind == netlist.KindLatch
			// D source: packed LUT or BX pin.
			packed := oc.lut != netlist.None && nd.D == oc.lut
			cc.DFromBX = !packed
			if nd.Kind == netlist.KindLatch || nd.CE != netlist.None {
				cc.CEUsed = true
			}
			d.SourceOf[oc.state] = d.Dev.NodeIDAt(ref.Coord, fabric.LocalOutXQ(ref.Cell))
		}
		d.Dev.WriteCell(ref, cc)
	}
	return nil
}

// buildNets derives the routing problem from the netlist and placement.
func (d *Design) buildNets() ([]route.Net, error) {
	// Collect sinks per driving node.
	sinks := map[netlist.ID][]fabric.NodeID{}
	addSink := func(drv netlist.ID, node fabric.NodeID) {
		sinks[drv] = append(sinks[drv], node)
	}
	for id, nd := range d.NL.Nodes {
		switch nd.Kind {
		case netlist.KindLUT, netlist.KindRAM:
			ref := d.CellOf[netlist.ID(id)]
			for k, in := range nd.Ins {
				addSink(in, d.Dev.NodeIDAt(ref.Coord, fabric.LocalPinI(ref.Cell, k)))
			}
			if nd.Kind == netlist.KindRAM {
				addSink(nd.D, d.Dev.NodeIDAt(ref.Coord, fabric.LocalPinBX(ref.Cell)))
				if nd.CE != netlist.None {
					addSink(nd.CE, d.Dev.NodeIDAt(ref.Coord, fabric.LocalPinCE(ref.Cell)))
				}
			}
		case netlist.KindFF, netlist.KindLatch:
			ref := d.CellOf[netlist.ID(id)]
			// D via BX unless packed with its driving LUT in this cell.
			packed := nd.D != netlist.None &&
				d.NL.Nodes[nd.D].Kind == netlist.KindLUT &&
				d.CellOf[nd.D] == ref
			if !packed {
				addSink(nd.D, d.Dev.NodeIDAt(ref.Coord, fabric.LocalPinBX(ref.Cell)))
			}
			if nd.CE != netlist.None {
				addSink(nd.CE, d.Dev.NodeIDAt(ref.Coord, fabric.LocalPinCE(ref.Cell)))
			}
		case netlist.KindOutput:
			addSink(nd.Ins[0], d.Dev.PadNodeID(d.PadOf[netlist.ID(id)]))
		}
	}
	var nets []route.Net
	for drv, sk := range sinks {
		src, ok := d.SourceOf[drv]
		if !ok {
			return nil, fmt.Errorf("place: node %s has sinks but no source", d.NL.Nodes[drv].Name)
		}
		nets = append(nets, route.Net{Name: d.NL.Nodes[drv].Name, Source: src, Sinks: sk})
	}
	// Deterministic order (map iteration is random): route big nets first.
	SortNets(nets)
	return nets, nil
}

// SortNets orders a routing problem the way the placer does — descending
// fanout, then name. The warm-load and translation paths route boundary
// nets through the same ordering so that the frames they produce are
// reproducible and mutually bit-identical.
// containNets bounds every cell-driven net to the region so its interior
// routing cannot escape. Pad sinks of a bounded net are moved to the end of
// the sink list: the net's tree stays fully region-contained while the
// interior pin sinks are routed, so no interior path gets grafted onto an
// out-of-region branch laid down for a pad.
func containNets(dev *fabric.Device, nets []route.Net, region fabric.Rect) {
	for i := range nets {
		n := &nets[i]
		if _, isPad := dev.PadOfNode(n.Source); isPad {
			continue // input net: re-routed from its pad at every load
		}
		n.Bound = region
		sort.SliceStable(n.Sinks, func(a, b int) bool {
			_, padA := dev.PadOfNode(n.Sinks[a])
			_, padB := dev.PadOfNode(n.Sinks[b])
			return !padA && padB
		})
	}
}

func SortNets(nets []route.Net) {
	sort.Slice(nets, func(i, j int) bool {
		if len(nets[i].Sinks) != len(nets[j].Sinks) {
			return len(nets[i].Sinks) > len(nets[j].Sinks)
		}
		return nets[i].Name < nets[j].Name
	})
}

// UsedNodes returns every routing node owned by the design (for blocking in
// other routers).
func (d *Design) UsedNodes() []fabric.NodeID {
	var out []fabric.NodeID
	seen := map[fabric.NodeID]bool{}
	for i := range d.Nets {
		for _, n := range d.Nets[i].Tree {
			if !seen[n] {
				seen[n] = true
				out = append(out, n)
			}
		}
	}
	return out
}

// OccupiedCells returns every logic cell used by the design, in
// deterministic (row, column, cell) order.
func (d *Design) OccupiedCells() []fabric.CellRef {
	seen := map[fabric.CellRef]bool{}
	var out []fabric.CellRef
	for _, ref := range d.CellOf {
		if !seen[ref] {
			seen[ref] = true
			out = append(out, ref)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Row != b.Row {
			return a.Row < b.Row
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Cell < b.Cell
	})
	return out
}

// Rebind updates the design's cell bindings after a relocation moved the
// contents of one cell to another location (the configuration has already
// changed; this keeps the host-side view consistent).
func (d *Design) Rebind(from, to fabric.CellRef) {
	for id, ref := range d.CellOf {
		if ref == from {
			d.CellOf[id] = to
		}
	}
	fromX := d.Dev.NodeIDAt(from.Coord, fabric.LocalOutX(from.Cell))
	fromXQ := d.Dev.NodeIDAt(from.Coord, fabric.LocalOutXQ(from.Cell))
	for id, n := range d.SourceOf {
		switch n {
		case fromX:
			d.SourceOf[id] = d.Dev.NodeIDAt(to.Coord, fabric.LocalOutX(to.Cell))
		case fromXQ:
			d.SourceOf[id] = d.Dev.NodeIDAt(to.Coord, fabric.LocalOutXQ(to.Cell))
		}
	}
}
