package place_test

import (
	"testing"

	"repro/internal/fabric"
	"repro/internal/itc99"
	"repro/internal/netlist"
	"repro/internal/place"
	"repro/internal/route"
	"repro/internal/sim"
)

func TestPlaceStructure(t *testing.T) {
	dev := fabric.NewDevice(fabric.TestDevice)
	nl, err := itc99.Get("b02")
	if err != nil {
		t.Fatal(err)
	}
	d, err := place.Place(dev, nl, place.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Every state element and LUT has a cell inside the region.
	for id, nd := range nl.Nodes {
		switch nd.Kind {
		case netlist.KindLUT, netlist.KindFF, netlist.KindLatch, netlist.KindConst, netlist.KindRAM:
			ref, ok := d.CellOf[netlist.ID(id)]
			if !ok {
				t.Fatalf("node %s has no cell", nd.Name)
			}
			if !d.Region.Contains(ref.Coord) {
				t.Errorf("node %s placed at %v outside region %v", nd.Name, ref, d.Region)
			}
		case netlist.KindInput, netlist.KindOutput:
			if _, ok := d.PadOf[netlist.ID(id)]; !ok {
				t.Fatalf("port %s has no pad", nd.Name)
			}
		}
	}
	// No two packed groups share a cell unless they are a LUT+FF pair.
	type occ struct{ lut, st int }
	cellUse := map[fabric.CellRef]*occ{}
	for id, ref := range d.CellOf {
		o := cellUse[ref]
		if o == nil {
			o = &occ{}
			cellUse[ref] = o
		}
		switch nl.Nodes[id].Kind {
		case netlist.KindLUT, netlist.KindConst, netlist.KindRAM:
			o.lut++
		default:
			o.st++
		}
	}
	for ref, o := range cellUse {
		if o.lut > 1 || o.st > 1 {
			t.Errorf("cell %v overcommitted: %d LUT users, %d state users", ref, o.lut, o.st)
		}
	}
}

func TestPlacedDesignMatchesGolden(t *testing.T) {
	for _, name := range []string{"b01", "b02", "b06"} {
		t.Run(name, func(t *testing.T) {
			dev := fabric.NewDevice(fabric.XCV50)
			nl, err := itc99.Get(name)
			if err != nil {
				t.Fatal(err)
			}
			d, err := place.Place(dev, nl, place.Options{})
			if err != nil {
				t.Fatal(err)
			}
			ls, err := sim.NewLockStep(d)
			if err != nil {
				t.Fatal(err)
			}
			rng := uint64(12345)
			nin := len(nl.Inputs())
			for cycle := 0; cycle < 120; cycle++ {
				in := make([]bool, nin)
				for i := range in {
					rng = rng*6364136223846793005 + 1442695040888963407
					in[i] = rng>>40&1 == 1
				}
				if err := ls.Step(in); err != nil {
					t.Fatalf("lockstep diverged: %v", err)
				}
			}
			if err := ls.CheckState(); err != nil {
				t.Fatalf("state mismatch after run: %v", err)
			}
		})
	}
}

func TestPlaceGatedClockDesign(t *testing.T) {
	dev := fabric.NewDevice(fabric.XCV50)
	nl, err := itc99.Get("b03") // gated-clock style, 30 FFs
	if err != nil {
		t.Fatal(err)
	}
	d, err := place.Place(dev, nl, place.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ls, err := sim.NewLockStep(d)
	if err != nil {
		t.Fatal(err)
	}
	rng := uint64(99)
	nin := len(nl.Inputs())
	for cycle := 0; cycle < 80; cycle++ {
		in := make([]bool, nin)
		for i := range in {
			rng = rng*6364136223846793005 + 1442695040888963407
			in[i] = rng>>33&1 == 1
		}
		if err := ls.Step(in); err != nil {
			t.Fatalf("gated-clock lockstep diverged: %v", err)
		}
	}
	if err := ls.CheckState(); err != nil {
		t.Fatal(err)
	}
}

func TestPlaceAsyncLatchDesign(t *testing.T) {
	dev := fabric.NewDevice(fabric.XCV50)
	nl := itc99.Generate(itc99.GenConfig{
		Name: "async_place", Inputs: 3, Outputs: 3, FFs: 6, LUTs: 18,
		Seed: 11, Style: itc99.Async,
	})
	d, err := place.Place(dev, nl, place.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ls, err := sim.NewLockStep(d)
	if err != nil {
		t.Fatal(err)
	}
	// Drive with non-overlapping phases using Settle (no clock).
	ins := nl.Inputs()
	idx1, idx2 := -1, -1
	for i, id := range ins {
		switch nl.Nodes[id].Name {
		case "phi1":
			idx1 = i
		case "phi2":
			idx2 = i
		}
	}
	rng := uint64(7)
	for cycle := 0; cycle < 60; cycle++ {
		in := make([]bool, len(ins))
		for i := range in {
			rng = rng*6364136223846793005 + 1442695040888963407
			in[i] = rng>>35&1 == 1
		}
		in[idx1], in[idx2] = false, false
		if cycle%2 == 0 {
			in[idx1] = true
		} else {
			in[idx2] = true
		}
		if err := ls.Settle(in); err != nil {
			t.Fatalf("async lockstep diverged: %v", err)
		}
	}
}

func TestPlaceRejectsOversizedDesign(t *testing.T) {
	dev := fabric.NewDevice(fabric.TestDevice)
	nl, err := itc99.Get("b12") // 121 FFs + 358 LUTs >> 12x8 device at 50%
	if err != nil {
		t.Fatal(err)
	}
	if _, err := place.Place(dev, nl, place.Options{}); err == nil {
		t.Error("oversized design accepted")
	}
}

func TestPlaceIntoExplicitRegion(t *testing.T) {
	dev := fabric.NewDevice(fabric.XCV50)
	nl, err := itc99.Get("b02")
	if err != nil {
		t.Fatal(err)
	}
	region := fabric.Rect{Row: 4, Col: 6, H: 4, W: 4}
	d, err := place.Place(dev, nl, place.Options{Region: region})
	if err != nil {
		t.Fatal(err)
	}
	if d.Region != region {
		t.Errorf("region = %v, want %v", d.Region, region)
	}
	for _, ref := range d.OccupiedCells() {
		if !region.Contains(ref.Coord) {
			t.Errorf("cell %v outside requested region", ref)
		}
	}
}

func TestTwoDesignsCoexist(t *testing.T) {
	// Two independent designs on one device must not interfere — the
	// multi-application sharing scenario of the paper's Fig. 1.
	dev := fabric.NewDevice(fabric.XCV50)
	nlA, _ := itc99.Get("b01")
	nlB, _ := itc99.Get("b02")
	dA, err := place.Place(dev, nlA, place.Options{Region: fabric.Rect{Row: 0, Col: 0, H: 4, W: 4}})
	if err != nil {
		t.Fatal(err)
	}
	reserve := map[fabric.PadRef]bool{}
	for _, p := range dA.PadOf {
		reserve[p] = true
	}
	// Share occupancy: block A's routing in B's router.
	rB := route.NewRouter(dev)
	rB.Block(dA.UsedNodes()...)
	dB, err := place.Place(dev, nlB, place.Options{
		Region:      fabric.Rect{Row: 8, Col: 8, H: 4, W: 4},
		ReservePads: reserve,
		Router:      rB,
	})
	if err != nil {
		t.Fatal(err)
	}
	g := sim.NewGroup(dev)
	if _, err := g.Add(dA); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Add(dB); err != nil {
		t.Fatal(err)
	}
	rng := uint64(3)
	for cycle := 0; cycle < 60; cycle++ {
		inA := make([]bool, len(nlA.Inputs()))
		inB := make([]bool, len(nlB.Inputs()))
		for i := range inA {
			rng = rng*6364136223846793005 + 1442695040888963407
			inA[i] = rng>>41&1 == 1
		}
		for i := range inB {
			rng = rng*6364136223846793005 + 1442695040888963407
			inB[i] = rng>>41&1 == 1
		}
		if err := g.Step([][]bool{inA, inB}); err != nil {
			t.Fatalf("coexisting designs diverged: %v", err)
		}
	}
	if err := g.CheckState(); err != nil {
		t.Fatal(err)
	}
}
