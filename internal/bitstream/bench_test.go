package bitstream

import (
	"testing"

	"repro/internal/fabric"
)

func BenchmarkFullBitstreamBuild(b *testing.B) {
	dev := fabric.NewDevice(fabric.XCV200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Full(dev); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFullConfigure(b *testing.B) {
	dev := fabric.NewDevice(fabric.XCV200)
	words, err := Full(dev)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(words) * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctl := NewController(fabric.NewDevice(fabric.XCV200))
		if err := ctl.Feed(words...); err != nil {
			b.Fatal(err)
		}
	}
}
