package bitstream

import (
	"fmt"

	"repro/internal/fabric"
)

// Builder assembles configuration packet streams (full or partial
// bitstreams) with a running CRC mirroring the controller's.
type Builder struct {
	frameWords int
	words      []uint32
	crc        uint16
}

// NewBuilder returns a builder for a device with the given frame length.
func NewBuilder(frameWords int) *Builder {
	return &Builder{frameWords: frameWords}
}

// NewBuilderFor returns a builder matched to a device.
func NewBuilderFor(dev *fabric.Device) *Builder {
	return NewBuilder(dev.FrameWords())
}

// Words returns the assembled packet stream.
func (b *Builder) Words() []uint32 { return b.words }

// Len returns the current stream length in words.
func (b *Builder) Len() int { return len(b.words) }

// Grow reserves capacity for at least n more words, so a caller that knows
// the stream size up front avoids append growth.
func (b *Builder) Grow(n int) *Builder {
	if cap(b.words)-len(b.words) < n {
		w := make([]uint32, len(b.words), len(b.words)+n)
		copy(w, b.words)
		b.words = w
	}
	return b
}

func (b *Builder) emit(ws ...uint32) { b.words = append(b.words, ws...) }

// Sync emits the synchronisation word.
func (b *Builder) Sync() *Builder {
	b.emit(SyncWord)
	return b
}

// writeReg emits a Type-1 single-word register write and folds the CRC.
func (b *Builder) writeReg(reg int, v uint32) {
	b.emit(header1(opWrite, reg, 1), v)
	if reg == RegCMD && (v == CmdRCRC || v == CmdDesync) {
		if v == CmdRCRC {
			b.crc = 0
		}
		return
	}
	b.crc = crcUpdate(b.crc, reg, v)
}

// ResetCRC emits the RCRC command.
func (b *Builder) ResetCRC() *Builder {
	b.writeReg(RegCMD, CmdRCRC)
	return b
}

// FrameLength emits the FLR register write.
func (b *Builder) FrameLength() *Builder {
	b.writeReg(RegFLR, uint32(b.frameWords))
	return b
}

// CheckCRC emits a CRC check word for everything since the last reset/check.
func (b *Builder) CheckCRC() *Builder {
	b.emit(header1(opWrite, RegCRC, 1), uint32(b.crc))
	b.crc = 0
	return b
}

// Start emits the START command (activate after full configuration).
func (b *Builder) Start() *Builder {
	b.writeReg(RegCMD, CmdStart)
	return b
}

// Desync emits the DESYNC command, ending the configuration session.
func (b *Builder) Desync() *Builder {
	b.writeReg(RegCMD, CmdDesync)
	return b
}

// WriteFrames emits a WCFG sequence writing consecutive frames starting at
// far. A trailing pad frame is appended automatically (the device's frame
// buffer semantics require flushing the last real frame through).
func (b *Builder) WriteFrames(far FAR, frames [][]uint32) *Builder {
	if len(frames) == 0 {
		return b
	}
	b.writeReg(RegCMD, CmdWCFG)
	b.writeReg(RegFAR, EncodeFAR(far))
	total := (len(frames) + 1) * b.frameWords
	if total <= wc1Mask {
		b.emit(header1(opWrite, RegFDRI, total))
	} else {
		b.emit(header1(opWrite, RegFDRI, 0), header2(opWrite, total))
	}
	for _, f := range frames {
		if len(f) != b.frameWords {
			panic(fmt.Sprintf("bitstream: frame length %d, want %d", len(f), b.frameWords))
		}
		for _, w := range f {
			b.emit(w)
			b.crc = crcUpdate(b.crc, RegFDRI, w)
		}
	}
	for i := 0; i < b.frameWords; i++ { // pad frame
		b.emit(0)
		b.crc = crcUpdate(b.crc, RegFDRI, 0)
	}
	b.CheckCRC()
	return b
}

// ReadFramesRequest builds a readback request for n frames starting at far.
func ReadFramesRequest(frameWords int, far FAR, n int) []uint32 {
	words := []uint32{SyncWord}
	words = append(words, header1(opWrite, RegCMD, 1), CmdRCFG)
	words = append(words, header1(opWrite, RegFAR, 1), EncodeFAR(far))
	total := n * frameWords
	if total <= wc1Mask {
		words = append(words, header1(opRead, RegFDRO, total))
	} else {
		words = append(words, header1(opRead, RegFDRO, 0), header2(opRead, total))
	}
	return words
}

// FrameUpdate is one frame's new content for partial reconfiguration. Prev,
// when set, is the content the fabric held before this update (the delta
// baseline): the compressed encoder diffs Data against it to ship only the
// changed word runs, and skips the frame entirely when they are equal. A nil
// or stale Prev is always safe — under write-through staging the device
// already holds Data, so a larger-than-needed delta merely ships more words.
type FrameUpdate struct {
	Addr fabric.FrameAddr
	Data []uint32
	Prev []uint32
}

// Partial builds a partial bitstream from frame updates, grouping runs of
// consecutive frames within a column into single FDRI bursts (minors must
// ascend within a major for grouping to apply; any order is accepted). The
// stream is sized exactly up front, so batched commits of many frames build
// without append growth.
func Partial(dev *fabric.Device, updates []FrameUpdate) []uint32 {
	b := NewBuilderFor(dev)
	b.Grow(partialStreamWords(dev.FrameWords(), updates))
	b.Sync().ResetCRC().FrameLength()
	appendUpdates(b, updates)
	b.Desync()
	return b.Words()
}

// updateRuns calls fn for each maximal run of consecutive frames (ascending
// minors within one major) in updates.
func updateRuns(updates []FrameUpdate, fn func(run []FrameUpdate)) {
	i := 0
	for i < len(updates) {
		j := i + 1
		for j < len(updates) &&
			updates[j].Addr.Major == updates[j-1].Addr.Major &&
			updates[j].Addr.Minor == updates[j-1].Addr.Minor+1 {
			j++
		}
		fn(updates[i:j])
		i = j
	}
}

// appendUpdates emits the WCFG bursts for a set of frame updates.
func appendUpdates(b *Builder, updates []FrameUpdate) {
	updateRuns(updates, func(run []FrameUpdate) {
		frames := make([][]uint32, len(run))
		for k, u := range run {
			frames[k] = u.Data
		}
		b.WriteFrames(FAR{Major: run[0].Addr.Major, Minor: run[0].Addr.Minor}, frames)
	})
}

// partialStreamWords returns the exact word count of the stream Partial
// builds for these updates: sync + RCRC + FLR preamble, per-run WCFG/FAR
// headers, frame data plus the trailing pad frame and CRC check, and the
// final desync.
func partialStreamWords(frameWords int, updates []FrameUpdate) int {
	n := 1 + 2 + 2 + 2 // sync, RCRC, FLR, desync
	updateRuns(updates, func(run []FrameUpdate) {
		total := (len(run) + 1) * frameWords
		hdr := 1
		if total > wc1Mask {
			hdr = 2
		}
		n += 2 + 2 + hdr + total + 2 // WCFG, FAR, FDRI header, data+pad, CRC
	})
	return n
}

// Full builds a complete bitstream of the device's current configuration.
func Full(dev *fabric.Device) ([]uint32, error) {
	b := NewBuilderFor(dev)
	b.Sync().ResetCRC().FrameLength()
	for _, col := range dev.Columns() {
		frames := make([][]uint32, col.Frames)
		for m := 0; m < col.Frames; m++ {
			f, err := dev.ReadFrame(col.Major, m)
			if err != nil {
				return nil, err
			}
			frames[m] = f
		}
		b.WriteFrames(FAR{Major: col.Major}, frames)
	}
	b.Start().Desync()
	return b.Words(), nil
}

// Shadow mirrors the device configuration on the host. The paper's tool
// "always keeps a complete copy of the current configuration, enabling
// system recovery in case of failure"; Shadow is that copy. Frame slices in
// the shadow are replaced wholesale on every note and never mutated in
// place, which is what lets Snapshot share pre-images instead of copying.
type Shadow struct {
	frameWords int
	columns    []fabric.Column
	data       map[fabric.FrameAddr][]uint32
	snaps      []*Snapshot // active copy-on-write checkpoints
}

// NewShadow captures the device's current full configuration.
func NewShadow(dev *fabric.Device) (*Shadow, error) {
	s := &Shadow{
		frameWords: dev.FrameWords(),
		columns:    dev.Columns(),
		data:       make(map[fabric.FrameAddr][]uint32),
	}
	for _, col := range dev.Columns() {
		for m := 0; m < col.Frames; m++ {
			f, err := dev.ReadFrame(col.Major, m)
			if err != nil {
				return nil, err
			}
			s.data[fabric.FrameAddr{Major: col.Major, Minor: m}] = f
		}
	}
	return s, nil
}

// Note records a frame update in the shadow (called by the tool alongside
// every frame it writes to the device). The data is copied.
func (s *Shadow) Note(addr fabric.FrameAddr, data []uint32) {
	cp := make([]uint32, len(data))
	copy(cp, data)
	s.NoteOwned(addr, cp)
}

// NoteOwned records a frame update taking ownership of the slice (the caller
// must not mutate it afterwards). Pre-images flow into any active snapshots
// before the overwrite.
func (s *Shadow) NoteOwned(addr fabric.FrameAddr, data []uint32) {
	if len(s.snaps) > 0 {
		if old, ok := s.data[addr]; ok {
			s.cow(addr, old)
		}
	}
	s.data[addr] = data
}

// Clone returns an independent copy of the shadow. The run-time manager
// checkpoints the configuration this way before a multi-step operation so a
// mid-sequence failure can be rolled back to the pre-operation state (the
// tool's own shadow tracks the CURRENT configuration, frame by frame).
func (s *Shadow) Clone() *Shadow {
	cp := &Shadow{
		frameWords: s.frameWords,
		columns:    s.columns,
		data:       make(map[fabric.FrameAddr][]uint32, len(s.data)),
	}
	for addr, f := range s.data {
		d := make([]uint32, len(f))
		copy(d, f)
		cp.data[addr] = d
	}
	return cp
}

// Frame returns the shadowed content of a frame.
func (s *Shadow) Frame(addr fabric.FrameAddr) ([]uint32, bool) {
	f, ok := s.data[addr]
	return f, ok
}

// RecoveryBitstream builds a full bitstream restoring the shadowed state.
func (s *Shadow) RecoveryBitstream() []uint32 {
	b := NewBuilder(s.frameWords)
	b.Sync().ResetCRC().FrameLength()
	for _, col := range s.columns {
		frames := make([][]uint32, col.Frames)
		for m := 0; m < col.Frames; m++ {
			frames[m] = s.data[fabric.FrameAddr{Major: col.Major, Minor: m}]
		}
		b.WriteFrames(FAR{Major: col.Major}, frames)
	}
	b.Start().Desync()
	return b.Words()
}
