package bitstream

import (
	"testing"
	"testing/quick"

	"repro/internal/fabric"
)

func TestFAREncodeDecodeRoundTrip(t *testing.T) {
	f := func(block, major, minor uint16) bool {
		far := FAR{Block: int(block % 16), Major: int(major % 4096), Minor: int(minor % 4096)}
		return DecodeFAR(EncodeFAR(far)) == far
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHeaderEncoding(t *testing.T) {
	h := header1(opWrite, RegFDRI, 17)
	if h>>typeShift&7 != Type1 {
		t.Error("type bits wrong")
	}
	if int(h>>addrShift&addrMask) != RegFDRI {
		t.Error("addr bits wrong")
	}
	if int(h&wc1Mask) != 17 {
		t.Error("word count wrong")
	}
	h2 := header2(opWrite, 100000)
	if h2>>typeShift&7 != Type2 || int(h2&wc2Mask) != 100000 {
		t.Error("type2 encoding wrong")
	}
}

func TestCRCUpdateDeterministic(t *testing.T) {
	a := crcUpdate(0, RegFDRI, 0xDEADBEEF)
	b := crcUpdate(0, RegFDRI, 0xDEADBEEF)
	if a != b {
		t.Error("crcUpdate not deterministic")
	}
	if a == crcUpdate(0, RegFAR, 0xDEADBEEF) {
		t.Error("crc ignores register address")
	}
	if a == crcUpdate(0, RegFDRI, 0xDEADBEE0) {
		t.Error("crc ignores data")
	}
}

func newDevCtl() (*fabric.Device, *Controller) {
	dev := fabric.NewDevice(fabric.TestDevice)
	return dev, NewController(dev)
}

func TestWriteFramesThroughController(t *testing.T) {
	dev, ctl := newDevCtl()
	fw := dev.FrameWords()
	frames := [][]uint32{make([]uint32, fw), make([]uint32, fw), make([]uint32, fw)}
	for i, f := range frames {
		for j := range f {
			f[j] = uint32(i*1000 + j)
		}
	}
	major := dev.MajorOfArrayCol(2)
	b := NewBuilderFor(dev)
	b.Sync().ResetCRC().FrameLength().WriteFrames(FAR{Major: major, Minor: 5}, frames).Desync()
	if err := ctl.Feed(b.Words()...); err != nil {
		t.Fatal(err)
	}
	for i := range frames {
		got, err := dev.ReadFrame(major, 5+i)
		if err != nil {
			t.Fatal(err)
		}
		for j := range got {
			if got[j] != frames[i][j] {
				t.Fatalf("frame %d word %d = %d, want %d", i, j, got[j], frames[i][j])
			}
		}
	}
	if st := ctl.Stats(); st.FramesWritten != 3 {
		t.Errorf("FramesWritten = %d, want 3", st.FramesWritten)
	}
	// The pad frame must NOT have been committed to minor 5+3.
	got, _ := dev.ReadFrame(major, 8)
	for _, w := range got {
		if w != 0 {
			t.Fatal("pad frame leaked into configuration memory")
		}
	}
}

func TestCRCMismatchAborts(t *testing.T) {
	dev, ctl := newDevCtl()
	fw := dev.FrameWords()
	frames := [][]uint32{make([]uint32, fw)}
	frames[0][0] = 42
	b := NewBuilderFor(dev)
	b.Sync().ResetCRC().FrameLength().WriteFrames(FAR{Major: 1}, frames)
	words := b.Words()
	// Corrupt the CRC check word (last word emitted by CheckCRC).
	words[len(words)-1] ^= 0x1
	err := ctl.Feed(words...)
	if err == nil {
		t.Fatal("corrupted CRC accepted")
	}
	if ctl.Stats().CRCErrors != 1 {
		t.Errorf("CRCErrors = %d", ctl.Stats().CRCErrors)
	}
	// Controller desynchronises after a CRC error; further words are
	// ignored until a new sync word.
	if err := ctl.Feed(header1(opWrite, RegFAR, 1), 0); err != nil {
		t.Errorf("post-error words should be ignored, got %v", err)
	}
}

func TestCorruptedDataCaughtByCRC(t *testing.T) {
	dev, ctl := newDevCtl()
	fw := dev.FrameWords()
	frames := [][]uint32{make([]uint32, fw)}
	b := NewBuilderFor(dev)
	b.Sync().ResetCRC().FrameLength().WriteFrames(FAR{Major: 1}, frames)
	words := b.Words()
	// Flip a data bit mid-stream: the CRC check at the end must fire.
	words[len(words)-2-fw] ^= 0x10000
	if err := ctl.Feed(words...); err == nil {
		t.Fatal("corrupted data accepted")
	}
}

func TestFARAutoIncrementAcrossColumns(t *testing.T) {
	dev, ctl := newDevCtl()
	fw := dev.FrameWords()
	// Write across the clock-column boundary: majors 0 (8 frames) then 1.
	n := fabric.FramesPerClockColumn + 2
	frames := make([][]uint32, n)
	for i := range frames {
		frames[i] = make([]uint32, fw)
		frames[i][0] = uint32(i + 1)
	}
	b := NewBuilderFor(dev)
	b.Sync().ResetCRC().FrameLength().WriteFrames(FAR{Major: 0, Minor: 0}, frames).Desync()
	if err := ctl.Feed(b.Words()...); err != nil {
		t.Fatal(err)
	}
	got, _ := dev.ReadFrame(1, 0)
	if got[0] != uint32(fabric.FramesPerClockColumn+1) {
		t.Errorf("frame after column boundary = %d", got[0])
	}
	got, _ = dev.ReadFrame(1, 1)
	if got[0] != uint32(fabric.FramesPerClockColumn+2) {
		t.Errorf("second frame in next column = %d", got[0])
	}
}

func TestReadbackRoundTrip(t *testing.T) {
	dev, ctl := newDevCtl()
	c := fabric.Coord{Row: 2, Col: 3}
	dev.WriteCell(fabric.CellRef{Coord: c, Cell: 0}, fabric.CellConfig{LUT: 0xBEEF, FF: true})
	major := dev.MajorOfArrayCol(3)
	req := ReadFramesRequest(dev.FrameWords(), FAR{Major: major, Minor: 0}, 2)
	out, err := ctl.ExecRead(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2*dev.FrameWords() {
		t.Fatalf("readback length %d", len(out))
	}
	want, _ := dev.ReadFrame(major, 0)
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("readback word %d mismatch", i)
		}
	}
	if ctl.Stats().FramesRead != 2 {
		t.Errorf("FramesRead = %d", ctl.Stats().FramesRead)
	}
}

func TestPartialBitstreamGroupsRuns(t *testing.T) {
	dev, ctl := newDevCtl()
	fw := dev.FrameWords()
	mk := func(v uint32) []uint32 {
		f := make([]uint32, fw)
		f[1] = v
		return f
	}
	ups := []FrameUpdate{
		{Addr: fabric.FrameAddr{Major: 2, Minor: 4}, Data: mk(10)},
		{Addr: fabric.FrameAddr{Major: 2, Minor: 5}, Data: mk(11)},
		{Addr: fabric.FrameAddr{Major: 2, Minor: 6}, Data: mk(12)},
		{Addr: fabric.FrameAddr{Major: 7, Minor: 0}, Data: mk(20)},
	}
	words := Partial(dev, ups)
	if err := ctl.Feed(words...); err != nil {
		t.Fatal(err)
	}
	for _, u := range ups {
		got, _ := dev.ReadFrame(u.Addr.Major, u.Addr.Minor)
		if got[1] != u.Data[1] {
			t.Errorf("frame %v = %d, want %d", u.Addr, got[1], u.Data[1])
		}
	}
	// Grouping: 2 runs -> 2 pad frames; total data words = (3+1+1+1)*fw.
	wantData := (3 + 1 + 1 + 1) * fw
	if len(words) >= wantData+40 || len(words) <= wantData {
		t.Errorf("partial stream %d words, data %d: grouping suspicious", len(words), wantData)
	}
}

func TestFullBitstreamRestoresDevice(t *testing.T) {
	dev, _ := newDevCtl()
	ref := fabric.CellRef{Coord: fabric.Coord{Row: 1, Col: 1}, Cell: 3}
	dev.WriteCell(ref, fabric.CellConfig{LUT: 0x1234, FF: true, CEUsed: true})
	dev.SetPIPMask(fabric.Coord{Row: 1, Col: 1}, fabric.LocalPinI(3, 0), 0b10)
	full, err := Full(dev)
	if err != nil {
		t.Fatal(err)
	}
	// Apply to a fresh device: all state must carry over.
	dev2 := fabric.NewDevice(fabric.TestDevice)
	ctl2 := NewController(dev2)
	if err := ctl2.Feed(full...); err != nil {
		t.Fatal(err)
	}
	if got := dev2.ReadCell(ref); got.LUT != 0x1234 || !got.FF || !got.CEUsed {
		t.Errorf("cell after full config = %+v", got)
	}
	if got := dev2.PIPMask(fabric.Coord{Row: 1, Col: 1}, fabric.LocalPinI(3, 0)); got != 0b10 {
		t.Errorf("pip mask after full config = %#b", got)
	}
}

func TestShadowRecovery(t *testing.T) {
	dev, _ := newDevCtl()
	ref := fabric.CellRef{Coord: fabric.Coord{Row: 0, Col: 4}, Cell: 0}
	dev.WriteCell(ref, fabric.CellConfig{LUT: 0xABCD})
	shadow, err := NewShadow(dev)
	if err != nil {
		t.Fatal(err)
	}
	// Device gets clobbered...
	dev.WriteCell(ref, fabric.CellConfig{})
	if dev.ReadCell(ref).LUT != 0 {
		t.Fatal("clobber failed")
	}
	// ...and the shadow restores it.
	dev2 := fabric.NewDevice(fabric.TestDevice)
	ctl2 := NewController(dev2)
	if err := ctl2.Feed(shadow.RecoveryBitstream()...); err != nil {
		t.Fatal(err)
	}
	if got := dev2.ReadCell(ref); got.LUT != 0xABCD {
		t.Errorf("recovered LUT = %#x", got.LUT)
	}
}

func TestShadowNote(t *testing.T) {
	dev, _ := newDevCtl()
	shadow, err := NewShadow(dev)
	if err != nil {
		t.Fatal(err)
	}
	addr := fabric.FrameAddr{Major: 3, Minor: 1}
	data := make([]uint32, dev.FrameWords())
	data[0] = 99
	shadow.Note(addr, data)
	data[0] = 0 // caller reuse must not corrupt the shadow
	got, ok := shadow.Frame(addr)
	if !ok || got[0] != 99 {
		t.Errorf("shadow frame = %v, %v", got, ok)
	}
}

func TestParallelPort(t *testing.T) {
	dev, ctl := newDevCtl()
	port := NewParallelPort(ctl, 50e6)
	fw := dev.FrameWords()
	data := make([]uint32, fw)
	data[2] = 7
	err := port.WriteUpdates([]FrameUpdate{{Addr: fabric.FrameAddr{Major: 4, Minor: 2}, Data: data}})
	if err != nil {
		t.Fatal(err)
	}
	got, _ := dev.ReadFrame(4, 2)
	if got[2] != 7 {
		t.Error("port write did not land")
	}
	if port.Elapsed() <= 0 {
		t.Error("port consumed no time")
	}
	rb, err := port.ReadFrame(fabric.FrameAddr{Major: 4, Minor: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rb[2] != 7 {
		t.Error("port readback mismatch")
	}
}

func TestFeedSplitAcrossCalls(t *testing.T) {
	dev, ctl := newDevCtl()
	fw := dev.FrameWords()
	frames := [][]uint32{make([]uint32, fw)}
	frames[0][3] = 5
	b := NewBuilderFor(dev)
	b.Sync().ResetCRC().FrameLength().WriteFrames(FAR{Major: 2, Minor: 0}, frames).Desync()
	words := b.Words()
	// Feed one word at a time: packet state must persist.
	for _, w := range words {
		if err := ctl.Feed(w); err != nil {
			t.Fatal(err)
		}
	}
	got, _ := dev.ReadFrame(2, 0)
	if got[3] != 5 {
		t.Error("split feed lost data")
	}
}

func TestType2LargeWrite(t *testing.T) {
	// A write longer than the Type-1 word-count field (2047 words) must go
	// through the Type-2 packet path and still land frame-exact.
	dev, ctl := newDevCtl()
	fw := dev.FrameWords()
	n := (wc1Mask / fw) + 4 // enough frames to exceed the Type-1 limit
	frames := make([][]uint32, n)
	for i := range frames {
		frames[i] = make([]uint32, fw)
		frames[i][0] = uint32(i + 1)
	}
	b := NewBuilderFor(dev)
	b.Sync().ResetCRC().FrameLength().WriteFrames(FAR{Major: 1, Minor: 0}, frames).Desync()
	// Confirm a Type-2 header exists in the stream.
	hasType2 := false
	for _, w := range b.Words() {
		if int(w>>typeShift&7) == Type2 {
			hasType2 = true
		}
	}
	if !hasType2 {
		t.Fatal("large write did not use a Type-2 packet")
	}
	if err := ctl.Feed(b.Words()...); err != nil {
		t.Fatal(err)
	}
	// Spot-check first, middle, last frame (FAR auto-increments across
	// column boundaries).
	far := FAR{Major: 1, Minor: 0}
	for i := 0; i < n; i++ {
		got, err := dev.ReadFrame(far.Major, far.Minor)
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != uint32(i+1) {
			t.Fatalf("frame %d: word0 = %d", i, got[0])
		}
		col, _ := dev.ColumnByMajor(far.Major)
		far.Minor++
		if far.Minor >= col.Frames {
			far.Minor = 0
			far.Major++
		}
	}
}

func TestXCV200BitstreamSizeRealistic(t *testing.T) {
	// The real XCV200 bitstream is about 1.3 Mbit; the model should be in
	// that ballpark (same column structure, slightly different packing).
	dev := fabric.NewDevice(fabric.XCV200)
	words, err := Full(dev)
	if err != nil {
		t.Fatal(err)
	}
	bits := len(words) * 32
	if bits < 800_000 || bits > 4_000_000 {
		t.Errorf("XCV200 full bitstream = %d bits, outside plausible range", bits)
	}
}
