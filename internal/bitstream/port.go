package bitstream

import (
	"fmt"

	"repro/internal/fabric"
)

// Port is a configuration interface of the device: it delivers partial
// bitstreams and performs readback, accounting for the transport time
// consumed. The paper uses the Boundary-Scan port (internal/jtag implements
// it); a SelectMAP-style parallel port is provided here for the
// interface-comparison ablation.
type Port interface {
	// WriteUpdates delivers frame updates as a partial bitstream.
	WriteUpdates(updates []FrameUpdate) error
	// ReadFrame reads one frame back through the port.
	ReadFrame(addr fabric.FrameAddr) ([]uint32, error)
	// Elapsed returns the cumulative transport time in seconds.
	Elapsed() float64
	// Name identifies the port type for reports.
	Name() string
}

// ParallelPort models a SelectMAP-style byte-parallel configuration port:
// one byte per clock, so a 32-bit word takes four clocks.
type ParallelPort struct {
	Ctrl    *Controller
	ClockHz float64
	cycles  uint64
}

// NewParallelPort attaches a SelectMAP-style port to a controller.
func NewParallelPort(ctrl *Controller, clockHz float64) *ParallelPort {
	return &ParallelPort{Ctrl: ctrl, ClockHz: clockHz}
}

// WriteUpdates implements Port.
func (p *ParallelPort) WriteUpdates(updates []FrameUpdate) error {
	words := Partial(p.Ctrl.Device(), updates)
	p.cycles += uint64(4 * len(words))
	return p.Ctrl.Feed(words...)
}

// ReadFrame implements Port.
func (p *ParallelPort) ReadFrame(addr fabric.FrameAddr) ([]uint32, error) {
	req := ReadFramesRequest(p.Ctrl.Device().FrameWords(), FAR{Major: addr.Major, Minor: addr.Minor}, 1)
	out, err := p.Ctrl.ExecRead(req)
	if err != nil {
		return nil, err
	}
	p.cycles += uint64(4 * (len(req) + len(out)))
	if len(out) != p.Ctrl.Device().FrameWords() {
		return nil, fmt.Errorf("bitstream: readback returned %d words", len(out))
	}
	return out, nil
}

// Elapsed implements Port.
func (p *ParallelPort) Elapsed() float64 { return float64(p.cycles) / p.ClockHz }

// Name implements Port.
func (p *ParallelPort) Name() string { return "SelectMAP" }

// Cycles returns the raw clock cycle count.
func (p *ParallelPort) Cycles() uint64 { return p.cycles }
