package bitstream

import (
	"fmt"
	"sync"

	"repro/internal/fabric"
)

// Port is a configuration interface of the device: it delivers partial
// bitstreams and performs readback, accounting for the transport time
// consumed. The paper uses the Boundary-Scan port (internal/jtag implements
// it); a SelectMAP-style parallel port is provided here for the
// interface-comparison ablation.
type Port interface {
	// WriteUpdates delivers frame updates as a partial bitstream.
	WriteUpdates(updates []FrameUpdate) error
	// ReadFrame reads one frame back through the port.
	ReadFrame(addr fabric.FrameAddr) ([]uint32, error)
	// Elapsed returns the cumulative transport time in seconds.
	Elapsed() float64
	// Name identifies the port type for reports.
	Name() string
}

// AsyncPort is a Port whose partial-bitstream delivery can be staged in the
// background: StreamUpdates enqueues a coalesced burst and returns while the
// stream is still shifting out, AwaitStream blocks until every queued burst
// has been delivered and harvests any transport error. The transport time of
// a burst is accounted deterministically at enqueue time (the cycle count is
// a pure function of the stream length), so Elapsed reads the same value at
// every point of the program regardless of how far the background shift has
// progressed — pipelined and serial runs produce identical cycle accounting.
//
// The contract the run-time manager builds its commit pipeline on:
//
//   - bursts are delivered strictly in enqueue order (one background worker);
//   - while any burst is in flight the caller must not touch the port or its
//     configuration controller through another path (WriteUpdates, ReadFrame
//     and recovery feeds await internally);
//   - every frame of an in-flight burst must hold, on the device, exactly the
//     content being streamed (write-through staging guarantees this), so the
//     delivery degenerates to reads of the configuration memory and is
//     invisible to concurrently running host-side planning.
type AsyncPort interface {
	Port
	// StreamUpdates enqueues a burst for background delivery, accounting
	// its transport time immediately.
	StreamUpdates(updates []FrameUpdate)
	// AwaitStream blocks until the queue is drained and returns the first
	// error any queued burst produced (the error is consumed: a later
	// AwaitStream starts clean).
	AwaitStream() error
	// StreamInFlight reports whether any enqueued burst is undelivered.
	StreamInFlight() bool
	// CompletedBursts returns the number of bursts fully delivered since
	// the port was built. Callers use it to retire frames from their
	// in-flight tracking without a blocking await.
	CompletedBursts() uint64
}

// StreamQueue is the shared background-delivery engine behind AsyncPort
// implementations: a FIFO of word bursts drained by one lazily started
// worker goroutine that exits whenever the queue empties, so an idle port
// holds no goroutine. Deliver is called once per burst, in order, from the
// worker; its error is sticky until the next Await.
type StreamQueue struct {
	// Deliver ships one burst; set once before first use.
	Deliver func(words []uint32) error

	mu        sync.Mutex
	cond      *sync.Cond
	queue     [][]uint32
	running   bool
	completed uint64
	err       error
}

func (q *StreamQueue) init() {
	if q.cond == nil {
		q.cond = sync.NewCond(&q.mu)
	}
}

// Enqueue queues one burst and starts the worker if it is not running.
func (q *StreamQueue) Enqueue(words []uint32) {
	q.mu.Lock()
	q.init()
	q.queue = append(q.queue, words)
	if !q.running {
		q.running = true
		go q.drain()
	}
	q.mu.Unlock()
}

func (q *StreamQueue) drain() {
	q.mu.Lock()
	for len(q.queue) > 0 {
		burst := q.queue[0]
		q.queue = q.queue[1:]
		q.mu.Unlock()
		err := q.Deliver(burst)
		q.mu.Lock()
		q.completed++
		if err != nil && q.err == nil {
			q.err = err
		}
	}
	q.running = false
	q.cond.Broadcast()
	q.mu.Unlock()
}

// Await blocks until the queue is drained and the worker parked, then
// returns and clears the sticky error.
func (q *StreamQueue) Await() error {
	q.mu.Lock()
	q.init()
	for q.running {
		q.cond.Wait()
	}
	err := q.err
	q.err = nil
	q.mu.Unlock()
	return err
}

// InFlight reports whether any burst is queued or being delivered.
func (q *StreamQueue) InFlight() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.running || len(q.queue) > 0
}

// Completed returns the number of bursts fully delivered so far.
func (q *StreamQueue) Completed() uint64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.completed
}

// ParallelPort models a SelectMAP-style parallel configuration port:
// WidthBits data pins per clock (8 by default — one byte per clock, so a
// 32-bit word takes four clocks; 16 and 32 model the wider SelectMAP
// variants). It implements AsyncPort: bursts can shift out in the background
// while the host computes, with the clock cost accounted at enqueue time.
type ParallelPort struct {
	Ctrl    *Controller
	ClockHz float64
	// WidthBits is the data-port width in bits: 8, 16 or 32 (0 means 8).
	// Set it before any traffic flows; the per-word clock cost is 32/width.
	WidthBits int
	cycles    uint64
	compress  bool
	traffic   Traffic
	q         StreamQueue
}

// NewParallelPort attaches a SelectMAP-style port to a controller.
func NewParallelPort(ctrl *Controller, clockHz float64) *ParallelPort {
	p := &ParallelPort{Ctrl: ctrl, ClockHz: clockHz}
	p.q.Deliver = func(words []uint32) error {
		ctrl.SetRedelivery(true)
		defer ctrl.SetRedelivery(false)
		return ctrl.Feed(words...)
	}
	return p
}

// cyclesPerWord is the clock cost of one 32-bit word at the configured port
// width.
func (p *ParallelPort) cyclesPerWord() uint64 {
	w := p.WidthBits
	if w == 0 {
		w = 8
	}
	return uint64(32 / w)
}

// WriteUpdates implements Port (synchronous delivery; any queued background
// stream drains first so the controller sees bursts in order).
func (p *ParallelPort) WriteUpdates(updates []FrameUpdate) error {
	if err := p.AwaitStream(); err != nil {
		return err
	}
	words := EncodeStream(p.Ctrl.Device(), p.compress, updates, &p.traffic)
	if len(words) == 0 {
		return nil // every frame was an identical rewrite: nothing to ship
	}
	p.cycles += p.cyclesPerWord() * uint64(len(words))
	return p.Ctrl.Feed(words...)
}

// StreamUpdates implements AsyncPort: the burst's clock cost lands on the
// port immediately (it is a pure function of the stream length), the words
// ship from a background worker. A fully elided burst (compression skipped
// every frame) still enqueues — zero words, zero cycles — so callers'
// CompletedBursts book-keeping stays in lockstep.
func (p *ParallelPort) StreamUpdates(updates []FrameUpdate) {
	words := EncodeStream(p.Ctrl.Device(), p.compress, updates, &p.traffic)
	p.cycles += p.cyclesPerWord() * uint64(len(words))
	p.q.Enqueue(words)
}

// AwaitStream implements AsyncPort.
func (p *ParallelPort) AwaitStream() error { return p.q.Await() }

// StreamInFlight implements AsyncPort.
func (p *ParallelPort) StreamInFlight() bool { return p.q.InFlight() }

// CompletedBursts implements AsyncPort.
func (p *ParallelPort) CompletedBursts() uint64 { return p.q.Completed() }

// ReadFrame implements Port.
func (p *ParallelPort) ReadFrame(addr fabric.FrameAddr) ([]uint32, error) {
	if err := p.AwaitStream(); err != nil {
		return nil, err
	}
	req := ReadFramesRequest(p.Ctrl.Device().FrameWords(), FAR{Major: addr.Major, Minor: addr.Minor}, 1)
	out, err := p.Ctrl.ExecRead(req)
	if err != nil {
		return nil, err
	}
	p.cycles += p.cyclesPerWord() * uint64(len(req)+len(out))
	if len(out) != p.Ctrl.Device().FrameWords() {
		return nil, fmt.Errorf("bitstream: readback returned %d words", len(out))
	}
	return out, nil
}

// Elapsed implements Port.
func (p *ParallelPort) Elapsed() float64 { return float64(p.cycles) / p.ClockHz }

// Name implements Port.
func (p *ParallelPort) Name() string { return "SelectMAP" }

// Cycles returns the raw clock cycle count.
func (p *ParallelPort) Cycles() uint64 { return p.cycles }

// RestoreCycles overwrites the cycle counter (journal recovery restores a
// crashed system's accounting).
func (p *ParallelPort) RestoreCycles(n uint64) { p.cycles = n }

// SetCompress implements CompressPort.
func (p *ParallelPort) SetCompress(on bool) { p.compress = on }

// Compressed implements CompressPort.
func (p *ParallelPort) Compressed() bool { return p.compress }

// Traffic implements CompressPort.
func (p *ParallelPort) Traffic() Traffic { return p.traffic }

// RestoreTraffic implements CompressPort.
func (p *ParallelPort) RestoreTraffic(t Traffic) { p.traffic = t }

var (
	_ AsyncPort    = (*ParallelPort)(nil)
	_ CompressPort = (*ParallelPort)(nil)
)
