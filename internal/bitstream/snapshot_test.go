package bitstream

import (
	"testing"

	"repro/internal/fabric"
)

func snapTestShadow(t *testing.T) (*fabric.Device, *Shadow) {
	t.Helper()
	dev := fabric.NewDevice(fabric.TestDevice)
	s, err := NewShadow(dev)
	if err != nil {
		t.Fatal(err)
	}
	return dev, s
}

func frameOf(t *testing.T, s *Shadow, addr fabric.FrameAddr) []uint32 {
	t.Helper()
	f, ok := s.Frame(addr)
	if !ok {
		t.Fatalf("no frame %v", addr)
	}
	return f
}

func TestSnapshotCapturesPreimagesOnce(t *testing.T) {
	dev, s := snapTestShadow(t)
	addr := fabric.FrameAddr{Major: 1, Minor: 2}
	orig := append([]uint32{}, frameOf(t, s, addr)...)

	sn := s.Begin()
	if got := sn.Frames(); len(got) != 0 {
		t.Fatalf("fresh snapshot dirty: %v", got)
	}
	d1 := make([]uint32, dev.FrameWords())
	d1[0] = 0xAAAA0001
	s.Note(addr, d1)
	d2 := make([]uint32, dev.FrameWords())
	d2[0] = 0xAAAA0002
	s.Note(addr, d2)

	pre, ok := sn.Preimage(addr)
	if !ok {
		t.Fatal("no pre-image captured")
	}
	// First touch wins: the pre-image is the epoch state, not d1.
	for i := range pre {
		if pre[i] != orig[i] {
			t.Fatalf("pre-image word %d = %#x, want %#x", i, pre[i], orig[i])
		}
	}
	if got := sn.Frames(); len(got) != 1 || got[0] != addr {
		t.Fatalf("dirty set = %v", got)
	}
}

func TestSnapshotRollbackRestoresAndRearms(t *testing.T) {
	dev, s := snapTestShadow(t)
	addr := fabric.FrameAddr{Major: 2, Minor: 0}
	orig := append([]uint32{}, frameOf(t, s, addr)...)

	sn := s.Begin()
	mut := make([]uint32, dev.FrameWords())
	mut[1] = 0xDEADBEEF
	s.Note(addr, mut)
	sn.Rollback()

	got := frameOf(t, s, addr)
	for i := range got {
		if got[i] != orig[i] {
			t.Fatalf("rollback left word %d = %#x", i, got[i])
		}
	}
	// Re-armed: a second round of mutation is captured again.
	s.Note(addr, mut)
	if _, ok := sn.Preimage(addr); !ok {
		t.Fatal("snapshot not re-armed after rollback")
	}
	sn.Rollback()
	got = frameOf(t, s, addr)
	if got[1] != orig[1] {
		t.Fatal("second rollback failed")
	}
}

func TestSnapshotReleaseStopsCapture(t *testing.T) {
	dev, s := snapTestShadow(t)
	addr := fabric.FrameAddr{Major: 3, Minor: 1}
	sn := s.Begin()
	sn.Release()
	sn.Release() // idempotent
	mut := make([]uint32, dev.FrameWords())
	mut[0] = 7
	s.Note(addr, mut)
	if _, ok := sn.Preimage(addr); ok {
		t.Fatal("released snapshot captured a pre-image")
	}
}

func TestNestedSnapshotsSeeConsistentEpochs(t *testing.T) {
	dev, s := snapTestShadow(t)
	addr := fabric.FrameAddr{Major: 1, Minor: 0}
	orig := append([]uint32{}, frameOf(t, s, addr)...)

	outer := s.Begin()
	v1 := make([]uint32, dev.FrameWords())
	v1[0] = 1
	s.Note(addr, v1)

	inner := s.Begin()
	v2 := make([]uint32, dev.FrameWords())
	v2[0] = 2
	s.Note(addr, v2)

	// Inner rollback → back to v1; outer still holds the original.
	inner.Rollback()
	if got := frameOf(t, s, addr); got[0] != 1 {
		t.Fatalf("inner rollback → %#x, want 1", got[0])
	}
	inner.Release()
	outer.Rollback()
	if got := frameOf(t, s, addr); got[0] != orig[0] {
		t.Fatalf("outer rollback → %#x, want %#x", got[0], orig[0])
	}
	outer.Release()
}

// TestSnapshotRecoveryWordsRoundTrip streams a snapshot's recovery bitstream
// through a controller and checks the device comes back bit-identical.
func TestSnapshotRecoveryWordsRoundTrip(t *testing.T) {
	dev, s := snapTestShadow(t)
	ctrl := NewController(dev)

	sn := s.Begin()
	// Dirty a scattered set of frames (consecutive and isolated) through the
	// "tool path": note the shadow, write the device.
	addrs := []fabric.FrameAddr{
		{Major: 1, Minor: 3}, {Major: 1, Minor: 4}, {Major: 1, Minor: 5},
		{Major: 4, Minor: 0}, {Major: 6, Minor: 7},
	}
	for i, addr := range addrs {
		mut := make([]uint32, dev.FrameWords())
		mut[0] = uint32(0xC0DE0000 + i)
		s.Note(addr, mut)
		if err := dev.WriteFrame(addr.Major, addr.Minor, mut); err != nil {
			t.Fatal(err)
		}
	}
	words := sn.RecoveryWords()
	if len(words) == 0 {
		t.Fatal("no recovery stream for a dirty snapshot")
	}
	if err := ctrl.Feed(words...); err != nil {
		t.Fatalf("recovery stream rejected: %v", err)
	}
	sn.Rollback()
	for _, addr := range addrs {
		got, err := dev.ReadFrame(addr.Major, addr.Minor)
		if err != nil {
			t.Fatal(err)
		}
		want := frameOf(t, s, addr)
		for w := range got {
			if got[w] != want[w] {
				t.Fatalf("frame %v word %d: device %#x shadow %#x", addr, w, got[w], want[w])
			}
		}
		if got[0] >= 0xC0DE0000 {
			t.Fatalf("frame %v still holds mutated data", addr)
		}
	}
	if sn.RecoveryWords() != nil {
		t.Fatal("clean snapshot produced a recovery stream")
	}
}

func TestPartialStreamWordsExact(t *testing.T) {
	dev := fabric.NewDevice(fabric.TestDevice)
	fw := dev.FrameWords()
	mk := func(addrs ...fabric.FrameAddr) []FrameUpdate {
		out := make([]FrameUpdate, len(addrs))
		for i, a := range addrs {
			out[i] = FrameUpdate{Addr: a, Data: make([]uint32, fw)}
		}
		return out
	}
	cases := [][]FrameUpdate{
		mk(fabric.FrameAddr{Major: 1, Minor: 0}),
		mk(fabric.FrameAddr{Major: 1, Minor: 0}, fabric.FrameAddr{Major: 1, Minor: 1}),
		mk(fabric.FrameAddr{Major: 1, Minor: 0}, fabric.FrameAddr{Major: 3, Minor: 5}),
	}
	// A run long enough to need a Type-2 FDRI header.
	var big []FrameUpdate
	for m := 0; m < fabric.FramesPerCLBColumn; m++ {
		big = append(big, FrameUpdate{Addr: fabric.FrameAddr{Major: 2, Minor: m}, Data: make([]uint32, fw)})
	}
	cases = append(cases, big)
	for i, updates := range cases {
		want := len(Partial(dev, updates))
		got := partialStreamWords(fw, updates)
		if got != want {
			t.Errorf("case %d: sized %d words, stream is %d", i, got, want)
		}
	}
}
