package bitstream

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/fabric"
)

// primeDevice writes every update's Prev baseline into the device, modelling
// the write-through staging contract under which the encoder runs: the
// configuration memory holds the baseline the deltas patch against.
func primeDevice(t *testing.T, dev *fabric.Device, updates []FrameUpdate) {
	t.Helper()
	for _, u := range updates {
		if len(u.Prev) == 0 {
			continue
		}
		if err := dev.WriteFrame(u.Addr.Major, u.Addr.Minor, u.Prev); err != nil {
			t.Fatal(err)
		}
	}
}

// decodeAndCompare feeds words to a fresh controller over dev and checks every
// update's frame reads back as its Data image.
func decodeAndCompare(t *testing.T, dev *fabric.Device, words []uint32, updates []FrameUpdate) {
	t.Helper()
	ctl := NewController(dev)
	if err := ctl.Feed(words...); err != nil {
		t.Fatalf("compressed stream rejected: %v", err)
	}
	for _, u := range updates {
		got, err := dev.ReadFrame(u.Addr.Major, u.Addr.Minor)
		if err != nil {
			t.Fatal(err)
		}
		for j := range got {
			if got[j] != u.Data[j] {
				t.Fatalf("frame %v word %d = %#x, want %#x", u.Addr, j, got[j], u.Data[j])
			}
		}
	}
}

func TestCompressedPartialDeltaDecodes(t *testing.T) {
	dev, _ := newDevCtl()
	fw := dev.FrameWords()
	prev := make([]uint32, fw)
	data := make([]uint32, fw)
	for i := range prev {
		prev[i] = uint32(i)
		data[i] = uint32(i)
	}
	data[3] = 0xAAAA
	data[fw-1] = 0xBBBB
	ups := []FrameUpdate{{Addr: fabric.FrameAddr{Major: 2, Minor: 1}, Data: data, Prev: prev}}
	primeDevice(t, dev, ups)
	words, st := CompressedPartial(dev, ups)
	if st.DeltaFrames != 1 || st.FullFrames != 0 || st.SkippedFrames != 0 {
		t.Fatalf("stats = %+v, want one delta frame", st)
	}
	if full := Partial(dev, ups); len(words) >= len(full) {
		t.Fatalf("delta stream %d words, full stream %d: no win", len(words), len(full))
	}
	decodeAndCompare(t, dev, words, ups)
}

func TestCompressedPartialMFWRGroups(t *testing.T) {
	dev, _ := newDevCtl()
	fw := dev.FrameWords()
	payload := make([]uint32, fw)
	for i := range payload {
		payload[i] = 0xC0FFEE ^ uint32(i)
	}
	ups := []FrameUpdate{
		{Addr: fabric.FrameAddr{Major: 2, Minor: 0}, Data: payload},
		{Addr: fabric.FrameAddr{Major: 2, Minor: 3}, Data: payload},
		{Addr: fabric.FrameAddr{Major: 5, Minor: 1}, Data: payload},
		{Addr: fabric.FrameAddr{Major: 7, Minor: 2}, Data: payload},
	}
	words, st := CompressedPartial(dev, ups)
	if st.MFWRFrames != 3 || st.FullFrames != 1 {
		t.Fatalf("stats = %+v, want 1 full + 3 MFWR frames", st)
	}
	if full := Partial(dev, ups); len(words) >= len(full) {
		t.Fatalf("MFWR stream %d words, full stream %d: no win", len(words), len(full))
	}
	decodeAndCompare(t, dev, words, ups)
}

func TestCompressedPartialSkipsIdenticalRewrites(t *testing.T) {
	dev, _ := newDevCtl()
	fw := dev.FrameWords()
	data := make([]uint32, fw)
	data[0] = 7
	ups := []FrameUpdate{
		{Addr: fabric.FrameAddr{Major: 1, Minor: 0}, Data: data, Prev: data},
		{Addr: fabric.FrameAddr{Major: 1, Minor: 1}, Data: data, Prev: data},
	}
	primeDevice(t, dev, ups)
	words, st := CompressedPartial(dev, ups)
	if words != nil {
		t.Fatalf("identical rewrites shipped %d words, want none", len(words))
	}
	if st.SkippedFrames != 2 {
		t.Fatalf("stats = %+v, want 2 skipped frames", st)
	}
}

// TestCompressedPartialBitIdentical is the encoder's core property on a
// randomized mixed workload: whatever mix of skips, deltas, MFWR groups and
// full frames the classifier picks, the decoded device is word-for-word the
// same as a twin fed the uncompressed Partial stream.
func TestCompressedPartialBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		devA, _ := newDevCtl() // compressed
		devB, _ := newDevCtl() // uncompressed twin
		fw := devA.FrameWords()
		n := 1 + rng.Intn(8)
		seen := map[fabric.FrameAddr]bool{}
		var ups []FrameUpdate
		var shared []uint32
		for len(ups) < n {
			addr := fabric.FrameAddr{Major: 1 + rng.Intn(devA.NumMajors()-1), Minor: rng.Intn(4)}
			if seen[addr] {
				continue
			}
			seen[addr] = true
			u := FrameUpdate{Addr: addr}
			switch rng.Intn(4) {
			case 0: // identical rewrite
				w := randFrame(rng, fw)
				u.Prev, u.Data = w, append([]uint32(nil), w...)
			case 1: // sparse delta
				u.Prev = randFrame(rng, fw)
				u.Data = append([]uint32(nil), u.Prev...)
				for k := 0; k < 1+rng.Intn(3); k++ {
					u.Data[rng.Intn(fw)] ^= rng.Uint32() | 1
				}
			case 2: // repeated payload (MFWR candidate)
				if shared == nil {
					shared = randFrame(rng, fw)
				}
				u.Data = shared
			default: // no baseline: full frame
				u.Data = randFrame(rng, fw)
			}
			ups = append(ups, u)
		}
		for _, dev := range []*fabric.Device{devA, devB} {
			for _, u := range ups {
				if len(u.Prev) == fw {
					if err := dev.WriteFrame(u.Addr.Major, u.Addr.Minor, u.Prev); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
		words, st := CompressedPartial(devA, ups)
		if got := st.DeltaFrames + st.MFWRFrames + st.SkippedFrames + st.FullFrames; got != len(ups) {
			t.Fatalf("trial %d: classification covers %d of %d frames (%+v)", trial, got, len(ups), st)
		}
		if err := NewController(devA).Feed(words...); err != nil {
			t.Fatalf("trial %d: compressed stream rejected: %v", trial, err)
		}
		if err := NewController(devB).Feed(Partial(devB, ups)...); err != nil {
			t.Fatalf("trial %d: full stream rejected: %v", trial, err)
		}
		for _, u := range ups {
			a, _ := devA.ReadFrame(u.Addr.Major, u.Addr.Minor)
			b, _ := devB.ReadFrame(u.Addr.Major, u.Addr.Minor)
			for j := range a {
				if a[j] != b[j] {
					t.Fatalf("trial %d: frame %v word %d: compressed %#x, full %#x", trial, u.Addr, j, a[j], b[j])
				}
			}
		}
	}
}

func randFrame(rng *rand.Rand, fw int) []uint32 {
	f := make([]uint32, fw)
	for i := range f {
		f[i] = rng.Uint32()
	}
	return f
}

// TestDeltaPacketMalformed pins the decoder's typed rejection of every
// malformed delta/MFWR shape the encoder can never produce.
func TestDeltaPacketMalformed(t *testing.T) {
	dev, _ := newDevCtl()
	fw := dev.FrameWords()
	prefix := func() *Builder {
		b := NewBuilderFor(dev)
		b.Sync().ResetCRC().FrameLength()
		b.writeReg(RegCMD, CmdWCFG)
		b.writeReg(RegFAR, EncodeFAR(FAR{Major: 2, Minor: 0}))
		return b
	}
	cases := []struct {
		name  string
		words func() []uint32
	}{
		{"zero-length run", func() []uint32 {
			b := prefix()
			b.emit(header1(opWrite, RegDELTA, 1))
			b.emit(deltaRunHeader(0, 0))
			return b.Words()
		}},
		{"run past frame end", func() []uint32 {
			b := prefix()
			b.emit(header1(opWrite, RegDELTA, 3))
			b.emit(deltaRunHeader(fw-1, 2))
			b.emit(1)
			b.emit(2)
			return b.Words()
		}},
		{"truncated run payload", func() []uint32 {
			b := prefix()
			// Packet claims 2 words but the run header asks for 3 more.
			b.emit(header1(opWrite, RegDELTA, 2))
			b.emit(deltaRunHeader(0, 3))
			b.emit(1)
			return b.Words()
		}},
		{"delta without WCFG", func() []uint32 {
			b := NewBuilderFor(dev)
			b.Sync().ResetCRC().FrameLength()
			b.writeReg(RegFAR, EncodeFAR(FAR{Major: 2, Minor: 0}))
			b.emit(header1(opWrite, RegDELTA, 2))
			b.emit(deltaRunHeader(0, 1))
			b.emit(42)
			return b.Words()
		}},
		{"MFWR with no loaded frame", func() []uint32 {
			b := NewBuilderFor(dev)
			b.Sync().ResetCRC().FrameLength()
			b.writeReg(RegCMD, CmdMFW)
			b.writeReg(RegFAR, EncodeFAR(FAR{Major: 2, Minor: 0}))
			b.emit(header1(opWrite, RegMFWR, mfwrDummyWords))
			b.emit(0)
			b.emit(0)
			return b.Words()
		}},
		{"MFWR without MFW command", func() []uint32 {
			b := prefix()
			b.emit(header1(opWrite, RegMFWR, mfwrDummyWords))
			b.emit(0)
			b.emit(0)
			return b.Words()
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ctl := NewController(dev)
			err := ctl.Feed(tc.words()...)
			if !errors.Is(err, ErrDelta) {
				t.Fatalf("err = %v, want ErrDelta", err)
			}
		})
	}
}

// TestEncodeStreamTrafficAccounting pins the shared encode path's counters:
// uncompressed traffic counts the same words both ways; compressed traffic
// records the uncompressed equivalent as FullWords.
func TestEncodeStreamTrafficAccounting(t *testing.T) {
	dev, _ := newDevCtl()
	fw := dev.FrameWords()
	prev := make([]uint32, fw)
	data := make([]uint32, fw)
	copy(data, prev)
	data[1] = 9
	ups := []FrameUpdate{{Addr: fabric.FrameAddr{Major: 3, Minor: 0}, Data: data, Prev: prev}}
	primeDevice(t, dev, ups)

	var plain Traffic
	pw := EncodeStream(dev, false, ups, &plain)
	if plain.WordsShifted != uint64(len(pw)) || plain.FullWords != plain.WordsShifted || plain.FramesDelivered != 1 {
		t.Fatalf("uncompressed traffic = %+v over %d words", plain, len(pw))
	}
	if plain.CompressionRatio() != 1 {
		t.Fatalf("uncompressed ratio = %v, want 1", plain.CompressionRatio())
	}

	var comp Traffic
	cw := EncodeStream(dev, true, ups, &comp)
	if comp.WordsShifted != uint64(len(cw)) || comp.FullWords != plain.FullWords {
		t.Fatalf("compressed traffic = %+v over %d words (full baseline %d)", comp, len(cw), plain.FullWords)
	}
	if comp.CompressionRatio() <= 1 {
		t.Fatalf("compression ratio = %v, want > 1", comp.CompressionRatio())
	}
}
