package bitstream

import (
	"errors"

	"repro/internal/fabric"
)

// This file is the compressed configuration stream layer: partial-frame
// delta packets (only the changed word runs of a frame ship), multi-frame
// writes (one FDRI payload committed at a list of frame addresses — the
// Virtex-II MFWR idea: defragmentation slides rewrite near-identical frames
// over and over), and the encoder that picks, per frame, the cheapest of
// skip / delta / full / multi-frame. Verification stays CRC-only on this hot
// path; the full readback-verify survives as the escalation tier of the
// facade's retry ladder.
//
// Compressed delivery is frame-bit-identical to full-frame delivery by
// construction: a delta packet is applied read-modify-write against the
// configuration memory, which under the write-through staging model already
// holds every frame's final content — so the baseline a stale Prev diffs
// against can only enlarge the shipped set, never corrupt it.

// Compressed-stream register addresses and command (Virtex-II flavoured).
const (
	// RegMFWR is the multi-frame-write register: a short dummy-word packet
	// that re-commits the last FDRI-loaded frame at the current FAR.
	RegMFWR = 10
	// RegDELTA is the partial-frame delta register (a model extension): its
	// payload is a sequence of word runs patched into the frame at FAR.
	RegDELTA = 12
)

// CmdMFW arms multi-frame write mode: while it is the current command, each
// RegMFWR packet copies the frame buffer to the FAR'd frame.
const CmdMFW = 2

// mfwrDummyWords is the dummy payload length of one RegMFWR packet (the real
// part clocks two dummy words through to trigger the commit).
const mfwrDummyWords = 2

// ErrDelta is returned for malformed delta or multi-frame-write packets:
// out-of-range runs, truncated run payloads, an MFWR with no loaded frame.
var ErrDelta = errors.New("bitstream: malformed delta packet")

// deltaRunHeader packs one run descriptor: word offset in the frame and run
// length, both bounded by the frame length register.
func deltaRunHeader(offset, count int) uint32 {
	return uint32(offset&0xFFFF)<<16 | uint32(count&0xFFFF)
}

// EncodeStats describes one compressed stream against its uncompressed
// equivalent.
type EncodeStats struct {
	// WordsShifted is the length of the compressed stream.
	WordsShifted int
	// FullWords is the length of the stream Partial would have built for the
	// same updates — the uncompressed baseline of the compression ratio.
	FullWords int
	// DeltaFrames counts frames shipped as partial-frame delta packets.
	DeltaFrames int
	// MFWRFrames counts frames committed by multi-frame-write packets (the
	// first frame of each identical-payload group ships as a full frame and
	// is not counted here).
	MFWRFrames int
	// SkippedFrames counts frames elided entirely because their content
	// equals the Prev baseline (an identical rewrite carries no information).
	SkippedFrames int
	// FullFrames counts frames that shipped as ordinary full-frame FDRI data
	// (no usable baseline, or the delta would have been larger).
	FullFrames int
}

// deltaRun is one changed word run of a frame.
type deltaRun struct {
	off   int
	words []uint32
}

// diffRuns returns the maximal runs of words where next differs from prev.
func diffRuns(prev, next []uint32) []deltaRun {
	var runs []deltaRun
	i := 0
	for i < len(next) {
		if prev[i] == next[i] {
			i++
			continue
		}
		j := i + 1
		for j < len(next) && prev[j] != next[j] {
			j++
		}
		runs = append(runs, deltaRun{off: i, words: next[i:j]})
		i = j
	}
	return runs
}

// CompressedPartial builds a compressed partial bitstream for the updates:
// frames whose Prev baseline equals their content are skipped, frames with a
// baseline and a small diff ship as delta packets, repeated identical
// payloads among the rest collapse into multi-frame writes, and everything
// else falls back to the ordinary consecutive-run FDRI bursts. The result is
// protocol-complete (sync, CRC brackets, desync) and decodes on the stock
// Controller to exactly the same frame images Partial produces.
func CompressedPartial(dev *fabric.Device, updates []FrameUpdate) ([]uint32, EncodeStats) {
	fw := dev.FrameWords()
	st := EncodeStats{FullWords: partialStreamWords(fw, updates)}

	type deltaFrame struct {
		addr fabric.FrameAddr
		runs []deltaRun
	}
	var deltas []deltaFrame
	var full []FrameUpdate
	for _, u := range updates {
		if len(u.Prev) != fw || len(u.Data) != fw {
			full = append(full, u)
			continue
		}
		runs := diffRuns(u.Prev, u.Data)
		if len(runs) == 0 {
			st.SkippedFrames++
			continue
		}
		payload := 0
		for _, r := range runs {
			payload += 1 + len(r.words)
		}
		// A delta costs a FAR write (2 words) plus the packet header on top
		// of its payload; the break-even against riding in a full-frame FDRI
		// run is roughly the frame length. Oversized payloads (beyond a
		// Type-1 word count) also fall back.
		if 3+payload >= fw || payload > wc1Mask {
			full = append(full, u)
			continue
		}
		st.DeltaFrames++
		deltas = append(deltas, deltaFrame{addr: u.Addr, runs: runs})
	}

	// Group identical payloads among the full-frame pool: each group of two
	// or more commits one FDRI frame and re-targets it with MFWR packets.
	type group struct{ members []int }
	byContent := map[string]*group{}
	order := []*group{}
	for i, u := range full {
		key := frameKey(u.Data)
		g := byContent[key]
		if g == nil {
			g = &group{}
			byContent[key] = g
			order = append(order, g)
		}
		g.members = append(g.members, i)
	}

	b := NewBuilderFor(dev)
	b.Sync().ResetCRC().FrameLength()

	var singles []FrameUpdate
	for _, g := range order {
		if len(g.members) < 2 {
			singles = append(singles, full[g.members[0]])
			continue
		}
		first := full[g.members[0]]
		b.WriteFrames(FAR{Major: first.Addr.Major, Minor: first.Addr.Minor}, [][]uint32{first.Data})
		st.FullFrames++
		b.writeReg(RegCMD, CmdMFW)
		for _, idx := range g.members[1:] {
			u := full[idx]
			b.writeReg(RegFAR, EncodeFAR(FAR{Major: u.Addr.Major, Minor: u.Addr.Minor}))
			b.emit(header1(opWrite, RegMFWR, mfwrDummyWords))
			for k := 0; k < mfwrDummyWords; k++ {
				b.emit(0)
				b.crc = crcUpdate(b.crc, RegMFWR, 0)
			}
			st.MFWRFrames++
		}
		b.CheckCRC()
	}
	if len(singles) > 0 {
		st.FullFrames += len(singles)
		appendUpdates(b, singles)
	}
	if len(deltas) > 0 {
		b.writeReg(RegCMD, CmdWCFG)
		for _, d := range deltas {
			b.writeReg(RegFAR, EncodeFAR(FAR{Major: d.addr.Major, Minor: d.addr.Minor}))
			total := 0
			for _, r := range d.runs {
				total += 1 + len(r.words)
			}
			b.emit(header1(opWrite, RegDELTA, total))
			for _, r := range d.runs {
				b.emit(deltaRunHeader(r.off, len(r.words)))
				b.crc = crcUpdate(b.crc, RegDELTA, deltaRunHeader(r.off, len(r.words)))
				for _, w := range r.words {
					b.emit(w)
					b.crc = crcUpdate(b.crc, RegDELTA, w)
				}
			}
		}
		b.CheckCRC()
	}
	b.Desync()
	words := b.Words()
	if st.SkippedFrames == len(updates) && len(updates) > 0 {
		// Everything was an identical rewrite: ship nothing at all instead
		// of a payload-free protocol shell.
		words = nil
	}
	st.WordsShifted = len(words)
	return words, st
}

// frameKey builds a content key for MFWR grouping.
func frameKey(words []uint32) string {
	buf := make([]byte, 4*len(words))
	for i, w := range words {
		buf[4*i] = byte(w)
		buf[4*i+1] = byte(w >> 8)
		buf[4*i+2] = byte(w >> 16)
		buf[4*i+3] = byte(w >> 24)
	}
	return string(buf)
}

// Traffic accumulates a port's configuration-write payload accounting: how
// many words actually shipped versus what the uncompressed streams would
// have taken. Readback traffic is excluded — the ratio measures write-path
// compression only.
type Traffic struct {
	// WordsShifted counts the stream words actually delivered.
	WordsShifted uint64
	// FullWords counts the words the same deliveries would have taken
	// uncompressed (equal to WordsShifted when compression is off).
	FullWords uint64
	// FramesDelivered counts the frame updates handed to the port's write
	// paths (skipped identical rewrites included: the caller asked for them).
	FramesDelivered uint64
}

// CompressionRatio returns FullWords/WordsShifted (1 when nothing shipped,
// so an idle or fully-elided port reads as "no compression win" rather than
// infinity).
func (t Traffic) CompressionRatio() float64 {
	if t.WordsShifted == 0 {
		return 1
	}
	return float64(t.FullWords) / float64(t.WordsShifted)
}

// CompressPort is the optional capability of ports that can encode their
// write streams compressed and account the traffic either way. Both stock
// ports (jtag.Port, ParallelPort) implement it; wrappers forward it.
type CompressPort interface {
	// SetCompress switches delta/MFWR stream encoding on or off.
	SetCompress(on bool)
	// Compressed reports whether compressed encoding is on.
	Compressed() bool
	// Traffic returns the cumulative write-traffic counters.
	Traffic() Traffic
	// RestoreTraffic overwrites the counters (journal recovery and the
	// facade's maintenance-traffic compensation).
	RestoreTraffic(Traffic)
}

// EncodeStream builds the write stream for updates — compressed or not —
// and accounts it into tr. A nil return (only possible compressed, when
// every frame was an identical rewrite) means nothing needs shipping. Both
// stock ports route their write paths through it.
func EncodeStream(dev *fabric.Device, compress bool, updates []FrameUpdate, tr *Traffic) []uint32 {
	tr.FramesDelivered += uint64(len(updates))
	if !compress {
		words := Partial(dev, updates)
		tr.WordsShifted += uint64(len(words))
		tr.FullWords += uint64(len(words))
		return words
	}
	words, st := CompressedPartial(dev, updates)
	tr.WordsShifted += uint64(st.WordsShifted)
	tr.FullWords += uint64(st.FullWords)
	return words
}
