package bitstream

import (
	"sort"

	"repro/internal/fabric"
)

// Snapshot is a frame-granular, copy-on-write checkpoint of a Shadow. Begin
// marks an epoch; from then on the shadow saves the pre-image of every frame
// the first time it is overwritten, so rollback state is proportional to the
// frames an operation actually touched instead of to the whole device (the
// full-clone checkpoint it replaces was O(device) per operation).
//
// A Snapshot stays usable across several rollbacks: Rollback restores the
// shadow to the epoch state and re-arms the snapshot, so one checkpoint can
// back a retry loop. Release detaches it; a released snapshot stops
// accumulating pre-images and must not be rolled back.
//
// Pre-image slices are shared, never mutated: the shadow replaces frame
// slices wholesale on every note, so a saved slice is immutable from the
// moment it is captured.
type Snapshot struct {
	shadow *Shadow
	saved  map[fabric.FrameAddr][]uint32
	active bool
}

// Begin opens a copy-on-write snapshot of the shadow's current state.
func (s *Shadow) Begin() *Snapshot {
	sn := &Snapshot{
		shadow: s,
		saved:  make(map[fabric.FrameAddr][]uint32),
		active: true,
	}
	s.snaps = append(s.snaps, sn)
	return sn
}

// cow records the pre-image of a frame into every active snapshot that has
// not seen the address yet. Called by Note/NoteOwned before an overwrite.
func (s *Shadow) cow(addr fabric.FrameAddr, old []uint32) {
	for _, sn := range s.snaps {
		if _, seen := sn.saved[addr]; !seen {
			sn.saved[addr] = old
		}
	}
}

// detach removes a snapshot from the shadow's active list.
func (s *Shadow) detach(sn *Snapshot) {
	for i, cur := range s.snaps {
		if cur == sn {
			s.snaps = append(s.snaps[:i], s.snaps[i+1:]...)
			return
		}
	}
}

// Frames returns the dirty set — the addresses whose pre-images the snapshot
// holds — in frame-address order.
func (sn *Snapshot) Frames() []fabric.FrameAddr {
	out := make([]fabric.FrameAddr, 0, len(sn.saved))
	for addr := range sn.saved {
		out = append(out, addr)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Major != out[j].Major {
			return out[i].Major < out[j].Major
		}
		return out[i].Minor < out[j].Minor
	})
	return out
}

// Preimage returns the epoch-time content of a frame, if the frame changed
// since Begin.
func (sn *Snapshot) Preimage(addr fabric.FrameAddr) ([]uint32, bool) {
	f, ok := sn.saved[addr]
	return f, ok
}

// RecoveryWords builds a partial bitstream restoring every dirty frame to
// its pre-image — the frame-granular counterpart of Shadow.RecoveryBitstream.
// It returns nil when nothing changed since Begin.
func (sn *Snapshot) RecoveryWords() []uint32 {
	addrs := sn.Frames()
	if len(addrs) == 0 {
		return nil
	}
	updates := make([]FrameUpdate, len(addrs))
	for i, addr := range addrs {
		updates[i] = FrameUpdate{Addr: addr, Data: sn.saved[addr]}
	}
	fw := sn.shadow.frameWords
	b := NewBuilder(fw)
	b.Grow(partialStreamWords(fw, updates))
	b.Sync().ResetCRC().FrameLength()
	appendUpdates(b, updates)
	b.Desync()
	return b.Words()
}

// Rollback restores the shadow to the epoch state by writing every saved
// pre-image back, then re-arms the snapshot (empty dirty set, still active)
// so the same checkpoint can back another attempt. Other active snapshots
// observe the rollback writes through the normal copy-on-write path.
func (sn *Snapshot) Rollback() {
	if !sn.active {
		return
	}
	// Detach first so the rollback writes do not copy-on-write into sn
	// itself while it is being drained.
	sn.shadow.detach(sn)
	for addr, pre := range sn.saved {
		sn.shadow.NoteOwned(addr, pre)
	}
	sn.saved = make(map[fabric.FrameAddr][]uint32)
	sn.shadow.snaps = append(sn.shadow.snaps, sn)
}

// Release detaches the snapshot; it stops accumulating pre-images and frees
// its dirty set. Safe to call more than once.
func (sn *Snapshot) Release() {
	if !sn.active {
		return
	}
	sn.active = false
	sn.shadow.detach(sn)
	sn.saved = nil
}
