package bitstream

import (
	"errors"
	"testing"

	"repro/internal/fabric"
)

func fuzzMix(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// FuzzDeltaStream drives the delta/MFWR encoder-decoder round trip with
// arbitrary shadow-plus-staged-frame plans: the fuzz input deterministically
// expands into a set of frame updates (identical rewrites, sparse deltas,
// repeated payloads, baseline-free full frames), the encoder compresses them,
// and the stock controller must decode the stream back to the exact frame
// images. A second leg mutates one stream word and requires the decoder to
// either succeed or fail with a typed error (ErrCRC, ErrProtocol, ErrDelta) —
// never panic, never an anonymous failure.
func FuzzDeltaStream(f *testing.F) {
	f.Add([]byte{1, 2, 0, 1, 9, 9})
	f.Add([]byte{4, 1, 0, 0, 5, 5, 2, 1, 1, 6, 6, 7, 3, 2, 2, 9, 9, 9, 2, 0, 3, 1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{6, 1, 0, 2, 1, 1, 2, 1, 2, 2, 2, 3, 3, 2, 3, 3, 4, 0, 3, 4, 4, 5, 1, 1, 5, 5, 6, 2, 0, 6, 6, 0xFF, 0x10, 0xAA, 0xBB, 0xCC, 0xDD})
	f.Fuzz(func(t *testing.T, in []byte) {
		if len(in) < 2 {
			return
		}
		dev := fabric.NewDevice(fabric.TestDevice)
		fw := dev.FrameWords()
		pos := 0
		next := func() byte {
			if pos >= len(in) {
				pos++
				return 0
			}
			b := in[pos]
			pos++
			return b
		}
		mkFrame := func(seed uint64) []uint32 {
			out := make([]uint32, fw)
			for i := range out {
				out[i] = uint32(fuzzMix(&seed))
			}
			return out
		}
		n := int(next())%6 + 1
		seen := map[fabric.FrameAddr]bool{}
		var ups []FrameUpdate
		var shared []uint32
		for i := 0; i < n; i++ {
			major := 1 + int(next())%(dev.NumMajors()-1)
			col, ok := dev.ColumnByMajor(major)
			if !ok {
				continue
			}
			addr := fabric.FrameAddr{Major: major, Minor: int(next()) % col.Frames}
			if seen[addr] {
				continue
			}
			seen[addr] = true
			mode := next() % 4
			seed := uint64(next())<<8 | uint64(next()) | uint64(addr.Major)<<24 | uint64(addr.Minor)<<16
			u := FrameUpdate{Addr: addr}
			switch mode {
			case 0: // identical rewrite: must be elided
				w := mkFrame(seed)
				u.Prev, u.Data = w, append([]uint32(nil), w...)
			case 1: // sparse delta against a baseline
				u.Prev = mkFrame(seed)
				u.Data = append([]uint32(nil), u.Prev...)
				k := int(next())%3 + 1
				s := seed ^ 0xABCD
				for j := 0; j < k; j++ {
					u.Data[int(fuzzMix(&s)%uint64(fw))] ^= uint32(fuzzMix(&s)) | 1
				}
			case 2: // repeated payload: MFWR candidate
				if shared == nil {
					shared = mkFrame(seed)
				}
				u.Data = shared
			default: // no baseline: full frame
				u.Data = mkFrame(seed)
			}
			ups = append(ups, u)
		}
		if len(ups) == 0 {
			return
		}
		prime := func(d *fabric.Device) {
			for _, u := range ups {
				if len(u.Prev) == fw {
					if err := d.WriteFrame(u.Addr.Major, u.Addr.Minor, u.Prev); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
		prime(dev)
		words, st := CompressedPartial(dev, ups)
		if tot := st.DeltaFrames + st.MFWRFrames + st.SkippedFrames + st.FullFrames; tot != len(ups) {
			t.Fatalf("classification covers %d of %d frames (%+v)", tot, len(ups), st)
		}
		if err := NewController(dev).Feed(words...); err != nil {
			t.Fatalf("round-trip stream rejected: %v", err)
		}
		for _, u := range ups {
			got, err := dev.ReadFrame(u.Addr.Major, u.Addr.Minor)
			if err != nil {
				t.Fatal(err)
			}
			for j := range got {
				if got[j] != u.Data[j] {
					t.Fatalf("frame %v word %d = %#x, want %#x", u.Addr, j, got[j], u.Data[j])
				}
			}
		}
		if len(words) == 0 {
			return
		}
		// Malformed leg: flip bits in one stream word; the decoder must reject
		// with a typed error or accept — anything else (a panic, an untyped
		// error) is a decoder hole.
		dev2 := fabric.NewDevice(fabric.TestDevice)
		prime(dev2)
		idx := (int(next())<<8 | int(next())) % len(words)
		mask := uint32(next())<<24 | uint32(next())<<16 | uint32(next())<<8 | uint32(next())
		if mask == 0 {
			mask = 1
		}
		mut := append([]uint32(nil), words...)
		mut[idx] ^= mask
		if err := NewController(dev2).Feed(mut...); err != nil {
			if !errors.Is(err, ErrCRC) && !errors.Is(err, ErrProtocol) && !errors.Is(err, ErrDelta) {
				t.Fatalf("mutated stream (word %d ^= %#x): untyped error %v", idx, mask, err)
			}
		}
	})
}
