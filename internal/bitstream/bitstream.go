// Package bitstream implements a Virtex-style configuration protocol for the
// fabric model: packetised register writes, frame data streaming (FDRI) and
// readback (FDRO), a CRC-protected command set, and partial-bitstream
// generation. It plays the role JBits and the configuration logic played in
// the paper's tool chain: everything the relocation engine does to the
// device goes through configuration packets built here.
package bitstream

import (
	"errors"
	"fmt"

	"repro/internal/fabric"
)

// SyncWord marks the start of a configuration packet stream.
const SyncWord uint32 = 0xAA995566

// maxFLR bounds the frame length register (a real part's frame is a few
// hundred words at most; the bound keeps a corrupted FLR write from driving
// the frame buffer allocation).
const maxFLR = 1 << 12

// Packet types.
const (
	TypeNone  = 0
	Type1     = 1
	Type2     = 2
	opNOP     = 0
	opRead    = 1
	opWrite   = 2
	typeShift = 29
	opShift   = 27
	addrShift = 13
	addrMask  = 0x3FFF
	wc1Mask   = 0x7FF
	wc2Mask   = 0x07FFFFFF
)

// Configuration register addresses (Virtex-flavoured).
const (
	RegCRC  = 0
	RegFAR  = 1
	RegFDRI = 2
	RegFDRO = 3
	RegCMD  = 4
	RegCTL  = 5
	RegMASK = 6
	RegSTAT = 7
	RegLOUT = 8
	RegCOR  = 9
	RegFLR  = 11
	RegID   = 14
)

// CMD register command codes.
const (
	CmdNull    = 0
	CmdWCFG    = 1 // write configuration
	CmdLFRM    = 3 // last frame
	CmdRCFG    = 4 // read configuration
	CmdStart   = 5
	CmdRCRC    = 7 // reset CRC
	CmdDesync  = 13
	CmdCapture = 12
)

// FAR is a frame address register value.
type FAR struct {
	Block int // 0 = logic (CLB/IOB/clock), 1 = BRAM content
	Major int
	Minor int
}

// EncodeFAR packs a FAR into its register encoding.
func EncodeFAR(f FAR) uint32 {
	return uint32(f.Block&0xF)<<24 | uint32(f.Major&0xFFF)<<12 | uint32(f.Minor&0xFFF)
}

// DecodeFAR unpacks a FAR register value.
func DecodeFAR(v uint32) FAR {
	return FAR{Block: int(v >> 24 & 0xF), Major: int(v >> 12 & 0xFFF), Minor: int(v & 0xFFF)}
}

// header1 builds a Type-1 packet header.
func header1(op, addr, wordCount int) uint32 {
	return uint32(Type1)<<typeShift | uint32(op)<<opShift |
		uint32(addr&addrMask)<<addrShift | uint32(wordCount&wc1Mask)
}

// header2 builds a Type-2 packet header (word count only; the register comes
// from the preceding Type-1 header).
func header2(op, wordCount int) uint32 {
	return uint32(Type2)<<typeShift | uint32(op)<<opShift | uint32(wordCount&wc2Mask)
}

// crcUpdate folds one register write into a 16-bit CRC (polynomial 0x8005,
// data plus register address, LSB first).
func crcUpdate(crc uint16, addr int, word uint32) uint16 {
	const poly = 0x8005
	data := uint64(word) | uint64(addr&0xF)<<32
	for i := 0; i < 36; i++ {
		bit := uint16(data>>i) & 1
		fb := (crc >> 15) ^ bit
		crc <<= 1
		if fb == 1 {
			crc ^= poly
		}
	}
	return crc
}

// Stats accumulates configuration traffic counters.
type Stats struct {
	WordsIn       int
	WordsOut      int
	FramesWritten int
	FramesRead    int
	CRCErrors     int
	Syncs         int
}

// Controller is the device-side configuration logic: it consumes packet
// words and applies them to the fabric's configuration memory, enforcing
// frame granularity (the frame is the smallest unit that can be written) and
// the trailing pad-frame flush of the real part.
type Controller struct {
	dev   *fabric.Device
	stats Stats

	synced  bool
	crc     uint16
	far     FAR
	cmd     uint32
	flr     uint32
	pending int // remaining data words of current packet
	reg     int // register addressed by current packet
	frame   []uint32
	inFrame int
	wcfg    bool
	// lastFrame holds a copy of the most recent frame committed through
	// FDRI; a multi-frame-write packet (RegMFWR under CmdMFW) re-commits it
	// at the current FAR without re-shipping the payload.
	lastFrame []uint32
	// Delta packet (RegDELTA) decode state: the frame at FAR is loaded as
	// the read-modify-write base when the packet's first run header arrives,
	// patched run by run, and committed when the packet ends.
	deltaNeed int  // data words remaining in the current run
	deltaOff  int  // next frame word the current run patches
	deltaOpen bool // RMW base loaded for the packet in progress
	// redelivery marks the stream being fed as a re-delivery of frames
	// already staged write-through on the device: the full protocol (sync,
	// CRC, FAR sequencing) is enforced and traffic counted, but frame data
	// is not applied — the device took the content when it was staged, and
	// a write that landed after staging (the development tool sharing the
	// fabric) must not be rolled back to the older in-flight copy. This is
	// what makes a background shift-out invisible to concurrent host-side
	// reads: a re-delivered stream performs no configuration write at all.
	redelivery bool
}

// NewController attaches configuration logic to a device.
func NewController(dev *fabric.Device) *Controller {
	return &Controller{dev: dev, flr: uint32(dev.FrameWords())}
}

// Stats returns a copy of the traffic counters.
func (c *Controller) Stats() Stats { return c.stats }

// SetRedelivery switches the controller in or out of re-delivery mode
// (frames parse and count but are not applied). The background stream worker
// brackets each staged burst with it; the caller owns the controller for the
// duration (AsyncPort's contract serialises all other access).
func (c *Controller) SetRedelivery(on bool) { c.redelivery = on }

// ResetStats zeroes the traffic counters.
func (c *Controller) ResetStats() { c.stats = Stats{} }

// Device returns the attached device.
func (c *Controller) Device() *fabric.Device { return c.dev }

var (
	// ErrCRC is returned when a CRC check word mismatches; the write is
	// aborted like on real silicon.
	ErrCRC = errors.New("bitstream: CRC mismatch")
	// ErrProtocol is returned for malformed packet streams.
	ErrProtocol = errors.New("bitstream: protocol error")
)

// Feed consumes configuration words. It may be called repeatedly; state is
// kept across calls (a packet may straddle Feed boundaries).
func (c *Controller) Feed(words ...uint32) error {
	for _, w := range words {
		c.stats.WordsIn++
		if !c.synced {
			if w == SyncWord {
				c.synced = true
				c.stats.Syncs++
			}
			continue
		}
		if c.pending > 0 {
			if err := c.dataWord(w); err != nil {
				return err
			}
			continue
		}
		if err := c.headerWord(w); err != nil {
			return err
		}
	}
	return nil
}

func (c *Controller) headerWord(w uint32) error {
	if w == SyncWord {
		return nil // re-sync while already synced is a no-op
	}
	typ := int(w >> typeShift & 0x7)
	op := int(w >> opShift & 0x3)
	switch typ {
	case Type1:
		c.reg = int(w >> addrShift & addrMask)
		c.pending = 0
		if op == opWrite {
			c.pending = int(w & wc1Mask)
			if c.reg == RegFDRI {
				c.beginFDRI()
			}
		}
	case Type2:
		c.pending = 0
		if op == opWrite {
			c.pending = int(w & wc2Mask)
			if c.reg == RegFDRI {
				c.beginFDRI()
			}
		}
	case TypeNone:
		// NOP word (all zero type): ignore.
	default:
		return fmt.Errorf("%w: unknown packet type %d", ErrProtocol, typ)
	}
	return nil
}

func (c *Controller) beginFDRI() {
	if len(c.frame) != int(c.flr) {
		c.frame = make([]uint32, c.flr)
	}
	c.inFrame = 0
	c.wcfg = c.cmd == CmdWCFG
}

func (c *Controller) dataWord(w uint32) error {
	c.pending--
	switch c.reg {
	case RegCRC:
		if w&0xFFFF != uint32(c.crc) {
			c.stats.CRCErrors++
			c.synced = false
			return fmt.Errorf("%w: got %#x, want %#x", ErrCRC, w&0xFFFF, c.crc)
		}
		c.crc = 0 // successful check restarts the running CRC
		return nil
	case RegFAR:
		c.far = DecodeFAR(w)
	case RegCMD:
		c.cmd = w
		if w == CmdRCRC {
			c.crc = 0
			return nil // RCRC resets the CRC and is not folded into it
		}
		if w == CmdDesync {
			c.synced = false
			return nil
		}
	case RegFDRI:
		c.crc = crcUpdate(c.crc, RegFDRI, w)
		return c.fdriWord(w)
	case RegDELTA:
		if err := c.deltaWord(w); err != nil {
			return err
		}
	case RegMFWR:
		if err := c.mfwrWord(); err != nil {
			return err
		}
	case RegFLR:
		// Bound the frame length register: the frame buffer is allocated from
		// it, so a corrupted write must not turn into a zero-length frame
		// (index panic) or a multi-gigabyte allocation.
		if w == 0 || w > maxFLR {
			return fmt.Errorf("%w: frame length %d out of range", ErrProtocol, w)
		}
		c.flr = w
	case RegCTL, RegMASK, RegCOR, RegLOUT, RegID:
		// Accepted, no behavioural effect in the model.
	default:
		return fmt.Errorf("%w: write to unknown register %d", ErrProtocol, c.reg)
	}
	c.crc = crcUpdate(c.crc, c.reg, w)
	return nil
}

// fdriWord streams one word into the frame buffer; each full buffer is
// flushed to the device and the FAR auto-increments. The LAST frame of an
// FDRI write is a pad frame that only pushes the previous one out of the
// buffer — the builder always appends one, as on the real part.
func (c *Controller) fdriWord(w uint32) error {
	c.frame[c.inFrame] = w
	c.inFrame++
	if c.inFrame < len(c.frame) {
		return nil
	}
	c.inFrame = 0
	if !c.wcfg {
		return fmt.Errorf("%w: FDRI data without WCFG command", ErrProtocol)
	}
	if c.pending >= len(c.frame) {
		// Not the trailing pad frame: commit and advance. A frame whose
		// content already matches the device is skipped inside the write —
		// rewriting identical bits is glitch-free, so nothing is marked
		// stale. A re-delivery stream applies nothing at all (see the
		// redelivery field).
		if !c.redelivery {
			if _, err := c.dev.WriteFrameIfChanged(c.far.Major, c.far.Minor, c.frame); err != nil {
				return fmt.Errorf("%w: %v", ErrProtocol, err)
			}
		}
		// Keep the committed payload for multi-frame writes (also in
		// re-delivery: the MFWR packets of the same stream must see the same
		// buffer the original delivery loaded).
		if cap(c.lastFrame) < len(c.frame) {
			c.lastFrame = make([]uint32, len(c.frame))
		}
		c.lastFrame = c.lastFrame[:len(c.frame)]
		copy(c.lastFrame, c.frame)
		c.stats.FramesWritten++
		c.advanceFAR()
	}
	// Anything shorter than a frame remaining is the pad: absorbed.
	return nil
}

// deltaWord consumes one word of a partial-frame delta packet: alternating
// run headers (offset<<16 | count) and run payload words, patched into the
// FAR'd frame read-modify-write. Runs are validated against the frame length
// and the packet's remaining word count, so a truncated or out-of-range run
// fails immediately with ErrDelta. The patched frame commits when the packet
// ends; a re-delivery stream parses and validates but applies nothing.
func (c *Controller) deltaWord(w uint32) error {
	if c.cmd != CmdWCFG {
		return fmt.Errorf("%w: delta data without WCFG command", ErrDelta)
	}
	if c.deltaNeed == 0 {
		off := int(w >> 16)
		n := int(w & 0xFFFF)
		if n < 1 || off+n > int(c.flr) {
			return fmt.Errorf("%w: run offset %d count %d outside frame length %d", ErrDelta, off, n, c.flr)
		}
		if n > c.pending {
			return fmt.Errorf("%w: run of %d words truncated (%d words left in packet)", ErrDelta, n, c.pending)
		}
		if !c.deltaOpen {
			if !c.redelivery {
				base, err := c.dev.ReadFrame(c.far.Major, c.far.Minor)
				if err != nil {
					return fmt.Errorf("%w: %v", ErrDelta, err)
				}
				if len(c.frame) != int(c.flr) {
					c.frame = make([]uint32, c.flr)
				}
				copy(c.frame, base)
			}
			c.deltaOpen = true
		}
		c.deltaOff = off
		c.deltaNeed = n
		return nil
	}
	if !c.redelivery {
		c.frame[c.deltaOff] = w
	}
	c.deltaOff++
	c.deltaNeed--
	if c.pending == 0 && c.deltaNeed == 0 {
		c.deltaOpen = false
		if !c.redelivery {
			if _, err := c.dev.WriteFrameIfChanged(c.far.Major, c.far.Minor, c.frame); err != nil {
				return fmt.Errorf("%w: %v", ErrDelta, err)
			}
		}
		c.stats.FramesWritten++
		c.advanceFAR()
	}
	return nil
}

// mfwrWord consumes one dummy word of a multi-frame-write packet; the last
// one re-commits the frame most recently loaded through FDRI at the current
// FAR (the Virtex-II MFWR semantics: ship a repeated payload once, then
// re-target it by address).
func (c *Controller) mfwrWord() error {
	if c.cmd != CmdMFW {
		return fmt.Errorf("%w: MFWR data without MFW command", ErrDelta)
	}
	if c.pending > 0 {
		return nil
	}
	if len(c.lastFrame) != int(c.flr) {
		return fmt.Errorf("%w: MFWR with no loaded frame", ErrDelta)
	}
	if !c.redelivery {
		if _, err := c.dev.WriteFrameIfChanged(c.far.Major, c.far.Minor, c.lastFrame); err != nil {
			return fmt.Errorf("%w: %v", ErrDelta, err)
		}
	}
	c.stats.FramesWritten++
	c.advanceFAR()
	return nil
}

func (c *Controller) advanceFAR() {
	col, ok := c.dev.ColumnByMajor(c.far.Major)
	if !ok {
		return
	}
	c.far.Minor++
	if c.far.Minor >= col.Frames {
		c.far.Minor = 0
		c.far.Major++
	}
}

// ExecRead processes a readback request (a packet stream ending in an FDRO
// read) and returns the frame data words. Readback length is rounded to
// whole frames.
func (c *Controller) ExecRead(request []uint32) ([]uint32, error) {
	var out []uint32
	i := 0
	synced := false
	var far FAR
	var reg, pendingWrite int
	for i < len(request) {
		w := request[i]
		i++
		if !synced {
			if w == SyncWord {
				synced = true
			}
			continue
		}
		if pendingWrite > 0 {
			pendingWrite--
			if reg == RegFAR {
				far = DecodeFAR(w)
			}
			continue
		}
		typ := int(w >> typeShift & 0x7)
		op := int(w >> opShift & 0x3)
		switch typ {
		case Type1:
			reg = int(w >> addrShift & addrMask)
			wc := int(w & wc1Mask)
			if op == opWrite {
				pendingWrite = wc
			} else if op == opRead && reg == RegFDRO {
				data, err := c.readFrames(far, wc)
				if err != nil {
					return nil, err
				}
				out = append(out, data...)
			}
		case Type2:
			if op == opWrite {
				// Skip a Type-2 write payload (e.g. a batched FDRI burst
				// too long for a Type-1 word count) so a readback request
				// later in the log still parses.
				pendingWrite = int(w & wc2Mask)
			} else if op == opRead && reg == RegFDRO {
				data, err := c.readFrames(far, int(w&wc2Mask))
				if err != nil {
					return nil, err
				}
				out = append(out, data...)
			}
		case TypeNone:
		default:
			return nil, fmt.Errorf("%w: bad readback packet", ErrProtocol)
		}
	}
	c.stats.WordsOut += len(out)
	return out, nil
}

func (c *Controller) readFrames(far FAR, words int) ([]uint32, error) {
	fw := c.dev.FrameWords()
	n := words / fw
	var out []uint32
	f := far
	for k := 0; k < n; k++ {
		data, err := c.dev.ReadFrame(f.Major, f.Minor)
		if err != nil {
			return nil, err
		}
		out = append(out, data...)
		c.stats.FramesRead++
		col, _ := c.dev.ColumnByMajor(f.Major)
		f.Minor++
		if f.Minor >= col.Frames {
			f.Minor = 0
			f.Major++
		}
	}
	return out, nil
}
