package rearrange

import (
	"testing"
	"testing/quick"

	"repro/internal/area"
	"repro/internal/fabric"
)

// fragmentedManager builds the motivating scenario: total free space is
// ample but no contiguous 4x4 region exists.
func fragmentedManager() *area.Manager {
	m := area.NewManager(8, 8)
	// Scatter 2x2 tasks on a diagonal-ish pattern.
	m.AllocateAt(fabric.Rect{Row: 0, Col: 3, H: 2, W: 2})
	m.AllocateAt(fabric.Rect{Row: 3, Col: 0, H: 2, W: 2})
	m.AllocateAt(fabric.Rect{Row: 3, Col: 6, H: 2, W: 2})
	m.AllocateAt(fabric.Rect{Row: 6, Col: 3, H: 2, W: 2})
	m.AllocateAt(fabric.Rect{Row: 3, Col: 3, H: 2, W: 2})
	return m
}

func TestNonePlannerOnlyWhenFits(t *testing.T) {
	m := fragmentedManager()
	if m.CanFit(5, 5) {
		t.Fatal("setup: 5x5 should not fit")
	}
	if _, ok := (None{}).Plan(m, 5, 5); ok {
		t.Error("None planner invented space")
	}
	if plan, ok := (None{}).Plan(m, 2, 2); !ok || len(plan.Steps) != 0 {
		t.Error("None planner failed a trivially fitting request")
	}
}

func verifyPlan(t *testing.T, m *area.Manager, plan *Plan, h, w int) {
	t.Helper()
	clone := m.Clone()
	if err := Execute(clone, plan); err != nil {
		t.Fatalf("plan not executable in order: %v", err)
	}
	// The target must now be allocatable.
	if _, err := clone.AllocateAt(plan.Target); err != nil {
		t.Fatalf("target %v not free after plan: %v", plan.Target, err)
	}
	if plan.Target.H != h || plan.Target.W != w {
		t.Fatalf("target %v is not %dx%d", plan.Target, h, w)
	}
}

func TestOrderedCompactionOpensSpace(t *testing.T) {
	m := fragmentedManager()
	if m.CanFit(5, 5) {
		t.Fatal("setup broken")
	}
	// Westward compaction preserves rows, so it can open wide regions in
	// the emptied east: request 3x5.
	if m.CanFit(3, 5) {
		t.Fatal("setup: 3x5 should not fit before compaction")
	}
	plan, ok := (OrderedCompaction{}).Plan(m, 3, 5)
	if !ok {
		t.Fatal("compaction found no plan")
	}
	if len(plan.Steps) == 0 {
		t.Fatal("compaction plan has no moves but request did not fit")
	}
	verifyPlan(t, m, plan, 3, 5)
	if plan.CostCLBs <= 0 {
		t.Error("plan cost not accounted")
	}
	// The manager itself must be untouched by planning.
	if m.CanFit(3, 5) {
		t.Error("planning mutated the manager")
	}
}

func TestLocalRepackingOpensSpace(t *testing.T) {
	m := fragmentedManager()
	plan, ok := (LocalRepacking{}).Plan(m, 5, 5)
	if !ok {
		t.Fatal("local repacking found no plan")
	}
	verifyPlan(t, m, plan, 5, 5)
}

func TestLocalRepackingMinimisesCost(t *testing.T) {
	// One small task blocks an otherwise free corner; repacking should
	// move just that one.
	m := area.NewManager(8, 8)
	m.AllocateAt(fabric.Rect{Row: 1, Col: 1, H: 1, W: 1})
	m.AllocateAt(fabric.Rect{Row: 4, Col: 4, H: 4, W: 4}) // big anchor
	plan, ok := (LocalRepacking{}).Plan(m, 4, 4)
	if !ok {
		t.Fatal("no plan")
	}
	if len(plan.Steps) > 1 {
		t.Errorf("moved %d tasks, expected at most 1", len(plan.Steps))
	}
	if plan.CostCLBs > 1 {
		t.Errorf("cost = %d, expected 1", plan.CostCLBs)
	}
	verifyPlan(t, m, plan, 4, 4)
}

func TestPlannersOnImpossibleRequest(t *testing.T) {
	m := area.NewManager(4, 4)
	m.AllocateAt(fabric.Rect{Row: 0, Col: 0, H: 4, W: 3})
	for _, p := range []Planner{None{}, OrderedCompaction{}, LocalRepacking{}} {
		if _, ok := p.Plan(m, 4, 4); ok {
			t.Errorf("%s invented space for an impossible request", p.Name())
		}
	}
}

func TestCompactionPreservesAllTasks(t *testing.T) {
	m := fragmentedManager()
	before := len(m.Allocations())
	plan, ok := (OrderedCompaction{}).Plan(m, 3, 5)
	if !ok {
		t.Fatal("no plan")
	}
	clone := m.Clone()
	if err := Execute(clone, plan); err != nil {
		t.Fatal(err)
	}
	if len(clone.Allocations()) != before {
		t.Error("tasks lost during compaction")
	}
	if clone.FreeCLBs() != m.FreeCLBs() {
		t.Error("free area changed by moving tasks")
	}
}

func TestPlansAreExecutableProperty(t *testing.T) {
	// Property: for random layouts, any returned plan executes in order
	// and frees the target.
	f := func(seed uint32) bool {
		m := area.NewManager(8, 8)
		s := uint64(seed)*0x9E3779B97F4A7C15 + 1
		for i := 0; i < 7; i++ {
			s = s*6364136223846793005 + 1442695040888963407
			h := 1 + int(s>>40)%3
			w := 1 + int(s>>50)%3
			m.Allocate(h, w, area.Policy(int(s>>60)%3))
		}
		for _, p := range []Planner{OrderedCompaction{}, LocalRepacking{}} {
			plan, ok := p.Plan(m, 3, 3)
			if !ok {
				continue
			}
			clone := m.Clone()
			if Execute(clone, plan) != nil {
				return false
			}
			if _, err := clone.AllocateAt(plan.Target); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestRearrangementBeatsNone(t *testing.T) {
	// The paper's pitch: rearrangement increases the rate at which waiting
	// functions are allocated. Measure success over a series of tight
	// requests.
	served := func(p Planner) int {
		m := fragmentedManager()
		count := 0
		for _, req := range [][2]int{{4, 4}, {2, 6}, {5, 2}} {
			plan, ok := p.Plan(m, req[0], req[1])
			if !ok {
				continue
			}
			if Execute(m, plan) != nil {
				continue
			}
			if _, err := m.AllocateAt(plan.Target); err == nil {
				count++
			}
		}
		return count
	}
	none := served(None{})
	comp := served(OrderedCompaction{})
	if comp <= none {
		t.Errorf("compaction served %d, none served %d — rearrangement should win", comp, none)
	}
}
