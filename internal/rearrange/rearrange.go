// Package rearrange plans partial rearrangements of running tasks to open a
// contiguous region for an incoming function. The planners follow the
// methods of Diessel et al. (the paper's reference [5]) — local repacking
// and ordered compaction — whose physical execution is exactly what the
// relocation engine provides without halting the moved tasks.
package rearrange

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/area"
	"repro/internal/fabric"
)

// Step moves one running task to a new rectangle.
type Step struct {
	ID   int
	From fabric.Rect
	To   fabric.Rect
}

// Plan is an ordered, feasible sequence of task moves after which an H x W
// region is free.
type Plan struct {
	Steps []Step
	// Target is the rectangle freed for the incoming task.
	Target fabric.Rect
	// CostCLBs is the total CLB count relocated (the paper's relocation
	// cost unit: each CLB move costs ~tens of ms of reconfiguration).
	CostCLBs int
}

// Planner proposes rearrangement plans.
type Planner interface {
	Name() string
	// Plan returns a feasible plan freeing an h x w region, or ok=false.
	// The manager is not modified.
	Plan(m *area.Manager, h, w int) (*Plan, bool)
}

// None is the no-rearrangement baseline.
type None struct{}

// Name implements Planner.
func (None) Name() string { return "none" }

// Plan implements Planner: it only succeeds if the region already fits.
func (None) Plan(m *area.Manager, h, w int) (*Plan, bool) {
	if rect, ok := m.FindPlacement(h, w, area.FirstFit); ok {
		return &Plan{Target: rect}, true
	}
	return nil, false
}

// OrderedCompaction slides every task as far west as it can go, in
// left-edge order, then checks whether the request fits. Task order along
// the horizontal axis is preserved (Diessel's ordered compaction).
type OrderedCompaction struct{}

// Name implements Planner.
func (OrderedCompaction) Name() string { return "ordered-compaction" }

// Plan implements Planner.
func (OrderedCompaction) Plan(m *area.Manager, h, w int) (*Plan, bool) {
	if rect, ok := m.FindPlacement(h, w, area.FirstFit); ok {
		return &Plan{Target: rect}, true
	}
	clone := m.Clone()
	ids := clone.Allocations()
	sort.Slice(ids, func(a, b int) bool {
		ra, _ := clone.Rect(ids[a])
		rb, _ := clone.Rect(ids[b])
		if ra.Col != rb.Col {
			return ra.Col < rb.Col
		}
		return ra.Row < rb.Row
	})
	plan := &Plan{}
	for _, id := range ids {
		rect, _ := clone.Rect(id)
		best := rect
		for c := 0; c < rect.Col; c++ {
			cand := fabric.Rect{Row: rect.Row, Col: c, H: rect.H, W: rect.W}
			// Sliding left may overlap the task's own cells; test on a
			// scratch copy with the task removed.
			scratch := clone.Clone()
			scratch.Free(id)
			if _, err := scratch.AllocateAt(cand); err == nil {
				best = cand
				break
			}
		}
		if best != rect {
			if err := clone.Move(id, best); err != nil {
				continue
			}
			plan.Steps = append(plan.Steps, Step{ID: id, From: rect, To: best})
			plan.CostCLBs += rect.Area()
		}
	}
	rect, ok := clone.FindPlacement(h, w, area.FirstFit)
	if !ok {
		return nil, false
	}
	plan.Target = rect
	return plan, true
}

// LocalRepacking frees a candidate window by moving only the tasks that
// overlap it, choosing the window whose eviction cost is minimal (Diessel's
// local repacking).
type LocalRepacking struct{}

// Name implements Planner.
func (LocalRepacking) Name() string { return "local-repacking" }

// Plan implements Planner.
func (LocalRepacking) Plan(m *area.Manager, h, w int) (*Plan, bool) {
	plans := repackPlans(m, h, w, 1)
	if len(plans) == 0 {
		return nil, false
	}
	return plans[0], true
}

// Plans returns feasible repacking plans in eviction-cost order, at most
// one per distinct evicted-task set. A run-time manager executing plans on
// a real fabric uses the alternatives as fallbacks: a plan that is sound in
// the book-keeping can still fail physically (routing congestion at the
// chosen targets), and the next candidate evicts different tasks.
func (LocalRepacking) Plans(m *area.Manager, h, w int) []*Plan {
	return repackPlans(m, h, w, 0)
}

func repackPlans(m *area.Manager, h, w, limit int) []*Plan {
	if rect, ok := m.FindPlacement(h, w, area.FirstFit); ok {
		return []*Plan{{Target: rect}}
	}
	type cand struct {
		window fabric.Rect
		cost   int
	}
	var cands []cand
	for r := 0; r+h <= m.Rows; r++ {
		for c := 0; c+w <= m.Cols; c++ {
			window := fabric.Rect{Row: r, Col: c, H: h, W: w}
			cost := 0
			feasiblySmall := true
			seen := map[int]bool{}
			for _, cc := range window.Coords() {
				id := m.OwnerAt(cc)
				if id == 0 || seen[id] {
					continue
				}
				seen[id] = true
				rect, _ := m.Rect(id)
				cost += rect.Area()
				if rect.Area() >= h*w*2 {
					feasiblySmall = false // evicting giants is hopeless
				}
			}
			if feasiblySmall {
				cands = append(cands, cand{window, cost})
			}
		}
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].cost != cands[b].cost {
			return cands[a].cost < cands[b].cost
		}
		if cands[a].window.Row != cands[b].window.Row {
			return cands[a].window.Row < cands[b].window.Row
		}
		return cands[a].window.Col < cands[b].window.Col
	})
	var plans []*Plan
	seenSets := map[string]bool{}
	for _, cd := range cands {
		plan, ok := tryEvict(m, cd.window)
		if !ok {
			continue
		}
		key := evictKey(plan)
		if seenSets[key] {
			continue
		}
		seenSets[key] = true
		plans = append(plans, plan)
		if limit > 0 && len(plans) >= limit {
			break
		}
	}
	return plans
}

// evictKey identifies the set of tasks a plan moves.
func evictKey(p *Plan) string {
	ids := make([]int, 0, len(p.Steps))
	for _, s := range p.Steps {
		ids = append(ids, s.ID)
	}
	sort.Ints(ids)
	var b strings.Builder
	for _, id := range ids {
		fmt.Fprintf(&b, "%d,", id)
	}
	return b.String()
}

// tryEvict plans moves for every task overlapping the window to somewhere
// outside it, simulating the moves IN EXECUTION ORDER so the plan is
// feasible step by step on the live device.
func tryEvict(m *area.Manager, window fabric.Rect) (*Plan, bool) {
	clone := m.Clone()
	// Identify overlapping tasks, biggest first (hardest to re-place).
	var ids []int
	seen := map[int]bool{}
	for _, c := range window.Coords() {
		if id := clone.OwnerAt(c); id != 0 && !seen[id] {
			seen[id] = true
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(a, b int) bool {
		ra, _ := clone.Rect(ids[a])
		rb, _ := clone.Rect(ids[b])
		if ra.Area() != rb.Area() {
			return ra.Area() > rb.Area()
		}
		return ids[a] < ids[b]
	})
	plan := &Plan{Target: window}
	for _, id := range ids {
		old, _ := clone.Rect(id)
		to, ok := findOutside(clone, id, old.H, old.W, window)
		if !ok {
			return nil, false
		}
		if err := clone.Move(id, to); err != nil {
			return nil, false
		}
		plan.Steps = append(plan.Steps, Step{ID: id, From: old, To: to})
		plan.CostCLBs += old.Area()
	}
	// After the ordered moves the window must be completely free.
	for _, c := range window.Coords() {
		if clone.Occupied(c) {
			return nil, false
		}
	}
	return plan, true
}

// findOutside finds a free H x W rectangle not overlapping the window and
// not overlapping any cell of other tasks (the moving task's own cells do
// not count, but targets overlapping its old position are rejected to keep
// the physical staged move simple).
func findOutside(m *area.Manager, id, h, w int, window fabric.Rect) (fabric.Rect, bool) {
	old, _ := m.Rect(id)
	best := fabric.Rect{}
	bestScore := math.MaxInt
	for r := 0; r+h <= m.Rows; r++ {
		for c := 0; c+w <= m.Cols; c++ {
			rect := fabric.Rect{Row: r, Col: c, H: h, W: w}
			if rect.Overlaps(window) {
				continue
			}
			free := true
			for _, cc := range rect.Coords() {
				if owner := m.OwnerAt(cc); owner != 0 {
					free = false
					break
				}
			}
			if !free {
				continue
			}
			// Prefer the position nearest the task's current rectangle:
			// the smallest displacement means the smallest path-delay
			// increase during the relocation interval (the paper's reason
			// for staging long moves) and the best odds that the live
			// engine can re-route the task's nets at the target.
			score := abs(rect.Row-old.Row) + abs(rect.Col-old.Col)
			if score < bestScore {
				bestScore, best = score, rect
			}
		}
	}
	return best, bestScore < math.MaxInt
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Compact plans a full defragmentation: every task slides as far west, then
// as far north, as the space allows, in repeated passes until the layout is
// stable. Unlike the Planner methods, Compact is not driven by a single
// incoming request — it consolidates ALL free space, which is what the
// run-time manager's periodic defragmentation wants. The returned plan's
// Target is the largest free rectangle after compaction.
func Compact(m *area.Manager) *Plan {
	clone := m.Clone()
	plan := &Plan{}
	slide := func(id int, westFirst bool) bool {
		rect, _ := clone.Rect(id)
		best := rect
		if westFirst {
			for c := 0; c < rect.Col; c++ {
				cand := fabric.Rect{Row: rect.Row, Col: c, H: rect.H, W: rect.W}
				if clone.CanMove(id, cand) {
					best = cand
					break
				}
			}
		} else {
			for r := 0; r < rect.Row; r++ {
				cand := fabric.Rect{Row: r, Col: rect.Col, H: rect.H, W: rect.W}
				if clone.CanMove(id, cand) {
					best = cand
					break
				}
			}
		}
		if best == rect {
			return false
		}
		if err := clone.Move(id, best); err != nil {
			return false
		}
		plan.Steps = append(plan.Steps, Step{ID: id, From: rect, To: best})
		plan.CostCLBs += rect.Area()
		return true
	}
	sortedIDs := func(byCol bool) []int {
		ids := clone.Allocations()
		sort.Slice(ids, func(a, b int) bool {
			ra, _ := clone.Rect(ids[a])
			rb, _ := clone.Rect(ids[b])
			if byCol {
				if ra.Col != rb.Col {
					return ra.Col < rb.Col
				}
				return ra.Row < rb.Row
			}
			if ra.Row != rb.Row {
				return ra.Row < rb.Row
			}
			return ra.Col < rb.Col
		})
		return ids
	}
	for pass := 0; pass < 4; pass++ {
		moved := false
		for _, id := range sortedIDs(true) {
			moved = slide(id, true) || moved
		}
		for _, id := range sortedIDs(false) {
			moved = slide(id, false) || moved
		}
		if !moved {
			break
		}
	}
	plan.Target = clone.MaxFreeRect()
	return plan
}

// Execute applies a plan's moves to a manager (book-keeping only; physical
// execution is the relocation engine's job).
func Execute(m *area.Manager, p *Plan) error {
	for _, s := range p.Steps {
		if err := m.Move(s.ID, s.To); err != nil {
			return err
		}
	}
	return nil
}
