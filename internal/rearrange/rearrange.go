// Package rearrange plans partial rearrangements of running tasks to open a
// contiguous region for an incoming function. The planners follow the
// methods of Diessel et al. (the paper's reference [5]) — local repacking
// and ordered compaction — whose physical execution is exactly what the
// relocation engine provides without halting the moved tasks.
package rearrange

import (
	"sort"

	"repro/internal/area"
	"repro/internal/fabric"
)

// Step moves one running task to a new rectangle.
type Step struct {
	ID   int
	From fabric.Rect
	To   fabric.Rect
}

// Plan is an ordered, feasible sequence of task moves after which an H x W
// region is free.
type Plan struct {
	Steps []Step
	// Target is the rectangle freed for the incoming task.
	Target fabric.Rect
	// CostCLBs is the total CLB count relocated (the paper's relocation
	// cost unit: each CLB move costs ~tens of ms of reconfiguration).
	CostCLBs int
}

// Planner proposes rearrangement plans.
type Planner interface {
	Name() string
	// Plan returns a feasible plan freeing an h x w region, or ok=false.
	// The manager is not modified.
	Plan(m *area.Manager, h, w int) (*Plan, bool)
}

// None is the no-rearrangement baseline.
type None struct{}

// Name implements Planner.
func (None) Name() string { return "none" }

// Plan implements Planner: it only succeeds if the region already fits.
func (None) Plan(m *area.Manager, h, w int) (*Plan, bool) {
	if rect, ok := m.FindPlacement(h, w, area.FirstFit); ok {
		return &Plan{Target: rect}, true
	}
	return nil, false
}

// OrderedCompaction slides every task as far west as it can go, in
// left-edge order, then checks whether the request fits. Task order along
// the horizontal axis is preserved (Diessel's ordered compaction).
type OrderedCompaction struct{}

// Name implements Planner.
func (OrderedCompaction) Name() string { return "ordered-compaction" }

// Plan implements Planner.
func (OrderedCompaction) Plan(m *area.Manager, h, w int) (*Plan, bool) {
	if rect, ok := m.FindPlacement(h, w, area.FirstFit); ok {
		return &Plan{Target: rect}, true
	}
	clone := m.Clone()
	ids := clone.Allocations()
	sort.Slice(ids, func(a, b int) bool {
		ra, _ := clone.Rect(ids[a])
		rb, _ := clone.Rect(ids[b])
		if ra.Col != rb.Col {
			return ra.Col < rb.Col
		}
		return ra.Row < rb.Row
	})
	plan := &Plan{}
	for _, id := range ids {
		rect, _ := clone.Rect(id)
		best := rect
		for c := 0; c < rect.Col; c++ {
			cand := fabric.Rect{Row: rect.Row, Col: c, H: rect.H, W: rect.W}
			// Sliding left may overlap the task's own cells; test on a
			// scratch copy with the task removed.
			scratch := clone.Clone()
			scratch.Free(id)
			if _, err := scratch.AllocateAt(cand); err == nil {
				best = cand
				break
			}
		}
		if best != rect {
			if err := clone.Move(id, best); err != nil {
				continue
			}
			plan.Steps = append(plan.Steps, Step{ID: id, From: rect, To: best})
			plan.CostCLBs += rect.Area()
		}
	}
	rect, ok := clone.FindPlacement(h, w, area.FirstFit)
	if !ok {
		return nil, false
	}
	plan.Target = rect
	return plan, true
}

// LocalRepacking frees a candidate window by moving only the tasks that
// overlap it, choosing the window whose eviction cost is minimal (Diessel's
// local repacking).
type LocalRepacking struct{}

// Name implements Planner.
func (LocalRepacking) Name() string { return "local-repacking" }

// Plan implements Planner.
func (LocalRepacking) Plan(m *area.Manager, h, w int) (*Plan, bool) {
	if rect, ok := m.FindPlacement(h, w, area.FirstFit); ok {
		return &Plan{Target: rect}, true
	}
	type cand struct {
		window fabric.Rect
		cost   int
	}
	var cands []cand
	for r := 0; r+h <= m.Rows; r++ {
		for c := 0; c+w <= m.Cols; c++ {
			window := fabric.Rect{Row: r, Col: c, H: h, W: w}
			cost := 0
			feasiblySmall := true
			seen := map[int]bool{}
			for _, cc := range window.Coords() {
				id := m.OwnerAt(cc)
				if id == 0 || seen[id] {
					continue
				}
				seen[id] = true
				rect, _ := m.Rect(id)
				cost += rect.Area()
				if rect.Area() >= h*w*2 {
					feasiblySmall = false // evicting giants is hopeless
				}
			}
			if feasiblySmall {
				cands = append(cands, cand{window, cost})
			}
		}
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].cost != cands[b].cost {
			return cands[a].cost < cands[b].cost
		}
		if cands[a].window.Row != cands[b].window.Row {
			return cands[a].window.Row < cands[b].window.Row
		}
		return cands[a].window.Col < cands[b].window.Col
	})
	for _, cd := range cands {
		if plan, ok := tryEvict(m, cd.window); ok {
			return plan, true
		}
	}
	return nil, false
}

// tryEvict plans moves for every task overlapping the window to somewhere
// outside it, simulating the moves IN EXECUTION ORDER so the plan is
// feasible step by step on the live device.
func tryEvict(m *area.Manager, window fabric.Rect) (*Plan, bool) {
	clone := m.Clone()
	// Identify overlapping tasks, biggest first (hardest to re-place).
	var ids []int
	seen := map[int]bool{}
	for _, c := range window.Coords() {
		if id := clone.OwnerAt(c); id != 0 && !seen[id] {
			seen[id] = true
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(a, b int) bool {
		ra, _ := clone.Rect(ids[a])
		rb, _ := clone.Rect(ids[b])
		if ra.Area() != rb.Area() {
			return ra.Area() > rb.Area()
		}
		return ids[a] < ids[b]
	})
	plan := &Plan{Target: window}
	for _, id := range ids {
		old, _ := clone.Rect(id)
		to, ok := findOutside(clone, id, old.H, old.W, window)
		if !ok {
			return nil, false
		}
		if err := clone.Move(id, to); err != nil {
			return nil, false
		}
		plan.Steps = append(plan.Steps, Step{ID: id, From: old, To: to})
		plan.CostCLBs += old.Area()
	}
	// After the ordered moves the window must be completely free.
	for _, c := range window.Coords() {
		if clone.Occupied(c) {
			return nil, false
		}
	}
	return plan, true
}

// findOutside finds a free H x W rectangle not overlapping the window and
// not overlapping any cell of other tasks (the moving task's own cells do
// not count, but targets overlapping its old position are rejected to keep
// the physical staged move simple).
func findOutside(m *area.Manager, id, h, w int, window fabric.Rect) (fabric.Rect, bool) {
	best := fabric.Rect{}
	bestScore := -1
	for r := 0; r+h <= m.Rows; r++ {
		for c := 0; c+w <= m.Cols; c++ {
			rect := fabric.Rect{Row: r, Col: c, H: h, W: w}
			if rect.Overlaps(window) {
				continue
			}
			free := true
			for _, cc := range rect.Coords() {
				if owner := m.OwnerAt(cc); owner != 0 {
					free = false
					break
				}
			}
			if !free {
				continue
			}
			// Prefer positions far from the window (keeps the corridor
			// clear) — score by Manhattan distance of centres.
			score := abs(rect.Row-window.Row) + abs(rect.Col-window.Col)
			if score > bestScore {
				bestScore, best = score, rect
			}
		}
	}
	_ = id
	return best, bestScore >= 0
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Execute applies a plan's moves to a manager (book-keeping only; physical
// execution is the relocation engine's job).
func Execute(m *area.Manager, p *Plan) error {
	for _, s := range p.Steps {
		if err := m.Move(s.ID, s.To); err != nil {
			return err
		}
	}
	return nil
}
