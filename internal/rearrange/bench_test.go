package rearrange

import (
	"testing"

	"repro/internal/area"
)

func benchGrid() *area.Manager {
	m := area.NewManager(28, 42)
	s := uint64(9)
	for i := 0; i < 50; i++ {
		s = s*6364136223846793005 + 1442695040888963407
		h := 2 + int(s>>40)%4
		w := 2 + int(s>>50)%4
		m.Allocate(h, w, area.Policy(int(s>>60)%3))
	}
	return m
}

func BenchmarkOrderedCompactionPlan(b *testing.B) {
	m := benchGrid()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		OrderedCompaction{}.Plan(m, 10, 12)
	}
}

func BenchmarkLocalRepackingPlan(b *testing.B) {
	m := benchGrid()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		LocalRepacking{}.Plan(m, 10, 12)
	}
}
