// Package area manages the FPGA logic space as a 2D grid of CLBs: it tracks
// occupancy per task, finds placements under several allocation policies,
// and measures fragmentation — the quantity the paper's on-line
// rearrangement exists to fight ("unallocated areas tend to become so small
// that they fail to satisfy any request and for that reason remain unused,
// leading to a fragmentation of the FPGA logic space").
package area

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/fabric"
)

// Policy selects the placement heuristic.
type Policy uint8

const (
	// FirstFit takes the first feasible position in row-major order.
	FirstFit Policy = iota
	// BestFit takes the feasible position with the highest contact
	// perimeter against occupied cells and device borders (tightest
	// packing).
	BestFit
	// BottomLeft takes the feasible position with the largest row, then
	// the smallest column (classic BL packing).
	BottomLeft
)

var policyNames = [...]string{"first-fit", "best-fit", "bottom-left"}

func (p Policy) String() string { return policyNames[p] }

// Manager tracks allocations on an R x C CLB grid.
//
// Mutations can be bracketed by Mark/Rewind/Release epochs: while any mark
// is outstanding the manager appends inverse records to an undo log, so a
// checkpoint costs O(1) and a rollback costs O(mutations since the mark) —
// the run-time manager's per-operation checkpoints no longer clone the grid.
// A quarantine mask (lazily allocated) marks CLBs whose configuration
// frames failed persistently: quarantined cells are never free for
// placement, shrink the reported capacity, and — unlike occupancy — are
// permanent: Rewind, Restore and Free never lift a quarantine.
type Manager struct {
	Rows, Cols int
	occ        []int // 0 = free, else allocation id
	allocs     map[int]fabric.Rect
	next       int
	quar       []bool // nil until the first Quarantine call

	undo  []undoRec
	marks int // outstanding Mark count; the log records only while > 0
}

// undoRec is one inverse mutation on the undo log.
type undoRec struct {
	kind undoKind
	id   int
	rect fabric.Rect // alloc/free: the allocation's rect; move: the FROM rect
}

type undoKind uint8

const (
	undoAlloc undoKind = iota // commit() happened: remove the allocation
	undoFree                  // Free() happened: reinstate the allocation
	undoMove                  // Move() happened: move back to rect
)

// Mark opens an undo epoch at the current log position. Every Mark must be
// paired with exactly one Release; Rewind may be called any number of times
// in between (the mark stays armed, backing retry loops).
func (m *Manager) Mark() Mark {
	m.marks++
	return Mark{pos: len(m.undo)}
}

// Mark is a position on the manager's undo log.
type Mark struct{ pos int }

// Rewind undoes every mutation since the mark, in reverse order, and
// truncates the log back to it. The mark stays armed.
func (m *Manager) Rewind(mk Mark) {
	for len(m.undo) > mk.pos {
		rec := m.undo[len(m.undo)-1]
		m.undo = m.undo[:len(m.undo)-1]
		switch rec.kind {
		case undoAlloc:
			m.fill(rec.rect, 0)
			delete(m.allocs, rec.id)
			m.next = rec.id // ids stay deterministic across retries
		case undoFree:
			m.allocs[rec.id] = rec.rect
			m.fill(rec.rect, rec.id)
		case undoMove:
			m.fill(m.allocs[rec.id], 0)
			m.fill(rec.rect, rec.id)
			m.allocs[rec.id] = rec.rect
		}
	}
}

// Release closes one epoch; when the last outstanding mark is released the
// undo log is dropped and recording stops.
func (m *Manager) Release(Mark) {
	if m.marks > 0 {
		m.marks--
	}
	if m.marks == 0 {
		m.undo = m.undo[:0]
	}
}

// record appends an inverse record while any epoch is open.
func (m *Manager) record(kind undoKind, id int, rect fabric.Rect) {
	if m.marks > 0 {
		m.undo = append(m.undo, undoRec{kind: kind, id: id, rect: rect})
	}
}

// fill paints a rectangle of the occupancy grid with an allocation id.
func (m *Manager) fill(rect fabric.Rect, id int) {
	for r := rect.Row; r < rect.Row+rect.H; r++ {
		for c := rect.Col; c < rect.Col+rect.W; c++ {
			m.occ[m.idx(r, c)] = id
		}
	}
}

// NewManager creates an empty grid.
func NewManager(rows, cols int) *Manager {
	return &Manager{
		Rows:   rows,
		Cols:   cols,
		occ:    make([]int, rows*cols),
		allocs: map[int]fabric.Rect{},
		next:   1,
	}
}

// NewManagerFor sizes the grid to a device.
func NewManagerFor(dev *fabric.Device) *Manager { return NewManager(dev.Rows, dev.Cols) }

func (m *Manager) idx(r, c int) int { return r*m.Cols + c }

// blocked reports whether a CLB is quarantined (masked out of the logic
// space).
func (m *Manager) blocked(r, c int) bool { return m.quar != nil && m.quar[m.idx(r, c)] }

// Quarantine masks a rectangle of CLBs out of the logic space: the cells
// stop counting as free capacity and no placement, allocation or move may
// cover them. Cells currently under an allocation stay attributed to it
// until the owner moves or frees — the caller evacuates residents. The mask
// is deliberately outside the undo log: Rewind, Restore and Free never lift
// it; only an explicit Unquarantine (the caller's probe/release cycle)
// returns capacity to service.
func (m *Manager) Quarantine(rect fabric.Rect) {
	if m.quar == nil {
		m.quar = make([]bool, m.Rows*m.Cols)
	}
	for r := rect.Row; r < rect.Row+rect.H; r++ {
		for c := rect.Col; c < rect.Col+rect.W; c++ {
			if r >= 0 && r < m.Rows && c >= 0 && c < m.Cols {
				m.quar[m.idx(r, c)] = true
			}
		}
	}
}

// Unquarantine lifts the quarantine mask from a rectangle of CLBs,
// returning the cells to free capacity. The caller (the facade's health
// lifecycle) has re-verified the underlying configuration memory; like
// Quarantine, this is outside the undo log and survives Rewind/Restore.
func (m *Manager) Unquarantine(rect fabric.Rect) {
	if m.quar == nil {
		return
	}
	for r := rect.Row; r < rect.Row+rect.H; r++ {
		for c := rect.Col; c < rect.Col+rect.W; c++ {
			if r >= 0 && r < m.Rows && c >= 0 && c < m.Cols {
				m.quar[m.idx(r, c)] = false
			}
		}
	}
}

// Quarantined reports whether a CLB is masked out of the logic space.
func (m *Manager) Quarantined(c fabric.Coord) bool { return m.blocked(c.Row, c.Col) }

// QuarantineOverlaps reports whether any cell of rect is quarantined (used
// to distinguish "region busy" from "region condemned" in error reporting).
func (m *Manager) QuarantineOverlaps(rect fabric.Rect) bool {
	if m.quar == nil {
		return false
	}
	for r := rect.Row; r < rect.Row+rect.H; r++ {
		for c := rect.Col; c < rect.Col+rect.W; c++ {
			if r >= 0 && r < m.Rows && c >= 0 && c < m.Cols && m.quar[m.idx(r, c)] {
				return true
			}
		}
	}
	return false
}

// QuarantinedCLBs returns the number of CLBs masked out of the logic space.
func (m *Manager) QuarantinedCLBs() int {
	n := 0
	for _, q := range m.quar {
		if q {
			n++
		}
	}
	return n
}

// Occupied reports whether a CLB is allocated.
func (m *Manager) Occupied(c fabric.Coord) bool {
	return m.occ[m.idx(c.Row, c.Col)] != 0
}

// OwnerAt returns the allocation id covering a CLB (0 = free).
func (m *Manager) OwnerAt(c fabric.Coord) int { return m.occ[m.idx(c.Row, c.Col)] }

// Rect returns the rectangle of an allocation.
func (m *Manager) Rect(id int) (fabric.Rect, bool) {
	r, ok := m.allocs[id]
	return r, ok
}

// Allocations returns the live allocation ids.
func (m *Manager) Allocations() []int {
	out := make([]int, 0, len(m.allocs))
	for id := range m.allocs {
		out = append(out, id)
	}
	return out
}

// FreeCLBs returns the number of CLBs available for placement: unallocated
// and not quarantined (quarantine degrades capacity, so utilisation and
// fragmentation measure the remaining usable space).
func (m *Manager) FreeCLBs() int {
	n := 0
	for i, v := range m.occ {
		if v == 0 && !(m.quar != nil && m.quar[i]) {
			n++
		}
	}
	return n
}

// fits reports whether rect is in bounds, fully free, and clear of the
// quarantine mask.
func (m *Manager) fits(rect fabric.Rect) bool {
	if rect.Row < 0 || rect.Col < 0 || rect.Row+rect.H > m.Rows || rect.Col+rect.W > m.Cols {
		return false
	}
	for r := rect.Row; r < rect.Row+rect.H; r++ {
		for c := rect.Col; c < rect.Col+rect.W; c++ {
			if m.occ[m.idx(r, c)] != 0 || m.blocked(r, c) {
				return false
			}
		}
	}
	return true
}

// Fits reports whether rect is in bounds and completely free.
func (m *Manager) Fits(rect fabric.Rect) bool { return m.fits(rect) }

// CanMove reports whether an allocation could move to a new rectangle right
// now (the target may overlap the allocation's own cells, as in a staged
// relocation through adjacent space). The manager is not modified — and
// nothing is cloned: the target only needs every covered CLB to be free or
// owned by the moving allocation itself.
func (m *Manager) CanMove(id int, to fabric.Rect) bool {
	rect, ok := m.allocs[id]
	if !ok {
		return false
	}
	if to.H != rect.H || to.W != rect.W {
		return false
	}
	if to.Row < 0 || to.Col < 0 || to.Row+to.H > m.Rows || to.Col+to.W > m.Cols {
		return false
	}
	for r := to.Row; r < to.Row+to.H; r++ {
		for c := to.Col; c < to.Col+to.W; c++ {
			if owner := m.occ[m.idx(r, c)]; owner != 0 && owner != id {
				return false
			}
			if m.blocked(r, c) {
				return false
			}
		}
	}
	return true
}

// FindPlacement searches for a feasible H x W rectangle under the policy
// without committing it.
func (m *Manager) FindPlacement(h, w int, policy Policy) (fabric.Rect, bool) {
	best := fabric.Rect{}
	found := false
	bestScore := math.MinInt
	for r := 0; r+h <= m.Rows; r++ {
		for c := 0; c+w <= m.Cols; c++ {
			rect := fabric.Rect{Row: r, Col: c, H: h, W: w}
			if !m.fits(rect) {
				continue
			}
			switch policy {
			case FirstFit:
				return rect, true
			case BottomLeft:
				score := r*m.Cols + (m.Cols - c)
				if score > bestScore {
					bestScore, best, found = score, rect, true
				}
			case BestFit:
				score := m.contact(rect)
				if score > bestScore {
					bestScore, best, found = score, rect, true
				}
			}
		}
	}
	return best, found
}

// contact measures the rectangle's adjacency to occupied cells and borders.
func (m *Manager) contact(rect fabric.Rect) int {
	score := 0
	side := func(r, c int) {
		if r < 0 || r >= m.Rows || c < 0 || c >= m.Cols {
			score++ // device border counts
			return
		}
		if m.occ[m.idx(r, c)] != 0 || m.blocked(r, c) {
			score++
		}
	}
	for c := rect.Col; c < rect.Col+rect.W; c++ {
		side(rect.Row-1, c)
		side(rect.Row+rect.H, c)
	}
	for r := rect.Row; r < rect.Row+rect.H; r++ {
		side(r, rect.Col-1)
		side(r, rect.Col+rect.W)
	}
	return score
}

// Allocate finds and commits an H x W rectangle, returning its id.
func (m *Manager) Allocate(h, w int, policy Policy) (int, fabric.Rect, bool) {
	rect, ok := m.FindPlacement(h, w, policy)
	if !ok {
		return 0, fabric.Rect{}, false
	}
	id := m.commit(rect)
	return id, rect, true
}

// AllocateAt commits an explicit rectangle (must be free).
func (m *Manager) AllocateAt(rect fabric.Rect) (int, error) {
	if !m.fits(rect) {
		return 0, fmt.Errorf("area: rect %v not free", rect)
	}
	return m.commit(rect), nil
}

func (m *Manager) commit(rect fabric.Rect) int {
	id := m.next
	m.next++
	m.allocs[id] = rect
	m.fill(rect, id)
	m.record(undoAlloc, id, rect)
	return id
}

// Free releases an allocation.
func (m *Manager) Free(id int) error {
	rect, ok := m.allocs[id]
	if !ok {
		return fmt.Errorf("area: unknown allocation %d", id)
	}
	m.fill(rect, 0)
	delete(m.allocs, id)
	m.record(undoFree, id, rect)
	return nil
}

// Move reassigns an allocation to a new rectangle (the physical relocation
// is the engine's business; this updates the book-keeping).
func (m *Manager) Move(id int, to fabric.Rect) error {
	rect, ok := m.allocs[id]
	if !ok {
		return fmt.Errorf("area: unknown allocation %d", id)
	}
	// Clear, check, commit (the regions may overlap: staged relocation goes
	// through adjacent space).
	m.fill(rect, 0)
	if !m.fits(to) {
		m.fill(rect, id) // roll back
		return fmt.Errorf("area: move target %v not free", to)
	}
	m.fill(to, id)
	m.allocs[id] = to
	m.record(undoMove, id, rect)
	return nil
}

// MaxFreeRect returns the largest-area free rectangle (maximal-rectangle
// histogram algorithm, O(Rows*Cols)).
func (m *Manager) MaxFreeRect() fabric.Rect {
	heights := make([]int, m.Cols)
	best := fabric.Rect{}
	for r := 0; r < m.Rows; r++ {
		for c := 0; c < m.Cols; c++ {
			if m.occ[m.idx(r, c)] == 0 && !m.blocked(r, c) {
				heights[c]++
			} else {
				heights[c] = 0
			}
		}
		// Largest rectangle in histogram via stack.
		type entry struct{ col, h int }
		var stack []entry
		for c := 0; c <= m.Cols; c++ {
			h := 0
			if c < m.Cols {
				h = heights[c]
			}
			start := c
			for len(stack) > 0 && stack[len(stack)-1].h > h {
				top := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				area := top.h * (c - top.col)
				if area > best.Area() {
					best = fabric.Rect{Row: r - top.h + 1, Col: top.col, H: top.h, W: c - top.col}
				}
				start = top.col
			}
			if h > 0 && (len(stack) == 0 || stack[len(stack)-1].h < h) {
				stack = append(stack, entry{start, h})
			}
		}
	}
	return best
}

// Fragmentation is 1 - (largest free rectangle / total free area): 0 when
// all free space is one rectangle, approaching 1 as free space shatters.
func (m *Manager) Fragmentation() float64 {
	free := m.FreeCLBs()
	if free == 0 {
		return 0
	}
	return 1 - float64(m.MaxFreeRect().Area())/float64(free)
}

// CanFit reports whether an H x W task fits anywhere right now.
func (m *Manager) CanFit(h, w int) bool {
	_, ok := m.FindPlacement(h, w, FirstFit)
	return ok
}

// Utilisation is the fraction of CLBs allocated.
func (m *Manager) Utilisation() float64 {
	return 1 - float64(m.FreeCLBs())/float64(m.Rows*m.Cols)
}

// String renders the grid (for the tool's display; '.' free, 'x'
// quarantined, letters by id).
func (m *Manager) String() string {
	var b strings.Builder
	for r := 0; r < m.Rows; r++ {
		for c := 0; c < m.Cols; c++ {
			id := m.occ[m.idx(r, c)]
			switch {
			case id != 0:
				b.WriteByte(byte('A' + (id-1)%26))
			case m.blocked(r, c):
				b.WriteByte('x')
			default:
				b.WriteByte('.')
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CopyFrom overwrites this manager's state with src's, preserving the
// receiver's identity: holders of the pointer (schedulers, observers) see
// the restored state instead of silently diverging on an orphaned copy.
// The grids must have equal dimensions.
func (m *Manager) CopyFrom(src *Manager) {
	if m.Rows != src.Rows || m.Cols != src.Cols {
		panic(fmt.Sprintf("area: CopyFrom %dx%d into %dx%d", src.Rows, src.Cols, m.Rows, m.Cols))
	}
	if m.marks > 0 {
		// A wholesale overwrite cannot be expressed on the undo log; epochs
		// must be rewound or released first.
		panic("area: CopyFrom into a manager with outstanding marks")
	}
	copy(m.occ, src.occ)
	m.allocs = make(map[int]fabric.Rect, len(src.allocs))
	for id, r := range src.allocs {
		m.allocs[id] = r
	}
	m.next = src.next
	if src.quar != nil {
		m.quar = append([]bool{}, src.quar...)
	} else {
		m.quar = nil
	}
}

// Alloc is one allocation in an exported occupancy snapshot.
type Alloc struct {
	ID   int
	Rect fabric.Rect
}

// Export returns every live allocation (sorted by id) plus the next-id
// counter — the serialisable occupancy state the journal persists. Restoring
// the counter keeps allocation ids deterministic across a crash, which the
// rearrangement planners rely on.
func (m *Manager) Export() ([]Alloc, int) {
	out := make([]Alloc, 0, len(m.allocs))
	for id, r := range m.allocs {
		out = append(out, Alloc{ID: id, Rect: r})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, m.next
}

// Restore overwrites the manager with an exported occupancy state, in place
// (pointer holders see the restored state, as with CopyFrom). Overlapping or
// out-of-bounds allocations are rejected; like CopyFrom it must not be
// called with outstanding marks. The quarantine mask is not part of the
// exported state and survives a Restore untouched — the recovery path
// re-applies it from the journal's own quarantine record.
func (m *Manager) Restore(allocs []Alloc, next int) error {
	if m.marks > 0 {
		return fmt.Errorf("area: Restore into a manager with outstanding marks")
	}
	occ := make([]int, m.Rows*m.Cols)
	table := make(map[int]fabric.Rect, len(allocs))
	for _, a := range allocs {
		if a.ID <= 0 || a.ID >= next {
			return fmt.Errorf("area: restore allocation id %d outside [1,%d)", a.ID, next)
		}
		if _, dup := table[a.ID]; dup {
			return fmt.Errorf("area: restore duplicate allocation id %d", a.ID)
		}
		r := a.Rect
		if r.Row < 0 || r.Col < 0 || r.H <= 0 || r.W <= 0 || r.Row+r.H > m.Rows || r.Col+r.W > m.Cols {
			return fmt.Errorf("area: restore allocation %d rect %v out of bounds", a.ID, r)
		}
		for row := r.Row; row < r.Row+r.H; row++ {
			for col := r.Col; col < r.Col+r.W; col++ {
				if occ[row*m.Cols+col] != 0 {
					return fmt.Errorf("area: restore allocations %d and %d overlap", occ[row*m.Cols+col], a.ID)
				}
				occ[row*m.Cols+col] = a.ID
			}
		}
		table[a.ID] = r
	}
	m.occ = occ
	m.allocs = table
	m.next = next
	m.undo = m.undo[:0]
	return nil
}

// Clone returns an independent copy of the manager (planners simulate
// rearrangements on clones before committing to the fabric).
func (m *Manager) Clone() *Manager {
	cp := &Manager{
		Rows:   m.Rows,
		Cols:   m.Cols,
		occ:    append([]int{}, m.occ...),
		allocs: make(map[int]fabric.Rect, len(m.allocs)),
		next:   m.next,
	}
	for id, r := range m.allocs {
		cp.allocs[id] = r
	}
	if m.quar != nil {
		cp.quar = append([]bool{}, m.quar...)
	}
	return cp
}
