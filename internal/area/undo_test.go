package area

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/fabric"
)

func managersEqual(a, b *Manager) bool {
	return reflect.DeepEqual(a.occ, b.occ) && reflect.DeepEqual(a.allocs, b.allocs) && a.next == b.next
}

func TestMarkRewindRestoresEveryMutation(t *testing.T) {
	m := NewManager(8, 8)
	id1, _, _ := m.Allocate(2, 2, FirstFit)
	id2, _, _ := m.Allocate(3, 3, FirstFit)
	want := m.Clone()

	mk := m.Mark()
	if _, err := m.AllocateAt(fabric.Rect{Row: 5, Col: 5, H: 2, W: 2}); err != nil {
		t.Fatal(err)
	}
	if err := m.Move(id2, fabric.Rect{Row: 4, Col: 0, H: 3, W: 3}); err != nil {
		t.Fatal(err)
	}
	if err := m.Free(id1); err != nil {
		t.Fatal(err)
	}
	m.Rewind(mk)
	if !managersEqual(m, want) {
		t.Fatalf("rewind did not restore:\n%v\nwant:\n%v", m, want)
	}

	// The mark stays armed: mutate and rewind again (a retry loop).
	if err := m.Move(id1, fabric.Rect{Row: 6, Col: 0, H: 2, W: 2}); err != nil {
		t.Fatal(err)
	}
	m.Rewind(mk)
	if !managersEqual(m, want) {
		t.Fatal("second rewind to the same mark did not restore")
	}
	m.Release(mk)
	if len(m.undo) != 0 || m.marks != 0 {
		t.Fatalf("release left undo state: %d records, %d marks", len(m.undo), m.marks)
	}
}

func TestMarkIdsDeterministicAcrossRetries(t *testing.T) {
	m := NewManager(6, 6)
	mk := m.Mark()
	defer m.Release(mk)
	idA, _, _ := m.Allocate(2, 2, FirstFit)
	m.Rewind(mk)
	idB, _, _ := m.Allocate(2, 2, FirstFit)
	if idA != idB {
		t.Fatalf("allocation id changed across rewind: %d then %d", idA, idB)
	}
}

func TestNestedMarks(t *testing.T) {
	m := NewManager(8, 8)
	id, _, _ := m.Allocate(2, 2, FirstFit)
	outer := m.Mark()
	if err := m.Move(id, fabric.Rect{Row: 3, Col: 3, H: 2, W: 2}); err != nil {
		t.Fatal(err)
	}
	mid := m.Clone()
	inner := m.Mark()
	if err := m.Move(id, fabric.Rect{Row: 5, Col: 5, H: 2, W: 2}); err != nil {
		t.Fatal(err)
	}
	m.Rewind(inner)
	m.Release(inner)
	if !managersEqual(m, mid) {
		t.Fatal("inner rewind did not restore the mid state")
	}
	// The outer log survives the inner release.
	m.Rewind(outer)
	m.Release(outer)
	if r, _ := m.Rect(id); r != (fabric.Rect{Row: 0, Col: 0, H: 2, W: 2}) {
		t.Fatalf("outer rewind left allocation at %v", r)
	}
}

func TestRewindRandomisedAgainstClone(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		m := NewManager(10, 10)
		var ids []int
		for i := 0; i < 4; i++ {
			if id, _, ok := m.Allocate(1+rng.Intn(3), 1+rng.Intn(3), FirstFit); ok {
				ids = append(ids, id)
			}
		}
		want := m.Clone()
		mk := m.Mark()
		for op := 0; op < 12; op++ {
			switch rng.Intn(3) {
			case 0:
				if id, _, ok := m.Allocate(1+rng.Intn(3), 1+rng.Intn(3), BestFit); ok {
					ids = append(ids, id)
				}
			case 1:
				if len(ids) > 0 {
					id := ids[rng.Intn(len(ids))]
					if _, live := m.Rect(id); live {
						_ = m.Free(id)
					}
				}
			case 2:
				if len(ids) > 0 {
					id := ids[rng.Intn(len(ids))]
					if r, live := m.Rect(id); live {
						to := fabric.Rect{Row: rng.Intn(10), Col: rng.Intn(10), H: r.H, W: r.W}
						if m.CanMove(id, to) {
							_ = m.Move(id, to)
						}
					}
				}
			}
		}
		m.Rewind(mk)
		m.Release(mk)
		if !managersEqual(m, want) {
			t.Fatalf("trial %d: rewind diverged from clone baseline", trial)
		}
	}
}

func TestCanMoveAllowsOverlapWithoutClone(t *testing.T) {
	m := NewManager(6, 6)
	id, err := m.AllocateAt(fabric.Rect{Row: 0, Col: 0, H: 2, W: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !m.CanMove(id, fabric.Rect{Row: 1, Col: 1, H: 2, W: 2}) {
		t.Fatal("overlapping move of own cells should be allowed")
	}
	if _, err := m.AllocateAt(fabric.Rect{Row: 2, Col: 2, H: 1, W: 1}); err != nil {
		t.Fatal(err)
	}
	if m.CanMove(id, fabric.Rect{Row: 1, Col: 1, H: 2, W: 2}) {
		t.Fatal("move onto another allocation should be rejected")
	}
	if m.CanMove(id, fabric.Rect{Row: 5, Col: 5, H: 2, W: 2}) {
		t.Fatal("out-of-bounds move should be rejected")
	}
	if m.CanMove(id, fabric.Rect{Row: 0, Col: 0, H: 3, W: 2}) {
		t.Fatal("shape change should be rejected")
	}
}
