package area

import (
	"testing"
	"testing/quick"

	"repro/internal/fabric"
)

func TestAllocateFreeBasics(t *testing.T) {
	m := NewManager(8, 8)
	id, rect, ok := m.Allocate(3, 4, FirstFit)
	if !ok {
		t.Fatal("allocation failed on empty grid")
	}
	if rect.H != 3 || rect.W != 4 {
		t.Fatalf("rect = %v", rect)
	}
	if m.FreeCLBs() != 64-12 {
		t.Errorf("FreeCLBs = %d", m.FreeCLBs())
	}
	for _, c := range rect.Coords() {
		if !m.Occupied(c) || m.OwnerAt(c) != id {
			t.Fatalf("cell %v not owned by %d", c, id)
		}
	}
	if err := m.Free(id); err != nil {
		t.Fatal(err)
	}
	if m.FreeCLBs() != 64 {
		t.Error("free did not release cells")
	}
	if err := m.Free(id); err == nil {
		t.Error("double free accepted")
	}
}

func TestFirstFitOrder(t *testing.T) {
	m := NewManager(4, 8)
	_, r1, _ := m.Allocate(2, 2, FirstFit)
	if r1.Row != 0 || r1.Col != 0 {
		t.Errorf("first fit not at origin: %v", r1)
	}
	_, r2, _ := m.Allocate(2, 2, FirstFit)
	if r2.Row != 0 || r2.Col != 2 {
		t.Errorf("second fit = %v, want R0C2", r2)
	}
}

func TestBottomLeftPolicy(t *testing.T) {
	m := NewManager(6, 6)
	_, r, ok := m.Allocate(2, 2, BottomLeft)
	if !ok || r.Row != 4 || r.Col != 0 {
		t.Errorf("bottom-left = %v, want R4C0", r)
	}
}

func TestBestFitPrefersCorners(t *testing.T) {
	m := NewManager(6, 6)
	_, r, ok := m.Allocate(2, 2, BestFit)
	if !ok {
		t.Fatal("no fit")
	}
	corner := (r.Row == 0 || r.Row == 4) && (r.Col == 0 || r.Col == 4)
	if !corner {
		t.Errorf("best fit on empty grid = %v, want a corner", r)
	}
}

func TestAllocateAtAndOverlap(t *testing.T) {
	m := NewManager(6, 6)
	if _, err := m.AllocateAt(fabric.Rect{Row: 1, Col: 1, H: 2, W: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AllocateAt(fabric.Rect{Row: 2, Col: 2, H: 2, W: 2}); err == nil {
		t.Error("overlapping allocation accepted")
	}
	if _, err := m.AllocateAt(fabric.Rect{Row: 5, Col: 5, H: 2, W: 2}); err == nil {
		t.Error("out-of-bounds allocation accepted")
	}
}

func TestMove(t *testing.T) {
	m := NewManager(6, 6)
	id, _ := m.AllocateAt(fabric.Rect{Row: 0, Col: 0, H: 2, W: 2})
	if err := m.Move(id, fabric.Rect{Row: 4, Col: 4, H: 2, W: 2}); err != nil {
		t.Fatal(err)
	}
	if m.Occupied(fabric.Coord{Row: 0, Col: 0}) {
		t.Error("old cells still occupied")
	}
	if !m.Occupied(fabric.Coord{Row: 5, Col: 5}) {
		t.Error("new cells not occupied")
	}
	// Move onto an occupied target rolls back.
	id2, _ := m.AllocateAt(fabric.Rect{Row: 0, Col: 0, H: 2, W: 2})
	if err := m.Move(id2, fabric.Rect{Row: 4, Col: 4, H: 2, W: 2}); err == nil {
		t.Fatal("move onto occupied target accepted")
	}
	if !m.Occupied(fabric.Coord{Row: 0, Col: 0}) {
		t.Error("rollback lost the original cells")
	}
}

func TestMaxFreeRectEmptyAndFull(t *testing.T) {
	m := NewManager(5, 7)
	if r := m.MaxFreeRect(); r.Area() != 35 {
		t.Errorf("empty grid max rect = %v", r)
	}
	for r := 0; r < 5; r++ {
		m.AllocateAt(fabric.Rect{Row: r, Col: 0, H: 1, W: 7})
	}
	if r := m.MaxFreeRect(); r.Area() != 0 {
		t.Errorf("full grid max rect = %v", r)
	}
}

func TestMaxFreeRectCheckerboardPattern(t *testing.T) {
	// Occupy a column splitting the free space: max rect is the larger
	// side.
	m := NewManager(4, 9)
	m.AllocateAt(fabric.Rect{Row: 0, Col: 3, H: 4, W: 1})
	r := m.MaxFreeRect()
	if r.Area() != 4*5 {
		t.Errorf("max rect = %v (area %d), want area 20", r, r.Area())
	}
}

func TestFragmentationMetric(t *testing.T) {
	m := NewManager(4, 8)
	if f := m.Fragmentation(); f != 0 {
		t.Errorf("empty fragmentation = %f", f)
	}
	// Comb pattern: occupy every other column -> free space shattered.
	for c := 1; c < 8; c += 2 {
		m.AllocateAt(fabric.Rect{Row: 0, Col: c, H: 4, W: 1})
	}
	f := m.Fragmentation()
	if f <= 0.5 {
		t.Errorf("comb fragmentation = %f, want > 0.5", f)
	}
	// Compact pattern of the same utilisation fragments far less.
	m2 := NewManager(4, 8)
	m2.AllocateAt(fabric.Rect{Row: 0, Col: 0, H: 4, W: 4})
	if f2 := m2.Fragmentation(); f2 != 0 {
		t.Errorf("compact fragmentation = %f, want 0", f2)
	}
}

func TestCanFitReflectsFragmentation(t *testing.T) {
	// The motivating scenario: enough total free space, but no contiguous
	// rectangle — the request fails.
	m := NewManager(4, 8)
	for c := 1; c < 8; c += 2 {
		m.AllocateAt(fabric.Rect{Row: 0, Col: c, H: 4, W: 1})
	}
	if m.FreeCLBs() < 16 {
		t.Fatal("test setup wrong")
	}
	if m.CanFit(4, 2) {
		t.Error("4x2 should not fit in a comb of 1-wide gaps")
	}
	if !m.CanFit(4, 1) {
		t.Error("4x1 should fit")
	}
}

func TestUtilisation(t *testing.T) {
	m := NewManager(4, 4)
	m.AllocateAt(fabric.Rect{Row: 0, Col: 0, H: 2, W: 2})
	if u := m.Utilisation(); u != 0.25 {
		t.Errorf("utilisation = %f", u)
	}
}

func TestStringRendering(t *testing.T) {
	m := NewManager(2, 3)
	m.AllocateAt(fabric.Rect{Row: 0, Col: 0, H: 1, W: 2})
	s := m.String()
	if s != "AA.\n...\n" {
		t.Errorf("render = %q", s)
	}
}

func TestAllocateFreeProperty(t *testing.T) {
	// Allocating then freeing any feasible rectangle restores the grid.
	f := func(row, col, h, w uint8) bool {
		m := NewManager(10, 10)
		rect := fabric.Rect{
			Row: int(row) % 10, Col: int(col) % 10,
			H: 1 + int(h)%4, W: 1 + int(w)%4,
		}
		id, err := m.AllocateAt(rect)
		if err != nil {
			return true // infeasible rects are fine
		}
		if m.FreeCLBs() != 100-rect.Area() {
			return false
		}
		if m.Free(id) != nil {
			return false
		}
		return m.FreeCLBs() == 100 && m.Fragmentation() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMaxFreeRectIsActuallyFree(t *testing.T) {
	// Property: the reported max free rect must be entirely free and must
	// not be smaller than any free square we can find by scanning.
	f := func(seed uint32) bool {
		m := NewManager(8, 8)
		s := uint64(seed)*2654435761 + 1
		for i := 0; i < 6; i++ {
			s = s*6364136223846793005 + 1442695040888963407
			r := int(s>>33) % 8
			c := int(s>>43) % 8
			h := 1 + int(s>>53)%3
			w := 1 + int(s>>59)%3
			m.AllocateAt(fabric.Rect{Row: r, Col: c, H: h, W: w})
		}
		best := m.MaxFreeRect()
		if best.Area() == 0 {
			return m.FreeCLBs() == 0
		}
		for _, c := range best.Coords() {
			if m.Occupied(c) {
				return false
			}
		}
		return m.fits(best)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
