package area

import (
	"testing"
)

func fragGrid() *Manager {
	m := NewManager(28, 42) // XCV200 geometry
	s := uint64(5)
	for i := 0; i < 60; i++ {
		s = s*6364136223846793005 + 1442695040888963407
		h := 1 + int(s>>40)%5
		w := 1 + int(s>>50)%5
		m.Allocate(h, w, Policy(int(s>>60)%3))
	}
	return m
}

func BenchmarkMaxFreeRectXCV200(b *testing.B) {
	m := fragGrid()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.MaxFreeRect()
	}
}

func BenchmarkAllocateFreeCycle(b *testing.B) {
	m := fragGrid()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id, _, ok := m.Allocate(3, 3, BestFit)
		if !ok {
			b.Fatal("no space")
		}
		m.Free(id)
	}
}
