package itc99

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/netlist"
)

// This file contains hand-written behavioural implementations of the two
// smallest ITC'99 benchmarks, following their published descriptions. They
// complement the synthetic suite: their behaviour is independently
// understandable, so a relocation bug that somehow slipped past the
// lock-step harness would also show up as a semantically wrong comparator
// or recogniser.

// B01FSM builds the real b01: an FSM that compares two serial bit flows
// (inputs line1, line2) and flags, on outs, whether the flows seen so far
// are equal; outflag pulses on (re)synchronisation points. 5 state FFs as
// published (state register of the original is 3 bits plus two output
// registers; we keep the published total of 5).
//
// Behavioural contract used here (and tested against a plain Go model):
//   - outs is registered equality of the last pair of bits;
//   - outflag is registered XOR of the running parities of both flows.
func B01FSM() *netlist.Netlist {
	nl := netlist.New("b01_fsm")
	l1 := nl.Input("line1")
	l2 := nl.Input("line2")

	// eq = NOT (line1 XOR line2), registered.
	x := nl.LUT("xor12", fabric.LUTXor2, l1, l2)
	eqc := nl.LUT("eq", fabric.LUTInv, x)
	eqFF := nl.FF("r_eq", eqc, netlist.None, true)

	// Running parity of each flow: p <- p XOR line.
	p1 := nl.FF("r_p1", netlist.None, netlist.None, false)
	p1n := nl.LUT("p1n", fabric.LUTXor2, p1, l1)
	nl.SetD(p1, p1n)
	p2 := nl.FF("r_p2", netlist.None, netlist.None, false)
	p2n := nl.LUT("p2n", fabric.LUTXor2, p2, l2)
	nl.SetD(p2, p2n)

	// outflag = registered (p1 XOR p2).
	fl := nl.LUT("flagc", fabric.LUTXor2, p1, p2)
	flFF := nl.FF("r_flag", fl, netlist.None, false)

	// A fifth register tracks "flows identical so far" (sticky AND).
	same := nl.FF("r_same", netlist.None, netlist.None, true)
	sameN := nl.LUT("samen", fabric.LUTAnd2, same, eqc)
	nl.SetD(same, sameN)

	nl.Output("outs", eqFF)
	nl.Output("outflag", flFF)
	nl.Output("same", same)
	return nl
}

// B01Model is the reference software model of B01FSM.
type B01Model struct {
	eq, p1, p2, flag, same bool
}

// NewB01Model returns the model in its reset state.
func NewB01Model() *B01Model { return &B01Model{eq: true, same: true} }

// Step advances one clock and returns (outs, outflag, same).
func (m *B01Model) Step(line1, line2 bool) (bool, bool, bool) {
	nextEq := !(line1 != line2)
	nextP1 := m.p1 != line1
	nextP2 := m.p2 != line2
	nextFlag := m.p1 != m.p2
	nextSame := m.same && nextEq
	m.eq, m.p1, m.p2, m.flag, m.same = nextEq, nextP1, nextP2, nextFlag, nextSame
	return m.eq, m.flag, m.same
}

// B02FSM builds the real b02: an FSM that recognises BCD numbers on a
// serial input (published: 4 FFs, 1 input, 1 output). The recogniser
// accumulates 4-bit groups MSB-first and raises u when the completed group
// is a valid BCD digit (0..9).
func B02FSM() *netlist.Netlist {
	nl := netlist.New("b02_fsm")
	in := nl.Input("linea")

	// 2-bit position counter (00,01,10,11 cycling).
	c0 := nl.FF("r_c0", netlist.None, netlist.None, false)
	c1 := nl.FF("r_c1", netlist.None, netlist.None, false)
	c0n := nl.LUT("c0n", fabric.LUTInv, c0)
	nl.SetD(c0, c0n)
	c1n := nl.LUT("c1n", fabric.LUTXor2, c1, c0)
	nl.SetD(c1, c1n)

	// Shifted value tracking: for BCD validity of an MSB-first group, the
	// group is invalid iff bit3=1 and (bit2=1 or bit1=1). Track "bit3
	// seen" (msb) and "violation" (sticky within a group).
	msb := nl.FF("r_msb", netlist.None, netlist.None, false)
	bad := nl.FF("r_bad", netlist.None, netlist.None, false)

	// start-of-group = counter at 00.
	nc0 := nl.LUT("nc0", fabric.LUTInv, c0)
	nc1 := nl.LUT("nc1", fabric.LUTInv, c1)
	atStart := nl.LUT("at0", fabric.LUTAnd2, nc0, nc1)

	// msb' = atStart ? in : msb
	msbN := nl.LUT("msbn", fabric.MuxLUT(2, 0, 1), in, msb, atStart)
	nl.SetD(msb, msbN)

	// mid-bit positions 01 and 10 (bits 2 and 1 of the group).
	midA := nl.LUT("midA", fabric.LUTAnd2, c0, nc1) // pos 01
	midB := nl.LUT("midB", fabric.LUTAnd2, nc0, c1) // pos 10
	mid := nl.LUT("mid", fabric.LUTOr2, midA, midB)
	// viol-now = mid & in & msb
	v1 := nl.LUT("v1", fabric.LUTAnd2, mid, in)
	violNow := nl.LUT("v2", fabric.LUTAnd2, v1, msb)
	// bad' = atStart ? 0 : (bad | violNow)
	badHold := nl.LUT("badh", fabric.LUTOr2, bad, violNow)
	badN := nl.LUT("badn", andNotLUT(), badHold, atStart)
	nl.SetD(bad, badN)

	// u = registered "group completed and valid": at position 11 the last
	// bit arrives; valid = !(bad | violNow... last bit is bit0, cannot
	// violate).
	atEnd := nl.LUT("at3", fabric.LUTAnd2, c0, c1)
	ok := nl.LUT("ok", fabric.LUTInv, badHold)
	uc := nl.LUT("uc", fabric.LUTAnd2, atEnd, ok)
	u := nl.FF("r_u", uc, netlist.None, false)
	nl.Output("u", u)
	return nl
}

// andNotLUT: out = I0 AND NOT I1.
func andNotLUT() uint16 {
	var lut uint16
	for v := 0; v < 16; v++ {
		if v&1 == 1 && v>>1&1 == 0 {
			lut |= 1 << v
		}
	}
	return lut
}

// B02Model is the reference software model of B02FSM.
type B02Model struct {
	pos int
	msb bool
	bad bool
	u   bool
}

// Step advances one clock with serial input bit in and returns u.
func (m *B02Model) Step(in bool) bool {
	atStart := m.pos == 0
	atEnd := m.pos == 3
	mid := m.pos == 1 || m.pos == 2

	nextMsb := m.msb
	if atStart {
		nextMsb = in
	}
	violNow := mid && in && m.msb
	badHold := m.bad || violNow
	nextBad := badHold
	if atStart {
		nextBad = false
	}
	m.u = atEnd && !badHold
	m.msb = nextMsb
	m.bad = nextBad
	m.pos = (m.pos + 1) & 3
	return m.u
}

// Handcrafted returns the hand-written benchmark netlists by name
// ("b01_fsm", "b02_fsm").
func Handcrafted(name string) (*netlist.Netlist, error) {
	switch name {
	case "b01_fsm":
		return B01FSM(), nil
	case "b02_fsm":
		return B02FSM(), nil
	}
	return nil, fmt.Errorf("itc99: unknown handcrafted circuit %q", name)
}
