package itc99

import (
	"testing"

	"repro/internal/netlist"
)

func TestSuiteGeneratesValidCircuits(t *testing.T) {
	for _, name := range Names() {
		if name == "b14" && testing.Short() {
			continue
		}
		nl, err := Get(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := nl.Validate(); err != nil {
			t.Errorf("%s: invalid: %v", name, err)
		}
		spec, _ := SpecOf(name)
		st := nl.Stats()
		if st.FFs+st.Latches != spec.FFs {
			t.Errorf("%s: %d state elements, spec says %d", name, st.FFs+st.Latches, spec.FFs)
		}
		if st.Inputs < spec.Inputs { // async adds phase inputs
			t.Errorf("%s: %d inputs < spec %d", name, st.Inputs, spec.Inputs)
		}
		if st.Outputs != spec.Outputs {
			t.Errorf("%s: %d outputs, spec %d", name, st.Outputs, spec.Outputs)
		}
		if st.LUTs != spec.LUTs {
			t.Errorf("%s: %d LUTs, spec %d", name, st.LUTs, spec.LUTs)
		}
	}
}

func TestGenerationIsDeterministic(t *testing.T) {
	a, _ := Get("b03")
	b, _ := Get("b03")
	if len(a.Nodes) != len(b.Nodes) {
		t.Fatal("node counts differ between generations")
	}
	for i := range a.Nodes {
		na, nb := a.Nodes[i], b.Nodes[i]
		if na.Kind != nb.Kind || na.LUT != nb.LUT || na.D != nb.D || na.CE != nb.CE {
			t.Fatalf("node %d differs between generations", i)
		}
	}
	// And the behaviour is identical.
	sa, _ := netlist.NewSim(a)
	sb, _ := netlist.NewSim(b)
	r := newRng(7)
	nin := len(a.Inputs())
	for cycle := 0; cycle < 50; cycle++ {
		in := make([]bool, nin)
		for i := range in {
			in[i] = r.bool()
		}
		oa, err := sa.Step(in)
		if err != nil {
			t.Fatal(err)
		}
		ob, _ := sb.Step(in)
		for i := range oa {
			if oa[i] != ob[i] {
				t.Fatalf("cycle %d output %d differs", cycle, i)
			}
		}
	}
}

func TestCircuitsAreAlive(t *testing.T) {
	// A benchmark whose outputs never change exercises nothing; every
	// circuit must show output activity under random stimulus.
	for _, name := range []string{"b01", "b02", "b03", "b06", "b08", "b09"} {
		nl, _ := Get(name)
		sim, err := netlist.NewSim(nl)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		r := newRng(42)
		nin := len(nl.Inputs())
		changed := false
		var prev []bool
		for cycle := 0; cycle < 200 && !changed; cycle++ {
			in := make([]bool, nin)
			for i := range in {
				in[i] = r.bool()
			}
			out, err := sim.Step(in)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if prev != nil {
				for i := range out {
					if out[i] != prev[i] {
						changed = true
					}
				}
			}
			prev = out
		}
		if !changed {
			t.Errorf("%s: outputs never changed in 200 cycles", name)
		}
	}
}

func TestGatedClockStyleHasCEs(t *testing.T) {
	nl, _ := Get("b03")
	ce := 0
	for _, nd := range nl.Nodes {
		if nd.Kind == netlist.KindFF && nd.CE != netlist.None {
			ce++
		}
	}
	if ce == 0 {
		t.Error("gated-clock benchmark has no clock-gated FFs")
	}
	free := 0
	for _, nd := range nl.Nodes {
		if nd.Kind == netlist.KindFF && nd.CE == netlist.None {
			free++
		}
	}
	if free == 0 {
		t.Error("gated-clock benchmark should retain some free-running FFs")
	}
}

func TestAsyncStyleTwoPhase(t *testing.T) {
	nl := Generate(GenConfig{
		Name: "async1", Inputs: 3, Outputs: 2, FFs: 8, LUTs: 24,
		Seed: 5, Style: Async,
	})
	st := nl.Stats()
	if st.Latches != 8 || st.FFs != 0 {
		t.Fatalf("async stats: %+v", st)
	}
	sim, err := netlist.NewSim(nl)
	if err != nil {
		t.Fatal(err)
	}
	// Drive non-overlapping phases: the circuit must settle on every phase
	// (no oscillation) and show activity.
	r := newRng(9)
	phi1, _ := nl.ByName("phi1")
	phi2, _ := nl.ByName("phi2")
	ins := nl.Inputs()
	idx1, idx2 := -1, -1
	for i, id := range ins {
		if id == phi1 {
			idx1 = i
		}
		if id == phi2 {
			idx2 = i
		}
	}
	if idx1 < 0 || idx2 < 0 {
		t.Fatal("phase inputs not found")
	}
	for cycle := 0; cycle < 100; cycle++ {
		in := make([]bool, len(ins))
		for i := range in {
			in[i] = r.bool()
		}
		in[idx1], in[idx2] = cycle%2 == 0, cycle%2 == 1
		if err := sim.SetInputs(in); err != nil {
			t.Fatal(err)
		}
		if err := sim.Settle(); err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
	}
}

func TestRAMGeneration(t *testing.T) {
	nl := Generate(GenConfig{
		Name: "withram", Inputs: 4, Outputs: 2, FFs: 6, LUTs: 20,
		Seed: 3, Style: FreeRunning, RAMs: 2,
	})
	if nl.Stats().RAMs != 2 {
		t.Fatalf("RAMs = %d", nl.Stats().RAMs)
	}
	if _, err := netlist.NewSim(nl); err != nil {
		t.Fatal(err)
	}
}

func TestNonTrivialLUTDependsOnAllInputs(t *testing.T) {
	r := newRng(1)
	for trial := 0; trial < 50; trial++ {
		k := 2 + r.intn(3)
		lut := nonTrivialLUT(r, k)
		for in := 0; in < k; in++ {
			depends := false
			for v := 0; v < 1<<k; v++ {
				if lut>>(v&0xF)&1 != lut>>((v^(1<<in))&0xF)&1 {
					depends = true
				}
			}
			if !depends {
				t.Fatalf("lut %#x (k=%d) independent of input %d", lut, k, in)
			}
		}
	}
}

func TestGetUnknown(t *testing.T) {
	if _, err := Get("b99"); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestSortedByFFs(t *testing.T) {
	specs := SortedByFFs()
	for i := 1; i < len(specs); i++ {
		if specs[i-1].FFs > specs[i].FFs {
			t.Fatal("not sorted")
		}
	}
	if len(specs) != len(Suite) {
		t.Fatal("missing specs")
	}
}

func TestSizedToRespectsCapacity(t *testing.T) {
	// The node total must never exceed the region's cell capacity — that
	// is the bound that guarantees a sized circuit places regardless of
	// LUT/FF packing — and the generator floors (2 LUTs, 2 FFs) must hold.
	for _, tc := range []struct {
		capacity int
		fill     float64
		rams     int
	}{
		{4, 0.5, 0},  // smallest region: 1x1 CLB
		{4, 0.9, 3},  // RAMs must be dropped to respect capacity 4
		{16, 0, 0},   // fill 0 -> default
		{16, 0.3, 2}, // RAM task in a 2x2 region
		{400, 0.4, 2},
		{400, 5.0, 0}, // fill clamps to 1
	} {
		cfg := GenConfig{Name: "s", Inputs: 2, Outputs: 2, RAMs: tc.rams, Seed: 9}
		sized := cfg.SizedTo(tc.capacity, tc.fill)
		total := sized.LUTs + sized.FFs + sized.RAMs
		if total > tc.capacity {
			t.Errorf("SizedTo(%d, %.2f, rams=%d): %d nodes exceed capacity (%+v)",
				tc.capacity, tc.fill, tc.rams, total, sized)
		}
		if sized.LUTs < 2 || sized.FFs < 2 {
			t.Errorf("SizedTo(%d, %.2f): below generator floor: %+v", tc.capacity, tc.fill, sized)
		}
		if sized.RAMs > tc.rams {
			t.Errorf("SizedTo invented RAMs: %+v", sized)
		}
		// And the sized config actually generates a valid netlist whose
		// conservative footprint matches the arithmetic.
		nl := Generate(sized)
		if err := nl.Validate(); err != nil {
			t.Errorf("SizedTo(%d, %.2f): invalid netlist: %v", tc.capacity, tc.fill, err)
		}
		if got := nl.Stats().CellUpperBound(); got > tc.capacity {
			t.Errorf("SizedTo(%d, %.2f): %d cells exceed capacity", tc.capacity, tc.fill, got)
		}
	}
}
