package itc99

import (
	"testing"

	"repro/internal/netlist"
)

func TestB01FSMMatchesModel(t *testing.T) {
	nl := B01FSM()
	if err := nl.Validate(); err != nil {
		t.Fatal(err)
	}
	sim, err := netlist.NewSim(nl)
	if err != nil {
		t.Fatal(err)
	}
	model := NewB01Model()
	r := newRng(77)
	for cycle := 0; cycle < 300; cycle++ {
		l1, l2 := r.bool(), r.bool()
		out, err := sim.Step([]bool{l1, l2})
		if err != nil {
			t.Fatal(err)
		}
		outs, flag, same := model.Step(l1, l2)
		if out[0] != outs || out[1] != flag || out[2] != same {
			t.Fatalf("cycle %d: netlist (%v,%v,%v) model (%v,%v,%v)",
				cycle, out[0], out[1], out[2], outs, flag, same)
		}
	}
}

func TestB01SameIsSticky(t *testing.T) {
	nl := B01FSM()
	sim, _ := netlist.NewSim(nl)
	// Identical flows: same stays high.
	for i := 0; i < 10; i++ {
		out, _ := sim.Step([]bool{i%2 == 0, i%2 == 0})
		if !out[2] {
			t.Fatal("same dropped on identical flows")
		}
	}
	// One mismatch: same drops and never recovers.
	sim.Step([]bool{true, false})
	for i := 0; i < 10; i++ {
		out, _ := sim.Step([]bool{true, true})
		if out[2] {
			t.Fatal("same recovered after mismatch — must be sticky")
		}
	}
}

func TestB02FSMMatchesModel(t *testing.T) {
	nl := B02FSM()
	if err := nl.Validate(); err != nil {
		t.Fatal(err)
	}
	sim, err := netlist.NewSim(nl)
	if err != nil {
		t.Fatal(err)
	}
	var model B02Model
	r := newRng(123)
	for cycle := 0; cycle < 400; cycle++ {
		in := r.bool()
		out, err := sim.Step([]bool{in})
		if err != nil {
			t.Fatal(err)
		}
		want := model.Step(in)
		if out[0] != want {
			t.Fatalf("cycle %d: u=%v model=%v", cycle, out[0], want)
		}
	}
}

func TestB02RecognisesBCD(t *testing.T) {
	// Feed known 4-bit groups MSB-first; u must pulse exactly for 0..9.
	for v := 0; v < 16; v++ {
		nl := B02FSM()
		sim, _ := netlist.NewSim(nl)
		var last []bool
		for bit := 3; bit >= 0; bit-- {
			last, _ = sim.Step([]bool{v>>bit&1 == 1})
		}
		wantValid := v <= 9
		if last[0] != wantValid {
			t.Errorf("group %04b: u=%v, want %v", v, last[0], wantValid)
		}
	}
}

func TestHandcraftedLookup(t *testing.T) {
	for _, name := range []string{"b01_fsm", "b02_fsm"} {
		nl, err := Handcrafted(name)
		if err != nil || nl == nil {
			t.Fatalf("Handcrafted(%s): %v", name, err)
		}
	}
	if _, err := Handcrafted("nope"); err == nil {
		t.Error("unknown handcrafted name accepted")
	}
}
