// Package itc99 provides behavioural re-implementations of the ITC'99
// benchmark suite (Politecnico di Torino) used in the paper's relocation
// experiments, plus a parametric generator of sequential circuits of the
// same character. The circuits match the published register counts and the
// approximate combinational sizes of the originals; they are deterministic
// (seeded) so that relocation transparency can be golden-checked cycle by
// cycle.
package itc99

import (
	"fmt"
	"sort"

	"repro/internal/netlist"
)

// rng is a splitmix64 generator: tiny, stdlib-free and stable forever, so
// generated benchmarks never change between Go releases.
type rng struct{ s uint64 }

func newRng(seed uint64) *rng { return &rng{s: seed} }

func (r *rng) next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z = (z ^ z>>30) * 0xBF58476D1CE4E5B9
	z = (z ^ z>>27) * 0x94D049BB133111EB
	return z ^ z>>31
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

func (r *rng) bool() bool { return r.next()&1 == 1 }

func (r *rng) float() float64 { return float64(r.next()>>11) / (1 << 53) }

// Style selects the sequential design style of a generated circuit — the
// three implementation cases of the paper's relocation procedure.
type Style uint8

const (
	// FreeRunning uses FFs clocked every cycle (no CE).
	FreeRunning Style = iota
	// GatedClock uses FFs whose capture is controlled by clock-enable
	// signals derived from circuit logic.
	GatedClock
	// Async uses transparent latches in a two-phase non-overlapping
	// discipline.
	Async
)

var styleNames = [...]string{"free-running", "gated-clock", "async"}

func (s Style) String() string { return styleNames[s] }

// GenConfig parameterises circuit generation.
type GenConfig struct {
	Name    string
	Inputs  int
	Outputs int
	FFs     int
	LUTs    int
	Seed    uint64
	Style   Style
	// CEFraction is the fraction of FFs that are clock-gated (GatedClock
	// style only); the rest stay free-running, as in real designs.
	CEFraction float64
	// RAMs adds 16x1 distributed RAMs (which the relocation engine must
	// refuse to relocate on-line).
	RAMs int
}

// SizedTo derives the LUT/FF/RAM counts of a generated circuit from the
// logic-cell capacity of the region it will occupy and a fill-factor
// target, replacing any counts already set. The node total is capped at
// the capacity itself: a packed cell holds at least one LUT/RAM/FF node,
// so LUTs+FFs+RAMs <= capacity guarantees the circuit fits its region
// regardless of how LUT/FF packing falls out. RAMs are taken from the
// configured count but never crowd out the sequential core.
func (cfg GenConfig) SizedTo(capacityCells int, fill float64) GenConfig {
	if fill <= 0 {
		fill = 0.35
	}
	if fill > 1 {
		fill = 1
	}
	total := int(fill * float64(capacityCells))
	// Floor: the generator needs a non-empty cloud and some state to be a
	// relocation workload at all (2 LUTs + 2 FFs). A 1x1-CLB region holds
	// 4 cells, so the floor never exceeds the smallest possible capacity.
	if total < 4 {
		total = 4
	}
	if total > capacityCells && capacityCells >= 4 {
		total = capacityCells
	}
	rams := cfg.RAMs
	if max := total / 4; rams > max {
		rams = max
	}
	ffs := (total - rams) / 3
	if ffs < 2 {
		ffs = 2
	}
	luts := total - rams - ffs
	if luts < 2 {
		// Not enough room after the floors: shrink state, then RAM.
		luts = 2
		if ffs = total - rams - luts; ffs < 2 {
			ffs = 2
			if rams = total - luts - ffs; rams < 0 {
				rams = 0
			}
		}
	}
	cfg.FFs, cfg.LUTs, cfg.RAMs = ffs, luts, rams
	return cfg
}

// Generate builds a deterministic sequential circuit. The structure is an
// FSM-like cloud: a combinational LUT network over the primary inputs and
// state outputs feeds the next-state and output logic.
func Generate(cfg GenConfig) *netlist.Netlist {
	r := newRng(cfg.Seed*0x9E3779B97F4A7C15 + 1)
	nl := netlist.New(cfg.Name)

	ins := make([]netlist.ID, cfg.Inputs)
	for i := range ins {
		ins[i] = nl.Input(fmt.Sprintf("in%d", i))
	}

	// State elements first (they feed the cloud); D patched later.
	states := make([]netlist.ID, cfg.FFs)
	phase := make([]int, cfg.FFs) // latch phase for Async style
	var phi [2]netlist.ID
	if cfg.Style == Async {
		// Two-phase gates come in as dedicated inputs; drivers must keep
		// them non-overlapping.
		phi[0] = nl.Input("phi1")
		phi[1] = nl.Input("phi2")
	}
	for i := range states {
		init := r.bool()
		switch cfg.Style {
		case Async:
			phase[i] = i % 2
			states[i] = nl.Latch(fmt.Sprintf("l%d", i), netlist.None, phi[phase[i]], init)
		default:
			states[i] = nl.FF(fmt.Sprintf("r%d", i), netlist.None, netlist.None, init)
		}
	}

	// sourcesFor returns the pool a LUT may read: inputs plus state
	// elements (for Async, only the opposite phase, preserving the
	// two-phase discipline), plus already-built cloud LUTs of the same
	// group.
	cloud := make([][]netlist.ID, 2)
	sourcesFor := func(group int) []netlist.ID {
		pool := append([]netlist.ID{}, ins...)
		for i, s := range states {
			if cfg.Style == Async && phase[i] == group {
				continue // a phase-g latch's logic reads the other phase
			}
			pool = append(pool, s)
		}
		pool = append(pool, cloud[group]...)
		return pool
	}

	nGroups := 1
	if cfg.Style == Async {
		nGroups = 2
	}
	for g := 0; g < nGroups; g++ {
		n := cfg.LUTs / nGroups
		if g == 0 {
			n += cfg.LUTs % nGroups
		}
		for i := 0; i < n; i++ {
			pool := sourcesFor(g)
			k := 2 + r.intn(3) // 2..4 inputs
			if k > len(pool) {
				k = len(pool)
			}
			lutIns := pickDistinct(r, pool, k)
			lut := nonTrivialLUT(r, k)
			id := nl.LUT(fmt.Sprintf("g%d_%d", g, i), lut, lutIns...)
			cloud[g] = append(cloud[g], id)
		}
	}

	// Clock-enable network for the gated style: a handful of CE signals
	// computed by the cloud drive groups of FFs.
	var ces []netlist.ID
	if cfg.Style == GatedClock {
		nCE := 1 + cfg.FFs/8
		for i := 0; i < nCE; i++ {
			ces = append(ces, cloud[0][r.intn(len(cloud[0]))])
		}
	}

	// Patch state-element D inputs from the cloud.
	for i, s := range states {
		g := 0
		if cfg.Style == Async {
			// A phase-p latch must be fed by logic that reads only the
			// OPPOSITE phase's latches (classic two-phase pipeline), so
			// that no combinational loop closes while it is transparent.
			// Cloud group g reads latches of phase 1-g, so pick g = p.
			g = phase[i]
		}
		src := cloud[g][r.intn(len(cloud[g]))]
		nl.SetD(s, src)
		if cfg.Style == GatedClock && r.float() < cfg.CEFraction {
			nl.SetCE(s, ces[i%len(ces)])
		}
	}

	// Distributed RAMs.
	for i := 0; i < cfg.RAMs; i++ {
		pool := sourcesFor(0)
		var addr [4]netlist.ID
		for a := range addr {
			addr[a] = pool[r.intn(len(pool))]
		}
		d := pool[r.intn(len(pool))]
		we := pool[r.intn(len(pool))]
		ram := nl.RAM(fmt.Sprintf("m%d", i), addr, d, we)
		cloud[0] = append(cloud[0], ram)
	}

	// Primary outputs from the cloud/state.
	pool := append(append([]netlist.ID{}, cloud[0]...), states...)
	for i := 0; i < cfg.Outputs; i++ {
		nl.Output(fmt.Sprintf("out%d", i), pool[r.intn(len(pool))])
	}
	if err := nl.Validate(); err != nil {
		panic(fmt.Sprintf("itc99: generated circuit invalid: %v", err))
	}
	return nl
}

func pickDistinct(r *rng, pool []netlist.ID, k int) []netlist.ID {
	idx := map[int]bool{}
	out := make([]netlist.ID, 0, k)
	for len(out) < k {
		i := r.intn(len(pool))
		if idx[i] {
			continue
		}
		idx[i] = true
		out = append(out, pool[i])
	}
	return out
}

// nonTrivialLUT returns a truth table that depends on every one of its k
// inputs (no stuck-at or input-independent tables), so that relocation bugs
// cannot hide behind dead logic.
func nonTrivialLUT(r *rng, k int) uint16 {
	mask := uint16(1)<<(1<<k) - 1
	for {
		lut := uint16(r.next()) & mask
		if lut == 0 || lut == mask {
			continue
		}
		dependsOnAll := true
		for in := 0; in < k; in++ {
			depends := false
			for v := 0; v < 1<<k; v++ {
				if lut>>(v&0xF)&1 != lut>>((v^(1<<in))&0xF)&1 {
					depends = true
					break
				}
			}
			if !depends {
				dependsOnAll = false
				break
			}
		}
		if dependsOnAll {
			return lut
		}
	}
}

// Spec records the published profile of one ITC'99 benchmark and the
// parameters of our behavioural equivalent.
type Spec struct {
	Name    string
	Desc    string
	Inputs  int
	Outputs int
	FFs     int // published register count
	Gates   int // published gate count (originals)
	LUTs    int // our 4-LUT equivalent (~gates/3)
	Style   Style
}

// Suite is the benchmark table: published I/O and FF counts of b01–b14,
// with combinational size scaled from gates to 4-input LUTs.
var Suite = []Spec{
	{Name: "b01", Desc: "FSM comparing serial flows", Inputs: 2, Outputs: 2, FFs: 5, Gates: 45, LUTs: 15, Style: FreeRunning},
	{Name: "b02", Desc: "FSM recognising BCD numbers", Inputs: 1, Outputs: 1, FFs: 4, Gates: 28, LUTs: 9, Style: FreeRunning},
	{Name: "b03", Desc: "Resource arbiter", Inputs: 4, Outputs: 4, FFs: 30, Gates: 160, LUTs: 53, Style: GatedClock},
	{Name: "b04", Desc: "Min/max computation", Inputs: 11, Outputs: 8, FFs: 66, Gates: 737, LUTs: 245, Style: GatedClock},
	{Name: "b05", Desc: "Memory-contents elaborator", Inputs: 1, Outputs: 36, FFs: 34, Gates: 998, LUTs: 332, Style: FreeRunning},
	{Name: "b06", Desc: "Interrupt handler", Inputs: 2, Outputs: 6, FFs: 9, Gates: 56, LUTs: 18, Style: FreeRunning},
	{Name: "b07", Desc: "Count points on a line", Inputs: 1, Outputs: 8, FFs: 49, Gates: 441, LUTs: 147, Style: GatedClock},
	{Name: "b08", Desc: "Find inclusions in sequences", Inputs: 9, Outputs: 4, FFs: 21, Gates: 183, LUTs: 61, Style: FreeRunning},
	{Name: "b09", Desc: "Serial-to-serial converter", Inputs: 1, Outputs: 1, FFs: 28, Gates: 170, LUTs: 56, Style: FreeRunning},
	{Name: "b10", Desc: "Voting system", Inputs: 11, Outputs: 6, FFs: 17, Gates: 206, LUTs: 68, Style: GatedClock},
	{Name: "b11", Desc: "Scramble string with shift", Inputs: 7, Outputs: 6, FFs: 31, Gates: 579, LUTs: 193, Style: GatedClock},
	{Name: "b12", Desc: "1-player game (guess sequence)", Inputs: 5, Outputs: 6, FFs: 121, Gates: 1076, LUTs: 358, Style: GatedClock},
	{Name: "b13", Desc: "Weather-station interface", Inputs: 10, Outputs: 10, FFs: 53, Gates: 362, LUTs: 120, Style: GatedClock},
	{Name: "b14", Desc: "Viper processor subset", Inputs: 32, Outputs: 54, FFs: 245, Gates: 10098, LUTs: 3366, Style: GatedClock},
}

// Get generates the named benchmark.
func Get(name string) (*netlist.Netlist, error) {
	for i, s := range Suite {
		if s.Name == name {
			return Generate(GenConfig{
				Name:       s.Name,
				Inputs:     s.Inputs,
				Outputs:    s.Outputs,
				FFs:        s.FFs,
				LUTs:       s.LUTs,
				Seed:       uint64(i + 1),
				Style:      s.Style,
				CEFraction: 0.75,
			}), nil
		}
	}
	return nil, fmt.Errorf("itc99: unknown benchmark %q", name)
}

// Names lists the available benchmarks in suite order.
func Names() []string {
	out := make([]string, len(Suite))
	for i, s := range Suite {
		out[i] = s.Name
	}
	return out
}

// SpecOf returns the spec of a named benchmark.
func SpecOf(name string) (Spec, bool) {
	for _, s := range Suite {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// SortedByFFs returns suite specs ordered by register count (small first),
// convenient for tests that scale work to circuit size.
func SortedByFFs() []Spec {
	out := append([]Spec{}, Suite...)
	sort.Slice(out, func(i, j int) bool { return out[i].FFs < out[j].FFs })
	return out
}
