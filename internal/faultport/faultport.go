// Package faultport wraps a configuration port with deterministic, seedable
// fault injection. It is the single fault model the facade's robustness
// tests, the fuzz harness, and chaos experiments share — promoting what used
// to be ad-hoc per-test flaky ports into one composable plan:
//
//   - a transient stream failure after N delivered frames (TripAfter): the
//     transport error surfaces once and then heals, the model of a glitched
//     shift;
//   - persistent per-frame write failure (FailFrames): every delivery
//     touching a condemned frame errors, and readback of the frame returns
//     deterministically corrupted content — the model of stuck configuration
//     memory;
//   - silent SEU bit-flips (FlipBit): readback shows the flipped bit, writes
//     succeed and clear it — the model a scrubber exists to repair;
//   - stalls (SetStall): wall-clock delay on every harvest (AwaitStream), a
//     hung-transport model with no cycle-accounting effect — the facade's
//     stall watchdog exists to bound it.
//
// The wrapper exploits the pipeline's write-through staging contract
// (bitstream.AsyncPort): the device model already holds every frame's final
// content before delivery starts, so a "failed" burst is still enqueued in
// full on the inner port. Cycle accounting and device content therefore stay
// bit-identical to a fault-free twin; only the error signal differs, which is
// exactly what the facade's retry ladder consumes. Transient faults are
// sticky until harvested by AwaitStream, mirroring the transport contract.
//
// All mutators are safe to call while bursts are in flight; a fixed seed
// makes every injected corruption reproducible.
package faultport

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/bitstream"
	"repro/internal/fabric"
)

// Inner is the port being wrapped: an asynchronous configuration port whose
// cycle counter can be read and restored (both jtag.Port and
// bitstream.ParallelPort qualify).
type Inner interface {
	bitstream.AsyncPort
	Cycles() uint64
	RestoreCycles(uint64)
}

// Port is a fault-injecting bitstream.AsyncPort wrapper. The zero fault plan
// is fully healthy; compose faults with TripAfter, FailFrames, FlipBit and
// SetStall at any time.
type Port struct {
	inner Inner

	mu     sync.Mutex
	seed   uint64
	budget int // frames until a transient trip; < 0 = disarmed
	bad    map[fabric.FrameAddr]bool
	flips  map[fabric.FrameAddr]map[int]uint32 // addr -> word index -> xor mask
	stall  time.Duration
	err    error // sticky until the next AwaitStream
	faults int
}

// New wraps inner. The seed drives the deterministic readback corruption of
// persistently failed frames; the same seed reproduces the same bit pattern.
func New(inner Inner, seed uint64) *Port {
	return &Port{inner: inner, seed: seed, budget: -1}
}

// TripAfter arms a transient stream fault: once `frames` more frames have
// been accepted, the delivery that crosses the budget reports a transport
// error (sticky until AwaitStream) and the fault clears itself — a retry of
// the same content succeeds. TripAfter(0) trips on the next delivery.
func (f *Port) TripAfter(frames int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.budget = frames
}

// Disarm cancels a pending transient trip.
func (f *Port) Disarm() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.budget = -1
}

// FailFrames condemns frames persistently: every write touching one errors,
// and readback returns seed-deterministic corruption until HealFrames.
func (f *Port) FailFrames(addrs ...fabric.FrameAddr) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.bad == nil {
		f.bad = make(map[fabric.FrameAddr]bool, len(addrs))
	}
	for _, a := range addrs {
		f.bad[a] = true
	}
}

// HealFrames lifts the persistent failure from the given frames.
func (f *Port) HealFrames(addrs ...fabric.FrameAddr) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, a := range addrs {
		delete(f.bad, a)
	}
}

// FlipBit injects a silent SEU: readback of addr shows the given bit
// inverted, writes succeed normally, and any write covering the frame clears
// the flip (the configuration memory was rewritten). Flipping the same bit
// twice cancels out.
func (f *Port) FlipBit(addr fabric.FrameAddr, word, bit int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.flips == nil {
		f.flips = make(map[fabric.FrameAddr]map[int]uint32)
	}
	m := f.flips[addr]
	if m == nil {
		m = make(map[int]uint32)
		f.flips[addr] = m
	}
	m[word] ^= 1 << uint(bit%32)
	if m[word] == 0 {
		delete(m, word)
	}
	if len(m) == 0 {
		delete(f.flips, addr)
	}
}

// SetStall delays every harvest (AwaitStream) by d of wall-clock time
// (0 disables) — the model of a hung transport that stops responding at
// exactly the point the host blocks on it. Stalls never change cycle
// accounting or delivered content; they exist so a stall watchdog has
// something to catch.
func (f *Port) SetStall(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.stall = d
}

// Faults returns the number of faults injected so far (trips plus persistent
// write failures; silent flips are not counted until something reads them).
func (f *Port) Faults() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.faults
}

// inject applies the armed fault plan to one outgoing delivery and returns
// the injected error, if any. Caller holds f.mu.
func (f *Port) inject(updates []bitstream.FrameUpdate) error {
	var err error
	if f.budget >= 0 {
		if len(updates) <= f.budget {
			f.budget -= len(updates)
		} else {
			// Transient: the trip fires once and the fault heals itself.
			n := f.budget
			f.budget = -1
			f.faults++
			err = fmt.Errorf("faultport: injected transient stream failure after %d frames", n)
		}
	}
	for _, u := range updates {
		if f.bad[u.Addr] {
			f.faults++
			if err == nil {
				err = fmt.Errorf("faultport: persistent write failure at frame F%d.%d", u.Addr.Major, u.Addr.Minor)
			}
		}
		// A rewrite refreshes the frame's configuration memory: SEUs clear.
		delete(f.flips, u.Addr)
	}
	return err
}

// WriteUpdates implements bitstream.Port. An injected fault fails the write
// synchronously; nothing is delivered for a faulted write.
func (f *Port) WriteUpdates(updates []bitstream.FrameUpdate) error {
	f.mu.Lock()
	err := f.inject(updates)
	f.mu.Unlock()
	if err != nil {
		return err
	}
	return f.inner.WriteUpdates(updates)
}

// StreamUpdates implements bitstream.AsyncPort. The burst is always enqueued
// in full on the inner port — write-through staging means the device already
// holds the streamed content, so a fault only poisons the error signal (and
// the accounting stays identical to a fault-free run). The injected error is
// sticky until the next AwaitStream.
func (f *Port) StreamUpdates(updates []bitstream.FrameUpdate) {
	f.mu.Lock()
	if err := f.inject(updates); err != nil && f.err == nil {
		f.err = err
	}
	f.mu.Unlock()
	f.inner.StreamUpdates(updates)
}

// AwaitStream implements bitstream.AsyncPort: it drains the inner queue and
// surfaces (then clears) any injected sticky error. An armed stall sleeps
// here, before the drain — the hung-harvest model the watchdog bounds.
func (f *Port) AwaitStream() error {
	f.mu.Lock()
	stall := f.stall
	f.mu.Unlock()
	if stall > 0 {
		time.Sleep(stall)
	}
	err := f.inner.AwaitStream()
	f.mu.Lock()
	if err == nil {
		err = f.err
	}
	f.err = nil
	f.mu.Unlock()
	return err
}

// ReadFrame implements bitstream.Port, applying the readback fault model:
// persistent-bad frames come back seed-deterministically corrupted, SEU
// flips show their inverted bits.
func (f *Port) ReadFrame(addr fabric.FrameAddr) ([]uint32, error) {
	words, err := f.inner.ReadFrame(addr)
	if err != nil {
		return nil, err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.bad[addr] && f.flips[addr] == nil {
		return words, nil
	}
	out := make([]uint32, len(words))
	copy(out, words)
	if f.bad[addr] {
		for i := range out {
			out[i] ^= corruptMask(f.seed, addr, i)
		}
	}
	for w, mask := range f.flips[addr] {
		if w >= 0 && w < len(out) {
			out[w] ^= mask
		}
	}
	return out, nil
}

// corruptMask is the deterministic per-word corruption pattern of a
// persistently failed frame: a splitmix64 of (seed, addr, word index), with
// bit 0 forced so every word visibly differs.
func corruptMask(seed uint64, addr fabric.FrameAddr, word int) uint32 {
	x := seed ^ uint64(addr.Major)<<40 ^ uint64(addr.Minor)<<20 ^ uint64(word)
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return uint32(x^(x>>31)) | 1
}

// StreamInFlight implements bitstream.AsyncPort.
func (f *Port) StreamInFlight() bool { return f.inner.StreamInFlight() }

// CompletedBursts implements bitstream.AsyncPort.
func (f *Port) CompletedBursts() uint64 { return f.inner.CompletedBursts() }

// Elapsed implements bitstream.Port.
func (f *Port) Elapsed() float64 { return f.inner.Elapsed() }

// Name implements bitstream.Port (the inner transport's name: the wrapper is
// invisible to reports and journal init records).
func (f *Port) Name() string { return f.inner.Name() }

// Cycles exposes the inner port's cycle counter.
func (f *Port) Cycles() uint64 { return f.inner.Cycles() }

// RestoreCycles overwrites the inner port's cycle counter (journal recovery
// and retry compensation).
func (f *Port) RestoreCycles(n uint64) { f.inner.RestoreCycles(n) }

// SetCompress forwards compression control to the inner port, so a
// fault-injected system can run compressed streams. Faults are injected on
// the update list BEFORE encoding (see inject), which keeps persistent frame
// faults visible even when compression elides the frame's words entirely.
// No-op when the inner port does not implement bitstream.CompressPort.
func (f *Port) SetCompress(on bool) {
	if tp, ok := f.inner.(bitstream.CompressPort); ok {
		tp.SetCompress(on)
	}
}

// Compressed reports the inner port's compression mode (false when the inner
// port does not implement bitstream.CompressPort).
func (f *Port) Compressed() bool {
	if tp, ok := f.inner.(bitstream.CompressPort); ok {
		return tp.Compressed()
	}
	return false
}

// Traffic exposes the inner port's write-traffic counters (zero-valued when
// unsupported).
func (f *Port) Traffic() bitstream.Traffic {
	if tp, ok := f.inner.(bitstream.CompressPort); ok {
		return tp.Traffic()
	}
	return bitstream.Traffic{}
}

// RestoreTraffic overwrites the inner port's traffic counters (journal
// recovery and retry compensation). No-op when unsupported.
func (f *Port) RestoreTraffic(t bitstream.Traffic) {
	if tp, ok := f.inner.(bitstream.CompressPort); ok {
		tp.RestoreTraffic(t)
	}
}

var _ bitstream.AsyncPort = (*Port)(nil)
var _ Inner = (*Port)(nil)
var _ bitstream.CompressPort = (*Port)(nil)
