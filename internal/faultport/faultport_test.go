package faultport

import (
	"strings"
	"testing"

	"repro/internal/bitstream"
	"repro/internal/fabric"
	"repro/internal/jtag"
)

func newPort(t *testing.T, seed uint64) (*Port, *jtag.Port, *fabric.Device) {
	t.Helper()
	dev := fabric.NewDevice(fabric.TestDevice)
	inner := jtag.NewPort(bitstream.NewController(dev), jtag.DefaultTCKHz)
	return New(inner, seed), inner, dev
}

func frameUpdate(dev *fabric.Device, major, minor int, fill uint32) bitstream.FrameUpdate {
	words, err := dev.ReadFrame(major, minor)
	if err != nil {
		panic(err)
	}
	data := make([]uint32, len(words))
	for i := range data {
		data[i] = fill
	}
	return bitstream.FrameUpdate{Addr: fabric.FrameAddr{Major: major, Minor: minor}, Data: data}
}

// TestTripAfterBudgetAcrossBursts: the transient budget counts frames across
// deliveries, the trip fires once on the burst that crosses it, stays sticky
// until the next AwaitStream, and the fault heals itself.
func TestTripAfterBudgetAcrossBursts(t *testing.T) {
	p, _, dev := newPort(t, 1)
	p.TripAfter(3)

	// Two frames: under budget, enqueues cleanly.
	p.StreamUpdates([]bitstream.FrameUpdate{frameUpdate(dev, 0, 0, 1), frameUpdate(dev, 0, 1, 1)})
	// Two more: crosses the budget of 3 — the error arms, sticky.
	p.StreamUpdates([]bitstream.FrameUpdate{frameUpdate(dev, 0, 2, 1), frameUpdate(dev, 0, 3, 1)})
	err := p.AwaitStream()
	if err == nil || !strings.Contains(err.Error(), "transient") {
		t.Fatalf("await after trip: %v, want injected transient failure", err)
	}
	if p.Faults() != 1 {
		t.Fatalf("faults = %d, want 1", p.Faults())
	}
	// The await consumed the sticky error, and the trip self-disarmed: the
	// same traffic now succeeds.
	p.StreamUpdates([]bitstream.FrameUpdate{frameUpdate(dev, 0, 4, 1)})
	if err := p.AwaitStream(); err != nil {
		t.Fatalf("await after self-heal: %v", err)
	}
	// Even the "failed" burst was enqueued in full on the inner transport
	// (write-through: the fault poisons the error signal, never the data),
	// so all three bursts completed at the protocol level.
	if n := p.CompletedBursts(); n != 3 {
		t.Fatalf("completed bursts = %d, want 3", n)
	}
}

// TestDisarmCancelsTrip: a disarmed trip never fires.
func TestDisarmCancelsTrip(t *testing.T) {
	p, _, dev := newPort(t, 1)
	p.TripAfter(0)
	p.Disarm()
	p.StreamUpdates([]bitstream.FrameUpdate{frameUpdate(dev, 0, 0, 2)})
	if err := p.AwaitStream(); err != nil {
		t.Fatalf("await after disarm: %v", err)
	}
	if p.Faults() != 0 {
		t.Fatalf("faults = %d, want 0", p.Faults())
	}
}

// TestPersistentFailure: writes touching a condemned frame error (and the
// synchronous path delivers nothing), readback is deterministically
// corrupted by the seed, and HealFrames lifts it all.
func TestPersistentFailure(t *testing.T) {
	p, _, dev := newPort(t, 42)
	bad := fabric.FrameAddr{Major: 1, Minor: 0}
	p.FailFrames(bad)

	if err := p.WriteUpdates([]bitstream.FrameUpdate{frameUpdate(dev, 1, 0, 3)}); err == nil {
		t.Fatal("write to condemned frame succeeded")
	}
	// Nothing was delivered: the device still holds the original content.
	orig, err := dev.ReadFrame(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range orig {
		if w == 3 {
			t.Fatalf("word %d delivered despite the synchronous failure", i)
		}
	}

	// Readback corruption is deterministic in the seed.
	c1, err := p.ReadFrame(bad)
	if err != nil {
		t.Fatal(err)
	}
	p2, _, _ := newPort(t, 42)
	p2.FailFrames(bad)
	c2, err := p2.ReadFrame(bad)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	differsFromDevice := false
	for i := range c1 {
		if c1[i] != c2[i] {
			same = false
		}
		if c1[i] != orig[i] {
			differsFromDevice = true
		}
	}
	if !same {
		t.Fatal("same seed produced different corruption")
	}
	if !differsFromDevice {
		t.Fatal("condemned readback not corrupted")
	}
	p3, _, _ := newPort(t, 43)
	p3.FailFrames(bad)
	c3, err := p3.ReadFrame(bad)
	if err != nil {
		t.Fatal(err)
	}
	diff := false
	for i := range c1 {
		if c1[i] != c3[i] {
			diff = true
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical corruption")
	}

	p.HealFrames(bad)
	if err := p.WriteUpdates([]bitstream.FrameUpdate{frameUpdate(dev, 1, 0, 3)}); err != nil {
		t.Fatalf("write after heal: %v", err)
	}
	got, err := p.ReadFrame(bad)
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range got {
		if w != 3 {
			t.Fatalf("word %d after heal = %#x, want 3", i, w)
		}
	}
}

// TestFlipBit: an SEU shows only on readback, a write covering the frame
// clears it, and flipping the same bit twice cancels out.
func TestFlipBit(t *testing.T) {
	p, _, dev := newPort(t, 7)
	addr := fabric.FrameAddr{Major: 2, Minor: 1}
	clean, err := p.ReadFrame(addr)
	if err != nil {
		t.Fatal(err)
	}
	clean = append([]uint32(nil), clean...)

	p.FlipBit(addr, 1, 5)
	got, err := p.ReadFrame(addr)
	if err != nil {
		t.Fatal(err)
	}
	if got[1] != clean[1]^(1<<5) {
		t.Fatalf("word 1 = %#x, want %#x", got[1], clean[1]^(1<<5))
	}
	for i := range got {
		if i != 1 && got[i] != clean[i] {
			t.Fatalf("word %d disturbed by a single-bit flip", i)
		}
	}
	// The device model itself is untouched: the flip lives in the readback
	// signal only.
	devWords, err := dev.ReadFrame(addr.Major, addr.Minor)
	if err != nil {
		t.Fatal(err)
	}
	if devWords[1] != clean[1] {
		t.Fatal("SEU leaked into the device model")
	}

	// A rewrite of the frame refreshes the memory: the flip clears.
	if err := p.WriteUpdates([]bitstream.FrameUpdate{{Addr: addr, Data: clean}}); err != nil {
		t.Fatal(err)
	}
	got, err = p.ReadFrame(addr)
	if err != nil {
		t.Fatal(err)
	}
	if got[1] != clean[1] {
		t.Fatal("write did not clear the SEU")
	}

	// Double flip cancels.
	p.FlipBit(addr, 2, 9)
	p.FlipBit(addr, 2, 9)
	got, err = p.ReadFrame(addr)
	if err != nil {
		t.Fatal(err)
	}
	if got[2] != clean[2] {
		t.Fatal("double flip did not cancel")
	}
}

// TestAccountingPassthrough: the wrapper is accounting-transparent — cycles,
// elapsed time and the port name all come from the inner transport, and a
// healthy wrapped run matches an unwrapped twin bit for bit.
func TestAccountingPassthrough(t *testing.T) {
	p, inner, dev := newPort(t, 9)
	twinDev := fabric.NewDevice(fabric.TestDevice)
	twin := jtag.NewPort(bitstream.NewController(twinDev), jtag.DefaultTCKHz)

	burst := []bitstream.FrameUpdate{frameUpdate(dev, 0, 0, 5), frameUpdate(dev, 0, 1, 6)}
	p.StreamUpdates(burst)
	if err := p.AwaitStream(); err != nil {
		t.Fatal(err)
	}
	twin.StreamUpdates(burst)
	if err := twin.AwaitStream(); err != nil {
		t.Fatal(err)
	}
	if p.Cycles() != twin.Cycles() || p.Cycles() != inner.Cycles() {
		t.Fatalf("cycles: wrapped %d, inner %d, twin %d", p.Cycles(), inner.Cycles(), twin.Cycles())
	}
	if p.Elapsed() != twin.Elapsed() {
		t.Fatalf("elapsed: wrapped %v, twin %v", p.Elapsed(), twin.Elapsed())
	}
	if p.Name() != twin.Name() {
		t.Fatalf("name: wrapped %q, twin %q", p.Name(), twin.Name())
	}
	p.RestoreCycles(123)
	if inner.Cycles() != 123 {
		t.Fatalf("RestoreCycles did not reach the inner port: %d", inner.Cycles())
	}
}
