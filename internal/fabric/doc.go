// Package fabric models a Virtex-class partially reconfigurable FPGA at the
// level of detail required by the DATE 2003 paper "Run-Time Management of
// Logic Resources on Reconfigurable Systems" (Gericota et al.):
//
//   - an array of CLBs, each with four logic cells (4-input LUT, optional
//     FF or transparent latch with clock-enable, a direct FF-bypass input
//     BX, and separate combinational X and registered XQ outputs);
//   - an island-style routing fabric of single-length and hex-length wire
//     segments joined by programmable interconnect points (PIPs), where a
//     routing sink may have SEVERAL PIPs enabled at once (the physical
//     basis for the paper's "place outputs in parallel" trick);
//   - a frame-organised configuration memory: the frame is the smallest
//     unit that can be read or written, frames group into per-column
//     configuration columns mixing logic and routing bits, and rewriting
//     identical bits is glitch-free.
//
// The bit-level layout is synthetic (documented in DESIGN.md) but preserves
// every architectural property the relocation procedure depends on: frame
// granularity, column organisation, multi-column spill of a single CLB's
// connectivity, and PIP-parallel connections.
package fabric
