package fabric

import "fmt"

// Architectural constants of the modelled device family. These mirror the
// Virtex organisation where it matters to the relocation procedure (four
// logic cells per CLB, frame-per-column configuration) and use simplified
// but fixed wire counts elsewhere.
const (
	// CellsPerCLB is the number of independent logic cells in one CLB.
	// The paper: "each CLB comprises four of these cells; for the purpose
	// of implementing this procedure, each CLB cell can be considered
	// individually".
	CellsPerCLB = 4

	// LUTInputs is the number of inputs of each cell's look-up table.
	LUTInputs = 4

	// SinglesPerDir is the number of single-length wires a tile drives in
	// each of the four directions.
	SinglesPerDir = 12

	// HexesPerDir is the number of hex-length (six tiles) wires a tile
	// drives in each direction.
	HexesPerDir = 4

	// FramesPerCLBColumn is the number of configuration frames in one CLB
	// column (Virtex value).
	FramesPerCLBColumn = 48

	// FramesPerIOBColumn is the number of frames in each of the two
	// vertical IOB columns (Virtex value).
	FramesPerIOBColumn = 54

	// FramesPerClockColumn is the number of frames in the centre clock
	// column (Virtex value).
	FramesPerClockColumn = 8

	// BitsPerTileRow is the number of configuration bits each tile
	// contributes to one frame of its column. (Synthetic: real Virtex
	// packs 18; we use 24 to hold the explicit PIP encoding.)
	BitsPerTileRow = 24

	// TileConfigBits is the total number of configuration bits per tile:
	// FramesPerCLBColumn * BitsPerTileRow.
	TileConfigBits = FramesPerCLBColumn * BitsPerTileRow
)

// Dir is one of the four routing directions.
type Dir uint8

// Routing directions. North decreases the row index, South increases it;
// East increases the column index, West decreases it.
const (
	North Dir = iota
	East
	South
	West
)

var dirNames = [4]string{"N", "E", "S", "W"}

func (d Dir) String() string { return dirNames[d] }

// Opposite returns the direction pointing the other way.
func (d Dir) Opposite() Dir { return d ^ 2 }

// Left returns the direction after a 90° counter-clockwise turn.
func (d Dir) Left() Dir { return (d + 3) & 3 }

// Right returns the direction after a 90° clockwise turn.
func (d Dir) Right() Dir { return (d + 1) & 3 }

// DeltaRow reports how the row index changes when moving one tile in
// direction d.
func (d Dir) DeltaRow() int {
	switch d {
	case North:
		return -1
	case South:
		return 1
	}
	return 0
}

// DeltaCol reports how the column index changes when moving one tile in
// direction d.
func (d Dir) DeltaCol() int {
	switch d {
	case East:
		return 1
	case West:
		return -1
	}
	return 0
}

// Coord addresses one CLB tile on the array. Row 0 is the top row, column 0
// the leftmost CLB column.
type Coord struct {
	Row, Col int
}

func (c Coord) String() string { return fmt.Sprintf("R%dC%d", c.Row, c.Col) }

// Step returns the coordinate n tiles away in direction d.
func (c Coord) Step(d Dir, n int) Coord {
	return Coord{Row: c.Row + n*d.DeltaRow(), Col: c.Col + n*d.DeltaCol()}
}

// ManhattanDist returns the Manhattan distance between two coordinates.
func (c Coord) ManhattanDist(o Coord) int {
	return abs(c.Row-o.Row) + abs(c.Col-o.Col)
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Rect is a rectangular CLB region: H rows by W columns with the top-left
// corner at (Row, Col).
type Rect struct {
	Row, Col, H, W int
}

func (r Rect) String() string {
	return fmt.Sprintf("[%dx%d@R%dC%d]", r.H, r.W, r.Row, r.Col)
}

// Area returns the number of CLBs covered.
func (r Rect) Area() int { return r.H * r.W }

// Contains reports whether a coordinate lies inside the rectangle.
func (r Rect) Contains(c Coord) bool {
	return c.Row >= r.Row && c.Row < r.Row+r.H && c.Col >= r.Col && c.Col < r.Col+r.W
}

// Overlaps reports whether two rectangles share any CLB.
func (r Rect) Overlaps(o Rect) bool {
	return r.Row < o.Row+o.H && o.Row < r.Row+r.H && r.Col < o.Col+o.W && o.Col < r.Col+r.W
}

// Coords enumerates the covered coordinates row-major.
func (r Rect) Coords() []Coord {
	out := make([]Coord, 0, r.Area())
	for row := r.Row; row < r.Row+r.H; row++ {
		for col := r.Col; col < r.Col+r.W; col++ {
			out = append(out, Coord{Row: row, Col: col})
		}
	}
	return out
}

// CellRef addresses one logic cell inside a CLB.
type CellRef struct {
	Coord
	Cell int // 0..CellsPerCLB-1
}

func (c CellRef) String() string { return fmt.Sprintf("%s.S%d", c.Coord, c.Cell) }
