package fabric

import (
	"testing"
	"testing/quick"
)

func TestDirOps(t *testing.T) {
	cases := []struct {
		d               Dir
		opp, left, rght Dir
		dr, dc          int
	}{
		{North, South, West, East, -1, 0},
		{East, West, North, South, 0, 1},
		{South, North, East, West, 1, 0},
		{West, East, South, North, 0, -1},
	}
	for _, c := range cases {
		if c.d.Opposite() != c.opp {
			t.Errorf("%v.Opposite() = %v, want %v", c.d, c.d.Opposite(), c.opp)
		}
		if c.d.Left() != c.left {
			t.Errorf("%v.Left() = %v, want %v", c.d, c.d.Left(), c.left)
		}
		if c.d.Right() != c.rght {
			t.Errorf("%v.Right() = %v, want %v", c.d, c.d.Right(), c.rght)
		}
		if c.d.DeltaRow() != c.dr || c.d.DeltaCol() != c.dc {
			t.Errorf("%v delta = (%d,%d), want (%d,%d)", c.d, c.d.DeltaRow(), c.d.DeltaCol(), c.dr, c.dc)
		}
	}
}

func TestCoordStep(t *testing.T) {
	c := Coord{Row: 5, Col: 7}
	if got := c.Step(North, 2); got != (Coord{Row: 3, Col: 7}) {
		t.Errorf("Step(North,2) = %v", got)
	}
	if got := c.Step(East, 6); got != (Coord{Row: 5, Col: 13}) {
		t.Errorf("Step(East,6) = %v", got)
	}
	if d := c.ManhattanDist(Coord{Row: 1, Col: 9}); d != 6 {
		t.Errorf("ManhattanDist = %d, want 6", d)
	}
}

func TestLocalIDsRoundTrip(t *testing.T) {
	seen := map[int]bool{}
	check := func(local int, kind NodeKind, wantD Dir, wantIdx int) {
		t.Helper()
		if seen[local] {
			t.Fatalf("local id %d assigned twice", local)
		}
		seen[local] = true
		k, d, idx := DecodeLocal(local)
		if k != kind || d != wantD || idx != wantIdx {
			t.Errorf("DecodeLocal(%d) = (%v,%v,%d), want (%v,%v,%d)", local, k, d, idx, kind, wantD, wantIdx)
		}
	}
	for d := Dir(0); d < 4; d++ {
		for i := 0; i < SinglesPerDir; i++ {
			check(LocalSingle(d, i), KindSingle, d, i)
		}
		for j := 0; j < HexesPerDir; j++ {
			check(LocalHex(d, j), KindHex, d, j)
		}
	}
	for cell := 0; cell < CellsPerCLB; cell++ {
		for k := 0; k < LUTInputs; k++ {
			check(LocalPinI(cell, k), KindPinI, 0, cell*LUTInputs+k)
		}
		check(LocalPinBX(cell), KindPinBX, 0, cell)
		check(LocalPinCE(cell), KindPinCE, 0, cell)
		check(LocalOutX(cell), KindOutX, 0, cell)
		check(LocalOutXQ(cell), KindOutXQ, 0, cell)
	}
	if len(seen) != localNodeCount {
		t.Errorf("enumerated %d locals, want %d", len(seen), localNodeCount)
	}
	if localNodeCount > NodeSlots {
		t.Errorf("localNodeCount %d exceeds NodeSlots %d", localNodeCount, NodeSlots)
	}
}

func TestSinkTemplatesWellFormed(t *testing.T) {
	for s := 0; s < sinkCount; s++ {
		srcs := SinkSources(s)
		if len(srcs) == 0 {
			t.Errorf("sink %d has no sources", s)
		}
		if len(srcs) > maxPIPsPerSink {
			t.Errorf("sink %d has %d sources > max %d", s, len(srcs), maxPIPsPerSink)
		}
		seen := map[SourceRef]bool{}
		for _, src := range srcs {
			if seen[src] {
				t.Errorf("sink %d has duplicate source %+v", s, src)
			}
			seen[src] = true
			kind, _, _ := DecodeLocal(src.Local)
			if kind == KindPinI || kind == KindPinBX || kind == KindPinCE {
				t.Errorf("sink %d lists pin %d as a source", s, src.Local)
			}
		}
	}
	if SinkSources(LocalOutX(0)) != nil {
		t.Error("cell output should have no sources")
	}
}

func TestFanoutTemplateIsInverse(t *testing.T) {
	// Every (sink, bit) pair must appear exactly once in the fanout
	// template of its source local.
	count := 0
	for local := 0; local < localNodeCount; local++ {
		for _, fr := range fanoutTemplate[local] {
			src := sinkSources[fr.SinkLocal][fr.Bit]
			if src.Local != local || src.DRow != -fr.DRow || src.DCol != -fr.DCol {
				t.Errorf("fanout of %d: mismatched inverse %+v vs %+v", local, fr, src)
			}
			count++
		}
	}
	want := 0
	for s := 0; s < sinkCount; s++ {
		want += len(sinkSources[s])
	}
	if count != want {
		t.Errorf("fanout template has %d edges, sink templates %d", count, want)
	}
}

func TestNewDeviceGeometry(t *testing.T) {
	d := NewDevice(XCV200)
	if d.Rows != 28 || d.Cols != 42 {
		t.Fatalf("XCV200 geometry %dx%d", d.Rows, d.Cols)
	}
	wantFrames := FramesPerClockColumn + 42*FramesPerCLBColumn + 2*FramesPerIOBColumn + 2*64
	if d.TotalFrames() != wantFrames {
		t.Errorf("TotalFrames = %d, want %d", d.TotalFrames(), wantFrames)
	}
	if d.FrameBits() != (28+2)*BitsPerTileRow {
		t.Errorf("FrameBits = %d", d.FrameBits())
	}
	if d.FrameWords() != (d.FrameBits()+31)/32 {
		t.Errorf("FrameWords = %d", d.FrameWords())
	}
	// Column table sanity.
	cols := d.Columns()
	if cols[0].Kind != ColClock {
		t.Errorf("column 0 kind = %v", cols[0].Kind)
	}
	for c := 0; c < d.Cols; c++ {
		major := d.MajorOfArrayCol(c)
		col, ok := d.ColumnByMajor(major)
		if !ok || col.Kind != ColCLB || col.ArrayCol != c {
			t.Errorf("array col %d -> major %d -> %+v", c, major, col)
		}
	}
}

func TestFrameReadWriteRoundTrip(t *testing.T) {
	d := NewDevice(TestDevice)
	data := make([]uint32, d.FrameWords())
	for i := range data {
		data[i] = uint32(i*2654435761 + 17)
	}
	if err := d.WriteFrame(3, 7, data); err != nil {
		t.Fatal(err)
	}
	got, err := d.ReadFrame(3, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("word %d = %#x, want %#x", i, got[i], data[i])
		}
	}
	// Out-of-range addresses error.
	if _, err := d.ReadFrame(-1, 0); err == nil {
		t.Error("ReadFrame(-1,0) should fail")
	}
	if _, err := d.ReadFrame(0, FramesPerClockColumn); err == nil {
		t.Error("ReadFrame minor overflow should fail")
	}
	if err := d.WriteFrame(1, 0, make([]uint32, 1)); err == nil {
		t.Error("short frame write should fail")
	}
}

func TestWriteFrameBumpsTileGeneration(t *testing.T) {
	d := NewDevice(TestDevice)
	c := Coord{Row: 2, Col: 5}
	g0 := d.TileGeneration(c)
	major := d.MajorOfArrayCol(5)
	if err := d.WriteFrame(major, 0, make([]uint32, d.FrameWords())); err != nil {
		t.Fatal(err)
	}
	if d.TileGeneration(c) <= g0 {
		t.Error("tile generation not bumped by frame write in its column")
	}
	other := d.TileGeneration(Coord{Row: 2, Col: 6})
	if other != 0 {
		t.Error("frame write touched a tile of another column")
	}
}

func TestCellConfigRoundTrip(t *testing.T) {
	f := func(lut uint16, ff, latch, dbx, ce, init, ram, ceinv bool) bool {
		cc := CellConfig{LUT: lut, FF: ff, Latch: latch, DFromBX: dbx, CEUsed: ce, Init: init, RAM: ram, CEInv: ceinv}
		return decodeCell(cc.encode()) == cc
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCellReadWriteThroughDevice(t *testing.T) {
	d := NewDevice(TestDevice)
	ref := CellRef{Coord: Coord{Row: 4, Col: 3}, Cell: 2}
	cc := CellConfig{LUT: LUTOr2, FF: true, CEUsed: true, Init: true}
	d.WriteCell(ref, cc)
	if got := d.ReadCell(ref); got != cc {
		t.Errorf("ReadCell = %+v, want %+v", got, cc)
	}
	// The neighbour cell is untouched.
	if got := d.ReadCell(CellRef{Coord: ref.Coord, Cell: 1}); got.InUse() {
		t.Errorf("neighbour cell modified: %+v", got)
	}
	// The config lives in the tile's column frames.
	frames := d.CellConfigFrames(ref)
	if len(frames) == 0 {
		t.Fatal("no frames for cell config")
	}
	for _, fa := range frames {
		if fa.Major != d.MajorOfArrayCol(3) {
			t.Errorf("cell config frame %v outside its column", fa)
		}
	}
}

func TestLUTHelpers(t *testing.T) {
	if !LUTEval(LUTConst1, 0) || LUTEval(LUTConst0, 15) {
		t.Error("const LUTs wrong")
	}
	for v := uint8(0); v < 16; v++ {
		i0 := v&1 == 1
		i1 := v>>1&1 == 1
		if LUTEval(LUTBuf, v) != i0 {
			t.Errorf("LUTBuf(%d)", v)
		}
		if LUTEval(LUTInv, v) != !i0 {
			t.Errorf("LUTInv(%d)", v)
		}
		if LUTEval(LUTOr2, v) != (i0 || i1) {
			t.Errorf("LUTOr2(%d)", v)
		}
		if LUTEval(LUTAnd2, v) != (i0 && i1) {
			t.Errorf("LUTAnd2(%d)", v)
		}
		if LUTEval(LUTXor2, v) != (i0 != i1) {
			t.Errorf("LUTXor2(%d)", v)
		}
	}
}

func TestMuxLUT(t *testing.T) {
	lut := MuxLUT(2, 0, 1) // out = I2 ? I0 : I1
	for v := uint8(0); v < 16; v++ {
		sel := v>>2&1 == 1
		a := v&1 == 1
		b := v>>1&1 == 1
		want := b
		if sel {
			want = a
		}
		if LUTEval(lut, v) != want {
			t.Errorf("MuxLUT(%d) = %v, want %v", v, LUTEval(lut, v), want)
		}
	}
	if lut != LUTMux2 {
		t.Errorf("MuxLUT(2,0,1) = %#x, want LUTMux2 %#x", lut, LUTMux2)
	}
	or := OrLUT(0, 1)
	if or != LUTOr2 {
		t.Errorf("OrLUT(0,1) = %#x, want %#x", or, LUTOr2)
	}
}

func TestPIPMaskRoundTrip(t *testing.T) {
	d := NewDevice(TestDevice)
	c := Coord{Row: 3, Col: 4}
	sink := LocalPinI(1, 2)
	width := len(SinkSources(sink))
	mask := uint16(0b1011) & (1<<width - 1)
	d.SetPIPMask(c, sink, mask)
	if got := d.PIPMask(c, sink); got != mask {
		t.Errorf("PIPMask = %#b, want %#b", got, mask)
	}
	// Other sinks unaffected.
	if got := d.PIPMask(c, LocalPinI(1, 3)); got != 0 {
		t.Errorf("neighbour sink mask = %#b", got)
	}
}

func TestPIPMaskSurvivesFrameRoundTrip(t *testing.T) {
	// Writing a config through SetPIPMask, reading the frames out, zeroing
	// the column and writing the frames back must restore the config: the
	// relocation tool relies on frame-level copies being exact.
	d := NewDevice(TestDevice)
	c := Coord{Row: 1, Col: 2}
	sink := LocalSingle(East, 3)
	d.SetPIPMask(c, sink, 0b101)
	major := d.MajorOfArrayCol(c.Col)
	saved := make([][]uint32, FramesPerCLBColumn)
	for m := 0; m < FramesPerCLBColumn; m++ {
		fr, err := d.ReadFrame(major, m)
		if err != nil {
			t.Fatal(err)
		}
		saved[m] = fr
	}
	zero := make([]uint32, d.FrameWords())
	for m := 0; m < FramesPerCLBColumn; m++ {
		if err := d.WriteFrame(major, m, zero); err != nil {
			t.Fatal(err)
		}
	}
	if d.PIPMask(c, sink) != 0 {
		t.Fatal("mask should be cleared after zeroing column")
	}
	for m := 0; m < FramesPerCLBColumn; m++ {
		if err := d.WriteFrame(major, m, saved[m]); err != nil {
			t.Fatal(err)
		}
	}
	if got := d.PIPMask(c, sink); got != 0b101 {
		t.Errorf("mask after frame restore = %#b, want 0b101", got)
	}
}

func TestSinkSourceNodesBorderRemap(t *testing.T) {
	d := NewDevice(TestDevice)
	// Top-left tile: the straight-through sources of its southward singles
	// come from beyond the north edge and must resolve to north pads.
	c := Coord{Row: 0, Col: 3}
	sink := LocalSingle(South, 2)
	nodes := d.SinkSourceNodes(c, sink)
	foundPad := false
	for _, n := range nodes {
		if n == InvalidNode {
			continue
		}
		if pad, ok := d.PadOfNode(n); ok {
			foundPad = true
			if pad.Side != North || pad.Pos != 3 {
				t.Errorf("remapped pad = %v, want North pos 3", pad)
			}
		}
	}
	if !foundPad {
		t.Error("no pad source found on border sink")
	}
	// An interior tile resolves no pads.
	for _, n := range d.SinkSourceNodes(Coord{Row: 4, Col: 6}, sink) {
		if _, ok := d.PadOfNode(n); ok {
			t.Error("interior tile resolved a pad source")
		}
	}
}

func TestPIPBitForAndEnabledSources(t *testing.T) {
	d := NewDevice(TestDevice)
	c := Coord{Row: 4, Col: 6}
	sink := LocalPinI(0, 0)
	// Source: the local OutX(0) (template entry with DRow=DCol=0).
	src := d.NodeIDAt(c, LocalOutX(0))
	bit, ok := d.PIPBitFor(c, sink, src)
	if !ok {
		t.Fatal("OutX(0) should be a source of PinI(0,0)")
	}
	d.SetPIPMask(c, sink, 1<<bit)
	got := d.EnabledSourceNodes(c, sink)
	if len(got) != 1 || got[0] != src {
		t.Errorf("EnabledSourceNodes = %v, want [%v]", got, src)
	}
	// Enabling a second PIP yields two drivers (parallel connection).
	bit2 := (bit + 1) % len(SinkSources(sink))
	d.SetPIPMask(c, sink, 1<<bit|1<<bit2)
	if n := len(d.EnabledSourceNodes(c, sink)); n < 1 {
		t.Errorf("parallel connection lost sources: %d", n)
	}
}

func TestFanoutMatchesSources(t *testing.T) {
	d := NewDevice(TestDevice)
	// For a sample of nodes: every fanout edge must be confirmed by the
	// sink's resolved source list.
	samples := []NodeID{
		d.NodeIDAt(Coord{Row: 4, Col: 5}, LocalOutX(2)),
		d.NodeIDAt(Coord{Row: 4, Col: 5}, LocalOutXQ(0)),
		d.NodeIDAt(Coord{Row: 3, Col: 3}, LocalSingle(East, 1)),
		d.NodeIDAt(Coord{Row: 2, Col: 2}, LocalHex(South, 0)),
		d.NodeIDAt(Coord{Row: 0, Col: 0}, LocalSingle(North, 0)), // leaves array
	}
	for _, n := range samples {
		for _, e := range d.FanoutOf(n) {
			srcs := d.SinkSourceNodes(e.SinkTile, e.SinkLocal)
			if e.Bit >= len(srcs) || srcs[e.Bit] != n {
				t.Errorf("fanout edge %+v of node %d not confirmed by sink sources", e, n)
			}
		}
	}
}

func TestPadIndexRoundTrip(t *testing.T) {
	d := NewDevice(TestDevice)
	seen := map[int]bool{}
	sides := []Dir{North, South, West, East}
	for _, side := range sides {
		max := d.Cols
		if side == West || side == East {
			max = d.Rows
		}
		for pos := 0; pos < max; pos++ {
			for k := 0; k < PadsPerEdgeTile; k++ {
				p := PadRef{Side: side, Pos: pos, K: k}
				idx := d.PadIndex(p)
				if idx < 0 || idx >= d.NumPads() {
					t.Fatalf("PadIndex(%v) = %d out of range", p, idx)
				}
				if seen[idx] {
					t.Fatalf("PadIndex(%v) = %d duplicated", p, idx)
				}
				seen[idx] = true
				if got := d.PadByIndex(idx); got != p {
					t.Errorf("PadByIndex(%d) = %v, want %v", idx, got, p)
				}
				n := d.PadNodeID(p)
				if got, ok := d.PadOfNode(n); !ok || got != p {
					t.Errorf("PadOfNode(PadNodeID(%v)) = %v,%v", p, got, ok)
				}
			}
		}
	}
	if len(seen) != d.NumPads() {
		t.Errorf("enumerated %d pads, want %d", len(seen), d.NumPads())
	}
}

func TestPadConfigRoundTrip(t *testing.T) {
	d := NewDevice(TestDevice)
	pads := []PadRef{
		{Side: North, Pos: 2, K: 1},
		{Side: South, Pos: 0, K: 0},
		{Side: West, Pos: 5, K: 1},
		{Side: East, Pos: 7, K: 0},
	}
	for _, p := range pads {
		pc := PadConfig{OutMask: 0b0101, Output: true}
		d.WritePad(p, pc)
		if got := d.ReadPad(p); got != pc {
			t.Errorf("ReadPad(%v) = %+v, want %+v", p, got, pc)
		}
	}
	// Configs must not collide.
	for _, p := range pads {
		if got := d.ReadPad(p); !got.Output {
			t.Errorf("pad %v config clobbered", p)
		}
	}
	// Input pad enable.
	in := PadRef{Side: North, Pos: 2, K: 0}
	d.WritePad(in, PadConfig{Input: true})
	if !d.ReadPad(in).Input {
		t.Error("input pad enable lost")
	}
	if got := d.ReadPad(pads[0]); !got.Output {
		t.Error("sibling pad clobbered by input pad write")
	}
}

func TestPadFanoutAndOutSources(t *testing.T) {
	d := NewDevice(TestDevice)
	p := PadRef{Side: West, Pos: 3, K: 1}
	edges := d.FanoutOf(d.PadNodeID(p))
	if len(edges) == 0 {
		t.Fatal("input pad has no fanout")
	}
	for _, e := range edges {
		if e.SinkTile != (Coord{Row: 3, Col: 0}) {
			t.Errorf("pad fanout sink tile %v, want R3C0", e.SinkTile)
		}
		kind, dir, idx := DecodeLocal(e.SinkLocal)
		if kind != KindSingle || dir != East {
			t.Errorf("pad fanout sink %v/%v, want eastward single", kind, dir)
		}
		if idx%PadsPerEdgeTile != p.K {
			t.Errorf("pad fanout index %d does not match K=%d", idx, p.K)
		}
	}
	srcs := d.PadOutSourceNodes(p)
	if len(srcs) != PadOutSources {
		t.Fatalf("PadOutSourceNodes len %d", len(srcs))
	}
	for _, n := range srcs {
		c, local, ok := d.SplitNode(n)
		if !ok {
			t.Fatal("pad out source is not a tile node")
		}
		kind, dir, _ := DecodeLocal(local)
		if c != (Coord{Row: 3, Col: 0}) || kind != KindSingle || dir != West {
			t.Errorf("pad out source %v %v %v", c, kind, dir)
		}
	}
	// Enabled sources follow the mask.
	d.WritePad(p, PadConfig{OutMask: 0b0011, Output: true})
	en := d.PadEnabledSources(p)
	if len(en) != 2 || en[0] != srcs[0] || en[1] != srcs[1] {
		t.Errorf("PadEnabledSources = %v", en)
	}
}

func TestTouchedFramesGranularity(t *testing.T) {
	d := NewDevice(TestDevice)
	c := Coord{Row: 0, Col: 0}
	// One cell config (32 bits starting at a 24-bit row boundary) spans
	// exactly two frames.
	frames := d.TouchedFrames(c, [2]int{cellSlot(0), cellConfigBits})
	if len(frames) != 2 {
		t.Errorf("cell 0 config spans %d frames, want 2", len(frames))
	}
	// The whole tile spans at most FramesPerCLBColumn frames.
	all := d.TouchedFrames(c, [2]int{0, TileConfigBits})
	if len(all) > FramesPerCLBColumn {
		t.Errorf("tile spans %d frames > column size", len(all))
	}
}

func TestNodeIDSplitRoundTrip(t *testing.T) {
	d := NewDevice(TestDevice)
	f := func(r, c, l uint8) bool {
		coord := Coord{Row: int(r) % d.Rows, Col: int(c) % d.Cols}
		local := int(l) % localNodeCount
		n := d.NodeIDAt(coord, local)
		gc, gl, ok := d.SplitNode(n)
		return ok && gc == coord && gl == local
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWireDelays(t *testing.T) {
	if WireDelayNs(KindHex) <= WireDelayNs(KindSingle) {
		t.Error("hex wires must be slower than singles end-to-end per segment")
	}
	if WireDelayNs(KindOutX) != 0 {
		t.Error("outputs contribute no wire delay")
	}
}

func TestConfigBitsAccounting(t *testing.T) {
	d := NewDevice(XCV200)
	if d.ConfigBits() != d.TotalFrames()*d.FrameBits() {
		t.Error("ConfigBits inconsistent")
	}
	// The XCV200 model should hold over a megabit of configuration, in the
	// ballpark of the real part (1.3 Mb).
	if d.ConfigBits() < 1_000_000 {
		t.Errorf("XCV200 config = %d bits, implausibly small", d.ConfigBits())
	}
}

func TestConcurrentConfigAccess(t *testing.T) {
	// The device guards its configuration with a mutex: concurrent
	// readers (simulator, monitoring) during frame writes must be safe.
	d := NewDevice(TestDevice)
	done := make(chan struct{})
	go func() {
		defer close(done)
		data := make([]uint32, d.FrameWords())
		for i := 0; i < 200; i++ {
			data[0] = uint32(i)
			if err := d.WriteFrame(2, i%FramesPerCLBColumn, data); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for i := 0; i < 200; i++ {
		c := Coord{Row: i % d.Rows, Col: 1}
		_ = d.ReadCell(CellRef{Coord: c, Cell: i % CellsPerCLB})
		_ = d.PIPMask(c, LocalPinI(0, 0))
		_ = d.TileGeneration(c)
	}
	<-done
}
