package fabric

// cellConfigBits is the configuration slot width of one logic cell.
const cellConfigBits = 32

// Cell mode bit positions inside the 32-bit cell configuration word
// (bits 0..15 hold the LUT truth table).
const (
	cellBitFF     = 16 // storage element in use
	cellBitLatch  = 17 // storage element is a transparent latch
	cellBitDBX    = 18 // D input taken from BX pin instead of LUT output
	cellBitCEUsed = 19 // CE taken from the CE pin (otherwise always enabled)
	cellBitInit   = 20 // power-up / GSR state of the storage element
	cellBitRAM    = 21 // LUT operates as 16x1 distributed RAM
	cellBitCEInv  = 22 // CE pin inverted
	cellBitUsed   = 23 // cell is occupied (distinguishes a constant-0 LUT
	// from unconfigured fabric)
)

// CellConfig is the decoded configuration of one logic cell.
type CellConfig struct {
	// LUT is the 16-entry truth table; bit i is the output for input value
	// i (I3..I0 packed as bits 3..0 of the index).
	LUT uint16
	// FF enables the storage element: the XQ output carries the FF (or
	// latch) state instead of being dead.
	FF bool
	// Latch makes the storage element a transparent latch (gate = CE pin)
	// instead of a rising-edge D flip-flop.
	Latch bool
	// DFromBX feeds the storage element from the BX pin instead of the
	// LUT's combinational output.
	DFromBX bool
	// CEUsed gates the storage element with the CE pin; when false the
	// element updates on every active edge (free-running).
	CEUsed bool
	// Init is the state the storage element assumes at configuration.
	Init bool
	// RAM turns the LUT into a 16x1 distributed RAM. RAM cells cannot be
	// relocated on-line (paper §2) and must not lie in a column touched by
	// a relocation.
	RAM bool
	// CEInv inverts the CE pin.
	CEInv bool
	// Used marks the cell as occupied even when every other field is
	// zero (e.g. a constant-0 generator).
	Used bool
}

// InUse reports whether the cell carries any configuration at all.
func (cc CellConfig) InUse() bool {
	return cc.Used || cc.LUT != 0 || cc.FF || cc.RAM || cc.DFromBX
}

func (cc CellConfig) encode() uint32 {
	v := uint32(cc.LUT)
	set := func(bit int, b bool) {
		if b {
			v |= 1 << bit
		}
	}
	set(cellBitFF, cc.FF)
	set(cellBitLatch, cc.Latch)
	set(cellBitDBX, cc.DFromBX)
	set(cellBitCEUsed, cc.CEUsed)
	set(cellBitInit, cc.Init)
	set(cellBitRAM, cc.RAM)
	set(cellBitCEInv, cc.CEInv)
	set(cellBitUsed, cc.Used)
	return v
}

func decodeCell(v uint32) CellConfig {
	get := func(bit int) bool { return v>>bit&1 == 1 }
	return CellConfig{
		LUT:     uint16(v),
		FF:      get(cellBitFF),
		Latch:   get(cellBitLatch),
		DFromBX: get(cellBitDBX),
		CEUsed:  get(cellBitCEUsed),
		Init:    get(cellBitInit),
		RAM:     get(cellBitRAM),
		CEInv:   get(cellBitCEInv),
		Used:    get(cellBitUsed),
	}
}

// cellSlot returns the first configuration slot of a cell.
func cellSlot(cell int) int { return cell * cellConfigBits }

// ReadCell decodes the configuration of one logic cell.
func (d *Device) ReadCell(ref CellRef) CellConfig {
	return decodeCell(d.GetTileField(ref.Coord, cellSlot(ref.Cell), cellConfigBits))
}

// WriteCell encodes the configuration of one logic cell into the
// configuration memory (designer-level path).
func (d *Device) WriteCell(ref CellRef, cc CellConfig) {
	d.SetTileField(ref.Coord, cellSlot(ref.Cell), cellConfigBits, cc.encode())
}

// CellConfigFrames returns the frames that hold a cell's configuration.
func (d *Device) CellConfigFrames(ref CellRef) []FrameAddr {
	return d.TouchedFrames(ref.Coord, [2]int{cellSlot(ref.Cell), cellConfigBits})
}

// LUTEval evaluates a 16-bit truth table for packed inputs (I3..I0 as bits
// 3..0).
func LUTEval(lut uint16, in uint8) bool { return lut>>(in&0xF)&1 == 1 }

// ExpandLUT replicates a k-input truth table over all four LUT inputs so
// that the physical cell's output is independent of its unconnected pins.
func ExpandLUT(lut uint16, k int) uint16 {
	if k >= LUTInputs {
		return lut
	}
	span := uint16(1) << k
	var out uint16
	for v := uint16(0); v < 16; v++ {
		if lut>>(v%span)&1 == 1 {
			out |= 1 << v
		}
	}
	return out
}

// Convenience truth tables used by the auxiliary relocation circuit
// (paper Fig. 3) and by tests.
const (
	// LUTConst0 and LUTConst1 are constant generators; the relocation and
	// clock-enable control signals are "driven through the reconfiguration
	// memory" as constants of this form.
	LUTConst0 uint16 = 0x0000
	LUTConst1 uint16 = 0xFFFF
	// LUTBuf passes input I0 through.
	LUTBuf uint16 = 0xAAAA
	// LUTInv inverts input I0.
	LUTInv uint16 = 0x5555
	// LUTOr2 is I0 OR I1 (the aux circuit's clock-enable OR gate).
	LUTOr2 uint16 = 0xEEEE
	// LUTAnd2 is I0 AND I1.
	LUTAnd2 uint16 = 0x8888
	// LUTXor2 is I0 XOR I1.
	LUTXor2 uint16 = 0x6666
	// LUTMux2 selects I1 when I2=0, I0 when I2=1 (2:1 multiplexer with
	// select on I2): out = I2 ? I0 : I1.
	LUTMux2 uint16 = 0xACAC
)

// MuxLUT builds out = sel ? a : b with sel on input S, a on input A and b on
// input B (distinct input indices 0..3).
func MuxLUT(selIn, aIn, bIn int) uint16 {
	var lut uint16
	for v := 0; v < 16; v++ {
		sel := v>>selIn&1 == 1
		var out bool
		if sel {
			out = v>>aIn&1 == 1
		} else {
			out = v>>bIn&1 == 1
		}
		if out {
			lut |= 1 << v
		}
	}
	return lut
}

// OrLUT builds out = OR of the given input indices.
func OrLUT(ins ...int) uint16 {
	var lut uint16
	for v := 0; v < 16; v++ {
		out := false
		for _, in := range ins {
			if v>>in&1 == 1 {
				out = true
			}
		}
		if out {
			lut |= 1 << v
		}
	}
	return lut
}

// Encode packs the cell configuration into its 32-bit configuration word
// (exported for tools that splice cell configs into frames).
func (cc CellConfig) Encode() uint32 { return cc.encode() }

// DecodeCellConfig is the inverse of Encode.
func DecodeCellConfig(v uint32) CellConfig { return decodeCell(v) }
