package fabric

import "fmt"

// PIPMask returns the enabled-source bitmask of a sink. Bit b corresponds to
// SinkSources(sinkLocal)[b]. More than one bit may be set: the fabric then
// shorts several drivers onto the sink, which is exactly how the relocation
// procedure "places signals in parallel".
func (d *Device) PIPMask(c Coord, sinkLocal int) uint16 {
	if !IsLocalSink(sinkLocal) {
		return 0
	}
	return uint16(d.GetTileField(c, d.pipOffset[sinkLocal], d.pipWidth[sinkLocal]))
}

// SetPIPMask overwrites the enabled-source bitmask of a sink
// (designer-level path).
func (d *Device) SetPIPMask(c Coord, sinkLocal int, mask uint16) {
	if !IsLocalSink(sinkLocal) {
		panic(fmt.Sprintf("fabric: local %d is not a sink", sinkLocal))
	}
	d.SetTileField(c, d.pipOffset[sinkLocal], d.pipWidth[sinkLocal], uint32(mask))
}

// PIPSlotRange returns the tile slot range [start, start+width) that holds a
// sink's PIP mask; bitstream-level code uses it to compute frame edits.
func (d *Device) PIPSlotRange(sinkLocal int) (start, width int) {
	return d.pipOffset[sinkLocal], d.pipWidth[sinkLocal]
}

// CellSlotRange returns the tile slot range of a cell's configuration.
func (d *Device) CellSlotRange(cell int) (start, width int) {
	return cellSlot(cell), cellConfigBits
}

// BitAddr maps a tile configuration slot to its frame location.
func (d *Device) BitAddr(c Coord, slot int) (major, minor, bit int) {
	return d.tileBitAddr(c, slot)
}

// resolveSource turns a template SourceRef of a sink at tile c into a
// device-wide NodeID, applying the border rule: an out-of-array single wire
// pointing back into the array is an IOB pad input. Returns InvalidNode for
// unconnectable template slots (e.g. hex wires beyond the border).
func (d *Device) resolveSource(c Coord, ref SourceRef) NodeID {
	st := Coord{Row: c.Row + ref.DRow, Col: c.Col + ref.DCol}
	if d.InBounds(st) {
		return d.NodeIDAt(st, ref.Local)
	}
	kind, dir, idx := DecodeLocal(ref.Local)
	if kind != KindSingle {
		return InvalidNode
	}
	if !d.InBounds(st.Step(dir, 1)) {
		return InvalidNode // does not point back into the array
	}
	pad, ok := d.padAtEdge(st, idx%PadsPerEdgeTile)
	if !ok {
		return InvalidNode
	}
	return d.PadNodeID(pad)
}

// padAtEdge maps an out-of-bounds tile one step beyond the array to the pad
// position there.
func (d *Device) padAtEdge(st Coord, k int) (PadRef, bool) {
	switch {
	case st.Row == -1 && st.Col >= 0 && st.Col < d.Cols:
		return PadRef{Side: North, Pos: st.Col, K: k}, true
	case st.Row == d.Rows && st.Col >= 0 && st.Col < d.Cols:
		return PadRef{Side: South, Pos: st.Col, K: k}, true
	case st.Col == -1 && st.Row >= 0 && st.Row < d.Rows:
		return PadRef{Side: West, Pos: st.Row, K: k}, true
	case st.Col == d.Cols && st.Row >= 0 && st.Row < d.Rows:
		return PadRef{Side: East, Pos: st.Row, K: k}, true
	}
	return PadRef{}, false
}

// SinkSourceNodes resolves the full PIP source list of a sink to device-wide
// NodeIDs; unconnectable slots are InvalidNode. Index b matches mask bit b.
func (d *Device) SinkSourceNodes(c Coord, sinkLocal int) []NodeID {
	refs := SinkSources(sinkLocal)
	out := make([]NodeID, len(refs))
	for i, ref := range refs {
		out[i] = d.resolveSource(c, ref)
	}
	return out
}

// EnabledSourceNodes returns the drivers currently connected to a sink.
func (d *Device) EnabledSourceNodes(c Coord, sinkLocal int) []NodeID {
	mask := d.PIPMask(c, sinkLocal)
	if mask == 0 {
		return nil
	}
	refs := SinkSources(sinkLocal)
	var out []NodeID
	for b := range refs {
		if mask>>b&1 == 1 {
			if n := d.resolveSource(c, refs[b]); n != InvalidNode {
				out = append(out, n)
			}
		}
	}
	return out
}

// PIPBitFor finds the mask bit of a sink that selects the given source node.
func (d *Device) PIPBitFor(c Coord, sinkLocal int, source NodeID) (int, bool) {
	refs := SinkSources(sinkLocal)
	for b, ref := range refs {
		if d.resolveSource(c, ref) == source {
			return b, true
		}
	}
	return 0, false
}

// fanoutTemplate[L] lists, for a source with local id L, the sinks that can
// select it: the sink tile is at relative offset (DRow, DCol) from the
// source tile.
type fanoutRef struct {
	DRow, DCol int
	SinkLocal  int
	Bit        int
}

var fanoutTemplate [localNodeCount][]fanoutRef

func init() {
	for s := 0; s < sinkCount; s++ {
		for b, ref := range sinkSources[s] {
			fanoutTemplate[ref.Local] = append(fanoutTemplate[ref.Local], fanoutRef{
				DRow: -ref.DRow, DCol: -ref.DCol, SinkLocal: s, Bit: b,
			})
		}
	}
}

// PIPEdge is one programmable connection from a source node to a sink node.
type PIPEdge struct {
	SinkTile  Coord
	SinkLocal int
	Bit       int // mask bit in the sink's PIP mask
	Sink      NodeID
}

// FanoutOf enumerates every PIP whose source is the given node: where a
// signal on this node can go next. Pad nodes fan out into the border tile's
// inward single wires; other nodes use the reverse sink templates.
func (d *Device) FanoutOf(n NodeID) []PIPEdge {
	if n >= d.PadBase() {
		pad, ok := d.PadOfNode(n)
		if !ok {
			return nil
		}
		return d.padFanout(pad)
	}
	c, local, _ := d.SplitNode(n)
	var out []PIPEdge
	for _, fr := range fanoutTemplate[local] {
		st := Coord{Row: c.Row + fr.DRow, Col: c.Col + fr.DCol}
		if !d.InBounds(st) {
			continue
		}
		out = append(out, PIPEdge{
			SinkTile:  st,
			SinkLocal: fr.SinkLocal,
			Bit:       fr.Bit,
			Sink:      d.NodeIDAt(st, fr.SinkLocal),
		})
	}
	return out
}

// HasEnabledFanout reports whether any PIP whose source is the given node is
// currently enabled — i.e. some sink's mask selects it. It is the
// allocation-free counterpart of scanning FanoutOf for enabled edges;
// incremental occupancy maintenance calls it per touched node, so it must not
// allocate.
func (d *Device) HasEnabledFanout(n NodeID) bool {
	if n >= d.PadBase() {
		pad, ok := d.PadOfNode(n)
		if !ok {
			return false
		}
		// A pad can be selected by any sink of its border tile whose source
		// template resolves across the array edge — inward singles are the
		// routed case, but border-tile pins reach pads directly too. Every
		// enabled bit must be resolved (not PIPBitFor's first match): at the
		// border, distinct template slots of one sink can collapse onto the
		// same pad node.
		tile, _ := d.padBorderTile(pad)
		d.mu.RLock()
		defer d.mu.RUnlock()
		for s := 0; s < sinkCount; s++ {
			mask := uint16(d.getTileFieldLocked(tile, d.pipOffset[s], d.pipWidth[s]))
			if mask == 0 {
				continue
			}
			refs := sinkSources[s]
			for b := range refs {
				if mask>>b&1 == 1 && d.resolveSource(tile, refs[b]) == n {
					return true
				}
			}
		}
		return false
	}
	// One lock acquisition and one single-bit probe per fanout edge — this
	// runs per node touched by the incremental view, so the per-edge
	// full-mask read (and its per-call lock) was the view's hottest path.
	c, local, _ := d.SplitNode(n)
	d.mu.RLock()
	defer d.mu.RUnlock()
	for _, fr := range fanoutTemplate[local] {
		st := Coord{Row: c.Row + fr.DRow, Col: c.Col + fr.DCol}
		if !d.InBounds(st) {
			continue
		}
		major, minor, bit := d.tileBitAddr(st, d.pipOffset[fr.SinkLocal]+fr.Bit)
		if d.getBitLocked(d.frameBase[major]+minor, bit) {
			return true
		}
	}
	return false
}

// padFanout lists the border-tile sinks a pad input can drive.
func (d *Device) padFanout(pad PadRef) []PIPEdge {
	tile, inward := d.padBorderTile(pad)
	padNode := d.PadNodeID(pad)
	var out []PIPEdge
	for i := 0; i < SinglesPerDir; i++ {
		if i%PadsPerEdgeTile != pad.K {
			continue
		}
		sink := LocalSingle(inward, i)
		if bit, ok := d.PIPBitFor(tile, sink, padNode); ok {
			out = append(out, PIPEdge{SinkTile: tile, SinkLocal: sink, Bit: bit, Sink: d.NodeIDAt(tile, sink)})
		}
	}
	return out
}

// padBorderTile returns the array tile adjacent to a pad and the direction
// pointing from the pad into the array.
func (d *Device) padBorderTile(pad PadRef) (Coord, Dir) {
	switch pad.Side {
	case North:
		return Coord{Row: 0, Col: pad.Pos}, South
	case South:
		return Coord{Row: d.Rows - 1, Col: pad.Pos}, North
	case West:
		return Coord{Row: pad.Pos, Col: 0}, East
	default:
		return Coord{Row: pad.Pos, Col: d.Cols - 1}, West
	}
}
