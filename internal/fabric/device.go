package fabric

import (
	"fmt"
	"strings"
	"sync"
)

// ColumnKind distinguishes the configuration column types of the device.
type ColumnKind uint8

const (
	// ColClock is the single centre clock column.
	ColClock ColumnKind = iota
	// ColCLB is a CLB column (one per array column).
	ColCLB
	// ColIOB is one of the two vertical IOB columns (left, right).
	ColIOB
	// ColBRAM is a block-RAM content column (size accounting only).
	ColBRAM
)

var colKindNames = [...]string{"CLOCK", "CLB", "IOB", "BRAM"}

func (k ColumnKind) String() string { return colKindNames[k] }

// Column describes one configuration column of the device.
type Column struct {
	Kind   ColumnKind
	Major  int // major frame address
	Frames int // number of frames (minor addresses)
	// ArrayCol is the CLB array column this configuration column carries
	// (only for ColCLB).
	ArrayCol int
}

// Preset names a supported device geometry.
type Preset struct {
	Name string
	Rows int
	Cols int
}

// Device presets. XCV200 is the device used in the paper's experiments.
var (
	// TestDevice is a small array for fast unit tests.
	TestDevice = Preset{Name: "TEST12x8", Rows: 8, Cols: 12}
	// XCV50 approximates the smallest Virtex part (16x24 CLBs).
	XCV50 = Preset{Name: "XCV50", Rows: 16, Cols: 24}
	// XCV200 approximates the paper's device (28x42 CLBs).
	XCV200 = Preset{Name: "XCV200", Rows: 28, Cols: 42}
	// XCV800 approximates a large Virtex part (56x84 CLBs).
	XCV800 = Preset{Name: "XCV800", Rows: 56, Cols: 84}
)

// Presets lists every device preset, smallest first.
var Presets = []Preset{TestDevice, XCV50, XCV200, XCV800}

// PresetByName looks a preset up by its (case-insensitive) name.
func PresetByName(name string) (Preset, bool) {
	for _, p := range Presets {
		if strings.EqualFold(p.Name, name) {
			return p, true
		}
	}
	return Preset{}, false
}

// PadsPerEdgeTile is the number of IOB pads attached per border tile edge
// position.
const PadsPerEdgeTile = 2

// Device is a Virtex-class FPGA: geometry, configuration memory, and the
// mapping between configuration bits and fabric resources. All mutation of
// device behaviour happens by writing configuration frames (or the bit-level
// helpers layered on them), exactly as on real silicon.
type Device struct {
	Preset
	mu sync.RWMutex

	columns    []Column
	majorOfCol []int // array column -> major address
	frameBase  []int // major -> linear index of its first frame
	frameWords int   // uniform frame length in 32-bit words
	frameBits  int   // uniform frame length in bits
	frames     [][]uint32
	// frameGen[i] is the generation at which frame i last changed;
	// addrOfFrame maps the linear frame index back to its address. Together
	// they let host-side tools synchronise shadow copies frame-by-frame
	// instead of re-reading the whole configuration.
	frameGen    []uint64
	addrOfFrame []FrameAddr

	// pipOffset[sinkLocal] is the bit offset of the sink's PIP mask within
	// the tile's configuration slot space; pipWidth its width.
	pipOffset [sinkCount]int
	pipWidth  [sinkCount]int

	// tileGen is bumped whenever configuration covering the tile changes;
	// simulators use it for incremental re-derivation.
	tileGen []uint64
	padGen  uint64
	gen     uint64
}

// NewDevice builds a device with all configuration memory zeroed.
func NewDevice(p Preset) *Device {
	d := &Device{Preset: p}
	d.frameBits = (p.Rows + 2) * BitsPerTileRow
	d.frameWords = (d.frameBits + 31) / 32

	// Column layout: clock, CLB columns left to right, two IOB columns,
	// two BRAM content columns. Majors are assigned sequentially.
	d.majorOfCol = make([]int, p.Cols)
	major := 0
	add := func(kind ColumnKind, frames, arrayCol int) {
		d.columns = append(d.columns, Column{Kind: kind, Major: major, Frames: frames, ArrayCol: arrayCol})
		major++
	}
	add(ColClock, FramesPerClockColumn, -1)
	for c := 0; c < p.Cols; c++ {
		d.majorOfCol[c] = major
		add(ColCLB, FramesPerCLBColumn, c)
	}
	add(ColIOB, FramesPerIOBColumn, -1)
	add(ColIOB, FramesPerIOBColumn, -1)
	add(ColBRAM, 64, -1)
	add(ColBRAM, 64, -1)

	d.frames = make([][]uint32, 0, d.totalFrames())
	d.frameBase = make([]int, len(d.columns))
	for _, col := range d.columns {
		d.frameBase[col.Major] = len(d.frames)
		for i := 0; i < col.Frames; i++ {
			d.frames = append(d.frames, make([]uint32, d.frameWords))
			d.addrOfFrame = append(d.addrOfFrame, FrameAddr{Major: col.Major, Minor: i})
		}
	}
	d.frameGen = make([]uint64, len(d.frames))
	d.tileGen = make([]uint64, p.Rows*p.Cols)

	// Variable-width PIP mask packing after the 128 logic bits.
	off := CellsPerCLB * cellConfigBits
	for s := 0; s < sinkCount; s++ {
		d.pipOffset[s] = off
		d.pipWidth[s] = len(sinkSources[s])
		off += d.pipWidth[s]
	}
	if off > TileConfigBits {
		panic(fmt.Sprintf("fabric: tile config needs %d bits, have %d", off, TileConfigBits))
	}
	return d
}

// Columns returns the configuration column table.
func (d *Device) Columns() []Column { return d.columns }

// FrameWords returns the uniform frame length in 32-bit words.
func (d *Device) FrameWords() int { return d.frameWords }

// FrameBits returns the uniform frame length in bits.
func (d *Device) FrameBits() int { return d.frameBits }

// NumMajors returns the number of configuration columns.
func (d *Device) NumMajors() int { return len(d.columns) }

// MajorOfArrayCol returns the major address of the CLB column carrying
// array column c.
func (d *Device) MajorOfArrayCol(c int) int { return d.majorOfCol[c] }

// ColumnByMajor returns the column descriptor for a major address.
func (d *Device) ColumnByMajor(major int) (Column, bool) {
	if major < 0 || major >= len(d.columns) {
		return Column{}, false
	}
	return d.columns[major], true
}

func (d *Device) totalFrames() int {
	n := 0
	for _, c := range d.columns {
		n += c.Frames
	}
	return n
}

// TotalFrames returns the total frame count of the device.
func (d *Device) TotalFrames() int { return len(d.frames) }

// ConfigBits returns the total size of the configuration memory in bits.
func (d *Device) ConfigBits() int { return len(d.frames) * d.frameBits }

func (d *Device) frameIndex(major, minor int) (int, error) {
	if major < 0 || major >= len(d.columns) {
		return 0, fmt.Errorf("fabric: major %d out of range [0,%d)", major, len(d.columns))
	}
	col := d.columns[major]
	if minor < 0 || minor >= col.Frames {
		return 0, fmt.Errorf("fabric: minor %d out of range [0,%d) in major %d", minor, col.Frames, major)
	}
	return d.frameBase[major] + minor, nil
}

// ReadFrame copies one configuration frame out of the device.
func (d *Device) ReadFrame(major, minor int) ([]uint32, error) {
	idx, err := d.frameIndex(major, minor)
	if err != nil {
		return nil, err
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]uint32, d.frameWords)
	copy(out, d.frames[idx])
	return out, nil
}

// WriteFrame overwrites one configuration frame. Writing a frame marks every
// tile of the column stale for simulation purposes, even when the data is
// identical: rewriting identical bits is glitch-free on the fabric (a
// property the relocation procedure depends on), and the simulator verifies
// that by re-deriving and comparing.
func (d *Device) WriteFrame(major, minor int, data []uint32) error {
	_, err := d.writeFrame(major, minor, data, true)
	return err
}

func (d *Device) writeFrame(major, minor int, data []uint32, force bool) (bool, error) {
	idx, err := d.frameIndex(major, minor)
	if err != nil {
		return false, err
	}
	if len(data) != d.frameWords {
		return false, fmt.Errorf("fabric: frame data length %d, want %d words", len(data), d.frameWords)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	cur := d.frames[idx]
	if !force {
		same := true
		for i, w := range data {
			if cur[i] != w {
				same = false
				break
			}
		}
		if same {
			return false, nil
		}
	}
	copy(cur, data)
	d.touchColumnLocked(major)
	d.frameGen[idx] = d.gen
	return true, nil
}

// WriteFrameIfChanged writes one configuration frame only when the data
// differs from the current content, reporting whether anything changed. A
// no-delta write bumps no generation counter and marks nothing stale — the
// configuration logic uses it to deliver partial bitstreams whose frames were
// already staged write-through, so a background shift-out re-delivering
// staged data is invisible to host-side generation tracking (and performs
// only reads of the configuration memory).
func (d *Device) WriteFrameIfChanged(major, minor int, data []uint32) (bool, error) {
	return d.writeFrame(major, minor, data, false)
}

func (d *Device) touchColumnLocked(major int) {
	d.gen++
	col := d.columns[major]
	switch col.Kind {
	case ColCLB:
		for r := 0; r < d.Rows; r++ {
			d.tileGen[r*d.Cols+col.ArrayCol] = d.gen
		}
		d.padGen = d.gen // pseudo-rows carry top/bottom pads
	case ColIOB:
		d.padGen = d.gen
	}
}

// Generation returns the global configuration generation counter.
func (d *Device) Generation() uint64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.gen
}

// FramesChangedSince returns the addresses of every frame written after the
// given generation, in frame-address order. Host-side shadow copies use it
// to re-read only what moved — rollback and synchronisation state stays
// proportional to the change, not to the device.
func (d *Device) FramesChangedSince(gen uint64) []FrameAddr {
	d.mu.RLock()
	defer d.mu.RUnlock()
	var out []FrameAddr
	for i, g := range d.frameGen {
		if g > gen {
			out = append(out, d.addrOfFrame[i])
		}
	}
	return out
}

// TileGeneration returns the configuration generation of one tile.
func (d *Device) TileGeneration(c Coord) uint64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.tileGen[c.Row*d.Cols+c.Col]
}

// PadGeneration returns the configuration generation of the IOB ring.
func (d *Device) PadGeneration() uint64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.padGen
}

// InBounds reports whether a coordinate addresses a CLB on the array.
func (d *Device) InBounds(c Coord) bool {
	return c.Row >= 0 && c.Row < d.Rows && c.Col >= 0 && c.Col < d.Cols
}

// TileIndex returns the linear index of a tile.
func (d *Device) TileIndex(c Coord) int { return c.Row*d.Cols + c.Col }

// CoordOfTile is the inverse of TileIndex.
func (d *Device) CoordOfTile(idx int) Coord {
	return Coord{Row: idx / d.Cols, Col: idx % d.Cols}
}

// NodeIDAt packs a tile-local routing node into a device-wide NodeID.
func (d *Device) NodeIDAt(c Coord, local int) NodeID {
	return NodeID(d.TileIndex(c)*NodeSlots + local)
}

// PadBase returns the first NodeID used for IOB pads.
func (d *Device) PadBase() NodeID { return NodeID(d.Rows * d.Cols * NodeSlots) }

// SplitNode splits a NodeID into tile coordinate and local id; ok is false
// for pad nodes.
func (d *Device) SplitNode(n NodeID) (Coord, int, bool) {
	if n >= d.PadBase() {
		return Coord{}, 0, false
	}
	return d.CoordOfTile(int(n) / NodeSlots), int(n) % NodeSlots, true
}

// --- bit-level access to a tile's configuration slot space ---------------

// tileBitAddr maps (tile, slot) to (major, minor, bit offset inside frame).
// Tile r of column c stores slot s at frame minor s/BitsPerTileRow, bit
// r*BitsPerTileRow + s%BitsPerTileRow.
func (d *Device) tileBitAddr(c Coord, slot int) (major, minor, bit int) {
	major = d.majorOfCol[c.Col]
	minor = slot / BitsPerTileRow
	bit = c.Row*BitsPerTileRow + slot%BitsPerTileRow
	return
}

func (d *Device) getBitLocked(frameIdx, bit int) bool {
	return d.frames[frameIdx][bit/32]>>(bit%32)&1 == 1
}

func (d *Device) setBitLocked(frameIdx, bit int, v bool) {
	if v {
		d.frames[frameIdx][bit/32] |= 1 << (bit % 32)
	} else {
		d.frames[frameIdx][bit/32] &^= 1 << (bit % 32)
	}
}

// GetTileField reads width bits starting at a tile slot, LSB first.
func (d *Device) GetTileField(c Coord, slot, width int) uint32 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.getTileFieldLocked(c, slot, width)
}

func (d *Device) getTileFieldLocked(c Coord, slot, width int) uint32 {
	// Hoist the frame lookup out of the bit loop: consecutive slots share a
	// frame until the slot index crosses a BitsPerTileRow boundary, so the
	// frame (and the bit base within it) is resolved once per run. This
	// path sits under every PIP-mask and cell-config read — the hottest
	// loop of the occupancy view and the router's free-resource checks.
	var v uint32
	base := d.frameBase[d.majorOfCol[c.Col]]
	rowBase := c.Row * BitsPerTileRow
	i := 0
	for i < width {
		s := slot + i
		off := s % BitsPerTileRow
		n := BitsPerTileRow - off
		if n > width-i {
			n = width - i
		}
		frame := d.frames[base+s/BitsPerTileRow]
		for k := 0; k < n; k++ {
			bit := rowBase + off + k
			if frame[bit/32]>>(bit%32)&1 == 1 {
				v |= 1 << (i + k)
			}
		}
		i += n
	}
	return v
}

// SetTileField writes width bits starting at a tile slot, LSB first, and
// marks the tile stale. This is the "designer-level" mutation path used by
// initial placement; the relocation tool goes through frames instead.
func (d *Device) SetTileField(c Coord, slot, width int, v uint32) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.gen++
	d.setTileFieldLocked(c, slot, width, v)
	d.tileGen[d.TileIndex(c)] = d.gen
}

func (d *Device) setTileFieldLocked(c Coord, slot, width int, v uint32) {
	for i := 0; i < width; i++ {
		major, minor, bit := d.tileBitAddr(c, slot+i)
		idx, _ := d.frameIndex(major, minor)
		d.setBitLocked(idx, bit, v>>i&1 == 1)
		d.frameGen[idx] = d.gen
	}
}

// TouchedFrames returns the distinct (major, minor) frames that hold the
// given tile slots — the frame cost of changing those bits. Slot ranges are
// given as [start, start+width) pairs.
func (d *Device) TouchedFrames(c Coord, ranges ...[2]int) []FrameAddr {
	seen := map[FrameAddr]bool{}
	var out []FrameAddr
	for _, rg := range ranges {
		for s := rg[0]; s < rg[0]+rg[1]; s++ {
			major, minor, _ := d.tileBitAddr(c, s)
			fa := FrameAddr{Major: major, Minor: minor}
			if !seen[fa] {
				seen[fa] = true
				out = append(out, fa)
			}
		}
	}
	return out
}

// FrameAddr addresses one configuration frame.
type FrameAddr struct {
	Major, Minor int
}

func (f FrameAddr) String() string { return fmt.Sprintf("F%d.%d", f.Major, f.Minor) }
