package fabric

import "fmt"

// NodeKind classifies a local routing-graph node inside one tile.
type NodeKind uint8

const (
	// KindSingle is the start of a single-length wire leaving the tile.
	KindSingle NodeKind = iota
	// KindHex is the start of a hex-length (six tile) wire leaving the tile.
	KindHex
	// KindPinI is a LUT input pin of one cell (I0..I3).
	KindPinI
	// KindPinBX is the direct FF-bypass input pin of one cell.
	KindPinBX
	// KindPinCE is the clock-enable input pin of one cell.
	KindPinCE
	// KindOutX is the combinational (LUT) output of one cell.
	KindOutX
	// KindOutXQ is the registered (FF/latch) output of one cell.
	KindOutXQ
	// KindPad is an IOB pad node on the device periphery.
	KindPad
)

var kindNames = [...]string{"SGL", "HEX", "I", "BX", "CE", "X", "XQ", "PAD"}

func (k NodeKind) String() string { return kindNames[k] }

// Local node id layout within one tile. Wire starts and input pins are
// configuration sinks (they have a PIP mask); cell outputs are pure sources.
const (
	localSingleBase = 0                                     // 4 dirs x SinglesPerDir
	localHexBase    = localSingleBase + 4*SinglesPerDir     // 4 dirs x HexesPerDir
	localPinIBase   = localHexBase + 4*HexesPerDir          // CellsPerCLB x LUTInputs
	localPinBXBase  = localPinIBase + CellsPerCLB*LUTInputs // CellsPerCLB
	localPinCEBase  = localPinBXBase + CellsPerCLB          // CellsPerCLB
	localOutXBase   = localPinCEBase + CellsPerCLB          // CellsPerCLB
	localOutXQBase  = localOutXBase + CellsPerCLB           // CellsPerCLB
	localNodeCount  = localOutXQBase + CellsPerCLB          // total locals per tile
	sinkCount       = localOutXBase                         // locals [0,sinkCount) are sinks
	// NodeSlots is the node-id stride per tile (locals padded to a fixed
	// power-of-two-ish stride for cheap packing).
	NodeSlots = 96
)

// NodeID identifies a routing-graph node device-wide. Tile-local nodes are
// packed as tileIndex*NodeSlots+local; IOB pads live above PadBase.
type NodeID uint32

// InvalidNode is the zero-value "no node" sentinel.
const InvalidNode NodeID = 0xFFFFFFFF

// LocalSingle returns the local id of the single-wire start (d, i).
func LocalSingle(d Dir, i int) int { return localSingleBase + int(d)*SinglesPerDir + i }

// LocalHex returns the local id of the hex-wire start (d, j).
func LocalHex(d Dir, j int) int { return localHexBase + int(d)*HexesPerDir + j }

// LocalPinI returns the local id of LUT input pin k of the given cell.
func LocalPinI(cell, k int) int { return localPinIBase + cell*LUTInputs + k }

// LocalPinBX returns the local id of the BX pin of the given cell.
func LocalPinBX(cell int) int { return localPinBXBase + cell }

// LocalPinCE returns the local id of the CE pin of the given cell.
func LocalPinCE(cell int) int { return localPinCEBase + cell }

// LocalOutX returns the local id of the combinational output of the cell.
func LocalOutX(cell int) int { return localOutXBase + cell }

// LocalOutXQ returns the local id of the registered output of the cell.
func LocalOutXQ(cell int) int { return localOutXQBase + cell }

// DecodeLocal splits a local node id into its kind and parameters.
// For wires it returns (kind, dir, index); for pins and outputs dir is 0 and
// index encodes cell*LUTInputs+k for KindPinI or the cell number otherwise.
func DecodeLocal(local int) (kind NodeKind, d Dir, index int) {
	switch {
	case local < localHexBase:
		l := local - localSingleBase
		return KindSingle, Dir(l / SinglesPerDir), l % SinglesPerDir
	case local < localPinIBase:
		l := local - localHexBase
		return KindHex, Dir(l / HexesPerDir), l % HexesPerDir
	case local < localPinBXBase:
		return KindPinI, 0, local - localPinIBase
	case local < localPinCEBase:
		return KindPinBX, 0, local - localPinBXBase
	case local < localOutXBase:
		return KindPinCE, 0, local - localPinCEBase
	case local < localOutXQBase:
		return KindOutX, 0, local - localOutXBase
	default:
		return KindOutXQ, 0, local - localOutXQBase
	}
}

// IsSink reports whether a local node id is a configuration sink (has PIPs).
func IsLocalSink(local int) bool { return local >= 0 && local < sinkCount }

// SourceRef describes one candidate driver of a sink, relative to the
// sink's tile: the source node lives DRow/DCol tiles away.
type SourceRef struct {
	DRow, DCol int
	Local      int
}

// sinkSources is the translation-invariant PIP template: for each sink
// local id, the ordered list of candidate sources. The PIP mask bit i of a
// sink corresponds to sinkSources[sink][i]. Border tiles simply cannot
// enable PIPs whose source tile falls outside the array.
var sinkSources [sinkCount][]SourceRef

// maxPIPsPerSink caps the per-sink PIP count; the configuration encoding
// reserves exactly this many bits per sink.
const maxPIPsPerSink = 16

// HexSpan is the tile span of a hex wire — the farthest any PIP template
// reaches across the array. Derived occupancy structures use it to bound
// how far a configuration change can affect node usage.
const HexSpan = 6

func init() {
	buildSinkTemplates()
}

func buildSinkTemplates() {
	// Single-wire starts.
	for d := Dir(0); d < 4; d++ {
		for i := 0; i < SinglesPerDir; i++ {
			sink := LocalSingle(d, i)
			var src []SourceRef
			// Local cell outputs.
			src = append(src,
				here(LocalOutX(i%CellsPerCLB)),
				here(LocalOutXQ(i%CellsPerCLB)),
				here(LocalOutX((i+1)%CellsPerCLB)),
				here(LocalOutXQ((i+3)%CellsPerCLB)),
			)
			// Straight-through singles from the tile behind (same index and
			// index+4), letting signals continue in the same direction.
			back := d.Opposite()
			src = append(src,
				from(back, LocalSingle(d, i)),
				from(back, LocalSingle(d, (i+4)%SinglesPerDir)),
			)
			// Turning singles: a wire arriving from the left turns right
			// into this direction with an index shuffle of +1/-1 so that
			// multi-hop routes can reach every index class.
			src = append(src,
				from(d.Left().Opposite(), LocalSingle(d.Left(), (i+SinglesPerDir-1)%SinglesPerDir)),
				from(d.Right().Opposite(), LocalSingle(d.Right(), (i+1)%SinglesPerDir)),
			)
			// Hex arriving straight-through six tiles back.
			src = append(src, SourceRef{
				DRow:  -HexSpan * d.DeltaRow(),
				DCol:  -HexSpan * d.DeltaCol(),
				Local: LocalHex(d, i%HexesPerDir),
			})
			sinkSources[sink] = src
		}
	}
	// Hex-wire starts.
	for d := Dir(0); d < 4; d++ {
		for j := 0; j < HexesPerDir; j++ {
			sink := LocalHex(d, j)
			back := d.Opposite()
			src := []SourceRef{
				here(LocalOutXQ(j % CellsPerCLB)),
				here(LocalOutX(j % CellsPerCLB)),
				from(back, LocalSingle(d, j)),
				from(back, LocalSingle(d, j+HexesPerDir)),
				from(d.Left().Opposite(), LocalSingle(d.Left(), j)),
				from(d.Right().Opposite(), LocalSingle(d.Right(), j)),
				{DRow: -HexSpan * d.DeltaRow(), DCol: -HexSpan * d.DeltaCol(), Local: LocalHex(d, j)},
			}
			sinkSources[sink] = src
		}
	}
	// LUT input pins.
	for cell := 0; cell < CellsPerCLB; cell++ {
		for k := 0; k < LUTInputs; k++ {
			sink := LocalPinI(cell, k)
			p := cell*LUTInputs + k
			src := []SourceRef{
				here(LocalOutX(p % CellsPerCLB)),
				here(LocalOutX((p + 1) % CellsPerCLB)),
				here(LocalOutXQ(p % CellsPerCLB)),
				here(LocalOutXQ((p + 2) % CellsPerCLB)),
			}
			for d := Dir(0); d < 4; d++ {
				// Singles arriving at this tile travelling direction d
				// started one tile behind.
				src = append(src,
					from(d.Opposite(), LocalSingle(d, p%SinglesPerDir)),
					from(d.Opposite(), LocalSingle(d, (p+3)%SinglesPerDir)),
				)
			}
			for d := Dir(0); d < 4; d++ {
				idx := p % HexesPerDir
				if d == South || d == West {
					idx = (p + 1) % HexesPerDir
				}
				src = append(src, SourceRef{
					DRow:  -HexSpan * d.DeltaRow(),
					DCol:  -HexSpan * d.DeltaCol(),
					Local: LocalHex(d, idx),
				})
				if len(src) == maxPIPsPerSink {
					break
				}
			}
			sinkSources[sink] = src
		}
	}
	// BX pins: reachable from singles on every side (two index classes)
	// plus one hex per side, giving relocation transfer paths headroom.
	for cell := 0; cell < CellsPerCLB; cell++ {
		sink := LocalPinBX(cell)
		var src []SourceRef
		for d := Dir(0); d < 4; d++ {
			src = append(src,
				from(d.Opposite(), LocalSingle(d, (cell*2)%SinglesPerDir)),
				from(d.Opposite(), LocalSingle(d, (cell*2+1)%SinglesPerDir)),
			)
		}
		for d := Dir(0); d < 4; d++ {
			src = append(src, SourceRef{
				DRow: -HexSpan * d.DeltaRow(), DCol: -HexSpan * d.DeltaCol(),
				Local: LocalHex(d, cell%HexesPerDir),
			})
		}
		sinkSources[sink] = src
	}
	// CE pins: reachable from singles and one hex per side.
	for cell := 0; cell < CellsPerCLB; cell++ {
		sink := LocalPinCE(cell)
		var src []SourceRef
		for d := Dir(0); d < 4; d++ {
			src = append(src,
				from(d.Opposite(), LocalSingle(d, (cell+4)%SinglesPerDir)),
				from(d.Opposite(), LocalSingle(d, cell%SinglesPerDir)),
			)
		}
		for d := Dir(0); d < 4; d++ {
			src = append(src, SourceRef{
				DRow: -HexSpan * d.DeltaRow(), DCol: -HexSpan * d.DeltaCol(),
				Local: LocalHex(d, (cell+2)%HexesPerDir),
			})
		}
		sinkSources[sink] = src
	}
	for sink, src := range sinkSources {
		if len(src) > maxPIPsPerSink {
			panic(fmt.Sprintf("fabric: sink %d has %d sources, max %d", sink, len(src), maxPIPsPerSink))
		}
	}
}

func here(local int) SourceRef { return SourceRef{Local: local} }

// from returns a source one tile away: the wire arrived here travelling
// direction travel, so its origin tile is one step back along travel.
func from(back Dir, local int) SourceRef {
	return SourceRef{DRow: back.DeltaRow(), DCol: back.DeltaCol(), Local: local}
}

// SinkSources returns the PIP source template of a sink local id. The
// returned slice must not be modified.
func SinkSources(local int) []SourceRef {
	if !IsLocalSink(local) {
		return nil
	}
	return sinkSources[local]
}

// WireDelayNs returns the intrinsic propagation delay contributed by a node,
// in nanoseconds. Wire segments dominate; pins add a small buffer delay.
// These values drive the paper's Fig. 6 fuzziness-interval experiment.
func WireDelayNs(kind NodeKind) float64 {
	switch kind {
	case KindSingle:
		return 0.35
	case KindHex:
		return 1.10
	case KindPinI, KindPinBX, KindPinCE:
		return 0.05
	case KindPad:
		return 0.50
	default:
		return 0
	}
}
