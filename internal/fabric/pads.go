package fabric

import "fmt"

// PadRef addresses one IOB pad on the device periphery. Side names the edge
// (North = top edge); Pos is the column (North/South) or row (West/East) of
// the border tile the pad attaches to; K distinguishes the PadsPerEdgeTile
// pads sharing one position.
type PadRef struct {
	Side Dir
	Pos  int
	K    int
}

func (p PadRef) String() string { return fmt.Sprintf("PAD-%s%d.%d", p.Side, p.Pos, p.K) }

// PadConfig is the decoded configuration of one IOB pad.
type PadConfig struct {
	// OutMask selects, one bit per candidate, which outward single wires of
	// the border tile drive this pad when it is an output. Several bits in
	// parallel are legal (used while relocating a route that ends at a
	// pad).
	OutMask uint8
	// Output enables the pad's output driver.
	Output bool
	// Input enables the pad as an input to the fabric.
	Input bool
}

const (
	padConfigBits = 8
	padBitOutput  = 4
	padBitInput   = 5
	// PadOutSources is the number of outward singles selectable by a pad.
	PadOutSources = 4
)

func (pc PadConfig) encode() uint32 {
	v := uint32(pc.OutMask & 0xF)
	if pc.Output {
		v |= 1 << padBitOutput
	}
	if pc.Input {
		v |= 1 << padBitInput
	}
	return v
}

func decodePad(v uint32) PadConfig {
	return PadConfig{
		OutMask: uint8(v & 0xF),
		Output:  v>>padBitOutput&1 == 1,
		Input:   v>>padBitInput&1 == 1,
	}
}

// NumPads returns the number of IOB pads on the device.
func (d *Device) NumPads() int { return 2 * PadsPerEdgeTile * (d.Rows + d.Cols) }

// PadIndex returns a dense index for a pad.
func (d *Device) PadIndex(p PadRef) int {
	k := PadsPerEdgeTile
	switch p.Side {
	case North:
		return p.Pos*k + p.K
	case South:
		return d.Cols*k + p.Pos*k + p.K
	case West:
		return 2*d.Cols*k + p.Pos*k + p.K
	default:
		return 2*d.Cols*k + d.Rows*k + p.Pos*k + p.K
	}
}

// PadByIndex is the inverse of PadIndex.
func (d *Device) PadByIndex(idx int) PadRef {
	k := PadsPerEdgeTile
	switch {
	case idx < d.Cols*k:
		return PadRef{Side: North, Pos: idx / k, K: idx % k}
	case idx < 2*d.Cols*k:
		idx -= d.Cols * k
		return PadRef{Side: South, Pos: idx / k, K: idx % k}
	case idx < 2*d.Cols*k+d.Rows*k:
		idx -= 2 * d.Cols * k
		return PadRef{Side: West, Pos: idx / k, K: idx % k}
	default:
		idx -= 2*d.Cols*k + d.Rows*k
		return PadRef{Side: East, Pos: idx / k, K: idx % k}
	}
}

// PadNodeID returns the routing-graph node of a pad.
func (d *Device) PadNodeID(p PadRef) NodeID {
	return d.PadBase() + NodeID(d.PadIndex(p))
}

// PadOfNode decodes a pad NodeID.
func (d *Device) PadOfNode(n NodeID) (PadRef, bool) {
	if n < d.PadBase() || int(n-d.PadBase()) >= d.NumPads() {
		return PadRef{}, false
	}
	return d.PadByIndex(int(n - d.PadBase())), true
}

// padBitAddr locates a pad's configuration byte. North/South pads live in
// the two pseudo-rows of their column's CLB configuration column; West/East
// pads live in the IOB columns.
func (d *Device) padBitAddr(p PadRef) (major, minor, bit int) {
	switch p.Side {
	case North:
		return d.majorOfCol[p.Pos], 0, d.Rows*BitsPerTileRow + p.K*padConfigBits
	case South:
		return d.majorOfCol[p.Pos], 0, (d.Rows+1)*BitsPerTileRow + p.K*padConfigBits
	case West:
		return 1 + d.Cols, p.K, p.Pos * BitsPerTileRow
	default: // East
		return 2 + d.Cols, p.K, p.Pos * BitsPerTileRow
	}
}

// ReadPad decodes the configuration of one pad.
func (d *Device) ReadPad(p PadRef) PadConfig {
	major, minor, bit := d.padBitAddr(p)
	idx, err := d.frameIndex(major, minor)
	if err != nil {
		panic(err)
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	var v uint32
	for i := 0; i < padConfigBits; i++ {
		if d.getBitLocked(idx, bit+i) {
			v |= 1 << i
		}
	}
	return decodePad(v)
}

// WritePad encodes the configuration of one pad (designer-level path).
func (d *Device) WritePad(p PadRef, pc PadConfig) {
	major, minor, bit := d.padBitAddr(p)
	idx, err := d.frameIndex(major, minor)
	if err != nil {
		panic(err)
	}
	v := pc.encode()
	d.mu.Lock()
	defer d.mu.Unlock()
	for i := 0; i < padConfigBits; i++ {
		d.setBitLocked(idx, bit+i, v>>i&1 == 1)
	}
	d.gen++
	d.frameGen[idx] = d.gen
	d.padGen = d.gen
}

// PadConfigFrame returns the frame that holds a pad's configuration.
func (d *Device) PadConfigFrame(p PadRef) FrameAddr {
	major, minor, _ := d.padBitAddr(p)
	return FrameAddr{Major: major, Minor: minor}
}

// PadsInFrame returns the pads whose configuration byte lives in the given
// frame, if any. Host-side occupancy views use it to re-derive exactly the
// pads a dirty frame can have changed. It checks every pad against
// PadConfigFrame — the one source of truth for pad placement — so it cannot
// drift from the frame layout; the scan is a few hundred arithmetic-only
// probes and runs only on the dirty frames of a partial refresh.
func (d *Device) PadsInFrame(addr FrameAddr) []PadRef {
	var out []PadRef
	for i := 0; i < d.NumPads(); i++ {
		p := d.PadByIndex(i)
		if d.PadConfigFrame(p) == addr {
			out = append(out, p)
		}
	}
	return out
}

// PadOutSourceNode returns the outward single wire selected by bit b of a
// pad's OutMask.
func (d *Device) PadOutSourceNode(p PadRef, b int) NodeID {
	tile, inward := d.padBorderTile(p)
	return d.NodeIDAt(tile, LocalSingle(inward.Opposite(), p.K+b*PadsPerEdgeTile))
}

// PadOutSourceNodes returns the outward single wires selectable by a pad's
// OutMask, index-aligned with the mask bits.
func (d *Device) PadOutSourceNodes(p PadRef) []NodeID {
	out := make([]NodeID, PadOutSources)
	for b := 0; b < PadOutSources; b++ {
		out[b] = d.PadOutSourceNode(p, b)
	}
	return out
}

// PadEnabledSources returns the wires currently driving an output pad.
func (d *Device) PadEnabledSources(p PadRef) []NodeID {
	pc := d.ReadPad(p)
	if !pc.Output || pc.OutMask == 0 {
		return nil
	}
	nodes := d.PadOutSourceNodes(p)
	var out []NodeID
	for b, n := range nodes {
		if pc.OutMask>>b&1 == 1 {
			out = append(out, n)
		}
	}
	return out
}

// Encode packs the pad configuration into its configuration byte (exported
// for tools that splice pad configs into frames).
func (pc PadConfig) Encode() uint32 { return pc.encode() }

// DecodePadConfig is the inverse of Encode.
func DecodePadConfig(v uint32) PadConfig { return decodePad(v) }

// PadBitAddr exposes the frame location of a pad's configuration byte.
func (d *Device) PadBitAddr(p PadRef) (major, minor, bit int) {
	return d.padBitAddr(p)
}
