package netlist

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
)

// Digest is the canonical content hash of a netlist. Two netlists share a
// digest exactly when they describe the same circuit over the same external
// interface: node names and the netlist name are excluded, internal node
// numbering is normalised away, but primary input and output positions keep
// their declaration-order identity (swapping two inputs is a different
// circuit to the outside world, so it must be a different digest — a cached
// frame image binds pads by interface position).
type Digest [sha256.Size]byte

// String renders the digest as lower-case hex.
func (d Digest) String() string { return hex.EncodeToString(d[:]) }

// Short renders the first 6 bytes as hex — enough for log lines.
func (d Digest) Short() string { return hex.EncodeToString(d[:6]) }

// Canon is a netlist's canonical form: the content digest together with the
// numbering that produced it. Order and Index are inverse permutations; two
// netlists with equal digests have structurally corresponding nodes at equal
// canonical indices, which is what lets a template captured from one netlist
// be re-bound to another netlist that hashes the same.
type Canon struct {
	Digest Digest
	// Order[c] is the original id of the node with canonical index c.
	Order []ID
	// Index[orig] is the canonical index of original node id orig.
	Index []int32
}

// Canonical computes the canonical form. The numbering is structure-driven:
// primary inputs first in declaration order, then a depth-first walk from
// each primary output in declaration order, visiting a node's references in
// positional order (LUT input position is semantic). State elements (FF,
// latch, RAM) are traversal barriers — they are numbered on first encounter
// and their D/CE cones queued for a later pass — so feedback loops
// terminate. Unreachable nodes are numbered last, continuing the same walk
// from each in declaration order (dead logic still occupies cells once
// placed, so it must contribute to the digest).
func (n *Netlist) Canonical() Canon {
	idx := make([]int32, len(n.Nodes))
	for i := range idx {
		idx[i] = -1
	}
	order := make([]ID, 0, len(n.Nodes))
	assign := func(id ID) bool {
		if idx[id] >= 0 {
			return false
		}
		idx[id] = int32(len(order))
		order = append(order, id)
		return true
	}
	var queue []ID
	var visit func(ID)
	visit = func(id ID) {
		if idx[id] >= 0 {
			return
		}
		nd := &n.Nodes[id]
		assign(id)
		switch nd.Kind {
		case KindFF, KindLatch, KindRAM:
			queue = append(queue, id)
			return
		}
		for _, r := range nd.Ins {
			visit(r)
		}
	}
	drain := func() {
		for len(queue) > 0 {
			id := queue[0]
			queue = queue[1:]
			nd := &n.Nodes[id]
			for _, r := range nd.Ins {
				visit(r)
			}
			if nd.D != None {
				visit(nd.D)
			}
			if nd.CE != None {
				visit(nd.CE)
			}
		}
	}
	for _, id := range n.Inputs() {
		assign(id)
	}
	for _, id := range n.Outputs() {
		visit(id)
	}
	drain()
	for i := range n.Nodes {
		if idx[i] < 0 {
			visit(ID(i))
			drain()
		}
	}

	h := sha256.New()
	var b [4]byte
	w16 := func(v uint16) {
		binary.LittleEndian.PutUint16(b[:2], v)
		h.Write(b[:2])
	}
	w32 := func(v uint32) {
		binary.LittleEndian.PutUint32(b[:4], v)
		h.Write(b[:4])
	}
	cid := func(id ID) uint32 {
		if id == None {
			return 0xFFFFFFFF
		}
		return uint32(idx[id])
	}
	h.Write([]byte("rlm-netlist-v1"))
	w32(uint32(len(n.Nodes)))
	for _, id := range order {
		nd := &n.Nodes[id]
		init := byte(0)
		if nd.Init {
			init = 1
		}
		h.Write([]byte{byte(nd.Kind), init})
		w16(nd.LUT)
		w32(uint32(len(nd.Ins)))
		for _, r := range nd.Ins {
			w32(cid(r))
		}
		// D and CE are only meaningful on state elements; on other kinds the
		// struct fields hold zero values that would alias node id 0.
		d, ce := None, None
		if nd.Kind == KindFF || nd.Kind == KindLatch || nd.Kind == KindRAM {
			d, ce = nd.D, nd.CE
		}
		w32(cid(d))
		w32(cid(ce))
	}
	var c Canon
	copy(c.Digest[:], h.Sum(nil))
	c.Order = order
	c.Index = idx
	return c
}

// ContentHash returns just the canonical digest.
func (n *Netlist) ContentHash() Digest { return n.Canonical().Digest }
