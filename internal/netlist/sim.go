package netlist

import "fmt"

// Sim is the golden behavioural simulator of a netlist. It is the reference
// model: the fabric-mapped circuit must match it output for output, cycle
// for cycle, while relocations are in progress.
type Sim struct {
	nl    *Netlist
	order []ID
	val   []bool
	state []bool   // FF/latch stored state, indexed by node id
	ram   []uint16 // RAM contents, indexed by node id
	// settleCap bounds the latch fixpoint iteration; exceeding it means an
	// oscillating asynchronous loop.
	settleCap int
}

// NewSim builds a simulator; the netlist must validate.
func NewSim(nl *Netlist) (*Sim, error) {
	if err := nl.Validate(); err != nil {
		return nil, err
	}
	order, err := nl.combOrder()
	if err != nil {
		return nil, err
	}
	s := &Sim{
		nl:        nl,
		order:     order,
		val:       make([]bool, len(nl.Nodes)),
		state:     make([]bool, len(nl.Nodes)),
		ram:       make([]uint16, len(nl.Nodes)),
		settleCap: 4 + len(nl.Nodes),
	}
	s.Reset()
	return s, nil
}

// Netlist returns the simulated netlist.
func (s *Sim) Netlist() *Netlist { return s.nl }

// Reset restores initial state (FF/latch init values, RAMs cleared).
func (s *Sim) Reset() {
	for i := range s.val {
		s.val[i] = false
		s.ram[i] = 0
	}
	for i, nd := range s.nl.Nodes {
		if nd.Kind == KindFF || nd.Kind == KindLatch {
			s.state[i] = nd.Init
		}
	}
	s.refreshSequentialOutputs()
}

func (s *Sim) refreshSequentialOutputs() {
	for i, nd := range s.nl.Nodes {
		if nd.Kind == KindFF || nd.Kind == KindLatch {
			s.val[i] = s.state[i]
		} else if nd.Kind == KindConst {
			s.val[i] = nd.LUT&1 == 1
		}
	}
}

// settle evaluates combinational logic to a fixpoint, honouring transparent
// latches. It returns an error if an asynchronous loop oscillates.
func (s *Sim) settle() error {
	for iter := 0; ; iter++ {
		if iter > s.settleCap {
			return fmt.Errorf("netlist %s: asynchronous oscillation did not settle", s.nl.Name)
		}
		for _, id := range s.order {
			nd := &s.nl.Nodes[id]
			switch nd.Kind {
			case KindLUT:
				var in uint8
				for b, r := range nd.Ins {
					if s.val[r] {
						in |= 1 << b
					}
				}
				s.val[id] = nd.LUT>>(in&0xF)&1 == 1
			case KindOutput:
				s.val[id] = s.val[nd.Ins[0]]
			case KindRAM:
				s.val[id] = s.ram[id]>>s.ramAddr(nd)&1 == 1
			}
		}
		changed := false
		for i, nd := range s.nl.Nodes {
			if nd.Kind != KindLatch {
				continue
			}
			gate := nd.CE == None || s.val[nd.CE]
			if gate {
				d := s.val[nd.D]
				if s.state[i] != d {
					s.state[i] = d
					changed = true
				}
				if s.val[i] != d {
					s.val[i] = d
					changed = true
				}
			}
		}
		if !changed {
			return nil
		}
	}
}

func (s *Sim) ramAddr(nd *Node) uint {
	var a uint
	for b, r := range nd.Ins {
		if s.val[r] {
			a |= 1 << b
		}
	}
	return a & 0xF
}

// SetInputs applies primary input values in declaration order.
func (s *Sim) SetInputs(vals []bool) error {
	ins := s.nl.Inputs()
	if len(vals) != len(ins) {
		return fmt.Errorf("netlist %s: %d input values for %d inputs", s.nl.Name, len(vals), len(ins))
	}
	for i, id := range ins {
		s.val[id] = vals[i]
	}
	return nil
}

// Settle propagates combinational logic without a clock edge (used between
// edges and for asynchronous designs).
func (s *Sim) Settle() error { return s.settle() }

// Step applies one full clock cycle: settle, rising clock edge (FF and RAM
// updates), settle again, and returns the primary output values.
func (s *Sim) Step(inputs []bool) ([]bool, error) {
	if err := s.SetInputs(inputs); err != nil {
		return nil, err
	}
	if err := s.settle(); err != nil {
		return nil, err
	}
	s.ClockEdge()
	if err := s.settle(); err != nil {
		return nil, err
	}
	return s.Outputs(), nil
}

// ClockEdge performs the rising-edge state update of FFs and RAM write
// ports (latches are level-sensitive and unaffected).
func (s *Sim) ClockEdge() {
	type upd struct {
		id ID
		v  bool
	}
	type ramUpd struct {
		id   ID
		addr uint
		v    bool
	}
	var ffUpds []upd
	var ramUpds []ramUpd
	for i, nd := range s.nl.Nodes {
		switch nd.Kind {
		case KindFF:
			if nd.CE == None || s.val[nd.CE] {
				ffUpds = append(ffUpds, upd{ID(i), s.val[nd.D]})
			}
		case KindRAM:
			if nd.CE != None && s.val[nd.CE] {
				ramUpds = append(ramUpds, ramUpd{ID(i), s.ramAddr(&nd), s.val[nd.D]})
			}
		}
	}
	for _, u := range ffUpds {
		s.state[u.id] = u.v
		s.val[u.id] = u.v
	}
	for _, u := range ramUpds {
		if u.v {
			s.ram[u.id] |= 1 << u.addr
		} else {
			s.ram[u.id] &^= 1 << u.addr
		}
	}
}

// Outputs returns the current primary output values in declaration order.
func (s *Sim) Outputs() []bool {
	ids := s.nl.Outputs()
	out := make([]bool, len(ids))
	for i, id := range ids {
		out[i] = s.val[id]
	}
	return out
}

// Value returns the current value of any node.
func (s *Sim) Value(id ID) bool { return s.val[id] }

// State returns the stored state of an FF or latch.
func (s *Sim) State(id ID) bool { return s.state[id] }

// SetState forces the stored state of an FF or latch (tests only).
func (s *Sim) SetState(id ID, v bool) {
	s.state[id] = v
	s.val[id] = v
}

// RAMContents returns the contents of a RAM node.
func (s *Sim) RAMContents(id ID) uint16 { return s.ram[id] }

// Snapshot captures all sequential state for later comparison.
type Snapshot struct {
	FF  map[string]bool
	RAM map[string]uint16
}

// Snapshot returns a copy of all FF/latch states and RAM contents by name.
func (s *Sim) Snapshot() Snapshot {
	snap := Snapshot{FF: map[string]bool{}, RAM: map[string]uint16{}}
	for i, nd := range s.nl.Nodes {
		switch nd.Kind {
		case KindFF, KindLatch:
			snap.FF[nd.Name] = s.state[i]
		case KindRAM:
			snap.RAM[nd.Name] = s.ram[i]
		}
	}
	return snap
}
