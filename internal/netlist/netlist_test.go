package netlist

import (
	"testing"

	"repro/internal/fabric"
)

// buildCounter builds an n-bit free-running binary counter with carry chain.
func buildCounter(n int) *Netlist {
	nl := New("counter")
	en := nl.Input("en")
	ffs := make([]ID, n)
	// Declare FFs first (they feed back combinationally).
	// Build: bit0 toggles when en; bit i toggles when en & all lower bits.
	// Two passes: first create placeholder LUT chain using FF ids.
	// Create FFs with D assigned after LUTs exist is impossible with the
	// builder, so create LUTs referencing future ids is also impossible.
	// Instead: create FFs driven by XOR LUTs we build incrementally using
	// already-created FFs (carry = AND of lower FFs and en).
	carry := en
	for i := 0; i < n; i++ {
		// We need ff[i] before its own D. Trick: D = ff XOR carry needs
		// ff id; create FF with temporary D = carry, then patch D after
		// creating the XOR LUT. Patch directly in Nodes (test helper).
		ff := nl.FF("", carry, None, false)
		x := nl.LUT("", fabric.LUTXor2, ff, carry)
		nl.Nodes[ff].D = x
		if i < n-1 {
			carry = nl.LUT("", fabric.LUTAnd2, ff, carry)
		}
		ffs[i] = ff
	}
	for i, ff := range ffs {
		nl.Output(outName(i), ff)
	}
	return nl
}

func outName(i int) string { return string(rune('a' + i)) }

func countVal(out []bool) int {
	v := 0
	for i, b := range out {
		if b {
			v |= 1 << i
		}
	}
	return v
}

func TestCounterCounts(t *testing.T) {
	nl := buildCounter(4)
	if err := nl.Validate(); err != nil {
		t.Fatal(err)
	}
	sim, err := NewSim(nl)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 20; i++ {
		out, err := sim.Step([]bool{true})
		if err != nil {
			t.Fatal(err)
		}
		if got := countVal(out); got != i%16 {
			t.Fatalf("cycle %d: counter = %d, want %d", i, got, i%16)
		}
	}
	// With en low the counter holds.
	before, _ := sim.Step([]bool{false})
	after, _ := sim.Step([]bool{false})
	if countVal(before) != countVal(after) {
		t.Error("counter advanced with enable low")
	}
}

func TestGatedClockRegister(t *testing.T) {
	nl := New("gated")
	d := nl.Input("d")
	ce := nl.Input("ce")
	ff := nl.FF("r", d, ce, false)
	nl.Output("q", ff)
	sim, err := NewSim(nl)
	if err != nil {
		t.Fatal(err)
	}
	out, _ := sim.Step([]bool{true, false})
	if out[0] {
		t.Error("FF captured with CE low")
	}
	out, _ = sim.Step([]bool{true, true})
	if !out[0] {
		t.Error("FF did not capture with CE high")
	}
	out, _ = sim.Step([]bool{false, false})
	if !out[0] {
		t.Error("FF lost state with CE low")
	}
}

func TestLatchTransparency(t *testing.T) {
	nl := New("latch")
	d := nl.Input("d")
	g := nl.Input("g")
	l := nl.Latch("l", d, g, false)
	nl.Output("q", l)
	sim, err := NewSim(nl)
	if err != nil {
		t.Fatal(err)
	}
	// Gate high: output follows D without a clock edge.
	sim.SetInputs([]bool{true, true})
	if err := sim.Settle(); err != nil {
		t.Fatal(err)
	}
	if !sim.Outputs()[0] {
		t.Error("transparent latch did not follow D")
	}
	// Gate low: D changes are ignored; state holds.
	sim.SetInputs([]bool{false, false})
	sim.Settle()
	if !sim.Outputs()[0] {
		t.Error("latch lost state when gate closed")
	}
}

func TestRAMWriteRead(t *testing.T) {
	nl := New("ram")
	a0 := nl.Input("a0")
	a1 := nl.Input("a1")
	z := nl.Const("zero", false)
	d := nl.Input("d")
	we := nl.Input("we")
	r := nl.RAM("m", [4]ID{a0, a1, z, z}, d, we)
	nl.Output("q", r)
	sim, err := NewSim(nl)
	if err != nil {
		t.Fatal(err)
	}
	// Write 1 at address 2 (a1=1,a0=0).
	sim.Step([]bool{false, true, true, true})
	// Read back address 2.
	sim.SetInputs([]bool{false, true, false, false})
	sim.Settle()
	if !sim.Outputs()[0] {
		t.Error("RAM read back 0 at written address")
	}
	// Other address still 0.
	sim.SetInputs([]bool{true, false, false, false})
	sim.Settle()
	if sim.Outputs()[0] {
		t.Error("RAM read back 1 at unwritten address")
	}
	if sim.RAMContents(r) != 1<<2 {
		t.Errorf("RAM contents = %#x", sim.RAMContents(r))
	}
}

func TestValidateCatchesCombLoop(t *testing.T) {
	nl := New("loop")
	a := nl.LUT("a", fabric.LUTBuf, 0) // self-reference: node 0 is itself
	_ = a
	if err := nl.Validate(); err == nil {
		t.Error("combinational self-loop not detected")
	}

	nl2 := New("loop2")
	x := nl2.Input("x")
	l1 := nl2.LUT("l1", fabric.LUTAnd2, x, 2) // forward ref to l2
	l2 := nl2.LUT("l2", fabric.LUTBuf, l1)
	_ = l2
	if err := nl2.Validate(); err == nil {
		t.Error("two-node combinational loop not detected")
	}
}

func TestValidateCatchesBadRefs(t *testing.T) {
	nl := New("bad")
	nl.LUT("l", fabric.LUTBuf, 99)
	if err := nl.Validate(); err == nil {
		t.Error("out-of-range reference not detected")
	}
	nl2 := New("bad2")
	in := nl2.Input("i")
	o := nl2.Output("o", in)
	nl2.LUT("l", fabric.LUTBuf, o) // reading from an output node
	if err := nl2.Validate(); err == nil {
		t.Error("read-from-output not detected")
	}
}

func TestFFBreaksCycle(t *testing.T) {
	// A feedback loop through an FF is legal (that is what sequential
	// circuits are).
	nl := New("feedback")
	ff := nl.FF("s", None, None, false)
	inv := nl.LUT("inv", fabric.LUTInv, ff)
	nl.Nodes[ff].D = inv
	nl.Output("q", ff)
	if err := nl.Validate(); err != nil {
		t.Fatalf("FF feedback rejected: %v", err)
	}
	sim, _ := NewSim(nl)
	// Toggles every cycle.
	o1, _ := sim.Step(nil)
	o2, _ := sim.Step(nil)
	if o1[0] == o2[0] {
		t.Error("toggle FF did not toggle")
	}
}

func TestOscillationDetected(t *testing.T) {
	// A latch ring that oscillates while transparent must be reported, not
	// loop forever.
	nl := New("osc")
	g := nl.Input("g")
	l := nl.Latch("l", None, g, false)
	inv := nl.LUT("inv", fabric.LUTInv, l)
	nl.Nodes[l].D = inv
	nl.Output("q", l)
	sim, err := NewSim(nl)
	if err != nil {
		t.Fatal(err)
	}
	sim.SetInputs([]bool{true})
	if err := sim.Settle(); err == nil {
		t.Error("oscillation not detected")
	}
}

func TestSnapshotCapturesState(t *testing.T) {
	nl := buildCounter(3)
	sim, _ := NewSim(nl)
	for i := 0; i < 5; i++ {
		sim.Step([]bool{true})
	}
	snap := sim.Snapshot()
	if len(snap.FF) != 3 {
		t.Fatalf("snapshot has %d FFs", len(snap.FF))
	}
	v := 0
	bit := 0
	for i := 0; i < 3; i++ {
		name := nl.Nodes[nl.Outputs()[i]].Name
		_ = name
	}
	// Reconstruct the counter value from FF states via outputs.
	for i, id := range nl.Outputs() {
		if sim.Value(id) {
			v |= 1 << i
		}
		bit++
	}
	if v != 5 {
		t.Errorf("counter state = %d, want 5", v)
	}
}

func TestStatsAndNames(t *testing.T) {
	nl := New("stats")
	a := nl.Input("a")
	c := nl.Const("one", true)
	l := nl.LUT("l", fabric.LUTAnd2, a, c)
	f := nl.FF("f", l, None, false)
	nl.Latch("lt", l, a, false)
	nl.RAM("m", [4]ID{a, a, a, a}, l, f)
	nl.Output("o", f)
	s := nl.Stats()
	want := Stats{Inputs: 1, Outputs: 1, LUTs: 1, FFs: 1, Latches: 1, Consts: 1, RAMs: 1}
	if s != want {
		t.Errorf("stats = %+v, want %+v", s, want)
	}
	if id, ok := nl.ByName("l"); !ok || id != l {
		t.Error("ByName failed")
	}
	if err := nl.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestResetRestoresInit(t *testing.T) {
	nl := New("init")
	ff := nl.FF("f", None, None, true)
	inv := nl.LUT("i", fabric.LUTInv, ff)
	nl.Nodes[ff].D = inv
	nl.Output("q", ff)
	sim, _ := NewSim(nl)
	if !sim.Value(ff) {
		t.Error("init value not applied")
	}
	sim.Step(nil)
	sim.Reset()
	if !sim.Value(ff) {
		t.Error("Reset did not restore init value")
	}
}

func TestDuplicateNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate name did not panic")
		}
	}()
	nl := New("dup")
	nl.Input("x")
	nl.Input("x")
}
