package netlist_test

import (
	"testing"

	"repro/internal/itc99"
	"repro/internal/netlist"
)

func mustGet(name string) *netlist.Netlist {
	nl, err := itc99.Get(name)
	if err != nil {
		panic(err)
	}
	return nl
}

// Golden digests. These pin the canonical serialisation format: if an edit
// to Canonical() changes any of them, the change invalidates every cached
// template image and must be deliberate (bump the format tag, note it in
// the commit).
var goldenDigests = []struct {
	name string
	gen  func() *netlist.Netlist
	hex  string
}{
	{
		name: "b01",
		gen:  func() *netlist.Netlist { return mustGet("b01") },
		hex:  "9c6f6961502c13aa3641481238f01b4aa9dbd32df3c8f1d15753111c849f694b",
	},
	{
		name: "b06",
		gen:  func() *netlist.Netlist { return mustGet("b06") },
		hex:  "f3178d23731ae3950814fd989f333fb79f77edbe991a75be502b368875bbfc67",
	},
	{
		name: "gen-free-seed1",
		gen: func() *netlist.Netlist {
			return itc99.Generate(itc99.GenConfig{
				Name: "g1", Inputs: 4, Outputs: 3, FFs: 6, LUTs: 10, Seed: 1,
			})
		},
		hex: "9192ec443b35114e0761d10ce00a4aae0fb34db94c38839d8e81db5575adbf1b",
	},
	{
		name: "gen-gated-seed7",
		gen: func() *netlist.Netlist {
			return itc99.Generate(itc99.GenConfig{
				Name: "g7", Inputs: 4, Outputs: 3, FFs: 8, LUTs: 12, Seed: 7,
				Style: itc99.GatedClock, CEFraction: 0.5,
			})
		},
		hex: "4274bff22b4b557f07250827a9dfe7b4a192e7215654fb841de0ca88573dce5d",
	},
	{
		name: "gen-ram-seed3",
		gen: func() *netlist.Netlist {
			return itc99.Generate(itc99.GenConfig{
				Name: "g3", Inputs: 5, Outputs: 2, FFs: 4, LUTs: 8, Seed: 3, RAMs: 1,
			})
		},
		hex: "24fb677b52b5b31898e9da09549c7866a93a6f5069723d510d3cde8a58f02561",
	},
}

func TestContentHashGolden(t *testing.T) {
	for _, g := range goldenDigests {
		got := g.gen().ContentHash().String()
		if got != g.hex {
			t.Errorf("%s: digest %s, golden %s", g.name, got, g.hex)
		}
	}
}

// The digest must not depend on node names: the same circuit generated
// under different names (as a scheduler naming repeat tasks t0001, t0002
// does) must hit the same template.
func TestContentHashNameInvariant(t *testing.T) {
	mk := func(name string) *netlist.Netlist {
		return itc99.Generate(itc99.GenConfig{
			Name: name, Inputs: 4, Outputs: 3, FFs: 6, LUTs: 10, Seed: 42,
		})
	}
	a, b := mk("alpha"), mk("beta")
	// Same structure, same internal names apart from the netlist's own.
	if a.ContentHash() != b.ContentHash() {
		t.Fatalf("netlist name changed the digest")
	}
	// Rename every node.
	renamed := &netlist.Netlist{Name: "gamma", Nodes: append([]netlist.Node(nil), a.Nodes...)}
	for i := range renamed.Nodes {
		nd := renamed.Nodes[i]
		nd.Name = "n" + string(rune('A'+i%26)) + nd.Name
		renamed.Nodes[i] = nd
	}
	if a.ContentHash() != renamed.ContentHash() {
		t.Fatalf("node renaming changed the digest")
	}
}

// The digest must not depend on internal node numbering: building the same
// circuit with intermediate nodes declared in a different order hashes the
// same.
func TestContentHashOrderInvariant(t *testing.T) {
	build := func(swap bool) *netlist.Netlist {
		nl := netlist.New("perm")
		a := nl.Input("a")
		b := nl.Input("b")
		var x, y netlist.ID
		if swap {
			y = nl.LUT("y", 0x8, a, b) // AND
			x = nl.LUT("x", 0xE, a, b) // OR
		} else {
			x = nl.LUT("x", 0xE, a, b)
			y = nl.LUT("y", 0x8, a, b)
		}
		f := nl.FF("f", x, netlist.None, false)
		nl.Output("o1", f)
		nl.Output("o2", y)
		return nl
	}
	if build(false).ContentHash() != build(true).ContentHash() {
		t.Fatalf("internal declaration order changed the digest")
	}
}

// Primary I/O keeps declaration-order identity: swapping two inputs is a
// different circuit to the outside world (pads bind by position), so the
// digest must change. Same for outputs.
func TestContentHashIOPositionSensitive(t *testing.T) {
	build := func(swapIn, swapOut bool) *netlist.Netlist {
		nl := netlist.New("io")
		var a, b netlist.ID
		if swapIn {
			b = nl.Input("b")
			a = nl.Input("a")
		} else {
			a = nl.Input("a")
			b = nl.Input("b")
		}
		x := nl.LUT("x", 0x2, a, b) // a AND NOT b: asymmetric
		y := nl.LUT("y", 0x6, a, b) // XOR
		if swapOut {
			nl.Output("o2", y)
			nl.Output("o1", x)
		} else {
			nl.Output("o1", x)
			nl.Output("o2", y)
		}
		return nl
	}
	base := build(false, false).ContentHash()
	if base == build(true, false).ContentHash() {
		t.Fatalf("input order swap did not change the digest")
	}
	if base == build(false, true).ContentHash() {
		t.Fatalf("output order swap did not change the digest")
	}
}

// Different generator seeds produce different circuits, which must produce
// different digests (the cache must not alias them).
func TestContentHashSeedDistinct(t *testing.T) {
	seen := map[string]uint64{}
	for _, seed := range []uint64{1, 2, 3, 4, 5} {
		nl := itc99.Generate(itc99.GenConfig{
			Name: "s", Inputs: 4, Outputs: 3, FFs: 6, LUTs: 10, Seed: seed,
		})
		h := nl.ContentHash().String()
		if prev, dup := seen[h]; dup {
			t.Fatalf("seeds %d and %d collide on %s", prev, seed, h)
		}
		seen[h] = seed
	}
}

// A LUT whose D/CE struct fields are zero must not alias node id 0: only
// state elements serialise D and CE.
func TestContentHashNoDCEAliasing(t *testing.T) {
	build := func(extra bool) *netlist.Netlist {
		nl := netlist.New("alias")
		a := nl.Input("a")
		b := nl.Input("b")
		x := nl.LUT("x", 0x6, a, b)
		if extra {
			// Identical circuit; the LUT node's zero-valued D field points
			// at node 0 either way and must not be hashed.
			_ = 0
		}
		nl.Output("o", x)
		return nl
	}
	if build(false).ContentHash() != build(true).ContentHash() {
		t.Fatalf("digest unstable")
	}
}

// Canon.Order and Canon.Index are inverse permutations covering every node.
func TestCanonicalPermutation(t *testing.T) {
	nl := itc99.Generate(itc99.GenConfig{
		Name: "p", Inputs: 4, Outputs: 3, FFs: 6, LUTs: 10, Seed: 9, RAMs: 1,
	})
	c := nl.Canonical()
	if len(c.Order) != len(nl.Nodes) || len(c.Index) != len(nl.Nodes) {
		t.Fatalf("canon covers %d/%d nodes", len(c.Order), len(nl.Nodes))
	}
	for ci, id := range c.Order {
		if int(c.Index[id]) != ci {
			t.Fatalf("Order/Index not inverse at canonical %d (orig %d)", ci, id)
		}
	}
	// Structurally equal netlists correspond node-for-node through their
	// canonical orders.
	nl2 := itc99.Generate(itc99.GenConfig{
		Name: "q", Inputs: 4, Outputs: 3, FFs: 6, LUTs: 10, Seed: 9, RAMs: 1,
	})
	c2 := nl2.Canonical()
	if c.Digest != c2.Digest {
		t.Fatalf("equal circuits, unequal digests")
	}
	for ci := range c.Order {
		if nl.Nodes[c.Order[ci]].Kind != nl2.Nodes[c2.Order[ci]].Kind {
			t.Fatalf("canonical index %d maps to different kinds", ci)
		}
	}
}
