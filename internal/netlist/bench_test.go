package netlist_test

import (
	"testing"

	"repro/internal/itc99"
	"repro/internal/netlist"
)

func BenchmarkGoldenSimB12(b *testing.B) {
	nl, err := itc99.Get("b12") // 121 FFs, 358 LUTs
	if err != nil {
		b.Fatal(err)
	}
	s, err := netlist.NewSim(nl)
	if err != nil {
		b.Fatal(err)
	}
	in := make([]bool, len(nl.Inputs()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in[0] = i&1 == 1
		if _, err := s.Step(in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGenerateB14(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := itc99.Get("b14"); err != nil {
			b.Fatal(err)
		}
	}
}
