// Package netlist represents technology-mapped sequential circuits: 4-input
// LUTs, D flip-flops with optional clock enable, transparent latches, and
// 16x1 distributed RAMs — the design styles whose on-line relocation the
// paper studies (synchronous free-running, synchronous gated-clock,
// asynchronous latch-based, and LUT/RAM).
//
// The package also provides a golden behavioural simulator used as the
// reference against which the fabric-mapped circuit is compared cycle by
// cycle while relocations are in progress.
package netlist

import (
	"fmt"
	"sort"
)

// Kind classifies a netlist node.
type Kind uint8

// Node kinds.
const (
	KindInput Kind = iota
	KindOutput
	KindLUT
	KindFF
	KindLatch
	KindConst
	KindRAM
)

var kindNames = [...]string{"input", "output", "lut", "ff", "latch", "const", "ram"}

func (k Kind) String() string { return kindNames[k] }

// ID identifies a node within its netlist.
type ID int32

// None marks an unconnected optional input (e.g. a free-running FF's CE).
const None ID = -1

// Node is one circuit element.
type Node struct {
	Kind Kind
	Name string
	// LUT truth table (KindLUT), or constant value in bit 0 (KindConst).
	LUT uint16
	// Ins are the LUT data inputs (KindLUT, up to 4), the driven source
	// (KindOutput), or the RAM address inputs (KindRAM, exactly 4).
	Ins []ID
	// D is the data input of FF/latch nodes and the write-data input of
	// RAM nodes.
	D ID
	// CE is the clock enable of FF nodes (None = free-running), the gate
	// of latch nodes, and the write enable of RAM nodes.
	CE ID
	// Init is the initial state of FF/latch nodes.
	Init bool
}

// Netlist is a named technology-mapped circuit.
type Netlist struct {
	Name   string
	Nodes  []Node
	byName map[string]ID
}

// New creates an empty netlist.
func New(name string) *Netlist {
	return &Netlist{Name: name, byName: make(map[string]ID)}
}

func (n *Netlist) add(node Node) ID {
	if node.Name == "" {
		node.Name = fmt.Sprintf("%s%d", node.Kind, len(n.Nodes))
	}
	if _, dup := n.byName[node.Name]; dup {
		panic(fmt.Sprintf("netlist: duplicate node name %q", node.Name))
	}
	id := ID(len(n.Nodes))
	n.Nodes = append(n.Nodes, node)
	n.byName[node.Name] = id
	return id
}

// FromNodes reconstitutes a netlist from its serialised node list (the
// journal's recovery path stores netlists as []Node). Unlike the builder
// methods it never panics: a duplicate or empty node name — impossible from
// the builders, conceivable from a corrupt journal — is an error.
func FromNodes(name string, nodes []Node) (*Netlist, error) {
	n := &Netlist{Name: name, byName: make(map[string]ID, len(nodes))}
	n.Nodes = append(n.Nodes, nodes...)
	for i, node := range n.Nodes {
		if node.Name == "" {
			return nil, fmt.Errorf("netlist: node %d of %q has no name", i, name)
		}
		if _, dup := n.byName[node.Name]; dup {
			return nil, fmt.Errorf("netlist: duplicate node name %q in %q", node.Name, name)
		}
		n.byName[node.Name] = ID(i)
	}
	return n, nil
}

// Input adds a primary input.
func (n *Netlist) Input(name string) ID {
	return n.add(Node{Kind: KindInput, Name: name})
}

// Output adds a primary output driven by src.
func (n *Netlist) Output(name string, src ID) ID {
	return n.add(Node{Kind: KindOutput, Name: name, Ins: []ID{src}})
}

// LUT adds a look-up table with the given truth table and inputs (input i of
// the node is LUT index bit i).
func (n *Netlist) LUT(name string, lut uint16, ins ...ID) ID {
	if len(ins) > 4 {
		panic("netlist: LUT with more than 4 inputs")
	}
	cp := make([]ID, len(ins))
	copy(cp, ins)
	return n.add(Node{Kind: KindLUT, Name: name, LUT: lut, Ins: cp})
}

// FF adds a D flip-flop; ce may be None for a free-running clock.
func (n *Netlist) FF(name string, d, ce ID, init bool) ID {
	return n.add(Node{Kind: KindFF, Name: name, D: d, CE: ce, Init: init})
}

// Latch adds a transparent latch with gate g (asynchronous design style).
func (n *Netlist) Latch(name string, d, g ID, init bool) ID {
	return n.add(Node{Kind: KindLatch, Name: name, D: d, CE: g, Init: init})
}

// Const adds a constant driver.
func (n *Netlist) Const(name string, v bool) ID {
	var lut uint16
	if v {
		lut = 1
	}
	return n.add(Node{Kind: KindConst, Name: name, LUT: lut})
}

// RAM adds a 16x1 distributed RAM with a synchronous write port (we = write
// enable, d = write data, addr = 4 address bits) and an asynchronous read of
// the addressed bit.
func (n *Netlist) RAM(name string, addr [4]ID, d, we ID) ID {
	return n.add(Node{Kind: KindRAM, Name: name, Ins: addr[:], D: d, CE: we})
}

// SetD rewires the D input of an FF, latch or RAM node. Feedback circuits
// are built in two phases: create the state element first, then patch its D
// once the logic computing it exists.
func (n *Netlist) SetD(id, d ID) {
	nd := &n.Nodes[id]
	if nd.Kind != KindFF && nd.Kind != KindLatch && nd.Kind != KindRAM {
		panic(fmt.Sprintf("netlist: SetD on %s node %s", nd.Kind, nd.Name))
	}
	nd.D = d
}

// SetCE rewires the CE/gate/write-enable input of a state element.
func (n *Netlist) SetCE(id, ce ID) {
	nd := &n.Nodes[id]
	if nd.Kind != KindFF && nd.Kind != KindLatch && nd.Kind != KindRAM {
		panic(fmt.Sprintf("netlist: SetCE on %s node %s", nd.Kind, nd.Name))
	}
	nd.CE = ce
}

// ByName looks a node up by name.
func (n *Netlist) ByName(name string) (ID, bool) {
	id, ok := n.byName[name]
	return id, ok
}

// Inputs returns the primary input ids in declaration order.
func (n *Netlist) Inputs() []ID { return n.ofKind(KindInput) }

// Outputs returns the primary output ids in declaration order.
func (n *Netlist) Outputs() []ID { return n.ofKind(KindOutput) }

func (n *Netlist) ofKind(k Kind) []ID {
	var out []ID
	for i, node := range n.Nodes {
		if node.Kind == k {
			out = append(out, ID(i))
		}
	}
	return out
}

// Stats summarises the netlist composition.
type Stats struct {
	Inputs, Outputs, LUTs, FFs, Latches, Consts, RAMs int
}

// Stats computes composition counters.
func (n *Netlist) Stats() Stats {
	var s Stats
	for _, node := range n.Nodes {
		switch node.Kind {
		case KindInput:
			s.Inputs++
		case KindOutput:
			s.Outputs++
		case KindLUT:
			s.LUTs++
		case KindFF:
			s.FFs++
		case KindLatch:
			s.Latches++
		case KindConst:
			s.Consts++
		case KindRAM:
			s.RAMs++
		}
	}
	return s
}

func (s Stats) String() string {
	return fmt.Sprintf("in=%d out=%d lut=%d ff=%d latch=%d const=%d ram=%d",
		s.Inputs, s.Outputs, s.LUTs, s.FFs, s.Latches, s.Consts, s.RAMs)
}

// CellUpperBound is a conservative count of the logic cells the netlist
// occupies once mapped: every LUT/const/RAM takes a cell's function
// generator and every FF/latch a storage element; LUT/FF packing can only
// reduce the count. Generators size circuits so this bound fits the target
// region, guaranteeing placement succeeds regardless of packing.
func (s Stats) CellUpperBound() int {
	return s.LUTs + s.Consts + s.RAMs + s.FFs + s.Latches
}

// refs lists every node id a node reads combinationally (its fanin through
// which values must be settled before it can be evaluated).
func (nd *Node) refs() []ID {
	var out []ID
	switch nd.Kind {
	case KindLUT, KindOutput, KindRAM:
		out = append(out, nd.Ins...)
	}
	if nd.Kind == KindRAM {
		// read is combinational on address only; D/CE sampled at the edge
		return out
	}
	return out
}

// allRefs lists every node id referenced at all (validation).
func (nd *Node) allRefs() []ID {
	out := append([]ID{}, nd.Ins...)
	if nd.Kind == KindFF || nd.Kind == KindLatch || nd.Kind == KindRAM {
		out = append(out, nd.D)
		if nd.CE != None {
			out = append(out, nd.CE)
		}
	}
	return out
}

// Validate checks structural well-formedness: reference ranges, input
// counts, and combinational acyclicity (FF and latch outputs break cycles;
// purely combinational loops are rejected).
func (n *Netlist) Validate() error {
	for i, nd := range n.Nodes {
		for _, r := range nd.allRefs() {
			if r < 0 || int(r) >= len(n.Nodes) {
				return fmt.Errorf("netlist %s: node %d (%s) references out-of-range id %d", n.Name, i, nd.Name, r)
			}
			if n.Nodes[r].Kind == KindOutput {
				return fmt.Errorf("netlist %s: node %d (%s) reads from an output node", n.Name, i, nd.Name)
			}
		}
		switch nd.Kind {
		case KindOutput:
			if len(nd.Ins) != 1 {
				return fmt.Errorf("netlist %s: output %s must have exactly one source", n.Name, nd.Name)
			}
		case KindRAM:
			if len(nd.Ins) != 4 {
				return fmt.Errorf("netlist %s: RAM %s must have 4 address bits", n.Name, nd.Name)
			}
		case KindFF, KindLatch:
			if nd.D == None {
				return fmt.Errorf("netlist %s: %s %s has no D input", n.Name, nd.Kind, nd.Name)
			}
		}
	}
	if _, err := n.combOrder(); err != nil {
		return err
	}
	return nil
}

// combOrder topologically sorts nodes whose value is computed
// combinationally (LUT, Output, RAM-read). Inputs, constants, FFs and
// latches are sources for ordering purposes (a latch's combinational
// transparency is handled by the simulator's settle loop).
func (n *Netlist) combOrder() ([]ID, error) {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	colour := make([]uint8, len(n.Nodes))
	var order []ID
	var visit func(id ID) error
	visit = func(id ID) error {
		switch colour[id] {
		case black:
			return nil
		case grey:
			return fmt.Errorf("netlist %s: combinational loop through %s", n.Name, n.Nodes[id].Name)
		}
		colour[id] = grey
		nd := &n.Nodes[id]
		if nd.Kind == KindLUT || nd.Kind == KindOutput || nd.Kind == KindRAM {
			for _, r := range nd.refs() {
				if err := visit(r); err != nil {
					return err
				}
			}
			order = append(order, id)
		}
		colour[id] = black
		return nil
	}
	ids := make([]ID, len(n.Nodes))
	for i := range ids {
		ids[i] = ID(i)
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	for _, id := range ids {
		if err := visit(id); err != nil {
			return nil, err
		}
	}
	return order, nil
}
