// Package sim executes the configured fabric cycle-accurately, deriving
// circuit behaviour from the configuration memory itself. Because every
// relocation step is a configuration-memory edit, the simulator sees exactly
// what the silicon would see: paralleled drivers resolve like shorted
// routing switches, broken nets float, and a replica output connected with
// the wrong value shows up as a conflict on the sink. A lock-step harness
// compares the fabric against the golden netlist simulator cycle by cycle
// while relocations are in flight — the reproduction of the paper's "no loss
// of information or functional disturbance was observed".
package sim

// Val is a four-state signal value.
type Val uint8

// Signal values.
const (
	// Low and High are definite logic levels.
	Low Val = iota
	High
	// Unknown marks a conflict (two parallel drivers disagreeing) or a
	// value derived from one.
	Unknown
	// Undriven marks a floating node (no enabled driver) — a broken
	// signal, which the relocation procedure must never produce.
	Undriven
)

var valNames = [...]string{"0", "1", "X", "Z"}

func (v Val) String() string { return valNames[v] }

// Definite reports whether the value is a real logic level.
func (v Val) Definite() bool { return v == Low || v == High }

// FromBool converts a bool to a definite value.
func FromBool(b bool) Val {
	if b {
		return High
	}
	return Low
}

// Bool returns the boolean level; only meaningful when Definite.
func (v Val) Bool() bool { return v == High }

// Resolve combines the values of parallel drivers on one node, mirroring
// shorted routing switches: no driver floats, agreeing drivers win, and
// disagreement is a conflict. The paper's two-phase procedure exploits the
// agreeing case ("the outputs of the CLB replica are already perfectly
// stable when they are connected"), and the Fig. 6 fuzziness shows up as
// Unknown if the procedure ever parallels disagreeing drivers.
func Resolve(vals []Val) Val {
	out := Undriven
	for _, v := range vals {
		switch v {
		case Undriven:
			continue
		case Unknown:
			return Unknown
		}
		if out == Undriven {
			out = v
		} else if out != v {
			return Unknown
		}
	}
	return out
}
