package sim_test

import (
	"testing"

	"repro/internal/fabric"
	"repro/internal/itc99"
	"repro/internal/place"
	"repro/internal/sim"
)

func benchDesign(b *testing.B, name string) *sim.LockStep {
	b.Helper()
	dev := fabric.NewDevice(fabric.XCV50)
	nl, err := itc99.Get(name)
	if err != nil {
		b.Fatal(err)
	}
	region, err := place.AutoRegion(dev, nl, 2, 2, 0.35)
	if err != nil {
		b.Fatal(err)
	}
	d, err := place.Place(dev, nl, place.Options{Region: region})
	if err != nil {
		b.Fatal(err)
	}
	ls, err := sim.NewLockStep(d)
	if err != nil {
		b.Fatal(err)
	}
	return ls
}

func BenchmarkLockStepCycleB03(b *testing.B) {
	ls := benchDesign(b, "b03")
	in := make([]bool, len(ls.Design.NL.Inputs()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in[0] = i&1 == 1
		if err := ls.Step(in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFabricRederiveAfterFrameWrite(b *testing.B) {
	ls := benchDesign(b, "b02")
	dev := ls.Design.Dev
	major := dev.MajorOfArrayCol(ls.Design.Region.Col)
	fr, err := dev.ReadFrame(major, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := dev.WriteFrame(major, 0, fr); err != nil {
			b.Fatal(err)
		}
		if err := ls.Fab.Settle(); err != nil {
			b.Fatal(err)
		}
	}
}
