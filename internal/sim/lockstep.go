package sim

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/netlist"
	"repro/internal/place"
)

// LockStep runs a placed design on the fabric simulator in lock-step with
// the golden netlist simulator and compares primary outputs every cycle.
// This is the reproduction of the paper's experimental check: "No loss of
// information or functional disturbance was observed during the execution of
// these experiments" — here it is asserted, not observed.
type LockStep struct {
	Design *place.Design
	Golden *netlist.Sim
	Fab    *FabricSim

	inputIDs  []netlist.ID
	outputIDs []netlist.ID
	Cycles    int
}

// NewLockStep builds the harness for a placed design.
func NewLockStep(d *place.Design) (*LockStep, error) {
	golden, err := netlist.NewSim(d.NL)
	if err != nil {
		return nil, err
	}
	ls := &LockStep{
		Design:    d,
		Golden:    golden,
		Fab:       NewFabricSim(d.Dev),
		inputIDs:  d.NL.Inputs(),
		outputIDs: d.NL.Outputs(),
	}
	return ls, nil
}

// MismatchError reports a divergence between golden model and fabric.
type MismatchError struct {
	Cycle  int
	Output string
	Golden bool
	Fabric Val
}

func (e *MismatchError) Error() string {
	return fmt.Sprintf("sim: cycle %d: output %q fabric=%v golden=%v",
		e.Cycle, e.Output, e.Fabric, e.Golden)
}

// Step drives one clock cycle on both models and compares all primary
// outputs.
func (ls *LockStep) Step(inputs []bool) error {
	if len(inputs) != len(ls.inputIDs) {
		return fmt.Errorf("sim: %d inputs provided, design has %d", len(inputs), len(ls.inputIDs))
	}
	padIn := make(map[fabric.PadRef]bool, len(inputs))
	for i, id := range ls.inputIDs {
		padIn[ls.Design.PadOf[id]] = inputs[i]
	}
	gout, err := ls.Golden.Step(inputs)
	if err != nil {
		return err
	}
	if err := ls.Fab.Step(padIn); err != nil {
		return err
	}
	ls.Cycles++
	return ls.compareOutputs(gout)
}

func (ls *LockStep) compareOutputs(gout []bool) error {
	for i, id := range ls.outputIDs {
		fv := ls.Fab.PadValue(ls.Design.PadOf[id])
		if !fv.Definite() || fv.Bool() != gout[i] {
			return &MismatchError{
				Cycle:  ls.Cycles,
				Output: ls.Design.NL.Nodes[id].Name,
				Golden: gout[i],
				Fabric: fv,
			}
		}
	}
	return nil
}

// Settle propagates both models without a clock edge (asynchronous designs)
// and compares outputs.
func (ls *LockStep) Settle(inputs []bool) error {
	if err := ls.Golden.SetInputs(inputs); err != nil {
		return err
	}
	if err := ls.Golden.Settle(); err != nil {
		return err
	}
	for i, id := range ls.inputIDs {
		ls.Fab.SetPadInput(ls.Design.PadOf[id], inputs[i])
	}
	if err := ls.Fab.Settle(); err != nil {
		return err
	}
	gout := ls.Golden.Outputs()
	return ls.compareOutputs(gout)
}

// CheckState compares every storage element's state between the golden model
// and the fabric — the paper's "correct transfer of state information".
func (ls *LockStep) CheckState() error {
	for id, nd := range ls.Design.NL.Nodes {
		switch nd.Kind {
		case netlist.KindFF, netlist.KindLatch:
			ref, ok := ls.Design.CellOf[netlist.ID(id)]
			if !ok {
				return fmt.Errorf("sim: state element %s has no cell", nd.Name)
			}
			fv := ls.Fab.CellQ(ref)
			gv := ls.Golden.State(netlist.ID(id))
			if !fv.Definite() || fv.Bool() != gv {
				return fmt.Errorf("sim: state of %s: fabric=%v golden=%v", nd.Name, fv, gv)
			}
		case netlist.KindRAM:
			ref := ls.Design.CellOf[netlist.ID(id)]
			want := ls.Golden.RAMContents(netlist.ID(id))
			got := ls.Fab.ram[ref]
			for bit := 0; bit < 16; bit++ {
				fv := got[bit]
				gv := want>>bit&1 == 1
				if !fv.Definite() || fv.Bool() != gv {
					return fmt.Errorf("sim: RAM %s bit %d: fabric=%v golden=%v", nd.Name, bit, fv, gv)
				}
			}
		}
	}
	return nil
}

// OutputSnapshot captures the current fabric output values.
func (ls *LockStep) OutputSnapshot() []Val {
	out := make([]Val, len(ls.outputIDs))
	for i, id := range ls.outputIDs {
		out[i] = ls.Fab.PadValue(ls.Design.PadOf[id])
	}
	return out
}

// VerifyQuiescent re-settles the fabric (after a configuration edit) and
// checks that no observed output moved, floated or went unknown: the glitch
// and signal-continuity detector run after every frame write of a
// relocation.
func (ls *LockStep) VerifyQuiescent(before []Val) error {
	if err := ls.Fab.Settle(); err != nil {
		return err
	}
	now := ls.OutputSnapshot()
	for i := range now {
		if now[i] != before[i] {
			return fmt.Errorf("sim: glitch on output %q: %v -> %v (configuration edit disturbed the circuit)",
				ls.Design.NL.Nodes[ls.outputIDs[i]].Name, before[i], now[i])
		}
		if !now[i].Definite() {
			return fmt.Errorf("sim: output %q is %v after configuration edit",
				ls.Design.NL.Nodes[ls.outputIDs[i]].Name, now[i])
		}
	}
	return nil
}
