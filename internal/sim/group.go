package sim

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/netlist"
	"repro/internal/place"
)

// Group runs several placed designs that share one device in lock-step
// against their golden models, clocking the fabric exactly once per cycle.
// This models the paper's Fig. 1 world: multiple applications resident on
// the same FPGA, all of which must keep running while any one of them is
// being relocated.
type Group struct {
	Fab     *FabricSim
	Members []*Member
}

// Member is one design in the group.
type Member struct {
	Design *place.Design
	Golden *netlist.Sim

	inputIDs  []netlist.ID
	outputIDs []netlist.ID
}

// NewGroup builds a group over a device.
func NewGroup(dev *fabric.Device) *Group {
	return &Group{Fab: NewFabricSim(dev)}
}

// Add registers a placed design.
func (g *Group) Add(d *place.Design) (*Member, error) {
	golden, err := netlist.NewSim(d.NL)
	if err != nil {
		return nil, err
	}
	m := &Member{
		Design:    d,
		Golden:    golden,
		inputIDs:  d.NL.Inputs(),
		outputIDs: d.NL.Outputs(),
	}
	g.Members = append(g.Members, m)
	return m, nil
}

// Step applies one clock cycle to the whole device; inputs[i] drives member
// i. Every member's outputs are compared against its golden model.
func (g *Group) Step(inputs [][]bool) error {
	if len(inputs) != len(g.Members) {
		return fmt.Errorf("sim: %d input sets for %d members", len(inputs), len(g.Members))
	}
	for i, m := range g.Members {
		if len(inputs[i]) != len(m.inputIDs) {
			return fmt.Errorf("sim: member %d: %d inputs, want %d", i, len(inputs[i]), len(m.inputIDs))
		}
		for k, id := range m.inputIDs {
			g.Fab.SetPadInput(m.Design.PadOf[id], inputs[i][k])
		}
	}
	if err := g.Fab.Step(nil); err != nil {
		return err
	}
	for i, m := range g.Members {
		gout, err := m.Golden.Step(inputs[i])
		if err != nil {
			return err
		}
		for k, id := range m.outputIDs {
			fv := g.Fab.PadValue(m.Design.PadOf[id])
			if !fv.Definite() || fv.Bool() != gout[k] {
				return &MismatchError{
					Output: m.Design.Name + "." + m.Design.NL.Nodes[id].Name,
					Golden: gout[k],
					Fabric: fv,
				}
			}
		}
	}
	return nil
}

// CheckState verifies every member's stored state against its golden model.
func (g *Group) CheckState() error {
	for _, m := range g.Members {
		for id, nd := range m.Design.NL.Nodes {
			if nd.Kind != netlist.KindFF && nd.Kind != netlist.KindLatch {
				continue
			}
			ref := m.Design.CellOf[netlist.ID(id)]
			fv := g.Fab.CellQ(ref)
			gv := m.Golden.State(netlist.ID(id))
			if !fv.Definite() || fv.Bool() != gv {
				return fmt.Errorf("sim: %s.%s state: fabric=%v golden=%v",
					m.Design.Name, nd.Name, fv, gv)
			}
		}
	}
	return nil
}
