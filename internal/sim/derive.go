package sim

import (
	"repro/internal/fabric"
)

// driver is a terminal signal source reached by walking the routing
// configuration backwards from a sink: a cell output or an input pad.
type driver struct {
	isPad bool
	pad   fabric.PadRef
	cell  fabric.CellRef
	regd  bool // cell XQ output (vs combinational X)
}

// pinKey identifies one resolvable input point.
type pinKey struct {
	tile  fabric.Coord
	local int // pin local id
}

// derived is the connectivity/configuration view extracted from the device,
// rebuilt incrementally when configuration generations move.
type derived struct {
	dev *fabric.Device

	gen    uint64
	padGen uint64

	// cellCfg caches decoded cell configurations per tile.
	cellCfg map[fabric.Coord][4]fabric.CellConfig
	tileGen map[fabric.Coord]uint64

	// pinDrivers caches, per pin, the terminal drivers and the set of
	// tiles whose configuration the walk depended on.
	pinDrivers map[pinKey][]driver
	pinDeps    map[pinKey]map[fabric.Coord]uint64

	// padDrivers caches output-pad driver lists.
	padDrivers map[fabric.PadRef][]driver
	padDeps    map[fabric.PadRef]map[fabric.Coord]uint64
}

func newDerived(dev *fabric.Device) *derived {
	return &derived{
		dev:        dev,
		cellCfg:    map[fabric.Coord][4]fabric.CellConfig{},
		tileGen:    map[fabric.Coord]uint64{},
		pinDrivers: map[pinKey][]driver{},
		pinDeps:    map[pinKey]map[fabric.Coord]uint64{},
		padDrivers: map[fabric.PadRef][]driver{},
		padDeps:    map[fabric.PadRef]map[fabric.Coord]uint64{},
	}
}

// refresh invalidates caches whose inputs changed.
func (dv *derived) refresh() {
	gen := dv.dev.Generation()
	if gen == dv.gen {
		return
	}
	dv.gen = gen
	// Drop cell configs of stale tiles.
	for c, g := range dv.tileGen {
		if dv.dev.TileGeneration(c) != g {
			delete(dv.cellCfg, c)
			delete(dv.tileGen, c)
		}
	}
	// Drop pin walks that crossed stale tiles (or depend on pads).
	padGen := dv.dev.PadGeneration()
	padsMoved := padGen != dv.padGen
	dv.padGen = padGen
	for k, deps := range dv.pinDeps {
		stale := false
		for c, g := range deps {
			if dv.dev.TileGeneration(c) != g {
				stale = true
				break
			}
		}
		if stale || padsMoved {
			delete(dv.pinDrivers, k)
			delete(dv.pinDeps, k)
		}
	}
	for p, deps := range dv.padDeps {
		stale := padsMoved
		for c, g := range deps {
			if dv.dev.TileGeneration(c) != g {
				stale = true
				break
			}
		}
		if stale {
			delete(dv.padDrivers, p)
			delete(dv.padDeps, p)
		}
	}
}

// cell returns the decoded configuration of a cell.
func (dv *derived) cell(ref fabric.CellRef) fabric.CellConfig {
	cfgs, ok := dv.cellCfg[ref.Coord]
	if !ok {
		for i := 0; i < fabric.CellsPerCLB; i++ {
			cfgs[i] = dv.dev.ReadCell(fabric.CellRef{Coord: ref.Coord, Cell: i})
		}
		dv.cellCfg[ref.Coord] = cfgs
		dv.tileGen[ref.Coord] = dv.dev.TileGeneration(ref.Coord)
	}
	return cfgs[ref.Cell]
}

// drivers returns the terminal drivers of a pin, walking the routing
// configuration backwards through enabled PIPs.
func (dv *derived) drivers(k pinKey) []driver {
	if d, ok := dv.pinDrivers[k]; ok {
		return d
	}
	deps := map[fabric.Coord]uint64{}
	seen := map[fabric.NodeID]bool{}
	var out []driver
	dv.walk(dv.dev.NodeIDAt(k.tile, k.local), seen, deps, &out)
	dv.pinDrivers[k] = out
	dv.pinDeps[k] = deps
	return out
}

// padOutDrivers returns the terminal drivers of an output pad.
func (dv *derived) padOutDrivers(p fabric.PadRef) []driver {
	if d, ok := dv.padDrivers[p]; ok {
		return d
	}
	deps := map[fabric.Coord]uint64{}
	seen := map[fabric.NodeID]bool{}
	var out []driver
	for _, src := range dv.dev.PadEnabledSources(p) {
		dv.walk(src, seen, deps, &out)
	}
	dv.padDrivers[p] = out
	dv.padDeps[p] = deps
	return out
}

// walk resolves a node to terminal drivers, recursing through wire sinks.
// Routing loops terminate via the seen set (a loop with no driver floats).
func (dv *derived) walk(n fabric.NodeID, seen map[fabric.NodeID]bool, deps map[fabric.Coord]uint64, out *[]driver) {
	if seen[n] {
		return
	}
	seen[n] = true
	if pad, ok := dv.dev.PadOfNode(n); ok {
		*out = append(*out, driver{isPad: true, pad: pad})
		return
	}
	c, local, ok := dv.dev.SplitNode(n)
	if !ok {
		return
	}
	kind, _, idx := fabric.DecodeLocal(local)
	switch kind {
	case fabric.KindOutX:
		*out = append(*out, driver{cell: fabric.CellRef{Coord: c, Cell: idx}})
		return
	case fabric.KindOutXQ:
		*out = append(*out, driver{cell: fabric.CellRef{Coord: c, Cell: idx}, regd: true})
		return
	}
	// A wire start or pin: recurse through its enabled PIP sources.
	deps[c] = dv.dev.TileGeneration(c)
	for _, src := range dv.dev.EnabledSourceNodes(c, local) {
		dv.walk(src, seen, deps, out)
	}
}

// activeCells scans the device for configured cells. The scan is cheap
// enough to repeat whenever the configuration generation moves (only stale
// tiles are re-read thanks to the cellCfg cache).
func (dv *derived) activeCells() []fabric.CellRef {
	var out []fabric.CellRef
	for row := 0; row < dv.dev.Rows; row++ {
		for col := 0; col < dv.dev.Cols; col++ {
			c := fabric.Coord{Row: row, Col: col}
			for i := 0; i < fabric.CellsPerCLB; i++ {
				ref := fabric.CellRef{Coord: c, Cell: i}
				if dv.cell(ref).InUse() {
					out = append(out, ref)
				}
			}
		}
	}
	return out
}
