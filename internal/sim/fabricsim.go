package sim

import (
	"fmt"

	"repro/internal/fabric"
)

// FabricSim executes the configured device cycle by cycle. Behaviour comes
// straight from the configuration memory: cells, PIPs and pads are re-derived
// (incrementally) whenever frames change, so partial reconfiguration acts on
// the running circuit exactly as it does in silicon.
type FabricSim struct {
	dev *fabric.Device
	dv  *derived

	// padIn holds externally driven input pad values.
	padIn map[fabric.PadRef]Val
	// x caches combinational outputs per active cell; q holds storage
	// element state; ram holds distributed-RAM contents.
	x   map[fabric.CellRef]Val
	q   map[fabric.CellRef]Val
	ram map[fabric.CellRef][16]Val

	active    []fabric.CellRef
	activeGen uint64
	settleCap int
}

// NewFabricSim builds a simulator over a device.
func NewFabricSim(dev *fabric.Device) *FabricSim {
	s := &FabricSim{
		dev:   dev,
		dv:    newDerived(dev),
		padIn: map[fabric.PadRef]Val{},
		x:     map[fabric.CellRef]Val{},
		q:     map[fabric.CellRef]Val{},
		ram:   map[fabric.CellRef][16]Val{},
	}
	s.syncActive(true)
	return s
}

// Device returns the simulated device.
func (s *FabricSim) Device() *fabric.Device { return s.dev }

// syncActive refreshes the derived view and the active cell list; newly
// configured storage elements power up in their Init state, cells that
// remain configured keep their state across reconfiguration (partial
// reconfiguration does not pulse GSR — the property the relocation
// procedure depends on).
func (s *FabricSim) syncActive(force bool) {
	gen := s.dev.Generation()
	if !force && gen == s.activeGen {
		return
	}
	s.dv.refresh()
	s.activeGen = gen
	prev := map[fabric.CellRef]bool{}
	for _, ref := range s.active {
		prev[ref] = true
	}
	s.active = s.dv.activeCells()
	now := map[fabric.CellRef]bool{}
	for _, ref := range s.active {
		now[ref] = true
		if force || !prev[ref] {
			s.initCell(ref)
			continue
		}
		// A storage element newly enabled on an already-active cell
		// powers up in its Init state.
		if cc := s.dv.cell(ref); cc.FF {
			if _, ok := s.q[ref]; !ok {
				s.q[ref] = FromBool(cc.Init)
			}
		}
	}
	for ref := range prev {
		if !now[ref] {
			delete(s.q, ref)
			delete(s.x, ref)
			delete(s.ram, ref)
		}
	}
}

func (s *FabricSim) initCell(ref fabric.CellRef) {
	cc := s.dv.cell(ref)
	if cc.FF {
		s.q[ref] = FromBool(cc.Init)
	}
	if cc.RAM {
		var r [16]Val
		s.ram[ref] = r // power-up zeroes in the model
	}
	s.x[ref] = Unknown
}

// SetPadInput drives an input pad.
func (s *FabricSim) SetPadInput(p fabric.PadRef, v bool) {
	s.padIn[p] = FromBool(v)
}

// driverVal evaluates a terminal driver.
func (s *FabricSim) driverVal(d driver) Val {
	if d.isPad {
		pc := s.dev.ReadPad(d.pad)
		if !pc.Input {
			return Undriven
		}
		if v, ok := s.padIn[d.pad]; ok {
			return v
		}
		return Low // unconnected test inputs idle low
	}
	if d.regd {
		if v, ok := s.q[d.cell]; ok {
			return v
		}
		return Undriven
	}
	if v, ok := s.x[d.cell]; ok {
		return v
	}
	return Undriven
}

// pinVal resolves an input pin's value across all its parallel drivers.
func (s *FabricSim) pinVal(ref fabric.CellRef, local int) Val {
	drs := s.dv.drivers(pinKey{tile: ref.Coord, local: local})
	if len(drs) == 0 {
		return Undriven
	}
	vals := make([]Val, len(drs))
	for i, d := range drs {
		vals[i] = s.driverVal(d)
	}
	return Resolve(vals)
}

// lutEvalX evaluates a truth table under four-state inputs: the output is
// definite only if every completion of the X/Z inputs agrees.
func lutEvalX(lut uint16, ins [4]Val) Val {
	idx := 0
	var free []int
	for i, v := range ins {
		switch v {
		case High:
			idx |= 1 << i
		case Low:
		default:
			free = append(free, i)
		}
	}
	out := Undriven
	n := 1 << len(free)
	for m := 0; m < n; m++ {
		v := idx
		for b, i := range free {
			if m>>b&1 == 1 {
				v |= 1 << i
			}
		}
		bit := FromBool(lut>>(v&0xF)&1 == 1)
		if out == Undriven {
			out = bit
		} else if out != bit {
			return Unknown
		}
	}
	return out
}

// evalCellX computes a cell's combinational output from current pin values.
func (s *FabricSim) evalCellX(ref fabric.CellRef) Val {
	cc := s.dv.cell(ref)
	var ins [4]Val
	for k := 0; k < fabric.LUTInputs; k++ {
		ins[k] = s.pinVal(ref, fabric.LocalPinI(ref.Cell, k))
	}
	if cc.RAM {
		addr, ok := s.ramAddr(ins)
		if !ok {
			return Unknown
		}
		return s.ram[ref][addr]
	}
	return lutEvalX(cc.LUT, ins)
}

func (s *FabricSim) ramAddr(ins [4]Val) (int, bool) {
	addr := 0
	for i, v := range ins {
		if !v.Definite() {
			return 0, false
		}
		if v.Bool() {
			addr |= 1 << i
		}
	}
	return addr, true
}

// ceVal computes the effective clock-enable/gate level of a cell.
func (s *FabricSim) ceVal(ref fabric.CellRef, cc fabric.CellConfig) Val {
	if !cc.CEUsed {
		return High
	}
	v := s.pinVal(ref, fabric.LocalPinCE(ref.Cell))
	if cc.CEInv && v.Definite() {
		v = FromBool(!v.Bool())
	}
	return v
}

// dVal computes the storage element's data input.
func (s *FabricSim) dVal(ref fabric.CellRef, cc fabric.CellConfig) Val {
	if cc.DFromBX {
		return s.pinVal(ref, fabric.LocalPinBX(ref.Cell))
	}
	return s.x[ref]
}

// Settle propagates combinational logic (and transparent latches) to a
// fixpoint. It returns an error on oscillation.
func (s *FabricSim) Settle() error {
	s.syncActive(false)
	limit := 8 + 2*len(s.active)
	for iter := 0; ; iter++ {
		if iter > limit {
			return fmt.Errorf("sim: combinational/latch oscillation did not settle")
		}
		changed := false
		for _, ref := range s.active {
			nx := s.evalCellX(ref)
			if s.x[ref] != nx {
				s.x[ref] = nx
				changed = true
			}
		}
		for _, ref := range s.active {
			cc := s.dv.cell(ref)
			if !cc.FF || !cc.Latch {
				continue
			}
			g := s.ceVal(ref, cc)
			if g == High {
				d := s.dVal(ref, cc)
				if s.q[ref] != d {
					s.q[ref] = d
					changed = true
				}
			} else if !g.Definite() {
				if s.q[ref] != Unknown {
					s.q[ref] = Unknown
					changed = true
				}
			}
		}
		if !changed {
			return nil
		}
	}
}

// ClockEdge applies one rising clock edge: FFs capture, RAM write ports
// commit. All sampling happens against pre-edge values.
func (s *FabricSim) ClockEdge() {
	type ffUpd struct {
		ref fabric.CellRef
		v   Val
	}
	type ramUpd struct {
		ref  fabric.CellRef
		addr int
		ok   bool
		v    Val
	}
	var ffs []ffUpd
	var rams []ramUpd
	for _, ref := range s.active {
		cc := s.dv.cell(ref)
		if cc.FF && !cc.Latch {
			ce := s.ceVal(ref, cc)
			switch ce {
			case High:
				ffs = append(ffs, ffUpd{ref, s.dVal(ref, cc)})
			case Low:
			default:
				ffs = append(ffs, ffUpd{ref, Unknown})
			}
		}
		if cc.RAM {
			we := s.ceVal(ref, cc)
			if we == High || !we.Definite() && we != Undriven {
				var ins [4]Val
				for k := 0; k < fabric.LUTInputs; k++ {
					ins[k] = s.pinVal(ref, fabric.LocalPinI(ref.Cell, k))
				}
				addr, ok := s.ramAddr(ins)
				d := s.pinVal(ref, fabric.LocalPinBX(ref.Cell))
				if we == High {
					rams = append(rams, ramUpd{ref, addr, ok, d})
				} else {
					rams = append(rams, ramUpd{ref, 0, false, Unknown})
				}
			}
		}
	}
	for _, u := range ffs {
		s.q[u.ref] = u.v
	}
	for _, u := range rams {
		r := s.ram[u.ref]
		if u.ok {
			r[u.addr] = u.v
		} else {
			for i := range r {
				r[i] = Unknown // write with unknown address corrupts all
			}
		}
		s.ram[u.ref] = r
	}
}

// Step runs one full clock cycle with the given input pad values and
// returns after the post-edge settle.
func (s *FabricSim) Step(inputs map[fabric.PadRef]bool) error {
	for p, v := range inputs {
		s.SetPadInput(p, v)
	}
	if err := s.Settle(); err != nil {
		return err
	}
	s.ClockEdge()
	return s.Settle()
}

// PadValue returns the resolved value on an output pad.
func (s *FabricSim) PadValue(p fabric.PadRef) Val {
	s.syncActive(false)
	drs := s.dv.padOutDrivers(p)
	if len(drs) == 0 {
		return Undriven
	}
	vals := make([]Val, len(drs))
	for i, d := range drs {
		vals[i] = s.driverVal(d)
	}
	return Resolve(vals)
}

// CellX returns a cell's combinational output value.
func (s *FabricSim) CellX(ref fabric.CellRef) Val { return s.x[ref] }

// CellQ returns a cell's storage-element state.
func (s *FabricSim) CellQ(ref fabric.CellRef) Val {
	if v, ok := s.q[ref]; ok {
		return v
	}
	return Undriven
}

// SetCellQ forces a storage element's state (tests and power-up modelling).
func (s *FabricSim) SetCellQ(ref fabric.CellRef, v Val) { s.q[ref] = v }

// ActiveCells returns the currently configured cells.
func (s *FabricSim) ActiveCells() []fabric.CellRef {
	s.syncActive(false)
	out := make([]fabric.CellRef, len(s.active))
	copy(out, s.active)
	return out
}

// PinValue exposes pin resolution (used by the relocation engine to check
// signal continuity).
func (s *FabricSim) PinValue(ref fabric.CellRef, local int) Val {
	s.syncActive(false)
	return s.pinVal(ref, local)
}
