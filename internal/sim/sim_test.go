package sim

import (
	"testing"
	"testing/quick"

	"repro/internal/fabric"
	"repro/internal/route"
)

func TestResolve(t *testing.T) {
	cases := []struct {
		in   []Val
		want Val
	}{
		{nil, Undriven},
		{[]Val{Undriven}, Undriven},
		{[]Val{Low}, Low},
		{[]Val{High}, High},
		{[]Val{High, High}, High},
		{[]Val{Low, Low, Low}, Low},
		{[]Val{High, Low}, Unknown},
		{[]Val{High, Undriven}, High},
		{[]Val{Undriven, Low}, Low},
		{[]Val{Unknown, High}, Unknown},
		{[]Val{Low, Unknown}, Unknown},
	}
	for _, c := range cases {
		if got := Resolve(c.in); got != c.want {
			t.Errorf("Resolve(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestResolveProperties(t *testing.T) {
	// Order independence.
	f := func(raw []uint8) bool {
		vals := make([]Val, len(raw))
		for i, r := range raw {
			vals[i] = Val(r % 4)
		}
		fwd := Resolve(vals)
		rev := make([]Val, len(vals))
		for i := range vals {
			rev[len(vals)-1-i] = vals[i]
		}
		return fwd == Resolve(rev)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLutEvalX(t *testing.T) {
	and := fabric.ExpandLUT(fabric.LUTAnd2, 2)
	// Definite inputs.
	if lutEvalX(and, [4]Val{High, High, Low, Low}) != High {
		t.Error("AND(1,1) != 1")
	}
	if lutEvalX(and, [4]Val{High, Low, Low, Low}) != Low {
		t.Error("AND(1,0) != 0")
	}
	// X on a controlling input: AND(0, X) = 0 regardless.
	if lutEvalX(and, [4]Val{Low, Unknown, Low, Low}) != Low {
		t.Error("AND(0,X) should be 0")
	}
	// X on a sensitising input: AND(1, X) = X.
	if lutEvalX(and, [4]Val{High, Unknown, Low, Low}) != Unknown {
		t.Error("AND(1,X) should be X")
	}
	// Expanded tables ignore floating unused pins.
	if lutEvalX(and, [4]Val{High, High, Undriven, Unknown}) != High {
		t.Error("unused pins must not affect expanded LUT")
	}
}

// buildToggle configures, by hand, a cell whose FF toggles every cycle
// (D = NOT Q via the cell's own LUT), wired out to a pad.
func buildToggle(t *testing.T, d *fabric.Device) (fabric.CellRef, fabric.PadRef) {
	t.Helper()
	ref := fabric.CellRef{Coord: fabric.Coord{Row: 2, Col: 2}, Cell: 0}
	d.WriteCell(ref, fabric.CellConfig{
		Used: true,
		LUT:  fabric.ExpandLUT(fabric.LUTInv, 1),
		FF:   true,
	})
	// Route XQ back to I0 (local feedback PIP exists in the templates).
	c := ref.Coord
	xq := d.NodeIDAt(c, fabric.LocalOutXQ(0))
	i0 := fabric.LocalPinI(0, 0)
	bit, ok := d.PIPBitFor(c, i0, xq)
	if !ok {
		t.Fatal("no local feedback PIP XQ0 -> I(0,0)")
	}
	d.SetPIPMask(c, i0, 1<<bit)
	// Route XQ to an output pad.
	pad := fabric.PadRef{Side: fabric.North, Pos: 5, K: 0}
	r := route.NewRouter(d)
	nets, err := r.RouteAll([]route.Net{{Name: "q", Source: xq, Sinks: []fabric.NodeID{d.PadNodeID(pad)}}})
	if err != nil {
		t.Fatal(err)
	}
	if err := route.Apply(d, nets); err != nil {
		t.Fatal(err)
	}
	return ref, pad
}

func TestToggleCellOnFabric(t *testing.T) {
	d := fabric.NewDevice(fabric.TestDevice)
	ref, pad := buildToggle(t, d)
	s := NewFabricSim(d)
	if got := s.CellQ(ref); got != Low {
		t.Fatalf("init state = %v", got)
	}
	var seq []Val
	for i := 0; i < 4; i++ {
		if err := s.Step(nil); err != nil {
			t.Fatal(err)
		}
		seq = append(seq, s.PadValue(pad))
	}
	want := []Val{High, Low, High, Low}
	for i := range want {
		if seq[i] != want[i] {
			t.Fatalf("toggle sequence %v, want %v", seq, want)
		}
	}
}

func TestFloatingPinIsUndriven(t *testing.T) {
	d := fabric.NewDevice(fabric.TestDevice)
	ref := fabric.CellRef{Coord: fabric.Coord{Row: 1, Col: 1}, Cell: 2}
	d.WriteCell(ref, fabric.CellConfig{Used: true, LUT: fabric.LUTBuf})
	s := NewFabricSim(d)
	if err := s.Settle(); err != nil {
		t.Fatal(err)
	}
	// I0 unconnected -> X output (buf of floating input).
	if got := s.CellX(ref); got.Definite() {
		t.Errorf("buffer of floating input = %v, want X/Z", got)
	}
	if got := s.PinValue(ref, fabric.LocalPinI(2, 0)); got != Undriven {
		t.Errorf("floating pin = %v, want Z", got)
	}
}

func TestParallelAgreeingDriversResolve(t *testing.T) {
	// Two constant-1 cells driving the same pin in parallel (the
	// relocation procedure's "outputs in parallel" case) resolve cleanly.
	d := fabric.NewDevice(fabric.TestDevice)
	c := fabric.Coord{Row: 3, Col: 3}
	d.WriteCell(fabric.CellRef{Coord: c, Cell: 0}, fabric.CellConfig{Used: true, LUT: fabric.LUTConst1})
	d.WriteCell(fabric.CellRef{Coord: c, Cell: 1}, fabric.CellConfig{Used: true, LUT: fabric.LUTConst1})
	sink := fabric.CellRef{Coord: c, Cell: 2}
	d.WriteCell(sink, fabric.CellConfig{Used: true, LUT: fabric.ExpandLUT(fabric.LUTBuf, 1)})
	i0 := fabric.LocalPinI(2, 0)
	var mask uint16
	for _, src := range []fabric.NodeID{
		d.NodeIDAt(c, fabric.LocalOutX(0)),
		d.NodeIDAt(c, fabric.LocalOutX(1)),
	} {
		bit, ok := d.PIPBitFor(c, i0, src)
		if !ok {
			t.Skip("template lacks both local PIPs for this pin")
		}
		mask |= 1 << bit
	}
	d.SetPIPMask(c, i0, mask)
	s := NewFabricSim(d)
	if err := s.Settle(); err != nil {
		t.Fatal(err)
	}
	if got := s.CellX(sink); got != High {
		t.Errorf("parallel agreeing drivers = %v, want 1", got)
	}
}

func TestParallelConflictingDriversAreUnknown(t *testing.T) {
	d := fabric.NewDevice(fabric.TestDevice)
	c := fabric.Coord{Row: 3, Col: 3}
	d.WriteCell(fabric.CellRef{Coord: c, Cell: 0}, fabric.CellConfig{Used: true, LUT: fabric.LUTConst1})
	d.WriteCell(fabric.CellRef{Coord: c, Cell: 1}, fabric.CellConfig{Used: true, LUT: fabric.LUTConst0})
	sink := fabric.CellRef{Coord: c, Cell: 2}
	d.WriteCell(sink, fabric.CellConfig{Used: true, LUT: fabric.ExpandLUT(fabric.LUTBuf, 1)})
	i0 := fabric.LocalPinI(2, 0)
	var mask uint16
	found := 0
	for _, src := range []fabric.NodeID{
		d.NodeIDAt(c, fabric.LocalOutX(0)),
		d.NodeIDAt(c, fabric.LocalOutX(1)),
	} {
		if bit, ok := d.PIPBitFor(c, i0, src); ok {
			mask |= 1 << bit
			found++
		}
	}
	if found != 2 {
		t.Skip("template lacks both local PIPs for this pin")
	}
	d.SetPIPMask(c, i0, mask)
	s := NewFabricSim(d)
	if err := s.Settle(); err != nil {
		t.Fatal(err)
	}
	if got := s.CellX(sink); got != Unknown {
		t.Errorf("conflicting drivers = %v, want X", got)
	}
}

func TestGatedFFHoldsWithoutCE(t *testing.T) {
	d := fabric.NewDevice(fabric.TestDevice)
	c := fabric.Coord{Row: 4, Col: 4}
	// Cell 0: gated FF with D from LUT (const 1), CE pin unrouted (floats).
	ref := fabric.CellRef{Coord: c, Cell: 0}
	d.WriteCell(ref, fabric.CellConfig{Used: true, LUT: fabric.LUTConst1, FF: true, CEUsed: true, Init: false})
	s := NewFabricSim(d)
	s.Step(nil)
	// Floating CE: capture result is Unknown (a modelling strictness the
	// relocation engine relies on to catch broken CE wiring).
	if got := s.CellQ(ref); got != Unknown {
		t.Errorf("FF with floating CE = %v, want X", got)
	}
}

func TestRAMCellWriteRead(t *testing.T) {
	d := fabric.NewDevice(fabric.TestDevice)
	c := fabric.Coord{Row: 5, Col: 5}
	ram := fabric.CellRef{Coord: c, Cell: 0}
	one := fabric.CellRef{Coord: c, Cell: 1}
	d.WriteCell(one, fabric.CellConfig{Used: true, LUT: fabric.LUTConst1})
	d.WriteCell(ram, fabric.CellConfig{Used: true, RAM: true, CEUsed: true})
	// Address pins float low? No: they must be driven. Drive I0..I3 and
	// CE and BX from cell 1 (constant 1) where PIPs allow; else skip.
	oneX := d.NodeIDAt(c, fabric.LocalOutX(1))
	pins := []int{
		fabric.LocalPinI(0, 0), fabric.LocalPinI(0, 1),
		fabric.LocalPinI(0, 2), fabric.LocalPinI(0, 3),
		fabric.LocalPinBX(0), fabric.LocalPinCE(0),
	}
	r := route.NewRouter(d)
	sinks := make([]fabric.NodeID, len(pins))
	for i, p := range pins {
		sinks[i] = d.NodeIDAt(c, p)
	}
	routed, err := r.RouteAll([]route.Net{{Name: "n", Source: oneX, Sinks: sinks}})
	if err != nil {
		t.Fatal(err)
	}
	if err := route.Apply(d, routed); err != nil {
		t.Fatal(err)
	}
	s := NewFabricSim(d)
	if err := s.Step(nil); err != nil {
		t.Fatal(err)
	}
	// All-ones address = 15 written with 1; read back combinationally.
	if got := s.CellX(ram); got != High {
		t.Errorf("RAM read after write = %v, want 1", got)
	}
	if got := s.ram[ram][15]; got != High {
		t.Errorf("RAM bit 15 = %v", got)
	}
	if got := s.ram[ram][0]; got != Low {
		t.Errorf("RAM bit 0 = %v, want untouched 0", got)
	}
}

func TestRewritingIdenticalConfigIsGlitchFree(t *testing.T) {
	// The relocation procedure depends on this property: "rewriting the
	// same configuration data does not generate any transient signals".
	d := fabric.NewDevice(fabric.TestDevice)
	ref, pad := buildToggle(t, d)
	_ = ref
	s := NewFabricSim(d)
	for i := 0; i < 3; i++ {
		s.Step(nil)
	}
	before := s.PadValue(pad)
	// Rewrite the whole column with identical data.
	major := d.MajorOfArrayCol(2)
	for m := 0; m < fabric.FramesPerCLBColumn; m++ {
		fr, err := d.ReadFrame(major, m)
		if err != nil {
			t.Fatal(err)
		}
		if err := d.WriteFrame(major, m, fr); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Settle(); err != nil {
		t.Fatal(err)
	}
	if got := s.PadValue(pad); got != before {
		t.Errorf("identical rewrite changed output: %v -> %v", before, got)
	}
	// And the FF state survived.
	if got := s.CellQ(ref); !got.Definite() {
		t.Errorf("FF state lost by identical rewrite: %v", got)
	}
}

func TestConfigEditIsObservedBySim(t *testing.T) {
	// Changing a LUT through the configuration memory must change the
	// simulated behaviour (the honesty property of the simulator).
	d := fabric.NewDevice(fabric.TestDevice)
	c := fabric.Coord{Row: 2, Col: 6}
	ref := fabric.CellRef{Coord: c, Cell: 0}
	d.WriteCell(ref, fabric.CellConfig{Used: true, LUT: fabric.LUTConst0})
	s := NewFabricSim(d)
	s.Settle()
	if got := s.CellX(ref); got != Low {
		t.Fatalf("const0 = %v", got)
	}
	d.WriteCell(ref, fabric.CellConfig{Used: true, LUT: fabric.LUTConst1})
	s.Settle()
	if got := s.CellX(ref); got != High {
		t.Fatalf("after LUT edit = %v, want 1", got)
	}
}
