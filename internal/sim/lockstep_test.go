package sim_test

import (
	"testing"

	"repro/internal/fabric"
	"repro/internal/itc99"
	"repro/internal/netlist"
	"repro/internal/place"
	"repro/internal/sim"
)

// TestLockStepWithDistributedRAM runs a placed design containing 16x1
// distributed RAMs and verifies outputs and RAM contents cycle by cycle.
func TestLockStepWithDistributedRAM(t *testing.T) {
	dev := fabric.NewDevice(fabric.XCV50)
	nl := itc99.Generate(itc99.GenConfig{
		Name: "ramckt", Inputs: 5, Outputs: 3, FFs: 6, LUTs: 14,
		Seed: 17, Style: itc99.FreeRunning, RAMs: 2,
	})
	d, err := place.Place(dev, nl, place.Options{Region: fabric.Rect{Row: 2, Col: 2, H: 4, W: 4}})
	if err != nil {
		t.Fatal(err)
	}
	ls, err := sim.NewLockStep(d)
	if err != nil {
		t.Fatal(err)
	}
	rng := uint64(123)
	for cycle := 0; cycle < 150; cycle++ {
		in := make([]bool, len(nl.Inputs()))
		for i := range in {
			rng = rng*6364136223846793005 + 1442695040888963407
			in[i] = rng>>41&1 == 1
		}
		if err := ls.Step(in); err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
	}
	if err := ls.CheckState(); err != nil {
		t.Fatalf("state (incl. RAM contents): %v", err)
	}
	// The RAMs must have actually been written during the run.
	wrote := false
	for id, nd := range nl.Nodes {
		if nd.Kind == netlist.KindRAM && ls.Golden.RAMContents(netlist.ID(id)) != 0 {
			wrote = true
		}
	}
	if !wrote {
		t.Error("no RAM writes happened in 150 cycles — weak test stimulus")
	}
}

// TestVerifyQuiescentCatchesInjectedGlitch: deliberately breaking a live net
// must be reported by the quiescence check.
func TestVerifyQuiescentCatchesInjectedGlitch(t *testing.T) {
	dev := fabric.NewDevice(fabric.XCV50)
	nl := netlist.New("probe")
	a := nl.Input("a")
	inv := nl.LUT("inv", fabric.LUTInv, a)
	nl.Output("y", inv)
	d, err := place.Place(dev, nl, place.Options{Region: fabric.Rect{Row: 3, Col: 3, H: 1, W: 1}})
	if err != nil {
		t.Fatal(err)
	}
	ls, err := sim.NewLockStep(d)
	if err != nil {
		t.Fatal(err)
	}
	if err := ls.Settle([]bool{false}); err != nil {
		t.Fatal(err)
	}
	before := ls.OutputSnapshot()
	// Break the output net: clear the pad's source mask.
	outID := nl.Outputs()[0]
	pad := d.PadOf[outID]
	dev.WritePad(pad, fabric.PadConfig{})
	if err := ls.VerifyQuiescent(before); err == nil {
		t.Error("broken output net not detected by quiescence check")
	}
}
