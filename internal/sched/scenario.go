// Scenario matrix and fabric-vs-book-keeping divergence harness.
//
// A Scenario bundles a named workload shape (task sizes, gated-clock and
// RAM fractions, fill factors) with the scheduling knobs it is meant to
// stress. CompareSpaces runs one task stream through the pure book-keeping
// Space and through a caller-supplied Space (typically fabric-backed) in
// lock-step — same stream, same policy, same planner — and reports where
// physical reality diverges from the book-keeping model: placements the
// grid accepted but the fabric refused, the allocation-rate and
// fragmentation gaps that follow, and the relocation work each side paid.
package sched

import (
	"repro/internal/area"
	"repro/internal/rearrange"
	"repro/internal/workload"
)

// Scenario is one named workload/scheduling configuration of the study.
type Scenario struct {
	Name string
	Desc string
	// Workload shapes the task stream. Seed and N are filled in by
	// ScenarioMatrix from its arguments.
	Workload workload.Config
	Policy   area.Policy
	Planner  rearrange.Planner
	MaxWait  float64
}

// Config builds the simulator configuration for running the scenario on an
// explicit Space.
func (sc Scenario) Config() Config {
	return Config{Policy: sc.Policy, Planner: sc.Planner, MaxWait: sc.MaxWait}
}

// ScenarioMatrix returns the named scenarios of the diversity study, each
// with n tasks from the given seed at the given arrival rate. The matrix
// spans the axes the paper's run-time manager exists to handle: task
// granularity (small/large/bimodal), relocation difficulty (gated-clock
// cells need the auxiliary-circuit flow, RAM cells cannot move at all) and
// spatial pressure (bottom-left packing keeps the NW corner — the fabric's
// hardest region — permanently hot).
func ScenarioMatrix(seed uint64, n int, load float64) []Scenario {
	base := workload.Config{
		Seed: seed, N: n,
		MeanInterarrival: 1.0 / load, MeanService: 6.0,
		GatedFraction: 0.25, RAMFraction: 0.0,
	}
	mk := func(name, desc string, f func(*workload.Config)) Scenario {
		w := base
		f(&w)
		return Scenario{
			Name: name, Desc: desc, Workload: w,
			Policy: area.FirstFit, Planner: rearrange.LocalRepacking{}, MaxWait: 20,
		}
	}
	matrix := []Scenario{
		mk("small", "many small tasks, uniform 2..4", func(w *workload.Config) {
			w.MinSide, w.MaxSide, w.Dist = 2, 4, workload.Uniform
		}),
		mk("large", "few large tasks, uniform 6..10", func(w *workload.Config) {
			w.MinSide, w.MaxSide, w.Dist = 6, 10, workload.Uniform
		}),
		mk("bimodal", "70/30 small/large mix, the fastest fragmenter", func(w *workload.Config) {
			w.MinSide, w.MaxSide, w.Dist = 3, 10, workload.Bimodal
		}),
		mk("gated-heavy", "90% gated-clock designs: every relocation pays the aux-circuit flow", func(w *workload.Config) {
			w.MinSide, w.MaxSide, w.Dist = 3, 8, workload.Bimodal
			w.GatedFraction = 0.9
		}),
		mk("ram-heavy", "60% tasks hold distributed RAM: immovable cells pin their columns", func(w *workload.Config) {
			w.MinSide, w.MaxSide, w.Dist = 3, 8, workload.Bimodal
			w.RAMFraction = 0.6
		}),
	}
	corner := mk("corner-pressure", "bottom-left packing keeps the NW corner hot (see ROADMAP: west-edge box-in)", func(w *workload.Config) {
		w.MinSide, w.MaxSide, w.Dist = 2, 6, workload.Uniform
	})
	corner.Policy = area.BottomLeft
	return append(matrix, corner)
}

// ScenarioByName finds a matrix scenario.
func ScenarioByName(matrix []Scenario, name string) (Scenario, bool) {
	for _, sc := range matrix {
		if sc.Name == name {
			return sc, true
		}
	}
	return Scenario{}, false
}

// Divergence reports how a physical (fabric-backed) run of one task stream
// diverged from the pure book-keeping run. Every gap field is oriented so
// that a positive value means the fabric did worse than the model — see
// the per-field comments for the exact operand order. The book-keeping
// model never fails physically, so the gaps isolate the cost of fabric
// reality (routing congestion, gated-clock relocation flows, immovable
// RAM columns) that the paper's Tab. 2 / Fig. 7 numbers abstract away.
type Divergence struct {
	Scenario string
	Book     Metrics // pure area book-keeping run
	Fabric   Metrics // physical run of the same stream

	AllocationGap    float64 // book alloc rate - fabric alloc rate
	RejectionGap     float64 // fabric rejection rate - book rejection rate
	FragmentationGap float64 // fabric mean fragmentation - book mean fragmentation
	RelocatedCLBGap  int     // book relocated CLBs - fabric relocated CLBs
	RearrangeSecGap  float64 // book rearrange seconds - fabric rearrange seconds
	// PhysicalPlaceFailures and FailedRemovals mirror the fabric run's
	// counters: pure fabric-reality events with no book-keeping analogue.
	PhysicalPlaceFailures int
	FailedRemovals        int
}

// CompareSpaces runs tasks through a fresh book-keeping Space sized like
// the fabric Space's grid, then through the fabric Space itself, and
// returns the divergence. cfg carries the shared scheduling knobs; grid
// dimensions come from the fabric Space's manager on both sides.
func CompareSpaces(cfg Config, fabric Space, tasks []workload.Task) Divergence {
	m := fabric.Manager()
	bookCfg := cfg
	bookCfg.Rows, bookCfg.Cols = m.Rows, m.Cols
	book := NewSimulator(bookCfg).Run(tasks)
	phys := NewSimulatorOn(cfg, fabric).Run(tasks)
	return Divergence{
		Book:   book,
		Fabric: phys,

		AllocationGap:         book.AllocationRate - phys.AllocationRate,
		RejectionGap:          phys.RejectionRate - book.RejectionRate,
		FragmentationGap:      phys.MeanFragmentation - book.MeanFragmentation,
		RelocatedCLBGap:       book.RelocatedCLBs - phys.RelocatedCLBs,
		RearrangeSecGap:       book.RearrangeSeconds - phys.RearrangeSeconds,
		PhysicalPlaceFailures: phys.PhysicalPlaceFailures,
		FailedRemovals:        phys.FailedRemovals,
	}
}

// RunScenario generates the scenario's stream and compares the book and
// fabric runs.
func RunScenario(sc Scenario, fabric Space) Divergence {
	d := CompareSpaces(sc.Config(), fabric, workload.Stream(sc.Workload))
	d.Scenario = sc.Name
	return d
}
