package sched

import (
	"repro/internal/area"
	"repro/internal/rearrange"
	"repro/internal/workload"
)

// FlowConfig parameterises the Fig. 1 application-flow experiment: several
// applications share the device; while function i of an application runs,
// the manager tries to configure function i+1 in advance ("a new function
// may be set up in its place during the interval rt, in order to be
// available when required by the application flow").
type FlowConfig struct {
	Rows, Cols     int
	Policy         area.Policy
	Planner        rearrange.Planner
	RelocSecPerCLB float64
	// ConfigSecPerCLB is the partial-reconfiguration time to load one CLB
	// of a new function.
	ConfigSecPerCLB float64
	// PrefetchLead is how early before the current function's end the
	// manager starts to set up the next one.
	PrefetchLead float64
	// RearrangeOnPrefetch lets the planner run during prefetch too.
	// Default off: eager rearrangement holds double space early and can
	// increase contention; on-demand rearrangement (when an application
	// is actually blocked) is the profitable regime. The ablation bench
	// compares both.
	RearrangeOnPrefetch bool
}

// FlowMetrics reports the Fig. 1 outcome: with enough space, swaps hide
// behind execution and applications see zero overhead; as parallelism (the
// number of co-resident applications) grows, lack of space delays
// reconfiguration and stalls appear ("an increase in the degree of
// parallelism may retard the reconfiguration of incoming functions, due to
// lack of space in the FPGA").
type FlowMetrics struct {
	Apps            int
	FunctionsRun    int
	TotalStallSec   float64 // time applications spent waiting for the next function
	StalledSwaps    int     // transitions that could not be fully hidden
	HiddenSwaps     int     // transitions fully overlapped with execution
	RearrangedSwaps int     // transitions rescued by a rearrangement
	AbortedApps     int     // applications that could never continue
	MakespanSec     float64
	MeanUtilisation float64
}

// flowState tracks one application's progress.
type flowState struct {
	app       workload.App
	idx       int     // index of the function currently running
	curID     int     // allocation id of the running function
	curEnd    float64 // completion time of the running function
	nextID    int     // allocation id of the prefetched next function
	nextFrom  float64 // when the prefetched function is configured
	waiting   bool    // finished current fn, blocked on space for the next
	waitSince float64 // when the app became blocked
	done      bool
}

// flowSim carries the experiment state.
type flowSim struct {
	cfg    FlowConfig
	m      *area.Manager
	states []*flowState
	mets   FlowMetrics
	now    float64
	util   float64
}

// RunFlows executes the application chains until all complete (or deadlock).
func RunFlows(cfg FlowConfig, apps []workload.App) FlowMetrics {
	if cfg.Planner == nil {
		cfg.Planner = rearrange.None{}
	}
	if cfg.RelocSecPerCLB == 0 {
		cfg.RelocSecPerCLB = 0.0226
	}
	if cfg.ConfigSecPerCLB == 0 {
		cfg.ConfigSecPerCLB = 0.002
	}
	s := &flowSim{cfg: cfg, m: area.NewManager(cfg.Rows, cfg.Cols)}
	s.mets.Apps = len(apps)
	for i := range apps {
		st := &flowState{app: apps[i], idx: -1, waiting: true}
		s.states = append(s.states, st)
		s.tryStartNext(st) // function 0
	}
	s.loop()
	s.mets.MakespanSec = s.now
	if s.now > 0 {
		s.mets.MeanUtilisation = s.util / s.now
	}
	return s.mets
}

func (s *flowSim) loop() {
	for {
		// Earliest running completion.
		next := -1
		for i, st := range s.states {
			if st.done || st.waiting {
				continue
			}
			if next == -1 || st.curEnd < s.states[next].curEnd {
				next = i
			}
		}
		if next == -1 {
			// Nothing running: any waiting apps are deadlocked.
			for _, st := range s.states {
				if !st.done && st.waiting {
					st.done = true
					s.mets.AbortedApps++
				}
			}
			return
		}
		st := s.states[next]

		// Prefetch inside the lead window for the app about to finish.
		s.prefetch(st, st.curEnd-s.cfg.PrefetchLead)

		// Advance time to the completion.
		s.util += s.m.Utilisation() * (st.curEnd - s.now)
		s.now = st.curEnd
		s.m.Free(st.curID)
		st.curID = 0
		s.mets.FunctionsRun++

		if st.idx+1 >= len(st.app.Functions) {
			st.done = true
		} else if st.nextID != 0 {
			// Swap in the prefetched function.
			st.idx++
			f := st.app.Functions[st.idx]
			start := s.now
			if st.nextFrom > start {
				start = st.nextFrom
				s.mets.StalledSwaps++
				s.mets.TotalStallSec += st.nextFrom - s.now
			} else {
				s.mets.HiddenSwaps++
			}
			st.curID = st.nextID
			st.nextID = 0
			st.curEnd = start + f.Duration
		} else {
			st.waiting = true
			st.waitSince = s.now
			s.tryStartNext(st)
		}

		// A departure may unblock waiting apps.
		for _, other := range s.states {
			if !other.done && other.waiting {
				s.tryStartNext(other)
			}
		}
	}
}

// tryStartNext attempts to place and start the waiting app's next function.
func (s *flowSim) tryStartNext(st *flowState) {
	f := st.app.Functions[st.idx+1]
	start, id, rearranged, ok := s.placeNow(f)
	if !ok {
		return // stays waiting
	}
	if rearranged {
		s.mets.RearrangedSwaps++
	}
	if st.idx >= 0 { // not the initial configuration
		s.mets.StalledSwaps++
		// Stall covers the whole blocked interval plus the placement
		// latency (rearrangement + configuration).
		s.mets.TotalStallSec += start - st.waitSince
	}
	st.idx++
	st.waiting = false
	st.curID = id
	st.curEnd = start + f.Duration
}

// prefetch tries to configure the next function ahead of time.
func (s *flowSim) prefetch(st *flowState, atTime float64) {
	if st.done || st.waiting || st.nextID != 0 || st.idx+1 >= len(st.app.Functions) {
		return
	}
	if atTime < s.now {
		atTime = s.now
	}
	f := st.app.Functions[st.idx+1]
	configTime := float64(f.H*f.W) * s.cfg.ConfigSecPerCLB
	if id, _, ok := s.m.Allocate(f.H, f.W, s.cfg.Policy); ok {
		st.nextID = id
		st.nextFrom = atTime + configTime
		return
	}
	if !s.cfg.RearrangeOnPrefetch {
		return
	}
	plan, ok := s.cfg.Planner.Plan(s.m, f.H, f.W)
	if !ok {
		return
	}
	if err := rearrange.Execute(s.m, plan); err != nil {
		return
	}
	id, err := s.m.AllocateAt(plan.Target)
	if err != nil {
		return
	}
	if len(plan.Steps) > 0 {
		s.mets.RearrangedSwaps++
	}
	rt := float64(plan.CostCLBs) * s.cfg.RelocSecPerCLB
	st.nextID = id
	st.nextFrom = atTime + rt + configTime
}

// placeNow allocates a function at the current time (with rearrangement if
// needed) and returns when it can start running.
func (s *flowSim) placeNow(f workload.Fn) (start float64, id int, rearranged, ok bool) {
	configTime := float64(f.H*f.W) * s.cfg.ConfigSecPerCLB
	if id, _, ok := s.m.Allocate(f.H, f.W, s.cfg.Policy); ok {
		return s.now + configTime, id, false, true
	}
	plan, planOK := s.cfg.Planner.Plan(s.m, f.H, f.W)
	if !planOK {
		return 0, 0, false, false
	}
	if err := rearrange.Execute(s.m, plan); err != nil {
		return 0, 0, false, false
	}
	id, err := s.m.AllocateAt(plan.Target)
	if err != nil {
		return 0, 0, false, false
	}
	rt := float64(plan.CostCLBs) * s.cfg.RelocSecPerCLB
	return s.now + rt + configTime, id, len(plan.Steps) > 0, true
}
