package sched

import (
	"fmt"
	"testing"

	"repro/internal/area"
	"repro/internal/fabric"
	"repro/internal/itc99"
	"repro/internal/place"
	"repro/internal/rearrange"
	"repro/internal/workload"
)

func TestScenarioMatrixNames(t *testing.T) {
	matrix := ScenarioMatrix(1, 10, 1.0)
	want := []string{"small", "large", "bimodal", "gated-heavy", "ram-heavy", "corner-pressure"}
	if len(matrix) != len(want) {
		t.Fatalf("matrix has %d scenarios, want %d", len(matrix), len(want))
	}
	for i, name := range want {
		if matrix[i].Name != name {
			t.Errorf("scenario %d = %q, want %q", i, matrix[i].Name, name)
		}
		if matrix[i].Workload.N != 10 || matrix[i].Workload.Seed != 1 {
			t.Errorf("scenario %q did not inherit seed/N: %+v", name, matrix[i].Workload)
		}
		if _, ok := ScenarioByName(matrix, name); !ok {
			t.Errorf("ScenarioByName(%q) not found", name)
		}
	}
	if _, ok := ScenarioByName(matrix, "no-such"); ok {
		t.Error("ScenarioByName found a scenario that does not exist")
	}
}

func TestScenarioProfilesFollowKnobs(t *testing.T) {
	matrix := ScenarioMatrix(3, 200, 1.0)
	count := func(tasks []workload.Task, f func(workload.Task) bool) int {
		n := 0
		for _, tk := range tasks {
			if f(tk) {
				n++
			}
		}
		return n
	}
	gated := func(tk workload.Task) bool { return tk.Profile.Style == itc99.GatedClock }
	ram := func(tk workload.Task) bool { return tk.Profile.RAMs > 0 }

	for _, sc := range matrix {
		tasks := workload.Stream(sc.Workload)
		g, r := count(tasks, gated), count(tasks, ram)
		switch sc.Name {
		case "gated-heavy":
			if g < 150 {
				t.Errorf("gated-heavy: only %d/200 gated tasks", g)
			}
		case "ram-heavy":
			if r < 80 {
				t.Errorf("ram-heavy: only %d/200 RAM tasks", r)
			}
		default:
			if r != 0 {
				t.Errorf("%s: %d RAM tasks with RAMFraction 0", sc.Name, r)
			}
		}
		for _, tk := range tasks {
			p := tk.Profile
			if p.FillFactor <= 0 || p.FillFactor > 1 {
				t.Fatalf("%s task %d: fill factor %f", sc.Name, tk.ID, p.FillFactor)
			}
			if p.Inputs < 2 || p.Outputs < 2 {
				t.Fatalf("%s task %d: I/O %d/%d below floor", sc.Name, tk.ID, p.Inputs, p.Outputs)
			}
			if p.Style == itc99.GatedClock && p.CEFraction <= 0 {
				t.Fatalf("%s task %d: gated task without CE fraction", sc.Name, tk.ID)
			}
		}
	}
}

// TestProfileStreamIndependence: profiles draw from their own rng stream,
// so turning profile knobs on cannot perturb the arrival/size sequence —
// the property that keeps every pre-profile seed reproducible.
func TestProfileStreamIndependence(t *testing.T) {
	base := workload.Config{
		Seed: 9, N: 50, MeanInterarrival: 1, MeanService: 5,
		MinSide: 2, MaxSide: 8, Dist: workload.Bimodal,
	}
	heavy := base
	heavy.GatedFraction, heavy.RAMFraction = 0.9, 0.9
	a, b := workload.Stream(base), workload.Stream(heavy)
	for i := range a {
		if a[i].H != b[i].H || a[i].W != b[i].W ||
			a[i].Arrival != b[i].Arrival || a[i].Service != b[i].Service {
			t.Fatalf("task %d arrival/size changed when profile knobs changed:\n%+v\n%+v",
				i, a[i], b[i])
		}
	}
	// And the profile stream itself is deterministic.
	c := workload.Stream(heavy)
	for i := range b {
		if b[i].Profile != c[i].Profile {
			t.Fatalf("task %d profile not deterministic", i)
		}
	}
}

// TestScenarioNetlistsSoundAndPlaceable is the generator-soundness
// property test: every scenario-generated netlist validates, respects the
// conservative cell bound of its declared footprint, and actually places
// and routes in an empty region of exactly that footprint.
func TestScenarioNetlistsSoundAndPlaceable(t *testing.T) {
	n := 16
	if testing.Short() {
		n = 5
	}
	for _, sc := range ScenarioMatrix(11, n, 1.0) {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			for _, tk := range workload.Stream(sc.Workload) {
				capacity := tk.H * tk.W * fabric.CellsPerCLB
				cfg := tk.GenConfig(fmt.Sprintf("s%04d", tk.ID), capacity)
				nl := itc99.Generate(cfg)
				if err := nl.Validate(); err != nil {
					t.Fatalf("task %d (%dx%d): invalid netlist: %v", tk.ID, tk.H, tk.W, err)
				}
				st := nl.Stats()
				if got := st.CellUpperBound(); got > capacity {
					t.Fatalf("task %d: %d cells exceed the %dx%d region's %d (%v)",
						tk.ID, got, tk.H, tk.W, capacity, st)
				}
				if tk.Profile.RAMs > 0 && st.RAMs == 0 {
					t.Fatalf("task %d: RAM profile produced no RAM nodes", tk.ID)
				}
				// Place and route in an empty region of the declared
				// footprint — the guarantee the scheduler relies on when it
				// books exactly H x W for the task.
				dev := fabric.NewDevice(fabric.XCV50)
				region := fabric.Rect{Row: 2, Col: 2, H: tk.H, W: tk.W}
				if _, err := place.Place(dev, nl, place.Options{Region: region}); err != nil {
					t.Fatalf("task %d (%v, fill %.2f, style %v): does not place in its own footprint: %v",
						tk.ID, region, tk.Profile.FillFactor, tk.Profile.Style, err)
				}
			}
		})
	}
}

// TestCompareSpacesAgainstBookIsZero: running the divergence harness with
// a second book-keeping space as the "fabric" must report zero divergence
// — the harness itself cannot invent gaps.
func TestCompareSpacesAgainstBookIsZero(t *testing.T) {
	cfg := Config{Policy: area.FirstFit, Planner: rearrange.LocalRepacking{}, MaxWait: 10}
	tasks := workload.Stream(workload.Config{
		Seed: 5, N: 120, MeanInterarrival: 0.8, MeanService: 5,
		MinSide: 2, MaxSide: 7, Dist: workload.Bimodal,
	})
	d := CompareSpaces(cfg, bookSpace{m: area.NewManager(16, 24)}, tasks)
	if d.AllocationGap != 0 || d.RejectionGap != 0 || d.FragmentationGap != 0 ||
		d.RelocatedCLBGap != 0 || d.RearrangeSecGap != 0 {
		t.Errorf("book-vs-book divergence not zero: %+v", d)
	}
	if d.PhysicalPlaceFailures != 0 || d.FailedRemovals != 0 {
		t.Errorf("book-vs-book physical failures: %+v", d)
	}
	if d.Book.Submitted != 120 || d.Fabric.Submitted != 120 {
		t.Errorf("streams not fully submitted: %+v", d)
	}
	if want := float64(d.Book.Rejected) / float64(d.Book.Submitted); d.Book.RejectionRate != want {
		t.Errorf("RejectionRate = %f, want %f", d.Book.RejectionRate, want)
	}
}
