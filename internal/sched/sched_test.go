package sched

import (
	"testing"

	"repro/internal/area"
	"repro/internal/rearrange"
	"repro/internal/workload"
)

func stream(seed uint64, n int, load float64) []workload.Task {
	return workload.Stream(workload.Config{
		Seed:             seed,
		N:                n,
		MeanInterarrival: 1.0 / load,
		MeanService:      4.0,
		MinSide:          2,
		MaxSide:          6,
		Dist:             workload.Bimodal,
	})
}

func TestAllTasksServedUnderLightLoad(t *testing.T) {
	s := NewSimulator(Config{Rows: 16, Cols: 16, Policy: area.FirstFit})
	m := s.Run(stream(1, 100, 0.2))
	if m.Submitted != 100 {
		t.Fatalf("submitted = %d", m.Submitted)
	}
	placed := m.Placed + m.PlacedAfterRearrange + m.PlacedAfterWait
	if placed+m.Rejected != m.Submitted {
		t.Errorf("accounting broken: %+v", m)
	}
	if m.AllocationRate < 0.99 {
		t.Errorf("light load allocation rate = %f", m.AllocationRate)
	}
}

func TestRearrangementImprovesAllocation(t *testing.T) {
	// The paper's central quantitative claim (via [5]): on-line
	// rearrangement increases the allocation rate and reduces waiting.
	tasks := stream(7, 250, 1.2)
	run := func(p rearrange.Planner) Metrics {
		s := NewSimulator(Config{
			Rows: 12, Cols: 12, Policy: area.FirstFit,
			Planner: p, MaxWait: 10,
		})
		return s.Run(tasks)
	}
	none := run(rearrange.None{})
	repack := run(rearrange.LocalRepacking{})
	if repack.AllocationRate <= none.AllocationRate {
		t.Errorf("allocation rate: repacking %.3f <= none %.3f",
			repack.AllocationRate, none.AllocationRate)
	}
	if repack.RelocatedCLBs == 0 {
		t.Error("repacking run never relocated anything")
	}
	if none.RelocatedCLBs != 0 {
		t.Error("baseline run relocated CLBs")
	}
}

func TestFragmentationTrackedAndBounded(t *testing.T) {
	s := NewSimulator(Config{Rows: 12, Cols: 12, Policy: area.FirstFit, MaxWait: 5})
	m := s.Run(stream(3, 200, 1.0))
	if m.MeanFragmentation < 0 || m.MeanFragmentation > 1 {
		t.Errorf("mean fragmentation = %f", m.MeanFragmentation)
	}
	if m.PeakFragmentation < m.MeanFragmentation {
		t.Error("peak < mean")
	}
	if m.MeanUtilisation <= 0 || m.MeanUtilisation > 1 {
		t.Errorf("utilisation = %f", m.MeanUtilisation)
	}
}

func TestRejectionUnderOverload(t *testing.T) {
	// Saturating load with a short waiting bound must reject tasks.
	s := NewSimulator(Config{Rows: 8, Cols: 8, Policy: area.FirstFit, MaxWait: 1})
	m := s.Run(stream(5, 200, 5.0))
	if m.Rejected == 0 {
		t.Error("overload produced no rejections")
	}
	if m.AllocationRate >= 1.0 {
		t.Error("allocation rate should drop under overload")
	}
}

func TestPolicyComparison(t *testing.T) {
	// All three allocation policies must produce valid runs.
	tasks := stream(11, 150, 1.0)
	for _, p := range []area.Policy{area.FirstFit, area.BestFit, area.BottomLeft} {
		s := NewSimulator(Config{Rows: 12, Cols: 12, Policy: p, MaxWait: 10})
		m := s.Run(tasks)
		placed := m.Placed + m.PlacedAfterRearrange + m.PlacedAfterWait
		if placed+m.Rejected != m.Submitted {
			t.Errorf("%v: accounting broken", p)
		}
	}
}

func TestFlowsZeroOverheadWithSpace(t *testing.T) {
	// Fig. 1's happy case: few applications, plenty of space, prefetch
	// hides every swap.
	apps := workload.Flows(workload.FlowConfig{
		Seed: 2, Apps: 2, FnsPerApp: 5, MinSide: 2, MaxSide: 3, MeanDuration: 10,
	})
	m := RunFlows(FlowConfig{
		Rows: 20, Cols: 20, Policy: area.FirstFit,
		PrefetchLead: 5,
	}, apps)
	if m.FunctionsRun != 10 {
		t.Fatalf("functions run = %d", m.FunctionsRun)
	}
	if m.HiddenSwaps == 0 {
		t.Error("no swaps were hidden despite ample space")
	}
	if m.TotalStallSec > 0.5 {
		t.Errorf("stall = %f s with ample space", m.TotalStallSec)
	}
	if m.AbortedApps != 0 {
		t.Error("apps aborted")
	}
}

func TestFlowsParallelismCausesDelays(t *testing.T) {
	// Fig. 1's caption: "an increase in the degree of parallelism may
	// retard the reconfiguration of incoming functions, due to lack of
	// space in the FPGA".
	gen := func(n int) []workload.App {
		return workload.Flows(workload.FlowConfig{
			Seed: 4, Apps: n, FnsPerApp: 6, MinSide: 4, MaxSide: 7, MeanDuration: 8,
		})
	}
	run := func(n int) FlowMetrics {
		return RunFlows(FlowConfig{
			Rows: 14, Cols: 14, Policy: area.FirstFit,
			PrefetchLead: 4,
		}, gen(n))
	}
	low := run(2)
	high := run(6)
	if high.TotalStallSec <= low.TotalStallSec {
		t.Errorf("stall did not grow with parallelism: 2 apps %.2f s, 6 apps %.2f s",
			low.TotalStallSec, high.TotalStallSec)
	}
}

func TestFlowsRearrangementReducesStalls(t *testing.T) {
	// Long-running functions make waiting for departures expensive; a
	// sub-second rearrangement beats tens of seconds of blocking. (When
	// waiting is cheap the trade flips — see the Fig. 1 ablation bench.)
	apps := workload.Flows(workload.FlowConfig{
		Seed: 13, Apps: 6, FnsPerApp: 6, MinSide: 4, MaxSide: 8, MeanDuration: 60,
	})
	run := func(p rearrange.Planner) FlowMetrics {
		return RunFlows(FlowConfig{
			Rows: 13, Cols: 13, Policy: area.FirstFit,
			Planner: p, PrefetchLead: 4,
		}, apps)
	}
	none := run(rearrange.None{})
	repack := run(rearrange.LocalRepacking{})
	if repack.TotalStallSec >= none.TotalStallSec {
		t.Errorf("rearrangement did not reduce stalls: none %.1f s, repack %.1f s",
			none.TotalStallSec, repack.TotalStallSec)
	}
	if repack.RearrangedSwaps == 0 {
		t.Error("no rearrangements recorded")
	}
}

func TestWorkloadDeterminism(t *testing.T) {
	a := stream(42, 50, 1.0)
	b := stream(42, 50, 1.0)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("workload generation not deterministic")
		}
	}
	c := stream(43, 50, 1.0)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}
