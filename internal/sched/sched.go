// Package sched is the on-line run-time manager of the paper's Fig. 1
// world: tasks (hardware functions) arrive, are placed into the FPGA logic
// space if a contiguous region exists, and otherwise trigger an on-line
// rearrangement executed by dynamic relocation — transparently to the tasks
// already running, which is the paper's core claim ("without generating any
// time overhead to the running applications").
package sched

import (
	"container/heap"
	"sort"

	"repro/internal/area"
	"repro/internal/fabric"
	"repro/internal/rearrange"
	"repro/internal/workload"
)

// Space abstracts the logic space tasks are placed into. The default is
// pure area book-keeping (the classic scheduling-study mode); cmd/schedsim
// provides a fabric-backed Space where placing a task loads a real design
// onto a live rlm.System and a rearrangement physically relocates running
// designs through the configuration port.
type Space interface {
	// Manager exposes the book-keeping grid used for placement search,
	// rearrangement planning and the fragmentation metrics. Implementations
	// must keep it consistent with Place/Remove/Rearrange.
	Manager() *area.Manager
	// Place commits a task at rect and returns its allocation id.
	Place(t workload.Task, rect fabric.Rect) (int, error)
	// Remove releases a placed task.
	Remove(id int) error
	// Rearrange executes a feasible rearrangement plan and reports the CLB
	// area actually relocated. A fabric-backed Space can fail mid-plan
	// AFTER earlier steps physically moved designs; that partial work is
	// real — it burned reconfiguration time — and must be reported so the
	// divergence metrics account it.
	Rearrange(p *rearrange.Plan) (int, error)
}

// bookSpace is the book-keeping-only Space.
type bookSpace struct{ m *area.Manager }

func (b bookSpace) Manager() *area.Manager { return b.m }
func (b bookSpace) Place(t workload.Task, rect fabric.Rect) (int, error) {
	return b.m.AllocateAt(rect)
}
func (b bookSpace) Remove(id int) error { return b.m.Free(id) }
func (b bookSpace) Rearrange(p *rearrange.Plan) (int, error) {
	// Book-keeping moves cannot fail physically: a feasible plan executes
	// in full or not at all, so the booked cost is the executed cost.
	if err := rearrange.Execute(b.m, p); err != nil {
		return 0, err
	}
	return p.CostCLBs, nil
}

// Config parameterises a scheduling run.
type Config struct {
	Rows, Cols int
	Policy     area.Policy
	Planner    rearrange.Planner
	// RelocSecPerCLB is the wall-clock cost of relocating one CLB (the
	// paper: ~22.6 ms per CLB over Boundary-Scan at 20 MHz). Rearrangement
	// delays the INCOMING task by plan cost x this figure; running tasks
	// are unaffected.
	RelocSecPerCLB float64
	// MaxWait rejects a task that cannot start within this bound of its
	// arrival (0 = wait forever).
	MaxWait float64
}

// Metrics summarises a run.
type Metrics struct {
	Submitted            int
	Placed               int     // placed immediately
	PlacedAfterRearrange int     // placed thanks to a rearrangement
	PlacedAfterWait      int     // placed later from the queue
	Rejected             int     // exceeded MaxWait
	MeanWaitSec          float64 // over all placed tasks
	MaxWaitSec           float64
	RelocatedCLBs        int
	RearrangeSeconds     float64
	MeanFragmentation    float64 // sampled at every event
	PeakFragmentation    float64
	MeanUtilisation      float64 // time-weighted
	AllocationRate       float64 // placed / submitted
	ImmediateRate        float64 // placed immediately / submitted
	RejectionRate        float64 // rejected / submitted
	// FailedRemovals counts departures whose Space.Remove failed (a
	// fabric-backed unload can fail and roll back); the task then stays
	// resident and its space is never reclaimed.
	FailedRemovals int
	// PhysicalPlaceFailures counts tasks whose placement the book-keeping
	// model accepted (a free rectangle existed, or a rearrangement plan
	// was feasible on the grid) but the Space refused — on a fabric-backed
	// Space that is routing congestion, RAM-column conflicts or a failed
	// physical relocation, i.e. exactly where fabric reality diverges from
	// the book-keeping model. Each task counts once no matter how many
	// queue retries it fails. Always zero for the book-keeping Space.
	PhysicalPlaceFailures int
}

// event kinds
type evKind uint8

const (
	evArrival evKind = iota
	evDeparture
)

type event struct {
	t    float64
	kind evKind
	task workload.Task
	id   int // allocation id for departures
}

type evHeap []event

func (h evHeap) Len() int            { return len(h) }
func (h evHeap) Less(i, j int) bool  { return h[i].t < h[j].t }
func (h evHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *evHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *evHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Simulator runs task streams against a Space.
type Simulator struct {
	cfg   Config
	space Space
	m     *area.Manager // cached space.Manager()

	events evHeap
	queue  []workload.Task

	now        float64
	lastSample float64
	utilInt    float64 // integral of utilisation over time
	fragSum    float64
	fragN      int

	metrics    Metrics
	waits      []float64
	physFailed map[int]bool // task IDs already counted in PhysicalPlaceFailures
}

// NewSimulator builds a simulator over the book-keeping Space.
func NewSimulator(cfg Config) *Simulator {
	return NewSimulatorOn(cfg, bookSpace{m: area.NewManager(cfg.Rows, cfg.Cols)})
}

// NewSimulatorOn builds a simulator over an explicit Space (the grid
// dimensions come from the space's manager, not the config).
func NewSimulatorOn(cfg Config, space Space) *Simulator {
	if cfg.Planner == nil {
		cfg.Planner = rearrange.None{}
	}
	if cfg.RelocSecPerCLB == 0 {
		cfg.RelocSecPerCLB = 0.0226 // paper's per-CLB relocation time
	}
	return &Simulator{cfg: cfg, space: space, m: space.Manager()}
}

// Manager exposes the underlying area manager (for inspection).
func (s *Simulator) Manager() *area.Manager { return s.m }

// Run processes a task stream to completion and returns the metrics. All
// per-run state resets up front, so one Simulator may run several streams
// (each against whatever its Space still holds).
func (s *Simulator) Run(tasks []workload.Task) Metrics {
	s.metrics = Metrics{Submitted: len(tasks)}
	s.physFailed = nil
	s.events = nil
	s.queue = nil
	s.waits = nil
	s.now, s.lastSample = 0, 0
	s.utilInt, s.fragSum, s.fragN = 0, 0, 0
	sorted := append([]workload.Task{}, tasks...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Arrival < sorted[j].Arrival })
	for _, t := range sorted {
		heap.Push(&s.events, event{t: t.Arrival, kind: evArrival, task: t})
	}
	for s.events.Len() > 0 {
		e := heap.Pop(&s.events).(event)
		s.advance(e.t)
		switch e.kind {
		case evArrival:
			s.arrive(e.task)
		case evDeparture:
			if err := s.space.Remove(e.id); err != nil {
				// The task stays resident (fabric rollback); record it
				// rather than silently skewing the metrics.
				s.metrics.FailedRemovals++
			}
			s.drainQueue()
		}
		s.sample()
	}
	s.finish()
	return s.metrics
}

func (s *Simulator) advance(t float64) {
	if t > s.now {
		s.utilInt += s.m.Utilisation() * (t - s.now)
		s.now = t
	}
}

func (s *Simulator) sample() {
	f := s.m.Fragmentation()
	s.fragSum += f
	s.fragN++
	if f > s.metrics.PeakFragmentation {
		s.metrics.PeakFragmentation = f
	}
}

// arrive attempts placement; on failure tries rearrangement; otherwise
// queues the task.
func (s *Simulator) arrive(t workload.Task) {
	if s.place(t, false) {
		return
	}
	s.queue = append(s.queue, t)
	s.expireQueue()
}

// place tries to start a task now; fromQueue marks tasks that waited.
func (s *Simulator) place(t workload.Task, fromQueue bool) bool {
	if rect, ok := s.m.FindPlacement(t.H, t.W, s.cfg.Policy); ok {
		// A fabric-backed space can fail physically (routing congestion)
		// even when the book-keeping fits; the task then waits its turn.
		if id, err := s.space.Place(t, rect); err == nil {
			s.start(t, id, 0, fromQueue, false)
			return true
		}
		s.notePhysicalFailure(t)
		return false
	}
	plan, ok := s.cfg.Planner.Plan(s.m, t.H, t.W)
	if !ok {
		return false
	}
	moved, err := s.space.Rearrange(plan)
	// Whatever relocation work executed — the whole plan, or the steps a
	// fabric-backed Space completed before failing — is done and paid for,
	// whether or not the incoming task then places.
	rt := float64(moved) * s.cfg.RelocSecPerCLB
	s.metrics.RelocatedCLBs += moved
	s.metrics.RearrangeSeconds += rt
	if err != nil {
		s.notePhysicalFailure(t)
		return false
	}
	id, err := s.space.Place(t, plan.Target)
	if err != nil {
		s.notePhysicalFailure(t)
		return false
	}
	s.start(t, id, rt, fromQueue, len(plan.Steps) > 0)
	return true
}

// notePhysicalFailure records a placement the book-keeping accepted but
// the Space refused. Each task counts once, however many times the queue
// retries it, so the metric counts divergent placements, not attempts.
func (s *Simulator) notePhysicalFailure(t workload.Task) {
	if s.physFailed[t.ID] {
		return
	}
	if s.physFailed == nil {
		s.physFailed = map[int]bool{}
	}
	s.physFailed[t.ID] = true
	s.metrics.PhysicalPlaceFailures++
}

func (s *Simulator) start(t workload.Task, id int, extraDelay float64, fromQueue, rearranged bool) {
	wait := s.now - t.Arrival + extraDelay
	s.waits = append(s.waits, wait)
	if wait > s.metrics.MaxWaitSec {
		s.metrics.MaxWaitSec = wait
	}
	switch {
	case rearranged:
		s.metrics.PlacedAfterRearrange++
	case fromQueue:
		s.metrics.PlacedAfterWait++
	default:
		s.metrics.Placed++
	}
	heap.Push(&s.events, event{t: s.now + extraDelay + t.Service, kind: evDeparture, id: id})
}

// drainQueue retries queued tasks FCFS after a departure.
func (s *Simulator) drainQueue() {
	s.expireQueue()
	var remaining []workload.Task
	for i, t := range s.queue {
		if s.place(t, true) {
			continue
		}
		// FCFS: once one fails, keep order for the rest.
		remaining = append(remaining, s.queue[i:]...)
		break
	}
	s.queue = remaining
}

// expireQueue rejects tasks whose waiting bound passed.
func (s *Simulator) expireQueue() {
	if s.cfg.MaxWait <= 0 {
		return
	}
	kept := s.queue[:0]
	for _, t := range s.queue {
		if s.now-t.Arrival > s.cfg.MaxWait {
			s.metrics.Rejected++
			continue
		}
		kept = append(kept, t)
	}
	s.queue = kept
}

func (s *Simulator) finish() {
	// Tasks still queued when the stream ends count as rejected.
	s.metrics.Rejected += len(s.queue)
	s.queue = nil
	placed := s.metrics.Placed + s.metrics.PlacedAfterRearrange + s.metrics.PlacedAfterWait
	if len(s.waits) > 0 {
		sum := 0.0
		for _, w := range s.waits {
			sum += w
		}
		s.metrics.MeanWaitSec = sum / float64(len(s.waits))
	}
	if s.fragN > 0 {
		s.metrics.MeanFragmentation = s.fragSum / float64(s.fragN)
	}
	if s.now > 0 {
		s.metrics.MeanUtilisation = s.utilInt / s.now
	}
	if s.metrics.Submitted > 0 {
		s.metrics.AllocationRate = float64(placed) / float64(s.metrics.Submitted)
		s.metrics.ImmediateRate = float64(s.metrics.Placed) / float64(s.metrics.Submitted)
		s.metrics.RejectionRate = float64(s.metrics.Rejected) / float64(s.metrics.Submitted)
	}
}
