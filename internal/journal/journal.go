// Package journal implements the durable host-state layer: an append-only,
// checksummed operation journal for the run-time manager's facade. The
// paper's tool keeps a complete shadow copy of the configuration for failure
// recovery; the journal is its host-side counterpart — it records each
// facade operation's intent, the copy-on-write frame pre-images the
// operation dirties (before they are delivered through the configuration
// port), and the full post-operation book-keeping state, so a host crash at
// any point can be reconciled against the device readback: a completed-but-
// unsealed shift rolls forward, an interrupted shift rolls back via the
// replayed undo records.
//
// File layout: an 8-byte magic header followed by framed records. Each
// record is a 9-byte header — type byte, little-endian uint32 payload
// length, little-endian uint32 IEEE CRC-32 of the payload — followed by the
// JSON payload. A crash can tear at most the final record; Scan tolerates a
// torn tail (the incomplete record is dropped and reported) but treats a
// checksum mismatch anywhere before the tail as corruption.
package journal

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// Magic is the journal file signature (8 bytes, version in the last digit).
const Magic = "RLMJNL1\n"

const recHeaderLen = 9

// maxPayload bounds a single record's payload; Scan rejects anything larger
// as corruption before attempting to allocate it.
const maxPayload = 1 << 28

// RecType identifies a journal record.
type RecType uint8

// Record types, in the order an operation emits them.
const (
	// RecInit opens the journal: device geometry, port model, clocking.
	RecInit RecType = 1
	// RecBegin declares an operation's intent before any frame flushes.
	RecBegin RecType = 2
	// RecUndo carries one dirtied frame's pre-image, durable before the
	// frame's new content is delivered through the port.
	RecUndo RecType = 3
	// RecPost carries the complete post-operation host state plus content
	// digests of the frames the operation dirtied.
	RecPost RecType = 4
	// RecCommit seals an operation: its post state is the durable truth.
	RecCommit RecType = 5
	// RecAbort seals a rolled-back operation: the previous durable state
	// still stands.
	RecAbort RecType = 6
)

var recNames = map[RecType]string{
	RecInit: "init", RecBegin: "begin", RecUndo: "undo",
	RecPost: "post", RecCommit: "commit", RecAbort: "abort",
}

func (t RecType) String() string {
	if n, ok := recNames[t]; ok {
		return n
	}
	return fmt.Sprintf("rec%d", uint8(t))
}

// Typed sentinel errors. Every failure mode of reading or reconciling a
// journal maps onto one of these (wrapped with context); none panics.
var (
	// ErrBadMagic: the file does not start with the journal signature.
	ErrBadMagic = errors.New("journal: bad magic")
	// ErrChecksum: a record before the tail fails its CRC — the file is
	// corrupt, not merely torn.
	ErrChecksum = errors.New("journal: checksum mismatch")
	// ErrTorn reports a truncated or CRC-failing FINAL record. Scan drops
	// the torn tail and reports it on the Log rather than failing; the
	// sentinel exists for callers that want to surface it.
	ErrTorn = errors.New("journal: torn final record")
	// ErrEmpty: the journal holds no operation history (zero bytes, or a
	// bare header with no Init record) — there is nothing to recover.
	ErrEmpty = errors.New("journal: empty")
	// ErrDeviceMismatch: the journal's state references configuration the
	// device readback does not show (wrong device, or fabric lost state).
	ErrDeviceMismatch = errors.New("journal: device readback mismatch")
	// ErrExists: a fresh journal was requested at a path that already
	// holds operation history (recover from it instead of truncating).
	ErrExists = errors.New("journal: already exists")
	// ErrMalformed: a record's payload does not decode, or the record
	// sequence violates the Begin/Undo/Post/seal grammar.
	ErrMalformed = errors.New("journal: malformed record stream")
)

// Journal is an open journal file in append mode. Not safe for concurrent
// use; the facade serialises access under its own lock.
type Journal struct {
	f   *os.File
	off int64
}

// Create opens a fresh journal at path, writing the magic header. It fails
// with ErrExists (wrapped) if the path already holds journal history — a
// crashed system's journal must be recovered, never truncated.
func Create(path string) (*Journal, error) {
	if st, err := os.Stat(path); err == nil && st.Size() > int64(len(Magic)) {
		return nil, fmt.Errorf("%w: %s holds %d bytes", ErrExists, path, st.Size())
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	if _, err := f.Write([]byte(Magic)); err != nil {
		f.Close()
		return nil, err
	}
	return &Journal{f: f, off: int64(len(Magic))}, nil
}

// OpenAppend opens an existing journal for appending (the recovery path
// seals the reconciled tail through this). The caller has already scanned
// the file; no validation is repeated here. If the file ends in a torn
// record, the tear is truncated away so the seal lands on a clean boundary.
func OpenAppend(path string, validLen int64) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := f.Truncate(validLen); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(validLen, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	return &Journal{f: f, off: validLen}, nil
}

// Append frames and writes one record. The payload is marshalled to JSON;
// the record is not readable by Scan until the write fully lands, which is
// exactly the torn-tail tolerance recovery relies on.
func (j *Journal) Append(t RecType, payload any) error {
	body, err := json.Marshal(payload)
	if err != nil {
		return fmt.Errorf("journal: encoding %v: %w", t, err)
	}
	rec := make([]byte, recHeaderLen+len(body))
	rec[0] = byte(t)
	binary.LittleEndian.PutUint32(rec[1:5], uint32(len(body)))
	binary.LittleEndian.PutUint32(rec[5:9], crc32.ChecksumIEEE(body))
	copy(rec[recHeaderLen:], body)
	n, err := j.f.Write(rec)
	j.off += int64(n)
	if err != nil {
		return fmt.Errorf("journal: appending %v: %w", t, err)
	}
	return nil
}

// Sync forces the journal to stable storage — called after the records whose
// durability the recovery contract depends on (Begin, the undo batch before
// a flush, Post, and the seals).
func (j *Journal) Sync() error { return j.f.Sync() }

// Offset returns the current end of the journal in bytes. The crash-torture
// harness snapshots offsets to reconstruct every crash prefix.
func (j *Journal) Offset() int64 { return j.off }

// Close closes the file.
func (j *Journal) Close() error { return j.f.Close() }

// Record is one decoded journal record.
type Record struct {
	Type    RecType
	Payload []byte
}

// Log is a scanned journal.
type Log struct {
	Records []Record
	// Torn reports a truncated or checksum-failing final record (dropped
	// from Records).
	Torn bool
	// ValidLen is the byte length of the well-formed prefix — where an
	// appender must resume to keep the file parseable.
	ValidLen int64
}

// Scan reads and validates a journal file. A torn final record is tolerated
// (Log.Torn); a short header tail likewise. Zero-length files fail with
// ErrEmpty, non-journal files with ErrBadMagic, mid-file corruption with
// ErrChecksum.
func Scan(path string) (*Log, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ScanBytes(data)
}

// ScanBytes validates an in-memory journal image (the fuzz target's entry
// point; Scan delegates here).
func ScanBytes(data []byte) (*Log, error) {
	if len(data) == 0 {
		return nil, ErrEmpty
	}
	if len(data) < len(Magic) || string(data[:len(Magic)]) != Magic {
		return nil, ErrBadMagic
	}
	log := &Log{ValidLen: int64(len(Magic))}
	off := len(Magic)
	for off < len(data) {
		if len(data)-off < recHeaderLen {
			log.Torn = true // header torn mid-write
			break
		}
		t := RecType(data[off])
		n := binary.LittleEndian.Uint32(data[off+1 : off+5])
		sum := binary.LittleEndian.Uint32(data[off+5 : off+9])
		if t < RecInit || t > RecAbort || n > maxPayload {
			// An impossible header: on the final record this is a torn
			// write; earlier it is corruption.
			if lastRecord(data, off+recHeaderLen+int(n)) {
				log.Torn = true
				break
			}
			return nil, fmt.Errorf("%w: record header at offset %d", ErrChecksum, off)
		}
		end := off + recHeaderLen + int(n)
		if end > len(data) {
			log.Torn = true // payload torn mid-write
			break
		}
		body := data[off+recHeaderLen : end]
		if crc32.ChecksumIEEE(body) != sum {
			if end == len(data) {
				// The final record's payload landed at full length but with
				// wrong bits — a tear inside the last write, recoverable.
				log.Torn = true
				break
			}
			return nil, fmt.Errorf("%w: %v record at offset %d", ErrChecksum, t, off)
		}
		log.Records = append(log.Records, Record{Type: t, Payload: body})
		off = end
		log.ValidLen = int64(off)
	}
	if len(log.Records) == 0 {
		return nil, fmt.Errorf("%w: no records%s", ErrEmpty, tornNote(log.Torn))
	}
	return log, nil
}

// lastRecord reports whether a record claiming to end at end would be the
// file's final record (its claimed extent reaches or overruns the end).
func lastRecord(data []byte, end int) bool { return end >= len(data) }

func tornNote(torn bool) string {
	if torn {
		return " (torn tail)"
	}
	return ""
}
