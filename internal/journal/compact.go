package journal

import (
	"errors"
	"fmt"
	"os"
)

// ErrUnsealed: the journal ends in an open (unsealed) operation tail;
// compaction refuses to collapse history that recovery still needs to
// reconcile against the device.
var ErrUnsealed = errors.New("journal: unsealed tail")

// Compact rewrites a sealed journal in place, collapsing its full operation
// history into the minimum equivalent record stream: the Init record, plus —
// when anything ever committed — one synthetic sealed operation carrying the
// last committed state. Replay of the compacted file yields the same State
// and LastSeq as the original, so appenders resume sequence numbering
// unchanged and rlm.Recover behaves identically.
//
// Compaction refuses a torn file (ErrTorn, wrapped) and a file whose last
// operation is unsealed (ErrUnsealed): both still carry information only
// recovery may consume. The rewrite goes through a temporary sibling file
// and an atomic rename, so a crash mid-compaction leaves either the old or
// the new journal intact, never a mix.
//
// Returns the compacted file's length in bytes.
func Compact(path string) (int64, error) {
	log, err := Scan(path)
	if err != nil {
		return 0, err
	}
	if log.Torn {
		return 0, fmt.Errorf("%w: refusing to compact", ErrTorn)
	}
	rs, err := Replay(log)
	if err != nil {
		return 0, err
	}
	if rs.Tail != nil {
		return 0, fmt.Errorf("%w: op %d (%s); recover before compacting",
			ErrUnsealed, rs.Tail.Begin.Seq, rs.Tail.Begin.Op)
	}
	tmp := path + ".compact"
	_ = os.Remove(tmp)
	j, err := create(tmp)
	if err != nil {
		return 0, err
	}
	if err := j.Append(RecInit, rs.Init); err != nil {
		j.Close()
		return 0, err
	}
	if rs.LastSeq > 0 {
		// One synthetic sealed operation re-asserts the durable state under
		// the original's highest sequence number. When the last ops all
		// aborted, State.Seq stays below LastSeq — exactly as Replay of the
		// original reported it.
		seal := Begin{
			Seq: rs.LastSeq, Op: "compact",
			Detail: fmt.Sprintf("collapsed %d records", len(log.Records)),
		}
		if err := j.Append(RecBegin, seal); err != nil {
			j.Close()
			return 0, err
		}
		if err := j.Append(RecPost, Post{Seq: rs.LastSeq, State: rs.State}); err != nil {
			j.Close()
			return 0, err
		}
		if err := j.Append(RecCommit, Seal{Seq: rs.LastSeq}); err != nil {
			j.Close()
			return 0, err
		}
	}
	if err := j.Sync(); err != nil {
		j.Close()
		return 0, err
	}
	n := j.Offset()
	if err := j.Close(); err != nil {
		return 0, err
	}
	if err := os.Rename(tmp, path); err != nil {
		return 0, err
	}
	return n, nil
}

// create opens a fresh journal file unconditionally (Compact's temporary
// file; the public Create refuses to truncate existing history).
func create(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	if _, err := f.Write([]byte(Magic)); err != nil {
		f.Close()
		return nil, err
	}
	return &Journal{f: f, off: int64(len(Magic))}, nil
}
