package journal

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/fabric"
)

// writeJournal builds a journal file from records and returns its path.
func writeJournal(t *testing.T, recs ...func(*Journal) error) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "op.journal")
	j, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := r(j); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func app(tp RecType, payload any) func(*Journal) error {
	return func(j *Journal) error { return j.Append(tp, payload) }
}

func TestRoundTrip(t *testing.T) {
	path := writeJournal(t,
		app(RecInit, Init{Preset: "TEST12x8", Rows: 8, Cols: 12, Port: "jtag"}),
		app(RecBegin, Begin{Seq: 1, Op: "load", Design: "b01"}),
		app(RecUndo, Undo{Seq: 1, Addr: fabric.FrameAddr{Major: 2, Minor: 3}, Words: []uint32{1, 2, 3}}),
		app(RecPost, Post{Seq: 1, State: State{Seq: 1, NextAlloc: 2}}),
		app(RecCommit, Seal{Seq: 1}),
	)
	log, err := Scan(path)
	if err != nil {
		t.Fatal(err)
	}
	if log.Torn {
		t.Error("clean journal reported torn")
	}
	if len(log.Records) != 5 {
		t.Fatalf("got %d records, want 5", len(log.Records))
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if log.ValidLen != st.Size() {
		t.Errorf("ValidLen = %d, file size %d", log.ValidLen, st.Size())
	}
	rs, err := Replay(log)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Tail != nil {
		t.Error("sealed journal has a tail")
	}
	if rs.State.Seq != 1 || rs.State.NextAlloc != 2 {
		t.Errorf("state = %+v, want seq 1 next 2", rs.State)
	}
	if rs.Init.Preset != "TEST12x8" || rs.Init.Rows != 8 {
		t.Errorf("init = %+v", rs.Init)
	}
	if rs.LastSeq != 1 {
		t.Errorf("LastSeq = %d, want 1", rs.LastSeq)
	}
}

func TestScanEmpty(t *testing.T) {
	// Zero-byte file.
	path := filepath.Join(t.TempDir(), "empty")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Scan(path); !errors.Is(err, ErrEmpty) {
		t.Errorf("zero-byte scan: %v, want ErrEmpty", err)
	}
	// Bare header, no records: also empty.
	path2 := writeJournal(t)
	if _, err := Scan(path2); !errors.Is(err, ErrEmpty) {
		t.Errorf("bare-header scan: %v, want ErrEmpty", err)
	}
}

func TestScanBadMagic(t *testing.T) {
	if _, err := ScanBytes([]byte("NOTAJRNL records...")); !errors.Is(err, ErrBadMagic) {
		t.Errorf("got %v, want ErrBadMagic", err)
	}
	if _, err := ScanBytes([]byte("RLM")); !errors.Is(err, ErrBadMagic) {
		t.Errorf("short file: %v, want ErrBadMagic", err)
	}
}

// TestScanTornTail covers every tear position of the final record: inside the
// header, inside the payload, and a full-length payload with flipped bits.
func TestScanTornTail(t *testing.T) {
	path := writeJournal(t,
		app(RecInit, Init{Preset: "TEST12x8"}),
		app(RecBegin, Begin{Seq: 1, Op: "move"}),
	)
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	log, err := ScanBytes(whole)
	if err != nil {
		t.Fatal(err)
	}
	fullLen := int(log.ValidLen)
	initEnd := fullLen - tornRecordLen(t, whole, fullLen)

	for cut := initEnd + 1; cut < fullLen; cut++ {
		log, err := ScanBytes(whole[:cut])
		if err != nil {
			t.Fatalf("cut at %d: %v", cut, err)
		}
		if !log.Torn {
			t.Fatalf("cut at %d not reported torn", cut)
		}
		if log.ValidLen != int64(initEnd) {
			t.Fatalf("cut at %d: ValidLen %d, want %d", cut, log.ValidLen, initEnd)
		}
		if len(log.Records) != 1 || log.Records[0].Type != RecInit {
			t.Fatalf("cut at %d: records %v", cut, log.Records)
		}
	}

	// Full length but the final payload's bits got mangled in the tear.
	mangled := append([]byte(nil), whole...)
	mangled[len(mangled)-1] ^= 0xff
	log2, err := ScanBytes(mangled)
	if err != nil {
		t.Fatalf("mangled tail: %v", err)
	}
	if !log2.Torn || len(log2.Records) != 1 {
		t.Errorf("mangled tail: torn=%v records=%d, want torn with 1 record", log2.Torn, len(log2.Records))
	}
}

// tornRecordLen returns the byte length of the final record of a scanned
// image (header + payload).
func tornRecordLen(t *testing.T, data []byte, end int) int {
	t.Helper()
	// Walk records from the top to find the last one's start.
	off := len(Magic)
	last := off
	for off < end {
		last = off
		n := binary.LittleEndian.Uint32(data[off+1 : off+5])
		off += recHeaderLen + int(n)
	}
	return end - last
}

func TestScanMidFileChecksum(t *testing.T) {
	path := writeJournal(t,
		app(RecInit, Init{Preset: "TEST12x8"}),
		app(RecBegin, Begin{Seq: 1, Op: "move"}),
		app(RecCommit, Seal{Seq: 1}),
	)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte of the FIRST record: corruption before the tail.
	data[len(Magic)+recHeaderLen] ^= 0x01
	if _, err := ScanBytes(data); !errors.Is(err, ErrChecksum) {
		t.Errorf("mid-file corruption: %v, want ErrChecksum", err)
	}
}

func TestScanImpossibleHeader(t *testing.T) {
	head := []byte(Magic)
	// A record with an impossible type mid-file is corruption...
	rec := func(tp byte, body []byte) []byte {
		r := make([]byte, recHeaderLen+len(body))
		r[0] = tp
		binary.LittleEndian.PutUint32(r[1:5], uint32(len(body)))
		binary.LittleEndian.PutUint32(r[5:9], crc32.ChecksumIEEE(body))
		return append(r[:recHeaderLen], body...)
	}
	img := append(append([]byte(nil), head...), rec(99, []byte("{}"))...)
	img = append(img, rec(byte(RecInit), []byte("{}"))...)
	if _, err := ScanBytes(img); !errors.Is(err, ErrChecksum) {
		t.Errorf("impossible type mid-file: %v, want ErrChecksum", err)
	}
	// ...but as the final record it is a tear.
	img2 := append(append([]byte(nil), head...), rec(byte(RecInit), []byte("{}"))...)
	img2 = append(img2, rec(99, []byte("{}"))...)
	log, err := ScanBytes(img2)
	if err != nil {
		t.Fatalf("impossible final header: %v", err)
	}
	if !log.Torn {
		t.Error("impossible final header not reported torn")
	}
}

func TestCreateRefusesHistory(t *testing.T) {
	path := writeJournal(t, app(RecInit, Init{Preset: "TEST12x8"}))
	if _, err := Create(path); !errors.Is(err, ErrExists) {
		t.Errorf("Create over history: %v, want ErrExists", err)
	}
}

func TestOpenAppendTruncatesTear(t *testing.T) {
	path := writeJournal(t,
		app(RecInit, Init{Preset: "TEST12x8"}),
		app(RecBegin, Begin{Seq: 1, Op: "move"}),
	)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the begin record, then seal through OpenAppend.
	if err := os.WriteFile(path, data[:len(data)-2], 0o644); err != nil {
		t.Fatal(err)
	}
	log, err := Scan(path)
	if err != nil || !log.Torn {
		t.Fatalf("scan: torn=%v err=%v", log.Torn, err)
	}
	j, err := OpenAppend(path, log.ValidLen)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(RecBegin, Begin{Seq: 1, Op: "retry"}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	log2, err := Scan(path)
	if err != nil {
		t.Fatal(err)
	}
	if log2.Torn || len(log2.Records) != 2 {
		t.Fatalf("after reseal: torn=%v records=%d", log2.Torn, len(log2.Records))
	}
	var b Begin
	if err := unmarshalRecord(log2.Records[1], &b); err != nil || b.Op != "retry" {
		t.Errorf("resealed record = %+v err=%v", b, err)
	}
}

func TestReplayGrammar(t *testing.T) {
	build := func(recs ...func(*Journal) error) *Log {
		path := writeJournal(t, recs...)
		log, err := Scan(path)
		if err != nil {
			t.Fatal(err)
		}
		return log
	}
	malformed := []struct {
		name string
		recs []func(*Journal) error
	}{
		{"no init", []func(*Journal) error{app(RecBegin, Begin{Seq: 1})}},
		{"duplicate init", []func(*Journal) error{app(RecInit, Init{}), app(RecInit, Init{})}},
		{"undo outside op", []func(*Journal) error{app(RecInit, Init{}), app(RecUndo, Undo{Seq: 1})}},
		{"post outside op", []func(*Journal) error{app(RecInit, Init{}), app(RecPost, Post{Seq: 1})}},
		{"seal without op", []func(*Journal) error{app(RecInit, Init{}), app(RecCommit, Seal{Seq: 1})}},
		{"nested begin", []func(*Journal) error{app(RecInit, Init{}),
			app(RecBegin, Begin{Seq: 1}), app(RecBegin, Begin{Seq: 2})}},
		{"seq mismatch", []func(*Journal) error{app(RecInit, Init{}),
			app(RecBegin, Begin{Seq: 1}), app(RecUndo, Undo{Seq: 7})}},
		{"commit without post", []func(*Journal) error{app(RecInit, Init{}),
			app(RecBegin, Begin{Seq: 1}), app(RecCommit, Seal{Seq: 1})}},
	}
	for _, tc := range malformed {
		if _, err := Replay(build(tc.recs...)); !errors.Is(err, ErrMalformed) {
			t.Errorf("%s: %v, want ErrMalformed", tc.name, err)
		}
	}

	// Abort seals without a Post; a later op's commit supersedes state; an
	// open tail is surfaced.
	log := build(
		app(RecInit, Init{Preset: "TEST12x8"}),
		app(RecBegin, Begin{Seq: 1, Op: "load"}),
		app(RecUndo, Undo{Seq: 1, Addr: fabric.FrameAddr{Major: 1}}),
		app(RecAbort, Seal{Seq: 1}),
		app(RecBegin, Begin{Seq: 2, Op: "move"}),
		app(RecPost, Post{Seq: 2, State: State{Seq: 2, NextAlloc: 3}}),
		app(RecCommit, Seal{Seq: 2}),
		app(RecBegin, Begin{Seq: 3, Op: "unload"}),
		app(RecUndo, Undo{Seq: 3, Addr: fabric.FrameAddr{Major: 2}}),
	)
	rs, err := Replay(log)
	if err != nil {
		t.Fatal(err)
	}
	if rs.State.Seq != 2 || rs.State.NextAlloc != 3 {
		t.Errorf("state = %+v, want committed op 2", rs.State)
	}
	if rs.Tail == nil || rs.Tail.Begin.Seq != 3 || rs.Tail.Post != nil || len(rs.Tail.Undo) != 1 {
		t.Errorf("tail = %+v, want open op 3 with one undo", rs.Tail)
	}
	if rs.LastSeq != 3 {
		t.Errorf("LastSeq = %d, want 3", rs.LastSeq)
	}

	// Several Posts in one op: the last one wins (commit-seal retry loops).
	log2 := build(
		app(RecInit, Init{}),
		app(RecBegin, Begin{Seq: 1}),
		app(RecPost, Post{Seq: 1, State: State{Seq: 1, NextAlloc: 2}}),
		app(RecUndo, Undo{Seq: 1, Addr: fabric.FrameAddr{Major: 3}}),
		app(RecPost, Post{Seq: 1, State: State{Seq: 1, NextAlloc: 9}}),
		app(RecCommit, Seal{Seq: 1}),
	)
	rs2, err := Replay(log2)
	if err != nil {
		t.Fatal(err)
	}
	if rs2.State.NextAlloc != 9 {
		t.Errorf("state.NextAlloc = %d, want last post (9)", rs2.State.NextAlloc)
	}

	if _, err := Replay(&Log{}); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty log replay: %v, want ErrEmpty", err)
	}
}

// unmarshalRecord decodes one record payload (test helper mirroring what
// Replay does internally).
func unmarshalRecord(r Record, into any) error {
	return json.Unmarshal(r.Payload, into)
}
