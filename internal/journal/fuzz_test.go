package journal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"testing"
)

// fuzzRecord frames one record the way Append does.
func fuzzRecord(t RecType, body []byte) []byte {
	r := make([]byte, recHeaderLen, recHeaderLen+len(body))
	r[0] = byte(t)
	binary.LittleEndian.PutUint32(r[1:5], uint32(len(body)))
	binary.LittleEndian.PutUint32(r[5:9], crc32.ChecksumIEEE(body))
	return append(r, body...)
}

// FuzzJournalScan feeds arbitrary bytes through the scanner and, when they
// parse, through Replay. The invariants: no panic ever; Scan's ValidLen is a
// re-scannable prefix yielding the same records; errors are always one of the
// package's typed sentinels.
func FuzzJournalScan(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(Magic))
	f.Add([]byte("not a journal at all"))
	wellFormed := append([]byte(Magic),
		fuzzRecord(RecInit, []byte(`{"preset":"TEST12x8","rows":8,"cols":12,"port":"jtag"}`))...)
	wellFormed = append(wellFormed, fuzzRecord(RecBegin, []byte(`{"seq":1,"op":"load","design":"b01"}`))...)
	wellFormed = append(wellFormed, fuzzRecord(RecUndo, []byte(`{"seq":1,"addr":{"Major":2,"Minor":3},"words":[1,2,3]}`))...)
	wellFormed = append(wellFormed, fuzzRecord(RecPost, []byte(`{"seq":1,"state":{"seq":1,"next_alloc":2,"stats":{},"port_cycles":0,"last_tick":0}}`))...)
	wellFormed = append(wellFormed, fuzzRecord(RecCommit, []byte(`{"seq":1}`))...)
	f.Add(wellFormed)
	f.Add(wellFormed[:len(wellFormed)-3]) // torn tail
	f.Add(append(append([]byte(nil), wellFormed...), fuzzRecord(RecBegin, []byte(`{"seq":2,"op":"move"}`))...))

	f.Fuzz(func(t *testing.T, data []byte) {
		log, err := ScanBytes(data)
		if err != nil {
			for _, want := range []error{ErrEmpty, ErrBadMagic, ErrChecksum} {
				if errors.Is(err, want) {
					return
				}
			}
			t.Fatalf("scan error %v is not a typed sentinel", err)
		}
		if log.ValidLen < int64(len(Magic)) || log.ValidLen > int64(len(data)) {
			t.Fatalf("ValidLen %d outside [%d,%d]", log.ValidLen, len(Magic), len(data))
		}
		// The well-formed prefix must re-scan to the same records, untorn.
		again, err := ScanBytes(data[:log.ValidLen])
		if err != nil {
			t.Fatalf("rescan of valid prefix: %v", err)
		}
		if again.Torn || len(again.Records) != len(log.Records) {
			t.Fatalf("rescan: torn=%v records=%d, want clean %d", again.Torn, len(again.Records), len(log.Records))
		}
		for i := range log.Records {
			if again.Records[i].Type != log.Records[i].Type ||
				!bytes.Equal(again.Records[i].Payload, log.Records[i].Payload) {
				t.Fatalf("rescan record %d differs", i)
			}
		}
		// Replay either succeeds or fails with a typed sentinel; no panic.
		if _, err := Replay(log); err != nil &&
			!errors.Is(err, ErrMalformed) && !errors.Is(err, ErrEmpty) {
			t.Fatalf("replay error %v is not a typed sentinel", err)
		}
	})
}
