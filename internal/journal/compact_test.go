package journal

import (
	"errors"
	"os"
	"testing"

	"repro/internal/fabric"
)

// TestCompactPreservesReplay: a sealed multi-op history compacts to a smaller
// file whose Replay yields the same Init, State and LastSeq.
func TestCompactPreservesReplay(t *testing.T) {
	path := writeJournal(t,
		app(RecInit, Init{Preset: "TEST12x8", Rows: 8, Cols: 12, Port: "jtag"}),
		app(RecBegin, Begin{Seq: 1, Op: "load", Design: "b01"}),
		app(RecUndo, Undo{Seq: 1, Addr: fabric.FrameAddr{Major: 2, Minor: 3}, Words: []uint32{1, 2, 3}}),
		app(RecPost, Post{Seq: 1, State: State{Seq: 1, NextAlloc: 2}}),
		app(RecCommit, Seal{Seq: 1}),
		app(RecBegin, Begin{Seq: 2, Op: "move", Design: "b01"}),
		app(RecUndo, Undo{Seq: 2, Addr: fabric.FrameAddr{Major: 4}, Words: []uint32{9, 9}}),
		app(RecPost, Post{Seq: 2, State: State{Seq: 2, NextAlloc: 3}}),
		app(RecCommit, Seal{Seq: 2}),
		// A trailing abort: LastSeq advances past the committed state's Seq.
		app(RecBegin, Begin{Seq: 3, Op: "unload"}),
		app(RecAbort, Seal{Seq: 3}),
	)
	before, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}

	n, err := Compact(path)
	if err != nil {
		t.Fatal(err)
	}
	after, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if n != after.Size() {
		t.Errorf("Compact returned %d, file is %d bytes", n, after.Size())
	}
	if after.Size() >= before.Size() {
		t.Errorf("compacted file not smaller: %d -> %d bytes", before.Size(), after.Size())
	}

	log, err := Scan(path)
	if err != nil {
		t.Fatal(err)
	}
	if log.Torn {
		t.Fatal("compacted journal reported torn")
	}
	rs, err := Replay(log)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Tail != nil {
		t.Error("compacted journal has an open tail")
	}
	if rs.Init.Preset != "TEST12x8" || rs.Init.Rows != 8 || rs.Init.Cols != 12 || rs.Init.Port != "jtag" {
		t.Errorf("init = %+v", rs.Init)
	}
	if rs.State.Seq != 2 || rs.State.NextAlloc != 3 {
		t.Errorf("state = %+v, want committed op 2", rs.State)
	}
	if rs.LastSeq != 3 {
		t.Errorf("LastSeq = %d, want 3 (the aborted op's seq survives)", rs.LastSeq)
	}
}

// TestCompactThenAppend: a compacted journal accepts further sealed ops
// through OpenAppend, and Replay sees them on top of the collapsed state.
func TestCompactThenAppend(t *testing.T) {
	path := writeJournal(t,
		app(RecInit, Init{Preset: "TEST12x8"}),
		app(RecBegin, Begin{Seq: 1, Op: "load"}),
		app(RecPost, Post{Seq: 1, State: State{Seq: 1, NextAlloc: 2}}),
		app(RecCommit, Seal{Seq: 1}),
	)
	if _, err := Compact(path); err != nil {
		t.Fatal(err)
	}
	log, err := Scan(path)
	if err != nil {
		t.Fatal(err)
	}
	j, err := OpenAppend(path, log.ValidLen)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []func(*Journal) error{
		app(RecBegin, Begin{Seq: 2, Op: "move"}),
		app(RecPost, Post{Seq: 2, State: State{Seq: 2, NextAlloc: 7}}),
		app(RecCommit, Seal{Seq: 2}),
	} {
		if err := r(j); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	log2, err := Scan(path)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := Replay(log2)
	if err != nil {
		t.Fatal(err)
	}
	if rs.State.Seq != 2 || rs.State.NextAlloc != 7 || rs.LastSeq != 2 {
		t.Errorf("replay after append = state %+v lastSeq %d, want op 2 next 7", rs.State, rs.LastSeq)
	}
}

// TestCompactInitOnly: a journal with history but no committed op collapses
// to just the Init record.
func TestCompactInitOnly(t *testing.T) {
	path := writeJournal(t, app(RecInit, Init{Preset: "TEST12x8", Rows: 8, Cols: 12}))
	// An Init-only journal scans as ErrEmpty; give it one aborted op so it
	// has records, but nothing ever committed.
	// (Re-create with an abort appended.)
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	path = writeJournal(t,
		app(RecInit, Init{Preset: "TEST12x8", Rows: 8, Cols: 12}),
		app(RecBegin, Begin{Seq: 1, Op: "load"}),
		app(RecAbort, Seal{Seq: 1}),
	)
	if _, err := Compact(path); err != nil {
		t.Fatal(err)
	}
	log, err := Scan(path)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := Replay(log)
	if err != nil {
		t.Fatal(err)
	}
	if rs.State.Seq != 0 {
		t.Errorf("state.Seq = %d, want 0 (nothing committed)", rs.State.Seq)
	}
	if rs.LastSeq != 1 {
		t.Errorf("LastSeq = %d, want 1", rs.LastSeq)
	}
	if rs.Init.Preset != "TEST12x8" {
		t.Errorf("init = %+v", rs.Init)
	}
}

// TestCompactRefusesUnsealedTail: an open op must be recovered, not collapsed.
func TestCompactRefusesUnsealedTail(t *testing.T) {
	path := writeJournal(t,
		app(RecInit, Init{Preset: "TEST12x8"}),
		app(RecBegin, Begin{Seq: 1, Op: "load"}),
		app(RecPost, Post{Seq: 1, State: State{Seq: 1, NextAlloc: 2}}),
		app(RecCommit, Seal{Seq: 1}),
		app(RecBegin, Begin{Seq: 2, Op: "move"}),
		app(RecUndo, Undo{Seq: 2, Addr: fabric.FrameAddr{Major: 1}}),
	)
	if _, err := Compact(path); !errors.Is(err, ErrUnsealed) {
		t.Errorf("compact over open tail: %v, want ErrUnsealed", err)
	}
	// The refusal left the file untouched: replay still sees the tail.
	log, err := Scan(path)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := Replay(log)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Tail == nil || rs.Tail.Begin.Seq != 2 {
		t.Errorf("tail = %+v, want open op 2", rs.Tail)
	}
}

// TestCompactRefusesTorn: a torn file carries crash evidence; compaction
// must not destroy it.
func TestCompactRefusesTorn(t *testing.T) {
	path := writeJournal(t,
		app(RecInit, Init{Preset: "TEST12x8"}),
		app(RecBegin, Begin{Seq: 1, Op: "load"}),
	)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Compact(path); !errors.Is(err, ErrTorn) {
		t.Errorf("compact over torn file: %v, want ErrTorn", err)
	}
}
