package journal

import (
	"encoding/json"
	"fmt"

	"repro/internal/fabric"
	"repro/internal/netlist"
	"repro/internal/relocate"
	"repro/internal/route"
)

// Init is the journal's opening record: everything needed to rebuild a
// matching System over the same device geometry before replaying state.
type Init struct {
	Preset     string  `json:"preset"`
	Rows       int     `json:"rows,omitempty"` // geometry cross-check
	Cols       int     `json:"cols,omitempty"`
	Port       string  `json:"port"` // "jtag", "selectmap", "custom"
	ClockHz    float64 `json:"clock_hz,omitempty"`
	AppClockHz float64 `json:"app_clock_hz,omitempty"`
	Serial     bool    `json:"serial,omitempty"`
	// Compress records that the port delivered compressed (delta/MFWR)
	// write streams; recovery rebuilds the system compressed so its traffic
	// and cycle accounting stay bit-identical. Absent in older journals.
	Compress bool `json:"compress,omitempty"`
	// PortWidth is the SelectMAP data-port width in bits (0 = the 8-bit
	// default). Absent in older journals and on Boundary-Scan systems.
	PortWidth int `json:"port_width,omitempty"`
}

// Begin declares one facade operation's intent. Recovery never re-executes
// the intent (roll-forward installs the Post state instead); the record
// exists so an interrupted journal is self-describing.
type Begin struct {
	Seq    uint64      `json:"seq"`
	Op     string      `json:"op"` // load, unload, move, move-staged, plan, defrag-need, defrag-slide
	Design string      `json:"design,omitempty"`
	Region fabric.Rect `json:"region,omitempty"`
	Detail string      `json:"detail,omitempty"`
}

// Undo carries the pre-image of one frame the operation dirties, appended
// before the frame's new content is delivered through the port.
type Undo struct {
	Seq   uint64           `json:"seq"`
	Addr  fabric.FrameAddr `json:"addr"`
	Words []uint32         `json:"words"`
}

// FrameDigest is the CRC-32 of one frame's post-operation content; the
// recovery path compares these against device readback to decide between
// roll-forward and roll-back.
type FrameDigest struct {
	Addr fabric.FrameAddr `json:"addr"`
	CRC  uint32           `json:"crc"`
}

// Post carries the complete post-operation host state.
type Post struct {
	Seq   uint64        `json:"seq"`
	State State         `json:"state"`
	Dirty []FrameDigest `json:"dirty,omitempty"`
}

// Seal is the payload of RecCommit and RecAbort.
type Seal struct {
	Seq uint64 `json:"seq"`
}

// DesignState serialises one loaded design's complete book-keeping: the
// netlist content, the placement tables and the routed nets. Maps keyed by
// integer ids marshal deterministically (encoding/json sorts keys).
type DesignState struct {
	Name     string                        `json:"name"`
	Region   fabric.Rect                   `json:"region"`
	Alloc    int                           `json:"alloc"`
	Nodes    []netlist.Node                `json:"nodes"`
	CellOf   map[netlist.ID]fabric.CellRef `json:"cell_of"`
	PadOf    map[netlist.ID]fabric.PadRef  `json:"pad_of,omitempty"`
	SourceOf map[netlist.ID]fabric.NodeID  `json:"source_of,omitempty"`
	Nets     []route.RoutedNet             `json:"nets,omitempty"`
}

// Alloc is one area-manager allocation.
type Alloc struct {
	ID   int         `json:"id"`
	Rect fabric.Rect `json:"rect"`
}

// State is the complete host book-keeping at a committed operation
// boundary: designs, pad reservations, area occupancy, and the accounting
// counters (engine statistics, port cycle counter, engine tick cursor) that
// make a recovered system's TCK accounting bit-identical to a never-crashed
// twin's.
type State struct {
	Seq        uint64          `json:"seq"`
	Designs    []DesignState   `json:"designs,omitempty"`
	Pads       []fabric.PadRef `json:"pads,omitempty"`
	Allocs     []Alloc         `json:"allocs,omitempty"`
	NextAlloc  int             `json:"next_alloc"`
	Stats      relocate.Stats  `json:"stats"`
	PortCycles uint64          `json:"port_cycles"`
	LastTick   float64         `json:"last_tick"`
	// WordsShifted/FullWords/FramesDelivered mirror the port's write-traffic
	// counters (bitstream.Traffic) at the commit boundary; recovery restores
	// them alongside PortCycles. Absent in pre-compression journals, which
	// decode to zero counters.
	WordsShifted    uint64 `json:"words_shifted,omitempty"`
	FullWords       uint64 `json:"full_words,omitempty"`
	FramesDelivered uint64 `json:"frames_delivered,omitempty"`
	// Quarantined lists the configuration frames masked out after persistent
	// write failures; recovery re-applies the mask (frame filter plus area
	// quarantine) before anything is delivered. Absent in pre-quarantine
	// journals, which decode to an empty mask.
	Quarantined []fabric.FrameAddr `json:"quarantined,omitempty"`
	// Health is the per-column health ledger (states, error rates, probe
	// history) of the self-healing layer; recovery restores it after
	// re-applying the quarantine mask. Absent in older journals, which
	// decode to a ledger derived from Quarantined alone.
	Health []ColumnHealth `json:"health,omitempty"`
}

// ColumnHealth serialises one column of the health ledger. State matches
// internal/health.State (0 healthy, 1 suspect, 2 quarantined, 3 probation);
// plain ints keep the journal schema free of the health package.
type ColumnHealth struct {
	Major       int     `json:"major"`
	State       uint8   `json:"state"`
	Rate        float64 `json:"rate,omitempty"`
	CleanProbes int     `json:"clean_probes,omitempty"`
	CleanChecks int     `json:"clean_checks,omitempty"`
	Probes      int     `json:"probes,omitempty"`
	ProbeFails  int     `json:"probe_fails,omitempty"`
	Repairs     int     `json:"repairs,omitempty"`
}

// TailOp is an operation whose records reach the end of the journal without
// a Commit or Abort seal — the crash window recovery must reconcile.
type TailOp struct {
	Begin Begin
	// Undo holds the journaled pre-images in append order. A frame can
	// appear once per operation (the writer dedups); recovery applies them
	// as a set.
	Undo []Undo
	// Post is non-nil when the operation journaled its post state (the
	// shift completed) but the seal did not land — the roll-forward case.
	Post *Post
}

// Replayed is the outcome of replaying a scanned journal.
type Replayed struct {
	Init Init
	// State is the last sealed (committed) state; zero-valued with Seq 0
	// when no operation ever committed.
	State State
	// Tail is the unsealed trailing operation, nil when the journal ends
	// clean.
	Tail *TailOp
	// LastSeq is the highest operation sequence number that appears in the
	// journal (sealed either way, or open in the tail); an appender resumes
	// numbering after it. State.Seq is NOT that number when the last
	// operations aborted.
	LastSeq uint64
	// Torn is carried over from the scan.
	Torn bool
	// ValidLen is carried over from the scan (where an appender resumes).
	ValidLen int64
}

// Replay walks a scanned log and folds it into the last durable state plus
// the unsealed tail. The record grammar is
//
//	Init (Begin (Undo|Post)* (Commit|Abort))* (Begin (Undo|Post)*)?
//
// and any violation fails with ErrMalformed (wrapped): the journal writer
// is the only producer, so a grammar break means corruption that passed the
// checksums, and recovery must not guess. An operation can carry several
// Post records (a commit whose seal failed to append is retried after a
// rollback, e.g. across defragmentation candidates); the LAST one is the
// roll-forward candidate, and the digest comparison against device readback
// decides whether it stands.
func Replay(log *Log) (*Replayed, error) {
	if log == nil || len(log.Records) == 0 {
		return nil, ErrEmpty
	}
	out := &Replayed{Torn: log.Torn, ValidLen: log.ValidLen}
	if log.Records[0].Type != RecInit {
		return nil, fmt.Errorf("%w: first record is %v, want init", ErrMalformed, log.Records[0].Type)
	}
	if err := json.Unmarshal(log.Records[0].Payload, &out.Init); err != nil {
		return nil, fmt.Errorf("%w: init: %v", ErrMalformed, err)
	}
	var tail *TailOp
	for i, rec := range log.Records[1:] {
		switch rec.Type {
		case RecInit:
			return nil, fmt.Errorf("%w: duplicate init at record %d", ErrMalformed, i+1)
		case RecBegin:
			if tail != nil {
				return nil, fmt.Errorf("%w: begin inside open op %d", ErrMalformed, tail.Begin.Seq)
			}
			tail = &TailOp{}
			if err := json.Unmarshal(rec.Payload, &tail.Begin); err != nil {
				return nil, fmt.Errorf("%w: begin: %v", ErrMalformed, err)
			}
			if tail.Begin.Seq > out.LastSeq {
				out.LastSeq = tail.Begin.Seq
			}
		case RecUndo:
			if tail == nil {
				return nil, fmt.Errorf("%w: undo outside op body", ErrMalformed)
			}
			var u Undo
			if err := json.Unmarshal(rec.Payload, &u); err != nil {
				return nil, fmt.Errorf("%w: undo: %v", ErrMalformed, err)
			}
			if u.Seq != tail.Begin.Seq {
				return nil, fmt.Errorf("%w: undo seq %d inside op %d", ErrMalformed, u.Seq, tail.Begin.Seq)
			}
			tail.Undo = append(tail.Undo, u)
		case RecPost:
			if tail == nil {
				return nil, fmt.Errorf("%w: post outside op body", ErrMalformed)
			}
			var p Post
			if err := json.Unmarshal(rec.Payload, &p); err != nil {
				return nil, fmt.Errorf("%w: post: %v", ErrMalformed, err)
			}
			if p.Seq != tail.Begin.Seq {
				return nil, fmt.Errorf("%w: post seq %d inside op %d", ErrMalformed, p.Seq, tail.Begin.Seq)
			}
			tail.Post = &p
		case RecCommit, RecAbort:
			if tail == nil {
				return nil, fmt.Errorf("%w: %v with no open op", ErrMalformed, rec.Type)
			}
			var s Seal
			if err := json.Unmarshal(rec.Payload, &s); err != nil {
				return nil, fmt.Errorf("%w: %v: %v", ErrMalformed, rec.Type, err)
			}
			if s.Seq != tail.Begin.Seq {
				return nil, fmt.Errorf("%w: %v seq %d seals op %d", ErrMalformed, rec.Type, s.Seq, tail.Begin.Seq)
			}
			if rec.Type == RecCommit {
				if tail.Post == nil {
					return nil, fmt.Errorf("%w: commit of op %d without post state", ErrMalformed, s.Seq)
				}
				out.State = tail.Post.State
			}
			tail = nil
		default:
			return nil, fmt.Errorf("%w: unknown record type %v", ErrMalformed, rec.Type)
		}
	}
	out.Tail = tail
	return out, nil
}
