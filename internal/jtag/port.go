package jtag

import (
	"fmt"

	"repro/internal/bitstream"
	"repro/internal/fabric"
)

// Port drives a Chain as a Boundary-Scan configuration port, counting every
// TCK cycle. It implements bitstream.Port and bitstream.AsyncPort: a partial
// bitstream can be enqueued with StreamUpdates and shifts out on a
// background worker while the host plans the next operation — the paper's
// natural pipeline, since the Boundary-Scan shift is by far the slowest
// stage. The TCK cost of a burst is a pure function of its word count, so it
// is added to the cycle counter at enqueue time: Elapsed is deterministic
// and identical between pipelined and serial delivery.
type Port struct {
	Chain    *Chain
	TCKHz    float64
	cycles   uint64
	compress bool
	traffic  bitstream.Traffic
	q        bitstream.StreamQueue
}

// DefaultTCKHz is the paper's Boundary-Scan test clock frequency.
const DefaultTCKHz = 20e6

// NewPort attaches a Boundary-Scan port to a configuration controller and
// resets the TAP.
func NewPort(ctrl *bitstream.Controller, tckHz float64) *Port {
	p := &Port{Chain: NewChain(ctrl, 0x0050C093 /* Virtex-family-style idcode */), TCKHz: tckHz}
	p.q.Deliver = p.deliverBurst
	p.ResetTAP()
	return p
}

func (p *Port) step(tms, tdi bool) bool {
	p.cycles++
	return p.Chain.Step(tms, tdi)
}

// ResetTAP forces Test-Logic-Reset (five TMS-high cycles) and parks in
// Run-Test/Idle.
func (p *Port) ResetTAP() {
	for i := 0; i < 5; i++ {
		p.step(true, false)
	}
	p.step(false, false)
}

// stepFn advances a TAP by one TCK cycle. The port's own step counts into
// its cycle counter; the background worker supplies a locally counting one.
type stepFn func(tms, tdi bool) bool

// LoadIR shifts an instruction into the IR and returns to Run-Test/Idle.
func (p *Port) LoadIR(code uint8) { loadIRWith(p.step, code) }

func loadIRWith(step stepFn, code uint8) {
	step(true, false)  // Select-DR
	step(true, false)  // Select-IR
	step(false, false) // Capture-IR
	step(false, false) // Shift-IR (first shift happens in this state)
	for i := 0; i < IRLength; i++ {
		last := i == IRLength-1
		step(last, code>>i&1 == 1) // exit on last bit
	}
	step(true, false)  // Update-IR
	step(false, false) // Run-Test/Idle
}

// ShiftDRIn shifts words into the current data register MSB-first and
// returns to Run-Test/Idle.
func (p *Port) ShiftDRIn(words []uint32) { shiftDRInWith(p.step, words) }

func shiftDRInWith(step stepFn, words []uint32) {
	step(true, false)  // Select-DR
	step(false, false) // Capture-DR
	step(false, false) // Shift-DR
	total := len(words) * 32
	n := 0
	for _, w := range words {
		for b := 31; b >= 0; b-- {
			n++
			step(n == total, w>>b&1 == 1)
		}
	}
	step(true, false)  // Update-DR
	step(false, false) // Run-Test/Idle
}

// ShiftDROut shifts n words out of the current data register.
func (p *Port) ShiftDROut(nWords int) []uint32 {
	p.step(true, false)  // Select-DR
	p.step(false, false) // Capture-DR
	p.step(false, false) // Shift-DR
	out := make([]uint32, nWords)
	total := nWords * 32
	n := 0
	for i := range out {
		var w uint32
		for b := 0; b < 32; b++ {
			n++
			bit := p.step(n == total, false)
			w <<= 1
			if bit {
				w |= 1
			}
		}
		out[i] = w
	}
	p.step(true, false)  // Update-DR
	p.step(false, false) // Run-Test/Idle
	return out
}

// WriteUpdates implements bitstream.Port: the frame updates are packetised
// into a partial bitstream and shifted through CFG_IN. Any background stream
// drains first, so the chain sees bursts strictly in order.
func (p *Port) WriteUpdates(updates []bitstream.FrameUpdate) error {
	if err := p.AwaitStream(); err != nil {
		return err
	}
	words := bitstream.EncodeStream(p.Chain.ctrl.Device(), p.compress, updates, &p.traffic)
	if len(words) == 0 {
		return nil // every frame was an identical rewrite: nothing to shift
	}
	p.LoadIR(InstrCfgIn)
	p.ShiftDRIn(words)
	if err := p.Chain.Err(); err != nil {
		return err
	}
	return nil
}

// burstCycles is the TCK cost of delivering one CFG_IN burst: the IR load
// (4 entry states, IRLength shifts, 2 exit states) plus the DR shift (3
// entry states, 32 per word, 2 exit states). It must match what LoadIR and
// ShiftDRIn actually step — deliverBurst asserts the two agree.
func burstCycles(nWords int) uint64 {
	return uint64(IRLength+6) + uint64(32*nWords+5)
}

// StreamUpdates implements bitstream.AsyncPort: the burst's TCK cost lands
// on the cycle counter now; the TAP stepping — the expensive part of the
// Boundary-Scan model — runs on the queue's background worker.
// A fully elided burst (compression skipped every frame) still enqueues —
// zero words, zero cycles — so callers' CompletedBursts book-keeping stays
// in lockstep with their enqueue count.
func (p *Port) StreamUpdates(updates []bitstream.FrameUpdate) {
	words := bitstream.EncodeStream(p.Chain.ctrl.Device(), p.compress, updates, &p.traffic)
	if len(words) > 0 {
		p.cycles += burstCycles(len(words))
	}
	p.q.Enqueue(words)
}

// AwaitStream implements bitstream.AsyncPort.
func (p *Port) AwaitStream() error { return p.q.Await() }

// StreamInFlight implements bitstream.AsyncPort.
func (p *Port) StreamInFlight() bool { return p.q.InFlight() }

// CompletedBursts implements bitstream.AsyncPort.
func (p *Port) CompletedBursts() uint64 { return p.q.Completed() }

// deliverBurst shifts one queued burst through the TAP on the worker
// goroutine. The worker owns the chain (and through it the configuration
// controller) between Enqueue and Await; cycles were accounted at enqueue,
// so the local count only cross-checks the closed-form burstCycles. The
// burst re-delivers frames already staged write-through, so the controller
// runs in re-delivery mode: full protocol, no configuration write.
func (p *Port) deliverBurst(words []uint32) error {
	if len(words) == 0 {
		return nil // elided burst: nothing was accounted, nothing shifts
	}
	p.Chain.ctrl.SetRedelivery(true)
	defer p.Chain.ctrl.SetRedelivery(false)
	var n uint64
	step := func(tms, tdi bool) bool {
		n++
		return p.Chain.Step(tms, tdi)
	}
	loadIRWith(step, InstrCfgIn)
	shiftDRInWith(step, words)
	if err := p.Chain.Err(); err != nil {
		return err
	}
	if n != burstCycles(len(words)) {
		return fmt.Errorf("jtag: burst stepped %d cycles, accounted %d", n, burstCycles(len(words)))
	}
	return nil
}

// ReadFrame implements bitstream.Port: a readback request goes in through
// CFG_IN and the frame comes back through CFG_OUT. Any background stream
// drains first.
func (p *Port) ReadFrame(addr fabric.FrameAddr) ([]uint32, error) {
	if err := p.AwaitStream(); err != nil {
		return nil, err
	}
	dev := p.Chain.ctrl.Device()
	req := bitstream.ReadFramesRequest(dev.FrameWords(), bitstream.FAR{Major: addr.Major, Minor: addr.Minor}, 1)
	p.LoadIR(InstrCfgIn)
	p.ShiftDRIn(req)
	p.LoadIR(InstrCfgOut)
	out := p.ShiftDROut(dev.FrameWords())
	if err := p.Chain.Err(); err != nil {
		return nil, err
	}
	if len(out) != dev.FrameWords() {
		return nil, fmt.Errorf("jtag: readback returned %d words", len(out))
	}
	return out, nil
}

// Elapsed implements bitstream.Port.
func (p *Port) Elapsed() float64 { return float64(p.cycles) / p.TCKHz }

// Name implements bitstream.Port.
func (p *Port) Name() string { return "Boundary-Scan" }

// Cycles returns the total TCK cycles consumed.
func (p *Port) Cycles() uint64 { return p.cycles }

// RestoreCycles overwrites the TCK cycle counter — the journal-recovery
// path restores the counter a crashed system had accounted, so elapsed-time
// book-keeping survives a crash bit-identically.
func (p *Port) RestoreCycles(n uint64) { p.cycles = n }

// SetCompress implements bitstream.CompressPort.
func (p *Port) SetCompress(on bool) { p.compress = on }

// Compressed implements bitstream.CompressPort.
func (p *Port) Compressed() bool { return p.compress }

// Traffic implements bitstream.CompressPort.
func (p *Port) Traffic() bitstream.Traffic { return p.traffic }

// RestoreTraffic implements bitstream.CompressPort.
func (p *Port) RestoreTraffic(t bitstream.Traffic) { p.traffic = t }

var (
	_ bitstream.Port         = (*Port)(nil)
	_ bitstream.AsyncPort    = (*Port)(nil)
	_ bitstream.CompressPort = (*Port)(nil)
)
