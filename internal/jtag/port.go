package jtag

import (
	"fmt"

	"repro/internal/bitstream"
	"repro/internal/fabric"
)

// Port drives a Chain as a Boundary-Scan configuration port, counting every
// TCK cycle. It implements bitstream.Port. The paper performed all
// reconfiguration through this interface at a 20 MHz test clock.
type Port struct {
	Chain  *Chain
	TCKHz  float64
	cycles uint64
}

// DefaultTCKHz is the paper's Boundary-Scan test clock frequency.
const DefaultTCKHz = 20e6

// NewPort attaches a Boundary-Scan port to a configuration controller and
// resets the TAP.
func NewPort(ctrl *bitstream.Controller, tckHz float64) *Port {
	p := &Port{Chain: NewChain(ctrl, 0x0050C093 /* Virtex-family-style idcode */), TCKHz: tckHz}
	p.ResetTAP()
	return p
}

func (p *Port) step(tms, tdi bool) bool {
	p.cycles++
	return p.Chain.Step(tms, tdi)
}

// ResetTAP forces Test-Logic-Reset (five TMS-high cycles) and parks in
// Run-Test/Idle.
func (p *Port) ResetTAP() {
	for i := 0; i < 5; i++ {
		p.step(true, false)
	}
	p.step(false, false)
}

// LoadIR shifts an instruction into the IR and returns to Run-Test/Idle.
func (p *Port) LoadIR(code uint8) {
	p.step(true, false)  // Select-DR
	p.step(true, false)  // Select-IR
	p.step(false, false) // Capture-IR
	p.step(false, false) // Shift-IR (first shift happens in this state)
	for i := 0; i < IRLength; i++ {
		last := i == IRLength-1
		p.step(last, code>>i&1 == 1) // exit on last bit
	}
	p.step(true, false)  // Update-IR
	p.step(false, false) // Run-Test/Idle
}

// ShiftDRIn shifts words into the current data register MSB-first and
// returns to Run-Test/Idle.
func (p *Port) ShiftDRIn(words []uint32) {
	p.step(true, false)  // Select-DR
	p.step(false, false) // Capture-DR
	p.step(false, false) // Shift-DR
	total := len(words) * 32
	n := 0
	for _, w := range words {
		for b := 31; b >= 0; b-- {
			n++
			p.step(n == total, w>>b&1 == 1)
		}
	}
	p.step(true, false)  // Update-DR
	p.step(false, false) // Run-Test/Idle
}

// ShiftDROut shifts n words out of the current data register.
func (p *Port) ShiftDROut(nWords int) []uint32 {
	p.step(true, false)  // Select-DR
	p.step(false, false) // Capture-DR
	p.step(false, false) // Shift-DR
	out := make([]uint32, nWords)
	total := nWords * 32
	n := 0
	for i := range out {
		var w uint32
		for b := 0; b < 32; b++ {
			n++
			bit := p.step(n == total, false)
			w <<= 1
			if bit {
				w |= 1
			}
		}
		out[i] = w
	}
	p.step(true, false)  // Update-DR
	p.step(false, false) // Run-Test/Idle
	return out
}

// WriteUpdates implements bitstream.Port: the frame updates are packetised
// into a partial bitstream and shifted through CFG_IN.
func (p *Port) WriteUpdates(updates []bitstream.FrameUpdate) error {
	words := bitstream.Partial(p.Chain.ctrl.Device(), updates)
	p.LoadIR(InstrCfgIn)
	p.ShiftDRIn(words)
	if err := p.Chain.Err(); err != nil {
		return err
	}
	return nil
}

// ReadFrame implements bitstream.Port: a readback request goes in through
// CFG_IN and the frame comes back through CFG_OUT.
func (p *Port) ReadFrame(addr fabric.FrameAddr) ([]uint32, error) {
	dev := p.Chain.ctrl.Device()
	req := bitstream.ReadFramesRequest(dev.FrameWords(), bitstream.FAR{Major: addr.Major, Minor: addr.Minor}, 1)
	p.LoadIR(InstrCfgIn)
	p.ShiftDRIn(req)
	p.LoadIR(InstrCfgOut)
	out := p.ShiftDROut(dev.FrameWords())
	if err := p.Chain.Err(); err != nil {
		return nil, err
	}
	if len(out) != dev.FrameWords() {
		return nil, fmt.Errorf("jtag: readback returned %d words", len(out))
	}
	return out, nil
}

// Elapsed implements bitstream.Port.
func (p *Port) Elapsed() float64 { return float64(p.cycles) / p.TCKHz }

// Name implements bitstream.Port.
func (p *Port) Name() string { return "Boundary-Scan" }

// Cycles returns the total TCK cycles consumed.
func (p *Port) Cycles() uint64 { return p.cycles }

var _ bitstream.Port = (*Port)(nil)
