// Package jtag implements the IEEE 1149.1 Test Access Port used by the paper
// to reconfigure the FPGA: a cycle-exact 16-state TAP controller, the Virtex
// configuration instructions (CFG_IN, CFG_OUT, JSTART), and a Boundary-Scan
// configuration Port whose elapsed time is TCK cycles divided by the test
// clock frequency. The paper's headline figure — 22.6 ms average relocation
// time per gated-clock CLB at a 20 MHz test clock — is reproduced by
// counting the cycles this package actually shifts.
package jtag

// State is a TAP controller state.
type State uint8

// The sixteen IEEE 1149.1 TAP states.
const (
	TestLogicReset State = iota
	RunTestIdle
	SelectDRScan
	CaptureDR
	ShiftDR
	Exit1DR
	PauseDR
	Exit2DR
	UpdateDR
	SelectIRScan
	CaptureIR
	ShiftIR
	Exit1IR
	PauseIR
	Exit2IR
	UpdateIR
)

var stateNames = [...]string{
	"Test-Logic-Reset", "Run-Test/Idle", "Select-DR-Scan", "Capture-DR",
	"Shift-DR", "Exit1-DR", "Pause-DR", "Exit2-DR", "Update-DR",
	"Select-IR-Scan", "Capture-IR", "Shift-IR", "Exit1-IR", "Pause-IR",
	"Exit2-IR", "Update-IR",
}

func (s State) String() string { return stateNames[s] }

// next is the IEEE 1149.1 state transition table: next[state][tms].
var next = [16][2]State{
	TestLogicReset: {RunTestIdle, TestLogicReset},
	RunTestIdle:    {RunTestIdle, SelectDRScan},
	SelectDRScan:   {CaptureDR, SelectIRScan},
	CaptureDR:      {ShiftDR, Exit1DR},
	ShiftDR:        {ShiftDR, Exit1DR},
	Exit1DR:        {PauseDR, UpdateDR},
	PauseDR:        {PauseDR, Exit2DR},
	Exit2DR:        {ShiftDR, UpdateDR},
	UpdateDR:       {RunTestIdle, SelectDRScan},
	SelectIRScan:   {CaptureIR, TestLogicReset},
	CaptureIR:      {ShiftIR, Exit1IR},
	ShiftIR:        {ShiftIR, Exit1IR},
	Exit1IR:        {PauseIR, UpdateIR},
	PauseIR:        {PauseIR, Exit2IR},
	Exit2IR:        {ShiftIR, UpdateIR},
	UpdateIR:       {RunTestIdle, SelectDRScan},
}

// Next returns the state after one TCK with the given TMS level.
func (s State) Next(tms bool) State {
	if tms {
		return next[s][1]
	}
	return next[s][0]
}

// IRLength is the Virtex instruction register length in bits.
const IRLength = 5

// Virtex JTAG instruction codes.
const (
	InstrBypass uint8 = 0x1F
	InstrIDCode uint8 = 0x09
	InstrCfgIn  uint8 = 0x05
	InstrCfgOut uint8 = 0x04
	InstrJStart uint8 = 0x0C
)
