package jtag

import (
	"testing"

	"repro/internal/bitstream"
	"repro/internal/fabric"
)

func TestTAPStateTable(t *testing.T) {
	// Spot-check canonical IEEE 1149.1 transitions.
	cases := []struct {
		from State
		tms  bool
		to   State
	}{
		{TestLogicReset, true, TestLogicReset},
		{TestLogicReset, false, RunTestIdle},
		{RunTestIdle, true, SelectDRScan},
		{SelectDRScan, false, CaptureDR},
		{SelectDRScan, true, SelectIRScan},
		{CaptureDR, false, ShiftDR},
		{ShiftDR, false, ShiftDR},
		{ShiftDR, true, Exit1DR},
		{Exit1DR, true, UpdateDR},
		{Exit1DR, false, PauseDR},
		{PauseDR, true, Exit2DR},
		{Exit2DR, false, ShiftDR},
		{UpdateDR, false, RunTestIdle},
		{SelectIRScan, false, CaptureIR},
		{SelectIRScan, true, TestLogicReset},
		{ShiftIR, true, Exit1IR},
		{Exit1IR, true, UpdateIR},
		{UpdateIR, false, RunTestIdle},
	}
	for _, c := range cases {
		if got := c.from.Next(c.tms); got != c.to {
			t.Errorf("%v --tms=%v--> %v, want %v", c.from, c.tms, got, c.to)
		}
	}
}

func TestFiveTMSHighAlwaysResets(t *testing.T) {
	// From any state, five TCKs with TMS high reach Test-Logic-Reset.
	for s := State(0); s < 16; s++ {
		cur := s
		for i := 0; i < 5; i++ {
			cur = cur.Next(true)
		}
		if cur != TestLogicReset {
			t.Errorf("from %v, 5xTMS=1 ends in %v", s, cur)
		}
	}
}

func newPort(t *testing.T) (*fabric.Device, *Port) {
	t.Helper()
	dev := fabric.NewDevice(fabric.TestDevice)
	ctrl := bitstream.NewController(dev)
	return dev, NewPort(ctrl, DefaultTCKHz)
}

func TestLoadIRSetsInstruction(t *testing.T) {
	_, p := newPort(t)
	p.LoadIR(InstrCfgIn)
	if p.Chain.Instr() != InstrCfgIn {
		t.Errorf("instr = %#x, want CFG_IN", p.Chain.Instr())
	}
	if p.Chain.State() != RunTestIdle {
		t.Errorf("state after LoadIR = %v", p.Chain.State())
	}
	p.LoadIR(InstrCfgOut)
	if p.Chain.Instr() != InstrCfgOut {
		t.Errorf("instr = %#x, want CFG_OUT", p.Chain.Instr())
	}
}

func TestIDCodeReadback(t *testing.T) {
	_, p := newPort(t)
	p.LoadIR(InstrIDCode)
	// IDCODE shifts LSB-first out of a 32-bit register; ShiftDROut
	// assembles MSB-first, so the word comes back bit-reversed.
	out := p.ShiftDROut(1)
	var rev uint32
	for b := 0; b < 32; b++ {
		if out[0]>>b&1 == 1 {
			rev |= 1 << (31 - b)
		}
	}
	if rev != 0x0050C093 {
		t.Errorf("idcode = %#x, want 0x0050C093", rev)
	}
}

func TestConfigWriteThroughBoundaryScan(t *testing.T) {
	dev, p := newPort(t)
	fw := dev.FrameWords()
	data := make([]uint32, fw)
	data[5] = 0xCAFEF00D
	addr := fabric.FrameAddr{Major: dev.MajorOfArrayCol(4), Minor: 11}
	if err := p.WriteUpdates([]bitstream.FrameUpdate{{Addr: addr, Data: data}}); err != nil {
		t.Fatal(err)
	}
	got, err := dev.ReadFrame(addr.Major, addr.Minor)
	if err != nil {
		t.Fatal(err)
	}
	if got[5] != 0xCAFEF00D {
		t.Errorf("frame word = %#x", got[5])
	}
}

func TestReadbackThroughBoundaryScan(t *testing.T) {
	dev, p := newPort(t)
	c := fabric.Coord{Row: 3, Col: 2}
	dev.WriteCell(fabric.CellRef{Coord: c, Cell: 1}, fabric.CellConfig{LUT: 0x5A5A, FF: true})
	addr := fabric.FrameAddr{Major: dev.MajorOfArrayCol(2), Minor: 0}
	got, err := p.ReadFrame(addr)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := dev.ReadFrame(addr.Major, addr.Minor)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("readback word %d = %#x, want %#x", i, got[i], want[i])
		}
	}
}

func TestCycleAccounting(t *testing.T) {
	dev, p := newPort(t)
	start := p.Cycles()
	fw := dev.FrameWords()
	data := make([]uint32, fw)
	addr := fabric.FrameAddr{Major: 1, Minor: 0}
	if err := p.WriteUpdates([]bitstream.FrameUpdate{{Addr: addr, Data: data}}); err != nil {
		t.Fatal(err)
	}
	used := p.Cycles() - start
	// The partial stream is ~2 frames of data plus packet overhead; every
	// payload bit costs exactly one TCK.
	words := bitstream.Partial(dev, []bitstream.FrameUpdate{{Addr: addr, Data: data}})
	minCycles := uint64(32 * len(words))
	if used < minCycles || used > minCycles+64 {
		t.Errorf("cycles = %d, want within [%d, %d]", used, minCycles, minCycles+64)
	}
	if p.Elapsed() != float64(p.Cycles())/DefaultTCKHz {
		t.Error("Elapsed inconsistent with cycle count")
	}
}

func TestWriteAtTwentyMHzTakesMilliseconds(t *testing.T) {
	// Sanity-anchor for the paper's headline: shifting one full CLB column
	// through Boundary-Scan at 20 MHz costs on the order of milliseconds.
	dev, p := newPort(t)
	fw := dev.FrameWords()
	var ups []bitstream.FrameUpdate
	major := dev.MajorOfArrayCol(0)
	for m := 0; m < fabric.FramesPerCLBColumn; m++ {
		ups = append(ups, bitstream.FrameUpdate{
			Addr: fabric.FrameAddr{Major: major, Minor: m},
			Data: make([]uint32, fw),
		})
	}
	if err := p.WriteUpdates(ups); err != nil {
		t.Fatal(err)
	}
	ms := p.Elapsed() * 1e3
	if ms < 0.1 || ms > 50 {
		t.Errorf("column write = %.3f ms, outside plausible range", ms)
	}
}

func TestChainBypass(t *testing.T) {
	_, p := newPort(t)
	p.LoadIR(InstrBypass)
	// Bypass register delays the stream by one bit: shift 8 bits of
	// pattern, observe it one cycle later.
	p.step(true, false)
	p.step(false, false)
	p.step(false, false) // now in Shift-DR
	pattern := []bool{true, false, true, true, false, false, true, false}
	var got []bool
	for i, b := range pattern {
		got = append(got, p.step(i == len(pattern)-1, b))
	}
	for i := 1; i < len(pattern); i++ {
		if got[i] != pattern[i-1] {
			t.Errorf("bypass bit %d = %v, want %v", i, got[i], pattern[i-1])
		}
	}
}

// TestBatchedColumnWriteType2Stream drives a whole-column batched update —
// large enough that the FDRI burst needs a Type-2 (extended word count)
// header — through the Boundary-Scan port and verifies every frame landed.
// This is the stream shape the batched commit pipeline produces when many
// operations coalesce into one partial bitstream.
func TestBatchedColumnWriteType2Stream(t *testing.T) {
	dev := fabric.NewDevice(fabric.XCV800)
	ctrl := bitstream.NewController(dev)
	p := NewPort(ctrl, DefaultTCKHz)

	col, ok := dev.ColumnByMajor(2)
	if !ok {
		t.Fatal("no major 2")
	}
	fw := dev.FrameWords()
	if total := (col.Frames + 1) * fw; total <= 0x7FF {
		t.Fatalf("column burst is %d words; test needs a Type-2-sized stream", total)
	}
	updates := make([]bitstream.FrameUpdate, col.Frames)
	for m := range updates {
		data := make([]uint32, fw)
		for w := range data {
			data[w] = uint32(m)<<16 | uint32(w)
		}
		updates[m] = bitstream.FrameUpdate{Addr: fabric.FrameAddr{Major: 2, Minor: m}, Data: data}
	}
	if err := p.WriteUpdates(updates); err != nil {
		t.Fatalf("batched column write: %v", err)
	}
	for m := 0; m < col.Frames; m++ {
		got, err := dev.ReadFrame(2, m)
		if err != nil {
			t.Fatal(err)
		}
		for w := range got {
			if want := uint32(m)<<16 | uint32(w); got[w] != want {
				t.Fatalf("frame %d word %d = %#x, want %#x", m, w, got[w], want)
			}
		}
	}
	// Readback through the port survives the big session too.
	back, err := p.ReadFrame(fabric.FrameAddr{Major: 2, Minor: col.Frames - 1})
	if err != nil {
		t.Fatal(err)
	}
	if back[3] != uint32(col.Frames-1)<<16|3 {
		t.Fatalf("port readback word 3 = %#x", back[3])
	}
}

func TestUnalignedCfgInReportsError(t *testing.T) {
	_, p := newPort(t)
	p.LoadIR(InstrCfgIn)
	// Shift 33 bits: not word aligned -> chain error on Update-DR.
	p.step(true, false)
	p.step(false, false)
	p.step(false, false)
	for i := 0; i < 33; i++ {
		p.step(i == 32, false)
	}
	p.step(true, false) // Update-DR
	p.step(false, false)
	if p.Chain.Err() == nil {
		t.Error("unaligned CFG_IN shift not detected")
	}
}
