package jtag

import (
	"fmt"

	"repro/internal/bitstream"
)

// Chain is the device-side JTAG logic of one FPGA: the TAP controller plus
// the configuration data registers that bridge Boundary-Scan shifts into the
// configuration controller.
type Chain struct {
	ctrl *bitstream.Controller

	state   State
	irShift uint8
	irBits  int
	instr   uint8
	idcode  uint32
	bypass  bool
	feedErr error
	// CFG_IN path: bits accumulate MSB-first into words fed to the
	// configuration controller; a log of the words is kept so a following
	// CFG_OUT can serve the readback they requested.
	inWord uint32
	inBits int
	inLog  []uint32
	// CFG_OUT path.
	outData []uint32
	outWord int
	outBit  int
	// DR shift register for IDCODE.
	drShift uint32
}

// NewChain wires a JTAG chain to a configuration controller.
func NewChain(ctrl *bitstream.Controller, idcode uint32) *Chain {
	return &Chain{ctrl: ctrl, idcode: idcode, state: TestLogicReset, instr: InstrIDCode}
}

// State returns the current TAP state.
func (ch *Chain) State() State { return ch.state }

// Instr returns the active instruction.
func (ch *Chain) Instr() uint8 { return ch.instr }

// Err returns the first configuration error encountered while feeding
// CFG_IN data, if any.
func (ch *Chain) Err() error { return ch.feedErr }

// Step advances the TAP by one TCK cycle and returns TDO.
func (ch *Chain) Step(tms, tdi bool) bool {
	tdo := false
	switch ch.state {
	case ShiftIR:
		tdo = ch.irShift&1 == 1
		ch.irShift >>= 1
		if tdi {
			ch.irShift |= 1 << (IRLength - 1)
		}
		ch.irBits++
	case ShiftDR:
		tdo = ch.shiftDR(tdi)
	}
	prev := ch.state
	ch.state = ch.state.Next(tms)
	if prev != ch.state {
		ch.onEnter(prev)
	}
	return tdo
}

func (ch *Chain) onEnter(prev State) {
	switch ch.state {
	case TestLogicReset:
		ch.instr = InstrIDCode
	case CaptureIR:
		ch.irShift = 0b00001 // IEEE 1149.1 mandates xxx01 in Capture-IR
		ch.irBits = 0
	case UpdateIR:
		ch.instr = ch.irShift & (1<<IRLength - 1)
		switch ch.instr {
		case InstrCfgIn:
			// Each CFG_IN load opens a fresh configuration session: drop
			// the previous session's log. Words of an earlier stream can
			// never be part of a later readback request, and resetting
			// here (an IR load cannot happen mid-payload) bounds the log
			// to one stream without sniffing payload words for sync
			// patterns — frame data may legitimately contain the sync
			// word's bit pattern.
			ch.inWord, ch.inBits = 0, 0
			ch.inLog = ch.inLog[:0]
		case InstrJStart:
			// Startup sequence: no behavioural effect in the model.
		}
	case CaptureDR:
		switch ch.instr {
		case InstrIDCode:
			ch.drShift = ch.idcode
		case InstrCfgOut:
			ch.prepareReadback()
		}
	case UpdateDR:
		if ch.instr == InstrCfgIn && ch.inBits != 0 {
			ch.feedErr = fmt.Errorf("jtag: CFG_IN shift not word-aligned (%d residual bits)", ch.inBits)
		}
	}
	_ = prev
}

func (ch *Chain) shiftDR(tdi bool) bool {
	switch ch.instr {
	case InstrBypass:
		t := ch.bypass
		ch.bypass = tdi
		return t
	case InstrIDCode:
		t := ch.drShift&1 == 1
		ch.drShift >>= 1
		if tdi {
			ch.drShift |= 1 << 31
		}
		return t
	case InstrCfgIn:
		ch.inWord <<= 1
		if tdi {
			ch.inWord |= 1
		}
		ch.inBits++
		if ch.inBits == 32 {
			ch.inLog = append(ch.inLog, ch.inWord)
			if err := ch.ctrl.Feed(ch.inWord); err != nil && ch.feedErr == nil {
				ch.feedErr = err
			}
			ch.inWord, ch.inBits = 0, 0
		}
		return false
	case InstrCfgOut:
		if ch.outWord >= len(ch.outData) {
			return false
		}
		w := ch.outData[ch.outWord]
		tdo := w>>(31-ch.outBit)&1 == 1
		ch.outBit++
		if ch.outBit == 32 {
			ch.outBit = 0
			ch.outWord++
		}
		return tdo
	}
	return false
}

// prepareReadback serves the FDRO read described by the CFG_IN packets
// shifted since the last readback.
func (ch *Chain) prepareReadback() {
	data, err := ch.ctrl.ExecRead(ch.inLog)
	if err != nil && ch.feedErr == nil {
		ch.feedErr = err
	}
	ch.outData = data
	ch.outWord, ch.outBit = 0, 0
	ch.inLog = nil
}
