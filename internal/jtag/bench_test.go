package jtag

import (
	"testing"

	"repro/internal/bitstream"
	"repro/internal/fabric"
)

func BenchmarkFrameWriteOverBoundaryScan(b *testing.B) {
	dev := fabric.NewDevice(fabric.XCV200)
	p := NewPort(bitstream.NewController(dev), DefaultTCKHz)
	data := make([]uint32, dev.FrameWords())
	addr := fabric.FrameAddr{Major: 3, Minor: 0}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data[0] = uint32(i)
		if err := p.WriteUpdates([]bitstream.FrameUpdate{{Addr: addr, Data: data}}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(p.Cycles())/float64(b.N), "TCK-cycles/frame")
}

func BenchmarkReadbackOverBoundaryScan(b *testing.B) {
	dev := fabric.NewDevice(fabric.XCV200)
	p := NewPort(bitstream.NewController(dev), DefaultTCKHz)
	addr := fabric.FrameAddr{Major: 3, Minor: 0}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.ReadFrame(addr); err != nil {
			b.Fatal(err)
		}
	}
}
