package relocate_test

import (
	"fmt"
	"testing"

	"repro/internal/fabric"
	"repro/internal/itc99"
	"repro/internal/netlist"
	"repro/internal/place"
	"repro/internal/relocate"
	"repro/internal/sim"
)

// TestRelocateAsyncLatch reproduces the paper's third implementation case:
// "this method is also effective when dealing with asynchronous circuits,
// where transparent data latches are used instead of FFs ... The same
// auxiliary relocation circuit is used and the same relocation sequence is
// followed." The latch holds its state while its gate is LOW during the
// whole relocation.
func TestRelocateAsyncLatch(t *testing.T) {
	dev := fabric.NewDevice(fabric.XCV50)
	nl := netlist.New("asynclatch")
	d := nl.Input("d")
	g := nl.Input("g")
	l := nl.Latch("l", d, g, false)
	nl.Output("q", l)
	des, err := place.Place(dev, nl, place.Options{Region: fabric.Rect{Row: 3, Col: 3, H: 1, W: 1}})
	if err != nil {
		t.Fatal(err)
	}
	ls, err := sim.NewLockStep(des)
	if err != nil {
		t.Fatal(err)
	}
	// Latch a 1, close the gate.
	if err := ls.Settle([]bool{true, true}); err != nil {
		t.Fatal(err)
	}
	if err := ls.Settle([]bool{true, false}); err != nil {
		t.Fatal(err)
	}
	toggle := false
	phase := func(n int) error {
		// D keeps changing, gate stays closed: the latch must hold.
		for i := 0; i < n; i++ {
			toggle = !toggle
			if err := ls.Settle([]bool{toggle, false}); err != nil {
				return err
			}
		}
		return nil
	}
	eng, err := relocate.NewEngine(dev, directPort(dev))
	if err != nil {
		t.Fatal(err)
	}
	eng.Clock = phase
	last := ls.OutputSnapshot()
	eng.Tool.VerifyHook = func() error {
		if err := ls.VerifyQuiescent(last); err != nil {
			return err
		}
		last = ls.OutputSnapshot()
		return nil
	}
	lid, _ := nl.ByName("l")
	from := des.CellOf[lid]
	to := fabric.CellRef{Coord: fabric.Coord{Row: 11, Col: 11}, Cell: from.Cell}
	mv, err := eng.RelocateCell(from, to)
	if err != nil {
		t.Fatalf("latch relocation: %v", err)
	}
	if !mv.UsedAux {
		t.Error("latch relocation must use the auxiliary circuit")
	}
	des.Rebind(from, to)
	if err := phase(6); err != nil {
		t.Fatal(err)
	}
	if err := ls.CheckState(); err != nil {
		t.Fatalf("latch state after relocation: %v", err)
	}
	// Reopen the gate: the latch must follow D again at the new location.
	if err := ls.Settle([]bool{false, true}); err != nil {
		t.Fatal(err)
	}
	if ls.Fab.CellQ(to) != sim.Low {
		t.Error("relocated latch not transparent at new location")
	}
}

// TestRelocateAsyncBenchmark relocates a latch cell of a generated two-phase
// asynchronous circuit while the phases keep pulsing.
func TestRelocateAsyncBenchmark(t *testing.T) {
	dev := fabric.NewDevice(fabric.XCV50)
	nl := itc99.Generate(itc99.GenConfig{
		Name: "async_rel", Inputs: 3, Outputs: 3, FFs: 6, LUTs: 16,
		Seed: 21, Style: itc99.Async,
	})
	region, err := place.AutoRegion(dev, nl, 2, 2, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	des, err := place.Place(dev, nl, place.Options{Region: region})
	if err != nil {
		t.Fatal(err)
	}
	ls, err := sim.NewLockStep(des)
	if err != nil {
		t.Fatal(err)
	}
	ins := nl.Inputs()
	idx1, idx2 := -1, -1
	for i, id := range ins {
		switch nl.Nodes[id].Name {
		case "phi1":
			idx1 = i
		case "phi2":
			idx2 = i
		}
	}
	rng := uint64(31)
	cyc := 0
	phase := func(n int) error {
		for i := 0; i < n; i++ {
			cyc++
			in := make([]bool, len(ins))
			for k := range in {
				rng = rng*6364136223846793005 + 1442695040888963407
				in[k] = rng>>39&1 == 1
			}
			in[idx1], in[idx2] = false, false
			if cyc%2 == 0 {
				in[idx1] = true
			} else {
				in[idx2] = true
			}
			if err := ls.Settle(in); err != nil {
				return err
			}
		}
		return nil
	}
	if err := phase(10); err != nil {
		t.Fatal(err)
	}
	eng, err := relocate.NewEngine(dev, directPort(dev))
	if err != nil {
		t.Fatal(err)
	}
	eng.Clock = phase
	var from fabric.CellRef
	found := false
	for id, nd := range nl.Nodes {
		if nd.Kind == netlist.KindLatch {
			if ref, ok := des.CellOf[netlist.ID(id)]; ok {
				from, found = ref, true
				break
			}
		}
	}
	if !found {
		t.Fatal("no latch cell")
	}
	to := fabric.CellRef{Coord: fabric.Coord{Row: 12, Col: 12}, Cell: from.Cell}
	mv, err := eng.RelocateCell(from, to)
	if err != nil {
		t.Fatalf("async benchmark latch relocation: %v", err)
	}
	if !mv.UsedAux {
		t.Error("expected aux circuit for latch")
	}
	des.Rebind(from, to)
	if err := phase(12); err != nil {
		t.Fatalf("post-relocation: %v", err)
	}
}

// TestRelocationSucceedsWithRAMElsewhere: a distributed RAM far from every
// affected column must NOT block the relocation (the rule is per-column,
// not per-device).
func TestRelocationSucceedsWithRAMElsewhere(t *testing.T) {
	dev := fabric.NewDevice(fabric.XCV50)
	d := placeDesign(t, dev, "b01")
	// RAM in the last column, far from region (cols 2..) and target (10).
	dev.WriteCell(fabric.CellRef{Coord: fabric.Coord{Row: 15, Col: 23}, Cell: 0},
		fabric.CellConfig{Used: true, RAM: true, CEUsed: true})
	h := newHarness(t, dev, d, directPort(dev))
	from, _, ok := findCellWith(d, func(nd netlist.Node) bool { return nd.Kind == netlist.KindFF })
	if !ok {
		t.Fatal("no FF")
	}
	to := freeCellAt(dev, fabric.Coord{Row: 10, Col: 10}, from.Cell)
	if _, err := h.eng.RelocateCell(from, to); err != nil {
		t.Fatalf("relocation blocked by unrelated RAM: %v", err)
	}
	d.Rebind(from, to)
	h.run(30)
}

// TestRepeatedPingPongRelocation stress-tests resource accounting: the same
// cell moved back and forth many times must not leak wires or frames grow
// unboundedly.
func TestRepeatedPingPongRelocation(t *testing.T) {
	dev := fabric.NewDevice(fabric.XCV50)
	d := placeDesign(t, dev, "b02")
	h := newHarness(t, dev, d, directPort(dev))
	from, _, ok := findCellWith(d, func(nd netlist.Node) bool { return nd.Kind == netlist.KindFF })
	if !ok {
		t.Fatal("no FF")
	}
	spare := freeCellAt(dev, fabric.Coord{Row: 12, Col: 12}, from.Cell)
	locs := [2]fabric.CellRef{from, spare}
	var frames []int
	for i := 0; i < 6; i++ {
		mv, err := h.eng.RelocateCell(locs[i%2], locs[(i+1)%2])
		if err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
		d.Rebind(locs[i%2], locs[(i+1)%2])
		frames = append(frames, mv.Frames)
		h.last = h.ls.OutputSnapshot()
		h.run(10)
	}
	// Frame counts must stabilise (no monotone growth = no leaked routing
	// forcing ever-longer paths).
	if frames[5] > frames[1]*2 {
		t.Errorf("frame cost growing across rounds: %v", frames)
	}
}

// TestRelocateHandcraftedB01AgainstModel verifies a relocation against a
// completely independent oracle: the hand-written Go model of the b01
// comparator FSM (not the golden netlist simulator the lock-step harness
// uses). Outputs must match the model before, during and after the move.
func TestRelocateHandcraftedB01AgainstModel(t *testing.T) {
	dev := fabric.NewDevice(fabric.XCV50)
	nl := itc99.B01FSM()
	des, err := place.Place(dev, nl, place.Options{Region: fabric.Rect{Row: 3, Col: 3, H: 2, W: 2}})
	if err != nil {
		t.Fatal(err)
	}
	ls, err := sim.NewLockStep(des)
	if err != nil {
		t.Fatal(err)
	}
	model := itc99.NewB01Model()
	rng := uint64(404)
	cycle := 0
	step := func(n int) error {
		for i := 0; i < n; i++ {
			cycle++
			rng = rng*6364136223846793005 + 1442695040888963407
			l1 := rng>>40&1 == 1
			l2 := rng>>41&1 == 1
			if err := ls.Step([]bool{l1, l2}); err != nil {
				return err
			}
			outs, flag, same := model.Step(l1, l2)
			got := ls.OutputSnapshot()
			want := []bool{outs, flag, same}
			for k := range want {
				if !got[k].Definite() || got[k].Bool() != want[k] {
					return fmt.Errorf("cycle %d output %d: fabric=%v model=%v", cycle, k, got[k], want[k])
				}
			}
		}
		return nil
	}
	if err := step(20); err != nil {
		t.Fatal(err)
	}
	eng, err := relocate.NewEngine(dev, directPort(dev))
	if err != nil {
		t.Fatal(err)
	}
	eng.Clock = step
	// Move every occupied CLB of the little FSM, one after another.
	row := 9
	seen := map[fabric.Coord]bool{}
	for _, ref := range des.OccupiedCells() {
		if seen[ref.Coord] {
			continue
		}
		seen[ref.Coord] = true
		dst := fabric.Coord{Row: row, Col: 10}
		row += 2
		if _, err := eng.RelocateCLB(ref.Coord, dst); err != nil {
			t.Fatalf("relocating %v: %v", ref.Coord, err)
		}
		for cell := 0; cell < fabric.CellsPerCLB; cell++ {
			des.Rebind(fabric.CellRef{Coord: ref.Coord, Cell: cell}, fabric.CellRef{Coord: dst, Cell: cell})
		}
	}
	if err := step(40); err != nil {
		t.Fatalf("model divergence after full-design relocation: %v", err)
	}
}
