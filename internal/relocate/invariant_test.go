package relocate_test

import (
	"testing"

	"repro/internal/fabric"
	"repro/internal/netlist"
)

// scanDangling returns wires that are driven (enabled PIP mask) but feed no
// enabled consumer and no pad — resource leaks that starve future
// relocations of routing capacity.
func scanDangling(dev *fabric.Device) []string {
	var out []string
	for r := 0; r < dev.Rows; r++ {
		for c := 0; c < dev.Cols; c++ {
			co := fabric.Coord{Row: r, Col: c}
			for l := 0; l < fabric.NodeSlots; l++ {
				kind, _, _ := fabric.DecodeLocal(l)
				if kind != fabric.KindSingle && kind != fabric.KindHex {
					continue
				}
				if !fabric.IsLocalSink(l) || dev.PIPMask(co, l) == 0 {
					continue
				}
				n := dev.NodeIDAt(co, l)
				feeds := false
				for _, e := range dev.FanoutOf(n) {
					if dev.PIPMask(e.SinkTile, e.SinkLocal)>>e.Bit&1 == 1 {
						feeds = true
						break
					}
				}
				if !feeds {
					for k := 0; k < dev.NumPads() && !feeds; k++ {
						for _, src := range dev.PadEnabledSources(dev.PadByIndex(k)) {
							if src == n {
								feeds = true
							}
						}
					}
				}
				if !feeds {
					out = append(out, co.String())
				}
			}
		}
	}
	return out
}

// countPIPs counts every enabled PIP bit on the device.
func countPIPs(dev *fabric.Device) int {
	n := 0
	for r := 0; r < dev.Rows; r++ {
		for c := 0; c < dev.Cols; c++ {
			co := fabric.Coord{Row: r, Col: c}
			for l := 0; l < fabric.NodeSlots; l++ {
				if !fabric.IsLocalSink(l) {
					continue
				}
				m := dev.PIPMask(co, l)
				for ; m != 0; m &= m - 1 {
					n++
				}
			}
		}
	}
	return n
}

// TestNoDanglingWiresAfterRelocation: after any completed relocation the
// fabric holds no driven-but-unconsumed wires (the resource-leak regression
// that once starved ping-pong round 5 of routing).
func TestNoDanglingWiresAfterRelocation(t *testing.T) {
	dev := fabric.NewDevice(fabric.XCV50)
	d := placeDesign(t, dev, "b03")
	h := newHarness(t, dev, d, directPort(dev))
	if got := scanDangling(dev); len(got) != 0 {
		t.Fatalf("dangling wires before any relocation: %v", got)
	}
	moved := 0
	row := 9
	for id, nd := range d.NL.Nodes {
		if nd.Kind != netlist.KindFF {
			continue
		}
		from, ok := d.CellOf[netlist.ID(id)]
		if !ok {
			continue
		}
		to := freeCellAt(dev, fabric.Coord{Row: row, Col: 11 + moved%2}, from.Cell)
		if _, err := h.eng.RelocateCell(from, to); err != nil {
			t.Fatalf("move %d: %v", moved, err)
		}
		d.Rebind(from, to)
		h.run(10)
		if got := scanDangling(dev); len(got) != 0 {
			t.Fatalf("dangling wires after move %d (%v->%v): %v", moved, from, to, got)
		}
		moved++
		row += 2
		if moved == 3 {
			break
		}
	}
	if moved == 0 {
		t.Fatal("nothing moved")
	}
}

// TestPingPongPIPCountIsPeriodic: relocating the same cell back and forth
// must cycle through a bounded, periodic PIP population — no monotone
// resource growth.
func TestPingPongPIPCountIsPeriodic(t *testing.T) {
	dev := fabric.NewDevice(fabric.XCV50)
	d := placeDesign(t, dev, "b02")
	h := newHarness(t, dev, d, directPort(dev))
	from, _, ok := findCellWith(d, func(nd netlist.Node) bool { return nd.Kind == netlist.KindFF })
	if !ok {
		t.Fatal("no FF")
	}
	spare := freeCellAt(dev, fabric.Coord{Row: 12, Col: 12}, from.Cell)
	locs := [2]fabric.CellRef{from, spare}
	counts := make([]int, 8)
	for i := 0; i < 8; i++ {
		if _, err := h.eng.RelocateCell(locs[i%2], locs[(i+1)%2]); err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
		d.Rebind(locs[i%2], locs[(i+1)%2])
		h.run(5)
		counts[i] = countPIPs(dev)
	}
	// After the first round the sequence must be 2-periodic.
	for i := 3; i < 8; i++ {
		if counts[i] != counts[i-2] {
			t.Fatalf("PIP population not periodic: %v", counts)
		}
	}
	if got := scanDangling(dev); len(got) != 0 {
		t.Fatalf("dangling wires after ping-pong: %v", got)
	}
}
