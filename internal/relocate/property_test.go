package relocate_test

import (
	"testing"

	"repro/internal/fabric"
	"repro/internal/itc99"
	"repro/internal/netlist"
	"repro/internal/place"
	"repro/internal/relocate"
)

// TestRandomisedRelocationScenarios is a property test over the whole
// relocation engine: random small circuits (all three design styles), random
// sequences of cell moves to random free destinations, with full lock-step
// verification and the no-dangling-wire invariant after every move.
func TestRandomisedRelocationScenarios(t *testing.T) {
	if testing.Short() {
		t.Skip("randomised scenario sweep")
	}
	scenarios := []struct {
		seed  uint64
		style itc99.Style
		ffs   int
		luts  int
	}{
		{101, itc99.FreeRunning, 5, 12},
		{102, itc99.GatedClock, 6, 14},
		{103, itc99.FreeRunning, 8, 18},
		{104, itc99.GatedClock, 4, 10},
		{105, itc99.FreeRunning, 3, 8},
	}
	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.style.String(), func(t *testing.T) {
			dev := fabric.NewDevice(fabric.XCV50)
			nl := itc99.Generate(itc99.GenConfig{
				Name: "rand", Inputs: 3, Outputs: 3,
				FFs: sc.ffs, LUTs: sc.luts,
				Seed: sc.seed, Style: sc.style, CEFraction: 0.6,
			})
			region, err := place.AutoRegion(dev, nl, 2, 2, 0.3)
			if err != nil {
				t.Fatal(err)
			}
			d, err := place.Place(dev, nl, place.Options{Region: region})
			if err != nil {
				t.Fatal(err)
			}
			h := newHarness(t, dev, d, directPort(dev))
			rng := sc.seed * 0x9E3779B97F4A7C15
			next := func(n int) int {
				rng = rng*6364136223846793005 + 1442695040888963407
				return int(rng>>33) % n
			}
			// Perform 4 random moves of random occupied cells.
			for move := 0; move < 4; move++ {
				cells := d.OccupiedCells()
				from := cells[next(len(cells))]
				// Random free destination outside the region.
				var to fabric.CellRef
				for tries := 0; ; tries++ {
					if tries > 50 {
						t.Fatal("no free destination found")
					}
					to = fabric.CellRef{
						Coord: fabric.Coord{Row: 8 + next(7), Col: 8 + next(14)},
						Cell:  from.Cell,
					}
					if !dev.ReadCell(to).InUse() {
						break
					}
				}
				mv, err := h.eng.RelocateCell(from, to)
				if err != nil {
					// Routing exhaustion is a legal outcome for a random
					// destination; anything else is a bug.
					if isRoutingError(err) {
						continue
					}
					t.Fatalf("move %d (%v->%v): %v", move, from, to, err)
				}
				if dev.ReadCell(from).InUse() {
					t.Fatalf("move %d: original still configured", move)
				}
				if mv.Frames == 0 {
					t.Fatalf("move %d: no frames written", move)
				}
				d.Rebind(from, to)
				h.run(12)
				if leaks := scanDangling(dev); len(leaks) != 0 {
					t.Fatalf("move %d leaked wires: %v", move, leaks)
				}
			}
			h.run(30)
		})
	}
}

func isRoutingError(err error) bool {
	for e := err; e != nil; {
		type unwrapper interface{ Unwrap() error }
		if u, ok := e.(unwrapper); ok {
			e = u.Unwrap()
			continue
		}
		break
	}
	// String check is fine here: route errors are wrapped fmt errors.
	return err != nil && (contains(err.Error(), "no path to sink") ||
		contains(err.Error(), "congestion unresolved") ||
		contains(err.Error(), "no free CLB"))
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestRelocationAtomicityOnPlanFailure: a failed plan (busy destination,
// RAM conflict, routing exhaustion) must leave the configuration untouched.
func TestRelocationAtomicityOnPlanFailure(t *testing.T) {
	dev := fabric.NewDevice(fabric.XCV50)
	d := placeDesign(t, dev, "b02")
	eng, err := relocate.NewEngine(dev, directPort(dev))
	if err != nil {
		t.Fatal(err)
	}
	before := countPIPs(dev)
	gen := dev.Generation()
	var from fabric.CellRef
	for _, ref := range d.OccupiedCells() {
		from = ref
		break
	}
	// Busy destination: plan fails before any frame write.
	if _, err := eng.RelocateCell(from, from); err == nil {
		t.Fatal("relocation onto itself accepted")
	}
	if dev.Generation() != gen {
		t.Error("failed plan wrote configuration")
	}
	if countPIPs(dev) != before {
		t.Error("failed plan changed PIP population")
	}
	_ = netlist.None
}
