package relocate_test

import (
	"fmt"
	"testing"

	"repro/internal/bitstream"
	"repro/internal/fabric"
	"repro/internal/itc99"
	"repro/internal/netlist"
	"repro/internal/place"
	"repro/internal/relocate"
)

// TestRandomisedRelocationScenarios is a property test over the whole
// relocation engine: random small circuits (all three design styles), random
// sequences of cell moves to random free destinations, with full lock-step
// verification and the no-dangling-wire invariant after every move.
func TestRandomisedRelocationScenarios(t *testing.T) {
	if testing.Short() {
		t.Skip("randomised scenario sweep")
	}
	scenarios := []struct {
		seed  uint64
		style itc99.Style
		ffs   int
		luts  int
	}{
		{101, itc99.FreeRunning, 5, 12},
		{102, itc99.GatedClock, 6, 14},
		{103, itc99.FreeRunning, 8, 18},
		{104, itc99.GatedClock, 4, 10},
		{105, itc99.FreeRunning, 3, 8},
	}
	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.style.String(), func(t *testing.T) {
			dev := fabric.NewDevice(fabric.XCV50)
			nl := itc99.Generate(itc99.GenConfig{
				Name: "rand", Inputs: 3, Outputs: 3,
				FFs: sc.ffs, LUTs: sc.luts,
				Seed: sc.seed, Style: sc.style, CEFraction: 0.6,
			})
			region, err := place.AutoRegion(dev, nl, 2, 2, 0.3)
			if err != nil {
				t.Fatal(err)
			}
			d, err := place.Place(dev, nl, place.Options{Region: region})
			if err != nil {
				t.Fatal(err)
			}
			h := newHarness(t, dev, d, directPort(dev))
			rng := sc.seed * 0x9E3779B97F4A7C15
			next := func(n int) int {
				rng = rng*6364136223846793005 + 1442695040888963407
				return int(rng>>33) % n
			}
			// Perform 4 random moves of random occupied cells.
			for move := 0; move < 4; move++ {
				cells := d.OccupiedCells()
				from := cells[next(len(cells))]
				// Random free destination outside the region.
				var to fabric.CellRef
				for tries := 0; ; tries++ {
					if tries > 50 {
						t.Fatal("no free destination found")
					}
					to = fabric.CellRef{
						Coord: fabric.Coord{Row: 8 + next(7), Col: 8 + next(14)},
						Cell:  from.Cell,
					}
					if !dev.ReadCell(to).InUse() {
						break
					}
				}
				mv, err := h.eng.RelocateCell(from, to)
				if err != nil {
					// Routing exhaustion is a legal outcome for a random
					// destination; anything else is a bug.
					if isRoutingError(err) {
						continue
					}
					t.Fatalf("move %d (%v->%v): %v", move, from, to, err)
				}
				if dev.ReadCell(from).InUse() {
					t.Fatalf("move %d: original still configured", move)
				}
				if mv.Frames == 0 {
					t.Fatalf("move %d: no frames written", move)
				}
				d.Rebind(from, to)
				h.run(12)
				if leaks := scanDangling(dev); len(leaks) != 0 {
					t.Fatalf("move %d leaked wires: %v", move, leaks)
				}
			}
			h.run(30)
		})
	}
}

func isRoutingError(err error) bool {
	for e := err; e != nil; {
		type unwrapper interface{ Unwrap() error }
		if u, ok := e.(unwrapper); ok {
			e = u.Unwrap()
			continue
		}
		break
	}
	// String check is fine here: route errors are wrapped fmt errors.
	return err != nil && (contains(err.Error(), "no path to sink") ||
		contains(err.Error(), "congestion unresolved") ||
		contains(err.Error(), "no free CLB"))
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// flakyPort wraps a Port and injects a mid-stream failure: once its frame
// budget is exhausted, WriteUpdates delivers a prefix of the requested
// frames and then errors — the partial-delivery case a real configuration
// port can produce.
type flakyPort struct {
	inner  bitstream.Port
	budget int // frames still deliverable; < 0 = unlimited
}

func (f *flakyPort) WriteUpdates(updates []bitstream.FrameUpdate) error {
	if f.budget < 0 {
		return f.inner.WriteUpdates(updates)
	}
	if len(updates) <= f.budget {
		f.budget -= len(updates)
		return f.inner.WriteUpdates(updates)
	}
	k := f.budget
	f.budget = 0
	if k > 0 {
		if err := f.inner.WriteUpdates(updates[:k]); err != nil {
			return err
		}
	}
	return fmt.Errorf("flaky port: injected failure after %d frames", k)
}

func (f *flakyPort) ReadFrame(addr fabric.FrameAddr) ([]uint32, error) {
	return f.inner.ReadFrame(addr)
}
func (f *flakyPort) Elapsed() float64 { return f.inner.Elapsed() }
func (f *flakyPort) Name() string     { return f.inner.Name() }

// TestPartialCheckpointBitIdentical is the checkpoint-correctness property:
// after a relocation aborted by a mid-stream write failure (plus a
// designer-path scribble the tool only sees at the next sync), restoring the
// frame-granular copy-on-write checkpoint must leave every configuration
// frame bit-identical to the full-shadow clone taken at the same instant —
// which is exactly what the old full-restore path streamed back.
func TestPartialCheckpointBitIdentical(t *testing.T) {
	styles := []itc99.Style{itc99.FreeRunning, itc99.GatedClock}
	budgets := []int{0, 1, 3, 7, 15}
	for _, style := range styles {
		for _, budget := range budgets {
			dev := fabric.NewDevice(fabric.XCV50)
			nl := itc99.Generate(itc99.GenConfig{
				Name: "ckpt", Inputs: 3, Outputs: 2, FFs: 5, LUTs: 10,
				Seed: 42 + uint64(budget), Style: style, CEFraction: 0.7,
			})
			region, err := place.AutoRegion(dev, nl, 2, 2, 0.3)
			if err != nil {
				t.Fatal(err)
			}
			d, err := place.Place(dev, nl, place.Options{Region: region})
			if err != nil {
				t.Fatal(err)
			}
			ctrl := bitstream.NewController(dev)
			port := &flakyPort{inner: bitstream.NewParallelPort(ctrl, 50e6), budget: -1}
			eng, err := relocate.NewEngine(dev, port)
			if err != nil {
				t.Fatal(err)
			}
			eng.MaxCyclesPerWait = 0

			// Checkpoint both ways at the same instant: the full shadow
			// clone is the reference, the snapshot is the system under
			// test.
			full := eng.Tool.Shadow().Clone()
			snap, err := eng.Tool.BeginSnapshot()
			if err != nil {
				t.Fatal(err)
			}

			// A designer-path write the tool has not synced yet: partial
			// restore must roll it back too.
			scribble := fabric.Coord{Row: 14, Col: 20}
			dev.SetPIPMask(scribble, 0, 1)

			var from fabric.CellRef
			found := false
			for id, nd := range nl.Nodes {
				if nd.Kind != netlist.KindFF {
					continue
				}
				if ref, ok := d.CellOf[netlist.ID(id)]; ok {
					from, found = ref, true
					break
				}
			}
			if !found {
				t.Fatal("no FF cell placed")
			}
			to := fabric.CellRef{Coord: fabric.Coord{Row: 12, Col: 18}, Cell: from.Cell}
			port.budget = budget
			_, err = eng.RelocateCell(from, to)
			if err == nil {
				t.Fatalf("style=%v budget=%d: relocation survived the flaky port", style, budget)
			}

			// Frame-granular restore: replay only the dirty pre-images.
			port.budget = -1
			words, err := eng.Tool.RecoveryWords(snap)
			if err != nil {
				t.Fatal(err)
			}
			if len(words) > 0 {
				if err := ctrl.Feed(words...); err != nil {
					t.Fatalf("recovery stream rejected: %v", err)
				}
			}
			eng.Tool.CompleteRestore(snap)
			snap.Release()

			// Bit-identity against the full-shadow checkpoint, every frame
			// of the device.
			for _, col := range dev.Columns() {
				for m := 0; m < col.Frames; m++ {
					addr := fabric.FrameAddr{Major: col.Major, Minor: m}
					got, err := dev.ReadFrame(addr.Major, addr.Minor)
					if err != nil {
						t.Fatal(err)
					}
					want, ok := full.Frame(addr)
					if !ok {
						t.Fatalf("full shadow misses frame %v", addr)
					}
					for w := range got {
						if got[w] != want[w] {
							t.Fatalf("style=%v budget=%d: frame %v word %d: got %#x want %#x",
								style, budget, addr, w, got[w], want[w])
						}
					}
					// The tool's live shadow must agree as well.
					sh, ok := eng.Tool.Shadow().Frame(addr)
					if !ok {
						t.Fatalf("live shadow misses frame %v", addr)
					}
					for w := range got {
						if sh[w] != got[w] {
							t.Fatalf("shadow diverges at %v word %d", addr, w)
						}
					}
				}
			}

			// The restored system keeps working: the same move succeeds —
			// and the engine's reported frame set is exactly the dirty set
			// a checkpoint must cover (the two mechanisms agree).
			check, err := eng.Tool.BeginSnapshot()
			if err != nil {
				t.Fatal(err)
			}
			mv, err := eng.RelocateCell(from, to)
			if err != nil {
				t.Fatalf("style=%v budget=%d: post-restore relocation: %v", style, budget, err)
			}
			reported := map[fabric.FrameAddr]bool{}
			for _, addr := range mv.TouchedFrames {
				reported[addr] = true
			}
			dirty := check.Frames()
			if len(dirty) == 0 || len(dirty) != len(reported) {
				t.Fatalf("snapshot dirty set %d frames, engine reported %d", len(dirty), len(reported))
			}
			for _, addr := range dirty {
				if !reported[addr] {
					t.Fatalf("frame %v dirtied but not in CellMove.TouchedFrames", addr)
				}
			}
			check.Release()
		}
	}
}

// TestBatchFlushReconcilesDesignerWrites covers the batched-commit hazard:
// designer-path writes landing between two tool writes of one batch (a
// Load placing directly onto the device mid-plan) must (a) survive the
// flush even when they share a frame with a pending tool write — one frame
// carries bits of every row of its column — and (b) stay visible to the
// rollback machinery, so restoring the checkpoint reverts them.
func TestBatchFlushReconcilesDesignerWrites(t *testing.T) {
	dev := fabric.NewDevice(fabric.TestDevice)
	ctrl := bitstream.NewController(dev)
	eng, err := relocate.NewEngine(dev, bitstream.NewParallelPort(ctrl, 50e6))
	if err != nil {
		t.Fatal(err)
	}
	ft := eng.Tool
	snap, err := ft.BeginSnapshot()
	if err != nil {
		t.Fatal(err)
	}

	// Tool write through a batch: cell 0 of R0C2 (stays pending).
	toolRef := fabric.CellRef{Coord: fabric.Coord{Row: 0, Col: 2}, Cell: 0}
	toolCfg := fabric.CellConfig{Used: true, LUT: fabric.LUTConst1}
	ft.BeginBatch()
	if err := ft.WriteCell(toolRef, toolCfg); err != nil {
		t.Fatal(err)
	}
	// Designer write into the SAME column, different row: shares frames
	// with the pending tool write.
	sameColRef := fabric.CellRef{Coord: fabric.Coord{Row: 3, Col: 2}, Cell: 1}
	dev.WriteCell(sameColRef, fabric.CellConfig{Used: true, LUT: fabric.LUTConst0, FF: true})
	// And one in an unrelated column.
	otherRef := fabric.CellRef{Coord: fabric.Coord{Row: 5, Col: 7}, Cell: 2}
	dev.WriteCell(otherRef, fabric.CellConfig{Used: true, LUT: fabric.LUTConst1})
	if err := ft.EndBatch(); err != nil {
		t.Fatal(err)
	}

	// (a) Nothing got clobbered by the flush.
	if got := dev.ReadCell(toolRef); !got.Used {
		t.Fatal("tool write lost")
	}
	if got := dev.ReadCell(sameColRef); !got.Used || !got.FF {
		t.Fatalf("designer write sharing a frame clobbered by flush: %+v", got)
	}
	if got := dev.ReadCell(otherRef); !got.Used {
		t.Fatal("designer write in other column lost")
	}

	// (b) Rollback reverts tool AND designer writes: the flush must not
	// advance the sync cursor past generations it did not produce.
	words, err := ft.RecoveryWords(snap)
	if err != nil {
		t.Fatal(err)
	}
	if err := ctrl.Feed(words...); err != nil {
		t.Fatal(err)
	}
	ft.CompleteRestore(snap)
	snap.Release()
	for _, ref := range []fabric.CellRef{toolRef, sameColRef, otherRef} {
		if got := dev.ReadCell(ref); got.Used {
			t.Fatalf("cell %v survived rollback: %+v", ref, got)
		}
	}
}

// TestRelocationAtomicityOnPlanFailure: a failed plan (busy destination,
// RAM conflict, routing exhaustion) must leave the configuration untouched.
func TestRelocationAtomicityOnPlanFailure(t *testing.T) {
	dev := fabric.NewDevice(fabric.XCV50)
	d := placeDesign(t, dev, "b02")
	eng, err := relocate.NewEngine(dev, directPort(dev))
	if err != nil {
		t.Fatal(err)
	}
	before := countPIPs(dev)
	gen := dev.Generation()
	var from fabric.CellRef
	for _, ref := range d.OccupiedCells() {
		from = ref
		break
	}
	// Busy destination: plan fails before any frame write.
	if _, err := eng.RelocateCell(from, from); err == nil {
		t.Fatal("relocation onto itself accepted")
	}
	if dev.Generation() != gen {
		t.Error("failed plan wrote configuration")
	}
	if countPIPs(dev) != before {
		t.Error("failed plan changed PIP population")
	}
	_ = netlist.None
}
