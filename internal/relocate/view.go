// Package relocate implements the paper's contribution: dynamic relocation
// of active CLBs and routing resources on a partially reconfigurable FPGA,
// without stopping the functions that use them.
//
// The engine realises the two-phase relocation procedure of Fig. 2, the
// auxiliary relocation circuit for gated-clock and latch-based circuits of
// Fig. 3, the eleven-step flow of Fig. 4, and the duplicate-then-drop
// relocation of routing resources of Fig. 5 — all expressed as configuration
// frame writes delivered through a configuration port (Boundary-Scan in the
// paper), with cycle-exact cost accounting.
//
// Like the paper's JBits-based tool, the engine derives everything it needs
// — net connectivity, free resources, fanout — from the configuration
// memory itself, so it can relocate logic it did not place.
package relocate

import (
	"fmt"

	"repro/internal/fabric"
)

// view is the engine's bitstream-derived picture of the device: which
// routing nodes are in use, which cells are occupied, and how signals flow.
//
// The picture is maintained incrementally: the tool's write path reports
// exactly which cells, nodes and pads each configuration write can have
// changed (view implements ViewSink), and the view re-derives just those
// entries from the configuration memory. A full rescan remains only as the
// fallback for configuration that changed outside the tool — designer-path
// writes detected through Device.FramesChangedSince — and even that path
// first tries a partial re-derivation bounded by the dirty frames' columns.
type view struct {
	dev *fabric.Device
	gen uint64

	used    map[fabric.NodeID]bool
	inUse   map[fabric.CellRef]bool
	freeCLB map[fabric.Coord]bool
	// freePerRow is the row-bucketed spatial index over freeCLB: the number
	// of free CLBs per array row, maintained by the same deltas that keep
	// freeCLB current. findFreeCLB's expanding-ring lookup uses it to skip
	// rows with nothing free, making aux-CLB placement O(neighbourhood)
	// instead of a scan over the whole free set.
	freePerRow []int
	freeCount  int
}

func newView(dev *fabric.Device) *view {
	v := &view{dev: dev}
	v.rescan()
	return v
}

// rescan rebuilds the occupancy picture from the configuration memory.
func (v *view) rescan() {
	v.gen = v.dev.Generation()
	v.used = map[fabric.NodeID]bool{}
	v.inUse = map[fabric.CellRef]bool{}
	v.freeCLB = map[fabric.Coord]bool{}
	v.freePerRow = make([]int, v.dev.Rows)
	v.freeCount = 0
	dev := v.dev
	for row := 0; row < dev.Rows; row++ {
		for col := 0; col < dev.Cols; col++ {
			c := fabric.Coord{Row: row, Col: col}
			clbFree := true
			for cell := 0; cell < fabric.CellsPerCLB; cell++ {
				ref := fabric.CellRef{Coord: c, Cell: cell}
				if dev.ReadCell(ref).InUse() {
					v.inUse[ref] = true
					clbFree = false
					v.used[dev.NodeIDAt(c, fabric.LocalOutX(cell))] = true
					v.used[dev.NodeIDAt(c, fabric.LocalOutXQ(cell))] = true
				}
			}
			// Any sink with an enabled PIP marks itself and its enabled
			// sources as used.
			for local := 0; local < fabric.NodeSlots; local++ {
				if !fabric.IsLocalSink(local) {
					continue
				}
				if dev.PIPMask(c, local) == 0 {
					continue
				}
				v.used[dev.NodeIDAt(c, local)] = true
				for _, src := range dev.EnabledSourceNodes(c, local) {
					v.used[src] = true
				}
				clbFree = false
			}
			if clbFree {
				v.freeCLB[c] = true
				v.freePerRow[row]++
				v.freeCount++
			}
		}
	}
	// Pads.
	for i := 0; i < dev.NumPads(); i++ {
		p := dev.PadByIndex(i)
		pc := dev.ReadPad(p)
		if pc.Input || pc.Output {
			v.used[dev.PadNodeID(p)] = true
		}
		for _, n := range dev.PadEnabledSources(p) {
			v.used[n] = true
		}
	}
}

// refresh brings the view up to date if the configuration moved through a
// path the tool did not report (designer-level writes, recovery streams fed
// straight to the controller). The changed frames are narrowed through
// Device.FramesChangedSince; refreshFrames falls back to a full rescan when
// they cover most of the device.
func (v *view) refresh() {
	if v.dev.Generation() != v.gen {
		v.refreshFrames(v.dev.FramesChangedSince(v.gen))
	}
}

// nodeInUse re-derives one node's occupancy from the configuration memory.
// It must agree exactly with the criteria rescan applies: a cell output is
// used while its cell is configured, a sink while any of its PIPs is
// enabled, a source while any enabled PIP or output-pad mask selects it, and
// a pad node while the pad is configured as input or output.
func (v *view) nodeInUse(n fabric.NodeID) bool {
	dev := v.dev
	if pad, ok := dev.PadOfNode(n); ok {
		pc := dev.ReadPad(pad)
		return pc.Input || pc.Output || dev.HasEnabledFanout(n)
	}
	c, local, _ := dev.SplitNode(n)
	kind, _, idx := fabric.DecodeLocal(local)
	if kind == fabric.KindOutX || kind == fabric.KindOutXQ {
		if dev.ReadCell(fabric.CellRef{Coord: c, Cell: idx}).InUse() {
			return true
		}
	}
	if fabric.IsLocalSink(local) && dev.PIPMask(c, local) != 0 {
		return true
	}
	if dev.HasEnabledFanout(n) {
		return true
	}
	return v.fedByPad(n)
}

// padCandidate returns the one pad whose OutMask could select the wire: the
// wire must be a single leaving the array from a border tile, and the pad
// sits at the position it exits towards. This is the single encoding of the
// wire-to-pad border rule — fedByPad and padsFedBy both build on it.
func (v *view) padCandidate(n fabric.NodeID) (fabric.PadRef, bool) {
	dev := v.dev
	c, local, ok := dev.SplitNode(n)
	if !ok {
		return fabric.PadRef{}, false
	}
	kind, dir, idx := fabric.DecodeLocal(local)
	if kind != fabric.KindSingle {
		return fabric.PadRef{}, false
	}
	out := c.Step(dir, 1)
	if dev.InBounds(out) {
		return fabric.PadRef{}, false
	}
	side, pos := edgeOf(dev, out)
	if pos < 0 {
		return fabric.PadRef{}, false
	}
	return fabric.PadRef{Side: side, Pos: pos, K: idx % fabric.PadsPerEdgeTile}, true
}

// fedByPad reports whether an output pad's enabled OutMask selects the wire
// — the allocation-free counterpart of padsFedBy, for the per-node
// re-derivation path.
func (v *view) fedByPad(n fabric.NodeID) bool {
	p, ok := v.padCandidate(n)
	if !ok {
		return false
	}
	pc := v.dev.ReadPad(p)
	if !pc.Output || pc.OutMask == 0 {
		return false
	}
	for b := 0; b < fabric.PadOutSources; b++ {
		if pc.OutMask>>b&1 == 1 && v.dev.PadOutSourceNode(p, b) == n {
			return true
		}
	}
	return false
}

// markNode re-derives one node and updates the used set (markUsed/markFree
// folded into one recompute, so callers only say WHAT may have changed).
func (v *view) markNode(n fabric.NodeID) {
	if v.nodeInUse(n) {
		v.used[n] = true
	} else {
		delete(v.used, n)
	}
}

// markCell re-derives one cell's occupancy and its output nodes.
func (v *view) markCell(ref fabric.CellRef) {
	if v.dev.ReadCell(ref).InUse() {
		v.inUse[ref] = true
	} else {
		delete(v.inUse, ref)
	}
	v.markNode(v.dev.NodeIDAt(ref.Coord, fabric.LocalOutX(ref.Cell)))
	v.markNode(v.dev.NodeIDAt(ref.Coord, fabric.LocalOutXQ(ref.Cell)))
}

// markTileFree re-derives whether a CLB is wholly free (no configured cell,
// no enabled sink PIP).
func (v *view) markTileFree(c fabric.Coord) {
	dev := v.dev
	free := true
	for cell := 0; cell < fabric.CellsPerCLB && free; cell++ {
		if dev.ReadCell(fabric.CellRef{Coord: c, Cell: cell}).InUse() {
			free = false
		}
	}
	for local := 0; local < fabric.NodeSlots && free; local++ {
		if fabric.IsLocalSink(local) && dev.PIPMask(c, local) != 0 {
			free = false
		}
	}
	if free == v.freeCLB[c] {
		return
	}
	if free {
		v.freeCLB[c] = true
		v.freePerRow[c.Row]++
		v.freeCount++
	} else {
		delete(v.freeCLB, c)
		v.freePerRow[c.Row]--
		v.freeCount--
	}
}

// CellTouched applies the delta for one cell configuration write (ViewSink).
func (v *view) CellTouched(ref fabric.CellRef) {
	v.markCell(ref)
	v.markTileFree(ref.Coord)
	v.gen = v.dev.Generation()
}

// NodesTouched applies the delta for a set of nodes whose connectivity a
// write can have changed: each is re-derived from the configuration, and the
// tiles they live in re-derive their free/occupied status (ViewSink).
func (v *view) NodesTouched(nodes ...fabric.NodeID) {
	for _, n := range nodes {
		v.markNode(n)
		if c, _, ok := v.dev.SplitNode(n); ok {
			v.markTileFree(c)
		}
	}
	v.gen = v.dev.Generation()
}

// PadTouched applies the delta for one pad configuration write: the pad node
// itself and every wire its OutMask can select (ViewSink).
func (v *view) PadTouched(pad fabric.PadRef) {
	v.markNode(v.dev.PadNodeID(pad))
	for _, n := range v.dev.PadOutSourceNodes(pad) {
		v.markNode(n)
	}
	v.gen = v.dev.Generation()
}

// Synced consumes configuration that changed outside the tool's write path
// (designer-level placement, a rollback's recovery stream): the view
// re-derives the columns the dirty frames can influence (ViewSink).
func (v *view) Synced(addrs []fabric.FrameAddr) {
	v.refreshFrames(addrs)
}

// Advanced notes that the device generation moved with no configuration
// change the view has not already applied — the port re-delivering staged
// frames on a flush (ViewSink).
func (v *view) Advanced() {
	v.gen = v.dev.Generation()
}

// hexReach is how far (in tiles) a PIP can connect across the array: the
// straight-through hex wires of the sink templates span fabric.HexSpan
// tiles, so a configuration bit in one column can change the usage of nodes
// up to that many columns away.
const hexReach = fabric.HexSpan

// refreshFrames re-derives the occupancy entries a set of dirty frames can
// have changed: the tiles of the frames' own columns (cell configs and sink
// masks are tile-local), the used status of every node within wire reach of
// those columns, and the pads whose configuration or selectable wires the
// frames cover. Falls back to a full rescan when the dirty set covers most
// of the device — the designer-path fallback of the O(change) contract.
func (v *view) refreshFrames(addrs []fabric.FrameAddr) {
	dev := v.dev
	if len(addrs) == 0 {
		v.gen = dev.Generation()
		return
	}
	if 2*len(addrs) >= dev.TotalFrames() {
		v.rescan()
		return
	}
	dirtyCols := map[int]bool{} // array columns whose tile config changed
	nodeCols := map[int]bool{}  // array columns whose nodes need re-deriving
	pads := map[fabric.PadRef]bool{}
	markPadCols := func(col int) {
		// Sinks of this column can select North/South pads of the column;
		// border columns can also select the West/East pad rings.
		for k := 0; k < fabric.PadsPerEdgeTile; k++ {
			pads[fabric.PadRef{Side: fabric.North, Pos: col, K: k}] = true
			pads[fabric.PadRef{Side: fabric.South, Pos: col, K: k}] = true
		}
		if col == 0 || col == dev.Cols-1 {
			side := fabric.West
			if col == dev.Cols-1 {
				side = fabric.East
			}
			for pos := 0; pos < dev.Rows; pos++ {
				for k := 0; k < fabric.PadsPerEdgeTile; k++ {
					pads[fabric.PadRef{Side: side, Pos: pos, K: k}] = true
				}
			}
		}
	}
	addNodeCol := func(col int) {
		if col >= 0 && col < dev.Cols {
			nodeCols[col] = true
		}
	}
	for _, addr := range addrs {
		col, ok := dev.ColumnByMajor(addr.Major)
		if ok && col.Kind == fabric.ColCLB {
			a := col.ArrayCol
			dirtyCols[a] = true
			for _, d := range []int{0, -1, 1, -hexReach, hexReach} {
				addNodeCol(a + d)
			}
			markPadCols(a)
		}
		for _, p := range dev.PadsInFrame(addr) {
			pads[p] = true
			// The pad's selectable wires live in its border tile's column.
			tile, _, _ := dev.SplitNode(dev.PadOutSourceNodes(p)[0])
			addNodeCol(tile.Col)
		}
	}
	for col := range nodeCols {
		for row := 0; row < dev.Rows; row++ {
			c := fabric.Coord{Row: row, Col: col}
			for local := 0; local < fabric.NodeSlots; local++ {
				if !validLocal(local) {
					continue
				}
				v.markNode(dev.NodeIDAt(c, local))
			}
		}
	}
	for col := range dirtyCols {
		for row := 0; row < dev.Rows; row++ {
			c := fabric.Coord{Row: row, Col: col}
			for cell := 0; cell < fabric.CellsPerCLB; cell++ {
				ref := fabric.CellRef{Coord: c, Cell: cell}
				if dev.ReadCell(ref).InUse() {
					v.inUse[ref] = true
				} else {
					delete(v.inUse, ref)
				}
			}
			v.markTileFree(c)
		}
	}
	for p := range pads {
		v.markNode(dev.PadNodeID(p))
	}
	v.gen = dev.Generation()
}

// validLocal reports whether a local slot below NodeSlots is an actual node
// (the per-tile id space is padded to a fixed stride).
func validLocal(local int) bool {
	return local < fabric.LocalOutXQ(fabric.CellsPerCLB-1)+1
}

// terminalDriver walks backwards from a sink through enabled PIPs to the
// terminal source (cell output or input pad). It also returns the chain of
// nodes from the driver to the sink (driver first). An error is returned if
// the sink resolves to zero or multiple drivers (the engine refuses to
// relocate around malformed nets).
func (v *view) terminalDriver(c fabric.Coord, sinkLocal int) (fabric.NodeID, []fabric.NodeID, error) {
	dev := v.dev
	var chain []fabric.NodeID
	cur := dev.NodeIDAt(c, sinkLocal)
	seen := map[fabric.NodeID]bool{}
	for {
		if seen[cur] {
			return fabric.InvalidNode, nil, fmt.Errorf("relocate: routing loop at node %d", cur)
		}
		seen[cur] = true
		chain = append(chain, cur)
		if _, ok := dev.PadOfNode(cur); ok {
			break
		}
		cc, local, _ := dev.SplitNode(cur)
		kind, _, _ := fabric.DecodeLocal(local)
		if kind == fabric.KindOutX || kind == fabric.KindOutXQ {
			break
		}
		srcs := dev.EnabledSourceNodes(cc, local)
		switch len(srcs) {
		case 1:
			cur = srcs[0]
		case 0:
			return fabric.InvalidNode, nil, fmt.Errorf("relocate: sink %v/%d has no driver", c, sinkLocal)
		default:
			return fabric.InvalidNode, nil, fmt.Errorf("relocate: sink %v/%d has %d parallel drivers", c, sinkLocal, len(srcs))
		}
	}
	// chain is sink..driver; reverse.
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	return chain[0], chain, nil
}

// terminalSink is a leaf consumer of a net: a cell input pin or an output
// pad, plus the wire that directly feeds it.
type terminalSink struct {
	node    fabric.NodeID // pin or pad node
	lastSrc fabric.NodeID // the enabled source feeding it on the old path
}

// forwardCone walks forward from a source node through enabled PIPs,
// returning the terminal sinks and every intermediate node of the tree.
func (v *view) forwardCone(src fabric.NodeID) (sinks []terminalSink, tree []fabric.NodeID) {
	dev := v.dev
	seen := map[fabric.NodeID]bool{}
	var walk func(n fabric.NodeID)
	walk = func(n fabric.NodeID) {
		if seen[n] {
			return
		}
		seen[n] = true
		tree = append(tree, n)
		for _, e := range dev.FanoutOf(n) {
			if dev.PIPMask(e.SinkTile, e.SinkLocal)>>e.Bit&1 != 1 {
				continue
			}
			kind, _, _ := fabric.DecodeLocal(e.SinkLocal)
			switch kind {
			case fabric.KindPinI, fabric.KindPinBX, fabric.KindPinCE:
				sinks = append(sinks, terminalSink{node: e.Sink, lastSrc: n})
			default:
				walk(e.Sink)
			}
		}
		// Output pads fed by this node.
		if _, local, ok := dev.SplitNode(n); ok {
			kind, _, _ := fabric.DecodeLocal(local)
			if kind == fabric.KindSingle {
				for _, p := range v.padsFedBy(n) {
					sinks = append(sinks, terminalSink{node: dev.PadNodeID(p), lastSrc: n})
				}
			}
		}
	}
	walk(src)
	return sinks, tree
}

// padsFedBy finds output pads whose enabled OutMask selects the given wire
// (at most one: the candidate pad at the wire's exit position).
func (v *view) padsFedBy(n fabric.NodeID) []fabric.PadRef {
	if !v.fedByPad(n) {
		return nil
	}
	p, _ := v.padCandidate(n)
	return []fabric.PadRef{p}
}

func edgeOf(dev *fabric.Device, out fabric.Coord) (fabric.Dir, int) {
	switch {
	case out.Row < 0:
		return fabric.North, out.Col
	case out.Row >= dev.Rows:
		return fabric.South, out.Col
	case out.Col < 0:
		return fabric.West, out.Row
	case out.Col >= dev.Cols:
		return fabric.East, out.Row
	}
	return fabric.North, -1
}

// exclusiveSuffix returns the tail of a driver->sink chain that serves only
// this sink (no other enabled fanout), INCLUDING the anchor node it hangs
// off (the last shared node, or the driver). Passing the result to
// freeChain disables the entry hop into the exclusive region as well as
// every hop inside it — leaving no driven-but-unconsumed wire behind —
// while the anchor's own connectivity (serving other sinks) is untouched.
func (v *view) exclusiveSuffix(chain []fabric.NodeID) []fabric.NodeID {
	dev := v.dev
	// chain[0] is the terminal driver; the last element the sink pin.
	cut := len(chain) - 1 // default: only the sink itself is exclusive
	for i := len(chain) - 2; i >= 1; i-- {
		n := chain[i]
		shared := false
		for _, e := range dev.FanoutOf(n) {
			if dev.PIPMask(e.SinkTile, e.SinkLocal)>>e.Bit&1 != 1 {
				continue
			}
			if i+1 < len(chain) && e.Sink == chain[i+1] {
				continue
			}
			shared = true
			break
		}
		if v.fedByPad(n) {
			shared = true
		}
		if shared {
			break
		}
		cut = i
	}
	return chain[cut-1:] // cut >= 1: include the anchor for the entry hop
}

// findFreeCLB locates a free CLB near a coordinate (for the auxiliary
// relocation circuit, which "must be implemented in a nearby free CLB"),
// excluding the given coordinates.
//
// The lookup walks expanding Manhattan rings around the target over the
// row-bucketed index: each ring of radius d visits only the (at most two)
// candidate columns per row, rows with no free CLB are skipped outright, and
// the first hit is the answer — cost O(neighbourhood of the nearest free
// CLB), not O(free set). Enumeration order matches the previous full scan's
// tie-break exactly: smallest distance, then smallest row, then smallest
// column (rows ascend within a ring, and the west candidate precedes the
// east one).
func (v *view) findFreeCLB(near fabric.Coord, exclude ...fabric.Coord) (fabric.Coord, error) {
	v.refresh()
	free := v.freeCount
	for i, c := range exclude {
		dup := false
		for _, p := range exclude[:i] {
			if p == c {
				dup = true
				break
			}
		}
		if !dup && v.freeCLB[c] {
			free--
		}
	}
	if free > 0 {
		dev := v.dev
		isHit := func(row, col int) bool {
			if col < 0 || col >= dev.Cols {
				return false
			}
			c := fabric.Coord{Row: row, Col: col}
			if !v.freeCLB[c] {
				return false
			}
			for _, e := range exclude {
				if e == c {
					return false
				}
			}
			return true
		}
		maxD := dev.Rows + dev.Cols
		for d := 0; d <= maxD; d++ {
			for dr := -d; dr <= d; dr++ {
				row := near.Row + dr
				if row < 0 || row >= dev.Rows || v.freePerRow[row] == 0 {
					continue
				}
				rem := d - abs(dr)
				if isHit(row, near.Col-rem) {
					return fabric.Coord{Row: row, Col: near.Col - rem}, nil
				}
				if rem > 0 && isHit(row, near.Col+rem) {
					return fabric.Coord{Row: row, Col: near.Col + rem}, nil
				}
			}
		}
	}
	return fabric.Coord{}, fmt.Errorf("relocate: no free CLB available near %v", near)
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
