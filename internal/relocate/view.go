// Package relocate implements the paper's contribution: dynamic relocation
// of active CLBs and routing resources on a partially reconfigurable FPGA,
// without stopping the functions that use them.
//
// The engine realises the two-phase relocation procedure of Fig. 2, the
// auxiliary relocation circuit for gated-clock and latch-based circuits of
// Fig. 3, the eleven-step flow of Fig. 4, and the duplicate-then-drop
// relocation of routing resources of Fig. 5 — all expressed as configuration
// frame writes delivered through a configuration port (Boundary-Scan in the
// paper), with cycle-exact cost accounting.
//
// Like the paper's JBits-based tool, the engine derives everything it needs
// — net connectivity, free resources, fanout — from the configuration
// memory itself, so it can relocate logic it did not place.
package relocate

import (
	"fmt"

	"repro/internal/fabric"
)

// view is the engine's bitstream-derived picture of the device: which
// routing nodes are in use, which cells are occupied, and how signals flow.
type view struct {
	dev *fabric.Device
	gen uint64

	used    map[fabric.NodeID]bool
	inUse   map[fabric.CellRef]bool
	freeCLB map[fabric.Coord]bool
}

func newView(dev *fabric.Device) *view {
	v := &view{dev: dev}
	v.rescan()
	return v
}

// rescan rebuilds the occupancy picture from the configuration memory.
func (v *view) rescan() {
	v.gen = v.dev.Generation()
	v.used = map[fabric.NodeID]bool{}
	v.inUse = map[fabric.CellRef]bool{}
	v.freeCLB = map[fabric.Coord]bool{}
	dev := v.dev
	for row := 0; row < dev.Rows; row++ {
		for col := 0; col < dev.Cols; col++ {
			c := fabric.Coord{Row: row, Col: col}
			clbFree := true
			for cell := 0; cell < fabric.CellsPerCLB; cell++ {
				ref := fabric.CellRef{Coord: c, Cell: cell}
				if dev.ReadCell(ref).InUse() {
					v.inUse[ref] = true
					clbFree = false
					v.used[dev.NodeIDAt(c, fabric.LocalOutX(cell))] = true
					v.used[dev.NodeIDAt(c, fabric.LocalOutXQ(cell))] = true
				}
			}
			// Any sink with an enabled PIP marks itself and its enabled
			// sources as used.
			for local := 0; local < fabric.NodeSlots; local++ {
				if !fabric.IsLocalSink(local) {
					continue
				}
				if dev.PIPMask(c, local) == 0 {
					continue
				}
				v.used[dev.NodeIDAt(c, local)] = true
				for _, src := range dev.EnabledSourceNodes(c, local) {
					v.used[src] = true
				}
				clbFree = false
			}
			if clbFree {
				v.freeCLB[c] = true
			}
		}
	}
	// Pads.
	for i := 0; i < dev.NumPads(); i++ {
		p := dev.PadByIndex(i)
		pc := dev.ReadPad(p)
		if pc.Input || pc.Output {
			v.used[dev.PadNodeID(p)] = true
		}
		for _, n := range dev.PadEnabledSources(p) {
			v.used[n] = true
		}
	}
}

// refresh rescans if the configuration moved.
func (v *view) refresh() {
	if v.dev.Generation() != v.gen {
		v.rescan()
	}
}

// markUsed records nodes the engine just allocated (cheaper than a rescan).
func (v *view) markUsed(nodes ...fabric.NodeID) {
	for _, n := range nodes {
		v.used[n] = true
	}
	v.gen = v.dev.Generation()
}

// markFree releases nodes the engine just freed.
func (v *view) markFree(nodes ...fabric.NodeID) {
	for _, n := range nodes {
		delete(v.used, n)
	}
	v.gen = v.dev.Generation()
}

// terminalDriver walks backwards from a sink through enabled PIPs to the
// terminal source (cell output or input pad). It also returns the chain of
// nodes from the driver to the sink (driver first). An error is returned if
// the sink resolves to zero or multiple drivers (the engine refuses to
// relocate around malformed nets).
func (v *view) terminalDriver(c fabric.Coord, sinkLocal int) (fabric.NodeID, []fabric.NodeID, error) {
	dev := v.dev
	var chain []fabric.NodeID
	cur := dev.NodeIDAt(c, sinkLocal)
	seen := map[fabric.NodeID]bool{}
	for {
		if seen[cur] {
			return fabric.InvalidNode, nil, fmt.Errorf("relocate: routing loop at node %d", cur)
		}
		seen[cur] = true
		chain = append(chain, cur)
		if _, ok := dev.PadOfNode(cur); ok {
			break
		}
		cc, local, _ := dev.SplitNode(cur)
		kind, _, _ := fabric.DecodeLocal(local)
		if kind == fabric.KindOutX || kind == fabric.KindOutXQ {
			break
		}
		srcs := dev.EnabledSourceNodes(cc, local)
		switch len(srcs) {
		case 1:
			cur = srcs[0]
		case 0:
			return fabric.InvalidNode, nil, fmt.Errorf("relocate: sink %v/%d has no driver", c, sinkLocal)
		default:
			return fabric.InvalidNode, nil, fmt.Errorf("relocate: sink %v/%d has %d parallel drivers", c, sinkLocal, len(srcs))
		}
	}
	// chain is sink..driver; reverse.
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	return chain[0], chain, nil
}

// terminalSink is a leaf consumer of a net: a cell input pin or an output
// pad, plus the wire that directly feeds it.
type terminalSink struct {
	node    fabric.NodeID // pin or pad node
	lastSrc fabric.NodeID // the enabled source feeding it on the old path
}

// forwardCone walks forward from a source node through enabled PIPs,
// returning the terminal sinks and every intermediate node of the tree.
func (v *view) forwardCone(src fabric.NodeID) (sinks []terminalSink, tree []fabric.NodeID) {
	dev := v.dev
	seen := map[fabric.NodeID]bool{}
	var walk func(n fabric.NodeID)
	walk = func(n fabric.NodeID) {
		if seen[n] {
			return
		}
		seen[n] = true
		tree = append(tree, n)
		for _, e := range dev.FanoutOf(n) {
			if dev.PIPMask(e.SinkTile, e.SinkLocal)>>e.Bit&1 != 1 {
				continue
			}
			kind, _, _ := fabric.DecodeLocal(e.SinkLocal)
			switch kind {
			case fabric.KindPinI, fabric.KindPinBX, fabric.KindPinCE:
				sinks = append(sinks, terminalSink{node: e.Sink, lastSrc: n})
			default:
				walk(e.Sink)
			}
		}
		// Output pads fed by this node.
		if _, local, ok := dev.SplitNode(n); ok {
			kind, dir, idx := fabric.DecodeLocal(local)
			if kind == fabric.KindSingle {
				_ = dir
				_ = idx
				for _, p := range v.padsFedBy(n) {
					sinks = append(sinks, terminalSink{node: dev.PadNodeID(p), lastSrc: n})
				}
			}
		}
	}
	walk(src)
	return sinks, tree
}

// padsFedBy finds output pads whose enabled OutMask selects the given wire.
func (v *view) padsFedBy(n fabric.NodeID) []fabric.PadRef {
	dev := v.dev
	c, local, ok := dev.SplitNode(n)
	if !ok {
		return nil
	}
	kind, dir, idx := fabric.DecodeLocal(local)
	if kind != fabric.KindSingle {
		return nil
	}
	// The wire leaves the array only from a border tile heading out.
	out := c.Step(dir, 1)
	if dev.InBounds(out) {
		return nil
	}
	var pads []fabric.PadRef
	for k := 0; k < fabric.PadsPerEdgeTile; k++ {
		if k != idx%fabric.PadsPerEdgeTile {
			continue
		}
		side, pos := edgeOf(dev, out)
		if pos < 0 {
			continue
		}
		p := fabric.PadRef{Side: side, Pos: pos, K: k}
		for _, srcNode := range dev.PadEnabledSources(p) {
			if srcNode == n {
				pads = append(pads, p)
			}
		}
	}
	return pads
}

func edgeOf(dev *fabric.Device, out fabric.Coord) (fabric.Dir, int) {
	switch {
	case out.Row < 0:
		return fabric.North, out.Col
	case out.Row >= dev.Rows:
		return fabric.South, out.Col
	case out.Col < 0:
		return fabric.West, out.Row
	case out.Col >= dev.Cols:
		return fabric.East, out.Row
	}
	return fabric.North, -1
}

// exclusiveSuffix returns the tail of a driver->sink chain that serves only
// this sink (no other enabled fanout), INCLUDING the anchor node it hangs
// off (the last shared node, or the driver). Passing the result to
// freeChain disables the entry hop into the exclusive region as well as
// every hop inside it — leaving no driven-but-unconsumed wire behind —
// while the anchor's own connectivity (serving other sinks) is untouched.
func (v *view) exclusiveSuffix(chain []fabric.NodeID) []fabric.NodeID {
	dev := v.dev
	// chain[0] is the terminal driver; the last element the sink pin.
	cut := len(chain) - 1 // default: only the sink itself is exclusive
	for i := len(chain) - 2; i >= 1; i-- {
		n := chain[i]
		shared := false
		for _, e := range dev.FanoutOf(n) {
			if dev.PIPMask(e.SinkTile, e.SinkLocal)>>e.Bit&1 != 1 {
				continue
			}
			if i+1 < len(chain) && e.Sink == chain[i+1] {
				continue
			}
			shared = true
			break
		}
		if len(v.padsFedBy(n)) > 0 {
			shared = true
		}
		if shared {
			break
		}
		cut = i
	}
	return chain[cut-1:] // cut >= 1: include the anchor for the entry hop
}

// findFreeCLB locates a free CLB near a coordinate (for the auxiliary
// relocation circuit, which "must be implemented in a nearby free CLB"),
// excluding the given coordinates.
func (v *view) findFreeCLB(near fabric.Coord, exclude ...fabric.Coord) (fabric.Coord, error) {
	v.refresh()
	ex := map[fabric.Coord]bool{}
	for _, c := range exclude {
		ex[c] = true
	}
	best := fabric.Coord{Row: -1}
	bestDist := 1 << 30
	for c := range v.freeCLB {
		if ex[c] {
			continue
		}
		d := c.ManhattanDist(near)
		if d < bestDist ||
			(d == bestDist && (c.Row < best.Row || (c.Row == best.Row && c.Col < best.Col))) {
			best, bestDist = c, d
		}
	}
	if best.Row < 0 {
		return fabric.Coord{}, fmt.Errorf("relocate: no free CLB available near %v", near)
	}
	return best, nil
}

// forwardConeExported adapts forwardCone for engine-level callers.
func (v *view) forwardConeExported(src fabric.NodeID) ([]terminalSink, []fabric.NodeID) {
	return v.forwardCone(src)
}
