package relocate

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/bitstream"
	"repro/internal/fabric"
	"repro/internal/route"
)

// Errors returned by the engine's pre-checks.
var (
	// ErrRAMRelocation: LUT/RAM cells cannot be relocated on-line (paper
	// §2: the system would have to be stopped to ensure data coherency).
	ErrRAMRelocation = errors.New("relocate: LUT/RAM cells cannot be relocated on-line")
	// ErrRAMInColumn: LUT/RAMs must not lie in any column affected by a
	// relocation (a frame write would race their run-time contents).
	ErrRAMInColumn = errors.New("relocate: a LUT/RAM lies in a column affected by the relocation")
	// ErrDestinationBusy: the destination cell or its routing is occupied.
	ErrDestinationBusy = errors.New("relocate: destination cell is not free")
	// ErrUnsupported marks configurations outside the procedure's scope.
	ErrUnsupported = errors.New("relocate: unsupported cell configuration")
)

// Aux CLB cell assignment. The control constants sit in cells whose LUT
// truth table maps into a single configuration frame, so activating or
// deactivating a control is one atomic frame write.
const (
	auxCellOr    = 0 // OR gate: replicaCE = CE | ceCtl
	auxCellCe    = 1 // clock-enable control constant (atomic LUT frame)
	auxCellMux   = 2 // transfer multiplexer
	auxCellReloc = 3 // relocation control constant (atomic LUT frame)
)

// auxMuxLUT: out = I3 ? (I2 ? I1 : I0) : I1
//
//	I0 = original XQ, I1 = replica D value, I2 = CE signal, I3 = reloc ctl.
func auxMuxLUT() uint16 {
	var lut uint16
	for v := 0; v < 16; v++ {
		i0 := v&1 == 1
		i1 := v>>1&1 == 1
		i2 := v>>2&1 == 1
		i3 := v>>3&1 == 1
		out := i1
		if i3 && !i2 {
			out = i0
		}
		if out {
			lut |= 1 << v
		}
	}
	return lut
}

// Stats accumulates engine activity.
type Stats struct {
	CellsRelocated int
	CLBsRelocated  int
	NetsRelocated  int
	AuxCircuits    int
	FramesWritten  int
	PortSeconds    float64
	ClockCycles    int
	// PlanSeconds is cumulative host wall-clock spent planning and routing
	// relocations (the work the commit pipeline overlaps with shift-out).
	PlanSeconds float64
	// OverlappedOps counts relocations whose planning ran while a previous
	// operation's bitstream was still shifting out — the two-stage
	// pipeline's win; SerialFallbacks counts relocations that had to drain
	// the stream before executing (frame sets not disjoint, or a
	// conflicting write hit the stage-time gate). In serial-commit mode
	// both stay zero.
	OverlappedOps   int
	SerialFallbacks int
	// Fault-tolerance layer counters (the facade's retry/quarantine/scrub
	// ladder). RetrySeconds and ScrubSeconds are the transport time spent
	// on re-delivery and on scrubbing; both are accounted here and
	// compensated out of the port's cycle counter, so the foreground
	// accounting (PortSeconds, Elapsed, Cycles) stays bit-identical to a
	// fault-free twin's.
	FaultsDetected    int
	FaultRetries      int
	RetriesExhausted  int
	FramesQuarantined int
	DesignsEvacuated  int
	ScrubChecked      int
	ScrubRepairs      int
	RetrySeconds      float64
	ScrubSeconds      float64
	// Health lifecycle counters (the facade's self-healing layer): columns
	// marked suspect by the error-rate tracker, quarantine probes issued and
	// failed, and columns released back into service. ProbeSeconds is the
	// transport time spent probing, compensated out of the port's cycle
	// counter like RetrySeconds/ScrubSeconds.
	ColumnsSuspected    int
	Probes              int
	ProbeFailures       int
	QuarantinesReleased int
	ProbeSeconds        float64
}

// CellMove reports one completed cell relocation.
type CellMove struct {
	From, To fabric.CellRef
	Aux      fabric.Coord
	UsedAux  bool
	Frames   int
	Seconds  float64
	// MaxParallelDelayNs is the worst path delay while original and
	// replica connections were paralleled (paper: "the propagation delay
	// associated to the parallel interconnections shall be the longer of
	// the two paths").
	MaxParallelDelayNs float64
	// TouchedFrames is the distinct set of configuration frames the
	// relocation wrote, in first-touched order. The run-time manager sizes
	// its checkpoints from this: rollback state covers exactly these
	// frames, not the whole device.
	TouchedFrames []fabric.FrameAddr
}

// Engine performs dynamic relocation through a configuration port.
type Engine struct {
	Dev  *fabric.Device
	Tool *FrameTool
	// Clock advances the application clock n cycles. The harness typically
	// steps a lock-step simulation here, injecting fresh inputs, so state
	// coherency is checked under live traffic. Nil = no clock model.
	Clock func(cycles int) error
	// AppClockHz converts port transport time into application cycles for
	// the waits between procedure steps.
	AppClockHz float64
	// MaxCyclesPerWait caps simulated cycles per wait point (simulation
	// speed; the real elapsed cycles are still accounted in Stats).
	MaxCyclesPerWait int
	// ForcePlainProcedure applies the plain two-phase procedure even to
	// gated-clock cells — the paper's NEGATIVE case ("the previous method
	// does not ensure that the CLB replica captures the correct state
	// information"). Ablation/testing only.
	ForcePlainProcedure bool
	// PrePhase2, when set, runs right before the replica outputs are
	// paralleled with the original's: the instant at which original and
	// replica state must agree. Verification harnesses assert it there.
	PrePhase2 func(from, to fabric.CellRef) error

	Stats Stats

	view     *view
	router   *route.Router // reused across relocations (Reset per plan)
	lastTick float64
}

// NewEngine builds an engine over a device and configuration port.
func NewEngine(dev *fabric.Device, port bitstream.Port) (*Engine, error) {
	tool, err := NewFrameTool(dev, port)
	if err != nil {
		return nil, err
	}
	e := &Engine{
		Dev:              dev,
		Tool:             tool,
		AppClockHz:       1e6,
		MaxCyclesPerWait: 8,
		view:             newView(dev),
		router:           route.NewRouter(dev),
	}
	// The tool reports every logical write back to the view, which applies
	// occupancy deltas instead of rescanning the device per operation.
	tool.SetViewSink(e.view)
	return e, nil
}

// tick advances the application clock to cover the port time consumed since
// the last tick, with a minimum cycle count (the "> 2 CLK" / "> 1 CLK"
// waits of the Fig. 4 flow). Pending batched frames flush first: a wait
// point is only meaningful once the configuration stream that precedes it
// has been delivered.
func (e *Engine) tick(minCycles int) error {
	if err := e.Tool.Flush(); err != nil {
		return err
	}
	now := e.Tool.Port().Elapsed()
	cycles := int((now - e.lastTick) * e.AppClockHz)
	e.lastTick = now
	if cycles < minCycles {
		cycles = minCycles
	}
	e.Stats.ClockCycles += cycles
	if e.MaxCyclesPerWait > 0 && cycles > e.MaxCyclesPerWait {
		cycles = e.MaxCyclesPerWait
	}
	if e.Clock != nil {
		return e.Clock(cycles)
	}
	return nil
}

// Tick exposes the wait-point accounting to alternate relocation paths (the
// facade's translation-based moves): pending batched frames flush, the port
// time consumed since the last tick is converted into application clock
// cycles, and the clock model steps — exactly as the cell-replication
// procedures account their waits.
func (e *Engine) Tick(minCycles int) error { return e.tick(minCycles) }

// LastTick returns the port-time cursor of the wait-point accounting — part
// of the state the journal persists.
func (e *Engine) LastTick() float64 { return e.lastTick }

// RestoreAccounting overwrites the engine's cumulative statistics and tick
// cursor. Journal recovery uses it (together with the port's RestoreCycles)
// to make a recovered system's accounting bit-identical to a never-crashed
// twin's: the physical reconciliation traffic is reported separately, not
// folded into the restored counters.
func (e *Engine) RestoreAccounting(st Stats, lastTick float64) {
	e.Stats = st
	e.lastTick = lastTick
}

// inputPlan describes one original input pin to be paralleled.
type inputPlan struct {
	pinLocal  int             // local id on both original and replica CLB
	driver    fabric.NodeID   // terminal source of the net
	oldChain  []fabric.NodeID // driver -> original pin
	selfFeed  bool            // driver is the original cell's own output
	replicaIn fabric.NodeID   // replica pin node
	newPath   []fabric.NodeID
}

// cellPlan is the fully routed plan for one cell relocation.
type cellPlan struct {
	from, to fabric.CellRef
	cfg      fabric.CellConfig
	needsAux bool
	aux      fabric.Coord

	inputs []inputPlan

	// Output paralleling: per original output, the terminal sinks and the
	// new paths from the replica output.
	outSinks map[fabric.NodeID][]terminalSink // orig output node -> sinks
	outTree  map[fabric.NodeID][]fabric.NodeID
	newOut   map[fabric.NodeID][][]fabric.NodeID // replica output node -> paths

	// Aux wiring.
	auxPaths   [][]fabric.NodeID // enabled at step 1, freed at step 6
	ceNewPath  []fabric.NodeID   // CE net -> replica CE pin (enabled step 5)
	bxNewPath  []fabric.NodeID   // D net -> replica BX (DFromBX cells)
	orToCE     []fabric.NodeID   // OR output -> replica CE (step 1)
	muxToBX    []fabric.NodeID   // MUX output -> replica BX (step 1)
	ceDriver   fabric.NodeID
	ceOldChain []fabric.NodeID
	bxOldChain []fabric.NodeID
}

// RelocateCell relocates one active logic cell, choosing the procedure
// variant by the cell's design style (paper §2): combinational and
// free-running synchronous cells use the plain two-phase procedure;
// gated-clock and latch cells use the auxiliary relocation circuit.
//
// On an asynchronous port the call is the second stage of the commit
// pipeline: the previous operation's partial bitstream may still be shifting
// out while this cell's relocation is planned and routed (pure host compute
// against the stage-time-current view), and execution overlaps the remaining
// shift when the two operations' frame sets are disjoint — otherwise the
// stream drains first (serial fallback), so configuration memory stays
// bit-identical to fully serial delivery. A transport error of a stream left
// in flight by this call surfaces at the next Tool.AwaitStream (the run-time
// manager harvests one before releasing each operation's checkpoint).
func (e *Engine) RelocateCell(from, to fabric.CellRef) (*CellMove, error) {
	if err := e.Tool.Flush(); err != nil {
		return nil, err
	}
	start := e.Tool.Port().Elapsed()
	frames0 := e.Tool.FramesWritten()
	e.Tool.MarkTouched()

	overlapped := e.Tool.StreamInFlight() // planning overlaps that stream
	planStart := time.Now()
	plan, err := e.plan(from, to)
	if err != nil {
		return nil, err
	}
	if err := e.checkRAMColumns(plan); err != nil {
		return nil, err
	}
	e.Stats.PlanSeconds += time.Since(planStart).Seconds()
	if e.Tool.StreamInFlight() && !e.Tool.StreamDisjoint(e.planFrames(plan)) {
		// The remaining shift covers frames this relocation will write:
		// serial fallback, exactly as the real port would require.
		e.Stats.SerialFallbacks++
		overlapped = false
		if err := e.Tool.AwaitStream(); err != nil {
			return nil, err
		}
	}
	if overlapped {
		e.Stats.OverlappedOps++
	}
	if err := e.execute(plan); err != nil {
		return nil, err
	}
	e.Stats.CellsRelocated++
	if plan.needsAux {
		e.Stats.AuxCircuits++
	}
	mv := &CellMove{
		From:          from,
		To:            to,
		Aux:           plan.aux,
		UsedAux:       plan.needsAux,
		Frames:        e.Tool.FramesWritten() - frames0,
		Seconds:       e.Tool.Port().Elapsed() - start,
		TouchedFrames: e.Tool.TouchedFrames(),
	}
	mv.MaxParallelDelayNs = plan.maxParallelDelay(e.Dev)
	e.Stats.FramesWritten = e.Tool.FramesWritten()
	e.Stats.PortSeconds = e.Tool.Port().Elapsed()
	return mv, nil
}

func (p *cellPlan) maxParallelDelay(dev *fabric.Device) float64 {
	max := 0.0
	for _, paths := range p.newOut {
		for _, path := range paths {
			if d := route.PathDelayNs(dev, path); d > max {
				max = d
			}
		}
	}
	return max
}

// plan inspects the configuration and routes every new connection the
// procedure needs, using free resources only.
func (e *Engine) plan(from, to fabric.CellRef) (*cellPlan, error) {
	e.view.refresh()
	dev := e.Dev
	cfg := dev.ReadCell(from)
	if !cfg.InUse() {
		return nil, fmt.Errorf("%w: source cell %v is empty", ErrUnsupported, from)
	}
	if cfg.RAM {
		return nil, fmt.Errorf("%w (%v)", ErrRAMRelocation, from)
	}
	if cfg.CEInv {
		return nil, fmt.Errorf("%w: CE inversion (%v)", ErrUnsupported, from)
	}
	if err := e.destinationFree(to); err != nil {
		return nil, err
	}

	p := &cellPlan{
		from: from, to: to, cfg: cfg,
		needsAux: cfg.FF && cfg.CEUsed && !e.ForcePlainProcedure,
		outSinks: map[fabric.NodeID][]terminalSink{},
		outTree:  map[fabric.NodeID][]fabric.NodeID{},
		newOut:   map[fabric.NodeID][][]fabric.NodeID{},
	}

	// --- inputs ---------------------------------------------------------
	origOutX := dev.NodeIDAt(from.Coord, fabric.LocalOutX(from.Cell))
	origOutXQ := dev.NodeIDAt(from.Coord, fabric.LocalOutXQ(from.Cell))
	replOutX := dev.NodeIDAt(to.Coord, fabric.LocalOutX(to.Cell))
	replOutXQ := dev.NodeIDAt(to.Coord, fabric.LocalOutXQ(to.Cell))
	remap := func(n fabric.NodeID) (fabric.NodeID, bool) {
		switch n {
		case origOutX:
			return replOutX, true
		case origOutXQ:
			return replOutXQ, true
		}
		return n, false
	}

	addInput := func(local int) error {
		if dev.PIPMask(from.Coord, local) == 0 {
			return nil
		}
		drv, chain, err := e.view.terminalDriver(from.Coord, local)
		if err != nil {
			return err
		}
		// Self-feedback inputs (the cell reading its own outputs) are
		// paralleled from the ORIGINAL's output in phase 1 — that is how
		// the replica acquires the same state — and handed over to the
		// replica's own output during phase-2 output paralleling.
		_, self := remap(drv)
		replicaLocal := replicaPinLocal(local, from.Cell, to.Cell)
		p.inputs = append(p.inputs, inputPlan{
			pinLocal:  local,
			driver:    drv,
			oldChain:  chain,
			selfFeed:  self,
			replicaIn: dev.NodeIDAt(to.Coord, replicaLocal),
		})
		return nil
	}
	for k := 0; k < fabric.LUTInputs; k++ {
		if err := addInput(fabric.LocalPinI(from.Cell, k)); err != nil {
			return nil, err
		}
	}

	// D (BX) and CE nets.
	if cfg.DFromBX {
		_, chain, err := e.view.terminalDriver(from.Coord, fabric.LocalPinBX(from.Cell))
		if err != nil {
			return nil, err
		}
		p.bxOldChain = chain
	}
	if cfg.CEUsed {
		drv, chain, err := e.view.terminalDriver(from.Coord, fabric.LocalPinCE(from.Cell))
		if err != nil {
			return nil, err
		}
		d, _ := remap(drv)
		p.ceDriver = d
		p.ceOldChain = chain
	}

	// --- outputs ---------------------------------------------------------
	for _, out := range []fabric.NodeID{origOutX, origOutXQ} {
		sinks, tree := e.view.forwardCone(out)
		var kept []terminalSink
		for _, s := range sinks {
			// Self-feedback sinks (the cell's own pins) are handled by the
			// input remap, not by output paralleling.
			if c, local, ok := dev.SplitNode(s.node); ok && c == from.Coord {
				kind, _, idx := fabric.DecodeLocal(local)
				if (kind == fabric.KindPinI && idx/fabric.LUTInputs == from.Cell) ||
					(kind == fabric.KindPinBX && idx == from.Cell) ||
					(kind == fabric.KindPinCE && idx == from.Cell) {
					continue
				}
			}
			kept = append(kept, s)
		}
		p.outSinks[out] = kept
		p.outTree[out] = tree
	}

	// --- aux placement ----------------------------------------------------
	if p.needsAux {
		aux, err := e.view.findFreeCLB(to.Coord, from.Coord, to.Coord)
		if err != nil {
			return nil, err
		}
		p.aux = aux
	}

	// --- route everything with free resources only ------------------------
	if err := e.routePlan(p); err != nil {
		return nil, err
	}
	return p, nil
}

// replicaPinLocal maps a pin local id of the source cell to the equivalent
// pin of the destination cell.
func replicaPinLocal(local, fromCell, toCell int) int {
	kind, _, idx := fabric.DecodeLocal(local)
	switch kind {
	case fabric.KindPinI:
		return fabric.LocalPinI(toCell, idx%fabric.LUTInputs)
	case fabric.KindPinBX:
		return fabric.LocalPinBX(toCell)
	case fabric.KindPinCE:
		return fabric.LocalPinCE(toCell)
	}
	_ = fromCell
	return local
}

// destinationFree verifies the target cell, its pins and outputs are unused.
func (e *Engine) destinationFree(to fabric.CellRef) error {
	dev := e.Dev
	if dev.ReadCell(to).InUse() {
		return fmt.Errorf("%w: %v configured", ErrDestinationBusy, to)
	}
	locals := []int{
		fabric.LocalOutX(to.Cell), fabric.LocalOutXQ(to.Cell),
		fabric.LocalPinBX(to.Cell), fabric.LocalPinCE(to.Cell),
	}
	for k := 0; k < fabric.LUTInputs; k++ {
		locals = append(locals, fabric.LocalPinI(to.Cell, k))
	}
	for _, l := range locals {
		if e.view.used[dev.NodeIDAt(to.Coord, l)] {
			return fmt.Errorf("%w: node %v/%d in use", ErrDestinationBusy, to.Coord, l)
		}
		if fabric.IsLocalSink(l) && dev.PIPMask(to.Coord, l) != 0 {
			return fmt.Errorf("%w: pin %v/%d has enabled PIPs", ErrDestinationBusy, to.Coord, l)
		}
	}
	return nil
}

// routePlan routes the parallel input paths, aux wiring and output paths.
// The engine's router is reused across relocations — Reset is O(1) and the
// fanout cache persists, so routing allocations stay proportional to the
// paths found, not to the device.
func (e *Engine) routePlan(p *cellPlan) error {
	dev := e.Dev
	r := e.router
	r.Reset()
	for n := range e.view.used {
		r.Block(n)
	}
	// The replica's own outputs are legal sources even though planning
	// marked nothing there; they are free by destinationFree.
	replOutX := dev.NodeIDAt(p.to.Coord, fabric.LocalOutX(p.to.Cell))
	replOutXQ := dev.NodeIDAt(p.to.Coord, fabric.LocalOutXQ(p.to.Cell))

	var nets []route.Net
	kind := []string{}

	// Input parallels (I pins).
	for i := range p.inputs {
		in := &p.inputs[i]
		nets = append(nets, route.Net{
			Name:   fmt.Sprintf("in%d", in.pinLocal),
			Source: in.driver,
			Sinks:  []fabric.NodeID{in.replicaIn},
		})
		kind = append(kind, fmt.Sprintf("input:%d", i))
	}

	if p.needsAux {
		muxI := func(k int) fabric.NodeID { return dev.NodeIDAt(p.aux, fabric.LocalPinI(auxCellMux, k)) }
		orI := func(k int) fabric.NodeID { return dev.NodeIDAt(p.aux, fabric.LocalPinI(auxCellOr, k)) }
		muxOut := dev.NodeIDAt(p.aux, fabric.LocalOutX(auxCellMux))
		orOut := dev.NodeIDAt(p.aux, fabric.LocalOutX(auxCellOr))
		ceConst := dev.NodeIDAt(p.aux, fabric.LocalOutX(auxCellCe))
		relConst := dev.NodeIDAt(p.aux, fabric.LocalOutX(auxCellReloc))
		origXQ := dev.NodeIDAt(p.from.Coord, fabric.LocalOutXQ(p.from.Cell))

		// Replica D value: own comb output, or the (possibly remapped)
		// BX net driver for DFromBX cells.
		replD := replOutX
		if p.cfg.DFromBX {
			replD, _ = remapNode(p.bxOldChain[0], p, dev)
		}

		nets = append(nets,
			route.Net{Name: "aux_origXQ", Source: origXQ, Sinks: []fabric.NodeID{muxI(0)}},
			route.Net{Name: "aux_replD", Source: replD, Sinks: []fabric.NodeID{muxI(1)}},
			route.Net{Name: "aux_ce", Source: p.ceDriver, Sinks: []fabric.NodeID{muxI(2), orI(0)}},
			route.Net{Name: "aux_rel", Source: relConst, Sinks: []fabric.NodeID{muxI(3)}},
			route.Net{Name: "aux_cec", Source: ceConst, Sinks: []fabric.NodeID{orI(1)}},
			route.Net{Name: "aux_mux_bx", Source: muxOut, Sinks: []fabric.NodeID{dev.NodeIDAt(p.to.Coord, fabric.LocalPinBX(p.to.Cell))}},
			route.Net{Name: "aux_or_ce", Source: orOut, Sinks: []fabric.NodeID{dev.NodeIDAt(p.to.Coord, fabric.LocalPinCE(p.to.Cell))}},
			// Deferred: the real CE net to the replica CE pin (step 5).
			route.Net{Name: "ce_final", Source: p.ceDriver, Sinks: []fabric.NodeID{dev.NodeIDAt(p.to.Coord, fabric.LocalPinCE(p.to.Cell))}},
		)
		kind = append(kind, "aux0", "aux1", "aux2", "aux3", "aux4", "aux5", "aux6", "ce_final")
		if p.cfg.DFromBX {
			drv, _ := remapNode(p.bxOldChain[0], p, dev)
			nets = append(nets, route.Net{Name: "bx_final", Source: drv,
				Sinks: []fabric.NodeID{dev.NodeIDAt(p.to.Coord, fabric.LocalPinBX(p.to.Cell))}})
			kind = append(kind, "bx_final")
		}
	} else {
		// Plain two-phase: BX and CE nets parallel directly.
		if p.cfg.DFromBX {
			drv, _ := remapNode(p.bxOldChain[0], p, dev)
			nets = append(nets, route.Net{Name: "bx", Source: drv,
				Sinks: []fabric.NodeID{dev.NodeIDAt(p.to.Coord, fabric.LocalPinBX(p.to.Cell))}})
			kind = append(kind, "bx_plain")
		}
		if p.cfg.CEUsed {
			nets = append(nets, route.Net{Name: "ce", Source: p.ceDriver,
				Sinks: []fabric.NodeID{dev.NodeIDAt(p.to.Coord, fabric.LocalPinCE(p.to.Cell))}})
			kind = append(kind, "ce_plain")
		}
	}

	// Output parallels. Self-feedback replica pins become extra sinks of
	// the corresponding replica output.
	selfExtra := map[fabric.NodeID][]fabric.NodeID{}
	for i := range p.inputs {
		if p.inputs[i].selfFeed {
			selfExtra[p.inputs[i].driver] = append(selfExtra[p.inputs[i].driver], p.inputs[i].replicaIn)
		}
	}
	outPairs := []struct{ orig, repl fabric.NodeID }{
		{dev.NodeIDAt(p.from.Coord, fabric.LocalOutX(p.from.Cell)), replOutX},
		{dev.NodeIDAt(p.from.Coord, fabric.LocalOutXQ(p.from.Cell)), replOutXQ},
	}
	for _, op := range outPairs {
		var sk []fabric.NodeID
		for _, s := range p.outSinks[op.orig] {
			sk = append(sk, s.node)
		}
		sk = append(sk, selfExtra[op.orig]...)
		if len(sk) == 0 {
			continue
		}
		nets = append(nets, route.Net{Name: "out", Source: op.repl, Sinks: sk})
		kind = append(kind, fmt.Sprintf("out:%d", op.orig))
	}

	routed, err := r.RouteDisjoint(nets)
	if err != nil {
		return fmt.Errorf("relocate: routing replica connections: %w", err)
	}

	// Distribute routed paths back into the plan.
	for i, rn := range routed {
		switch {
		case len(kind[i]) > 6 && kind[i][:6] == "input:":
			var idx int
			fmt.Sscanf(kind[i], "input:%d", &idx)
			p.inputs[idx].newPath = rn.Paths[p.inputs[idx].replicaIn]
		case kind[i] == "aux5":
			p.muxToBX = rn.Paths[rn.Sinks[0]]
			p.auxPaths = append(p.auxPaths, pathsOf(rn)...)
		case kind[i] == "aux6":
			p.orToCE = rn.Paths[rn.Sinks[0]]
			p.auxPaths = append(p.auxPaths, pathsOf(rn)...)
		case kind[i] == "ce_final":
			p.ceNewPath = rn.Paths[rn.Sinks[0]]
		case kind[i] == "bx_final", kind[i] == "bx_plain":
			p.bxNewPath = rn.Paths[rn.Sinks[0]]
		case kind[i] == "ce_plain":
			p.ceNewPath = rn.Paths[rn.Sinks[0]]
		case len(kind[i]) > 4 && kind[i][:4] == "out:":
			for _, s := range rn.Sinks {
				p.newOut[rn.Source] = append(p.newOut[rn.Source], rn.Paths[s])
			}
		default: // aux0..aux4
			p.auxPaths = append(p.auxPaths, pathsOf(rn)...)
		}
	}
	return nil
}

// planFrames conservatively predicts the configuration frames executing a
// plan will write: the source, destination and aux cells' slot ranges, and —
// because PIP toggles are encoded at the sink side — the PIP slot range of
// every sink node appearing in any path, chain or tree of the plan, plus the
// config frame of every pad touched. The overlap gate compares this set with
// the in-flight stream; over-approximation only costs a serial fallback,
// while the stage-time conflict gate in the tool backstops any write the
// prediction might miss.
func (e *Engine) planFrames(p *cellPlan) []fabric.FrameAddr {
	dev := e.Dev
	seen := map[fabric.FrameAddr]bool{}
	var out []fabric.FrameAddr
	add := func(addrs ...fabric.FrameAddr) {
		for _, a := range addrs {
			if !seen[a] {
				seen[a] = true
				out = append(out, a)
			}
		}
	}
	cell := func(ref fabric.CellRef) {
		start, width := dev.CellSlotRange(ref.Cell)
		add(dev.TouchedFrames(ref.Coord, [2]int{start, width})...)
	}
	node := func(n fabric.NodeID) {
		if pad, ok := dev.PadOfNode(n); ok {
			add(dev.PadConfigFrame(pad))
			return
		}
		c, local, ok := dev.SplitNode(n)
		if !ok || !fabric.IsLocalSink(local) {
			return
		}
		start, width := dev.PIPSlotRange(local)
		add(dev.TouchedFrames(c, [2]int{start, width})...)
	}
	paths := func(ps ...[]fabric.NodeID) {
		for _, path := range ps {
			for _, n := range path {
				node(n)
			}
		}
	}

	cell(p.from)
	cell(p.to)
	if p.needsAux {
		for c := 0; c < fabric.CellsPerCLB; c++ {
			cell(fabric.CellRef{Coord: p.aux, Cell: c})
		}
	}
	for i := range p.inputs {
		paths(p.inputs[i].newPath, p.inputs[i].oldChain)
	}
	paths(p.ceNewPath, p.bxNewPath, p.orToCE, p.muxToBX, p.ceOldChain, p.bxOldChain)
	for _, ps := range p.auxPaths {
		paths(ps)
	}
	for _, outPaths := range p.newOut {
		paths(outPaths...)
	}
	for _, tree := range p.outTree {
		paths(tree)
	}
	for _, sinks := range p.outSinks {
		for _, s := range sinks {
			node(s.node)
		}
	}
	return out
}

func pathsOf(rn route.RoutedNet) [][]fabric.NodeID {
	var out [][]fabric.NodeID
	for _, s := range rn.Sinks {
		out = append(out, rn.Paths[s])
	}
	return out
}

func remapNode(n fabric.NodeID, p *cellPlan, dev *fabric.Device) (fabric.NodeID, bool) {
	switch n {
	case dev.NodeIDAt(p.from.Coord, fabric.LocalOutX(p.from.Cell)):
		return dev.NodeIDAt(p.to.Coord, fabric.LocalOutX(p.to.Cell)), true
	case dev.NodeIDAt(p.from.Coord, fabric.LocalOutXQ(p.from.Cell)):
		return dev.NodeIDAt(p.to.Coord, fabric.LocalOutXQ(p.to.Cell)), true
	}
	return n, false
}

// checkRAMColumns rejects relocations whose frame writes would touch a
// column containing a LUT/RAM (paper §2).
func (e *Engine) checkRAMColumns(p *cellPlan) error {
	cols := map[int]bool{p.from.Col: true, p.to.Col: true}
	if p.needsAux {
		cols[p.aux.Col] = true
	}
	noteAll := func(paths ...[]fabric.NodeID) {
		for _, path := range paths {
			for _, n := range path {
				if c, _, ok := e.Dev.SplitNode(n); ok {
					cols[c.Col] = true
				}
			}
		}
	}
	for _, in := range p.inputs {
		noteAll(in.newPath, in.oldChain)
	}
	noteAll(p.ceNewPath, p.bxNewPath, p.orToCE, p.muxToBX, p.ceOldChain, p.bxOldChain)
	for _, paths := range p.newOut {
		noteAll(paths...)
	}
	for _, tree := range p.outTree {
		noteAll(tree)
	}
	for _, ps := range p.auxPaths {
		noteAll(ps)
	}
	for col := range cols {
		for row := 0; row < e.Dev.Rows; row++ {
			for cell := 0; cell < fabric.CellsPerCLB; cell++ {
				ref := fabric.CellRef{Coord: fabric.Coord{Row: row, Col: col}, Cell: cell}
				if ref == p.from {
					continue
				}
				cc := e.Dev.ReadCell(ref)
				if cc.RAM && cc.InUse() {
					return fmt.Errorf("%w: RAM at %v, column %d", ErrRAMInColumn, ref, col)
				}
			}
		}
	}
	return nil
}
