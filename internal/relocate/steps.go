package relocate

import (
	"fmt"
	"slices"
	"sort"

	"repro/internal/fabric"
)

// execute runs the Fig. 4 procedure for a planned cell relocation. Every
// action is a partial-reconfiguration frame write; application clock cycles
// elapse between steps via e.tick. The whole procedure runs inside one
// coalescing batch: frame writes between consecutive wait points stream as a
// single sync/CRC-bracketed partial bitstream (ticks flush, so the paper's
// ordering of configuration actions against clock edges is preserved).
func (e *Engine) execute(p *cellPlan) error {
	return e.Tool.InBatch(func() error {
		if p.needsAux {
			return e.executeGated(p)
		}
		return e.executePlain(p)
	})
}

// executePlain is the two-phase procedure of Fig. 2 for combinational cells
// and synchronous free-running-clock cells.
func (e *Engine) executePlain(p *cellPlan) error {
	// Phase 1: copy the internal configuration and parallel the inputs.
	replCfg := p.cfg
	if err := e.Tool.WriteCell(p.to, replCfg); err != nil {
		return err
	}
	if err := e.enableInputParallels(p); err != nil {
		return err
	}
	if p.cfg.DFromBX {
		if err := e.Tool.SetPath(p.bxNewPath, true); err != nil {
			return err
		}
	}
	if p.cfg.CEUsed {
		if err := e.Tool.SetPath(p.ceNewPath, true); err != nil {
			return err
		}
	}
	// The replica flip-flops acquire the state from the paralleled inputs.
	if err := e.tick(2); err != nil {
		return err
	}
	// Phase 2: parallel the outputs, overlap for at least one clock, then
	// disconnect the original — outputs first, inputs last.
	if e.PrePhase2 != nil {
		if err := e.PrePhase2(p.from, p.to); err != nil {
			return err
		}
	}
	if err := e.enableOutputParallels(p); err != nil {
		return err
	}
	if err := e.tick(1); err != nil {
		return err
	}
	if err := e.disconnectOriginalOutputs(p); err != nil {
		return err
	}
	if err := e.disconnectOriginalInputs(p); err != nil {
		return err
	}
	return e.tick(0)
}

// executeGated is the full Fig. 4 flow with the auxiliary relocation
// circuit of Fig. 3, used for gated-clock FFs and asynchronous latches.
func (e *Engine) executeGated(p *cellPlan) error {
	dev := e.Dev

	// Step 1: "Connect signals to the auxiliary relocation circuit; place
	// CLB input signals in parallel."
	// 1a. Configure the aux CLB: OR gate, transfer mux, two inactive
	//     control constants.
	if err := e.Tool.WriteCell(fabric.CellRef{Coord: p.aux, Cell: auxCellOr},
		fabric.CellConfig{Used: true, LUT: fabric.ExpandLUT(fabric.LUTOr2, 2)}); err != nil {
		return err
	}
	if err := e.Tool.WriteCell(fabric.CellRef{Coord: p.aux, Cell: auxCellMux},
		fabric.CellConfig{Used: true, LUT: auxMuxLUT()}); err != nil {
		return err
	}
	if err := e.Tool.WriteCell(fabric.CellRef{Coord: p.aux, Cell: auxCellCe},
		fabric.CellConfig{Used: true, LUT: fabric.LUTConst0}); err != nil {
		return err
	}
	if err := e.Tool.WriteCell(fabric.CellRef{Coord: p.aux, Cell: auxCellReloc},
		fabric.CellConfig{Used: true, LUT: fabric.LUTConst0}); err != nil {
		return err
	}
	// 1b. Copy the internal configuration into the replica, with D taken
	//     from BX (the mux output) and CE from the pin (the OR output).
	replCfg := p.cfg
	replCfg.DFromBX = true
	replCfg.CEUsed = true
	if err := e.Tool.WriteCell(p.to, replCfg); err != nil {
		return err
	}
	// 1c. Enable the aux wiring and parallel the inputs.
	for _, path := range p.auxPaths {
		if err := e.Tool.SetPath(path, true); err != nil {
			return err
		}
	}
	if err := e.enableInputParallels(p); err != nil {
		return err
	}

	// Step 2: "Activate relocation and clock enable control" — two atomic
	// LUT rewrites driven through the reconfiguration memory.
	if err := e.setAuxConst(p.aux, auxCellReloc, true); err != nil {
		return err
	}
	if err := e.setAuxConst(p.aux, auxCellCe, true); err != nil {
		return err
	}

	// "> 2 CLK pulse": the replica storage element captures the original's
	// state through the mux (CE inactive) or tracks the same update (CE
	// active).
	if err := e.tick(3); err != nil {
		return err
	}

	// Step 3: "Deactivate clock enable control."
	if err := e.setAuxConst(p.aux, auxCellCe, false); err != nil {
		return err
	}

	// Step 4: "Connect the clock enable inputs of both CLBs": parallel the
	// real CE net onto the replica CE pin (equal to the OR output), then
	// drop the OR path.
	if err := e.Tool.SetPath(p.ceNewPath, true); err != nil {
		return err
	}
	if err := e.freeChain(p.orToCE); err != nil {
		return err
	}

	// Step 5: "Deactivate relocation control": the mux now passes the
	// replica's own D value.
	if err := e.setAuxConst(p.aux, auxCellReloc, false); err != nil {
		return err
	}

	// Step 6: "Disconnect all the auxiliary relocation circuit signals."
	// 6a. Move the replica's D source off the mux: for LUT-fed cells flip
	//     DFromBX back (the LUT output equals the mux output now); for
	//     BX-fed cells parallel the real net first.
	if p.cfg.DFromBX {
		if err := e.Tool.SetPath(p.bxNewPath, true); err != nil {
			return err
		}
	} else {
		final := p.cfg
		if err := e.Tool.WriteCell(p.to, finalGatedConfig(final)); err != nil {
			return err
		}
	}
	if err := e.freeChain(p.muxToBX); err != nil {
		return err
	}
	// 6b. Free the remaining aux wiring and the aux CLB itself.
	for _, path := range p.auxPaths {
		if err := e.freeChain(path); err != nil {
			return err
		}
	}
	for cell := 0; cell < fabric.CellsPerCLB; cell++ {
		if err := e.Tool.WriteCell(fabric.CellRef{Coord: p.aux, Cell: cell}, fabric.CellConfig{}); err != nil {
			return err
		}
	}
	_ = dev

	// Step 7: "Place CLB outputs in parallel."
	if e.PrePhase2 != nil {
		if err := e.PrePhase2(p.from, p.to); err != nil {
			return err
		}
	}
	if err := e.enableOutputParallels(p); err != nil {
		return err
	}

	// "> 1 CLK pulse" of overlap.
	if err := e.tick(2); err != nil {
		return err
	}

	// Step 8: "Disconnect the original CLB outputs" then
	// Step 9: "Disconnect the original CLB inputs."
	if err := e.disconnectOriginalOutputs(p); err != nil {
		return err
	}
	if err := e.disconnectOriginalInputs(p); err != nil {
		return err
	}
	return e.tick(0)
}

// finalGatedConfig is the replica's end-state configuration for a cell whose
// D comes from its own LUT.
func finalGatedConfig(orig fabric.CellConfig) fabric.CellConfig {
	out := orig
	out.DFromBX = false
	return out
}

// setAuxConst rewrites a control constant cell's LUT. The constant cells
// are placed so the rewrite is a single frame — one atomic configuration
// action, exactly "driven through the reconfiguration memory".
func (e *Engine) setAuxConst(aux fabric.Coord, cell int, on bool) error {
	lut := fabric.LUTConst0
	if on {
		lut = fabric.LUTConst1
	}
	return e.Tool.WriteCell(fabric.CellRef{Coord: aux, Cell: cell},
		fabric.CellConfig{Used: true, LUT: lut})
}

// enableInputParallels turns on the replica-side copies of every input net
// (source-side PIPs first, so wires are always driven before pins attach).
func (e *Engine) enableInputParallels(p *cellPlan) error {
	for _, in := range p.inputs {
		if err := e.Tool.SetPath(in.newPath, true); err != nil {
			return err
		}
	}
	return nil
}

// enableOutputParallels connects the replica outputs in parallel with the
// original's to every terminal sink (phase 2 of Fig. 2).
func (e *Engine) enableOutputParallels(p *cellPlan) error {
	for _, src := range sortedNodeKeysPaths(p.newOut) {
		for _, path := range p.newOut[src] {
			if err := e.Tool.SetPath(path, true); err != nil {
				return err
			}
		}
	}
	return nil
}

func sortedNodeKeysPaths(m map[fabric.NodeID][][]fabric.NodeID) []fabric.NodeID {
	keys := make([]fabric.NodeID, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

func sortedNodeKeysSinks(m map[fabric.NodeID][]terminalSink) []fabric.NodeID {
	keys := make([]fabric.NodeID, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// disconnectOriginalOutputs drops the original's output connections: first
// the terminal-sink PIPs (each sink keeps its replica-side driver), then the
// old distribution tree.
func (e *Engine) disconnectOriginalOutputs(p *cellPlan) error {
	dev := e.Dev
	// Phase-1 self-feedback parallels hang off the original's outputs; the
	// replica pins now also have replica-side drivers, so the whole
	// original-side path goes away (sink hop first).
	for _, in := range p.inputs {
		if in.selfFeed {
			if err := e.freeChain(in.newPath); err != nil {
				return err
			}
		}
	}
	for _, orig := range sortedNodeKeysSinks(p.outSinks) {
		sinks := p.outSinks[orig]
		for _, s := range sinks {
			if err := e.Tool.SetPIP(s.lastSrc, s.node, false); err != nil {
				return err
			}
		}
		// Free the old tree: disable every enabled PIP between tree nodes.
		tree := p.outTree[orig]
		inTree := map[fabric.NodeID]bool{}
		for _, n := range tree {
			inTree[n] = true
		}
		for _, n := range tree {
			for _, edge := range dev.FanoutOf(n) {
				if !inTree[edge.Sink] {
					continue
				}
				if dev.PIPMask(edge.SinkTile, edge.SinkLocal)>>edge.Bit&1 == 1 {
					if err := e.Tool.SetPIP(n, edge.Sink, false); err != nil {
						return err
					}
				}
			}
		}
	}
	return nil
}

// disconnectOriginalInputs drops the original's input connections (freeing
// the exclusive suffix of each input net) and clears the original cell,
// returning it to the pool of free resources.
func (e *Engine) disconnectOriginalInputs(p *cellPlan) error {
	free := func(chain []fabric.NodeID) error {
		if len(chain) == 0 {
			return nil
		}
		// The retiring pin's own PIPs always go away (even when the wire
		// feeding it is shared with other sinks and must stay).
		if err := e.Tool.ClearSinkPIPs(chain[len(chain)-1]); err != nil {
			return err
		}
		suffix := e.view.exclusiveSuffix(chain)
		return e.freeChain(suffix)
	}
	for _, in := range p.inputs {
		if err := free(in.oldChain); err != nil {
			return err
		}
	}
	if err := free(p.bxOldChain); err != nil {
		return err
	}
	if err := free(p.ceOldChain); err != nil {
		return err
	}
	return e.Tool.WriteCell(p.from, fabric.CellConfig{})
}

// freeChain disables the PIPs along a chain from the sink side backwards,
// so no floating wire is ever left feeding a live pin.
func (e *Engine) freeChain(chain []fabric.NodeID) error {
	for i := len(chain) - 1; i >= 1; i-- {
		if err := e.Tool.SetPIP(chain[i-1], chain[i], false); err != nil {
			return err
		}
	}
	return nil
}

// RelocateCLB relocates every active cell of a CLB to the same cell indices
// of the destination CLB, one cell at a time ("CLBs relocation is performed
// individually").
func (e *Engine) RelocateCLB(from, to fabric.Coord) ([]*CellMove, error) {
	var moves []*CellMove
	for cell := 0; cell < fabric.CellsPerCLB; cell++ {
		ref := fabric.CellRef{Coord: from, Cell: cell}
		if !e.Dev.ReadCell(ref).InUse() {
			continue
		}
		mv, err := e.RelocateCell(ref, fabric.CellRef{Coord: to, Cell: cell})
		if err != nil {
			return moves, fmt.Errorf("relocate: CLB %v cell %d: %w", from, cell, err)
		}
		moves = append(moves, mv)
	}
	e.Stats.CLBsRelocated++
	return moves, nil
}

// ReleaseTree disables every enabled PIP in the forward cone of a source
// node (terminal sink hops first), returning the routing to the free pool.
// The tool uses it to decommission a whole function's nets. The view tracks
// each PIP write incrementally, so releasing a tree costs O(tree), not
// O(device).
func (e *Engine) ReleaseTree(src fabric.NodeID) error {
	e.view.refresh()
	sinks, tree := e.view.forwardCone(src)
	for _, s := range sinks {
		if err := e.Tool.SetPIP(s.lastSrc, s.node, false); err != nil {
			return err
		}
	}
	inTree := map[fabric.NodeID]bool{}
	for _, n := range tree {
		inTree[n] = true
	}
	for _, n := range tree {
		for _, edge := range e.Dev.FanoutOf(n) {
			if !inTree[edge.Sink] {
				continue
			}
			if e.Dev.PIPMask(edge.SinkTile, edge.SinkLocal)>>edge.Bit&1 == 1 {
				if err := e.Tool.SetPIP(n, edge.Sink, false); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// ConeNodes returns the forward cone of a source as a flat node set: every
// tree node plus every terminal sink (pins and pads), read from the
// configuration memory without touching it. The facade uses it to compute a
// design's current fabric footprint before a translation-based relocation.
func (e *Engine) ConeNodes(src fabric.NodeID) []fabric.NodeID {
	e.view.refresh()
	sinks, tree := e.view.forwardCone(src)
	out := make([]fabric.NodeID, 0, len(tree)+len(sinks))
	out = append(out, tree...)
	for _, s := range sinks {
		out = append(out, s.node)
	}
	return out
}

// ClearCell zeroes a cell's configuration through the port.
func (e *Engine) ClearCell(ref fabric.CellRef) error {
	return e.Tool.WriteCell(ref, fabric.CellConfig{})
}

// ClearPad disables a pad through the port.
func (e *Engine) ClearPad(pad fabric.PadRef) error {
	return e.Tool.WritePadConfig(pad, fabric.PadConfig{})
}

// OccupiedNodes returns every routing node currently in use on the device,
// derived from the configuration memory (like everything the engine knows).
// The facade rebuilds its shared router from this ground truth instead of
// from per-design book-keeping, which goes stale across relocations.
func (e *Engine) OccupiedNodes() []fabric.NodeID {
	e.view.refresh()
	out := make([]fabric.NodeID, 0, len(e.view.used))
	for n := range e.view.used {
		out = append(out, n)
	}
	slices.Sort(out)
	return out
}
