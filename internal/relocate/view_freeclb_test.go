package relocate

import (
	"math/rand"
	"testing"

	"repro/internal/fabric"
)

// TestFindFreeCLBMatchesFullScan pins the row-bucketed expanding-ring lookup
// to the reference semantics: the nearest free CLB by Manhattan distance,
// ties broken by smaller row then smaller column, exclusions honoured —
// exactly what the previous full scan over the free set computed.
func TestFindFreeCLBMatchesFullScan(t *testing.T) {
	dev := fabric.NewDevice(fabric.TestDevice)
	v := newView(dev)
	rng := rand.New(rand.NewSource(42))

	reference := func(near fabric.Coord, exclude ...fabric.Coord) (fabric.Coord, bool) {
		ex := map[fabric.Coord]bool{}
		for _, c := range exclude {
			ex[c] = true
		}
		best := fabric.Coord{Row: -1}
		bestDist := 1 << 30
		for c := range v.freeCLB {
			if ex[c] {
				continue
			}
			d := c.ManhattanDist(near)
			if d < bestDist ||
				(d == bestDist && (c.Row < best.Row || (c.Row == best.Row && c.Col < best.Col))) {
				best, bestDist = c, d
			}
		}
		return best, best.Row >= 0
	}

	for trial := 0; trial < 300; trial++ {
		// Random occupancy churn: configure or clear a random cell so the
		// free set (and its row buckets) evolves through markTileFree.
		c := fabric.Coord{Row: rng.Intn(dev.Rows), Col: rng.Intn(dev.Cols)}
		ref := fabric.CellRef{Coord: c, Cell: rng.Intn(fabric.CellsPerCLB)}
		if rng.Intn(2) == 0 {
			dev.WriteCell(ref, fabric.CellConfig{Used: true, LUT: fabric.LUTConst1})
		} else {
			dev.WriteCell(ref, fabric.CellConfig{})
		}
		v.refresh()

		near := fabric.Coord{Row: rng.Intn(dev.Rows), Col: rng.Intn(dev.Cols)}
		var exclude []fabric.Coord
		for n := rng.Intn(3); n > 0; n-- {
			exclude = append(exclude, fabric.Coord{Row: rng.Intn(dev.Rows), Col: rng.Intn(dev.Cols)})
		}
		want, wantOK := reference(near, exclude...)
		got, err := v.findFreeCLB(near, exclude...)
		if wantOK != (err == nil) {
			t.Fatalf("trial %d: ring found=%v, scan found=%v", trial, err == nil, wantOK)
		}
		if wantOK && got != want {
			t.Fatalf("trial %d: near=%v exclude=%v: ring %v, scan %v", trial, near, exclude, got, want)
		}
	}
}
