package relocate

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/route"
)

// NetMove reports one completed routing-resource relocation (paper Fig. 5).
type NetMove struct {
	Sink fabric.NodeID
	// OldDelayNs and NewDelayNs are the propagation delays of the two
	// paths; while both were paralleled the observed delay is the longer
	// of the two and the destination input shows an interval of fuzziness
	// (paper Fig. 6).
	OldDelayNs, NewDelayNs float64
	Frames                 int
	Seconds                float64
}

// ParallelDelayNs returns the delay that must be assumed for transient
// analysis while the paths were paralleled: the longer of the two.
func (m *NetMove) ParallelDelayNs() float64 {
	if m.OldDelayNs > m.NewDelayNs {
		return m.OldDelayNs
	}
	return m.NewDelayNs
}

// FuzzinessNs returns the width of the fuzziness interval seen at the
// destination input while both paths carried the signal: the difference of
// the two propagation delays (Fig. 6).
func (m *NetMove) FuzzinessNs() float64 {
	d := m.NewDelayNs - m.OldDelayNs
	if d < 0 {
		d = -d
	}
	return d
}

// RerouteSink relocates the routing resources feeding one sink pin: an
// alternative path from the net's driver is first established in parallel
// with the original, both stay connected for at least one clock, and the
// original path is then disconnected and released for reuse ("the
// interconnections involved are first duplicated in order to establish an
// alternative path, and then disconnected, becoming available to be
// reused"). The old path's exclusive portion returns to the free pool.
func (e *Engine) RerouteSink(sinkTile fabric.Coord, sinkLocal int) (*NetMove, error) {
	e.view.refresh()
	start := e.Tool.Port().Elapsed()
	frames0 := e.Tool.FramesWritten()

	driver, oldChain, err := e.view.terminalDriver(sinkTile, sinkLocal)
	if err != nil {
		return nil, err
	}
	sink := e.Dev.NodeIDAt(sinkTile, sinkLocal)

	// Route the replica path with free resources only (the engine's router
	// is reused; Reset is O(1) and keeps the fanout cache warm).
	r := e.router
	r.Reset()
	for n := range e.view.used {
		r.Block(n)
	}
	routed, err := r.RouteDisjoint([]route.Net{{Name: "reroute", Source: driver, Sinks: []fabric.NodeID{sink}}})
	if err != nil {
		return nil, fmt.Errorf("relocate: no free path for reroute: %w", err)
	}
	newPath := routed[0].Paths[sink]

	mv := &NetMove{
		Sink:       sink,
		OldDelayNs: route.PathDelayNs(e.Dev, oldChain),
		NewDelayNs: route.PathDelayNs(e.Dev, newPath),
	}

	// Duplicate: enable the replica path source-side first.
	if err := e.Tool.SetPath(newPath, true); err != nil {
		return nil, err
	}
	// Both paths in parallel for at least one clock; the observed delay is
	// the longer of the two.
	if err := e.tick(1); err != nil {
		return nil, err
	}
	// Disconnect the original path: sink hop first, then the exclusive
	// wires back towards the shared trunk.
	suffix := e.view.exclusiveSuffix(oldChain)
	// The sink itself now has two drivers; drop only the old one.
	if len(suffix) >= 2 {
		if err := e.freeChain(suffix); err != nil {
			return nil, err
		}
	} else if len(oldChain) >= 2 {
		if err := e.Tool.SetPIP(oldChain[len(oldChain)-2], sink, false); err != nil {
			return nil, err
		}
	}
	if err := e.tick(0); err != nil {
		return nil, err
	}

	e.Stats.NetsRelocated++
	mv.Frames = e.Tool.FramesWritten() - frames0
	mv.Seconds = e.Tool.Port().Elapsed() - start
	return mv, nil
}

// RerouteSinkVia is RerouteSink with a detour requirement: the replica path
// must pass through the given region's boundary (used by defragmentation to
// clear a corridor). An empty avoid set degenerates to RerouteSink.
func (e *Engine) RerouteSinkVia(sinkTile fabric.Coord, sinkLocal int, avoid []fabric.Coord) (*NetMove, error) {
	if len(avoid) == 0 {
		return e.RerouteSink(sinkTile, sinkLocal)
	}
	e.view.refresh()
	start := e.Tool.Port().Elapsed()
	frames0 := e.Tool.FramesWritten()

	driver, oldChain, err := e.view.terminalDriver(sinkTile, sinkLocal)
	if err != nil {
		return nil, err
	}
	sink := e.Dev.NodeIDAt(sinkTile, sinkLocal)
	r := e.router
	r.Reset()
	for n := range e.view.used {
		r.Block(n)
	}
	// Block every wire of the avoided tiles.
	for _, c := range avoid {
		for local := 0; local < fabric.NodeSlots; local++ {
			kind, _, _ := fabric.DecodeLocal(local)
			if kind == fabric.KindSingle || kind == fabric.KindHex {
				r.Block(e.Dev.NodeIDAt(c, local))
			}
		}
	}
	routed, err := r.RouteDisjoint([]route.Net{{Name: "detour", Source: driver, Sinks: []fabric.NodeID{sink}}})
	if err != nil {
		return nil, fmt.Errorf("relocate: no detour path: %w", err)
	}
	newPath := routed[0].Paths[sink]
	mv := &NetMove{
		Sink:       sink,
		OldDelayNs: route.PathDelayNs(e.Dev, oldChain),
		NewDelayNs: route.PathDelayNs(e.Dev, newPath),
	}
	if err := e.Tool.SetPath(newPath, true); err != nil {
		return nil, err
	}
	if err := e.tick(1); err != nil {
		return nil, err
	}
	suffix := e.view.exclusiveSuffix(oldChain)
	if len(suffix) >= 2 {
		if err := e.freeChain(suffix); err != nil {
			return nil, err
		}
	}
	if err := e.tick(0); err != nil {
		return nil, err
	}
	e.Stats.NetsRelocated++
	mv.Frames = e.Tool.FramesWritten() - frames0
	mv.Seconds = e.Tool.Port().Elapsed() - start
	return mv, nil
}
