package relocate_test

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/bitstream"
	"repro/internal/fabric"
	"repro/internal/itc99"
	"repro/internal/jtag"
	"repro/internal/netlist"
	"repro/internal/place"
	"repro/internal/relocate"
	"repro/internal/sim"
)

// harness glues the relocation engine to a lock-step verified design: the
// application keeps running (with random inputs) while the engine works,
// and every frame write is checked for glitches on the observed outputs.
type harness struct {
	t    *testing.T
	ls   *sim.LockStep
	eng  *relocate.Engine
	rng  uint64
	last []sim.Val
}

func newHarness(t *testing.T, dev *fabric.Device, d *place.Design, port bitstream.Port) *harness {
	t.Helper()
	ls, err := sim.NewLockStep(d)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := relocate.NewEngine(dev, port)
	if err != nil {
		t.Fatal(err)
	}
	h := &harness{t: t, ls: ls, eng: eng, rng: 0xA5A5}
	// Warm the design up so state is non-trivial before relocating.
	for i := 0; i < 10; i++ {
		if err := ls.Step(h.inputs()); err != nil {
			t.Fatalf("warm-up: %v", err)
		}
	}
	h.last = ls.OutputSnapshot()
	eng.Clock = func(cycles int) error {
		for i := 0; i < cycles; i++ {
			if err := h.ls.Step(h.inputs()); err != nil {
				return err
			}
		}
		h.last = h.ls.OutputSnapshot()
		return nil
	}
	eng.Tool.VerifyHook = func() error {
		if err := h.ls.VerifyQuiescent(h.last); err != nil {
			return err
		}
		h.last = h.ls.OutputSnapshot()
		return nil
	}
	return h
}

func (h *harness) inputs() []bool {
	n := len(h.ls.Design.NL.Inputs())
	in := make([]bool, n)
	for i := range in {
		h.rng = h.rng*6364136223846793005 + 1442695040888963407
		in[i] = h.rng>>37&1 == 1
	}
	return in
}

// run continues the application for n more cycles and re-checks state.
func (h *harness) run(n int) {
	h.t.Helper()
	for i := 0; i < n; i++ {
		if err := h.ls.Step(h.inputs()); err != nil {
			h.t.Fatalf("post-relocation divergence: %v", err)
		}
	}
	if err := h.ls.CheckState(); err != nil {
		h.t.Fatalf("state check: %v", err)
	}
	h.last = h.ls.OutputSnapshot() // keep the glitch baseline current
}

func directPort(dev *fabric.Device) bitstream.Port {
	return bitstream.NewParallelPort(bitstream.NewController(dev), 50e6)
}

func placeDesign(t *testing.T, dev *fabric.Device, name string) *place.Design {
	t.Helper()
	nl, err := itc99.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	region, err := place.AutoRegion(dev, nl, 2, 2, 0.35)
	if err != nil {
		t.Fatal(err)
	}
	d, err := place.Place(dev, nl, place.Options{Region: region})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// findCellWith returns a placed cell whose netlist node matches pred.
func findCellWith(d *place.Design, pred func(netlist.Node) bool) (fabric.CellRef, netlist.ID, bool) {
	for id, nd := range d.NL.Nodes {
		if pred(nd) {
			if ref, ok := d.CellOf[netlist.ID(id)]; ok {
				return ref, netlist.ID(id), true
			}
		}
	}
	return fabric.CellRef{}, 0, false
}

func freeCellAt(dev *fabric.Device, c fabric.Coord, cell int) fabric.CellRef {
	return fabric.CellRef{Coord: c, Cell: cell}
}

func TestRelocateCombinationalCell(t *testing.T) {
	dev := fabric.NewDevice(fabric.XCV50)
	d := placeDesign(t, dev, "b01")
	h := newHarness(t, dev, d, directPort(dev))
	from, id, ok := findCellWith(d, func(nd netlist.Node) bool { return nd.Kind == netlist.KindLUT })
	if !ok {
		t.Fatal("no LUT cell found")
	}
	// Skip if an FF shares the cell (then it is a sequential move).
	if cc := dev.ReadCell(from); cc.FF {
		t.Skip("chosen LUT is packed with an FF")
	}
	to := freeCellAt(dev, fabric.Coord{Row: 10, Col: 10}, from.Cell)
	mv, err := h.eng.RelocateCell(from, to)
	if err != nil {
		t.Fatalf("relocate: %v", err)
	}
	if mv.Frames == 0 || mv.Seconds <= 0 {
		t.Errorf("suspicious accounting: %+v", mv)
	}
	d.Rebind(from, to)
	h.run(50)
	// The original cell is free again.
	if dev.ReadCell(from).InUse() {
		t.Error("original cell still configured")
	}
	_ = id
}

func TestRelocateFreeRunningFF(t *testing.T) {
	dev := fabric.NewDevice(fabric.XCV50)
	d := placeDesign(t, dev, "b01") // free-running style
	h := newHarness(t, dev, d, directPort(dev))
	from, _, ok := findCellWith(d, func(nd netlist.Node) bool {
		return nd.Kind == netlist.KindFF && nd.CE == netlist.None
	})
	if !ok {
		t.Fatal("no free-running FF found")
	}
	to := freeCellAt(dev, fabric.Coord{Row: 11, Col: 11}, from.Cell)
	if _, err := h.eng.RelocateCell(from, to); err != nil {
		t.Fatalf("relocate: %v", err)
	}
	d.Rebind(from, to)
	h.run(60)
}

func TestRelocateGatedClockFF(t *testing.T) {
	dev := fabric.NewDevice(fabric.XCV50)
	d := placeDesign(t, dev, "b03") // gated-clock style
	h := newHarness(t, dev, d, directPort(dev))
	from, _, ok := findCellWith(d, func(nd netlist.Node) bool {
		return nd.Kind == netlist.KindFF && nd.CE != netlist.None
	})
	if !ok {
		t.Fatal("no gated FF found")
	}
	to := freeCellAt(dev, fabric.Coord{Row: 12, Col: 12}, from.Cell)
	mv, err := h.eng.RelocateCell(from, to)
	if err != nil {
		t.Fatalf("relocate: %v", err)
	}
	if !mv.UsedAux {
		t.Error("gated-clock relocation did not use the auxiliary circuit")
	}
	d.Rebind(from, to)
	h.run(60)
	// The aux CLB must be free again.
	for cell := 0; cell < fabric.CellsPerCLB; cell++ {
		if dev.ReadCell(fabric.CellRef{Coord: mv.Aux, Cell: cell}).InUse() {
			t.Errorf("aux cell %d still configured", cell)
		}
	}
}

// gatedHoldDesign builds a one-FF gated-clock design: FF captures input d
// when input ce is high. Used to reproduce the paper's Fig. 3 argument with
// CE held LOW across the whole relocation: the aux circuit must transfer the
// state anyway; the plain procedure must fail.
func gatedHoldDesign(t *testing.T, dev *fabric.Device) *place.Design {
	t.Helper()
	nl := netlist.New("gatedhold")
	din := nl.Input("d")
	ce := nl.Input("ce")
	ff := nl.FF("r", din, ce, false)
	nl.Output("q", ff)
	d, err := place.Place(dev, nl, place.Options{Region: fabric.Rect{Row: 3, Col: 3, H: 2, W: 2}})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// runGatedHoldRelocation warms the FF to state 1, holds CE low with D
// toggling while the engine relocates the FF cell, then checks state.
func runGatedHoldRelocation(t *testing.T, forcePlain bool) error {
	t.Helper()
	dev := fabric.NewDevice(fabric.XCV50)
	d := gatedHoldDesign(t, dev)
	ls, err := sim.NewLockStep(d)
	if err != nil {
		t.Fatal(err)
	}
	// Capture a 1, then drop CE.
	if err := ls.Step([]bool{true, true}); err != nil {
		t.Fatal(err)
	}
	toggle := false
	step := func() error {
		toggle = !toggle
		return ls.Step([]bool{toggle, false}) // D toggles, CE LOW
	}
	for i := 0; i < 5; i++ {
		if err := step(); err != nil {
			t.Fatal(err)
		}
	}
	eng, err := relocate.NewEngine(dev, directPort(dev))
	if err != nil {
		t.Fatal(err)
	}
	eng.ForcePlainProcedure = forcePlain
	last := ls.OutputSnapshot()
	eng.Clock = func(cycles int) error {
		for i := 0; i < cycles; i++ {
			if err := step(); err != nil {
				return err
			}
		}
		last = ls.OutputSnapshot()
		return nil
	}
	eng.Tool.VerifyHook = func() error {
		if err := ls.VerifyQuiescent(last); err != nil {
			return err
		}
		last = ls.OutputSnapshot()
		return nil
	}
	ffID, _ := d.NL.ByName("r")
	from := d.CellOf[ffID]
	to := fabric.CellRef{Coord: fabric.Coord{Row: 10, Col: 10}, Cell: from.Cell}
	if _, err := eng.RelocateCell(from, to); err != nil {
		return err
	}
	d.Rebind(from, to)
	// CE still low: the state must still be the captured 1.
	for i := 0; i < 10; i++ {
		if err := step(); err != nil {
			return err
		}
	}
	return ls.CheckState()
}

func TestAuxCircuitTransfersStateWithCELow(t *testing.T) {
	// The positive heart of Fig. 3: CE never rises during the relocation,
	// yet the auxiliary circuit transfers the state and nothing glitches.
	if err := runGatedHoldRelocation(t, false); err != nil {
		t.Fatalf("aux-circuit relocation failed with CE low: %v", err)
	}
}

func TestGatedClockWithoutAuxLosesState(t *testing.T) {
	// Paper §2: without the aux circuit "the previous method does not
	// ensure that the CLB replica captures the correct state information".
	// With CE low across the whole procedure the replica keeps its
	// power-up value and the state check must fail.
	if err := runGatedHoldRelocation(t, true); err == nil {
		t.Error("plain two-phase procedure preserved gated-clock state with CE low — ablation should fail")
	}
}

func TestRelocateWholeCLB(t *testing.T) {
	dev := fabric.NewDevice(fabric.XCV50)
	d := placeDesign(t, dev, "b02")
	h := newHarness(t, dev, d, directPort(dev))
	// Pick the first occupied CLB in the region.
	var from fabric.Coord
	found := false
	for _, ref := range d.OccupiedCells() {
		from = ref.Coord
		found = true
		break
	}
	if !found {
		t.Fatal("no occupied CLB")
	}
	to := fabric.Coord{Row: 13, Col: 13}
	moves, err := h.eng.RelocateCLB(from, to)
	if err != nil {
		t.Fatalf("relocate CLB: %v", err)
	}
	if len(moves) == 0 {
		t.Fatal("no cells moved")
	}
	for cell := 0; cell < fabric.CellsPerCLB; cell++ {
		d.Rebind(fabric.CellRef{Coord: from, Cell: cell}, fabric.CellRef{Coord: to, Cell: cell})
	}
	h.run(60)
}

func TestRelocateRefusesRAMCell(t *testing.T) {
	dev := fabric.NewDevice(fabric.XCV50)
	ref := fabric.CellRef{Coord: fabric.Coord{Row: 2, Col: 2}, Cell: 0}
	dev.WriteCell(ref, fabric.CellConfig{Used: true, RAM: true, CEUsed: true})
	eng, err := relocate.NewEngine(dev, directPort(dev))
	if err != nil {
		t.Fatal(err)
	}
	_, err = eng.RelocateCell(ref, fabric.CellRef{Coord: fabric.Coord{Row: 5, Col: 5}, Cell: 0})
	if !errors.Is(err, relocate.ErrRAMRelocation) {
		t.Errorf("err = %v, want ErrRAMRelocation", err)
	}
}

func TestRelocateRefusesRAMInAffectedColumn(t *testing.T) {
	dev := fabric.NewDevice(fabric.XCV50)
	d := placeDesign(t, dev, "b01")
	// Drop a RAM cell into the destination column.
	ramRef := fabric.CellRef{Coord: fabric.Coord{Row: 0, Col: 10}, Cell: 0}
	dev.WriteCell(ramRef, fabric.CellConfig{Used: true, RAM: true, CEUsed: true})
	eng, err := relocate.NewEngine(dev, directPort(dev))
	if err != nil {
		t.Fatal(err)
	}
	var from fabric.CellRef
	for _, ref := range d.OccupiedCells() {
		from = ref
		break
	}
	_, err = eng.RelocateCell(from, fabric.CellRef{Coord: fabric.Coord{Row: 10, Col: 10}, Cell: from.Cell})
	if !errors.Is(err, relocate.ErrRAMInColumn) {
		t.Errorf("err = %v, want ErrRAMInColumn", err)
	}
}

func TestRelocateRefusesBusyDestination(t *testing.T) {
	dev := fabric.NewDevice(fabric.XCV50)
	d := placeDesign(t, dev, "b01")
	cells := d.OccupiedCells()
	if len(cells) < 2 {
		t.Fatal("need two cells")
	}
	eng, err := relocate.NewEngine(dev, directPort(dev))
	if err != nil {
		t.Fatal(err)
	}
	// Destination = another occupied cell.
	dst := cells[1]
	if dst.Cell != cells[0].Cell {
		dst = fabric.CellRef{Coord: dst.Coord, Cell: cells[0].Cell}
		if !dev.ReadCell(dst).InUse() {
			// make it busy explicitly
			dev.WriteCell(dst, fabric.CellConfig{Used: true, LUT: 1})
		}
	}
	_, err = eng.RelocateCell(cells[0], dst)
	if !errors.Is(err, relocate.ErrDestinationBusy) {
		t.Errorf("err = %v, want ErrDestinationBusy", err)
	}
}

func TestRelocationOverBoundaryScanTiming(t *testing.T) {
	// End-to-end with the Boundary-Scan port at the paper's 20 MHz: one
	// gated-clock cell relocation should land in the milliseconds range
	// (the paper reports 22.6 ms for a full CLB cell set).
	dev := fabric.NewDevice(fabric.XCV50)
	d := placeDesign(t, dev, "b03")
	ctrl := bitstream.NewController(dev)
	port := jtag.NewPort(ctrl, jtag.DefaultTCKHz)
	h := newHarness(t, dev, d, port)
	from, _, ok := findCellWith(d, func(nd netlist.Node) bool {
		return nd.Kind == netlist.KindFF && nd.CE != netlist.None
	})
	if !ok {
		t.Fatal("no gated FF")
	}
	to := freeCellAt(dev, fabric.Coord{Row: 10, Col: 11}, from.Cell)
	mv, err := h.eng.RelocateCell(from, to)
	if err != nil {
		t.Fatalf("relocate over Boundary-Scan: %v", err)
	}
	ms := mv.Seconds * 1e3
	if ms < 0.5 || ms > 200 {
		t.Errorf("cell relocation over JTAG = %.2f ms, outside plausible range", ms)
	}
	d.Rebind(from, to)
	h.run(40)
}

func TestMoveReportsParallelDelay(t *testing.T) {
	dev := fabric.NewDevice(fabric.XCV50)
	d := placeDesign(t, dev, "b01")
	h := newHarness(t, dev, d, directPort(dev))
	from, _, ok := findCellWith(d, func(nd netlist.Node) bool { return nd.Kind == netlist.KindFF })
	if !ok {
		t.Fatal("no FF")
	}
	to := freeCellAt(dev, fabric.Coord{Row: 14, Col: 14}, from.Cell)
	mv, err := h.eng.RelocateCell(from, to)
	if err != nil {
		t.Fatal(err)
	}
	if mv.MaxParallelDelayNs <= 0 {
		t.Error("no parallel-path delay recorded")
	}
	d.Rebind(from, to)
	h.run(30)
}

func TestStatsAccumulate(t *testing.T) {
	dev := fabric.NewDevice(fabric.XCV50)
	d := placeDesign(t, dev, "b02")
	h := newHarness(t, dev, d, directPort(dev))
	var froms []fabric.CellRef
	for _, ref := range d.OccupiedCells() {
		froms = append(froms, ref)
		if len(froms) == 2 {
			break
		}
	}
	row := 10
	for _, from := range froms {
		to := freeCellAt(dev, fabric.Coord{Row: row, Col: 12}, from.Cell)
		row += 2
		if _, err := h.eng.RelocateCell(from, to); err != nil {
			t.Fatal(err)
		}
		d.Rebind(from, to)
		h.last = h.ls.OutputSnapshot()
	}
	st := h.eng.Stats
	if st.CellsRelocated != 2 {
		t.Errorf("CellsRelocated = %d", st.CellsRelocated)
	}
	if st.FramesWritten == 0 || st.PortSeconds <= 0 {
		t.Errorf("stats: %+v", st)
	}
	h.run(30)
}

func TestErrorsAreDescriptive(t *testing.T) {
	dev := fabric.NewDevice(fabric.TestDevice)
	eng, err := relocate.NewEngine(dev, directPort(dev))
	if err != nil {
		t.Fatal(err)
	}
	_, err = eng.RelocateCell(
		fabric.CellRef{Coord: fabric.Coord{Row: 0, Col: 0}, Cell: 0},
		fabric.CellRef{Coord: fabric.Coord{Row: 1, Col: 1}, Cell: 0})
	if err == nil || !strings.Contains(err.Error(), "empty") {
		t.Errorf("relocating empty cell: %v", err)
	}
}

func TestReadbackVerifyMode(t *testing.T) {
	dev := fabric.NewDevice(fabric.XCV50)
	d := placeDesign(t, dev, "b01")
	h := newHarness(t, dev, d, directPort(dev))
	h.eng.Tool.ReadbackVerify = true
	from, _, ok := findCellWith(d, func(nd netlist.Node) bool { return nd.Kind == netlist.KindFF })
	if !ok {
		t.Fatal("no FF")
	}
	to := freeCellAt(dev, fabric.Coord{Row: 10, Col: 10}, from.Cell)
	mv, err := h.eng.RelocateCell(from, to)
	if err != nil {
		t.Fatalf("relocate with readback verify: %v", err)
	}
	d.Rebind(from, to)
	h.run(30)
	// Compare traffic with a non-verifying engine on an identical system.
	dev2 := fabric.NewDevice(fabric.XCV50)
	d2 := placeDesign(t, dev2, "b01")
	h2 := newHarness(t, dev2, d2, directPort(dev2))
	from2, _, _ := findCellWith(d2, func(nd netlist.Node) bool { return nd.Kind == netlist.KindFF })
	to2 := freeCellAt(dev2, fabric.Coord{Row: 10, Col: 10}, from2.Cell)
	mv2, err := h2.eng.RelocateCell(from2, to2)
	if err != nil {
		t.Fatal(err)
	}
	if mv.Seconds <= mv2.Seconds {
		t.Errorf("readback verify should cost extra port time: %.3f vs %.3f ms",
			mv.Seconds*1e3, mv2.Seconds*1e3)
	}
}
