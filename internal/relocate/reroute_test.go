package relocate_test

import (
	"testing"

	"repro/internal/fabric"
	"repro/internal/netlist"
	"repro/internal/place"
)

func TestRerouteSinkKeepsCircuitAlive(t *testing.T) {
	dev := fabric.NewDevice(fabric.XCV50)
	d := placeDesign(t, dev, "b01")
	h := newHarness(t, dev, d, directPort(dev))
	// Pick a LUT input pin with routing.
	var tile fabric.Coord
	local := -1
	for _, ref := range d.OccupiedCells() {
		for k := 0; k < fabric.LUTInputs; k++ {
			l := fabric.LocalPinI(ref.Cell, k)
			if dev.PIPMask(ref.Coord, l) != 0 {
				tile, local = ref.Coord, l
				break
			}
		}
		if local >= 0 {
			break
		}
	}
	if local < 0 {
		t.Fatal("no routed pin found")
	}
	mv, err := h.eng.RerouteSink(tile, local)
	if err != nil {
		t.Fatalf("reroute: %v", err)
	}
	if mv.OldDelayNs <= 0 || mv.NewDelayNs <= 0 {
		t.Errorf("delays: %+v", mv)
	}
	if mv.ParallelDelayNs() < mv.OldDelayNs || mv.ParallelDelayNs() < mv.NewDelayNs {
		t.Error("parallel delay must be the longer of the two paths")
	}
	if mv.Frames == 0 {
		t.Error("reroute wrote no frames")
	}
	h.run(50)
	// Exactly one driver remains on the sink.
	if n := len(dev.EnabledSourceNodes(tile, local)); n != 1 {
		t.Errorf("sink has %d drivers after reroute, want 1", n)
	}
}

func TestRerouteFuzzinessReported(t *testing.T) {
	dev := fabric.NewDevice(fabric.XCV50)
	d := placeDesign(t, dev, "b02")
	h := newHarness(t, dev, d, directPort(dev))
	var tile fabric.Coord
	local := -1
	for _, ref := range d.OccupiedCells() {
		for k := 0; k < fabric.LUTInputs; k++ {
			l := fabric.LocalPinI(ref.Cell, k)
			if dev.PIPMask(ref.Coord, l) != 0 {
				tile, local = ref.Coord, l
			}
		}
	}
	if local < 0 {
		t.Fatal("no routed pin")
	}
	mv, err := h.eng.RerouteSink(tile, local)
	if err != nil {
		t.Fatal(err)
	}
	// Fuzziness = |d_new - d_old| by definition; just confirm consistency.
	want := mv.NewDelayNs - mv.OldDelayNs
	if want < 0 {
		want = -want
	}
	if mv.FuzzinessNs() != want {
		t.Errorf("fuzziness = %v, want %v", mv.FuzzinessNs(), want)
	}
	h.run(30)
}

func TestRerouteViaDetourAvoidsRegion(t *testing.T) {
	// Force the replica path around a forbidden corridor and verify the
	// detour is longer (and the circuit unaffected).
	dev := fabric.NewDevice(fabric.XCV50)
	nl := netlist.New("wire")
	in := nl.Input("a")
	lut := nl.LUT("buf", fabric.LUTBuf, in)
	nl.Output("y", lut)
	d, err := place.Place(dev, nl, place.Options{Region: fabric.Rect{Row: 7, Col: 7, H: 1, W: 1}})
	if err != nil {
		t.Fatal(err)
	}
	h := newHarness(t, dev, d, directPort(dev))
	ref := d.CellOf[lut]
	local := fabric.LocalPinI(ref.Cell, 0)
	var avoid []fabric.Coord
	for r := 0; r < dev.Rows; r++ {
		avoid = append(avoid, fabric.Coord{Row: r, Col: 5})
	}
	mv, err := h.eng.RerouteSinkVia(ref.Coord, local, avoid)
	if err != nil {
		t.Fatalf("detour reroute: %v", err)
	}
	if mv.NewDelayNs <= mv.OldDelayNs {
		t.Logf("note: detour not longer (old %.2f new %.2f) — acceptable if another corridor existed", mv.OldDelayNs, mv.NewDelayNs)
	}
	h.run(20)
	// The new path must not touch column 5 wires.
	for _, c := range avoid {
		for local := 0; local < fabric.NodeSlots; local++ {
			kind, _, _ := fabric.DecodeLocal(local)
			if kind != fabric.KindSingle && kind != fabric.KindHex {
				continue
			}
			if fabric.IsLocalSink(local) && dev.PIPMask(c, local) != 0 {
				t.Fatalf("avoided tile %v has configured wire %d", c, local)
			}
		}
	}
}
