package relocate

import (
	"fmt"

	"repro/internal/bitstream"
	"repro/internal/fabric"
)

// FrameTool turns logical configuration edits (cell configs, PIP bits, pad
// bits) into partial-bitstream frame writes delivered through a
// configuration port. It maintains the shadow copy the paper's tool keeps
// for failure recovery, and it is the ONLY mutation path the relocation
// engine uses — everything the engine does is real partial reconfiguration.
type FrameTool struct {
	dev    *fabric.Device
	port   bitstream.Port
	shadow *bitstream.Shadow

	// VerifyHook, when set, is invoked after every frame write (the
	// harness re-settles the simulator and checks for glitches there).
	VerifyHook func() error
	// ReadbackVerify reads every written frame back through the port and
	// compares — the cautious mode of the paper's tool. It roughly doubles
	// the Boundary-Scan traffic per relocation (see the ablation bench).
	ReadbackVerify bool

	frames  int
	genSeen uint64
}

// NewFrameTool builds a tool over a device and port. The shadow is
// initialised from the device's current configuration.
func NewFrameTool(dev *fabric.Device, port bitstream.Port) (*FrameTool, error) {
	shadow, err := bitstream.NewShadow(dev)
	if err != nil {
		return nil, err
	}
	return &FrameTool{dev: dev, port: port, shadow: shadow, genSeen: dev.Generation()}, nil
}

// Sync refreshes the recovery shadow from the device if the configuration
// changed through a path other than this tool (checkpointing after a new
// design is loaded by the development flow).
func (ft *FrameTool) Sync() error { return ft.sync() }

// sync refreshes the shadow when the configuration changed through a path
// other than this tool (e.g. the development tool loading a new design) —
// the paper's tool accepts "a complete configuration file" as input; this
// is the equivalent import.
func (ft *FrameTool) sync() error {
	if ft.dev.Generation() == ft.genSeen {
		return nil
	}
	shadow, err := bitstream.NewShadow(ft.dev)
	if err != nil {
		return err
	}
	ft.shadow = shadow
	ft.genSeen = ft.dev.Generation()
	return nil
}

// Port returns the configuration port.
func (ft *FrameTool) Port() bitstream.Port { return ft.port }

// Shadow returns the recovery copy.
func (ft *FrameTool) Shadow() *bitstream.Shadow { return ft.shadow }

// FramesWritten returns the cumulative frame count pushed through the port.
func (ft *FrameTool) FramesWritten() int { return ft.frames }

// Edit is one configuration bit change: frame-level address plus bit index.
type Edit struct {
	Addr fabric.FrameAddr
	Bit  int
	On   bool
}

// Apply delivers a set of edits as frame writes, one frame at a time (so the
// verify hook can check quiescence after every frame, like probing the
// running device). Edits to the same frame coalesce into one write; frames
// are written in first-touched order.
func (ft *FrameTool) Apply(edits []Edit) error {
	if len(edits) == 0 {
		return nil
	}
	if err := ft.sync(); err != nil {
		return err
	}
	type pending struct {
		data []uint32
	}
	order := []fabric.FrameAddr{}
	frames := map[fabric.FrameAddr]*pending{}
	for _, e := range edits {
		p := frames[e.Addr]
		if p == nil {
			base, ok := ft.shadow.Frame(e.Addr)
			if !ok {
				return fmt.Errorf("relocate: no shadow for frame %v", e.Addr)
			}
			cp := make([]uint32, len(base))
			copy(cp, base)
			p = &pending{data: cp}
			frames[e.Addr] = p
			order = append(order, e.Addr)
		}
		if e.On {
			p.data[e.Bit/32] |= 1 << (e.Bit % 32)
		} else {
			p.data[e.Bit/32] &^= 1 << (e.Bit % 32)
		}
	}
	for _, addr := range order {
		p := frames[addr]
		if err := ft.port.WriteUpdates([]bitstream.FrameUpdate{{Addr: addr, Data: p.data}}); err != nil {
			return err
		}
		if ft.ReadbackVerify {
			got, err := ft.port.ReadFrame(addr)
			if err != nil {
				return fmt.Errorf("relocate: readback of %v: %w", addr, err)
			}
			for i := range got {
				if got[i] != p.data[i] {
					return fmt.Errorf("relocate: readback mismatch in %v word %d", addr, i)
				}
			}
		}
		ft.shadow.Note(addr, p.data)
		ft.genSeen = ft.dev.Generation()
		ft.frames++
		if ft.VerifyHook != nil {
			if err := ft.VerifyHook(); err != nil {
				return fmt.Errorf("relocate: after writing %v: %w", addr, err)
			}
		}
	}
	return nil
}

// cellEdits builds the edits that set a cell's configuration word.
func (ft *FrameTool) cellEdits(ref fabric.CellRef, cc fabric.CellConfig) []Edit {
	start, width := ft.dev.CellSlotRange(ref.Cell)
	word := cc.Encode()
	var edits []Edit
	for i := 0; i < width; i++ {
		major, minor, bit := ft.dev.BitAddr(ref.Coord, start+i)
		edits = append(edits, Edit{
			Addr: fabric.FrameAddr{Major: major, Minor: minor},
			Bit:  bit,
			On:   word>>i&1 == 1,
		})
	}
	return edits
}

// pipEdit builds the edit toggling one PIP bit of a sink.
func (ft *FrameTool) pipEdit(c fabric.Coord, sinkLocal, bit int, on bool) Edit {
	start, _ := ft.dev.PIPSlotRange(sinkLocal)
	major, minor, fbit := ft.dev.BitAddr(c, start+bit)
	return Edit{Addr: fabric.FrameAddr{Major: major, Minor: minor}, Bit: fbit, On: on}
}

// WriteCell applies a cell configuration through the port.
func (ft *FrameTool) WriteCell(ref fabric.CellRef, cc fabric.CellConfig) error {
	return ft.Apply(ft.cellEdits(ref, cc))
}

// SetPIP toggles the PIP from src to the sink node through the port.
func (ft *FrameTool) SetPIP(src, sink fabric.NodeID, on bool) error {
	if pad, ok := ft.dev.PadOfNode(sink); ok {
		return ft.setPadPIP(pad, src, on)
	}
	c, local, ok := ft.dev.SplitNode(sink)
	if !ok || !fabric.IsLocalSink(local) {
		return fmt.Errorf("relocate: node %d is not a configurable sink", sink)
	}
	bit, ok := ft.dev.PIPBitFor(c, local, src)
	if !ok {
		return fmt.Errorf("relocate: no PIP from %d to %d", src, sink)
	}
	return ft.Apply([]Edit{ft.pipEdit(c, local, bit, on)})
}

// SetPath enables (or disables) every PIP along a node path in path order.
func (ft *FrameTool) SetPath(path []fabric.NodeID, on bool) error {
	for i := 1; i < len(path); i++ {
		if err := ft.SetPIP(path[i-1], path[i], on); err != nil {
			return err
		}
	}
	return nil
}

// ClearSinkPIPs disables every enabled PIP of a sink node.
func (ft *FrameTool) ClearSinkPIPs(sink fabric.NodeID) error {
	c, local, ok := ft.dev.SplitNode(sink)
	if !ok || !fabric.IsLocalSink(local) {
		return fmt.Errorf("relocate: node %d is not a configurable sink", sink)
	}
	mask := ft.dev.PIPMask(c, local)
	var edits []Edit
	for b := 0; mask != 0; b++ {
		if mask>>b&1 == 1 {
			edits = append(edits, ft.pipEdit(c, local, b, false))
			mask &^= 1 << b
		}
	}
	return ft.Apply(edits)
}

func (ft *FrameTool) setPadPIP(pad fabric.PadRef, src fabric.NodeID, on bool) error {
	pc := ft.dev.ReadPad(pad)
	srcs := ft.dev.PadOutSourceNodes(pad)
	found := false
	for b, n := range srcs {
		if n == src {
			if on {
				pc.OutMask |= 1 << b
				pc.Output = true
			} else {
				pc.OutMask &^= 1 << b
			}
			found = true
		}
	}
	if !found {
		return fmt.Errorf("relocate: node %d does not feed pad %v", src, pad)
	}
	// Pad config lives in one frame; rebuild it via the designer path on a
	// scratch copy is not available, so edit the frame bits directly.
	return ft.writePad(pad, pc)
}

func (ft *FrameTool) writePad(pad fabric.PadRef, pc fabric.PadConfig) error {
	// Compute the pad's frame and splice the 8-bit config.
	addr := ft.dev.PadConfigFrame(pad)
	_, _, bitBase := ft.dev.PadBitAddr(pad)
	word := pc.Encode()
	var edits []Edit
	for i := 0; i < 8; i++ {
		edits = append(edits, Edit{Addr: addr, Bit: bitBase + i, On: word>>i&1 == 1})
	}
	return ft.Apply(edits)
}

// WritePadConfig applies a pad configuration through the port.
func (ft *FrameTool) WritePadConfig(pad fabric.PadRef, pc fabric.PadConfig) error {
	return ft.writePad(pad, pc)
}
